/**
 * @file
 * Implementation of the list scheduler.
 */

#include "sched/list_scheduler.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <map>
#include <sstream>
#include <utility>

#include "obs/registry.h"

namespace roboshape {
namespace sched {

std::int64_t
TaskTiming::cost(TaskType t) const
{
    switch (t) {
      case TaskType::kRneaForward:
        return rnea_forward;
      case TaskType::kRneaBackward:
        return rnea_backward;
      case TaskType::kGradForward:
        return grad_forward;
      case TaskType::kGradBackward:
        return grad_backward;
    }
    return 1;
}

PeClass
pe_class_of(TaskType t)
{
    switch (t) {
      case TaskType::kRneaForward:
      case TaskType::kGradForward:
        return PeClass::kForward;
      case TaskType::kRneaBackward:
      case TaskType::kGradBackward:
        return PeClass::kBackward;
    }
    return PeClass::kForward;
}

namespace {

std::atomic<std::uint64_t> g_invocations{0};

/**
 * Reusable per-thread scratch buffers of the engine.  A design-space sweep
 * runs thousands of schedules; keeping the capacity of these vectors alive
 * across runs removes every per-schedule allocation except the returned
 * Schedule itself.  thread_local keeps the sweep thread pool lock-free.
 */
struct Workspace
{
    std::vector<std::int64_t> priority;
    std::vector<std::int64_t> below;
    std::vector<int> pending;
    std::vector<std::vector<TaskId>> dependents;
    /** Ready lists per PE class, sorted by (priority desc, id asc). */
    std::vector<TaskId> ready[2];
    /** Min-heap of (finish cycle, task). */
    std::vector<std::pair<std::int64_t, TaskId>> completions;
};

Workspace &
workspace()
{
    static thread_local Workspace ws;
    return ws;
}

/** Event-driven list-scheduling engine shared by both compositions. */
class Engine
{
  public:
    Engine(const TaskGraph &graph, const TaskTiming &timing,
           std::size_t pes_fwd, std::size_t pes_bwd,
           std::vector<bool> active, bool cross_stage_deps,
           const SchedulerOptions &options)
        : graph_(graph), timing_(timing), active_(std::move(active)),
          cross_stage_(cross_stage_deps), options_(options),
          ws_(workspace())
    {
        pool_[0].assign(pes_fwd, Pe{});
        pool_[1].assign(pes_bwd, Pe{});
        build_priorities();
    }

    Schedule run();

  private:
    struct Pe
    {
        std::int64_t busy_until = 0;
        std::int32_t last_link = -1;
    };

    int
    pool_index(TaskId id) const
    {
        return pe_class_of(graph_.task(id).type) == PeClass::kForward ? 0
                                                                      : 1;
    }

    bool
    counts_as_dep(TaskId task, TaskId dep) const
    {
        if (!active_[dep])
            return false;
        return cross_stage_ || pool_index(task) == pool_index(dep);
    }

    /** Tree adjacency: continuing a traversal thread without a branch
     *  checkpoint restore. */
    bool
    thread_continues(std::int32_t from_link, std::int32_t to_link) const
    {
        if (from_link < 0 || from_link == to_link)
            return true;
        const auto &parents = graph_.parents();
        if (to_link >= 0 && parents[to_link] == from_link)
            return true;
        if (from_link >= 0 && parents[from_link] == to_link)
            return true;
        return false;
    }

    /**
     * Bottom levels over active tasks: a task's priority is its cost plus
     * the longest chain of active dependents ("longest sequential thread").
     * Task ids are topologically ordered by construction (every dependency
     * has a smaller id), so one reverse sweep suffices.
     */
    void
    build_priorities()
    {
        ws_.priority.assign(graph_.size(), 0);
        ws_.below.assign(graph_.size(), 0);
        for (std::size_t id = graph_.size(); id-- > 0;) {
            ws_.priority[id] =
                ws_.below[id] + timing_.cost(graph_.task(id).type);
            for (TaskId d : graph_.task(id).deps) {
                assert(d < static_cast<TaskId>(id));
                if (active_[id] && counts_as_dep(static_cast<TaskId>(id), d))
                    ws_.below[d] =
                        std::max(ws_.below[d], ws_.priority[id]);
            }
        }
        if (!options_.longest_thread_priority)
            ws_.priority.assign(graph_.size(), 1); // FIFO by task id
    }

    /** Ready-list order: highest priority first, then smallest id. */
    bool
    ready_before(TaskId a, TaskId b) const
    {
        if (ws_.priority[a] != ws_.priority[b])
            return ws_.priority[a] > ws_.priority[b];
        return a < b;
    }

    void
    ready_insert(int cls, TaskId id)
    {
        std::vector<TaskId> &v = ws_.ready[cls];
        v.insert(std::lower_bound(v.begin(), v.end(), id,
                                  [this](TaskId a, TaskId b) {
                                      return ready_before(a, b);
                                  }),
                 id);
    }

    void
    ready_erase(int cls, TaskId id)
    {
        // ready_before is a strict total order, so lower_bound lands
        // exactly on the element.
        std::vector<TaskId> &v = ws_.ready[cls];
        const auto it = std::lower_bound(v.begin(), v.end(), id,
                                         [this](TaskId a, TaskId b) {
                                             return ready_before(a, b);
                                         });
        assert(it != v.end() && *it == id);
        v.erase(it);
    }

    TaskId
    pick(const std::vector<TaskId> &ready, const Pe &unit) const
    {
        // Among the highest-priority ready tasks, prefer one continuing
        // this PE's current thread (minimizes checkpoint traffic).
        const TaskId best = ready.front();
        if (!options_.thread_affinity || unit.last_link < 0)
            return best;
        for (TaskId id : ready) {
            if (ws_.priority[id] < ws_.priority[best])
                break;
            if (thread_continues(unit.last_link, graph_.task(id).link))
                return id;
        }
        return best;
    }

    const TaskGraph &graph_;
    const TaskTiming &timing_;
    std::vector<bool> active_;
    bool cross_stage_;
    SchedulerOptions options_;
    std::vector<Pe> pool_[2];
    Workspace &ws_;
};

Schedule
Engine::run()
{
    Schedule s;
    s.placements.assign(graph_.size(), Placement{});
    s.forward_rom.assign(pool_[0].size(), {});
    s.backward_rom.assign(pool_[1].size(), {});

    ws_.pending.assign(graph_.size(), 0);
    if (ws_.dependents.size() < graph_.size())
        ws_.dependents.resize(graph_.size());
    for (std::size_t id = 0; id < graph_.size(); ++id)
        ws_.dependents[id].clear();
    std::size_t remaining = 0;
    for (const Task &t : graph_.tasks()) {
        if (!active_[t.id])
            continue;
        ++remaining;
        for (TaskId d : t.deps) {
            if (!counts_as_dep(t.id, d))
                continue;
            ++ws_.pending[t.id];
            ws_.dependents[d].push_back(t.id);
        }
    }

    for (int cls = 0; cls < 2; ++cls) {
        ws_.ready[cls].clear();
        ws_.ready[cls].reserve(graph_.size());
    }
    for (const Task &t : graph_.tasks())
        if (active_[t.id] && ws_.pending[t.id] == 0)
            ready_insert(pool_index(t.id), t.id);

    // Completion events as a min-heap over the finish cycle; ties release
    // together below, so the id order within a cycle is irrelevant.
    std::vector<std::pair<std::int64_t, TaskId>> &completions =
        ws_.completions;
    completions.clear();
    completions.reserve(pool_[0].size() + pool_[1].size());
    const auto later = std::greater<std::pair<std::int64_t, TaskId>>{};

    // Aggregated locally and published to the obs registry once per run,
    // keeping the event loop free of atomics.
    std::size_t placed = 0;
    std::size_t ready_depth_peak = 0;
    std::uint64_t deferred = 0;

    std::int64_t now = 0;
    while (remaining > 0 || !completions.empty()) {
        ready_depth_peak = std::max(
            ready_depth_peak, ws_.ready[0].size() + ws_.ready[1].size());
        // Dispatch onto every idle PE.
        for (int cls = 0; cls < 2; ++cls) {
            for (std::size_t pe = 0; pe < pool_[cls].size(); ++pe) {
                Pe &unit = pool_[cls][pe];
                if (unit.busy_until > now || ws_.ready[cls].empty())
                    continue;
                const TaskId id = pick(ws_.ready[cls], unit);
                ready_erase(cls, id);
                const Task &t = graph_.task(id);
                Placement &p = s.placements[id];
                p.task = id;
                p.pe_class = static_cast<PeClass>(cls);
                p.pe = static_cast<int>(pe);
                p.start = now;
                p.finish = now + timing_.cost(t.type);
                unit.busy_until = p.finish;
                if (!thread_continues(unit.last_link, t.link))
                    ++s.checkpoint_restores;
                unit.last_link = t.link;
                (cls == 0 ? s.forward_rom[pe] : s.backward_rom[pe])
                    .push_back(id);
                (cls == 0 ? s.forward_slots : s.backward_slots) += 1;
                completions.emplace_back(p.finish, id);
                std::push_heap(completions.begin(), completions.end(),
                               later);
                --remaining;
                ++placed;
            }
        }
        // Ready tasks left over after a dispatch round lost a placement
        // conflict: every PE of their pool is busy this cycle.
        deferred += ws_.ready[0].size() + ws_.ready[1].size();

        if (completions.empty()) {
            assert(remaining == 0);
            break;
        }
        // Advance to the next completion and release dependents.
        now = completions.front().first;
        while (!completions.empty() && completions.front().first == now) {
            const TaskId done = completions.front().second;
            std::pop_heap(completions.begin(), completions.end(), later);
            completions.pop_back();
            for (TaskId dep : ws_.dependents[done])
                if (--ws_.pending[dep] == 0)
                    ready_insert(pool_index(dep), dep);
        }
    }

    for (const Placement &p : s.placements) {
        if (p.task == kNoTask)
            continue;
        s.makespan = std::max(s.makespan, p.finish);
        if (p.pe_class == PeClass::kForward)
            s.forward_makespan = std::max(s.forward_makespan, p.finish);
        else
            s.backward_makespan = std::max(s.backward_makespan, p.finish);
    }

    ROBOSHAPE_OBS_COUNT("sched.list_runs", 1);
    ROBOSHAPE_OBS_COUNT("sched.tasks_placed", placed);
    ROBOSHAPE_OBS_COUNT("sched.placement_conflicts", deferred);
    ROBOSHAPE_OBS_COUNT("sched.checkpoint_restores",
                        s.checkpoint_restores);
    ROBOSHAPE_OBS_RECORD("sched.ready_depth_peak", ready_depth_peak);
    return s;
}

} // namespace

Schedule
schedule_stage(const TaskGraph &graph, const std::vector<TaskType> &types,
               std::size_t pe_count, const TaskTiming &timing,
               const SchedulerOptions &options)
{
    g_invocations.fetch_add(1, std::memory_order_relaxed);
    std::vector<bool> active(graph.size(), false);
    bool fwd = false, bwd = false;
    for (TaskType t : types) {
        for (TaskId id : graph.tasks_of_type(t))
            active[id] = true;
        (pe_class_of(t) == PeClass::kForward ? fwd : bwd) = true;
    }
    assert(fwd != bwd && "a stage lives in exactly one PE pool");
    Engine engine(graph, timing, fwd ? pe_count : 0, bwd ? pe_count : 0,
                  std::move(active), /*cross_stage_deps=*/false, options);
    return engine.run();
}

Schedule
schedule_pipelined(const TaskGraph &graph, std::size_t pes_fwd,
                   std::size_t pes_bwd, const TaskTiming &timing,
                   const SchedulerOptions &options)
{
    g_invocations.fetch_add(1, std::memory_order_relaxed);
    std::vector<bool> active(graph.size(), true);
    Engine engine(graph, timing, pes_fwd, pes_bwd, std::move(active),
                  /*cross_stage_deps=*/true, options);
    return engine.run();
}

std::uint64_t
list_scheduler_invocations()
{
    return g_invocations.load(std::memory_order_relaxed);
}

std::string
validate_schedule(const TaskGraph &graph, const Schedule &s)
{
    std::ostringstream err;
    for (const Placement &p : s.placements) {
        if (p.task == kNoTask)
            continue;
        for (TaskId d : graph.task(p.task).deps) {
            const Placement &dp = s.placements[d];
            if (dp.task == kNoTask)
                continue; // dependency outside this stage schedule
            if (p.start < dp.finish) {
                err << graph.task(p.task).label() << " starts at " << p.start
                    << " before dep " << graph.task(d).label()
                    << " finishes at " << dp.finish;
                return err.str();
            }
        }
    }
    std::map<std::pair<int, int>, std::vector<const Placement *>> by_pe;
    for (const Placement &p : s.placements)
        if (p.task != kNoTask)
            by_pe[{static_cast<int>(p.pe_class), p.pe}].push_back(&p);
    for (auto &[pe, list] : by_pe) {
        std::sort(list.begin(), list.end(),
                  [](const Placement *a, const Placement *b) {
                      return a->start < b->start;
                  });
        for (std::size_t k = 1; k < list.size(); ++k) {
            if (list[k]->start < list[k - 1]->finish) {
                err << "overlap on pe(" << pe.first << "," << pe.second
                    << ") between " << graph.task(list[k - 1]->task).label()
                    << " and " << graph.task(list[k]->task).label();
                return err.str();
            }
        }
    }
    return "";
}

} // namespace sched
} // namespace roboshape
