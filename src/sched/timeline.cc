/**
 * @file
 * Implementation of ASCII schedule rendering.
 */

#include "sched/timeline.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

namespace roboshape {
namespace sched {

namespace {

/** Base-36 glyph alphabet; links alias only past 36 (humanoid tops at 27). */
constexpr char kGlyphs[] = "0123456789abcdefghijklmnopqrstuvwxyz";
constexpr std::size_t kGlyphCount = sizeof(kGlyphs) - 1;

} // namespace

std::string
render_timeline(const TaskGraph &graph, const Schedule &schedule,
                std::size_t max_width, bool with_legend)
{
    const std::int64_t makespan = std::max<std::int64_t>(schedule.makespan,
                                                         1);
    const std::int64_t bucket =
        std::max<std::int64_t>(1, (makespan + static_cast<std::int64_t>(
                                                  max_width) -
                                   1) /
                                      static_cast<std::int64_t>(max_width));
    const std::size_t width = static_cast<std::size_t>(
        (makespan + bucket - 1) / bucket);

    // Rows keyed by (class, pe).
    const std::size_t fwd_pes = schedule.forward_rom.size();
    const std::size_t bwd_pes = schedule.backward_rom.size();
    std::vector<std::string> rows(fwd_pes + bwd_pes,
                                  std::string(width, '.'));

    for (const Placement &p : schedule.placements) {
        if (p.task == kNoTask)
            continue;
        const std::size_t row =
            p.pe_class == PeClass::kForward
                ? static_cast<std::size_t>(p.pe)
                : fwd_pes + static_cast<std::size_t>(p.pe);
        const char glyph =
            kGlyphs[static_cast<std::size_t>(graph.task(p.task).link) %
                    kGlyphCount];
        for (std::int64_t c = p.start; c < p.finish; ++c) {
            const std::size_t col = static_cast<std::size_t>(c / bucket);
            if (col < width)
                rows[row][col] = glyph;
        }
    }

    std::ostringstream os;
    os << "cycles 0.." << makespan << " (" << bucket << " cyc/char)\n";
    for (std::size_t r = 0; r < fwd_pes; ++r)
        os << "fwd" << r << " |" << rows[r] << "|\n";
    for (std::size_t r = 0; r < bwd_pes; ++r)
        os << "bwd" << r << " |" << rows[fwd_pes + r] << "|\n";

    if (with_legend) {
        // Glyph legend: every glyph with the link(s) it stands for, so an
        // aliased glyph (two links congruent mod 36) is never ambiguous.
        std::map<char, std::vector<int>> links_by_glyph;
        for (const Placement &p : schedule.placements) {
            if (p.task == kNoTask)
                continue;
            const int link = graph.task(p.task).link;
            auto &links =
                links_by_glyph[kGlyphs[static_cast<std::size_t>(link) %
                                       kGlyphCount]];
            if (std::find(links.begin(), links.end(), link) == links.end())
                links.push_back(link);
        }
        os << "glyphs:";
        for (auto &[glyph, links] : links_by_glyph) {
            std::sort(links.begin(), links.end());
            os << " " << glyph << "=";
            for (std::size_t i = 0; i < links.size(); ++i)
                os << (i == 0 ? "link" : ",link") << links[i];
        }
        os << "\n";
        os << "starts:";
        std::vector<const Placement *> ordered;
        for (const Placement &p : schedule.placements)
            if (p.task != kNoTask)
                ordered.push_back(&p);
        std::sort(ordered.begin(), ordered.end(),
                  [](const Placement *a, const Placement *b) {
                      return a->start < b->start;
                  });
        for (const Placement *p : ordered)
            os << " " << graph.task(p->task).label() << "@" << p->start;
        os << "\n";
    }
    return os.str();
}

} // namespace sched
} // namespace roboshape
