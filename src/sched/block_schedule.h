/**
 * @file
 * Blocked matrix-multiply scheduling (paper Sec. 4.3, pattern 2).
 *
 * The final stage of the dynamics gradient multiplies M^-1 (limb
 * block-diagonal) by the two partial-derivative matrices (ancestor-closure
 * sparsity).  The matrices are tiled into size_block x size_block blocks;
 * all-zero tile products are skipped as NOPs (paper Fig. 6), and the
 * surviving tile products are scheduled onto a small pool of block
 * matrix-vector multiply units.  Misaligned block sizes drag zero padding
 * into nonzero tiles, producing the nonlinear latency curve of paper
 * Fig. 15.
 */

#ifndef ROBOSHAPE_SCHED_BLOCK_SCHEDULE_H
#define ROBOSHAPE_SCHED_BLOCK_SCHEDULE_H

#include <cstdint>
#include <vector>

#include "topology/topology_info.h"

namespace roboshape {
namespace sched {

/** Boolean sparsity mask of an N x N topology matrix. */
using SparsityMask = std::vector<std::vector<bool>>;

/** Mask of M(q)^-1: block diagonal over independent limb spans. */
SparsityMask mass_inverse_mask(const topology::TopologyInfo &topo);

/** Mask of dtau/dq and dtau/dqd: the ancestor-closure pattern. */
SparsityMask derivative_mask(const topology::TopologyInfo &topo);

/** Cycle cost model of one executed tile product. */
struct TileTiming
{
    /** Cycles per tile row streamed through a block-MV unit. */
    std::int64_t cycles_per_row = 1;
    /** Fixed cycles per tile product (operand load + accumulator drain). */
    std::int64_t overhead = 2;

    std::int64_t
    tile_cost(std::size_t block_size) const
    {
        return cycles_per_row * static_cast<std::int64_t>(block_size) +
               overhead;
    }

    bool operator==(const TileTiming &) const = default;
};

/** Result of scheduling one blocked multiply chain set. */
struct BlockSchedule
{
    std::int64_t makespan = 0;       ///< Cycles to drain all tile products.
    std::size_t executed_tiles = 0;  ///< Tile products performed.
    std::size_t nop_tiles = 0;       ///< Tile products skipped as zero.
    std::size_t padded_zero_elements = 0; ///< Zeros processed inside
                                          ///< executed tiles (wasted MACs).
    std::size_t tile_dim = 0;        ///< Tiles per matrix edge.
};

/**
 * Schedules C = A * B (structurally) with @p num_products identical
 * multiplies (the gradient needs two: dq and dqd share masks).
 *
 * Per output tile, the k-chain of tile MACs is serialized through an
 * accumulator; chains are distributed over @p units block-MV units longest
 * first.
 */
BlockSchedule schedule_block_multiply(const SparsityMask &a,
                                      const SparsityMask &b,
                                      std::size_t block_size,
                                      std::size_t units,
                                      const TileTiming &timing,
                                      std::size_t num_products = 2,
                                      bool skip_zero_tiles = true);

/**
 * Process-wide count of schedule_block_multiply runs.  Monotonic and
 * thread-safe; the sweep equivalence tests read deltas to assert the
 * memoized sweep schedules each block size once.
 */
std::uint64_t block_schedule_invocations();

} // namespace sched
} // namespace roboshape

#endif // ROBOSHAPE_SCHED_BLOCK_SCHEDULE_H
