/**
 * @file
 * List scheduler for topology traversal task graphs (paper Sec. 4.2).
 *
 * Implements the paper's modified depth-first strategy: at every point where
 * a processing element goes idle, it picks the ready task heading the
 * longest remaining sequential thread (largest bottom level), preferring to
 * continue the thread it is already working on (which minimizes branch
 * checkpoint traffic).
 *
 * Two compositions are supported, matching the paper's Fig. 9 methodology:
 *  - staged (No Pipelining): each stage is scheduled in isolation and stage
 *    makespans add up;
 *  - pipelined (Avg. w/ Pipelining): one joint event-driven schedule where
 *    backward-stage PEs start as soon as forward results exist.
 */

#ifndef ROBOSHAPE_SCHED_LIST_SCHEDULER_H
#define ROBOSHAPE_SCHED_LIST_SCHEDULER_H

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sched/task_graph.h"

namespace roboshape {
namespace sched {

/** Cycle cost of one task of each type on a robomorphic PE. */
struct TaskTiming
{
    std::int64_t rnea_forward = 1;
    std::int64_t rnea_backward = 1;
    std::int64_t grad_forward = 1;
    std::int64_t grad_backward = 1;

    std::int64_t cost(TaskType t) const;

    bool operator==(const TaskTiming &) const = default;
};

/** Which PE pool executes a task type (paper knob PEs_fwd,bwd). */
enum class PeClass : std::uint8_t
{
    kForward,
    kBackward,
};

PeClass pe_class_of(TaskType t);

/** Placement of one task in the schedule. */
struct Placement
{
    TaskId task = kNoTask;
    PeClass pe_class = PeClass::kForward;
    int pe = -1;             ///< Index within its pool.
    std::int64_t start = 0;  ///< Cycle the task begins.
    std::int64_t finish = 0; ///< Cycle the task completes.
};

/** A complete schedule plus the statistics the architecture model needs. */
struct Schedule
{
    /** Placements indexed by TaskId. */
    std::vector<Placement> placements;

    std::int64_t makespan = 0;

    /** Longest busy interval end per PE class. */
    std::int64_t forward_makespan = 0;
    std::int64_t backward_makespan = 0;

    /** Number of schedule slots (distinct task starts) per PE class —
     *  drives the input-marshalling critical path (paper Sec. 5.1). */
    std::size_t forward_slots = 0;
    std::size_t backward_slots = 0;

    /**
     * Times a PE resumed a thread that was not a tree-child of its previous
     * task — each such switch exercises the branch checkpoint registers
     * (paper Fig. 8e).
     */
    std::size_t checkpoint_restores = 0;

    /** Ordered task ids per forward PE, for codegen schedule ROMs. */
    std::vector<std::vector<TaskId>> forward_rom;
    /** Ordered task ids per backward PE. */
    std::vector<std::vector<TaskId>> backward_rom;
};

/**
 * Scheduler policy switches.  Defaults implement the paper's strategy;
 * the alternatives exist for ablation studies (bench/ablation_scheduler).
 */
struct SchedulerOptions
{
    /** Prioritize the longest remaining sequential thread (bottom level);
     *  when false, tasks dispatch in graph order (FIFO). */
    bool longest_thread_priority = true;
    /** Prefer continuing the thread a PE already works on (minimizes
     *  branch checkpoint traffic). */
    bool thread_affinity = true;
};

/**
 * Schedules one stage in isolation: only tasks whose type is in @p types
 * are placed; dependencies on other stages are treated as satisfied at
 * cycle zero.
 */
Schedule schedule_stage(const TaskGraph &graph,
                        const std::vector<TaskType> &types,
                        std::size_t pe_count, const TaskTiming &timing,
                        const SchedulerOptions &options = {});

/**
 * Joint pipelined schedule of all four traversal stages over the two PE
 * pools; cross-stage dependencies are honored at task granularity.
 */
Schedule schedule_pipelined(const TaskGraph &graph, std::size_t pes_fwd,
                            std::size_t pes_bwd, const TaskTiming &timing,
                            const SchedulerOptions &options = {});

/**
 * Validates that @p s respects every dependency of @p graph and never
 * overlaps two tasks on one PE.  Returns an empty string when valid, else a
 * description of the first violation (used by tests).
 */
std::string validate_schedule(const TaskGraph &graph, const Schedule &s);

/**
 * Process-wide count of list-scheduler runs (schedule_stage plus
 * schedule_pipelined calls).  Monotonic and thread-safe; read a delta
 * around a region of interest to assert memoization bounds (the sweep
 * equivalence tests and bench/sweep_throughput do).
 */
std::uint64_t list_scheduler_invocations();

} // namespace sched
} // namespace roboshape

#endif // ROBOSHAPE_SCHED_LIST_SCHEDULER_H
