/**
 * @file
 * Execution-order resolution of schedules (trace compilation, stage 1).
 *
 * A Schedule stores placements indexed by TaskId; executing it functionally
 * requires the placements in start-cycle order.  These helpers turn one or
 * more schedules into that flat execution order exactly once, so functional
 * simulators (accel/functional_sim, accel/kernel_sim) and the compiled
 * engine (accel/sim_engine) share a single definition of "the order the
 * hardware runs tasks in" — and so the engine can resolve it at compile
 * time instead of re-sorting on every run.
 */

#ifndef ROBOSHAPE_SCHED_TRACE_H
#define ROBOSHAPE_SCHED_TRACE_H

#include <vector>

#include "sched/list_scheduler.h"

namespace roboshape {
namespace sched {

/** Number of real (non-kNoTask) placements in @p s. */
std::size_t live_placement_count(const Schedule &s);

/**
 * Appends pointers to @p s's real placements to @p out, sorted by start
 * cycle (stable: placement order breaks ties).  Only the appended suffix is
 * sorted; earlier entries of @p out are left untouched, so staged
 * compositions append stage by stage.  Callers should reserve() @p out
 * (see live_placement_count) to avoid reallocation.
 */
void append_in_execution_order(const Schedule &s,
                               std::vector<const Placement *> &out);

} // namespace sched
} // namespace roboshape

#endif // ROBOSHAPE_SCHED_TRACE_H
