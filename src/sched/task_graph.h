/**
 * @file
 * Topology-derived task graphs (paper Sec. 4.2, pattern 1).
 *
 * The dynamics-gradient kernel decomposes into per-link work items along
 * the robot's topology traversals:
 *
 *  - RNEA forward tasks, one per link, chained parent -> child;
 *  - RNEA backward tasks, one per link, chained child -> parent;
 *  - gradient forward tasks, one per (column j, link i in subtree(j)),
 *    threaded down each subtree and seeded by the RNEA outputs;
 *  - gradient backward tasks, one per (column j, link i in
 *    subtree(j) or ancestors(j)), threaded back up to the base.
 *
 * The graphs generated here are the single source of truth for the list
 * scheduler, the cycle simulator, and the Verilog schedule ROMs.
 */

#ifndef ROBOSHAPE_SCHED_TASK_GRAPH_H
#define ROBOSHAPE_SCHED_TASK_GRAPH_H

#include <cstdint>
#include <string>
#include <vector>

#include "topology/topology_info.h"

namespace roboshape {
namespace sched {

/**
 * Kernel families the generator supports (paper Table 1).  All are built
 * from the same two topology patterns, so they share task types, PE
 * pools, and the scheduler:
 *
 *  - kDynamicsGradient: RNEA + column-wise dRNEA + blocked -M^-1 multiply
 *    (the paper's motivating example, Algs. 1-3);
 *  - kMassMatrix: CRBA — backward composite-inertia traversal plus
 *    root-path force walks (one per mass-matrix column);
 *  - kForwardKinematics: forward pose/velocity traversal plus per-link
 *    Jacobian-column threads (the ancestor-closure pattern again).
 */
enum class KernelKind : std::uint8_t
{
    kDynamicsGradient,
    kMassMatrix,
    kForwardKinematics,
};

/** Human-readable kernel name. */
const char *to_string(KernelKind k);

/** All supported kernels. */
const std::vector<KernelKind> &all_kernels();

/** Which traversal a task belongs to (one accelerator stage each). */
enum class TaskType : std::uint8_t
{
    kRneaForward,
    kRneaBackward,
    kGradForward,
    kGradBackward,
};

/** Human-readable task-type name. */
const char *to_string(TaskType t);

/** Stable identifier of a task inside its graph. */
using TaskId = std::int32_t;

inline constexpr TaskId kNoTask = -1;

/** One per-link work item. */
struct Task
{
    TaskId id = kNoTask;
    TaskType type = TaskType::kRneaForward;
    /** Link whose quantities this task computes. */
    std::int32_t link = 0;
    /** Derivative column j for gradient tasks; -1 for RNEA tasks. */
    std::int32_t column = -1;
    /** Prerequisite tasks (same or earlier stages). */
    std::vector<TaskId> deps;

    /** Short label like "dFwd[j=3,i=5]" for reports and codegen. */
    std::string label() const;
};

/**
 * Dependency graph over all four traversal stages of one dynamics-gradient
 * evaluation.
 */
class TaskGraph
{
  public:
    /** Builds the graph of @p kernel for @p topo's robot. */
    explicit TaskGraph(const topology::TopologyInfo &topo,
                       KernelKind kernel = KernelKind::kDynamicsGradient);

    /** Which kernel this graph computes. */
    KernelKind kernel() const { return kernel_; }

    const std::vector<Task> &tasks() const { return tasks_; }
    const Task &task(TaskId id) const { return tasks_[id]; }
    std::size_t size() const { return tasks_.size(); }

    /** Ids of all tasks of one type, in creation order. */
    const std::vector<TaskId> &tasks_of_type(TaskType t) const;

    /** Id of the RNEA forward/backward task of a link. */
    TaskId rnea_forward(std::size_t link) const { return fwd_[link]; }
    TaskId rnea_backward(std::size_t link) const { return bwd_[link]; }

    /** Id of a gradient task, or kNoTask where none exists. */
    TaskId grad_forward(std::size_t column, std::size_t link) const;
    TaskId grad_backward(std::size_t column, std::size_t link) const;

    /**
     * Number of independent threads the forward gradient stage can launch
     * immediately (tasks with no same-stage predecessor).  Paper Fig. 14:
     * scales with the number of independent limbs.
     */
    std::size_t forward_initial_parallelism() const;

    /** Same for the backward gradient stage: scales with leaf columns. */
    std::size_t backward_initial_parallelism() const;

    /** Parent link index per link (kBaseParent for limb roots); retained so
     *  schedulers can reason about tree adjacency without the model. */
    const std::vector<int> &parents() const { return parents_; }

  private:
    TaskId add_task(TaskType type, std::int32_t link, std::int32_t column);

    void build_dynamics_gradient(const topology::TopologyInfo &topo);
    void build_mass_matrix(const topology::TopologyInfo &topo);
    void build_forward_kinematics(const topology::TopologyInfo &topo);

    KernelKind kernel_ = KernelKind::kDynamicsGradient;
    std::size_t n_ = 0;
    std::vector<int> parents_;
    std::vector<Task> tasks_;
    std::vector<TaskId> fwd_, bwd_;         // per link
    std::vector<TaskId> grad_fwd_, grad_bwd_; // n x n, kNoTask-filled
    std::vector<std::vector<TaskId>> by_type_;
};

} // namespace sched
} // namespace roboshape

#endif // ROBOSHAPE_SCHED_TASK_GRAPH_H
