/**
 * @file
 * Topology-metric-driven PE allocation strategies (paper Sec. 5.4).
 *
 * Each strategy converts Table 3 shape metrics into PE pool sizes.  The
 * exhaustive "Optimal Minimum Latency" search lives in core/design_space.h
 * since it must evaluate full designs.
 */

#ifndef ROBOSHAPE_SCHED_ALLOCATION_H
#define ROBOSHAPE_SCHED_ALLOCATION_H

#include <string>
#include <vector>

#include "topology/topology_info.h"

namespace roboshape {
namespace sched {

/** Resource allocation strategies evaluated in paper Fig. 13. */
enum class AllocationStrategy
{
    kTotalLinks,     ///< Naive robomorphic parallelism (prior work [32]).
    kAvgLeafDepth,   ///< Average leaf depth (underprovisions asymmetry).
    kMaxLeafDepth,   ///< Longest forward thread.
    kMaxDescendants, ///< Longest backward thread.
    kHybrid,         ///< Max leaf depth fwd + max descendants bwd.
};

/** All metric-based strategies in paper Fig. 13 order. */
const std::vector<AllocationStrategy> &all_strategies();

const char *to_string(AllocationStrategy s);

/** PE pool sizes for the two traversal directions. */
struct Allocation
{
    std::size_t pes_fwd = 1;
    std::size_t pes_bwd = 1;

    bool operator==(const Allocation &o) const = default;
};

/** Applies a metric-based strategy to a robot's shape metrics. */
Allocation allocate(AllocationStrategy strategy,
                    const topology::TopologyMetrics &metrics);

} // namespace sched
} // namespace roboshape

#endif // ROBOSHAPE_SCHED_ALLOCATION_H
