/**
 * @file
 * Implementation of blocked matrix-multiply scheduling.
 */

#include "sched/block_schedule.h"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "obs/registry.h"

namespace roboshape {
namespace sched {

SparsityMask
mass_inverse_mask(const topology::TopologyInfo &topo)
{
    const std::size_t n = topo.num_links();
    SparsityMask mask(n, std::vector<bool>(n, false));
    for (const auto &[begin, end] : topo.limb_spans())
        for (std::size_t i = begin; i < end; ++i)
            for (std::size_t j = begin; j < end; ++j)
                mask[i][j] = true;
    return mask;
}

SparsityMask
derivative_mask(const topology::TopologyInfo &topo)
{
    return topo.mass_matrix_mask();
}

namespace {

std::atomic<std::uint64_t> g_invocations{0};

/** Tile-level nonzero map of an element mask under a block size. */
struct TileMask
{
    std::size_t dim = 0;
    std::vector<bool> nonzero;
    std::size_t padded_zeros = 0;

    void
    build(const SparsityMask &m, std::size_t block)
    {
        const std::size_t n = m.size();
        dim = (n + block - 1) / block;
        nonzero.assign(dim * dim, false);
        padded_zeros = 0;
        for (std::size_t bi = 0; bi < dim; ++bi) {
            for (std::size_t bj = 0; bj < dim; ++bj) {
                bool any = false;
                std::size_t zeros = 0;
                for (std::size_t i = 0; i < block; ++i) {
                    for (std::size_t j = 0; j < block; ++j) {
                        const std::size_t r = bi * block + i;
                        const std::size_t c = bj * block + j;
                        if (r >= n || c >= n || !m[r][c])
                            ++zeros;
                        else
                            any = true;
                    }
                }
                nonzero[bi * dim + bj] = any;
                if (any)
                    padded_zeros += zeros;
            }
        }
    }

    bool operator()(std::size_t bi, std::size_t bj) const
    {
        return nonzero[bi * dim + bj];
    }
};

/** Reusable per-thread scratch; see the list scheduler's Workspace. */
struct Workspace
{
    TileMask ta, tb;
    std::vector<std::int64_t> chains;
    std::vector<std::int64_t> unit_loads;
};

Workspace &
workspace()
{
    static thread_local Workspace ws;
    return ws;
}

} // namespace

BlockSchedule
schedule_block_multiply(const SparsityMask &a, const SparsityMask &b,
                        std::size_t block_size, std::size_t units,
                        const TileTiming &timing, std::size_t num_products,
                        bool skip_zero_tiles)
{
    assert(!a.empty() && a.size() == b.size());
    assert(block_size > 0 && units > 0);
    g_invocations.fetch_add(1, std::memory_order_relaxed);

    Workspace &ws = workspace();
    TileMask &ta = ws.ta;
    TileMask &tb = ws.tb;
    ta.build(a, block_size);
    tb.build(b, block_size);

    BlockSchedule out;
    out.tile_dim = ta.dim;
    out.padded_zero_elements =
        (ta.padded_zeros + tb.padded_zeros) * num_products;

    // Per output tile (bi, bj): the serialized accumulator chain length is
    // the number of surviving k-tiles.
    std::vector<std::int64_t> &chains = ws.chains;
    chains.clear();
    chains.reserve(ta.dim * ta.dim * num_products);
    for (std::size_t bi = 0; bi < ta.dim; ++bi) {
        for (std::size_t bj = 0; bj < ta.dim; ++bj) {
            std::size_t execs = 0;
            for (std::size_t bk = 0; bk < ta.dim; ++bk) {
                if (!skip_zero_tiles || (ta(bi, bk) && tb(bk, bj)))
                    ++execs;
                else
                    ++out.nop_tiles;
            }
            out.executed_tiles += execs;
            if (execs > 0)
                chains.push_back(static_cast<std::int64_t>(execs) *
                                 timing.tile_cost(block_size));
        }
    }
    out.executed_tiles *= num_products;
    out.nop_tiles *= num_products;

    // The dq and dqd products replicate every chain.
    const std::size_t base_chains = chains.size();
    for (std::size_t rep = 1; rep < num_products; ++rep)
        for (std::size_t i = 0; i < base_chains; ++i)
            chains.push_back(chains[i]);

    // LPT (longest processing time first) onto the unit pool.  The pool is
    // tiny (mm_units defaults to 3), so a linear min scan beats a heap and
    // the tie-break choice cannot change the resulting load multiset.
    std::sort(chains.rbegin(), chains.rend());
    std::vector<std::int64_t> &unit_loads = ws.unit_loads;
    unit_loads.assign(units, 0);
    for (std::int64_t c : chains)
        *std::min_element(unit_loads.begin(), unit_loads.end()) += c;
    out.makespan = *std::max_element(unit_loads.begin(), unit_loads.end());

    ROBOSHAPE_OBS_COUNT("sched.block_runs", 1);
    ROBOSHAPE_OBS_COUNT("sched.block_executed_tiles", out.executed_tiles);
    ROBOSHAPE_OBS_COUNT("sched.block_nop_tiles", out.nop_tiles);
    ROBOSHAPE_OBS_COUNT("sched.block_padded_zeros",
                        out.padded_zero_elements);
    return out;
}

std::uint64_t
block_schedule_invocations()
{
    return g_invocations.load(std::memory_order_relaxed);
}

} // namespace sched
} // namespace roboshape
