/**
 * @file
 * Implementation of topology-derived task graphs.
 *
 * Granularity follows the paper's traversal analysis (Fig. 14):
 *
 *  - Forward-stage tasks are per link: the partial-derivative state of link
 *    i with respect to every ancestor column rides through one work item,
 *    so forward threads run down limbs and the number of threads that can
 *    launch scales with the number of independent limbs (allocation by max
 *    leaf depth covers the longest thread).
 *
 *  - Backward-stage tasks are per (column, link): each derivative column j
 *    accumulates forces from the bottom of subtree(j) up to the base, so
 *    the longest backward thread scales with max descendants.
 */

#include "sched/task_graph.h"

#include <cassert>

namespace roboshape {
namespace sched {

using topology::TopologyInfo;
using topology::kBaseParent;

const char *
to_string(KernelKind k)
{
    switch (k) {
      case KernelKind::kDynamicsGradient:
        return "dynamics-gradient";
      case KernelKind::kMassMatrix:
        return "mass-matrix (CRBA)";
      case KernelKind::kForwardKinematics:
        return "forward-kinematics";
    }
    return "?";
}

const std::vector<KernelKind> &
all_kernels()
{
    static const std::vector<KernelKind> kAll{
        KernelKind::kDynamicsGradient, KernelKind::kMassMatrix,
        KernelKind::kForwardKinematics};
    return kAll;
}

const char *
to_string(TaskType t)
{
    switch (t) {
      case TaskType::kRneaForward:
        return "rneaFwd";
      case TaskType::kRneaBackward:
        return "rneaBwd";
      case TaskType::kGradForward:
        return "gradFwd";
      case TaskType::kGradBackward:
        return "gradBwd";
    }
    return "?";
}

std::string
Task::label() const
{
    std::string s = to_string(type);
    s += "[i=" + std::to_string(link);
    if (column >= 0)
        s += ",j=" + std::to_string(column);
    s += "]";
    return s;
}

TaskId
TaskGraph::add_task(TaskType type, std::int32_t link, std::int32_t column)
{
    Task t;
    t.id = static_cast<TaskId>(tasks_.size());
    t.type = type;
    t.link = link;
    t.column = column;
    tasks_.push_back(std::move(t));
    by_type_[static_cast<std::size_t>(type)].push_back(tasks_.back().id);
    return tasks_.back().id;
}

TaskGraph::TaskGraph(const TopologyInfo &topo, KernelKind kernel)
    : kernel_(kernel), by_type_(4)
{
    const auto &model = topo.model();
    n_ = model.num_links();
    parents_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i)
        parents_[i] = model.parent(i);
    fwd_.assign(n_, kNoTask);
    bwd_.assign(n_, kNoTask);
    grad_fwd_.assign(n_ * n_, kNoTask);
    grad_bwd_.assign(n_ * n_, kNoTask);

    switch (kernel_) {
      case KernelKind::kDynamicsGradient:
        build_dynamics_gradient(topo);
        break;
      case KernelKind::kMassMatrix:
        build_mass_matrix(topo);
        break;
      case KernelKind::kForwardKinematics:
        build_forward_kinematics(topo);
        break;
    }
}

void
TaskGraph::build_dynamics_gradient(const TopologyInfo &topo)
{
    const auto &model = topo.model();

    // RNEA forward: chained parent -> child down the tree.
    for (std::size_t i = 0; i < n_; ++i) {
        fwd_[i] = add_task(TaskType::kRneaForward,
                           static_cast<std::int32_t>(i), -1);
        const int p = model.parent(i);
        if (p != kBaseParent)
            tasks_[fwd_[i]].deps.push_back(fwd_[p]);
    }

    // RNEA backward: needs the link's forward results and every child's
    // accumulated force.
    for (std::size_t ii = n_; ii-- > 0;) {
        bwd_[ii] = add_task(TaskType::kRneaBackward,
                            static_cast<std::int32_t>(ii), -1);
        tasks_[bwd_[ii]].deps.push_back(fwd_[ii]);
        for (int c : model.children(ii))
            tasks_[bwd_[ii]].deps.push_back(bwd_[c]);
    }

    // Gradient forward: one task per link, carrying all ancestor columns.
    // Thread structure mirrors the RNEA forward traversal.
    std::vector<TaskId> gf(n_, kNoTask);
    for (std::size_t i = 0; i < n_; ++i) {
        gf[i] = add_task(TaskType::kGradForward,
                         static_cast<std::int32_t>(i), -1);
        tasks_[gf[i]].deps.push_back(fwd_[i]);
        const int p = model.parent(i);
        if (p != kBaseParent)
            tasks_[gf[i]].deps.push_back(gf[p]);
        // Column view: this task covers every column j on i's root path.
        for (std::size_t j : topo.root_path(i))
            grad_fwd_[j * n_ + i] = gf[i];
    }

    // Gradient backward: per (column j, link i) for i in subtree(j) and for
    // strict ancestors of j, accumulating from the subtree bottom to the
    // base.
    for (std::size_t j = 0; j < n_; ++j) {
        const std::size_t sub_end = j + topo.subtree_size(j);
        // Subtree members, deepest first so dependencies already exist.
        for (std::size_t i = sub_end; i-- > j;) {
            const TaskId id = add_task(TaskType::kGradBackward,
                                       static_cast<std::int32_t>(i),
                                       static_cast<std::int32_t>(j));
            grad_bwd_[j * n_ + i] = id;
            tasks_[id].deps.push_back(gf[i]);
            if (i == j)
                tasks_[id].deps.push_back(bwd_[j]); // accumulated f_j term
            for (int c : model.children(i)) {
                assert(grad_bwd_[j * n_ + c] != kNoTask);
                tasks_[id].deps.push_back(grad_bwd_[j * n_ + c]);
            }
        }
        // Ancestor chain above j up to the base.
        int i = model.parent(j);
        std::size_t below = j;
        while (i != kBaseParent) {
            const TaskId id = add_task(TaskType::kGradBackward, i,
                                       static_cast<std::int32_t>(j));
            grad_bwd_[j * n_ + i] = id;
            tasks_[id].deps.push_back(fwd_[i]); // needs S_i, X_i
            tasks_[id].deps.push_back(grad_bwd_[j * n_ + below]);
            below = static_cast<std::size_t>(i);
            i = model.parent(i);
        }
    }
}

void
TaskGraph::build_mass_matrix(const TopologyInfo &topo)
{
    const auto &model = topo.model();

    // Setup tasks: joint transforms and subspaces are per-link and
    // independent (xup_i needs only q_i) — full width-N parallelism.
    for (std::size_t i = 0; i < n_; ++i)
        fwd_[i] = add_task(TaskType::kRneaForward,
                           static_cast<std::int32_t>(i), -1);

    // Composite-inertia accumulation: leaves to base (pattern 1 backward).
    for (std::size_t ii = n_; ii-- > 0;) {
        bwd_[ii] = add_task(TaskType::kRneaBackward,
                            static_cast<std::int32_t>(ii), -1);
        tasks_[bwd_[ii]].deps.push_back(fwd_[ii]);
        for (int c : model.children(ii))
            tasks_[bwd_[ii]].deps.push_back(bwd_[c]);
    }

    // Root-path force walks: one thread per mass-matrix column c, walking
    // from link c up to the base and emitting H(c, j) at every ancestor —
    // the N^2 pattern-(2) work of CRBA.
    for (std::size_t c = 0; c < n_; ++c) {
        TaskId prev = kNoTask;
        int j = static_cast<int>(c);
        while (j != kBaseParent) {
            const TaskId id = add_task(TaskType::kGradBackward, j,
                                       static_cast<std::int32_t>(c));
            grad_bwd_[c * n_ + j] = id;
            if (prev == kNoTask)
                tasks_[id].deps.push_back(bwd_[c]); // needs Ic_c
            else
                tasks_[id].deps.push_back(prev);
            tasks_[id].deps.push_back(fwd_[j]); // needs S_j / xup
            prev = id;
            j = model.parent(j);
        }
    }
}

void
TaskGraph::build_forward_kinematics(const TopologyInfo &topo)
{
    const auto &model = topo.model();

    // Pose/velocity traversal: chained parent -> child (pattern 1).
    for (std::size_t i = 0; i < n_; ++i) {
        fwd_[i] = add_task(TaskType::kRneaForward,
                           static_cast<std::int32_t>(i), -1);
        const int p = model.parent(i);
        if (p != kBaseParent)
            tasks_[fwd_[i]].deps.push_back(fwd_[p]);
    }

    // Jacobian-column threads: per-link tasks carrying every ancestor
    // column down the tree (identical structure to the gradient forward
    // stage — the ancestor-closure pattern 2).
    std::vector<TaskId> jc(n_, kNoTask);
    for (std::size_t i = 0; i < n_; ++i) {
        jc[i] = add_task(TaskType::kGradForward,
                         static_cast<std::int32_t>(i), -1);
        tasks_[jc[i]].deps.push_back(fwd_[i]);
        const int p = model.parent(i);
        if (p != kBaseParent)
            tasks_[jc[i]].deps.push_back(jc[p]);
        for (std::size_t j : topo.root_path(i))
            grad_fwd_[j * n_ + i] = jc[i];
    }
}

const std::vector<TaskId> &
TaskGraph::tasks_of_type(TaskType t) const
{
    return by_type_[static_cast<std::size_t>(t)];
}

TaskId
TaskGraph::grad_forward(std::size_t column, std::size_t link) const
{
    return grad_fwd_[column * n_ + link];
}

TaskId
TaskGraph::grad_backward(std::size_t column, std::size_t link) const
{
    return grad_bwd_[column * n_ + link];
}

std::size_t
TaskGraph::forward_initial_parallelism() const
{
    // Forward threads start at base children and fork at branch links.
    std::size_t count = 0;
    for (TaskId id : tasks_of_type(TaskType::kGradForward)) {
        bool has_same_stage_dep = false;
        for (TaskId d : tasks_[id].deps)
            if (tasks_[d].type == TaskType::kGradForward)
                has_same_stage_dep = true;
        if (!has_same_stage_dep)
            ++count;
    }
    return count;
}

std::size_t
TaskGraph::backward_initial_parallelism() const
{
    std::size_t count = 0;
    for (TaskId id : tasks_of_type(TaskType::kGradBackward)) {
        bool has_same_stage_dep = false;
        for (TaskId d : tasks_[id].deps)
            if (tasks_[d].type == TaskType::kGradBackward)
                has_same_stage_dep = true;
        if (!has_same_stage_dep)
            ++count;
    }
    return count;
}

} // namespace sched
} // namespace roboshape
