/**
 * @file
 * ASCII timeline rendering of schedules.
 *
 * Renders a schedule as a per-PE Gantt chart (one row per PE, one column
 * per cycle bucket) — the textual equivalent of the schedule diagrams in
 * paper Fig. 7b.  Used by the examples, the debug workflow, and tests.
 */

#ifndef ROBOSHAPE_SCHED_TIMELINE_H
#define ROBOSHAPE_SCHED_TIMELINE_H

#include <string>

#include "sched/list_scheduler.h"
#include "sched/task_graph.h"

namespace roboshape {
namespace sched {

/**
 * Renders @p schedule as text.
 *
 * Each PE row shows one character per bucket of cycles: '.' idle, or the
 * base-36 digit (0-9a-z) of `link % 36` for the link whose task occupies
 * the bucket.  Base 36 covers every bundled robot without aliasing (the
 * largest, the full humanoid, has 27 links); larger robots alias links
 * congruent mod 36, which the legend disambiguates.
 *
 * Bucketing rule: a row is at most @p max_width characters, so each
 * character stands for `bucket = ceil(makespan / max_width)` cycles
 * (1 when the makespan already fits).  Within a bucket the glyph of the
 * *last placement drawn* that overlaps it wins; placements are drawn in
 * Schedule::placements order, i.e. task-id order, not start order.
 *
 * When @p with_legend is set two legend lines follow the rows: "glyphs:"
 * maps every used glyph to its link(s) — an aliased glyph lists all of
 * them ("a=link10,link46") so the rendering is never ambiguous — and
 * "starts:" lists every task's label and start cycle.
 *
 * @param max_width maximum characters per row; cycles are bucketed to fit.
 */
std::string render_timeline(const TaskGraph &graph, const Schedule &schedule,
                            std::size_t max_width = 72,
                            bool with_legend = false);

} // namespace sched
} // namespace roboshape

#endif // ROBOSHAPE_SCHED_TIMELINE_H
