/**
 * @file
 * ASCII timeline rendering of schedules.
 *
 * Renders a schedule as a per-PE Gantt chart (one row per PE, one column
 * per cycle bucket) — the textual equivalent of the schedule diagrams in
 * paper Fig. 7b.  Used by the examples, the debug workflow, and tests.
 */

#ifndef ROBOSHAPE_SCHED_TIMELINE_H
#define ROBOSHAPE_SCHED_TIMELINE_H

#include <string>

#include "sched/list_scheduler.h"
#include "sched/task_graph.h"

namespace roboshape {
namespace sched {

/**
 * Renders @p schedule as text.
 *
 * Each PE row shows one character per bucket of cycles: '.' idle, or the
 * last hex digit of the link whose task occupies the bucket.  A legend of
 * task starts follows when @p with_legend is set.
 *
 * @param max_width maximum characters per row; cycles are bucketed to fit.
 */
std::string render_timeline(const TaskGraph &graph, const Schedule &schedule,
                            std::size_t max_width = 72,
                            bool with_legend = false);

} // namespace sched
} // namespace roboshape

#endif // ROBOSHAPE_SCHED_TIMELINE_H
