/**
 * @file
 * Implementation of the execution-order helpers.
 */

#include "sched/trace.h"

#include <algorithm>

namespace roboshape {
namespace sched {

std::size_t
live_placement_count(const Schedule &s)
{
    std::size_t n = 0;
    for (const Placement &p : s.placements)
        if (p.task != kNoTask)
            ++n;
    return n;
}

void
append_in_execution_order(const Schedule &s,
                          std::vector<const Placement *> &out)
{
    const std::size_t begin = out.size();
    for (const Placement &p : s.placements)
        if (p.task != kNoTask)
            out.push_back(&p);
    std::stable_sort(out.begin() + static_cast<std::ptrdiff_t>(begin),
                     out.end(),
                     [](const Placement *a, const Placement *b) {
                         return a->start < b->start;
                     });
}

} // namespace sched
} // namespace roboshape
