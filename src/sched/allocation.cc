/**
 * @file
 * Implementation of allocation strategies.
 */

#include "sched/allocation.h"

#include <cmath>

namespace roboshape {
namespace sched {

const std::vector<AllocationStrategy> &
all_strategies()
{
    static const std::vector<AllocationStrategy> kAll{
        AllocationStrategy::kTotalLinks, AllocationStrategy::kAvgLeafDepth,
        AllocationStrategy::kMaxLeafDepth,
        AllocationStrategy::kMaxDescendants, AllocationStrategy::kHybrid};
    return kAll;
}

const char *
to_string(AllocationStrategy s)
{
    switch (s) {
      case AllocationStrategy::kTotalLinks:
        return "Total Links";
      case AllocationStrategy::kAvgLeafDepth:
        return "Avg Leaf Depth";
      case AllocationStrategy::kMaxLeafDepth:
        return "Max Leaf Depth";
      case AllocationStrategy::kMaxDescendants:
        return "Max Descendants";
      case AllocationStrategy::kHybrid:
        return "Hybrid";
    }
    return "?";
}

Allocation
allocate(AllocationStrategy strategy,
         const topology::TopologyMetrics &metrics)
{
    const auto uniform = [](std::size_t p) {
        return Allocation{std::max<std::size_t>(1, p),
                          std::max<std::size_t>(1, p)};
    };
    switch (strategy) {
      case AllocationStrategy::kTotalLinks:
        return uniform(metrics.total_links);
      case AllocationStrategy::kAvgLeafDepth:
        return uniform(static_cast<std::size_t>(
            std::lround(metrics.avg_leaf_depth)));
      case AllocationStrategy::kMaxLeafDepth:
        return uniform(metrics.max_leaf_depth);
      case AllocationStrategy::kMaxDescendants:
        return uniform(metrics.max_descendants);
      case AllocationStrategy::kHybrid:
        return Allocation{std::max<std::size_t>(1, metrics.max_leaf_depth),
                          std::max<std::size_t>(1,
                                                metrics.max_descendants)};
    }
    return uniform(1);
}

} // namespace sched
} // namespace roboshape
