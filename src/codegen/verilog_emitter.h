/**
 * @file
 * Verilog lowering of generated designs (paper Fig. 7d).
 *
 * Emits the templated architecture of paper Fig. 8 with the generated
 * schedules baked into per-PE ROMs: schedule storage (a), control state
 * machines (b), RNEA output buffers (c), parent-link registers (d), branch
 * checkpoint registers (e), and blocked-multiply accumulators (f).  The
 * datapath macro-operations (6x6 spatial arithmetic) are emitted as
 * instantiations of library cells, mirroring how the original flow
 * composed hand-written Bluespec datapaths under generated control.
 */

#ifndef ROBOSHAPE_CODEGEN_VERILOG_EMITTER_H
#define ROBOSHAPE_CODEGEN_VERILOG_EMITTER_H

#include <string>

#include "accel/design.h"

namespace roboshape {
namespace codegen {

/** Emits the synthesizable top module for @p design. */
std::string emit_verilog(const accel::AcceleratorDesign &design);

/** Emits a self-checking cycle-count testbench for the top module. */
std::string emit_testbench(const accel::AcceleratorDesign &design);

/**
 * Emits the shared datapath cell library (behavioral models of the
 * robomorphic traversal PE and the block matrix-vector unit) that every
 * generated top module instantiates.  Emitted once per RTL bundle.
 */
std::string emit_cell_library();

/** Verilog-legal identifier derived from the robot name. */
std::string module_name(const accel::AcceleratorDesign &design);

} // namespace codegen
} // namespace roboshape

#endif // ROBOSHAPE_CODEGEN_VERILOG_EMITTER_H
