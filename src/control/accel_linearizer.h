/**
 * @file
 * iLQR dynamics linearization on the compiled accelerator engine.
 *
 * This is the paper's end-to-end deployment story (Sec. 5.2): the host
 * keeps the cheap forward-dynamics front-end (CRBA, M^-1, bias forces —
 * the parts the accelerator does not implement) and offloads the
 * dominant dynamics-gradient evaluation, one packet per knot point per
 * solver iteration, to the generated accelerator — here its compiled
 * functional model, accel::SimEngine.
 */

#ifndef ROBOSHAPE_CONTROL_ACCEL_LINEARIZER_H
#define ROBOSHAPE_CONTROL_ACCEL_LINEARIZER_H

#include "accel/design.h"
#include "accel/sim_engine.h"
#include "control/ilqr.h"
#include "dynamics/rnea.h"

namespace roboshape {
namespace control {

/**
 * DynamicsLinearizer backed by a compiled dynamics-gradient accelerator.
 *
 * Host front-end work (linearization point and M^-1) follows
 * dynamics::forward_dynamics_gradients exactly; the dtau traversal and the
 * blocked -M^-1 multiplies run on the engine.  The engine's workspace and
 * result block live in the linearizer, so repeated calls reuse all
 * accelerator-side storage.
 */
class AcceleratorLinearizer : public DynamicsLinearizer
{
  public:
    /**
     * @param design a kDynamicsGradient accelerator; must outlive this.
     * @throws std::logic_error for designs of any other kernel.
     * @throws DataHazardError if @p order is not executable.
     */
    explicit AcceleratorLinearizer(
        const accel::AcceleratorDesign &design,
        accel::SimOrder order = accel::SimOrder::kStaged,
        const spatial::Vec3 &gravity = dynamics::kDefaultGravity);

    void linearize(const linalg::Vector &x, const linalg::Vector &u,
                   double dt, linalg::Matrix &a, linalg::Matrix &b) override;

    /** Packets the engine has executed so far. */
    std::size_t calls() const { return calls_; }

    const accel::SimEngine &engine() const { return engine_; }

  private:
    const accel::AcceleratorDesign *design_;
    accel::SimEngine engine_;
    accel::SimEngine::Workspace ws_;
    accel::EngineResult result_;
    spatial::Vec3 gravity_;
    // Host-side marshalling scratch, reused across calls.
    linalg::Vector q_, qd_;
    linalg::Matrix mass_inv_;
    std::size_t calls_ = 0;
};

} // namespace control
} // namespace roboshape

#endif // ROBOSHAPE_CONTROL_ACCEL_LINEARIZER_H
