/**
 * @file
 * Iterative LQR trajectory optimization — the paper's motivating workload.
 *
 * Nonlinear optimal motion control (DDP/iLQR-family solvers [7, 30, 33,
 * 43]) linearizes the robot dynamics at every knot point of a trajectory,
 * every solver iteration; the paper's Sec. 1 motivation is that these
 * forward-dynamics-gradient evaluations consume 30-90% of total solver
 * runtime and block online whole-body control for legged robots.  This
 * module implements the solver so the repository can *measure* that
 * bottleneck on its own dynamics substrate (bench/control_bottleneck) and
 * demonstrate what the accelerator buys end to end.
 *
 * Discrete-time formulation with state x = [q; qd], control u = tau,
 * semi-implicit Euler dynamics, quadratic tracking costs, regularized
 * Riccati backward pass, and a backtracking line search.
 */

#ifndef ROBOSHAPE_CONTROL_ILQR_H
#define ROBOSHAPE_CONTROL_ILQR_H

#include <vector>

#include "linalg/matrix.h"
#include "topology/robot_model.h"
#include "topology/topology_info.h"

namespace roboshape {
namespace control {

/** Quadratic tracking objective. */
struct IlqrProblem
{
    linalg::Vector q0;      ///< Initial joint positions.
    linalg::Vector qd0;     ///< Initial joint velocities.
    linalg::Vector q_goal;  ///< Target joint positions.
    std::size_t horizon = 16; ///< Knot points T.
    double dt = 0.01;       ///< Integration step [s].

    double w_q = 10.0;        ///< Running position weight.
    double w_qd = 0.1;        ///< Running velocity weight.
    double w_u = 1e-4;        ///< Control effort weight.
    double w_terminal = 400.0; ///< Terminal position weight.
};

/**
 * Pluggable backend for the discrete linearization x' ~ A x + B u.
 *
 * The solver calls linearize() once per knot point per iteration — the
 * dominant cost of the whole solve.  The default (a null linearizer in
 * IlqrOptions) evaluates dynamics::forward_dynamics_gradients on the
 * host; control::AcceleratorLinearizer routes the same evaluation through
 * the compiled accelerator simulation engine.
 */
class DynamicsLinearizer
{
  public:
    virtual ~DynamicsLinearizer() = default;

    /**
     * Writes the discrete-time linearization of the dynamics at state
     * @p x = [q; qd] and control @p u under a semi-implicit Euler step of
     * @p dt into @p a (2n x 2n) and @p b (2n x n).
     */
    virtual void linearize(const linalg::Vector &x, const linalg::Vector &u,
                           double dt, linalg::Matrix &a,
                           linalg::Matrix &b) = 0;
};

struct IlqrOptions
{
    std::size_t max_iterations = 50;
    double cost_tolerance = 1e-6; ///< Relative improvement to stop at.
    double regularization = 1e-6; ///< Initial Riccati regularization.
    std::size_t max_line_search = 8;
    /** Linearization backend; null = host dynamics gradients (not owned,
     *  must outlive the solve). */
    DynamicsLinearizer *linearizer = nullptr;
};

/** Wall-time breakdown of one solve (microseconds). */
struct IlqrTiming
{
    double total_us = 0.0;
    double linearization_us = 0.0; ///< Forward-dynamics gradients.
    double backward_pass_us = 0.0;
    double rollout_us = 0.0;

    /** Fraction of solver time in dynamics gradients (paper Sec. 1:
     *  30-90%). */
    double
    gradient_fraction() const
    {
        return total_us > 0.0 ? linearization_us / total_us : 0.0;
    }
};

struct IlqrResult
{
    bool converged = false;
    std::size_t iterations = 0;
    std::vector<double> cost_history; ///< Cost after each iteration.
    /** Optimized state trajectory, horizon+1 entries of [q; qd]. */
    std::vector<linalg::Vector> states;
    /** Optimized control trajectory, horizon entries. */
    std::vector<linalg::Vector> controls;
    IlqrTiming timing;

    double final_cost() const
    {
        return cost_history.empty() ? 0.0 : cost_history.back();
    }
};

/**
 * Solves the tracking problem with iLQR.  The number of gradient
 * evaluations is horizon x iterations — the batched coprocessor pattern
 * of paper Sec. 5.2.
 */
IlqrResult solve_ilqr(const topology::RobotModel &model,
                      const topology::TopologyInfo &topo,
                      const IlqrProblem &problem,
                      const IlqrOptions &options = {});

/** Trajectory cost of (states, controls) under @p problem. */
double trajectory_cost(const IlqrProblem &problem,
                       const std::vector<linalg::Vector> &states,
                       const std::vector<linalg::Vector> &controls);

} // namespace control
} // namespace roboshape

#endif // ROBOSHAPE_CONTROL_ILQR_H
