/**
 * @file
 * Implementation of the accelerator-backed iLQR linearizer.
 */

#include "control/accel_linearizer.h"

#include <stdexcept>

#include "dynamics/crba.h"

namespace roboshape {
namespace control {

AcceleratorLinearizer::AcceleratorLinearizer(
    const accel::AcceleratorDesign &design, accel::SimOrder order,
    const spatial::Vec3 &gravity)
    : design_(&design), engine_(design, order),
      ws_(engine_.make_workspace()), gravity_(gravity)
{
    if (design.kernel() != sched::KernelKind::kDynamicsGradient)
        throw std::logic_error(
            "AcceleratorLinearizer needs a dynamics-gradient design");
    const std::size_t n = design.model().num_links();
    q_.resize(n);
    qd_.resize(n);
}

void
AcceleratorLinearizer::linearize(const linalg::Vector &x,
                                 const linalg::Vector &u, double dt,
                                 linalg::Matrix &a, linalg::Matrix &b)
{
    const auto &model = design_->model();
    const auto &topo = design_->topology();
    const std::size_t n = model.num_links();
    for (std::size_t i = 0; i < n; ++i) {
        q_[i] = x[i];
        qd_[i] = x[n + i];
    }

    // Host front-end: the linearization point, exactly as
    // dynamics::forward_dynamics_gradients computes it.
    const linalg::Matrix mass = dynamics::crba(model, q_);
    mass_inv_ = dynamics::mass_matrix_inverse(topo, mass);
    const linalg::Vector bias = dynamics::bias_forces(model, q_, qd_,
                                                      gravity_);
    const linalg::Vector qdd = mass_inv_ * (u - bias);

    // Offloaded stage: dtau traversal + blocked -M^-1 multiplies.
    accel::InputPacket packet;
    packet.q = &q_;
    packet.qd = &qd_;
    packet.qdd = &qdd;
    packet.minv = &mass_inv_;
    packet.gravity = gravity_;
    engine_.run(ws_, packet, result_);
    ++calls_;

    // Semi-implicit Euler: qd' = qd + dt qdd; q' = q + dt qd'.
    a.resize(2 * n, 2 * n);
    b.resize(2 * n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            const double dq = dt * result_.dqdd_dq(i, j);
            const double dqd = dt * result_.dqdd_dqd(i, j);
            // qd' rows.
            a(n + i, j) = dq;
            a(n + i, n + j) = (i == j ? 1.0 : 0.0) + dqd;
            // q' rows = q + dt qd'.
            a(i, j) = (i == j ? 1.0 : 0.0) + dt * dq;
            a(i, n + j) = dt * ((i == j ? 1.0 : 0.0) + dqd);
            const double du = dt * mass_inv_(i, j);
            b(n + i, j) = du;
            b(i, j) = dt * du;
        }
    }
}

} // namespace control
} // namespace roboshape
