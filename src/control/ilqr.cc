/**
 * @file
 * Implementation of the iLQR solver.
 */

#include "control/ilqr.h"

#include <cassert>
#include <chrono>
#include <cmath>

#include "dynamics/aba.h"
#include "dynamics/fd_derivatives.h"
#include "linalg/factorization.h"

namespace roboshape {
namespace control {

namespace {

using linalg::Matrix;
using linalg::Vector;
// Solve-time telemetry only (IlqrResult::*_us): the clock never enters
// the optimization arithmetic, so trajectories stay bit-identical.
using Clock = std::chrono::steady_clock; // NOLINT(no-nondeterminism)

double
us_since(Clock::time_point t0)
{
    return std::chrono::duration<double, std::micro>(Clock::now() - t0)
        .count();
}

/** Splits x = [q; qd]. */
void
split(const Vector &x, Vector &q, Vector &qd)
{
    const std::size_t n = x.size() / 2;
    for (std::size_t i = 0; i < n; ++i) {
        q[i] = x[i];
        qd[i] = x[n + i];
    }
}

/** Semi-implicit Euler step of the true dynamics. */
Vector
step(const topology::RobotModel &model, const Vector &x, const Vector &u,
     double dt)
{
    const std::size_t n = model.num_links();
    Vector q(n), qd(n);
    split(x, q, qd);
    const Vector qdd = dynamics::aba(model, q, qd, u);
    Vector x_next(2 * n);
    for (std::size_t i = 0; i < n; ++i) {
        const double qd_next = qd[i] + dt * qdd[i];
        x_next[n + i] = qd_next;
        x_next[i] = q[i] + dt * qd_next;
    }
    return x_next;
}

/** Discrete linearization x' ~ A x + B u from the analytic gradients. */
void
linearize(const topology::RobotModel &model,
          const topology::TopologyInfo &topo, const Vector &x,
          const Vector &u, double dt, Matrix &a, Matrix &b)
{
    const std::size_t n = model.num_links();
    Vector q(n), qd(n);
    split(x, q, qd);
    const auto g =
        dynamics::forward_dynamics_gradients(model, topo, q, qd, u);

    // Semi-implicit Euler: qd' = qd + dt qdd; q' = q + dt qd'.
    a.resize(2 * n, 2 * n);
    b.resize(2 * n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            const double dq = dt * g.dqdd_dq(i, j);
            const double dqd = dt * g.dqdd_dqd(i, j);
            // qd' rows.
            a(n + i, j) = dq;
            a(n + i, n + j) = (i == j ? 1.0 : 0.0) + dqd;
            // q' rows = q + dt qd'.
            a(i, j) = (i == j ? 1.0 : 0.0) + dt * dq;
            a(i, n + j) = dt * ((i == j ? 1.0 : 0.0) + dqd);
            const double du = dt * g.mass_inv(i, j);
            b(n + i, j) = du;
            b(i, j) = dt * du;
        }
    }
}

/** Running cost and its gradients at one knot. */
struct CostExpansion
{
    double value = 0.0;
    Vector lx;  // 2n
    Matrix lxx; // diagonal weights, 2n x 2n
    Vector lu;  // n
    Matrix luu; // n x n
};

CostExpansion
running_cost(const IlqrProblem &p, const Vector &x, const Vector &u)
{
    const std::size_t n = u.size();
    CostExpansion c;
    c.lx = Vector(2 * n);
    c.lxx.resize(2 * n, 2 * n);
    c.lu = Vector(n);
    c.luu.resize(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        const double eq = x[i] - p.q_goal[i];
        c.value += 0.5 * p.w_q * eq * eq + 0.5 * p.w_qd * x[n + i] * x[n + i] +
                   0.5 * p.w_u * u[i] * u[i];
        c.lx[i] = p.w_q * eq;
        c.lx[n + i] = p.w_qd * x[n + i];
        c.lxx(i, i) = p.w_q;
        c.lxx(n + i, n + i) = p.w_qd;
        c.lu[i] = p.w_u * u[i];
        c.luu(i, i) = p.w_u;
    }
    return c;
}

CostExpansion
terminal_cost(const IlqrProblem &p, const Vector &x)
{
    const std::size_t n = p.q_goal.size();
    CostExpansion c;
    c.lx = Vector(2 * n);
    c.lxx.resize(2 * n, 2 * n);
    for (std::size_t i = 0; i < n; ++i) {
        const double eq = x[i] - p.q_goal[i];
        c.value += 0.5 * p.w_terminal * eq * eq +
                   0.5 * p.w_qd * x[n + i] * x[n + i];
        c.lx[i] = p.w_terminal * eq;
        c.lx[n + i] = p.w_qd * x[n + i];
        c.lxx(i, i) = p.w_terminal;
        c.lxx(n + i, n + i) = p.w_qd;
    }
    return c;
}

} // namespace

double
trajectory_cost(const IlqrProblem &problem,
                const std::vector<Vector> &states,
                const std::vector<Vector> &controls)
{
    assert(states.size() == controls.size() + 1);
    double cost = 0.0;
    for (std::size_t k = 0; k < controls.size(); ++k)
        cost += running_cost(problem, states[k], controls[k]).value;
    return cost + terminal_cost(problem, states.back()).value;
}

IlqrResult
solve_ilqr(const topology::RobotModel &model,
           const topology::TopologyInfo &topo, const IlqrProblem &problem,
           const IlqrOptions &options)
{
    const std::size_t n = model.num_links();
    const std::size_t horizon = problem.horizon;
    assert(problem.q0.size() == n && problem.q_goal.size() == n);

    IlqrResult result;
    const auto t_total = Clock::now();

    // Initial rollout: gravity-free zero torques.
    result.controls.assign(horizon, Vector(n));
    result.states.assign(horizon + 1, Vector(2 * n));
    for (std::size_t i = 0; i < n; ++i) {
        result.states[0][i] = problem.q0[i];
        result.states[0][n + i] = problem.qd0[i];
    }
    {
        const auto t0 = Clock::now();
        for (std::size_t k = 0; k < horizon; ++k)
            result.states[k + 1] =
                step(model, result.states[k], result.controls[k],
                     problem.dt);
        result.timing.rollout_us += us_since(t0);
    }
    double cost = trajectory_cost(problem, result.states, result.controls);
    result.cost_history.push_back(cost);

    double mu = options.regularization;
    std::vector<Matrix> a(horizon), b(horizon), gain_k(horizon);
    std::vector<Vector> ff_k(horizon);

    for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
        ++result.iterations;

        // ---- Linearization (the accelerated kernel) -------------------
        {
            const auto t0 = Clock::now();
            for (std::size_t k = 0; k < horizon; ++k) {
                if (options.linearizer)
                    options.linearizer->linearize(result.states[k],
                                                  result.controls[k],
                                                  problem.dt, a[k], b[k]);
                else
                    linearize(model, topo, result.states[k],
                              result.controls[k], problem.dt, a[k], b[k]);
            }
            result.timing.linearization_us += us_since(t0);
        }

        // ---- Riccati backward pass ------------------------------------
        bool backward_ok = true;
        {
            const auto t0 = Clock::now();
            const CostExpansion terminal =
                terminal_cost(problem, result.states[horizon]);
            Vector vx = terminal.lx;
            Matrix vxx = terminal.lxx;
            for (std::size_t kk = horizon; kk-- > 0;) {
                const CostExpansion c =
                    running_cost(problem, result.states[kk],
                                 result.controls[kk]);
                const Matrix at = a[kk].transposed();
                const Matrix bt = b[kk].transposed();
                const Vector qx = c.lx + at * vx;
                const Vector qu = c.lu + bt * vx;
                const Matrix qxx = c.lxx + at * vxx * a[kk];
                Matrix quu = c.luu + bt * vxx * b[kk];
                const Matrix qux = bt * vxx * a[kk];
                for (std::size_t i = 0; i < n; ++i)
                    quu(i, i) += mu;
                const linalg::Ldlt solver(quu);
                if (!solver.ok()) {
                    backward_ok = false;
                    break;
                }
                ff_k[kk] = solver.solve(qu) * -1.0;
                gain_k[kk] = solver.solve(qux) * -1.0;
                vx = qx + gain_k[kk].transposed() * (quu * ff_k[kk]) +
                     gain_k[kk].transposed() * qu +
                     qux.transposed() * ff_k[kk];
                vxx = qxx + gain_k[kk].transposed() * quu * gain_k[kk] +
                      gain_k[kk].transposed() * qux +
                      qux.transposed() * gain_k[kk];
                // Symmetrize against numerical drift.
                vxx = (vxx + vxx.transposed()) * 0.5;
            }
            result.timing.backward_pass_us += us_since(t0);
        }
        if (!backward_ok) {
            mu *= 10.0;
            continue;
        }

        // ---- Line-searched forward pass -------------------------------
        bool improved = false;
        {
            const auto t0 = Clock::now();
            double alpha = 1.0;
            for (std::size_t ls = 0; ls < options.max_line_search; ++ls) {
                std::vector<Vector> xs(horizon + 1, Vector(2 * n));
                std::vector<Vector> us(horizon, Vector(n));
                xs[0] = result.states[0];
                for (std::size_t k = 0; k < horizon; ++k) {
                    const Vector dx = xs[k] - result.states[k];
                    us[k] = result.controls[k] + ff_k[k] * alpha +
                            gain_k[k] * dx;
                    xs[k + 1] = step(model, xs[k], us[k], problem.dt);
                }
                const double new_cost =
                    trajectory_cost(problem, xs, us);
                if (new_cost < cost) {
                    result.states = std::move(xs);
                    result.controls = std::move(us);
                    improved = true;
                    mu = std::max(mu * 0.5, 1e-9);
                    const double rel = (cost - new_cost) /
                                       std::max(1.0, std::abs(cost));
                    cost = new_cost;
                    result.cost_history.push_back(cost);
                    if (rel < options.cost_tolerance)
                        result.converged = true;
                    break;
                }
                alpha *= 0.5;
            }
            result.timing.rollout_us += us_since(t0);
        }
        if (!improved) {
            mu *= 10.0;
            if (mu > 1e8) {
                result.converged = true; // stalled at a local optimum
                break;
            }
        }
        if (result.converged)
            break;
    }

    result.timing.total_us = us_since(t_total);
    return result;
}

} // namespace control
} // namespace roboshape
