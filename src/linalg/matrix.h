/**
 * @file
 * Dense dynamic-size matrix and vector types.
 *
 * RoboShape operates on small-to-moderate topology-sized matrices (the N x N
 * mass matrix and the N x N partial-derivative matrices, with N = total robot
 * links, typically 7-19).  The paper explicitly notes that heavyweight sparse
 * encodings (CSR etc.) are unsuitable at these sizes, so the library is built
 * on a plain dense row-major representation with explicit block-sparsity
 * helpers layered on top (see blocked.h).
 */

#ifndef ROBOSHAPE_LINALG_MATRIX_H
#define ROBOSHAPE_LINALG_MATRIX_H

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace roboshape {
namespace linalg {

class Matrix;

/**
 * Dense dynamic-size column vector of doubles.
 */
class Vector
{
  public:
    /** Creates an empty (size-0) vector. */
    Vector() = default;

    /** Creates a vector of @p n zeros. */
    explicit Vector(std::size_t n) : data_(n, 0.0) {}

    /** Creates a vector from an explicit element list. */
    Vector(std::initializer_list<double> values) : data_(values) {}

    /** @return number of elements. */
    std::size_t size() const { return data_.size(); }

    double &operator[](std::size_t i) { assert(i < size()); return data_[i]; }
    double operator[](std::size_t i) const
    {
        assert(i < size());
        return data_[i];
    }

    /** Resizes to @p n elements, zero-filling the whole vector. */
    void resize(std::size_t n) { data_.assign(n, 0.0); }

    /** Sets every element to zero without changing the size. */
    void set_zero() { data_.assign(data_.size(), 0.0); }

    Vector &operator+=(const Vector &rhs);
    Vector &operator-=(const Vector &rhs);
    Vector &operator*=(double s);

    friend Vector operator+(Vector lhs, const Vector &rhs)
    {
        lhs += rhs;
        return lhs;
    }
    friend Vector operator-(Vector lhs, const Vector &rhs)
    {
        lhs -= rhs;
        return lhs;
    }
    friend Vector operator*(Vector lhs, double s)
    {
        lhs *= s;
        return lhs;
    }
    friend Vector operator*(double s, Vector rhs)
    {
        rhs *= s;
        return rhs;
    }

    /** Dot product; both vectors must have equal size. */
    double dot(const Vector &rhs) const;

    /** Euclidean (L2) norm. */
    double norm() const;

    /** Largest absolute element, 0 for an empty vector. */
    double max_abs() const;

    /** Direct access to the underlying storage. */
    const std::vector<double> &data() const { return data_; }
    std::vector<double> &data() { return data_; }

  private:
    std::vector<double> data_;
};

/**
 * Dense dynamic-size row-major matrix of doubles.
 */
class Matrix
{
  public:
    /** Creates an empty (0 x 0) matrix. */
    Matrix() = default;

    /** Creates a @p rows x @p cols matrix of zeros. */
    Matrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
    {
    }

    /** @return the n x n (square) identity matrix. */
    static Matrix identity(std::size_t n);

    /** @return number of rows. */
    std::size_t rows() const { return rows_; }
    /** @return number of columns. */
    std::size_t cols() const { return cols_; }

    double &operator()(std::size_t r, std::size_t c)
    {
        assert(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }
    double operator()(std::size_t r, std::size_t c) const
    {
        assert(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    /** Resizes to rows x cols, zero-filling the whole matrix. */
    void resize(std::size_t rows, std::size_t cols);

    /** Sets every element to zero without changing dimensions. */
    void set_zero() { data_.assign(data_.size(), 0.0); }

    Matrix &operator+=(const Matrix &rhs);
    Matrix &operator-=(const Matrix &rhs);
    Matrix &operator*=(double s);

    friend Matrix operator+(Matrix lhs, const Matrix &rhs)
    {
        lhs += rhs;
        return lhs;
    }
    friend Matrix operator-(Matrix lhs, const Matrix &rhs)
    {
        lhs -= rhs;
        return lhs;
    }
    friend Matrix operator*(Matrix lhs, double s)
    {
        lhs *= s;
        return lhs;
    }
    friend Matrix operator*(double s, Matrix rhs)
    {
        rhs *= s;
        return rhs;
    }

    /** Dense matrix-matrix product. */
    Matrix operator*(const Matrix &rhs) const;

    /** Dense matrix-vector product. */
    Vector operator*(const Vector &rhs) const;

    /** @return the transpose. */
    Matrix transposed() const;

    /** Frobenius norm. */
    double frobenius_norm() const;

    /** Largest absolute element, 0 for an empty matrix. */
    double max_abs() const;

    /**
     * Copies the @p rows x @p cols submatrix whose top-left corner is at
     * (@p r0, @p c0).  Reads outside the matrix are an error.
     *
     * Note block(), col(), and row() return freshly allocated copies, not
     * views; in hot loops prefer operator() element access or the
     * in-place set_block()/set_col() writers over copy-modify-write.
     */
    Matrix block(std::size_t r0, std::size_t c0, std::size_t rows,
                 std::size_t cols) const;

    /** Writes @p b into this matrix with top-left corner at (r0, c0). */
    void set_block(std::size_t r0, std::size_t c0, const Matrix &b);

    /** Copies column @p c into a vector (see block() on copies). */
    Vector col(std::size_t c) const;

    /** Overwrites column @p c from a vector of length rows(). */
    void set_col(std::size_t c, const Vector &v);

    /** Copies row @p r into a vector (see block() on copies). */
    Vector row(std::size_t r) const;

    /** True when the matrix equals its transpose to tolerance @p tol. */
    bool is_symmetric(double tol = 1e-9) const;

    /** Count of elements with |x| <= @p tol. */
    std::size_t count_zeros(double tol = 0.0) const;

    /** Fraction of elements with |x| <= @p tol (0 for empty matrices). */
    double sparsity(double tol = 0.0) const;

    /** Direct access to the row-major storage. */
    const std::vector<double> &data() const { return data_; }
    std::vector<double> &data() { return data_; }

    /** Human-readable rendering used by examples and failure messages. */
    std::string to_string(int precision = 4) const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

std::ostream &operator<<(std::ostream &os, const Matrix &m);
std::ostream &operator<<(std::ostream &os, const Vector &v);

/** Maximum absolute elementwise difference between two equal-sized
 *  matrices. */
double max_abs_diff(const Matrix &a, const Matrix &b);

/** Maximum absolute elementwise difference between two equal-sized
 *  vectors. */
double max_abs_diff(const Vector &a, const Vector &b);

} // namespace linalg
} // namespace roboshape

#endif // ROBOSHAPE_LINALG_MATRIX_H
