/**
 * @file
 * Implementation of block-sparsity analysis and blocked multiplication.
 */

#include "linalg/blocked.h"

#include <cmath>
#include <sstream>

namespace roboshape {
namespace linalg {

namespace {

std::size_t
div_round_up(std::size_t a, std::size_t b)
{
    return (a + b - 1) / b;
}

} // namespace

BlockPattern::BlockPattern(const Matrix &m, std::size_t block_size,
                           double tol)
{
    analyze(m, block_size, tol);
}

void
BlockPattern::analyze(const Matrix &m, std::size_t block_size, double tol)
{
    assert(block_size > 0);
    block_size_ = block_size;
    rows_ = m.rows();
    cols_ = m.cols();
    padded_zeros_ = 0;
    block_rows_ = div_round_up(rows_, block_size_);
    block_cols_ = div_round_up(cols_, block_size_);
    mask_.assign(block_rows_ * block_cols_, false);

    for (std::size_t br = 0; br < block_rows_; ++br) {
        for (std::size_t bc = 0; bc < block_cols_; ++bc) {
            bool any = false;
            std::size_t zeros = 0;
            for (std::size_t i = 0; i < block_size_; ++i) {
                for (std::size_t j = 0; j < block_size_; ++j) {
                    const std::size_t r = br * block_size_ + i;
                    const std::size_t c = bc * block_size_ + j;
                    if (r >= rows_ || c >= cols_ ||
                        std::abs(m(r, c)) <= tol) {
                        ++zeros;
                    } else {
                        any = true;
                    }
                }
            }
            mask_[br * block_cols_ + bc] = any;
            if (any)
                padded_zeros_ += zeros;
        }
    }
}

std::size_t
BlockPattern::nonzero_blocks() const
{
    std::size_t n = 0;
    for (bool b : mask_)
        n += b ? 1 : 0;
    return n;
}

std::string
BlockPattern::to_ascii() const
{
    std::ostringstream os;
    for (std::size_t br = 0; br < block_rows_; ++br) {
        for (std::size_t bc = 0; bc < block_cols_; ++bc)
            os << (nonzero(br, bc) ? 'X' : '.');
        os << '\n';
    }
    return os.str();
}

Matrix
blocked_multiply(const Matrix &a, const Matrix &b, std::size_t block_size,
                 BlockMultiplyStats *stats, double tol)
{
    Matrix out;
    BlockPattern pa, pb;
    blocked_multiply_into(a, b, block_size, out, pa, pb, /*negate=*/false,
                          stats, tol);
    return out;
}

void
blocked_multiply_into(const Matrix &a, const Matrix &b,
                      std::size_t block_size, Matrix &out, BlockPattern &pa,
                      BlockPattern &pb, bool negate,
                      BlockMultiplyStats *stats, double tol)
{
    assert(a.cols() == b.rows());
    pa.analyze(a, block_size, tol);
    pb.analyze(b, block_size, tol);

    if (out.rows() == a.rows() && out.cols() == b.cols())
        out.set_zero();
    else
        out.resize(a.rows(), b.cols());
    BlockMultiplyStats local;

    const std::size_t bi_end = pa.block_rows();
    const std::size_t bk_end = pa.block_cols();
    const std::size_t bj_end = pb.block_cols();

    for (std::size_t bi = 0; bi < bi_end; ++bi) {
        for (std::size_t bj = 0; bj < bj_end; ++bj) {
            for (std::size_t bk = 0; bk < bk_end; ++bk) {
                if (!pa.nonzero(bi, bk) || !pb.nonzero(bk, bj)) {
                    ++local.block_nops;
                    continue;
                }
                ++local.block_macs;
                // Execute the tile product on the unpadded region.
                const std::size_t r0 = bi * block_size;
                const std::size_t c0 = bj * block_size;
                const std::size_t k0 = bk * block_size;
                const std::size_t r1 = std::min(r0 + block_size, a.rows());
                const std::size_t c1 = std::min(c0 + block_size, b.cols());
                const std::size_t k1 = std::min(k0 + block_size, a.cols());
                for (std::size_t i = r0; i < r1; ++i) {
                    for (std::size_t k = k0; k < k1; ++k) {
                        const double av = negate ? -a(i, k) : a(i, k);
                        for (std::size_t j = c0; j < c1; ++j) {
                            out(i, j) += av * b(k, j);
                            ++local.scalar_macs;
                        }
                    }
                }
            }
        }
    }

    if (stats)
        *stats = local;
}

} // namespace linalg
} // namespace roboshape
