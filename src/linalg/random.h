/**
 * @file
 * Deterministic random fills for matrices and vectors.
 *
 * Tests and benchmarks need reproducible random robot states; everything is
 * seeded explicitly so failures replay exactly.
 */

#ifndef ROBOSHAPE_LINALG_RANDOM_H
#define ROBOSHAPE_LINALG_RANDOM_H

#include <cstdint>
#include <random>

#include "linalg/matrix.h"

namespace roboshape {
namespace linalg {

/** Uniform random vector in [lo, hi]. */
Vector random_vector(std::size_t n, std::uint32_t seed, double lo = -1.0,
                     double hi = 1.0);

/** Uniform random matrix in [lo, hi]. */
Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint32_t seed,
                     double lo = -1.0, double hi = 1.0);

/**
 * Random symmetric positive-definite matrix, built as R^T R + n*I so the
 * spectrum is safely bounded away from zero.
 */
Matrix random_spd_matrix(std::size_t n, std::uint32_t seed);

} // namespace linalg
} // namespace roboshape

#endif // ROBOSHAPE_LINALG_RANDOM_H
