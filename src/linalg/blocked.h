/**
 * @file
 * Block-sparsity analysis and blocked matrix multiplication.
 *
 * Implements computational pattern 2 of the paper (Sec. 3.2 / Sec. 4.3):
 * topology-based N x N matrices such as the mass matrix carry limb-induced
 * block sparsity.  Partitioning the matrix into size_block x size_block tiles
 * lets hardware skip all-zero tiles ("NOP" blocks in paper Fig. 6b) at the
 * cost of zero padding when the block size misaligns with the dense regions
 * (the nonlinearity shown in paper Fig. 15).
 */

#ifndef ROBOSHAPE_LINALG_BLOCKED_H
#define ROBOSHAPE_LINALG_BLOCKED_H

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace roboshape {
namespace linalg {

/**
 * Boolean tile map of a matrix under a given block size.
 *
 * The matrix is conceptually zero-padded up to a multiple of the block size;
 * a tile is "nonzero" when any covered element exceeds the tolerance.
 */
class BlockPattern
{
  public:
    /** Creates an empty pattern; analyze() before any query. */
    BlockPattern() = default;

    /**
     * Analyzes @p m with square tiles of @p block_size.
     * @param tol magnitude at or below which an element counts as zero.
     */
    BlockPattern(const Matrix &m, std::size_t block_size, double tol = 0.0);

    /**
     * Re-analyzes @p m in place, reusing the mask storage.  When the tile
     * grid shape is unchanged from the previous analysis (the steady state
     * of a warm simulation engine) this performs no heap allocation.
     */
    void analyze(const Matrix &m, std::size_t block_size, double tol = 0.0);

    /** Tile edge length in elements. */
    std::size_t block_size() const { return block_size_; }

    /** Number of tile rows (= tile columns for square inputs padded up). */
    std::size_t block_rows() const { return block_rows_; }
    std::size_t block_cols() const { return block_cols_; }

    /** Original (unpadded) element dimensions. */
    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    /** True when tile (br, bc) holds at least one nonzero element. */
    bool nonzero(std::size_t br, std::size_t bc) const
    {
        return mask_[br * block_cols_ + bc];
    }

    /** Number of nonzero tiles. */
    std::size_t nonzero_blocks() const;

    /** Number of all-zero tiles (the hardware NOPs). */
    std::size_t zero_blocks() const
    {
        return block_rows_ * block_cols_ - nonzero_blocks();
    }

    /**
     * Padding waste: elements inside nonzero tiles that are zero (either
     * structural zeros of the matrix or pad elements outside its bounds),
     * i.e. work a blocked engine performs on zeros anyway.
     */
    std::size_t padded_zero_elements() const { return padded_zeros_; }

    /** Total elements processed by a blocked engine (nonzero tiles only). */
    std::size_t processed_elements() const
    {
        return nonzero_blocks() * block_size_ * block_size_;
    }

    /** ASCII rendering ("X" nonzero tile, "." NOP tile) for reports. */
    std::string to_ascii() const;

  private:
    std::size_t block_size_ = 0;
    std::size_t rows_ = 0, cols_ = 0;
    std::size_t block_rows_ = 0, block_cols_ = 0;
    std::size_t padded_zeros_ = 0;
    std::vector<bool> mask_;
};

/**
 * Operation counts gathered during a blocked multiply.
 */
struct BlockMultiplyStats
{
    std::size_t block_macs = 0;    ///< Tile-level multiply-accumulates done.
    std::size_t block_nops = 0;    ///< Tile-level products skipped as zero.
    std::size_t scalar_macs = 0;   ///< Scalar MACs inside executed tiles.

    /** Tile products a dense blocked engine would perform. */
    std::size_t total_block_products() const
    {
        return block_macs + block_nops;
    }
};

/**
 * Computes A * B via tile decomposition, skipping tile products where the
 * A-tile or B-tile is all zero.
 *
 * The numerical result is identical to the dense product; @p stats (when
 * non-null) receives the tile-level operation counts that the accelerator's
 * scheduler turns into cycles.
 */
Matrix blocked_multiply(const Matrix &a, const Matrix &b,
                        std::size_t block_size,
                        BlockMultiplyStats *stats = nullptr,
                        double tol = 0.0);

/**
 * Allocation-free form of blocked_multiply for compile-once/run-many
 * engines: writes A * B (or -(A * B) when @p negate is set) into @p out
 * and reuses the caller's pattern scratch @p pa / @p pb.  After a warm-up
 * call with the same dimensions, no heap allocation is performed.
 *
 * The result is exactly the value blocked_multiply would return, negated
 * elementwise when requested — accumulating negated tile products is an
 * exact sign flip under IEEE round-to-nearest, so fusing the negation
 * loses no precision (the legacy `blocked_multiply(...) * -1.0` spelling
 * stays the golden reference in tests).
 */
void blocked_multiply_into(const Matrix &a, const Matrix &b,
                           std::size_t block_size, Matrix &out,
                           BlockPattern &pa, BlockPattern &pb,
                           bool negate = false,
                           BlockMultiplyStats *stats = nullptr,
                           double tol = 0.0);

} // namespace linalg
} // namespace roboshape

#endif // ROBOSHAPE_LINALG_BLOCKED_H
