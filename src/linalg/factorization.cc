/**
 * @file
 * Implementation of LDL^T and LU factorizations.
 */

#include "linalg/factorization.h"

#include <cmath>

namespace roboshape {
namespace linalg {

Ldlt::Ldlt(const Matrix &a)
{
    assert(a.rows() == a.cols());
    const std::size_t n = a.rows();
    l_ = Matrix::identity(n);
    d_ = Vector(n);
    ok_ = true;

    for (std::size_t j = 0; j < n; ++j) {
        double dj = a(j, j);
        for (std::size_t k = 0; k < j; ++k)
            dj -= l_(j, k) * l_(j, k) * d_[k];
        d_[j] = dj;
        if (!(dj > 0.0)) {
            ok_ = false;
            return;
        }
        for (std::size_t i = j + 1; i < n; ++i) {
            double lij = a(i, j);
            for (std::size_t k = 0; k < j; ++k)
                lij -= l_(i, k) * l_(j, k) * d_[k];
            l_(i, j) = lij / dj;
        }
    }
}

Vector
Ldlt::solve(const Vector &b) const
{
    assert(ok_ && b.size() == d_.size());
    const std::size_t n = d_.size();
    Vector x = b;
    // Forward substitution: L y = b.
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t k = 0; k < i; ++k)
            x[i] -= l_(i, k) * x[k];
    // Diagonal: D z = y.
    for (std::size_t i = 0; i < n; ++i)
        x[i] /= d_[i];
    // Backward substitution: L^T x = z.
    for (std::size_t ii = n; ii-- > 0;)
        for (std::size_t k = ii + 1; k < n; ++k)
            x[ii] -= l_(k, ii) * x[k];
    return x;
}

Matrix
Ldlt::solve(const Matrix &b) const
{
    assert(b.rows() == d_.size());
    Matrix out(b.rows(), b.cols());
    for (std::size_t c = 0; c < b.cols(); ++c)
        out.set_col(c, solve(b.col(c)));
    return out;
}

Matrix
Ldlt::inverse() const
{
    return solve(Matrix::identity(d_.size()));
}

Llt::Llt(const Matrix &a)
{
    assert(a.rows() == a.cols());
    const std::size_t n = a.rows();
    l_.resize(n, n);
    ok_ = true;
    for (std::size_t j = 0; j < n; ++j) {
        double diag = a(j, j);
        for (std::size_t k = 0; k < j; ++k)
            diag -= l_(j, k) * l_(j, k);
        if (!(diag > 0.0)) {
            ok_ = false;
            return;
        }
        l_(j, j) = std::sqrt(diag);
        for (std::size_t i = j + 1; i < n; ++i) {
            double v = a(i, j);
            for (std::size_t k = 0; k < j; ++k)
                v -= l_(i, k) * l_(j, k);
            l_(i, j) = v / l_(j, j);
        }
    }
}

Vector
Llt::solve(const Vector &b) const
{
    assert(ok_ && b.size() == l_.rows());
    const std::size_t n = l_.rows();
    Vector x = b;
    // L y = b.
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t k = 0; k < i; ++k)
            x[i] -= l_(i, k) * x[k];
        x[i] /= l_(i, i);
    }
    // L^T x = y.
    for (std::size_t ii = n; ii-- > 0;) {
        for (std::size_t k = ii + 1; k < n; ++k)
            x[ii] -= l_(k, ii) * x[k];
        x[ii] /= l_(ii, ii);
    }
    return x;
}

Lu::Lu(const Matrix &a) : lu_(a), piv_(a.rows())
{
    assert(a.rows() == a.cols());
    const std::size_t n = a.rows();
    for (std::size_t i = 0; i < n; ++i)
        piv_[i] = i;
    ok_ = true;

    for (std::size_t k = 0; k < n; ++k) {
        // Partial pivoting: pick the largest magnitude in column k.
        std::size_t p = k;
        double best = std::abs(lu_(k, k));
        for (std::size_t i = k + 1; i < n; ++i) {
            if (std::abs(lu_(i, k)) > best) {
                best = std::abs(lu_(i, k));
                p = i;
            }
        }
        if (best == 0.0) {
            ok_ = false;
            return;
        }
        if (p != k) {
            for (std::size_t j = 0; j < n; ++j)
                std::swap(lu_(p, j), lu_(k, j));
            std::swap(piv_[p], piv_[k]);
            pivot_sign_ = -pivot_sign_;
        }
        for (std::size_t i = k + 1; i < n; ++i) {
            lu_(i, k) /= lu_(k, k);
            const double m = lu_(i, k);
            if (m == 0.0)
                continue;
            for (std::size_t j = k + 1; j < n; ++j)
                lu_(i, j) -= m * lu_(k, j);
        }
    }
}

Vector
Lu::solve(const Vector &b) const
{
    assert(ok_ && b.size() == piv_.size());
    const std::size_t n = piv_.size();
    Vector x(n);
    for (std::size_t i = 0; i < n; ++i)
        x[i] = b[piv_[i]];
    // L y = P b.
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t k = 0; k < i; ++k)
            x[i] -= lu_(i, k) * x[k];
    // U x = y.
    for (std::size_t ii = n; ii-- > 0;) {
        for (std::size_t k = ii + 1; k < n; ++k)
            x[ii] -= lu_(ii, k) * x[k];
        x[ii] /= lu_(ii, ii);
    }
    return x;
}

Matrix
Lu::solve(const Matrix &b) const
{
    assert(b.rows() == piv_.size());
    Matrix out(b.rows(), b.cols());
    for (std::size_t c = 0; c < b.cols(); ++c)
        out.set_col(c, solve(b.col(c)));
    return out;
}

Matrix
Lu::inverse() const
{
    return solve(Matrix::identity(piv_.size()));
}

double
Lu::determinant() const
{
    if (!ok_)
        return 0.0;
    double det = pivot_sign_;
    for (std::size_t i = 0; i < piv_.size(); ++i)
        det *= lu_(i, i);
    return det;
}

Matrix
spd_inverse(const Matrix &a)
{
    Ldlt f(a);
    assert(f.ok());
    return f.inverse();
}

Matrix
block_diagonal_inverse(
    const Matrix &a,
    const std::vector<std::pair<std::size_t, std::size_t>> &spans)
{
    assert(a.rows() == a.cols());
    Matrix out(a.rows(), a.cols());
    for (const auto &[begin, end] : spans) {
        assert(begin < end && end <= a.rows());
        const std::size_t len = end - begin;
        Matrix sub = a.block(begin, begin, len, len);
        out.set_block(begin, begin, spd_inverse(sub));
    }
    return out;
}

} // namespace linalg
} // namespace roboshape
