/**
 * @file
 * Dense factorizations and solvers for topology-sized matrices.
 *
 * The dynamics-gradient kernel (paper Alg. 1) needs the inverse of the
 * joint-space mass matrix.  Mass matrices are symmetric positive definite,
 * so the primary tool is an LDL^T (square-root-free Cholesky) factorization;
 * a partial-pivoting LU is provided for general matrices and as an
 * independent cross-check in tests.
 */

#ifndef ROBOSHAPE_LINALG_FACTORIZATION_H
#define ROBOSHAPE_LINALG_FACTORIZATION_H

#include "linalg/matrix.h"

namespace roboshape {
namespace linalg {

/**
 * LDL^T factorization of a symmetric positive-definite matrix.
 *
 * A = L * D * L^T with L unit lower triangular and D diagonal.
 */
class Ldlt
{
  public:
    /** Factorizes @p a.  @p a must be square and symmetric. */
    explicit Ldlt(const Matrix &a);

    /** True when the factorization succeeded (no nonpositive pivot). */
    bool ok() const { return ok_; }

    /** Solves A x = b. */
    Vector solve(const Vector &b) const;

    /** Solves A X = B columnwise. */
    Matrix solve(const Matrix &b) const;

    /** @return A^-1 (solves against the identity). */
    Matrix inverse() const;

    /** Unit lower-triangular factor. */
    const Matrix &l() const { return l_; }

    /** Diagonal factor entries. */
    const Vector &d() const { return d_; }

  private:
    Matrix l_;
    Vector d_;
    bool ok_ = false;
};

/**
 * Cholesky factorization A = L L^T of a symmetric positive-definite
 * matrix (the square-root form of Ldlt; kept separate because the
 * accelerator's host-side solve uses whichever the platform library
 * offers).
 */
class Llt
{
  public:
    /** Factorizes @p a (square, symmetric, positive definite). */
    explicit Llt(const Matrix &a);

    /** True when the factorization succeeded. */
    bool ok() const { return ok_; }

    /** Solves A x = b. */
    Vector solve(const Vector &b) const;

    /** Lower-triangular factor. */
    const Matrix &l() const { return l_; }

  private:
    Matrix l_;
    bool ok_ = false;
};

/**
 * LU factorization with partial pivoting for general square matrices.
 */
class Lu
{
  public:
    /** Factorizes @p a (square). */
    explicit Lu(const Matrix &a);

    /** True when the matrix is nonsingular to working precision. */
    bool ok() const { return ok_; }

    /** Solves A x = b. */
    Vector solve(const Vector &b) const;

    /** Solves A X = B columnwise. */
    Matrix solve(const Matrix &b) const;

    /** @return A^-1. */
    Matrix inverse() const;

    /** Determinant of A. */
    double determinant() const;

  private:
    Matrix lu_;                   // packed L (unit diag implied) and U
    std::vector<std::size_t> piv_;
    int pivot_sign_ = 1;
    bool ok_ = false;
};

/**
 * Convenience SPD inverse via LDL^T.
 * Asserts on factorization failure in debug builds.
 */
Matrix spd_inverse(const Matrix &a);

/**
 * Block-diagonal-aware SPD inverse.
 *
 * When @p a has the limb-induced block-diagonal structure described in
 * paper Sec. 3.2 (independent limbs touch only diagonal blocks), the inverse
 * is itself block diagonal and can be computed block-by-block.  @p spans
 * gives the [begin, end) index range of each independent diagonal block.
 * Off-block entries of @p a are ignored (they must be zero for the result to
 * equal the dense inverse; tests enforce this).
 */
Matrix block_diagonal_inverse(
    const Matrix &a,
    const std::vector<std::pair<std::size_t, std::size_t>> &spans);

} // namespace linalg
} // namespace roboshape

#endif // ROBOSHAPE_LINALG_FACTORIZATION_H
