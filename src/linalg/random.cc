/**
 * @file
 * Implementation of deterministic random fills.
 */

#include "linalg/random.h"

namespace roboshape {
namespace linalg {

Vector
random_vector(std::size_t n, std::uint32_t seed, double lo, double hi)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> dist(lo, hi);
    Vector v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = dist(rng);
    return v;
}

Matrix
random_matrix(std::size_t rows, std::size_t cols, std::uint32_t seed,
              double lo, double hi)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> dist(lo, hi);
    Matrix m(rows, cols);
    for (std::size_t i = 0; i < rows; ++i)
        for (std::size_t j = 0; j < cols; ++j)
            m(i, j) = dist(rng);
    return m;
}

Matrix
random_spd_matrix(std::size_t n, std::uint32_t seed)
{
    Matrix r = random_matrix(n, n, seed);
    Matrix a = r.transposed() * r;
    for (std::size_t i = 0; i < n; ++i)
        a(i, i) += static_cast<double>(n);
    return a;
}

} // namespace linalg
} // namespace roboshape
