/**
 * @file
 * Implementation of dense matrix and vector operations.
 */

#include "linalg/matrix.h"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace roboshape {
namespace linalg {

Vector &
Vector::operator+=(const Vector &rhs)
{
    assert(size() == rhs.size());
    for (std::size_t i = 0; i < size(); ++i)
        data_[i] += rhs.data_[i];
    return *this;
}

Vector &
Vector::operator-=(const Vector &rhs)
{
    assert(size() == rhs.size());
    for (std::size_t i = 0; i < size(); ++i)
        data_[i] -= rhs.data_[i];
    return *this;
}

Vector &
Vector::operator*=(double s)
{
    for (double &x : data_)
        x *= s;
    return *this;
}

double
Vector::dot(const Vector &rhs) const
{
    assert(size() == rhs.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < size(); ++i)
        acc += data_[i] * rhs.data_[i];
    return acc;
}

double
Vector::norm() const
{
    return std::sqrt(dot(*this));
}

double
Vector::max_abs() const
{
    double m = 0.0;
    for (double x : data_)
        m = std::max(m, std::abs(x));
    return m;
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

void
Matrix::resize(std::size_t rows, std::size_t cols)
{
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0);
}

Matrix &
Matrix::operator+=(const Matrix &rhs)
{
    assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += rhs.data_[i];
    return *this;
}

Matrix &
Matrix::operator-=(const Matrix &rhs)
{
    assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] -= rhs.data_[i];
    return *this;
}

Matrix &
Matrix::operator*=(double s)
{
    for (double &x : data_)
        x *= s;
    return *this;
}

Matrix
Matrix::operator*(const Matrix &rhs) const
{
    assert(cols_ == rhs.rows_);
    Matrix out(rows_, rhs.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double a = (*this)(i, k);
            if (a == 0.0)
                continue;
            for (std::size_t j = 0; j < rhs.cols_; ++j)
                out(i, j) += a * rhs(k, j);
        }
    }
    return out;
}

Vector
Matrix::operator*(const Vector &rhs) const
{
    assert(cols_ == rhs.size());
    Vector out(rows_);
    for (std::size_t i = 0; i < rows_; ++i) {
        double acc = 0.0;
        for (std::size_t j = 0; j < cols_; ++j)
            acc += (*this)(i, j) * rhs[j];
        out[i] = acc;
    }
    return out;
}

Matrix
Matrix::transposed() const
{
    Matrix out(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
        for (std::size_t j = 0; j < cols_; ++j)
            out(j, i) = (*this)(i, j);
    return out;
}

double
Matrix::frobenius_norm() const
{
    double acc = 0.0;
    for (double x : data_)
        acc += x * x;
    return std::sqrt(acc);
}

double
Matrix::max_abs() const
{
    double m = 0.0;
    for (double x : data_)
        m = std::max(m, std::abs(x));
    return m;
}

Matrix
Matrix::block(std::size_t r0, std::size_t c0, std::size_t rows,
              std::size_t cols) const
{
    assert(r0 + rows <= rows_ && c0 + cols <= cols_);
    Matrix out(rows, cols);
    for (std::size_t i = 0; i < rows; ++i)
        for (std::size_t j = 0; j < cols; ++j)
            out(i, j) = (*this)(r0 + i, c0 + j);
    return out;
}

void
Matrix::set_block(std::size_t r0, std::size_t c0, const Matrix &b)
{
    assert(r0 + b.rows() <= rows_ && c0 + b.cols() <= cols_);
    for (std::size_t i = 0; i < b.rows(); ++i)
        for (std::size_t j = 0; j < b.cols(); ++j)
            (*this)(r0 + i, c0 + j) = b(i, j);
}

Vector
Matrix::col(std::size_t c) const
{
    assert(c < cols_);
    Vector out(rows_);
    for (std::size_t i = 0; i < rows_; ++i)
        out[i] = (*this)(i, c);
    return out;
}

void
Matrix::set_col(std::size_t c, const Vector &v)
{
    assert(c < cols_ && v.size() == rows_);
    for (std::size_t i = 0; i < rows_; ++i)
        (*this)(i, c) = v[i];
}

Vector
Matrix::row(std::size_t r) const
{
    assert(r < rows_);
    Vector out(cols_);
    for (std::size_t j = 0; j < cols_; ++j)
        out[j] = (*this)(r, j);
    return out;
}

bool
Matrix::is_symmetric(double tol) const
{
    if (rows_ != cols_)
        return false;
    for (std::size_t i = 0; i < rows_; ++i)
        for (std::size_t j = i + 1; j < cols_; ++j)
            if (std::abs((*this)(i, j) - (*this)(j, i)) > tol)
                return false;
    return true;
}

std::size_t
Matrix::count_zeros(double tol) const
{
    std::size_t n = 0;
    for (double x : data_)
        if (std::abs(x) <= tol)
            ++n;
    return n;
}

double
Matrix::sparsity(double tol) const
{
    if (data_.empty())
        return 0.0;
    return static_cast<double>(count_zeros(tol)) /
           static_cast<double>(data_.size());
}

std::string
Matrix::to_string(int precision) const
{
    std::ostringstream os;
    os << std::setprecision(precision);
    for (std::size_t i = 0; i < rows_; ++i) {
        os << (i == 0 ? "[" : " ");
        for (std::size_t j = 0; j < cols_; ++j)
            os << std::setw(precision + 6) << (*this)(i, j);
        os << (i + 1 == rows_ ? " ]" : "\n");
    }
    return os.str();
}

std::ostream &
operator<<(std::ostream &os, const Matrix &m)
{
    return os << m.to_string();
}

std::ostream &
operator<<(std::ostream &os, const Vector &v)
{
    // Human-readable "[1, 2, 3]" debug rendering, not a JSON artifact.
    os << "["; // NOLINT(json-writer-only)
    for (std::size_t i = 0; i < v.size(); ++i)
        os << (i ? ", " : "") << v[i];
    return os << "]";
}

double
max_abs_diff(const Matrix &a, const Matrix &b)
{
    assert(a.rows() == b.rows() && a.cols() == b.cols());
    double m = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            m = std::max(m, std::abs(a(i, j) - b(i, j)));
    return m;
}

double
max_abs_diff(const Vector &a, const Vector &b)
{
    assert(a.size() == b.size());
    double m = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::abs(a[i] - b[i]));
    return m;
}

} // namespace linalg
} // namespace roboshape
