/**
 * @file
 * Minimal blocking TCP socket layer for the roboshaped daemon
 * (docs/SERVICE.md).
 *
 * Deliberately from scratch over raw POSIX sockets — the daemon must ship
 * with zero new dependencies — and deliberately small: a listener that
 * accepts with a poll() timeout (so graceful shutdown never blocks in
 * accept(2)) and a connection with timeboxed read/write.  Everything
 * HTTP-shaped lives one layer up in net/http.h.
 *
 * All operations are blocking with explicit millisecond deadlines; no
 * internal threads, no global state.  Writes use MSG_NOSIGNAL so a peer
 * hanging up mid-response surfaces as an error return, never SIGPIPE.
 */

#ifndef ROBOSHAPE_NET_SOCKET_H
#define ROBOSHAPE_NET_SOCKET_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace roboshape {
namespace net {

/**
 * One accepted (or dialed) TCP connection.  Move-only owner of the file
 * descriptor; closes on destruction.
 */
class TcpConn
{
  public:
    TcpConn() = default;
    explicit TcpConn(int fd) : fd_(fd) {}
    ~TcpConn() { close(); }

    TcpConn(TcpConn &&other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    TcpConn &operator=(TcpConn &&other) noexcept;
    TcpConn(const TcpConn &) = delete;
    TcpConn &operator=(const TcpConn &) = delete;

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /**
     * Reads up to @p size bytes into @p buffer, waiting at most
     * @p timeout_ms for the socket to become readable.
     * @return bytes read (> 0), 0 on orderly peer close, -1 on
     *         error/timeout.
     */
    long read_some(char *buffer, std::size_t size, int timeout_ms);

    /** Writes the whole buffer (retrying partial writes), waiting at most
     *  @p timeout_ms per poll.  @return true when every byte was sent. */
    bool write_all(std::string_view data, int timeout_ms);

    void close();

  private:
    int fd_ = -1;
};

/**
 * Listening TCP socket bound to 127.0.0.1 (the daemon is a local/
 * behind-a-proxy service; it never binds a public interface itself).
 */
class TcpListener
{
  public:
    TcpListener() = default;
    ~TcpListener() { close(); }
    TcpListener(const TcpListener &) = delete;
    TcpListener &operator=(const TcpListener &) = delete;

    /**
     * Binds and listens on @p port (0 = kernel-assigned ephemeral port,
     * see bound_port()).  @p backlog is the kernel accept backlog.
     * @return false on failure; error() describes why.
     */
    bool listen(std::uint16_t port, int backlog = 128);

    /** Port actually bound — the resolution of listen(0). */
    std::uint16_t bound_port() const { return port_; }

    /**
     * Accepts one connection, waiting at most @p timeout_ms.  Returns an
     * invalid conn on timeout (the normal shutdown-poll path) or error.
     */
    TcpConn accept(int timeout_ms);

    bool valid() const { return fd_ >= 0; }
    const std::string &error() const { return error_; }

    void close();

  private:
    int fd_ = -1;
    std::uint16_t port_ = 0;
    std::string error_;
};

/** Dials 127.0.0.1:@p port; invalid conn on failure.  Test/bench client. */
TcpConn dial(std::uint16_t port, int timeout_ms);

} // namespace net
} // namespace roboshape

#endif // ROBOSHAPE_NET_SOCKET_H
