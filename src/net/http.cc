#include "net/http.h"

#include <algorithm>
#include <cctype>

#include "core/parse_uint.h"

namespace roboshape {
namespace net {

namespace {

bool
iequals(std::string_view a, std::string_view b)
{
    return a.size() == b.size() &&
           std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
               return std::tolower(static_cast<unsigned char>(x)) ==
                      std::tolower(static_cast<unsigned char>(y));
           });
}

std::string_view
trim(std::string_view s)
{
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
        s.remove_prefix(1);
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
        s.remove_suffix(1);
    return s;
}

/** Splits a CRLF- (or bare-LF-) terminated line off the front of @p s. */
bool
next_line(std::string_view &s, std::string_view &line)
{
    const std::size_t nl = s.find('\n');
    if (nl == std::string_view::npos)
        return false;
    line = s.substr(0, nl);
    if (!line.empty() && line.back() == '\r')
        line.remove_suffix(1);
    s.remove_prefix(nl + 1);
    return true;
}

/** Parses "Name: value" header lines into @p headers until a blank line. */
bool
parse_header_lines(std::string_view &rest,
                   std::vector<std::pair<std::string, std::string>> &headers)
{
    std::string_view line;
    while (next_line(rest, line)) {
        if (line.empty())
            return true; // end of header block
        const std::size_t colon = line.find(':');
        if (colon == std::string_view::npos || colon == 0)
            return false;
        const std::string_view name = trim(line.substr(0, colon));
        if (name.empty())
            return false;
        headers.emplace_back(std::string(name),
                             std::string(trim(line.substr(colon + 1))));
    }
    return false; // ran out of input before the blank line
}

std::optional<std::string_view>
find_header(const std::vector<std::pair<std::string, std::string>> &headers,
            std::string_view name)
{
    for (const auto &[k, v] : headers)
        if (iequals(k, name))
            return std::string_view(v);
    return std::nullopt;
}

/** Content-Length of @p headers; nullopt when absent, kMax+1 on garbage. */
std::optional<std::uint64_t>
content_length(const std::vector<std::pair<std::string, std::string>> &hs)
{
    const auto v = find_header(hs, "Content-Length");
    if (!v)
        return std::nullopt;
    const auto n = core::parse_uint(*v);
    if (!n)
        return std::uint64_t{kMaxBodyBytes} + 1; // malformed -> reject
    return *n;
}

} // namespace

std::optional<std::string_view>
HttpRequest::header(std::string_view name) const
{
    return find_header(headers, name);
}

bool
HttpRequest::keep_alive() const
{
    const auto conn = header("Connection");
    if (conn)
        return !iequals(*conn, "close");
    return version == "HTTP/1.1"; // 1.1 defaults to persistent
}

std::optional<std::string_view>
HttpResponse::header(std::string_view name) const
{
    return find_header(headers, name);
}

void
HttpResponse::set_header(std::string name, std::string value)
{
    headers.emplace_back(std::move(name), std::move(value));
}

std::string
HttpResponse::serialize(bool keep_alive) const
{
    std::string out;
    out.reserve(body.size() + 256);
    out += "HTTP/1.1 ";
    out += std::to_string(status);
    out += ' ';
    out += reason.empty() ? reason_phrase(status) : reason.c_str();
    out += "\r\n";
    for (const auto &[k, v] : headers) {
        out += k;
        out += ": ";
        out += v;
        out += "\r\n";
    }
    out += "Content-Length: ";
    out += std::to_string(body.size());
    out += "\r\nConnection: ";
    out += keep_alive ? "keep-alive" : "close";
    out += "\r\n\r\n";
    out += body;
    return out;
}

HttpResponse
json_response(int status, std::string body)
{
    HttpResponse r;
    r.status = status;
    r.reason = reason_phrase(status);
    r.set_header("Content-Type", "application/json");
    r.body = std::move(body);
    return r;
}

ReadResult
parse_request_head(std::string_view text, HttpRequest &out)
{
    out = HttpRequest{};
    std::string_view rest = text;
    std::string_view line;
    if (!next_line(rest, line) || line.empty())
        return ReadResult::kMalformed;

    // Request line: METHOD SP target SP HTTP/x.y
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
    if (sp2 == std::string_view::npos ||
        line.find(' ', sp2 + 1) != std::string_view::npos)
        return ReadResult::kMalformed;
    out.method = std::string(line.substr(0, sp1));
    out.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
    out.version = std::string(line.substr(sp2 + 1));
    if (out.method.empty() || out.target.empty() ||
        out.target.front() != '/')
        return ReadResult::kMalformed;
    if (out.version != "HTTP/1.1" && out.version != "HTTP/1.0")
        return ReadResult::kUnsupported;

    if (!parse_header_lines(rest, out.headers))
        return ReadResult::kMalformed;
    // Transfer codings are out of scope for a JSON point service.
    if (out.header("Transfer-Encoding"))
        return ReadResult::kUnsupported;
    return ReadResult::kOk;
}

ReadResult
read_request(TcpConn &conn, HttpRequest &out, std::string &leftover,
             int timeout_ms)
{
    std::string buffer = std::move(leftover);
    leftover.clear();

    // Accumulate until the blank line ending the header block.
    std::size_t head_end;
    for (;;) {
        head_end = buffer.find("\r\n\r\n");
        if (head_end != std::string::npos) {
            head_end += 4;
            break;
        }
        if (buffer.size() > kMaxHeaderBytes)
            return ReadResult::kTooLarge;
        char chunk[4096];
        const long n = conn.read_some(chunk, sizeof(chunk), timeout_ms);
        if (n == 0)
            return buffer.empty() ? ReadResult::kClosed
                                  : ReadResult::kMalformed;
        if (n < 0)
            return buffer.empty() ? ReadResult::kClosed
                                  : ReadResult::kTimeout;
        buffer.append(chunk, static_cast<std::size_t>(n));
    }
    if (head_end > kMaxHeaderBytes)
        return ReadResult::kTooLarge;

    const ReadResult head =
        parse_request_head(std::string_view(buffer).substr(0, head_end),
                           out);
    if (head != ReadResult::kOk)
        return head;

    const std::optional<std::uint64_t> length =
        content_length(out.headers);
    std::uint64_t want = 0;
    if (length) {
        if (*length > kMaxBodyBytes)
            return ReadResult::kTooLarge;
        want = *length;
    }
    while (buffer.size() - head_end < want) {
        char chunk[16384];
        const long n = conn.read_some(chunk, sizeof(chunk), timeout_ms);
        if (n == 0)
            return ReadResult::kMalformed; // truncated body
        if (n < 0)
            return ReadResult::kTimeout;
        buffer.append(chunk, static_cast<std::size_t>(n));
        if (buffer.size() - head_end > kMaxBodyBytes)
            return ReadResult::kTooLarge;
    }
    out.body = buffer.substr(head_end, static_cast<std::size_t>(want));
    // Stash any over-read (start of a pipelined next request).
    leftover = buffer.substr(head_end + static_cast<std::size_t>(want));
    return ReadResult::kOk;
}

bool
parse_response(std::string_view text, HttpResponse &out,
               std::size_t *consumed)
{
    out = HttpResponse{};
    const std::size_t head_end = text.find("\r\n\r\n");
    if (head_end == std::string_view::npos)
        return false;
    std::string_view rest = text.substr(0, head_end + 4);
    std::string_view line;
    if (!next_line(rest, line))
        return false;
    // Status line: HTTP/x.y SP code SP reason
    const std::size_t sp1 = line.find(' ');
    if (sp1 == std::string_view::npos || line.substr(0, 4) != "HTTP")
        return false;
    const std::size_t sp2 = line.find(' ', sp1 + 1);
    const std::string_view code =
        line.substr(sp1 + 1, sp2 == std::string_view::npos
                                 ? std::string_view::npos
                                 : sp2 - sp1 - 1);
    const auto status = core::parse_uint(code, 100, 599);
    if (!status)
        return false;
    out.status = static_cast<int>(*status);
    if (sp2 != std::string_view::npos)
        out.reason = std::string(line.substr(sp2 + 1));
    if (!parse_header_lines(rest, out.headers))
        return false;

    const std::optional<std::uint64_t> length =
        content_length(out.headers);
    const std::uint64_t want = length.value_or(0);
    if (want > kMaxBodyBytes)
        return false;
    const std::string_view after = text.substr(head_end + 4);
    if (after.size() < want)
        return false; // incomplete
    out.body = std::string(after.substr(0, static_cast<std::size_t>(want)));
    if (consumed)
        *consumed = head_end + 4 + static_cast<std::size_t>(want);
    return true;
}

std::string
serialize_request(const HttpRequest &request)
{
    std::string out;
    out.reserve(request.body.size() + 256);
    out += request.method;
    out += ' ';
    out += request.target;
    out += ' ';
    out += request.version.empty() ? "HTTP/1.1" : request.version.c_str();
    out += "\r\nHost: 127.0.0.1\r\n";
    for (const auto &[k, v] : request.headers) {
        out += k;
        out += ": ";
        out += v;
        out += "\r\n";
    }
    if (!request.body.empty() || request.method == "POST") {
        out += "Content-Length: ";
        out += std::to_string(request.body.size());
        out += "\r\n";
    }
    out += "\r\n";
    out += request.body;
    return out;
}

std::optional<HttpResponse>
roundtrip(TcpConn &conn, const HttpRequest &request, std::string &leftover,
          int timeout_ms)
{
    if (!conn.write_all(serialize_request(request), timeout_ms))
        return std::nullopt;
    std::string buffer = std::move(leftover);
    leftover.clear();
    HttpResponse response;
    std::size_t consumed = 0;
    while (!parse_response(buffer, response, &consumed)) {
        if (buffer.size() > kMaxHeaderBytes + kMaxBodyBytes)
            return std::nullopt;
        char chunk[16384];
        const long n = conn.read_some(chunk, sizeof(chunk), timeout_ms);
        if (n <= 0)
            return std::nullopt;
        buffer.append(chunk, static_cast<std::size_t>(n));
    }
    leftover = buffer.substr(consumed);
    return response;
}

const char *
reason_phrase(int status)
{
    switch (status) {
      case 200: return "OK";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 408: return "Request Timeout";
      case 411: return "Length Required";
      case 413: return "Payload Too Large";
      case 422: return "Unprocessable Entity";
      case 429: return "Too Many Requests";
      case 431: return "Request Header Fields Too Large";
      case 500: return "Internal Server Error";
      case 501: return "Not Implemented";
      case 503: return "Service Unavailable";
      case 505: return "HTTP Version Not Supported";
      default: return "Unknown";
    }
}

} // namespace net
} // namespace roboshape
