#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace roboshape {
namespace net {

namespace {

/** Polls @p fd for @p events; true when ready before @p timeout_ms. */
bool
wait_ready(int fd, short events, int timeout_ms)
{
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    for (;;) {
        const int rc = ::poll(&pfd, 1, timeout_ms);
        if (rc > 0)
            return (pfd.revents & (events | POLLERR | POLLHUP)) != 0;
        if (rc == 0)
            return false; // timeout
        if (errno != EINTR)
            return false;
    }
}

} // namespace

TcpConn &
TcpConn::operator=(TcpConn &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

long
TcpConn::read_some(char *buffer, std::size_t size, int timeout_ms)
{
    if (fd_ < 0 || size == 0)
        return -1;
    if (!wait_ready(fd_, POLLIN, timeout_ms))
        return -1;
    for (;;) {
        const ssize_t n = ::recv(fd_, buffer, size, 0);
        if (n >= 0)
            return static_cast<long>(n);
        if (errno != EINTR)
            return -1;
    }
}

bool
TcpConn::write_all(std::string_view data, int timeout_ms)
{
    if (fd_ < 0)
        return false;
    std::size_t sent = 0;
    while (sent < data.size()) {
        if (!wait_ready(fd_, POLLOUT, timeout_ms))
            return false;
        const ssize_t n = ::send(fd_, data.data() + sent,
                                 data.size() - sent, MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

void
TcpConn::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
TcpListener::listen(std::uint16_t port, int backlog)
{
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        error_ = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    const int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd_, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        error_ = std::string("bind: ") + std::strerror(errno);
        close();
        return false;
    }
    if (::listen(fd_, backlog) != 0) {
        error_ = std::string("listen: ") + std::strerror(errno);
        close();
        return false;
    }
    // Resolve the ephemeral port when the caller asked for 0.
    socklen_t len = sizeof(addr);
    if (::getsockname(fd_, reinterpret_cast<struct sockaddr *>(&addr),
                      &len) != 0) {
        error_ = std::string("getsockname: ") + std::strerror(errno);
        close();
        return false;
    }
    port_ = ntohs(addr.sin_port);
    return true;
}

TcpConn
TcpListener::accept(int timeout_ms)
{
    if (fd_ < 0 || !wait_ready(fd_, POLLIN, timeout_ms))
        return TcpConn();
    for (;;) {
        const int fd = ::accept(fd_, nullptr, nullptr);
        if (fd >= 0) {
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
            return TcpConn(fd);
        }
        if (errno != EINTR)
            return TcpConn();
    }
}

void
TcpListener::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    port_ = 0;
}

TcpConn
dial(std::uint16_t port, int timeout_ms)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return TcpConn();
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);

    // Non-blocking connect with a poll deadline, then back to blocking.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    const int rc = ::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                             sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) {
        ::close(fd);
        return TcpConn();
    }
    if (rc != 0) {
        if (!wait_ready(fd, POLLOUT, timeout_ms)) {
            ::close(fd);
            return TcpConn();
        }
        int err = 0;
        socklen_t len = sizeof(err);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
            err != 0) {
            ::close(fd);
            return TcpConn();
        }
    }
    ::fcntl(fd, F_SETFL, flags);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return TcpConn(fd);
}

} // namespace net
} // namespace roboshape
