/**
 * @file
 * Minimal HTTP/1.1 message layer for the roboshaped daemon
 * (docs/SERVICE.md).
 *
 * Only what a JSON design service needs, implemented from scratch:
 *
 *  - request parsing with hard limits (header block <= 16 KiB, body <=
 *    8 MiB, Content-Length required for bodies; chunked transfer coding
 *    and HTTP/2 are out of scope and rejected with a clear status);
 *  - deterministic response serialization (no Date header: cache-hit
 *    responses must be byte-identical to the cold response, and the
 *    bench gate compares whole payloads);
 *  - keep-alive bookkeeping (HTTP/1.1 default-on, "Connection: close"
 *    honored both ways);
 *  - a blocking read loop (`read_request`) and a tiny client
 *    (`roundtrip`) shared by the tests and the load-generator bench.
 *
 * The pure-buffer parsers (`parse_request_head`, `parse_response`) are
 * split from the socket loops so the unit tests can drive them without a
 * live connection.
 */

#ifndef ROBOSHAPE_NET_HTTP_H
#define ROBOSHAPE_NET_HTTP_H

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "net/socket.h"

namespace roboshape {
namespace net {

/** Hard cap on the request-line + header block. */
inline constexpr std::size_t kMaxHeaderBytes = 16 * 1024;
/** Hard cap on a request body (URDFs are generous kilobytes, not MBs). */
inline constexpr std::size_t kMaxBodyBytes = 8 * 1024 * 1024;

/** One parsed request.  Header names are matched case-insensitively. */
struct HttpRequest
{
    std::string method;  ///< "GET", "POST", ... (uppercase as sent).
    std::string target;  ///< Request target, e.g. "/v1/sweep".
    std::string version; ///< "HTTP/1.0" or "HTTP/1.1".
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    /** First header named @p name (case-insensitive); nullopt if absent. */
    std::optional<std::string_view> header(std::string_view name) const;

    /** True when the connection may carry another request afterwards. */
    bool keep_alive() const;
};

/** One response under construction or parsed from a client socket. */
struct HttpResponse
{
    int status = 200;
    std::string reason = "OK";
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    std::optional<std::string_view> header(std::string_view name) const;

    /** Appends a header (no dedup; callers add each name once). */
    void set_header(std::string name, std::string value);

    /**
     * Serializes status line + headers + body.  Adds Content-Length
     * always and "Connection: close" when @p keep_alive is false
     * ("keep-alive" otherwise), so the peer never has to guess framing.
     */
    std::string serialize(bool keep_alive) const;
};

/** Convenience: a JSON response with Content-Type set. */
HttpResponse json_response(int status, std::string body);

/** Outcome of reading one request off a connection. */
enum class ReadResult
{
    kOk,          ///< Request parsed; fields are valid.
    kClosed,      ///< Peer closed before sending anything (normal).
    kTimeout,     ///< Deadline expired mid-request.
    kTooLarge,    ///< Header or body limit exceeded (respond 431/413).
    kMalformed,   ///< Syntactically invalid (respond 400).
    kUnsupported, ///< Valid HTTP we do not speak (respond 501/505).
};

/**
 * Parses the head (request line + headers) of @p text, which must span
 * exactly up to and including the blank line.  Returns kOk and fills
 * everything but the body, or a failure classification.
 */
ReadResult parse_request_head(std::string_view text, HttpRequest &out);

/**
 * Reads one full request (head + Content-Length body) from @p conn.
 * @p leftover carries bytes read past the previous message on a
 * keep-alive connection; it is consumed first and refilled with any
 * over-read on return.
 */
ReadResult read_request(TcpConn &conn, HttpRequest &out,
                        std::string &leftover, int timeout_ms);

/**
 * Parses one complete serialized response (status line, headers, and a
 * Content-Length body).  @p consumed receives the total message size so
 * keep-alive clients can resynchronize.  False when @p text does not yet
 * hold a complete message or is malformed.
 */
bool parse_response(std::string_view text, HttpResponse &out,
                    std::size_t *consumed = nullptr);

/**
 * Blocking client round-trip on an established connection: sends
 * @p request (serialized) and reads one response.  @p leftover threads
 * keep-alive over-read exactly like read_request.  Nullopt on any
 * transport or parse failure.
 */
std::optional<HttpResponse> roundtrip(TcpConn &conn,
                                      const HttpRequest &request,
                                      std::string &leftover,
                                      int timeout_ms);

/** Serializes a client request (adds Host, Content-Length). */
std::string serialize_request(const HttpRequest &request);

/** Standard reason phrase for @p status ("Unknown" when unmapped). */
const char *reason_phrase(int status);

} // namespace net
} // namespace roboshape

#endif // ROBOSHAPE_NET_HTTP_H
