/**
 * @file
 * Implementation of the shared Prometheus exposition encoder.
 */

#include "obs/prometheus.h"

namespace roboshape {
namespace obs {

namespace {

bool
is_name_byte(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_';
}

void
append_i64(std::string &out, std::int64_t v)
{
    out += std::to_string(v);
}

void
append_u64(std::string &out, std::uint64_t v)
{
    out += std::to_string(v);
}

void
append_quantile(std::string &out, const std::string &name,
                const char *quantile, std::int64_t value)
{
    out += name;
    out += "{quantile=\"";
    out += quantile;
    out += "\"} ";
    append_i64(out, value);
    out += '\n';
}

} // namespace

std::string
prometheus_metric_name(std::string_view name)
{
    std::string out = "roboshape_";
    out.reserve(out.size() + name.size());
    for (const char c : name)
        out += is_name_byte(c) ? c : '_';
    return out;
}

std::string
prometheus_exposition(const std::vector<CounterSample> &counters,
                      const std::vector<HistogramSample> &histograms)
{
    std::string out;
    out.reserve(256 * (counters.size() + histograms.size()) + 64);
    for (const CounterSample &c : counters) {
        const std::string name = prometheus_metric_name(c.name);
        out += "# TYPE ";
        out += name;
        out += " counter\n";
        out += name;
        out += ' ';
        append_u64(out, c.value);
        out += '\n';
    }
    for (const HistogramSample &h : histograms) {
        const std::string name = prometheus_metric_name(h.name);
        out += "# TYPE ";
        out += name;
        out += " summary\n";
        append_quantile(out, name, "0.5", h.stats.p50());
        append_quantile(out, name, "0.9", h.stats.p90());
        append_quantile(out, name, "0.99", h.stats.p99());
        out += name;
        out += "_sum ";
        append_i64(out, h.stats.sum);
        out += '\n';
        out += name;
        out += "_count ";
        append_u64(out, h.stats.count);
        out += '\n';
        out += "# TYPE ";
        out += name;
        out += "_min gauge\n";
        out += name;
        out += "_min ";
        append_i64(out, h.stats.min);
        out += '\n';
        out += "# TYPE ";
        out += name;
        out += "_max gauge\n";
        out += name;
        out += "_max ";
        append_i64(out, h.stats.max);
        out += '\n';
    }
    return out;
}

std::string
prometheus_exposition()
{
    return prometheus_exposition(registry().counters(),
                                 registry().histograms());
}

} // namespace obs
} // namespace roboshape
