/**
 * @file
 * Process-wide counter and histogram registry (docs/OBSERVABILITY.md).
 *
 * Every subsystem of the pipeline — the list/block schedulers, the sweep
 * memoization caches, the compiled simulation engine, the URDF front end —
 * publishes lightweight counters here so benches, the CLI `stats`
 * subcommand, and RunReports can snapshot where work went without any
 * subsystem growing bespoke statistics plumbing.
 *
 * Design constraints (the "fast as hardware allows" prerequisite):
 *
 *  - Hot-path cost is one relaxed atomic add behind a relaxed enabled-flag
 *    load.  Call sites resolve their Counter reference once through a
 *    function-local static, so the registry map is only consulted on first
 *    use.  The overhead gate (`bench/obs_overhead`, ctest label "obs")
 *    keeps the instrumented SimEngine within 2% of the uninstrumented one.
 *
 *  - Instrumentation never changes numerics: counters observe, they do not
 *    participate in any computation.
 *
 *  - Compiling with -DROBOSHAPE_NO_OBS removes every call site entirely
 *    (the ROBOSHAPE_OBS_* macros expand to no-ops), for deployments that
 *    want the instrumentation not just disabled but gone.
 *
 * Thread-safety: Counter/Histogram mutation is lock-free; creating a new
 * named counter takes a mutex once.  Snapshots are consistent per entry
 * (not across entries), which is what run reports need.
 */

#ifndef ROBOSHAPE_OBS_REGISTRY_H
#define ROBOSHAPE_OBS_REGISTRY_H

#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

namespace roboshape {
namespace obs {

/** Monotonic event counter.  add() is safe from any thread. */
class Counter
{
  public:
    void add(std::uint64_t n = 1) noexcept
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const noexcept
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/**
 * Histogram bucket layout: fixed log-spaced buckets with exact counts.
 *
 * Bucket 0 absorbs every value <= 0.  Values in [1, 2^kSubBits) get one
 * bucket each (exact).  Larger values split each power-of-two octave into
 * 2^kSubBits sub-buckets (<= 12.5% relative width at kSubBits = 3), the
 * HdrHistogram layout.  The scheme is a pure function of the value — no
 * sampling, no rebalancing — so bucket counts (and therefore quantiles)
 * are bit-identical across runs, thread counts, and record orderings.
 */
inline constexpr unsigned kHistogramSubBits = 3;
inline constexpr std::size_t kHistogramBuckets =
    1 + ((64 - kHistogramSubBits) << kHistogramSubBits);

/** Bucket index of @p v under the layout above (branch-light bit math). */
constexpr std::size_t
histogram_bucket_index(std::int64_t v) noexcept
{
    if (v <= 0)
        return 0;
    const auto u = static_cast<std::uint64_t>(v);
    const unsigned msb =
        63u - static_cast<unsigned>(std::countl_zero(u)); // one bit-scan
    if (msb < kHistogramSubBits)
        return 1 + static_cast<std::size_t>(u);
    const std::uint64_t sub =
        (u >> (msb - kHistogramSubBits)) & ((1u << kHistogramSubBits) - 1);
    return 1 +
           ((static_cast<std::size_t>(msb) - kHistogramSubBits + 1)
            << kHistogramSubBits) +
           static_cast<std::size_t>(sub);
}

/** Largest value mapping to bucket @p index (the quantile estimate). */
constexpr std::int64_t
histogram_bucket_upper(std::size_t index) noexcept
{
    if (index == 0)
        return 0;
    const std::size_t f = index - 1;
    if (f < (std::size_t{1} << kHistogramSubBits))
        return static_cast<std::int64_t>(f);
    const std::size_t block = f >> kHistogramSubBits;
    const std::size_t sub = f & ((std::size_t{1} << kHistogramSubBits) - 1);
    const unsigned msb =
        static_cast<unsigned>(block) + kHistogramSubBits - 1;
    const std::uint64_t width = std::uint64_t{1} << (msb - kHistogramSubBits);
    const std::uint64_t lower =
        (std::uint64_t{1} << msb) + static_cast<std::uint64_t>(sub) * width;
    const std::uint64_t upper = lower + width - 1;
    return upper > static_cast<std::uint64_t>(
                       std::numeric_limits<std::int64_t>::max())
               ? std::numeric_limits<std::int64_t>::max()
               : static_cast<std::int64_t>(upper);
}

/**
 * Distribution summary: count, sum, min, max, and exact log-spaced bucket
 * counts of recorded values — enough to answer "what is p99 of
 * svc.request_us under load", not just "how deep did the queue get".
 * The hot path stays lock-free: two relaxed adds plus rare min/max CAS.
 */
class Histogram
{
  public:
    void record(std::int64_t v) noexcept;

    struct Snapshot
    {
        std::uint64_t count = 0;
        std::int64_t sum = 0;
        std::int64_t min = 0; ///< 0 when count == 0.
        std::int64_t max = 0; ///< 0 when count == 0.
        std::vector<std::uint64_t> buckets; ///< kHistogramBuckets counts.

        double mean() const
        {
            return count == 0 ? 0.0
                              : static_cast<double>(sum) /
                                    static_cast<double>(count);
        }

        /**
         * Upper bound of the bucket holding the value of rank
         * ceil(q * count) — deterministic for a given multiset of recorded
         * values regardless of thread interleaving.  0 when empty.
         */
        std::int64_t quantile(double q) const noexcept;

        std::int64_t p50() const noexcept { return quantile(0.50); }
        std::int64_t p90() const noexcept { return quantile(0.90); }
        std::int64_t p99() const noexcept { return quantile(0.99); }
    };

    Snapshot snapshot() const noexcept;
    void reset() noexcept;

  private:
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::int64_t> sum_{0};
    std::atomic<std::int64_t> min_{std::numeric_limits<std::int64_t>::max()};
    std::atomic<std::int64_t> max_{std::numeric_limits<std::int64_t>::min()};
    std::atomic<std::uint64_t> buckets_[kHistogramBuckets] = {};
};

/** One named counter value in a registry snapshot. */
struct CounterSample
{
    std::string name;
    std::uint64_t value = 0;
};

/** One named histogram summary in a registry snapshot. */
struct HistogramSample
{
    std::string name;
    Histogram::Snapshot stats;
};

/**
 * Name -> Counter/Histogram map with stable entry addresses: a reference
 * returned by counter()/histogram() stays valid for the process lifetime,
 * so call sites may cache it in a static.
 */
class Registry
{
  public:
    Counter &counter(std::string_view name);
    Histogram &histogram(std::string_view name);

    /** All counters, sorted by name (deterministic report order). */
    std::vector<CounterSample> counters() const;
    /** All histograms, sorted by name. */
    std::vector<HistogramSample> histograms() const;

    /** Zeroes every counter and histogram (names stay registered). */
    void reset();

  private:
    struct Impl;
    Impl &impl() const;
};

/** The process-wide registry every ROBOSHAPE_OBS_* macro records into. */
Registry &registry();

/**
 * Runtime master switch (default on).  When off, Counter::add and
 * Histogram::record still execute at call sites but the per-subsystem
 * instrumentation macros skip their updates; recorded values freeze.
 */
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

} // namespace obs
} // namespace roboshape

/*
 * Instrumentation macros.  Use these — not the classes directly — at hot
 * call sites, so -DROBOSHAPE_NO_OBS compiles the instrumentation out.
 *
 *   ROBOSHAPE_OBS_COUNT(name, n)   bump counter `name` by n
 *   ROBOSHAPE_OBS_RECORD(name, v)  record v into histogram `name`
 *
 * `name` must be a string literal (it keys the registry map once).
 */
#ifndef ROBOSHAPE_NO_OBS
#define ROBOSHAPE_OBS_COUNT(name, n)                                        \
    do {                                                                    \
        if (::roboshape::obs::enabled()) {                                  \
            static ::roboshape::obs::Counter &roboshape_obs_counter_ =      \
                ::roboshape::obs::registry().counter(name);                 \
            roboshape_obs_counter_.add(                                     \
                static_cast<std::uint64_t>(n));                             \
        }                                                                   \
    } while (0)
#define ROBOSHAPE_OBS_RECORD(name, v)                                       \
    do {                                                                    \
        if (::roboshape::obs::enabled()) {                                  \
            static ::roboshape::obs::Histogram &roboshape_obs_hist_ =       \
                ::roboshape::obs::registry().histogram(name);               \
            roboshape_obs_hist_.record(static_cast<std::int64_t>(v));       \
        }                                                                   \
    } while (0)
#else
#define ROBOSHAPE_OBS_COUNT(name, n)                                        \
    do {                                                                    \
        (void)sizeof(n);                                                    \
    } while (0)
#define ROBOSHAPE_OBS_RECORD(name, v)                                       \
    do {                                                                    \
        (void)sizeof(v);                                                    \
    } while (0)
#endif

#endif // ROBOSHAPE_OBS_REGISTRY_H
