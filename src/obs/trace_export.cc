/**
 * @file
 * Implementation of Chrome trace-event export.
 */

#include "obs/trace_export.h"

#include <algorithm>
#include <cassert>

#include "obs/json.h"

namespace roboshape {
namespace obs {

namespace {

using sched::PeClass;
using sched::Placement;
using sched::Schedule;
using sched::TaskGraph;
using sched::TaskId;

/** Per-PE placements in start order, keyed by (class, pe) row index. */
std::vector<std::vector<const Placement *>>
placements_by_pe(const Schedule &s)
{
    const std::size_t fwd = s.forward_rom.size();
    const std::size_t bwd = s.backward_rom.size();
    std::vector<std::vector<const Placement *>> rows(fwd + bwd);
    // The schedule ROMs already list task ids per PE in dispatch order,
    // which for a single PE equals start order.
    for (std::size_t pe = 0; pe < fwd; ++pe)
        for (TaskId id : s.forward_rom[pe])
            rows[pe].push_back(&s.placements[id]);
    for (std::size_t pe = 0; pe < bwd; ++pe)
        for (TaskId id : s.backward_rom[pe])
            rows[fwd + pe].push_back(&s.placements[id]);
    return rows;
}

/** Cycle every dependency of @p id placed in @p s has finished by. */
std::int64_t
ready_cycle(const TaskGraph &graph, const Schedule &s, TaskId id)
{
    std::int64_t ready = 0;
    for (TaskId d : graph.task(id).deps) {
        const Placement &dp = s.placements[d];
        if (dp.task != sched::kNoTask)
            ready = std::max(ready, dp.finish);
    }
    return ready;
}

const char *
task_type_name(sched::TaskType t)
{
    return sched::to_string(t);
}

/** One "X" (complete) trace event with a fixed field order. */
void
emit_event(JsonWriter &w, const std::string &name, const char *cat,
           std::int64_t ts, std::int64_t dur, int pid, int tid)
{
    w.begin_object();
    w.kv("name", name);
    w.kv("cat", cat);
    w.kv("ph", "X");
    w.kv("ts", ts);
    w.kv("dur", dur);
    w.kv("pid", pid);
    w.kv("tid", tid);
}

void
emit_metadata(JsonWriter &w, const char *what, int pid, int tid,
              const std::string &name)
{
    w.begin_object();
    w.kv("name", what);
    w.kv("ph", "M");
    w.kv("pid", pid);
    if (tid >= 0)
        w.kv("tid", tid);
    w.key("args");
    w.begin_object();
    w.kv("name", name);
    w.end_object();
    w.end_object();
}

} // namespace

std::vector<PeAccount>
account_schedule(const TaskGraph &graph, const Schedule &schedule)
{
    const std::size_t fwd = schedule.forward_rom.size();
    const auto rows = placements_by_pe(schedule);
    std::vector<PeAccount> out;
    out.reserve(rows.size());
    for (std::size_t row = 0; row < rows.size(); ++row) {
        PeAccount acct;
        acct.pe_class = row < fwd ? PeClass::kForward : PeClass::kBackward;
        acct.pe = static_cast<int>(row < fwd ? row : row - fwd);
        std::int64_t cursor = 0;
        for (const Placement *p : rows[row]) {
            assert(p->start >= cursor && "ROM order is start order");
            if (p->start > cursor) {
                const std::int64_t ready =
                    std::clamp(ready_cycle(graph, schedule, p->task),
                               cursor, p->start);
                acct.stall += ready - cursor;
                acct.idle += p->start - ready;
            }
            acct.busy += p->finish - p->start;
            cursor = p->finish;
        }
        acct.idle += schedule.makespan - cursor;
        out.push_back(acct);
    }
    return out;
}

std::string
schedule_trace_json(const TaskGraph &graph, const Schedule &schedule,
                    const ScheduleTraceOptions &options)
{
    const std::size_t fwd = schedule.forward_rom.size();
    const auto rows = placements_by_pe(schedule);

    JsonWriter w(1);
    w.begin_object();
    w.kv("displayTimeUnit", "ms");
    w.key("otherData");
    w.begin_object();
    w.kv("schema", kTraceSchema);
    w.kv("robot", options.robot);
    w.kv("kernel", options.kernel);
    w.kv("time_unit", "cycles");
    w.kv("clock_period_ns", options.clock_period_ns);
    w.kv("makespan_cycles", schedule.makespan);
    w.kv("forward_pes", fwd);
    w.kv("backward_pes", schedule.backward_rom.size());
    w.end_object();
    w.key("traceEvents");
    w.begin_array();

    emit_metadata(w, "process_name", 0, -1, "forward PEs");
    emit_metadata(w, "process_name", 1, -1, "backward PEs");
    for (std::size_t row = 0; row < rows.size(); ++row) {
        const bool is_fwd = row < fwd;
        const int pid = is_fwd ? 0 : 1;
        const int tid = static_cast<int>(is_fwd ? row : row - fwd);
        emit_metadata(w, "thread_name", pid, tid,
                      (is_fwd ? "fwd" : "bwd") + std::to_string(tid));
    }

    for (std::size_t row = 0; row < rows.size(); ++row) {
        const bool is_fwd = row < fwd;
        const int pid = is_fwd ? 0 : 1;
        const int tid = static_cast<int>(is_fwd ? row : row - fwd);
        std::int64_t cursor = 0;
        for (const Placement *p : rows[row]) {
            if (p->start > cursor) {
                const std::int64_t ready =
                    std::clamp(ready_cycle(graph, schedule, p->task),
                               cursor, p->start);
                if (ready > cursor) {
                    emit_event(w, "stall", "stall", cursor, ready - cursor,
                               pid, tid);
                    w.end_object();
                }
                if (p->start > ready) {
                    emit_event(w, "idle", "idle", ready, p->start - ready,
                               pid, tid);
                    w.end_object();
                }
            }
            const sched::Task &task = graph.task(p->task);
            emit_event(w, task.label(), "task", p->start,
                       p->finish - p->start, pid, tid);
            w.key("args");
            w.begin_object();
            w.kv("task", static_cast<std::int64_t>(p->task));
            w.kv("link", static_cast<std::int64_t>(task.link));
            w.kv("column", static_cast<std::int64_t>(task.column));
            w.kv("type", task_type_name(task.type));
            w.end_object();
            w.end_object();
            cursor = p->finish;
        }
        if (schedule.makespan > cursor) {
            emit_event(w, "idle", "idle", cursor,
                       schedule.makespan - cursor, pid, tid);
            w.end_object();
        }
    }

    w.end_array();
    w.end_object();
    std::string out = w.str();
    out += '\n';
    return out;
}

std::string
wall_spans_trace_json(const std::vector<WallSpan> &spans)
{
    std::uint64_t base = 0;
    bool have_base = false;
    std::uint32_t max_tid = 0;
    for (const WallSpan &s : spans) {
        if (!have_base || s.t0_ns < base) {
            base = s.t0_ns;
            have_base = true;
        }
        max_tid = std::max(max_tid, s.tid);
    }

    JsonWriter w(1);
    w.begin_object();
    w.kv("displayTimeUnit", "ns");
    w.key("otherData");
    w.begin_object();
    w.kv("schema", kTraceSchema);
    w.kv("time_unit", "wall_us");
    w.kv("spans", spans.size());
    w.end_object();
    w.key("traceEvents");
    w.begin_array();
    emit_metadata(w, "process_name", 0, -1, "SimEngine wall clock");
    if (!spans.empty())
        for (std::uint32_t tid = 0; tid <= max_tid; ++tid)
            emit_metadata(w, "thread_name", 0, static_cast<int>(tid),
                          "worker" + std::to_string(tid));
    for (const WallSpan &s : spans) {
        w.begin_object();
        w.kv("name", s.name);
        w.kv("cat", s.category);
        w.kv("ph", "X");
        w.kv("ts", static_cast<double>(s.t0_ns - base) / 1000.0);
        w.kv("dur", static_cast<double>(s.t1_ns - s.t0_ns) / 1000.0);
        w.kv("pid", 0);
        w.kv("tid", static_cast<std::int64_t>(s.tid));
        if (s.arg0 >= 0 || s.arg1 >= 0 || s.req != 0) {
            w.key("args");
            w.begin_object();
            if (s.arg0 >= 0)
                w.kv("link", static_cast<std::int64_t>(s.arg0));
            if (s.arg1 >= 0)
                w.kv("column", static_cast<std::int64_t>(s.arg1));
            if (s.req != 0)
                w.kv("req", static_cast<std::int64_t>(s.req));
            w.end_object();
        }
        w.end_object();
    }
    w.end_array();
    w.end_object();
    std::string out = w.str();
    out += '\n';
    return out;
}

} // namespace obs
} // namespace roboshape
