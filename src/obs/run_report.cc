/**
 * @file
 * Implementation of the RunReport JSON artifact.
 */

#include "obs/run_report.h"

#include <fstream>

#include "obs/json.h"
#include "obs/registry.h"

#ifndef ROBOSHAPE_GIT_SHA
#define ROBOSHAPE_GIT_SHA "unknown"
#endif

namespace roboshape {
namespace obs {

const char *
git_sha()
{
    return ROBOSHAPE_GIT_SHA;
}

RunReport::RunReport(std::string tool, std::string name)
    : tool_(std::move(tool)), name_(std::move(name))
{
}

void
RunReport::set_params(std::size_t pes_fwd, std::size_t pes_bwd,
                      std::size_t block_size)
{
    have_params_ = true;
    pes_fwd_ = pes_fwd;
    pes_bwd_ = pes_bwd;
    block_size_ = block_size;
}

void
RunReport::metric(std::string key, double v)
{
    Metric m;
    m.key = std::move(key);
    m.kind = Metric::Kind::kDouble;
    m.d = v;
    metrics_.push_back(std::move(m));
}

void
RunReport::metric(std::string key, std::int64_t v)
{
    Metric m;
    m.key = std::move(key);
    m.kind = Metric::Kind::kInt;
    m.i = v;
    metrics_.push_back(std::move(m));
}

void
RunReport::metric(std::string key, std::uint64_t v)
{
    Metric m;
    m.key = std::move(key);
    m.kind = Metric::Kind::kUint;
    m.u = v;
    metrics_.push_back(std::move(m));
}

void
RunReport::metric(std::string key, bool v)
{
    Metric m;
    m.key = std::move(key);
    m.kind = Metric::Kind::kBool;
    m.b = v;
    metrics_.push_back(std::move(m));
}

void
RunReport::metric(std::string key, std::string v)
{
    Metric m;
    m.key = std::move(key);
    m.kind = Metric::Kind::kString;
    m.s = std::move(v);
    metrics_.push_back(std::move(m));
}

void
RunReport::capture_counters()
{
    counters_.clear();
    for (const CounterSample &c : registry().counters())
        counters_.emplace_back(c.name, c.value);
    histograms_.clear();
    for (const HistogramSample &h : registry().histograms())
        histograms_.push_back(
            {h.name, h.stats.count, h.stats.sum, h.stats.min, h.stats.max});
}

std::string
RunReport::to_json(int indent) const
{
    JsonWriter w(indent);
    w.begin_object();
    w.kv("schema", kRunReportSchema);
    w.kv("tool", tool_);
    w.kv("name", name_);
    w.kv("git_sha", git_sha());
    w.kv("robot", robot_);
    w.kv("kernel", kernel_);
    w.key("params");
    w.begin_object();
    if (have_params_) {
        w.kv("pes_fwd", pes_fwd_);
        w.kv("pes_bwd", pes_bwd_);
        w.kv("block_size", block_size_);
    }
    w.end_object();
    w.key("metrics");
    w.begin_object();
    for (const Metric &m : metrics_) {
        w.key(m.key);
        switch (m.kind) {
          case Metric::Kind::kDouble:
            w.value(m.d);
            break;
          case Metric::Kind::kInt:
            w.value(m.i);
            break;
          case Metric::Kind::kUint:
            w.value(m.u);
            break;
          case Metric::Kind::kBool:
            w.value(m.b);
            break;
          case Metric::Kind::kString:
            w.value(m.s);
            break;
        }
    }
    w.end_object();
    w.key("counters");
    w.begin_object();
    for (const auto &[name, value] : counters_)
        w.kv(name, value);
    w.end_object();
    w.key("histograms");
    w.begin_object();
    for (const HistRow &h : histograms_) {
        w.key(h.name);
        w.begin_object();
        w.kv("count", h.count);
        w.kv("sum", h.sum);
        w.kv("min", h.min);
        w.kv("max", h.max);
        w.end_object();
    }
    w.end_object();
    w.end_object();
    std::string out = w.str();
    out += '\n';
    return out;
}

bool
RunReport::write(const std::string &path) const
{
    std::ofstream file(path);
    if (!file)
        return false;
    file << to_json();
    return static_cast<bool>(file);
}

} // namespace obs
} // namespace roboshape
