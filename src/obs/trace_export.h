/**
 * @file
 * Chrome trace-event export of schedules and wall-clock spans.
 *
 * Renders any sched::Schedule as a Chrome trace-event JSON document —
 * loadable in Perfetto (ui.perfetto.dev) or chrome://tracing — with one
 * track per processing element and three span categories:
 *
 *   - "task":  a placed task occupying its PE ([start, finish) cycles);
 *   - "stall": the PE is free but the next task's dependencies have not
 *              finished yet (dependency wait);
 *   - "idle":  the PE is free and no obligation is pending (pool
 *              over-provisioning or scheduler choice).
 *
 * The three categories tile each PE's timeline exactly: for every PE,
 * busy + stall + idle == the schedule's makespan.  account_schedule()
 * exposes that decomposition directly (the CLI `trace` subcommand and the
 * golden tests assert the invariant).
 *
 * Timestamps are in *cycles*, written into the trace's microsecond field
 * one-to-one (Perfetto then displays 1 cycle as 1us); the synthesized
 * clock period travels alongside in otherData.clock_period_ns for tools
 * that want wall-clock scaling.  All output is deterministic: field order
 * is fixed and events are emitted row by row in time order, so traces
 * golden-compare byte-for-byte.
 */

#ifndef ROBOSHAPE_OBS_TRACE_EXPORT_H
#define ROBOSHAPE_OBS_TRACE_EXPORT_H

#include <cstdint>
#include <string>
#include <vector>

#include "obs/wall_trace.h"
#include "sched/list_scheduler.h"
#include "sched/task_graph.h"

namespace roboshape {
namespace obs {

/** Schema tag written into otherData.schema of every exported trace. */
inline constexpr const char *kTraceSchema = "roboshape.trace/1";

/** Exact cycle decomposition of one PE's timeline. */
struct PeAccount
{
    sched::PeClass pe_class = sched::PeClass::kForward;
    int pe = 0;
    std::int64_t busy = 0;  ///< Cycles executing tasks.
    std::int64_t stall = 0; ///< Cycles free but blocked on dependencies.
    std::int64_t idle = 0;  ///< Cycles free with nothing pending.

    std::int64_t total() const { return busy + stall + idle; }
};

/**
 * Decomposes every PE of @p schedule into busy/stall/idle cycles.
 *
 * A gap before a task is "stall" up to the cycle its last dependency
 * finishes (dependencies without a placement in this schedule — e.g.
 * cross-stage deps of a staged schedule — count as ready at cycle 0) and
 * "idle" after that; trailing time to the makespan is idle.  Invariant:
 * account.total() == schedule.makespan for every returned entry.
 */
std::vector<PeAccount> account_schedule(const sched::TaskGraph &graph,
                                        const sched::Schedule &schedule);

/** Labels and scaling carried into the exported trace's otherData. */
struct ScheduleTraceOptions
{
    std::string robot;          ///< otherData.robot ("" = omitted value).
    std::string kernel;         ///< otherData.kernel.
    double clock_period_ns = 0; ///< otherData.clock_period_ns (0 = unknown).
};

/**
 * Renders @p schedule as a Chrome trace-event JSON document (object form
 * with "traceEvents").  Forward PEs are process 0, backward PEs process 1;
 * each PE is one named thread ("fwd3", "bwd0").  Task events carry
 * args.task/link/column/type for Perfetto queries.
 */
std::string schedule_trace_json(const sched::TaskGraph &graph,
                                const sched::Schedule &schedule,
                                const ScheduleTraceOptions &options = {});

/**
 * Renders wall-clock spans (obs/wall_trace.h) as Chrome trace-event JSON;
 * timestamps are nanoseconds rebased to the earliest span and written as
 * fractional microseconds.  One thread track per recorded tid.
 */
std::string wall_spans_trace_json(const std::vector<WallSpan> &spans);

} // namespace obs
} // namespace roboshape

#endif // ROBOSHAPE_OBS_TRACE_EXPORT_H
