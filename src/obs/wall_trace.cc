/**
 * @file
 * Implementation of wall-clock span tracing.
 */

#include "obs/wall_trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>

namespace roboshape {
namespace obs {

namespace {

std::atomic<bool> g_tracing{false};
std::atomic<int> g_forced{0};
thread_local std::uint64_t t_request_id = 0;

struct TraceStore
{
    std::mutex mu;
    std::vector<WallSpan> spans;
    std::map<std::thread::id, std::uint32_t> tids;

    std::uint32_t
    tid_of(std::thread::id id)
    {
        // Called under mu.
        const auto it = tids.find(id);
        if (it != tids.end())
            return it->second;
        const auto dense = static_cast<std::uint32_t>(tids.size());
        tids.emplace(id, dense);
        return dense;
    }
};

TraceStore &
store()
{
    static TraceStore s;
    return s;
}

} // namespace

std::uint64_t
wall_now_ns() noexcept
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

bool
wall_trace_enabled() noexcept
{
#ifdef ROBOSHAPE_NO_OBS
    return false;
#else
    return g_tracing.load(std::memory_order_relaxed) ||
           g_forced.load(std::memory_order_relaxed) > 0;
#endif
}

void
set_wall_trace_enabled(bool on) noexcept
{
    g_tracing.store(on, std::memory_order_relaxed);
}

void
set_trace_request_id(std::uint64_t id) noexcept
{
    t_request_id = id;
}

std::uint64_t
trace_request_id() noexcept
{
    return t_request_id;
}

void
begin_forced_wall_trace() noexcept
{
    g_forced.fetch_add(1, std::memory_order_relaxed);
}

void
end_forced_wall_trace() noexcept
{
    g_forced.fetch_sub(1, std::memory_order_relaxed);
}

void
clear_wall_trace()
{
    TraceStore &s = store();
    std::lock_guard<std::mutex> lock(s.mu);
    s.spans.clear();
    s.tids.clear();
}

void
record_wall_span(const char *name, const char *category,
                 std::uint64_t t0_ns, std::uint64_t t1_ns,
                 std::int32_t arg0, std::int32_t arg1)
{
    if (!wall_trace_enabled())
        return;
    TraceStore &s = store();
    std::lock_guard<std::mutex> lock(s.mu);
    WallSpan span;
    span.name = name;
    span.category = category;
    span.t0_ns = t0_ns;
    span.t1_ns = t1_ns;
    span.tid = s.tid_of(std::this_thread::get_id());
    span.arg0 = arg0;
    span.arg1 = arg1;
    span.req = t_request_id;
    s.spans.push_back(span);
}

namespace {

void
sort_spans(std::vector<WallSpan> &spans)
{
    std::sort(spans.begin(), spans.end(),
              [](const WallSpan &a, const WallSpan &b) {
                  if (a.t0_ns != b.t0_ns)
                      return a.t0_ns < b.t0_ns;
                  if (a.t1_ns != b.t1_ns)
                      return a.t1_ns < b.t1_ns;
                  return std::strcmp(a.name, b.name) < 0;
              });
}

} // namespace

std::vector<WallSpan>
wall_trace_spans()
{
    TraceStore &s = store();
    std::vector<WallSpan> out;
    {
        std::lock_guard<std::mutex> lock(s.mu);
        out = s.spans;
    }
    sort_spans(out);
    return out;
}

std::vector<WallSpan>
take_wall_trace_spans(std::uint64_t req)
{
    TraceStore &s = store();
    std::vector<WallSpan> out;
    {
        std::lock_guard<std::mutex> lock(s.mu);
        auto keep = s.spans.begin();
        for (auto it = s.spans.begin(); it != s.spans.end(); ++it) {
            if (it->req == req)
                out.push_back(*it);
            else
                *keep++ = *it;
        }
        s.spans.erase(keep, s.spans.end());
    }
    sort_spans(out);
    return out;
}

} // namespace obs
} // namespace roboshape
