/**
 * @file
 * Implementation of the counter/histogram registry.
 */

#include "obs/registry.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>

namespace roboshape {
namespace obs {

void
Histogram::record(std::int64_t v) noexcept
{
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    buckets_[histogram_bucket_index(v)].fetch_add(
        1, std::memory_order_relaxed);
    // Lock-free min/max via compare-exchange loops; contention is rare
    // (values near the extremes only).
    std::int64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed))
        ;
    cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed))
        ;
}

std::int64_t
Histogram::Snapshot::quantile(double q) const noexcept
{
    if (count == 0 || buckets.empty())
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Rank of the q-th value, 1-based: ceil(q * count), at least 1 so
    // p0 still lands in the first populated bucket.
    auto rank = static_cast<std::uint64_t>(
        q * static_cast<double>(count) + 0.9999999999);
    if (rank == 0)
        rank = 1;
    if (rank > count)
        rank = count;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        cumulative += buckets[i];
        if (cumulative >= rank)
            return histogram_bucket_upper(i);
    }
    return max; // unreachable when bucket counts sum to `count`
}

Histogram::Snapshot
Histogram::snapshot() const noexcept
{
    Snapshot s;
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    if (s.count > 0) {
        s.min = min_.load(std::memory_order_relaxed);
        s.max = max_.load(std::memory_order_relaxed);
    }
    s.buckets.resize(kHistogramBuckets);
    for (std::size_t i = 0; i < kHistogramBuckets; ++i)
        s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    return s;
}

void
Histogram::reset() noexcept
{
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(std::numeric_limits<std::int64_t>::max(),
               std::memory_order_relaxed);
    max_.store(std::numeric_limits<std::int64_t>::min(),
               std::memory_order_relaxed);
    for (std::size_t i = 0; i < kHistogramBuckets; ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
}

/** unique_ptr values give entries stable addresses across rehashing. */
struct Registry::Impl
{
    mutable std::mutex mu;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
        histograms;
};

Registry::Impl &
Registry::impl() const
{
    static Impl instance;
    return instance;
}

Counter &
Registry::counter(std::string_view name)
{
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.mu);
    auto it = i.counters.find(name);
    if (it == i.counters.end())
        it = i.counters
                 .emplace(std::string(name), std::make_unique<Counter>())
                 .first;
    return *it->second;
}

Histogram &
Registry::histogram(std::string_view name)
{
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.mu);
    auto it = i.histograms.find(name);
    if (it == i.histograms.end())
        it = i.histograms
                 .emplace(std::string(name), std::make_unique<Histogram>())
                 .first;
    return *it->second;
}

std::vector<CounterSample>
Registry::counters() const
{
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.mu);
    std::vector<CounterSample> out;
    out.reserve(i.counters.size());
    for (const auto &[name, counter] : i.counters)
        out.push_back({name, counter->value()});
    return out;
}

std::vector<HistogramSample>
Registry::histograms() const
{
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.mu);
    std::vector<HistogramSample> out;
    out.reserve(i.histograms.size());
    for (const auto &[name, hist] : i.histograms)
        out.push_back({name, hist->snapshot()});
    return out;
}

void
Registry::reset()
{
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.mu);
    for (auto &[name, counter] : i.counters)
        counter->reset();
    for (auto &[name, hist] : i.histograms)
        hist->reset();
}

Registry &
registry()
{
    static Registry instance;
    return instance;
}

namespace {
std::atomic<bool> g_enabled{true};
} // namespace

bool
enabled() noexcept
{
    return g_enabled.load(std::memory_order_relaxed);
}

void
set_enabled(bool on) noexcept
{
    g_enabled.store(on, std::memory_order_relaxed);
}

} // namespace obs
} // namespace roboshape
