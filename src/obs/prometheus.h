/**
 * @file
 * Prometheus text exposition of the counter/histogram registry
 * (docs/OBSERVABILITY.md).
 *
 * One encoder shared by the daemon's `GET /metrics` endpoint and the CLI
 * `roboshape stats --format prometheus` — no second hand-rolled
 * formatter.  Output is the exposition text format (version 0.0.4):
 * counters become `counter` families, histograms become `summary`
 * families carrying the deterministic p50/p90/p99 bucket-bound quantiles
 * plus `_sum`/`_count` and companion `_min`/`_max` gauges.  Families are
 * emitted in sorted-name registry order, so two scrapes of identical
 * registry state are byte-identical (the property
 * `tools/promtext_check` asserts in CI).
 */

#ifndef ROBOSHAPE_OBS_PROMETHEUS_H
#define ROBOSHAPE_OBS_PROMETHEUS_H

#include <string>
#include <string_view>
#include <vector>

#include "obs/registry.h"

namespace roboshape {
namespace obs {

/**
 * Metric name under exposition rules: "roboshape_" prefix, dots and any
 * other non-[a-zA-Z0-9_] byte mapped to '_' ("svc.request_us" ->
 * "roboshape_svc_request_us").
 */
std::string prometheus_metric_name(std::string_view name);

/** Renders @p counters and @p histograms in their given order. */
std::string
prometheus_exposition(const std::vector<CounterSample> &counters,
                      const std::vector<HistogramSample> &histograms);

/** Snapshot of the process-wide registry, sorted-name order. */
std::string prometheus_exposition();

} // namespace obs
} // namespace roboshape

#endif // ROBOSHAPE_OBS_PROMETHEUS_H
