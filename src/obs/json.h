/**
 * @file
 * Minimal streaming JSON writer and validator.
 *
 * Every machine-readable artifact the repo emits — Chrome trace files,
 * RunReports, the bench gate JSON — used to be hand-rolled printf strings
 * with per-bench escaping bugs waiting to happen.  JsonWriter centralizes
 * the escaping and the comma bookkeeping while keeping the output
 * deterministic: fields appear exactly in the order they are written, so
 * golden-file tests can compare byte-for-byte.
 *
 * validate_json() is a strict RFC 8259 syntax checker used by the trace
 * exporter tests and the CLI to assert emitted artifacts actually parse.
 * It validates; it does not build a DOM.
 */

#ifndef ROBOSHAPE_OBS_JSON_H
#define ROBOSHAPE_OBS_JSON_H

#include <cstdint>
#include <string>
#include <string_view>

namespace roboshape {
namespace obs {

/** Escapes @p s for inclusion inside a JSON string (no quotes added). */
std::string json_escape(std::string_view s);

/**
 * Streaming writer.  Usage:
 *
 *     JsonWriter w;
 *     w.begin_object();
 *     w.key("name").value("iiwa");
 *     w.key("cycles").value(std::int64_t{893});
 *     w.key("knobs").begin_array();
 *     w.value(7.0);
 *     w.end_array();
 *     w.end_object();
 *     std::string out = w.str();
 *
 * Doubles are emitted with up to 17 significant digits (round-trip exact)
 * but trimmed of trailing zeros; NaN/Inf (not representable in JSON)
 * become null.
 */
class JsonWriter
{
  public:
    /** @param indent spaces per nesting level; 0 = compact one-line. */
    explicit JsonWriter(int indent = 0) : indent_(indent) {}

    JsonWriter &begin_object();
    JsonWriter &end_object();
    JsonWriter &begin_array();
    JsonWriter &end_array();

    /** Writes an object key; must be followed by exactly one value. */
    JsonWriter &key(std::string_view k);

    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(int v) { return value(static_cast<std::int64_t>(v)); }
    JsonWriter &value(unsigned v)
    {
        return value(static_cast<std::uint64_t>(v));
    }
    JsonWriter &value(bool v);
    JsonWriter &null();

    /** Shorthand: key + scalar value. */
    template <typename T>
    JsonWriter &
    kv(std::string_view k, T v)
    {
        key(k);
        return value(v);
    }

    const std::string &str() const { return out_; }

  private:
    void before_value();
    void newline_indent();

    std::string out_;
    int indent_ = 0;
    int depth_ = 0;
    bool need_comma_ = false;
    bool after_key_ = false;
};

/**
 * Strict JSON syntax check.  Returns true when @p text is one complete
 * JSON value with nothing but whitespace after it; on failure @p error
 * (when non-null) receives a short description with a byte offset.
 */
bool validate_json(std::string_view text, std::string *error = nullptr);

} // namespace obs
} // namespace roboshape

#endif // ROBOSHAPE_OBS_JSON_H
