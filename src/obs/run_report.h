/**
 * @file
 * Unified machine-readable run reports (schema "roboshape.run_report/1").
 *
 * Every bench, the CLI `stats`/`trace` subcommands, and the examples can
 * emit one RunReport JSON artifact describing what ran and what it
 * measured, so successive PRs track trajectories (latency, throughput,
 * memo hit rates) without scraping stdout tables.  The schema is fixed and
 * field order deterministic:
 *
 *   {
 *     "schema":   "roboshape.run_report/1",
 *     "tool":     "fig9_compute_latency",     // emitting binary
 *     "name":     "Fig. 9 ...",               // human title
 *     "git_sha":  "fa8a41dabc12",             // configure-time HEAD
 *     "robot":    "iiwa",                     // optional context keys
 *     "kernel":   "dynamics_gradient",
 *     "params":   {"pes_fwd": 7, ...},        // design knobs when known
 *     "metrics":  {...},                      // insertion-ordered scalars
 *     "counters": {...},                      // obs registry snapshot
 *     "histograms": {"name": {"count":..,"sum":..,"min":..,"max":..}, ...}
 *   }
 *
 * Optional sections are present-but-empty rather than omitted, so
 * downstream readers never branch on key existence.
 */

#ifndef ROBOSHAPE_OBS_RUN_REPORT_H
#define ROBOSHAPE_OBS_RUN_REPORT_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace roboshape {
namespace obs {

/** Version tag written into every report's "schema" field. */
inline constexpr const char *kRunReportSchema = "roboshape.run_report/1";

/** HEAD commit recorded at configure time ("unknown" outside a checkout). */
const char *git_sha();

class RunReport
{
  public:
    RunReport(std::string tool, std::string name);

    /** Context setters; empty strings are emitted as "" (never omitted). */
    void set_robot(std::string robot) { robot_ = std::move(robot); }
    void set_kernel(std::string kernel) { kernel_ = std::move(kernel); }
    /** Design knobs; shown as the "params" object when set. */
    void set_params(std::size_t pes_fwd, std::size_t pes_bwd,
                    std::size_t block_size);

    /** Appends one metric; duplicate keys are emitted in order given. */
    void metric(std::string key, double v);
    void metric(std::string key, std::int64_t v);
    void metric(std::string key, std::uint64_t v);
    void metric(std::string key, unsigned v)
    {
        metric(std::move(key), static_cast<std::uint64_t>(v));
    }
    void metric(std::string key, int v)
    {
        metric(std::move(key), static_cast<std::int64_t>(v));
    }
    void metric(std::string key, bool v);
    void metric(std::string key, std::string v);

    /** Snapshots the process-wide obs registry into the report. */
    void capture_counters();

    /** Deterministic JSON rendering of the full schema above. */
    std::string to_json(int indent = 2) const;

    /** Writes to_json() to @p path; returns false on I/O failure. */
    bool write(const std::string &path) const;

  private:
    struct Metric
    {
        enum class Kind
        {
            kDouble,
            kInt,
            kUint,
            kBool,
            kString,
        };
        std::string key;
        Kind kind = Kind::kDouble;
        double d = 0.0;
        std::int64_t i = 0;
        std::uint64_t u = 0;
        bool b = false;
        std::string s;
    };

    std::string tool_;
    std::string name_;
    std::string robot_;
    std::string kernel_;
    bool have_params_ = false;
    std::size_t pes_fwd_ = 0, pes_bwd_ = 0, block_size_ = 0;
    std::vector<Metric> metrics_;
    std::vector<std::pair<std::string, std::uint64_t>> counters_;
    struct HistRow
    {
        std::string name;
        std::uint64_t count;
        std::int64_t sum, min, max;
    };
    std::vector<HistRow> histograms_;
};

} // namespace obs
} // namespace roboshape

#endif // ROBOSHAPE_OBS_RUN_REPORT_H
