/**
 * @file
 * Implementation of the streaming JSON writer and validator.
 */

#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace roboshape {
namespace obs {

std::string
json_escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::newline_indent()
{
    if (indent_ <= 0)
        return;
    out_ += '\n';
    out_.append(static_cast<std::size_t>(depth_ * indent_), ' ');
}

void
JsonWriter::before_value()
{
    if (after_key_) {
        after_key_ = false;
        return;
    }
    if (need_comma_)
        out_ += ',';
    if (depth_ > 0)
        newline_indent();
}

JsonWriter &
JsonWriter::begin_object()
{
    before_value();
    out_ += '{';
    ++depth_;
    need_comma_ = false;
    return *this;
}

JsonWriter &
JsonWriter::end_object()
{
    --depth_;
    if (need_comma_)
        newline_indent();
    out_ += '}';
    need_comma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::begin_array()
{
    before_value();
    out_ += '[';
    ++depth_;
    need_comma_ = false;
    return *this;
}

JsonWriter &
JsonWriter::end_array()
{
    --depth_;
    if (need_comma_)
        newline_indent();
    out_ += ']';
    need_comma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    if (need_comma_)
        out_ += ',';
    newline_indent();
    out_ += '"';
    out_ += json_escape(k);
    out_ += indent_ > 0 ? "\": " : "\":";
    need_comma_ = true;
    after_key_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    before_value();
    out_ += '"';
    out_ += json_escape(v);
    out_ += '"';
    need_comma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string_view(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    if (!std::isfinite(v))
        return null();
    before_value();
    char buf[32];
    // Shortest representation that round-trips: try increasing precision.
    for (int prec = 6; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, v);
        double back = 0.0;
        // Round-trip probe of our own %g output, not input validation.
        std::sscanf(buf, "%lf", &back); // NOLINT(banned-raw-parse)
        if (back == v)
            break;
    }
    out_ += buf;
    need_comma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    before_value();
    char buf[24];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    out_ += buf;
    need_comma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    before_value();
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(v));
    out_ += buf;
    need_comma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    before_value();
    out_ += v ? "true" : "false";
    need_comma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    before_value();
    out_ += "null";
    need_comma_ = true;
    return *this;
}

namespace {

/** Recursive-descent JSON syntax checker. */
class Validator
{
  public:
    explicit Validator(std::string_view text) : text_(text) {}

    bool
    run(std::string *error)
    {
        ok_ = true;
        pos_ = 0;
        skip_ws();
        parse_value(0);
        skip_ws();
        if (ok_ && pos_ != text_.size())
            fail("trailing content");
        if (!ok_ && error)
            *error = error_;
        return ok_;
    }

  private:
    static constexpr int kMaxDepth = 256;

    void
    fail(const char *what)
    {
        if (ok_) {
            ok_ = false;
            error_ = std::string(what) + " at byte " + std::to_string(pos_);
        }
    }

    bool eof() const { return pos_ >= text_.size(); }
    char peek() const { return eof() ? '\0' : text_[pos_]; }

    void
    skip_ws()
    {
        while (!eof() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                          text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (peek() != c)
            return false;
        ++pos_;
        return true;
    }

    void
    expect_literal(const char *lit)
    {
        const std::size_t len = std::strlen(lit);
        if (text_.compare(pos_, len, lit) != 0) {
            fail("bad literal");
            return;
        }
        pos_ += len;
    }

    void
    parse_string()
    {
        if (!consume('"')) {
            fail("expected string");
            return;
        }
        while (ok_) {
            if (eof()) {
                fail("unterminated string");
                return;
            }
            const char c = text_[pos_++];
            if (c == '"')
                return;
            if (static_cast<unsigned char>(c) < 0x20) {
                fail("raw control character in string");
                return;
            }
            if (c == '\\') {
                if (eof()) {
                    fail("unterminated escape");
                    return;
                }
                const char e = text_[pos_++];
                if (e == 'u') {
                    for (int k = 0; k < 4; ++k) {
                        const char h = peek();
                        const bool hex = (h >= '0' && h <= '9') ||
                                         (h >= 'a' && h <= 'f') ||
                                         (h >= 'A' && h <= 'F');
                        if (!hex) {
                            fail("bad \\u escape");
                            return;
                        }
                        ++pos_;
                    }
                } else if (!std::strchr("\"\\/bfnrt", e)) {
                    fail("bad escape");
                    return;
                }
            }
        }
    }

    void
    parse_number()
    {
        consume('-');
        if (consume('0')) {
            // no leading zeros
        } else if (peek() >= '1' && peek() <= '9') {
            while (peek() >= '0' && peek() <= '9')
                ++pos_;
        } else {
            fail("bad number");
            return;
        }
        if (consume('.')) {
            if (!(peek() >= '0' && peek() <= '9')) {
                fail("bad fraction");
                return;
            }
            while (peek() >= '0' && peek() <= '9')
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!(peek() >= '0' && peek() <= '9')) {
                fail("bad exponent");
                return;
            }
            while (peek() >= '0' && peek() <= '9')
                ++pos_;
        }
    }

    void
    parse_value(int depth)
    {
        if (!ok_)
            return;
        if (depth > kMaxDepth) {
            fail("nesting too deep");
            return;
        }
        switch (peek()) {
          case '{': {
            ++pos_;
            skip_ws();
            if (consume('}'))
                return;
            while (ok_) {
                skip_ws();
                parse_string();
                skip_ws();
                if (!consume(':')) {
                    fail("expected ':'");
                    return;
                }
                skip_ws();
                parse_value(depth + 1);
                skip_ws();
                if (consume('}'))
                    return;
                if (!consume(',')) {
                    fail("expected ',' or '}'");
                    return;
                }
            }
            return;
          }
          case '[': {
            ++pos_;
            skip_ws();
            if (consume(']'))
                return;
            while (ok_) {
                skip_ws();
                parse_value(depth + 1);
                skip_ws();
                if (consume(']'))
                    return;
                if (!consume(',')) {
                    fail("expected ',' or ']'");
                    return;
                }
            }
            return;
          }
          case '"':
            parse_string();
            return;
          case 't':
            expect_literal("true");
            return;
          case 'f':
            expect_literal("false");
            return;
          case 'n':
            expect_literal("null");
            return;
          default:
            parse_number();
            return;
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    bool ok_ = true;
    std::string error_;
};

} // namespace

bool
validate_json(std::string_view text, std::string *error)
{
    return Validator(text).run(error);
}

} // namespace obs
} // namespace roboshape
