/**
 * @file
 * Wall-clock span tracing for the functional simulation engine.
 *
 * Cycle-accurate schedules explain where *modeled* cycles go; wall-trace
 * spans explain where *host* time goes inside accel::SimEngine::run and
 * run_batch — per phase (input marshalling, RNEA, dRNEA position and
 * velocity passes, the -M^-1 blocked solve) and, at the finest grain, per
 * executed op.  Spans convert to Chrome trace-event JSON via
 * obs::wall_spans_trace_json (see trace_export.h) and load directly in
 * Perfetto / chrome://tracing.
 *
 * Tracing is a debugging/profiling mode: it is OFF by default and every
 * instrumented site guards on wall_trace_enabled() (one relaxed atomic
 * load).  When off, the only cost is that load and a predicted branch.
 * Span recording itself takes a mutex — acceptable for a mode whose whole
 * point is to be turned on briefly around a region of interest.
 *
 * Compiled out entirely under -DROBOSHAPE_NO_OBS (the macros below become
 * no-ops; the functions remain linkable but record nothing).
 */

#ifndef ROBOSHAPE_OBS_WALL_TRACE_H
#define ROBOSHAPE_OBS_WALL_TRACE_H

#include <cstdint>
#include <vector>

namespace roboshape {
namespace obs {

/** One recorded wall-clock interval. */
struct WallSpan
{
    const char *name = "";   ///< Static string; never freed.
    const char *category = ""; ///< "phase", "op", "batch", ...
    std::uint64_t t0_ns = 0; ///< Steady-clock nanoseconds.
    std::uint64_t t1_ns = 0;
    std::uint32_t tid = 0;   ///< Dense per-thread id (0 = first seen).
    std::int32_t arg0 = -1;  ///< Site-defined (e.g. link), -1 = unset.
    std::int32_t arg1 = -1;  ///< Site-defined (e.g. column), -1 = unset.
    std::uint64_t req = 0;   ///< Owning request id, 0 = none.
};

/** Steady-clock timestamp in nanoseconds (monotonic within the process). */
std::uint64_t wall_now_ns() noexcept;

bool wall_trace_enabled() noexcept;
void set_wall_trace_enabled(bool on) noexcept;

/**
 * Per-request trace context (docs/SERVICE.md): the daemon stamps the
 * current thread with the request id it is serving, and every span
 * recorded from that thread — handler, DesignCache, executor job-graph
 * workers (which adopt the leading thread's id, see core/executor.cc),
 * SimEngine phases — carries it in WallSpan::req.  0 means "no request".
 */
void set_trace_request_id(std::uint64_t id) noexcept;
std::uint64_t trace_request_id() noexcept;

/**
 * Forces tracing on while at least one traced request is in flight,
 * independent of the set_wall_trace_enabled master switch.  Nestable;
 * every begin must be paired with an end.
 */
void begin_forced_wall_trace() noexcept;
void end_forced_wall_trace() noexcept;

/** Discards all recorded spans. */
void clear_wall_trace();

/** Records one finished span (no-op when tracing is off). */
void record_wall_span(const char *name, const char *category,
                      std::uint64_t t0_ns, std::uint64_t t1_ns,
                      std::int32_t arg0 = -1, std::int32_t arg1 = -1);

/** Snapshot of every recorded span, sorted by (t0, t1, name). */
std::vector<WallSpan> wall_trace_spans();

/**
 * Removes and returns the spans stamped with request id @p req, sorted
 * like wall_trace_spans().  The per-request Chrome-trace dump uses this
 * so traced requests do not accumulate in the global store.
 */
std::vector<WallSpan> take_wall_trace_spans(std::uint64_t req);

/** RAII span: times its scope and records on destruction when enabled. */
class ScopedWallSpan
{
  public:
    explicit ScopedWallSpan(const char *name,
                            const char *category = "phase") noexcept
        : name_(name), category_(category),
          t0_(wall_trace_enabled() ? wall_now_ns() : 0)
    {
    }

    ~ScopedWallSpan()
    {
        if (t0_ != 0)
            record_wall_span(name_, category_, t0_, wall_now_ns());
    }

    ScopedWallSpan(const ScopedWallSpan &) = delete;
    ScopedWallSpan &operator=(const ScopedWallSpan &) = delete;

  private:
    const char *name_;
    const char *category_;
    std::uint64_t t0_;
};

} // namespace obs
} // namespace roboshape

#ifndef ROBOSHAPE_NO_OBS
#define ROBOSHAPE_OBS_SPAN(var, name)                                       \
    ::roboshape::obs::ScopedWallSpan var(name)
#else
#define ROBOSHAPE_OBS_SPAN(var, name)                                       \
    do {                                                                    \
    } while (0)
#endif

#endif // ROBOSHAPE_OBS_WALL_TRACE_H
