/**
 * @file
 * Ingestion diagnostics: typed error taxonomy, source locations, and the
 * validation report collected by the checked URDF parse mode.
 *
 * The XML and URDF parsers are the front door of the whole pipeline — a
 * production service ingests robot descriptions from untrusted fleets
 * before any topology extraction happens.  Every parse failure therefore
 * carries a machine-readable ParseErrorCode plus a line:column location,
 * and `parse_urdf_checked` accumulates *all* diagnostics (errors and
 * data-quality warnings) into a ValidationReport instead of throwing on
 * the first problem.  See docs/INGESTION.md.
 */

#ifndef ROBOSHAPE_TOPOLOGY_DIAGNOSTICS_H
#define ROBOSHAPE_TOPOLOGY_DIAGNOSTICS_H

#include <cstddef>
#include <string>
#include <vector>

namespace roboshape {
namespace topology {

/** Machine-readable classification of every ingestion diagnostic. */
enum class ParseErrorCode
{
    kNone = 0,

    // File-level failures (unreadable input).
    kIoError,

    // XML layer.
    kXmlUnterminated,       ///< Comment/declaration/CDATA/attr never closed.
    kXmlExpectedName,       ///< A tag or attribute name was expected.
    kXmlMalformedTag,       ///< Open/close tag syntax error.
    kXmlMismatchedTag,      ///< Close tag does not match the open element.
    kXmlDuplicateAttribute, ///< Same attribute given twice on one element.
    kXmlBadAttributeSyntax, ///< Missing '=' or unquoted attribute value.
    kXmlBadEntity,          ///< Unknown or malformed entity/char reference.
    kXmlNoRootElement,      ///< Document contains no element at all.
    kXmlTrailingContent,    ///< Non-whitespace content after the root.
    kXmlTooDeep,            ///< Element nesting beyond the hard depth cap.

    // URDF layer: element/attribute content.
    kUrdfBadRoot,           ///< Root element is not <robot>.
    kUrdfMissingName,       ///< Link/joint without a name attribute.
    kUrdfDuplicateName,     ///< Duplicate link or joint name.
    kUrdfMissingElement,    ///< Required child element absent.
    kUrdfBadNumber,         ///< Attribute is not a single finite number.
    kUrdfBadVector,         ///< Attribute is not exactly 3 finite numbers.
    kUrdfBadJointType,      ///< Unsupported <joint type="...">.
    kUrdfNegativeMass,      ///< <mass value> below zero.
    kUrdfZeroAxis,          ///< Moving joint with a zero axis vector.

    // URDF layer: kinematic-graph structure.
    kUrdfNoLinks,           ///< Robot defines no links.
    kUrdfUndefinedLink,     ///< Joint references a link that does not exist.
    kUrdfMultipleParents,   ///< A link is the child of more than one joint.
    kUrdfNoRootLink,        ///< Every link is some joint's child (loop).
    kUrdfMultipleRootLinks, ///< Disconnected forest.
    kUrdfNotATree,          ///< Joints unreachable from the root link.
    kUrdfGraphError,        ///< Tree builder rejected the structure.

    // Warnings (report mode only; strict mode ignores them).
    kUrdfIgnoredElement,    ///< Element the pipeline does not consume.
    kUrdfZeroMassInertia,   ///< Zero mass but a nonzero inertia tensor.
    kUrdfNonPsdInertia,     ///< Inertia tensor not positive semidefinite.
    kUrdfTriangleInequality,///< Principal inertias violate ixx+iyy >= izz.
    kUrdfNonUnitAxis,       ///< Joint axis is not normalized.
    kUrdfMissingAttribute,  ///< Optional-but-expected attribute absent.
};

/** Stable identifier string for @p code (e.g. "xml-duplicate-attribute"). */
const char *to_string(ParseErrorCode code);

/** Position in the source text; line/column are 1-based, 0 = unknown. */
struct SourceLocation
{
    std::size_t offset = 0; ///< Byte offset into the input.
    std::size_t line = 0;   ///< 1-based line number (0 = unknown).
    std::size_t column = 0; ///< 1-based column number (0 = unknown).

    bool known() const { return line != 0; }

    /** "line:column" or "offset N" when line info is unavailable. */
    std::string to_string() const;
};

/** Computes the line/column of byte @p offset within @p text. */
SourceLocation locate(const std::string &text, std::size_t offset);

/**
 * Extracts the source line containing @p loc plus a caret marker, e.g.
 *
 *     <mass value="1.5abc"/>
 *                 ^
 *
 * Returns an empty string when the location is unknown or out of range.
 */
std::string source_snippet(const std::string &text,
                           const SourceLocation &loc);

/** Diagnostic severity. Errors prevent model construction; warnings don't. */
enum class Severity
{
    kWarning,
    kError,
};

/** One ingestion finding: severity, code, human message, and location. */
struct Diagnostic
{
    Severity severity = Severity::kError;
    ParseErrorCode code = ParseErrorCode::kNone;
    std::string message;
    SourceLocation location;
    std::string snippet; ///< Offending source line + caret, may be empty.

    /** "error[urdf-bad-number] 12:18: ..." single-line rendering. */
    std::string to_string() const;
};

/**
 * Accumulates every diagnostic of one checked parse.  The report is the
 * single source of truth for "did ingestion succeed": a model is produced
 * iff `ok()`.
 */
class ValidationReport
{
  public:
    void add(Diagnostic d);
    void add_error(ParseErrorCode code, std::string message,
                   SourceLocation location = {}, std::string snippet = {});
    void add_warning(ParseErrorCode code, std::string message,
                     SourceLocation location = {}, std::string snippet = {});

    const std::vector<Diagnostic> &diagnostics() const
    {
        return diagnostics_;
    }

    std::size_t error_count() const { return errors_; }
    std::size_t warning_count() const { return diagnostics_.size() - errors_; }

    /** True when no *errors* were recorded (warnings are allowed). */
    bool ok() const { return errors_ == 0; }

    /** True when a diagnostic with @p code was recorded. */
    bool has(ParseErrorCode code) const;

    /** Multi-line rendering of every diagnostic, one per line. */
    std::string to_string() const;

  private:
    std::vector<Diagnostic> diagnostics_;
    std::size_t errors_ = 0;
};

} // namespace topology
} // namespace roboshape

#endif // ROBOSHAPE_TOPOLOGY_DIAGNOSTICS_H
