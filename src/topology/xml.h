/**
 * @file
 * Minimal XML document parser.
 *
 * URDF robot description files are plain XML; this self-contained parser
 * covers the subset URDF uses: nested elements, attributes, self-closing
 * tags, comments, CDATA sections, XML declarations, DOCTYPE prologs
 * (including bracketed internal subsets, which are skipped, not expanded),
 * and the five predefined entities plus numeric character references.  It
 * intentionally omits namespaces and custom DTD entity expansion.
 *
 * The parser is hardened for untrusted input (see docs/INGESTION.md):
 * every error carries a typed ParseErrorCode and a 1-based line:column
 * location with a source snippet, duplicate attributes are rejected, and
 * element nesting is capped at kMaxXmlDepth so adversarial documents
 * cannot overflow the stack.
 */

#ifndef ROBOSHAPE_TOPOLOGY_XML_H
#define ROBOSHAPE_TOPOLOGY_XML_H

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "topology/diagnostics.h"

namespace roboshape {
namespace topology {

/** Hard cap on element nesting depth (anti stack-overflow). */
inline constexpr std::size_t kMaxXmlDepth = 200;

/** Error raised on malformed XML input. */
class XmlError : public std::runtime_error
{
  public:
    XmlError(ParseErrorCode code, const std::string &msg,
             SourceLocation location, std::string snippet = {});

    /** Typed classification of the failure. */
    ParseErrorCode code() const { return code_; }

    /** Position where the error was detected (line/column are 1-based). */
    const SourceLocation &location() const { return location_; }

    /** Byte offset into the input where the error was detected. */
    std::size_t offset() const { return location_.offset; }

    /** Offending source line with a caret marker; may be empty. */
    const std::string &snippet() const { return snippet_; }

  private:
    ParseErrorCode code_;
    SourceLocation location_;
    std::string snippet_;
};

/** A parsed XML element. */
class XmlElement
{
  public:
    std::string name;
    std::map<std::string, std::string> attributes;
    std::vector<std::unique_ptr<XmlElement>> children;
    std::string text;
    /** Position of the element's opening '<' in the source document. */
    SourceLocation location;

    /** True when attribute @p key is present. */
    bool has_attribute(const std::string &key) const;

    /** Attribute value, or @p fallback when absent. */
    std::string attribute(const std::string &key,
                          const std::string &fallback = "") const;

    /** First child element named @p tag, or nullptr. */
    const XmlElement *child(const std::string &tag) const;

    /** All child elements named @p tag. */
    std::vector<const XmlElement *> children_named(const std::string &tag)
        const;
};

/**
 * Parses an XML document and returns its root element.
 * @throws XmlError on malformed input.
 */
std::unique_ptr<XmlElement> parse_xml(const std::string &input);

/**
 * Reads a whole file and parses it.
 * @throws XmlError with code kIoError when the file cannot be read, or any
 *         other XmlError on malformed content.
 */
std::unique_ptr<XmlElement> parse_xml_file(const std::string &path);

} // namespace topology
} // namespace roboshape

#endif // ROBOSHAPE_TOPOLOGY_XML_H
