/**
 * @file
 * Minimal XML document parser.
 *
 * URDF robot description files are plain XML; this self-contained parser
 * covers the subset URDF uses: nested elements, attributes, self-closing
 * tags, comments, and XML declarations.  It intentionally omits namespaces,
 * CDATA, DTDs, and entity expansion beyond the five predefined entities.
 */

#ifndef ROBOSHAPE_TOPOLOGY_XML_H
#define ROBOSHAPE_TOPOLOGY_XML_H

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace roboshape {
namespace topology {

/** Error raised on malformed XML input. */
class XmlError : public std::runtime_error
{
  public:
    XmlError(const std::string &msg, std::size_t offset);

    /** Byte offset into the input where the error was detected. */
    std::size_t offset() const { return offset_; }

  private:
    std::size_t offset_;
};

/** A parsed XML element. */
class XmlElement
{
  public:
    std::string name;
    std::map<std::string, std::string> attributes;
    std::vector<std::unique_ptr<XmlElement>> children;
    std::string text;

    /** True when attribute @p key is present. */
    bool has_attribute(const std::string &key) const;

    /** Attribute value, or @p fallback when absent. */
    std::string attribute(const std::string &key,
                          const std::string &fallback = "") const;

    /** First child element named @p tag, or nullptr. */
    const XmlElement *child(const std::string &tag) const;

    /** All child elements named @p tag. */
    std::vector<const XmlElement *> children_named(const std::string &tag)
        const;
};

/**
 * Parses an XML document and returns its root element.
 * @throws XmlError on malformed input.
 */
std::unique_ptr<XmlElement> parse_xml(const std::string &input);

/** Reads a whole file and parses it. @throws std::runtime_error on I/O. */
std::unique_ptr<XmlElement> parse_xml_file(const std::string &path);

} // namespace topology
} // namespace roboshape

#endif // ROBOSHAPE_TOPOLOGY_XML_H
