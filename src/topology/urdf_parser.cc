/**
 * @file
 * Implementation of the URDF parser (strict and report modes).
 *
 * Both modes share one implementation parameterized by a ParseContext: in
 * strict mode every error throws a typed UrdfError immediately; in report
 * mode errors and warnings accumulate into a ValidationReport and parsing
 * continues so a single pass surfaces *every* problem in the file.
 */

#include "topology/urdf_parser.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <initializer_list>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "topology/xml.h"

namespace roboshape {
namespace topology {

UrdfError::UrdfError(ParseErrorCode code, const std::string &msg,
                     SourceLocation location)
    : std::runtime_error(location.known()
                             ? msg + " (" + location.to_string() + ")"
                             : msg),
      code_(code),
      location_(location)
{
}

namespace {

using spatial::JointModel;
using spatial::JointType;
using spatial::Mat3;
using spatial::SpatialInertia;
using spatial::SpatialTransform;
using spatial::Vec3;

/** Diagnostics sink: strict mode throws, report mode accumulates. */
struct ParseContext
{
    ValidationReport *report = nullptr; ///< Null = strict mode.
    const std::string *source = nullptr; ///< For report snippets.

    bool strict() const { return report == nullptr; }
    bool failed() const { return failed_; }

    void
    error(ParseErrorCode code, const std::string &msg,
          SourceLocation loc = {})
    {
        if (!report)
            throw UrdfError(code, msg, loc);
        failed_ = true;
        report->add_error(code, msg, loc, snippet(loc));
    }

    void
    warning(ParseErrorCode code, const std::string &msg,
            SourceLocation loc = {})
    {
        if (report)
            report->add_warning(code, msg, loc, snippet(loc));
    }

  private:
    std::string
    snippet(const SourceLocation &loc) const
    {
        return (source && loc.known()) ? source_snippet(*source, loc)
                                       : std::string();
    }

    bool failed_ = false;
};

/**
 * Parses @p s as exactly one finite double.  Rejects trailing garbage
 * ("1.5abc"), NaN/Inf spellings, and values that overflow to infinity
 * ("1e999999") — the classes of input bare std::stod silently accepts or
 * turns into leaked std::invalid_argument / std::out_of_range.
 */
bool
parse_full_double(const std::string &s, double *out)
{
    const char *begin = s.c_str();
    char *end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin)
        return false; // no conversion at all
    while (*end == ' ' || *end == '\t' || *end == '\r' || *end == '\n')
        ++end;
    if (*end != '\0')
        return false; // trailing non-numeric garbage
    if (!std::isfinite(v))
        return false; // "nan", "inf", or overflow to +-HUGE_VAL
    *out = v;
    return true;
}

/** Checked numeric attribute read; records kUrdfBadNumber and returns 0. */
double
parse_double_attr(ParseContext &ctx, const XmlElement &el,
                  const char *attr_name, const std::string &context)
{
    const std::string raw = el.attribute(attr_name, "0");
    double v = 0.0;
    if (!parse_full_double(raw, &v)) {
        ctx.error(ParseErrorCode::kUrdfBadNumber,
                  "malformed number in " + context + " attribute '" +
                      attr_name + "': '" + raw + "'",
                  el.location);
        return 0.0;
    }
    return v;
}

/**
 * Parses exactly three whitespace-separated finite doubles.  Requires full
 * consumption of the string: "1 2 3 x" and "1 2 3 4" are rejected, as are
 * NaN/Inf components.  Records kUrdfBadVector and returns @p fallback on
 * failure.
 */
Vec3
parse_vec3(ParseContext &ctx, const std::string &s, const std::string &what,
           SourceLocation loc, const Vec3 &fallback = Vec3{})
{
    std::istringstream is(s);
    std::string token;
    double comps[3];
    std::size_t n = 0;
    bool bad = false;
    while (is >> token) {
        if (n >= 3 || !parse_full_double(token, &comps[n])) {
            bad = true;
            break;
        }
        ++n;
    }
    if (bad || n != 3) {
        ctx.error(ParseErrorCode::kUrdfBadVector,
                  "malformed 3-vector in " + what + ": '" + s + "'", loc);
        return fallback;
    }
    return {comps[0], comps[1], comps[2]};
}

/** Vector-rotation matrix for URDF fixed-axis roll-pitch-yaw. */
Mat3
rotation_from_rpy(const Vec3 &rpy)
{
    const Mat3 rx =
        Mat3::coordinate_rotation(Vec3::unit_x(), rpy.x).transposed();
    const Mat3 ry =
        Mat3::coordinate_rotation(Vec3::unit_y(), rpy.y).transposed();
    const Mat3 rz =
        Mat3::coordinate_rotation(Vec3::unit_z(), rpy.z).transposed();
    return rz * ry * rx;
}

/** URDF <origin>: placement of a child frame within a parent frame. */
struct Pose
{
    Mat3 r = Mat3::identity(); ///< Rotates child coordinates into parent.
    Vec3 p;                    ///< Child origin in parent coordinates.

    /** Featherstone motion transform parent -> child. */
    SpatialTransform
    to_transform() const
    {
        return SpatialTransform(r.transposed(), p);
    }

    /** this: A<-B placement; inner: B<-C placement; result: A<-C. */
    Pose
    compose(const Pose &inner) const
    {
        return {r * inner.r, p + r * inner.p};
    }
};

Pose
parse_origin(ParseContext &ctx, const XmlElement *el)
{
    Pose pose;
    if (!el)
        return pose;
    if (el->has_attribute("xyz"))
        pose.p = parse_vec3(ctx, el->attribute("xyz"), "origin xyz",
                            el->location);
    if (el->has_attribute("rpy"))
        pose.r = rotation_from_rpy(parse_vec3(
            ctx, el->attribute("rpy"), "origin rpy", el->location));
    return pose;
}

/** Report-mode warning for every child element the pipeline ignores. */
void
warn_unhandled_children(ParseContext &ctx, const XmlElement &el,
                        std::initializer_list<const char *> handled)
{
    if (ctx.strict())
        return; // warnings only exist in report mode
    for (const auto &child : el.children) {
        bool known = false;
        for (const char *h : handled)
            if (child->name == h)
                known = true;
        if (!known)
            ctx.warning(ParseErrorCode::kUrdfIgnoredElement,
                        "ignoring unsupported element <" + child->name +
                            "> inside <" + el.name + ">",
                        child->location);
    }
}

/**
 * Data-quality warnings on a link's inertial parameters: zero mass with a
 * nonzero tensor, tensors violating positive-semidefiniteness (Sylvester
 * minors), and principal moments violating the triangle inequality.
 */
void
check_inertia_quality(ParseContext &ctx, const std::string &link_name,
                      double mass, const Mat3 &ic, SourceLocation loc)
{
    const double ixx = ic(0, 0), iyy = ic(1, 1), izz = ic(2, 2);
    const double ixy = ic(0, 1), ixz = ic(0, 2), iyz = ic(1, 2);
    double scale = 1.0;
    for (const double v : {ixx, iyy, izz, ixy, ixz, iyz})
        scale = std::max(scale, std::fabs(v));
    const double tol = 1e-9 * scale;

    const bool tensor_nonzero =
        std::fabs(ixx) > 0.0 || std::fabs(iyy) > 0.0 ||
        std::fabs(izz) > 0.0 || std::fabs(ixy) > 0.0 ||
        std::fabs(ixz) > 0.0 || std::fabs(iyz) > 0.0;
    if (mass == 0.0 && tensor_nonzero)
        ctx.warning(ParseErrorCode::kUrdfZeroMassInertia,
                    "link '" + link_name +
                        "' has zero mass but a nonzero inertia tensor",
                    loc);

    const double minor2 = ixx * iyy - ixy * ixy;
    const double det = ixx * (iyy * izz - iyz * iyz) -
                       ixy * (ixy * izz - iyz * ixz) +
                       ixz * (ixy * iyz - iyy * ixz);
    if (ixx < -tol || iyy < -tol || izz < -tol || minor2 < -tol * scale ||
        det < -tol * scale * scale)
        ctx.warning(ParseErrorCode::kUrdfNonPsdInertia,
                    "link '" + link_name +
                        "' inertia tensor is not positive semidefinite",
                    loc);
    if (ixx + iyy < izz - tol || iyy + izz < ixx - tol ||
        izz + ixx < iyy - tol)
        ctx.warning(ParseErrorCode::kUrdfTriangleInequality,
                    "link '" + link_name +
                        "' principal inertias violate the triangle "
                        "inequality",
                    loc);
}

SpatialInertia
parse_inertial(ParseContext &ctx, const XmlElement *el,
               const std::string &link_name)
{
    if (!el)
        return SpatialInertia(); // massless link
    warn_unhandled_children(ctx, *el, {"origin", "mass", "inertia"});
    const XmlElement *mass_el = el->child("mass");
    const XmlElement *inertia_el = el->child("inertia");
    if (!mass_el || !inertia_el) {
        ctx.error(ParseErrorCode::kUrdfMissingElement,
                  "link '" + link_name +
                      "' inertial requires <mass> and <inertia>",
                  el->location);
        return SpatialInertia();
    }
    if (!mass_el->has_attribute("value"))
        ctx.warning(ParseErrorCode::kUrdfMissingAttribute,
                    "link '" + link_name +
                        "' <mass> has no value attribute; assuming 0",
                    mass_el->location);
    double mass = parse_double_attr(ctx, *mass_el, "value",
                                    "link '" + link_name + "' <mass>");
    if (mass < 0.0) {
        ctx.error(ParseErrorCode::kUrdfNegativeMass,
                  "link '" + link_name + "' has negative mass",
                  mass_el->location);
        mass = 0.0;
    }

    const std::string inertia_ctx = "link '" + link_name + "' <inertia>";
    Mat3 ic;
    ic(0, 0) = parse_double_attr(ctx, *inertia_el, "ixx", inertia_ctx);
    ic(1, 1) = parse_double_attr(ctx, *inertia_el, "iyy", inertia_ctx);
    ic(2, 2) = parse_double_attr(ctx, *inertia_el, "izz", inertia_ctx);
    ic(0, 1) = ic(1, 0) = parse_double_attr(ctx, *inertia_el, "ixy",
                                            inertia_ctx);
    ic(0, 2) = ic(2, 0) = parse_double_attr(ctx, *inertia_el, "ixz",
                                            inertia_ctx);
    ic(1, 2) = ic(2, 1) = parse_double_attr(ctx, *inertia_el, "iyz",
                                            inertia_ctx);
    check_inertia_quality(ctx, link_name, mass, ic, inertia_el->location);

    const Pose pose = parse_origin(ctx, el->child("origin"));
    // Rotate the inertia tensor from the inertial frame into link axes.
    const Mat3 ic_link = pose.r * ic * pose.r.transposed();
    return SpatialInertia::from_mass_com_inertia(mass, pose.p, ic_link);
}

struct RawJoint
{
    std::string name;
    JointType type;
    std::string parent;
    std::string child;
    Pose origin;
    Vec3 axis = Vec3::unit_z();
};

/** DFS work item: a raw joint plus its articulated-ancestor context. */
struct Visit
{
    std::size_t joint;          ///< Raw joint leading into a link.
    std::string moving_parent;  ///< Nearest articulated ancestor ("": base).
    Pose accum;                 ///< Placement of the joint's parent frame in
                                ///< the moving parent's frame.
};

/**
 * Shared strict/report implementation.  Returns a model iff no error was
 * recorded; XML errors propagate as XmlError (the report-mode wrapper
 * converts them).
 */
std::optional<RobotModel>
parse_urdf_impl(const std::string &urdf_text, ParseContext &ctx)
{
    auto root = parse_xml(urdf_text);
    if (root->name != "robot") {
        ctx.error(ParseErrorCode::kUrdfBadRoot,
                  "root element must be <robot>, got <" + root->name + ">",
                  root->location);
        return std::nullopt; // cannot interpret anything below a non-robot
    }
    if (!root->has_attribute("name"))
        ctx.warning(ParseErrorCode::kUrdfMissingAttribute,
                    "<robot> has no name attribute; using 'robot'",
                    root->location);
    const std::string robot_name = root->attribute("name", "robot");
    warn_unhandled_children(ctx, *root, {"link", "joint"});

    std::map<std::string, SpatialInertia> link_inertia;
    for (const XmlElement *link_el : root->children_named("link")) {
        const std::string name = link_el->attribute("name");
        if (name.empty()) {
            ctx.error(ParseErrorCode::kUrdfMissingName,
                      "link without a name", link_el->location);
            continue;
        }
        if (link_inertia.count(name)) {
            ctx.error(ParseErrorCode::kUrdfDuplicateName,
                      "duplicate link '" + name + "'", link_el->location);
            continue;
        }
        warn_unhandled_children(ctx, *link_el, {"inertial"});
        link_inertia[name] =
            parse_inertial(ctx, link_el->child("inertial"), name);
    }
    if (link_inertia.empty())
        ctx.error(ParseErrorCode::kUrdfNoLinks, "robot has no links",
                  root->location);

    std::vector<RawJoint> joints;
    std::set<std::string> joint_names;
    std::map<std::string, bool> is_joint_child;
    // When a joint is dropped in report mode the kinematic graph is no
    // longer meaningful; suppress structural diagnostics to avoid cascades.
    bool joints_dropped = false;
    for (const XmlElement *joint_el : root->children_named("joint")) {
        warn_unhandled_children(ctx, *joint_el,
                                {"parent", "child", "origin", "axis",
                                 "limit", "dynamics", "calibration",
                                 "mimic", "safety_controller"});
        RawJoint j;
        j.name = joint_el->attribute("name");
        if (j.name.empty()) {
            ctx.error(ParseErrorCode::kUrdfMissingName,
                      "joint without a name", joint_el->location);
            joints_dropped = true;
            continue;
        }
        if (!joint_names.insert(j.name).second) {
            ctx.error(ParseErrorCode::kUrdfDuplicateName,
                      "duplicate joint '" + j.name + "'",
                      joint_el->location);
            joints_dropped = true;
            continue;
        }
        const std::string type_str = joint_el->attribute("type");
        try {
            j.type = spatial::joint_type_from_string(type_str);
        } catch (const std::invalid_argument &) {
            ctx.error(ParseErrorCode::kUrdfBadJointType,
                      "joint '" + j.name + "' has unsupported type '" +
                          type_str + "'",
                      joint_el->location);
            joints_dropped = true;
            continue;
        }
        const XmlElement *parent_el = joint_el->child("parent");
        const XmlElement *child_el = joint_el->child("child");
        if (!parent_el || !child_el) {
            ctx.error(ParseErrorCode::kUrdfMissingElement,
                      "joint '" + j.name +
                          "' requires <parent> and <child>",
                      joint_el->location);
            joints_dropped = true;
            continue;
        }
        j.parent = parent_el->attribute("link");
        j.child = child_el->attribute("link");
        if (!link_inertia.count(j.parent)) {
            ctx.error(ParseErrorCode::kUrdfUndefinedLink,
                      "joint '" + j.name + "' parent link '" + j.parent +
                          "' is undefined",
                      parent_el->location);
            joints_dropped = true;
            continue;
        }
        if (!link_inertia.count(j.child)) {
            ctx.error(ParseErrorCode::kUrdfUndefinedLink,
                      "joint '" + j.name + "' child link '" + j.child +
                          "' is undefined",
                      child_el->location);
            joints_dropped = true;
            continue;
        }
        j.origin = parse_origin(ctx, joint_el->child("origin"));
        if (const XmlElement *axis_el = joint_el->child("axis"))
            j.axis = parse_vec3(ctx, axis_el->attribute("xyz", "0 0 1"),
                                "joint '" + j.name + "' axis",
                                axis_el->location, Vec3::unit_z());
        if (j.type != JointType::kFixed) {
            const double axis_norm = j.axis.norm();
            if (axis_norm == 0.0)
                ctx.error(ParseErrorCode::kUrdfZeroAxis,
                          "joint '" + j.name + "' has a zero axis",
                          joint_el->location);
            else if (std::fabs(axis_norm - 1.0) > 1e-6)
                ctx.warning(ParseErrorCode::kUrdfNonUnitAxis,
                            "joint '" + j.name +
                                "' axis is not normalized (|axis| = " +
                                std::to_string(axis_norm) + ")",
                            joint_el->location);
        }
        if (is_joint_child[j.child]) {
            ctx.error(ParseErrorCode::kUrdfMultipleParents,
                      "link '" + j.child +
                          "' is the child of multiple joints",
                      joint_el->location);
            joints_dropped = true;
            continue;
        }
        is_joint_child[j.child] = true;
        joints.push_back(j);
    }

    // The root link is the one that is never a joint child.
    std::string root_link;
    if (!link_inertia.empty() && !joints_dropped) {
        std::vector<std::string> roots;
        for (const auto &[name, unused] : link_inertia) {
            (void)unused;
            if (!is_joint_child[name])
                roots.push_back(name);
        }
        if (roots.empty())
            ctx.error(ParseErrorCode::kUrdfNoRootLink,
                      "no root link (kinematic loop)", root->location);
        else if (roots.size() > 1)
            ctx.error(ParseErrorCode::kUrdfMultipleRootLinks,
                      "multiple root links: '" + roots[0] + "' and '" +
                          roots[1] + "'",
                      root->location);
        else
            root_link = roots[0];
    }
    if (ctx.failed() || root_link.empty())
        return std::nullopt; // report mode: errors recorded above

    std::map<std::string, std::vector<std::size_t>> kids;
    for (std::size_t ji = 0; ji < joints.size(); ++ji)
        kids[joints[ji].parent].push_back(ji);

    // Pass 1: fold fixed joints — merge each rigidly attached link's inertia
    // into its nearest articulated ancestor (parents are visited before
    // their fixed descendants, so merges land on final moving links).
    std::map<std::string, SpatialInertia> merged = link_inertia;
    std::vector<Visit> stack;
    auto push_children = [&](const std::string &link,
                             const std::string &moving_parent,
                             const Pose &accum) {
        auto it = kids.find(link);
        if (it == kids.end())
            return;
        for (auto ji = it->second.rbegin(); ji != it->second.rend(); ++ji)
            stack.push_back({*ji, moving_parent, accum});
    };

    push_children(root_link, "", Pose{});
    std::size_t visited = 0;
    while (!stack.empty()) {
        const Visit v = stack.back();
        stack.pop_back();
        ++visited;
        const RawJoint &j = joints[v.joint];
        const Pose placement = v.accum.compose(j.origin);
        if (j.type == JointType::kFixed) {
            if (!v.moving_parent.empty()) {
                merged[v.moving_parent] =
                    merged[v.moving_parent] +
                    merged[j.child].expressed_in_parent(
                        placement.to_transform());
            }
            // Ground-mounted fixed structure contributes no dynamics.
            push_children(j.child, v.moving_parent, placement);
        } else {
            push_children(j.child, j.child, Pose{});
        }
    }
    if (visited != joints.size()) {
        ctx.error(ParseErrorCode::kUrdfNotATree,
                  "kinematic graph is not a tree rooted at '" + root_link +
                      "'",
                  root->location);
        return std::nullopt;
    }

    // Pass 2: emit articulated links with their merged inertias.  The
    // builder re-validates the tree; anything it rejects that slipped past
    // the checks above surfaces as a typed graph error, never as a leaked
    // std::invalid_argument.
    try {
        RobotModelBuilder builder(robot_name);
        push_children(root_link, "", Pose{});
        while (!stack.empty()) {
            const Visit v = stack.back();
            stack.pop_back();
            const RawJoint &j = joints[v.joint];
            const Pose placement = v.accum.compose(j.origin);
            if (j.type == JointType::kFixed) {
                push_children(j.child, v.moving_parent, placement);
            } else {
                builder.add_link(j.child, v.moving_parent,
                                 JointModel(j.type, j.axis),
                                 placement.to_transform(), merged[j.child]);
                push_children(j.child, j.child, Pose{});
            }
        }
        return builder.finalize();
    } catch (const UrdfError &) {
        throw; // already typed (strict mode)
    } catch (const std::exception &e) {
        ctx.error(ParseErrorCode::kUrdfGraphError,
                  std::string("invalid kinematic structure: ") + e.what(),
                  root->location);
        return std::nullopt;
    }
}

/** Reads a whole file; returns false with @p err set on failure. */
bool
read_file(const std::string &path, std::string *out, std::string *err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        *err = "cannot open URDF file: " + path;
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    if (in.bad()) {
        *err = "cannot read URDF file: " + path;
        return false;
    }
    *out = ss.str();
    return true;
}

} // namespace

RobotModel
parse_urdf(const std::string &urdf_text)
{
    ParseContext ctx; // strict: first error throws
    auto model = parse_urdf_impl(urdf_text, ctx);
    // Strict mode either threw or produced a model.
    return std::move(*model);
}

RobotModel
parse_urdf_file(const std::string &path)
{
    std::string text, err;
    if (!read_file(path, &text, &err))
        throw UrdfError(ParseErrorCode::kIoError, err, SourceLocation{});
    return parse_urdf(text);
}

UrdfParseResult
parse_urdf_checked(const std::string &urdf_text)
{
    UrdfParseResult result;
    ParseContext ctx;
    ctx.report = &result.report;
    ctx.source = &urdf_text;
    try {
        result.model = parse_urdf_impl(urdf_text, ctx);
    } catch (const XmlError &e) {
        result.report.add_error(e.code(), e.what(), e.location(),
                                e.snippet());
    } catch (const UrdfError &e) {
        // Defensive: report mode records instead of throwing, but any
        // stray typed error still lands in the report.
        result.report.add_error(e.code(), e.what(), e.location());
    }
    if (!result.report.ok())
        result.model.reset();
    return result;
}

UrdfParseResult
parse_urdf_file_checked(const std::string &path)
{
    std::string text, err;
    if (!read_file(path, &text, &err)) {
        UrdfParseResult result;
        result.report.add_error(ParseErrorCode::kIoError, err);
        return result;
    }
    return parse_urdf_checked(text);
}

} // namespace topology
} // namespace roboshape
