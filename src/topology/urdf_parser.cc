/**
 * @file
 * Implementation of the URDF parser.
 */

#include "topology/urdf_parser.h"

#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "topology/xml.h"

namespace roboshape {
namespace topology {

namespace {

using spatial::JointModel;
using spatial::JointType;
using spatial::Mat3;
using spatial::SpatialInertia;
using spatial::SpatialTransform;
using spatial::Vec3;

Vec3
parse_vec3(const std::string &s, const char *what)
{
    std::istringstream is(s);
    Vec3 v;
    if (!(is >> v.x >> v.y >> v.z))
        throw UrdfError(std::string("malformed 3-vector in ") + what + ": '" +
                        s + "'");
    double extra;
    if (is >> extra)
        throw UrdfError(std::string("too many components in ") + what +
                        ": '" + s + "'");
    return v;
}

/** Vector-rotation matrix for URDF fixed-axis roll-pitch-yaw. */
Mat3
rotation_from_rpy(const Vec3 &rpy)
{
    const Mat3 rx =
        Mat3::coordinate_rotation(Vec3::unit_x(), rpy.x).transposed();
    const Mat3 ry =
        Mat3::coordinate_rotation(Vec3::unit_y(), rpy.y).transposed();
    const Mat3 rz =
        Mat3::coordinate_rotation(Vec3::unit_z(), rpy.z).transposed();
    return rz * ry * rx;
}

/** URDF <origin>: placement of a child frame within a parent frame. */
struct Pose
{
    Mat3 r = Mat3::identity(); ///< Rotates child coordinates into parent.
    Vec3 p;                    ///< Child origin in parent coordinates.

    /** Featherstone motion transform parent -> child. */
    SpatialTransform
    to_transform() const
    {
        return SpatialTransform(r.transposed(), p);
    }

    /** this: A<-B placement; inner: B<-C placement; result: A<-C. */
    Pose
    compose(const Pose &inner) const
    {
        return {r * inner.r, p + r * inner.p};
    }
};

Pose
parse_origin(const XmlElement *el)
{
    Pose pose;
    if (!el)
        return pose;
    if (el->has_attribute("xyz"))
        pose.p = parse_vec3(el->attribute("xyz"), "origin xyz");
    if (el->has_attribute("rpy"))
        pose.r = rotation_from_rpy(
            parse_vec3(el->attribute("rpy"), "origin rpy"));
    return pose;
}

SpatialInertia
parse_inertial(const XmlElement *el, const std::string &link_name)
{
    if (!el)
        return SpatialInertia(); // massless link
    const XmlElement *mass_el = el->child("mass");
    const XmlElement *inertia_el = el->child("inertia");
    if (!mass_el || !inertia_el)
        throw UrdfError("link '" + link_name +
                        "' inertial requires <mass> and <inertia>");
    const double mass = std::stod(mass_el->attribute("value", "0"));
    if (mass < 0.0)
        throw UrdfError("link '" + link_name + "' has negative mass");

    Mat3 ic;
    ic(0, 0) = std::stod(inertia_el->attribute("ixx", "0"));
    ic(1, 1) = std::stod(inertia_el->attribute("iyy", "0"));
    ic(2, 2) = std::stod(inertia_el->attribute("izz", "0"));
    ic(0, 1) = ic(1, 0) = std::stod(inertia_el->attribute("ixy", "0"));
    ic(0, 2) = ic(2, 0) = std::stod(inertia_el->attribute("ixz", "0"));
    ic(1, 2) = ic(2, 1) = std::stod(inertia_el->attribute("iyz", "0"));

    const Pose pose = parse_origin(el->child("origin"));
    // Rotate the inertia tensor from the inertial frame into link axes.
    const Mat3 ic_link = pose.r * ic * pose.r.transposed();
    return SpatialInertia::from_mass_com_inertia(mass, pose.p, ic_link);
}

struct RawJoint
{
    std::string name;
    JointType type;
    std::string parent;
    std::string child;
    Pose origin;
    Vec3 axis = Vec3::unit_z();
};

/** DFS work item: a raw joint plus its articulated-ancestor context. */
struct Visit
{
    std::size_t joint;          ///< Raw joint leading into a link.
    std::string moving_parent;  ///< Nearest articulated ancestor ("": base).
    Pose accum;                 ///< Placement of the joint's parent frame in
                                ///< the moving parent's frame.
};

} // namespace

RobotModel
parse_urdf(const std::string &urdf_text)
{
    auto root = parse_xml(urdf_text);
    if (root->name != "robot")
        throw UrdfError("root element must be <robot>, got <" + root->name +
                        ">");
    const std::string robot_name = root->attribute("name", "robot");

    std::map<std::string, SpatialInertia> link_inertia;
    for (const XmlElement *link_el : root->children_named("link")) {
        const std::string name = link_el->attribute("name");
        if (name.empty())
            throw UrdfError("link without a name");
        if (link_inertia.count(name))
            throw UrdfError("duplicate link '" + name + "'");
        link_inertia[name] = parse_inertial(link_el->child("inertial"), name);
    }
    if (link_inertia.empty())
        throw UrdfError("robot has no links");

    std::vector<RawJoint> joints;
    std::map<std::string, bool> is_joint_child;
    for (const XmlElement *joint_el : root->children_named("joint")) {
        RawJoint j;
        j.name = joint_el->attribute("name");
        j.type = spatial::joint_type_from_string(joint_el->attribute("type"));
        const XmlElement *parent_el = joint_el->child("parent");
        const XmlElement *child_el = joint_el->child("child");
        if (!parent_el || !child_el)
            throw UrdfError("joint '" + j.name +
                            "' requires <parent> and <child>");
        j.parent = parent_el->attribute("link");
        j.child = child_el->attribute("link");
        if (!link_inertia.count(j.parent))
            throw UrdfError("joint '" + j.name + "' parent link '" +
                            j.parent + "' is undefined");
        if (!link_inertia.count(j.child))
            throw UrdfError("joint '" + j.name + "' child link '" + j.child +
                            "' is undefined");
        j.origin = parse_origin(joint_el->child("origin"));
        if (const XmlElement *axis_el = joint_el->child("axis"))
            j.axis = parse_vec3(axis_el->attribute("xyz", "0 0 1"),
                                "joint axis");
        if (j.type != JointType::kFixed && j.axis.norm() == 0.0)
            throw UrdfError("joint '" + j.name + "' has a zero axis");
        if (is_joint_child[j.child])
            throw UrdfError("link '" + j.child +
                            "' is the child of multiple joints");
        is_joint_child[j.child] = true;
        joints.push_back(j);
    }

    // The root link is the one that is never a joint child.
    std::string root_link;
    for (const auto &[name, unused] : link_inertia) {
        (void)unused;
        if (!is_joint_child[name]) {
            if (!root_link.empty())
                throw UrdfError("multiple root links: '" + root_link +
                                "' and '" + name + "'");
            root_link = name;
        }
    }
    if (root_link.empty())
        throw UrdfError("no root link (kinematic loop)");

    std::map<std::string, std::vector<std::size_t>> kids;
    for (std::size_t ji = 0; ji < joints.size(); ++ji)
        kids[joints[ji].parent].push_back(ji);

    // Pass 1: fold fixed joints — merge each rigidly attached link's inertia
    // into its nearest articulated ancestor (parents are visited before
    // their fixed descendants, so merges land on final moving links).
    std::map<std::string, SpatialInertia> merged = link_inertia;
    std::vector<Visit> stack;
    auto push_children = [&](const std::string &link,
                             const std::string &moving_parent,
                             const Pose &accum) {
        auto it = kids.find(link);
        if (it == kids.end())
            return;
        for (auto ji = it->second.rbegin(); ji != it->second.rend(); ++ji)
            stack.push_back({*ji, moving_parent, accum});
    };

    push_children(root_link, "", Pose{});
    std::size_t visited = 0;
    while (!stack.empty()) {
        const Visit v = stack.back();
        stack.pop_back();
        ++visited;
        const RawJoint &j = joints[v.joint];
        const Pose placement = v.accum.compose(j.origin);
        if (j.type == JointType::kFixed) {
            if (!v.moving_parent.empty()) {
                merged[v.moving_parent] =
                    merged[v.moving_parent] +
                    merged[j.child].expressed_in_parent(
                        placement.to_transform());
            }
            // Ground-mounted fixed structure contributes no dynamics.
            push_children(j.child, v.moving_parent, placement);
        } else {
            push_children(j.child, j.child, Pose{});
        }
    }
    if (visited != joints.size())
        throw UrdfError("kinematic graph is not a tree rooted at '" +
                        root_link + "'");

    // Pass 2: emit articulated links with their merged inertias.
    RobotModelBuilder builder(robot_name);
    push_children(root_link, "", Pose{});
    while (!stack.empty()) {
        const Visit v = stack.back();
        stack.pop_back();
        const RawJoint &j = joints[v.joint];
        const Pose placement = v.accum.compose(j.origin);
        if (j.type == JointType::kFixed) {
            push_children(j.child, v.moving_parent, placement);
        } else {
            builder.add_link(j.child, v.moving_parent,
                             JointModel(j.type, j.axis),
                             placement.to_transform(), merged[j.child]);
            push_children(j.child, j.child, Pose{});
        }
    }
    return builder.finalize();
}

RobotModel
parse_urdf_file(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open URDF file: " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return parse_urdf(ss.str());
}

} // namespace topology
} // namespace roboshape
