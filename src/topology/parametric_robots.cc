/**
 * @file
 * Implementation of parametric robot generators.
 */

#include "topology/parametric_robots.h"

#include <cassert>
#include <cmath>
#include <string>
#include <vector>

namespace roboshape {
namespace topology {

namespace {

using spatial::JointModel;
using spatial::JointType;
using spatial::Mat3;
using spatial::SpatialInertia;
using spatial::SpatialTransform;
using spatial::Vec3;

/** Rod segment with axis alternating by depth for nondegenerate dynamics. */
void
add_segment(RobotModelBuilder &builder, const std::string &name,
            const std::string &parent, std::size_t depth, double length,
            double mass, const Vec3 &offset)
{
    const Vec3 axis = (depth % 2 == 0) ? Vec3::unit_z() : Vec3::unit_y();
    Mat3 ic;
    const double r = length * 0.2 + 1e-3;
    ic(0, 0) = ic(1, 1) = mass * (3 * r * r + length * length) / 12.0;
    ic(2, 2) = mass * r * r / 2.0;
    builder.add_link(name, parent, JointModel(JointType::kRevolute, axis),
                     SpatialTransform::translation(offset),
                     SpatialInertia::from_mass_com_inertia(
                         mass, {0.0, 0.0, length * 0.5}, ic));
}

void
add_chain(RobotModelBuilder &builder, const std::string &prefix,
          const std::string &attach_to, const Vec3 &first_offset,
          std::size_t links, double total_length, double total_mass)
{
    assert(links > 0);
    const double seg_len = total_length / static_cast<double>(links);
    const double seg_mass = total_mass / static_cast<double>(links);
    std::string parent = attach_to;
    for (std::size_t i = 0; i < links; ++i) {
        const std::string name = prefix + "_" + std::to_string(i + 1);
        const Vec3 offset =
            i == 0 ? first_offset : Vec3{0.0, 0.0, seg_len};
        add_segment(builder, name, parent, i, seg_len, seg_mass, offset);
        parent = name;
    }
}

} // namespace

RobotModel
make_serial_chain(std::size_t links, const std::string &name)
{
    RobotModelBuilder builder(name + std::to_string(links));
    add_chain(builder, "seg", "", {0.0, 0.0, 0.1}, links, 1.5, 12.0);
    return builder.finalize();
}

RobotModel
make_star(std::size_t limbs, std::size_t links_per_limb,
          const std::string &name)
{
    assert(limbs > 0);
    RobotModelBuilder builder(name + std::to_string(limbs) + "x" +
                              std::to_string(links_per_limb));
    for (std::size_t l = 0; l < limbs; ++l) {
        const double angle =
            2.0 * 3.14159265358979 * static_cast<double>(l) /
            static_cast<double>(limbs);
        const Vec3 hip{0.3 * std::cos(angle), 0.3 * std::sin(angle), 0.0};
        add_chain(builder, "limb" + std::to_string(l + 1), "", hip,
                  links_per_limb, 0.8, 6.0);
    }
    return builder.finalize();
}

RobotModel
make_branching_tree(std::size_t depth, std::size_t branching,
                    const std::string &name)
{
    assert(depth > 0 && branching > 0);
    RobotModelBuilder builder(name + std::to_string(depth) + "b" +
                              std::to_string(branching));
    // Breadth-first construction; names encode the path for uniqueness.
    struct Node
    {
        std::string name;
        std::size_t depth;
    };
    std::vector<Node> frontier{{"", 0}};
    int counter = 0;
    while (!frontier.empty()) {
        std::vector<Node> next;
        for (const Node &node : frontier) {
            if (node.depth == depth)
                continue;
            for (std::size_t b = 0; b < branching; ++b) {
                // Built via append rather than "n" + to_string(...):
                // GCC 12's -Wrestrict false-positives on operator+(const
                // char*, string&&) inlined here (GCC PR105651).
                std::string child = "n";
                child += std::to_string(++counter);
                const double spread =
                    0.05 * (static_cast<double>(b) -
                            static_cast<double>(branching - 1) / 2.0);
                add_segment(builder, child, node.name, node.depth, 0.2,
                            0.5, {spread, 0.0, node.name.empty() ? 0.1
                                                                 : 0.2});
                next.push_back({child, node.depth + 1});
            }
        }
        frontier = std::move(next);
    }
    return builder.finalize();
}

RobotModel
make_gantry(std::size_t wrist_links, const std::string &name)
{
    RobotModelBuilder builder(name + std::to_string(3 + wrist_links));
    const Vec3 axes[3] = {Vec3::unit_x(), Vec3::unit_y(), Vec3::unit_z()};
    const char *rail_names[3] = {"rail_x", "rail_y", "rail_z"};
    std::string parent;
    for (int r = 0; r < 3; ++r) {
        Mat3 ic;
        ic(0, 0) = ic(1, 1) = ic(2, 2) = 0.2;
        builder.add_link(rail_names[r], parent,
                         JointModel(JointType::kPrismatic, axes[r]),
                         SpatialTransform::translation(
                             {0.0, 0.0, r == 0 ? 0.5 : 0.0}),
                         SpatialInertia::from_mass_com_inertia(
                             8.0 - 2.0 * r, {0.0, 0.0, 0.05}, ic));
        parent = rail_names[r];
    }
    add_chain(builder, "wrist", parent, {0.0, 0.0, 0.1}, wrist_links, 0.4,
              2.0);
    return builder.finalize();
}

} // namespace topology
} // namespace roboshape
