/**
 * @file
 * Kinematic tree model of a rigid-body robot.
 *
 * A robot is a tree of rigid links connected by single-degree-of-freedom
 * joints (paper Sec. 2, Fig. 4a).  Links are stored in depth-first preorder
 * so every subtree occupies a contiguous index range — the property that
 * makes the limb-induced mass-matrix sparsity block-contiguous (paper
 * Sec. 3.2) and keeps schedules easy to read.
 *
 * The base (the URDF root link) is treated as a fixed ground body and is not
 * counted among the N moving links, matching the paper's link counts
 * (iiwa 7, HyQ 12, Baxter 15).
 */

#ifndef ROBOSHAPE_TOPOLOGY_ROBOT_MODEL_H
#define ROBOSHAPE_TOPOLOGY_ROBOT_MODEL_H

#include <string>
#include <vector>

#include "spatial/joint.h"
#include "spatial/spatial_inertia.h"
#include "spatial/spatial_transform.h"

namespace roboshape {
namespace topology {

/** Index of a link's parent when the parent is the fixed base. */
inline constexpr int kBaseParent = -1;

/** One moving link and the joint that connects it to its parent. */
struct Link
{
    std::string name;
    int parent = kBaseParent;       ///< Parent link index or kBaseParent.
    spatial::JointModel joint;      ///< Joint connecting parent -> this link.
    /** Fixed transform from the parent link frame to this joint's frame. */
    spatial::SpatialTransform x_tree;
    /** Rigid-body inertia expressed in this link's frame. */
    spatial::SpatialInertia inertia;
};

/**
 * Immutable kinematic tree, built through RobotModelBuilder.
 */
class RobotModel
{
  public:
    /** Robot display name. */
    const std::string &name() const { return name_; }

    /** Number of moving links, N. */
    std::size_t num_links() const { return links_.size(); }

    const Link &link(std::size_t i) const { return links_[i]; }

    /** Parent index of link @p i (kBaseParent for root children). */
    int parent(std::size_t i) const { return links_[i].parent; }

    /** Children of link @p i, in index order. */
    const std::vector<int> &children(std::size_t i) const
    {
        return children_[i];
    }

    /** Children of the fixed base (the robot's independent limbs' roots). */
    const std::vector<int> &base_children() const { return base_children_; }

    /** Link index by name; -1 when absent. */
    int find_link(const std::string &name) const;

  private:
    friend class RobotModelBuilder;

    std::string name_;
    std::vector<Link> links_;
    std::vector<std::vector<int>> children_;
    std::vector<int> base_children_;
};

/**
 * Builder that accepts links in any tree order and canonicalizes to
 * depth-first preorder on finalize().
 */
class RobotModelBuilder
{
  public:
    explicit RobotModelBuilder(std::string robot_name);

    /**
     * Adds a link attached to @p parent_name (empty string = fixed base).
     * @return builder for chaining.
     * @throws std::invalid_argument on duplicate names or unknown parents
     *         (unknown parents are checked at finalize, so declaration order
     *         is free).
     */
    RobotModelBuilder &add_link(const std::string &name,
                                const std::string &parent_name,
                                const spatial::JointModel &joint,
                                const spatial::SpatialTransform &x_tree,
                                const spatial::SpatialInertia &inertia);

    /**
     * Validates the tree (single connected tree rooted at the base, no
     * cycles, no fixed joints on moving links) and produces the model with
     * links renumbered in depth-first preorder.
     */
    RobotModel finalize() const;

  private:
    struct PendingLink
    {
        std::string name;
        std::string parent_name;
        spatial::JointModel joint;
        spatial::SpatialTransform x_tree;
        spatial::SpatialInertia inertia;
    };

    std::string name_;
    std::vector<PendingLink> pending_;
};

} // namespace topology
} // namespace roboshape

#endif // ROBOSHAPE_TOPOLOGY_ROBOT_MODEL_H
