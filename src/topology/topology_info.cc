/**
 * @file
 * Implementation of topology queries and Table 3 metrics.
 */

#include "topology/topology_info.h"

#include <algorithm>
#include <cmath>

namespace roboshape {
namespace topology {

TopologyInfo::TopologyInfo(const RobotModel &model) : model_(&model)
{
    const std::size_t n = model.num_links();
    depth_.resize(n);
    subtree_size_.assign(n, 1);

    // Depths: parents precede children in preorder.
    for (std::size_t i = 0; i < n; ++i) {
        const int p = model.parent(i);
        depth_[i] = p == kBaseParent ? 1 : depth_[p] + 1;
    }

    // Subtree sizes: accumulate bottom-up (children have larger indices).
    for (std::size_t ii = n; ii-- > 0;) {
        const int p = model.parent(ii);
        if (p != kBaseParent)
            subtree_size_[p] += subtree_size_[ii];
    }

    for (std::size_t i = 0; i < n; ++i) {
        if (model.children(i).empty())
            leaves_.push_back(i);
        if (model.children(i).size() > 1)
            branch_links_.push_back(i);
    }

    for (int root : model.base_children()) {
        const std::size_t b = static_cast<std::size_t>(root);
        limb_spans_.emplace_back(b, b + subtree_size_[b]);
    }
}

bool
TopologyInfo::is_leaf(std::size_t i) const
{
    return model_->children(i).empty();
}

bool
TopologyInfo::is_ancestor_or_self(std::size_t a, std::size_t b) const
{
    // In preorder, a's subtree is the contiguous range starting at a.
    return b >= a && b < a + subtree_size_[a];
}

std::vector<std::size_t>
TopologyInfo::root_path(std::size_t i) const
{
    std::vector<std::size_t> path;
    int cur = static_cast<int>(i);
    while (cur != kBaseParent) {
        path.push_back(static_cast<std::size_t>(cur));
        cur = model_->parent(cur);
    }
    std::reverse(path.begin(), path.end());
    return path;
}

std::vector<std::vector<bool>>
TopologyInfo::mass_matrix_mask() const
{
    const std::size_t n = num_links();
    std::vector<std::vector<bool>> mask(n, std::vector<bool>(n, false));
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            mask[i][j] = is_ancestor_or_self(i, j) ||
                         is_ancestor_or_self(j, i);
    return mask;
}

double
TopologyInfo::mass_matrix_sparsity() const
{
    const auto mask = mass_matrix_mask();
    const std::size_t n = num_links();
    if (n == 0)
        return 0.0;
    std::size_t zeros = 0;
    for (const auto &row : mask)
        for (bool nz : row)
            zeros += nz ? 0 : 1;
    return static_cast<double>(zeros) / static_cast<double>(n * n);
}

TopologyMetrics
TopologyInfo::metrics() const
{
    TopologyMetrics m;
    m.total_links = num_links();
    if (leaves_.empty())
        return m;

    double sum = 0.0;
    for (std::size_t leaf : leaves_) {
        m.max_leaf_depth = std::max(m.max_leaf_depth, depth_[leaf]);
        sum += static_cast<double>(depth_[leaf]);
    }
    m.avg_leaf_depth = sum / static_cast<double>(leaves_.size());

    for (std::size_t i = 0; i < num_links(); ++i)
        m.max_descendants = std::max(m.max_descendants, subtree_size_[i]);

    double var = 0.0;
    for (std::size_t leaf : leaves_) {
        const double d = static_cast<double>(depth_[leaf]) - m.avg_leaf_depth;
        var += d * d;
    }
    m.leaf_depth_stdev =
        std::sqrt(var / static_cast<double>(leaves_.size()));
    return m;
}

} // namespace topology
} // namespace roboshape
