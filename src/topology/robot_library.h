/**
 * @file
 * Bundled models of the paper's six evaluation robots (Fig. 11).
 *
 * Each robot is defined once as a parametric spec and can be realized either
 * as a RobotModel directly or as URDF text (exercising the parser path that
 * real deployments use).  Topologies exactly match the paper's Table 3
 * reconstruction; masses, lengths, and inertias are plausible placeholders —
 * they feed the verified numerical dataflow but do not affect schedules,
 * cycle counts, or resource numbers (see DESIGN.md, substitutions).
 */

#ifndef ROBOSHAPE_TOPOLOGY_ROBOT_LIBRARY_H
#define ROBOSHAPE_TOPOLOGY_ROBOT_LIBRARY_H

#include <string>
#include <vector>

#include "topology/robot_model.h"

namespace roboshape {
namespace topology {

/**
 * The six robots evaluated in the paper (Fig. 11 / Table 3), plus the
 * extended fleet from the paper's deployment-diversity figure (Fig. 1:
 * e.g. Bittle [42], Pepper [40], humanoids [46, 50]).
 */
enum class RobotId
{
    kIiwa,        ///< KUKA LBR iiwa manipulator: 7-link serial chain.
    kHyq,         ///< IIT HyQ quadruped: 4 independent 3-link legs.
    kBaxter,      ///< Baxter torso: 1-link head + two 7-link arms.
    kJaco2,       ///< Kinova Jaco, 2 fingers: 6-link arm + 2x3-link fingers.
    kJaco3,       ///< Kinova Jaco, 3 fingers: 6-link arm + 3x3-link fingers.
    kHyqWithArm,  ///< HyQ quadruped carrying a 7-link arm (19 links).
    kBittle,      ///< Petoi Bittle palm-size quadruped: 4 x 2-link legs.
    kPepper,      ///< Pepper-like social humanoid torso: 2-link head +
                  ///< two 5-link arms + 3-link hip column (15 links).
    kHumanoid,    ///< Full humanoid: two 6-link legs, two 7-link arms,
                  ///< 1-link head (27 links).
};

/** The six robots of the paper's Table 3, in column order. */
const std::vector<RobotId> &all_robots();

/** The extended fleet (Fig. 1 diversity): Bittle, Pepper, humanoid. */
const std::vector<RobotId> &extended_robots();

/** Robot display name ("iiwa", "HyQ", ...). */
const char *robot_name(RobotId id);

/** The three robots with shipped FPGA designs (Table 2 / Fig. 9). */
const std::vector<RobotId> &shipped_robots();

/** Builds the kinematic tree programmatically. */
RobotModel build_robot(RobotId id);

/** Emits the robot as URDF text (round-trips through parse_urdf). */
std::string robot_urdf(RobotId id);

/** One named URDF document, e.g. a fuzz/validation seed. */
struct NamedUrdf
{
    std::string name;
    std::string text;
};

/**
 * Name + URDF text for every bundled robot (the paper's six plus the
 * extended fleet).  These are the well-formed seeds the fault-injection
 * harness mutates; each must parse cleanly in both strict and report mode.
 */
std::vector<NamedUrdf> all_robot_urdfs();

/**
 * Writes `<name>.urdf` for every bundled robot into @p directory.
 * @return the file paths written.
 */
std::vector<std::string> write_urdf_files(const std::string &directory);

} // namespace topology
} // namespace roboshape

#endif // ROBOSHAPE_TOPOLOGY_ROBOT_LIBRARY_H
