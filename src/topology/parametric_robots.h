/**
 * @file
 * Parametric robot generators.
 *
 * The paper's Sec. 3.3 points at robots with 100s-1000s of links —
 * hyper-redundant manipulators, continuum robots, and rigid-body
 * approximations of soft robots [19, 47] — as the scaling frontier for
 * topology-based accelerators.  These generators produce such topologies
 * on demand for scaling studies and property tests:
 *
 *  - serial chains of arbitrary depth (continuum/snake approximations);
 *  - multi-limb stars (walker-like breadth);
 *  - regular branching trees (tentacle bundles, the worst case for
 *    branch checkpoint storage).
 */

#ifndef ROBOSHAPE_TOPOLOGY_PARAMETRIC_ROBOTS_H
#define ROBOSHAPE_TOPOLOGY_PARAMETRIC_ROBOTS_H

#include <cstddef>

#include "topology/robot_model.h"

namespace roboshape {
namespace topology {

/**
 * Serial chain of @p links revolute segments (a rigid-body discretization
 * of a continuum arm).  Segment length and mass shrink with the segment
 * count so total reach and mass stay roughly constant.
 */
RobotModel make_serial_chain(std::size_t links,
                             const std::string &name = "chain");

/**
 * Star robot: @p limbs independent chains of @p links_per_limb segments
 * hanging off the base (an idealized multi-legged walker).
 */
RobotModel make_star(std::size_t limbs, std::size_t links_per_limb,
                     const std::string &name = "star");

/**
 * Regular branching tree: every link at depth < @p depth has
 * @p branching children.  Link count is (b^depth - 1) / (b - 1) for
 * b > 1.  Dense in branch points — the stress case for checkpoint
 * registers (paper Fig. 8e).
 */
RobotModel make_branching_tree(std::size_t depth, std::size_t branching,
                               const std::string &name = "tree");

/**
 * Cartesian gantry with a wrist: three prismatic axes (x, y, z) carrying
 * a chain of @p wrist_links revolute joints — exercises the prismatic
 * joint model through every kernel.
 */
RobotModel make_gantry(std::size_t wrist_links = 3,
                       const std::string &name = "gantry");

} // namespace topology
} // namespace roboshape

#endif // ROBOSHAPE_TOPOLOGY_PARAMETRIC_ROBOTS_H
