/**
 * @file
 * Implementation of the minimal XML parser.
 */

#include "topology/xml.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace roboshape {
namespace topology {

XmlError::XmlError(ParseErrorCode code, const std::string &msg,
                   SourceLocation location, std::string snippet)
    : std::runtime_error(msg + " (" + location.to_string() + ")"),
      code_(code),
      location_(location),
      snippet_(std::move(snippet))
{
}

bool
XmlElement::has_attribute(const std::string &key) const
{
    return attributes.count(key) > 0;
}

std::string
XmlElement::attribute(const std::string &key, const std::string &fallback)
    const
{
    auto it = attributes.find(key);
    return it == attributes.end() ? fallback : it->second;
}

const XmlElement *
XmlElement::child(const std::string &tag) const
{
    for (const auto &c : children)
        if (c->name == tag)
            return c.get();
    return nullptr;
}

std::vector<const XmlElement *>
XmlElement::children_named(const std::string &tag) const
{
    std::vector<const XmlElement *> out;
    for (const auto &c : children)
        if (c->name == tag)
            out.push_back(c.get());
    return out;
}

namespace {

/**
 * Streaming cursor over the raw document text.  Tracks the 1-based
 * line/column of the current position incrementally so every error can be
 * reported as line:col without rescanning the input.
 */
class Cursor
{
  public:
    explicit Cursor(const std::string &s) : s_(s) {}

    bool eof() const { return pos_ >= s_.size(); }
    char peek() const { return eof() ? '\0' : s_[pos_]; }

    char
    get()
    {
        if (eof())
            return '\0';
        const char c = s_[pos_++];
        if (c == '\n') {
            ++line_;
            col_ = 1;
        } else {
            ++col_;
        }
        return c;
    }

    std::size_t pos() const { return pos_; }

    SourceLocation loc() const { return {pos_, line_, col_}; }

    bool
    starts_with(const std::string &prefix) const
    {
        return s_.compare(pos_, prefix.size(), prefix) == 0;
    }

    void
    advance(std::size_t n)
    {
        while (n-- > 0 && !eof())
            get();
    }

    /** Advances to byte @p target (>= pos), maintaining line/col. */
    void
    advance_to(std::size_t target)
    {
        while (pos_ < target && !eof())
            get();
    }

    void
    skip_whitespace()
    {
        while (!eof() && std::isspace(static_cast<unsigned char>(peek())))
            get();
    }

    /** Skips to just past the next occurrence of @p needle. */
    void
    skip_past(const std::string &needle, const char *what)
    {
        const std::size_t found = s_.find(needle, pos_);
        if (found == std::string::npos)
            throw fail(ParseErrorCode::kXmlUnterminated,
                       std::string("unterminated ") + what);
        advance_to(found + needle.size());
    }

    /** Builds a typed error at the current position with a snippet. */
    XmlError
    fail(ParseErrorCode code, const std::string &msg) const
    {
        return fail_at(code, msg, loc());
    }

    XmlError
    fail_at(ParseErrorCode code, const std::string &msg,
            const SourceLocation &at) const
    {
        return XmlError(code, msg, at, source_snippet(s_, at));
    }

  private:
    const std::string &s_;
    std::size_t pos_ = 0;
    std::size_t line_ = 1;
    std::size_t col_ = 1;
};

bool
is_name_char(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':';
}

/** Appends @p cp to @p out as UTF-8 (cp is a validated Unicode scalar). */
void
append_utf8(std::string &out, unsigned long cp)
{
    if (cp < 0x80) {
        out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
        out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
        out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
        out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
        out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
        out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
        out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
}

/**
 * Consumes one entity ("&...;") from the cursor (positioned on '&') and
 * appends its expansion to @p out.  Supports the five predefined entities
 * and decimal/hex character references.
 */
void
parse_entity(Cursor &c, std::string &out)
{
    const SourceLocation start = c.loc();
    c.get(); // '&'
    std::string ent;
    constexpr std::size_t kMaxEntityLen = 16;
    for (;;) {
        if (c.eof())
            throw c.fail_at(ParseErrorCode::kXmlBadEntity,
                            "unterminated entity", start);
        const char ch = c.get();
        if (ch == ';')
            break;
        ent.push_back(ch);
        if (ent.size() > kMaxEntityLen)
            throw c.fail_at(ParseErrorCode::kXmlBadEntity,
                            "entity name too long", start);
    }
    if (ent == "lt") {
        out.push_back('<');
    } else if (ent == "gt") {
        out.push_back('>');
    } else if (ent == "amp") {
        out.push_back('&');
    } else if (ent == "quot") {
        out.push_back('"');
    } else if (ent == "apos") {
        out.push_back('\'');
    } else if (!ent.empty() && ent[0] == '#') {
        std::size_t i = 1;
        int base = 10;
        if (i < ent.size() && (ent[i] == 'x' || ent[i] == 'X')) {
            base = 16;
            ++i;
        }
        if (i >= ent.size())
            throw c.fail_at(ParseErrorCode::kXmlBadEntity,
                            "empty character reference &" + ent + ";",
                            start);
        unsigned long cp = 0;
        for (; i < ent.size(); ++i) {
            const char d = ent[i];
            int digit;
            if (d >= '0' && d <= '9')
                digit = d - '0';
            else if (base == 16 && d >= 'a' && d <= 'f')
                digit = d - 'a' + 10;
            else if (base == 16 && d >= 'A' && d <= 'F')
                digit = d - 'A' + 10;
            else
                throw c.fail_at(ParseErrorCode::kXmlBadEntity,
                                "malformed character reference &" + ent +
                                    ";",
                                start);
            cp = cp * static_cast<unsigned long>(base) +
                 static_cast<unsigned long>(digit);
            if (cp > 0x10FFFF)
                throw c.fail_at(ParseErrorCode::kXmlBadEntity,
                                "character reference out of range &" + ent +
                                    ";",
                                start);
        }
        if (cp == 0 || (cp >= 0xD800 && cp <= 0xDFFF))
            throw c.fail_at(ParseErrorCode::kXmlBadEntity,
                            "invalid character reference &" + ent + ";",
                            start);
        append_utf8(out, cp);
    } else {
        throw c.fail_at(ParseErrorCode::kXmlBadEntity,
                        "unknown entity &" + ent + ";", start);
    }
}

std::string
parse_name(Cursor &c)
{
    const SourceLocation start = c.loc();
    std::string name;
    while (!c.eof() && is_name_char(c.peek()))
        name.push_back(c.get());
    if (name.empty())
        throw c.fail_at(ParseErrorCode::kXmlExpectedName, "expected name",
                        start);
    return name;
}

void
parse_attributes(Cursor &c, XmlElement &el)
{
    for (;;) {
        c.skip_whitespace();
        const char p = c.peek();
        if (p == '>' || p == '/' || p == '?' || c.eof())
            return;
        const SourceLocation key_loc = c.loc();
        const std::string key = parse_name(c);
        c.skip_whitespace();
        if (c.get() != '=')
            throw c.fail(ParseErrorCode::kXmlBadAttributeSyntax,
                         "expected '=' after attribute name '" + key + "'");
        c.skip_whitespace();
        const char quote = c.get();
        if (quote != '"' && quote != '\'')
            throw c.fail(ParseErrorCode::kXmlBadAttributeSyntax,
                         "expected quoted value for attribute '" + key +
                             "'");
        std::string value;
        const SourceLocation vstart = c.loc();
        while (!c.eof() && c.peek() != quote) {
            if (c.peek() == '&')
                parse_entity(c, value);
            else
                value.push_back(c.get());
        }
        if (c.eof())
            throw c.fail_at(ParseErrorCode::kXmlUnterminated,
                            "unterminated attribute value", vstart);
        c.get(); // closing quote
        if (el.attributes.count(key))
            throw c.fail_at(ParseErrorCode::kXmlDuplicateAttribute,
                            "duplicate attribute '" + key + "' on <" +
                                el.name + ">",
                            key_loc);
        el.attributes[key] = value;
    }
}

std::unique_ptr<XmlElement> parse_element(Cursor &c, std::size_t depth);

/** Parses children + text until the matching close tag of @p el. */
void
parse_content(Cursor &c, XmlElement &el, std::size_t depth)
{
    std::string text;
    for (;;) {
        if (c.eof())
            throw c.fail(ParseErrorCode::kXmlUnterminated,
                         "unexpected end of input inside <" + el.name + ">");
        if (c.peek() != '<') {
            if (c.peek() == '&')
                parse_entity(c, text);
            else
                text.push_back(c.get());
            continue;
        }
        if (c.starts_with("<!--")) {
            c.skip_past("-->", "comment");
            continue;
        }
        if (c.starts_with("<![CDATA[")) {
            const SourceLocation start_loc = c.loc();
            c.advance(9);
            // Raw character data: no entity decoding, no markup.
            for (;;) {
                if (c.eof())
                    throw c.fail_at(ParseErrorCode::kXmlUnterminated,
                                    "unterminated CDATA section", start_loc);
                if (c.starts_with("]]>")) {
                    c.advance(3);
                    break;
                }
                text.push_back(c.get());
            }
            continue;
        }
        if (c.starts_with("</")) {
            c.advance(2);
            const SourceLocation close_loc = c.loc();
            const std::string close = parse_name(c);
            if (close != el.name)
                throw c.fail_at(ParseErrorCode::kXmlMismatchedTag,
                                "mismatched close tag </" + close +
                                    "> for <" + el.name + ">",
                                close_loc);
            c.skip_whitespace();
            if (c.get() != '>')
                throw c.fail(ParseErrorCode::kXmlMalformedTag,
                             "malformed close tag </" + close + ">");
            // Trim surrounding whitespace from accumulated text.
            const auto b = text.find_first_not_of(" \t\r\n");
            if (b != std::string::npos) {
                const auto e = text.find_last_not_of(" \t\r\n");
                el.text = text.substr(b, e - b + 1);
            }
            return;
        }
        el.children.push_back(parse_element(c, depth + 1));
    }
}

std::unique_ptr<XmlElement>
parse_element(Cursor &c, std::size_t depth)
{
    const SourceLocation start = c.loc();
    if (depth > kMaxXmlDepth)
        throw c.fail_at(ParseErrorCode::kXmlTooDeep,
                        "element nesting exceeds depth limit of " +
                            std::to_string(kMaxXmlDepth),
                        start);
    if (c.get() != '<')
        throw c.fail_at(ParseErrorCode::kXmlMalformedTag, "expected '<'",
                        start);
    auto el = std::make_unique<XmlElement>();
    el->location = start;
    el->name = parse_name(c);
    parse_attributes(c, *el);
    c.skip_whitespace();
    if (c.starts_with("/>")) {
        c.advance(2);
        return el;
    }
    if (c.get() != '>')
        throw c.fail(ParseErrorCode::kXmlMalformedTag,
                     "malformed open tag <" + el->name + ">");
    parse_content(c, *el, depth);
    return el;
}

/**
 * Skips a "<!DOCTYPE ...>" (or any "<!...>") prolog declaration.  Bracketed
 * internal subsets — "<!DOCTYPE robot [ <!ENTITY ...> ]>" — nest markup
 * declarations inside '[' ']', so the terminating '>' is the first one
 * *outside* the brackets, not the first '>' in the declaration.
 */
void
skip_doctype(Cursor &c)
{
    const SourceLocation start = c.loc();
    c.advance(2); // "<!"
    long bracket_depth = 0;
    while (!c.eof()) {
        const char ch = c.get();
        if (ch == '[') {
            ++bracket_depth;
        } else if (ch == ']') {
            if (bracket_depth > 0)
                --bracket_depth;
        } else if (ch == '>' && bracket_depth == 0) {
            return;
        }
    }
    throw c.fail_at(ParseErrorCode::kXmlUnterminated,
                    "unterminated doctype declaration", start);
}

} // namespace

std::unique_ptr<XmlElement>
parse_xml(const std::string &input)
{
    Cursor c(input);
    for (;;) {
        c.skip_whitespace();
        if (c.eof())
            throw c.fail(ParseErrorCode::kXmlNoRootElement,
                         "no root element");
        if (c.starts_with("<?")) {
            c.skip_past("?>", "declaration");
            continue;
        }
        if (c.starts_with("<!--")) {
            c.skip_past("-->", "comment");
            continue;
        }
        if (c.starts_with("<!")) {
            skip_doctype(c);
            continue;
        }
        break;
    }
    auto root = parse_element(c, 1);
    c.skip_whitespace();
    while (!c.eof() && c.starts_with("<!--")) {
        c.skip_past("-->", "comment");
        c.skip_whitespace();
    }
    if (!c.eof())
        throw c.fail(ParseErrorCode::kXmlTrailingContent,
                     "trailing content after root element");
    return root;
}

std::unique_ptr<XmlElement>
parse_xml_file(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw XmlError(ParseErrorCode::kIoError,
                       "cannot open file: " + path, SourceLocation{});
    std::ostringstream ss;
    ss << in.rdbuf();
    if (in.bad())
        throw XmlError(ParseErrorCode::kIoError,
                       "cannot read file: " + path, SourceLocation{});
    return parse_xml(ss.str());
}

} // namespace topology
} // namespace roboshape
