/**
 * @file
 * Implementation of the minimal XML parser.
 */

#include "topology/xml.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace roboshape {
namespace topology {

XmlError::XmlError(const std::string &msg, std::size_t offset)
    : std::runtime_error(msg + " (at byte " + std::to_string(offset) + ")"),
      offset_(offset)
{
}

bool
XmlElement::has_attribute(const std::string &key) const
{
    return attributes.count(key) > 0;
}

std::string
XmlElement::attribute(const std::string &key, const std::string &fallback)
    const
{
    auto it = attributes.find(key);
    return it == attributes.end() ? fallback : it->second;
}

const XmlElement *
XmlElement::child(const std::string &tag) const
{
    for (const auto &c : children)
        if (c->name == tag)
            return c.get();
    return nullptr;
}

std::vector<const XmlElement *>
XmlElement::children_named(const std::string &tag) const
{
    std::vector<const XmlElement *> out;
    for (const auto &c : children)
        if (c->name == tag)
            out.push_back(c.get());
    return out;
}

namespace {

/** Streaming cursor over the raw document text. */
class Cursor
{
  public:
    explicit Cursor(const std::string &s) : s_(s) {}

    bool eof() const { return pos_ >= s_.size(); }
    char peek() const { return eof() ? '\0' : s_[pos_]; }
    char get() { return eof() ? '\0' : s_[pos_++]; }
    std::size_t pos() const { return pos_; }

    bool
    starts_with(const std::string &prefix) const
    {
        return s_.compare(pos_, prefix.size(), prefix) == 0;
    }

    void advance(std::size_t n) { pos_ += n; }

    void
    skip_whitespace()
    {
        while (!eof() && std::isspace(static_cast<unsigned char>(peek())))
            ++pos_;
    }

    /** Skips to just past the next occurrence of @p needle. */
    void
    skip_past(const std::string &needle, const char *what)
    {
        const std::size_t found = s_.find(needle, pos_);
        if (found == std::string::npos)
            throw XmlError(std::string("unterminated ") + what, pos_);
        pos_ = found + needle.size();
    }

  private:
    const std::string &s_;
    std::size_t pos_ = 0;
};

bool
is_name_char(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':';
}

std::string
decode_entities(const std::string &raw, std::size_t offset)
{
    std::string out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
        if (raw[i] != '&') {
            out.push_back(raw[i]);
            continue;
        }
        const std::size_t semi = raw.find(';', i);
        if (semi == std::string::npos)
            throw XmlError("unterminated entity", offset + i);
        const std::string ent = raw.substr(i + 1, semi - i - 1);
        if (ent == "lt")
            out.push_back('<');
        else if (ent == "gt")
            out.push_back('>');
        else if (ent == "amp")
            out.push_back('&');
        else if (ent == "quot")
            out.push_back('"');
        else if (ent == "apos")
            out.push_back('\'');
        else
            throw XmlError("unknown entity &" + ent + ";", offset + i);
        i = semi;
    }
    return out;
}

std::string
parse_name(Cursor &c)
{
    const std::size_t start = c.pos();
    std::string name;
    while (!c.eof() && is_name_char(c.peek()))
        name.push_back(c.get());
    if (name.empty())
        throw XmlError("expected name", start);
    return name;
}

void
parse_attributes(Cursor &c, XmlElement &el)
{
    for (;;) {
        c.skip_whitespace();
        const char p = c.peek();
        if (p == '>' || p == '/' || p == '?' || c.eof())
            return;
        const std::string key = parse_name(c);
        c.skip_whitespace();
        if (c.get() != '=')
            throw XmlError("expected '=' after attribute name", c.pos());
        c.skip_whitespace();
        const char quote = c.get();
        if (quote != '"' && quote != '\'')
            throw XmlError("expected quoted attribute value", c.pos());
        std::string value;
        const std::size_t vstart = c.pos();
        while (!c.eof() && c.peek() != quote)
            value.push_back(c.get());
        if (c.eof())
            throw XmlError("unterminated attribute value", vstart);
        c.get(); // closing quote
        el.attributes[key] = decode_entities(value, vstart);
    }
}

std::unique_ptr<XmlElement> parse_element(Cursor &c);

/** Parses children + text until the matching close tag of @p el. */
void
parse_content(Cursor &c, XmlElement &el)
{
    std::string text;
    for (;;) {
        if (c.eof())
            throw XmlError("unexpected end of input inside <" + el.name + ">",
                           c.pos());
        if (c.peek() != '<') {
            text.push_back(c.get());
            continue;
        }
        if (c.starts_with("<!--")) {
            c.skip_past("-->", "comment");
            continue;
        }
        if (c.starts_with("</")) {
            c.advance(2);
            const std::string close = parse_name(c);
            if (close != el.name)
                throw XmlError("mismatched close tag </" + close +
                                   "> for <" + el.name + ">",
                               c.pos());
            c.skip_whitespace();
            if (c.get() != '>')
                throw XmlError("malformed close tag", c.pos());
            // Trim surrounding whitespace from accumulated text.
            const auto b = text.find_first_not_of(" \t\r\n");
            if (b != std::string::npos) {
                const auto e = text.find_last_not_of(" \t\r\n");
                el.text = decode_entities(text.substr(b, e - b + 1), 0);
            }
            return;
        }
        el.children.push_back(parse_element(c));
    }
}

std::unique_ptr<XmlElement>
parse_element(Cursor &c)
{
    if (c.get() != '<')
        throw XmlError("expected '<'", c.pos());
    auto el = std::make_unique<XmlElement>();
    el->name = parse_name(c);
    parse_attributes(c, *el);
    c.skip_whitespace();
    if (c.starts_with("/>")) {
        c.advance(2);
        return el;
    }
    if (c.get() != '>')
        throw XmlError("malformed open tag <" + el->name + ">", c.pos());
    parse_content(c, *el);
    return el;
}

} // namespace

std::unique_ptr<XmlElement>
parse_xml(const std::string &input)
{
    Cursor c(input);
    for (;;) {
        c.skip_whitespace();
        if (c.eof())
            throw XmlError("no root element", c.pos());
        if (c.starts_with("<?")) {
            c.skip_past("?>", "declaration");
            continue;
        }
        if (c.starts_with("<!--")) {
            c.skip_past("-->", "comment");
            continue;
        }
        if (c.starts_with("<!")) {
            c.skip_past(">", "doctype");
            continue;
        }
        break;
    }
    auto root = parse_element(c);
    c.skip_whitespace();
    while (!c.eof() && c.starts_with("<!--")) {
        c.skip_past("-->", "comment");
        c.skip_whitespace();
    }
    if (!c.eof())
        throw XmlError("trailing content after root element", c.pos());
    return root;
}

std::unique_ptr<XmlElement>
parse_xml_file(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open file: " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return parse_xml(ss.str());
}

} // namespace topology
} // namespace roboshape
