/**
 * @file
 * Implementation of the kinematic tree model and its builder.
 */

#include "topology/robot_model.h"

#include <map>
#include <stdexcept>

namespace roboshape {
namespace topology {

int
RobotModel::find_link(const std::string &name) const
{
    for (std::size_t i = 0; i < links_.size(); ++i)
        if (links_[i].name == name)
            return static_cast<int>(i);
    return -1;
}

RobotModelBuilder::RobotModelBuilder(std::string robot_name)
    : name_(std::move(robot_name))
{
}

RobotModelBuilder &
RobotModelBuilder::add_link(const std::string &name,
                            const std::string &parent_name,
                            const spatial::JointModel &joint,
                            const spatial::SpatialTransform &x_tree,
                            const spatial::SpatialInertia &inertia)
{
    for (const auto &p : pending_)
        if (p.name == name)
            throw std::invalid_argument("duplicate link name: " + name);
    if (name.empty())
        throw std::invalid_argument("link name must be nonempty");
    pending_.push_back({name, parent_name, joint, x_tree, inertia});
    return *this;
}

RobotModel
RobotModelBuilder::finalize() const
{
    if (pending_.empty())
        throw std::invalid_argument("robot '" + name_ + "' has no links");

    std::map<std::string, std::size_t> by_name;
    for (std::size_t i = 0; i < pending_.size(); ++i)
        by_name[pending_[i].name] = i;

    // Children lists over pending indices; "" keys the base.
    std::map<std::string, std::vector<std::size_t>> kids;
    for (std::size_t i = 0; i < pending_.size(); ++i) {
        const auto &p = pending_[i];
        if (!p.parent_name.empty() && !by_name.count(p.parent_name)) {
            throw std::invalid_argument("link '" + p.name +
                                        "' has unknown parent '" +
                                        p.parent_name + "'");
        }
        if (p.joint.type() == spatial::JointType::kFixed) {
            throw std::invalid_argument(
                "link '" + p.name +
                "' uses a fixed joint; fold it before building "
                "(see urdf parser)");
        }
        kids[p.parent_name].push_back(i);
    }
    if (!kids.count(""))
        throw std::invalid_argument("robot '" + name_ +
                                    "' has no link attached to the base");

    // Depth-first preorder from the base; detects disconnected links.
    std::vector<std::size_t> order;
    std::vector<int> new_index(pending_.size(), -1);
    std::vector<std::size_t> stack;
    const auto &roots = kids[""];
    for (auto it = roots.rbegin(); it != roots.rend(); ++it)
        stack.push_back(*it);
    while (!stack.empty()) {
        const std::size_t i = stack.back();
        stack.pop_back();
        if (new_index[i] != -1)
            throw std::invalid_argument("cycle detected at link '" +
                                        pending_[i].name + "'");
        new_index[i] = static_cast<int>(order.size());
        order.push_back(i);
        auto it = kids.find(pending_[i].name);
        if (it != kids.end())
            for (auto c = it->second.rbegin(); c != it->second.rend(); ++c)
                stack.push_back(*c);
    }
    if (order.size() != pending_.size()) {
        for (std::size_t i = 0; i < pending_.size(); ++i)
            if (new_index[i] == -1)
                throw std::invalid_argument("link '" + pending_[i].name +
                                            "' is not connected to the base");
    }

    RobotModel model;
    model.name_ = name_;
    model.links_.resize(order.size());
    model.children_.resize(order.size());
    for (std::size_t n = 0; n < order.size(); ++n) {
        const auto &p = pending_[order[n]];
        Link &l = model.links_[n];
        l.name = p.name;
        l.joint = p.joint;
        l.x_tree = p.x_tree;
        l.inertia = p.inertia;
        if (p.parent_name.empty()) {
            l.parent = kBaseParent;
            model.base_children_.push_back(static_cast<int>(n));
        } else {
            l.parent = new_index[by_name[p.parent_name]];
            model.children_[l.parent].push_back(static_cast<int>(n));
        }
    }
    return model;
}

} // namespace topology
} // namespace roboshape
