/**
 * @file
 * Implementation of the bundled robot library.
 */

#include "topology/robot_library.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "topology/urdf_parser.h"

namespace roboshape {
namespace topology {

namespace {

using spatial::JointModel;
using spatial::JointType;
using spatial::Mat3;
using spatial::SpatialInertia;
using spatial::SpatialTransform;
using spatial::Vec3;

/** One link of a robot spec, in URDF-equivalent terms. */
struct LinkSpec
{
    std::string name;
    std::string parent; ///< "" = base link.
    Vec3 origin_xyz;    ///< Joint origin in the parent frame.
    Vec3 axis;          ///< Joint axis in the child frame.
    double mass;
    Vec3 com;           ///< Center of mass in the link frame.
    Vec3 inertia_diag;  ///< Principal rotational inertia about the COM.
};

struct RobotSpec
{
    std::string name;
    std::string base_link;
    std::vector<LinkSpec> links;
};

/** Rod-like link inertia: length L along the joint offset direction. */
LinkSpec
rod_link(const std::string &name, const std::string &parent,
         const Vec3 &origin, const Vec3 &axis, double mass, double length)
{
    LinkSpec l;
    l.name = name;
    l.parent = parent;
    l.origin_xyz = origin;
    l.axis = axis;
    l.mass = mass;
    l.com = {0.0, 0.0, length * 0.5};
    const double r = 0.05; // effective rod radius
    const double ixx = mass * (3.0 * r * r + length * length) / 12.0;
    const double izz = mass * r * r / 2.0;
    l.inertia_diag = {ixx, ixx, izz};
    return l;
}

/** Appends a serial chain of @p n links with alternating z/y axes. */
void
append_chain(RobotSpec &spec, const std::string &prefix,
             const std::string &attach_to, const Vec3 &first_origin,
             int n, double mass0, double length)
{
    std::string parent = attach_to;
    for (int i = 0; i < n; ++i) {
        const Vec3 origin =
            i == 0 ? first_origin : Vec3{0.0, 0.0, length};
        const Vec3 axis = (i % 2 == 0) ? Vec3::unit_z() : Vec3::unit_y();
        // Taper masses down the chain for realistic inertia distribution.
        const double mass = mass0 * (1.0 - 0.08 * i);
        const std::string name = prefix + "_link" + std::to_string(i + 1);
        spec.links.push_back(rod_link(name, parent, origin, axis, mass,
                                      length));
        parent = name;
    }
}

/** Appends a 3-link HyQ-style leg (hip abd/add, hip flex/ext, knee). */
void
append_leg(RobotSpec &spec, const std::string &prefix, const Vec3 &hip)
{
    spec.links.push_back(rod_link(prefix + "_haa", "", hip, Vec3::unit_x(),
                                  3.5, 0.08));
    spec.links.push_back(rod_link(prefix + "_hfe", prefix + "_haa",
                                  {0.0, 0.08, 0.0}, Vec3::unit_y(), 4.0,
                                  0.35));
    spec.links.push_back(rod_link(prefix + "_kfe", prefix + "_hfe",
                                  {0.0, 0.0, -0.35}, Vec3::unit_y(), 2.5,
                                  0.33));
}

RobotSpec
iiwa_spec()
{
    RobotSpec spec{"iiwa", "iiwa_base", {}};
    append_chain(spec, "iiwa", "", {0.0, 0.0, 0.15}, 7, 4.0, 0.22);
    return spec;
}

RobotSpec
hyq_spec()
{
    RobotSpec spec{"hyq", "hyq_torso", {}};
    append_leg(spec, "lf", {0.37, 0.21, 0.0});
    append_leg(spec, "rf", {0.37, -0.21, 0.0});
    append_leg(spec, "lh", {-0.37, 0.21, 0.0});
    append_leg(spec, "rh", {-0.37, -0.21, 0.0});
    return spec;
}

RobotSpec
baxter_spec()
{
    RobotSpec spec{"baxter", "baxter_torso", {}};
    spec.links.push_back(rod_link("head_pan", "", {0.06, 0.0, 0.69},
                                  Vec3::unit_z(), 1.8, 0.15));
    append_chain(spec, "left_arm", "", {0.06, 0.26, 0.55}, 7, 3.5, 0.2);
    append_chain(spec, "right_arm", "", {0.06, -0.26, 0.55}, 7, 3.5, 0.2);
    return spec;
}

/** 6-link Jaco arm plus @p fingers 3-link fingers on the last arm link. */
RobotSpec
jaco_spec(int fingers)
{
    RobotSpec spec{"jaco" + std::to_string(fingers), "jaco_base", {}};
    append_chain(spec, "arm", "", {0.0, 0.0, 0.16}, 6, 1.8, 0.18);
    for (int f = 0; f < fingers; ++f) {
        const double y = 0.03 * (f - (fingers - 1) * 0.5);
        append_chain(spec, "finger" + std::to_string(f + 1), "arm_link6",
                     {0.02, y, 0.1}, 3, 0.12, 0.03);
    }
    return spec;
}

RobotSpec
bittle_spec()
{
    RobotSpec spec{"bittle", "bittle_body", {}};
    const double x = 0.05, y = 0.04;
    const char *names[4] = {"lf", "rf", "lh", "rh"};
    const double xs[4] = {x, x, -x, -x};
    const double ys[4] = {y, -y, y, -y};
    for (int l = 0; l < 4; ++l) {
        const std::string shoulder = std::string(names[l]) + "_shoulder";
        spec.links.push_back(rod_link(shoulder, "", {xs[l], ys[l], 0.0},
                                      Vec3::unit_y(), 0.04, 0.045));
        spec.links.push_back(rod_link(std::string(names[l]) + "_knee",
                                      shoulder, {0.0, 0.0, -0.045},
                                      Vec3::unit_y(), 0.02, 0.045));
    }
    return spec;
}

RobotSpec
pepper_spec()
{
    RobotSpec spec{"pepper", "pepper_base", {}};
    // Hip column of 2 pitch/roll links topped by a knee-ish joint.
    append_chain(spec, "hip", "", {0.0, 0.0, 0.3}, 3, 6.0, 0.25);
    spec.links.push_back(rod_link("head_yaw", "hip_link3",
                                  {0.0, 0.0, 0.3}, Vec3::unit_z(), 1.2,
                                  0.1));
    spec.links.push_back(rod_link("head_pitch", "head_yaw",
                                  {0.0, 0.0, 0.1}, Vec3::unit_y(), 0.8,
                                  0.1));
    append_chain(spec, "left_arm", "hip_link3", {0.0, 0.15, 0.25}, 5, 1.2,
                 0.15);
    append_chain(spec, "right_arm", "hip_link3", {0.0, -0.15, 0.25}, 5,
                 1.2, 0.15);
    return spec;
}

RobotSpec
humanoid_spec()
{
    RobotSpec spec{"humanoid", "humanoid_pelvis", {}};
    append_chain(spec, "left_leg", "", {0.0, 0.1, -0.05}, 6, 4.0, 0.16);
    append_chain(spec, "right_leg", "", {0.0, -0.1, -0.05}, 6, 4.0, 0.16);
    append_chain(spec, "left_arm", "", {0.0, 0.25, 0.45}, 7, 2.2, 0.13);
    append_chain(spec, "right_arm", "", {0.0, -0.25, 0.45}, 7, 2.2, 0.13);
    spec.links.push_back(rod_link("head", "", {0.0, 0.0, 0.55},
                                  Vec3::unit_z(), 3.0, 0.15));
    return spec;
}

RobotSpec
hyq_with_arm_spec()
{
    RobotSpec spec = hyq_spec();
    spec.name = "hyq_arm";
    append_chain(spec, "arm", "", {0.45, 0.0, 0.12}, 7, 3.0, 0.2);
    return spec;
}

RobotSpec
spec_for(RobotId id)
{
    switch (id) {
      case RobotId::kIiwa:
        return iiwa_spec();
      case RobotId::kHyq:
        return hyq_spec();
      case RobotId::kBaxter:
        return baxter_spec();
      case RobotId::kJaco2:
        return jaco_spec(2);
      case RobotId::kJaco3:
        return jaco_spec(3);
      case RobotId::kHyqWithArm:
        return hyq_with_arm_spec();
      case RobotId::kBittle:
        return bittle_spec();
      case RobotId::kPepper:
        return pepper_spec();
      case RobotId::kHumanoid:
        return humanoid_spec();
    }
    throw std::invalid_argument("unknown robot id");
}

} // namespace

const std::vector<RobotId> &
all_robots()
{
    static const std::vector<RobotId> kAll{
        RobotId::kIiwa,  RobotId::kHyq,   RobotId::kBaxter,
        RobotId::kJaco2, RobotId::kJaco3, RobotId::kHyqWithArm};
    return kAll;
}

const std::vector<RobotId> &
extended_robots()
{
    static const std::vector<RobotId> kExtended{
        RobotId::kBittle, RobotId::kPepper, RobotId::kHumanoid};
    return kExtended;
}

const std::vector<RobotId> &
shipped_robots()
{
    static const std::vector<RobotId> kShipped{
        RobotId::kIiwa, RobotId::kHyq, RobotId::kBaxter};
    return kShipped;
}

const char *
robot_name(RobotId id)
{
    switch (id) {
      case RobotId::kIiwa:
        return "iiwa";
      case RobotId::kHyq:
        return "HyQ";
      case RobotId::kBaxter:
        return "Baxter";
      case RobotId::kJaco2:
        return "Jaco-2";
      case RobotId::kJaco3:
        return "Jaco-3";
      case RobotId::kHyqWithArm:
        return "HyQ+arm";
      case RobotId::kBittle:
        return "Bittle";
      case RobotId::kPepper:
        return "Pepper";
      case RobotId::kHumanoid:
        return "humanoid";
    }
    return "?";
}

RobotModel
build_robot(RobotId id)
{
    const RobotSpec spec = spec_for(id);
    RobotModelBuilder builder(spec.name);
    for (const LinkSpec &l : spec.links) {
        Mat3 ic;
        ic(0, 0) = l.inertia_diag.x;
        ic(1, 1) = l.inertia_diag.y;
        ic(2, 2) = l.inertia_diag.z;
        builder.add_link(
            l.name, l.parent, JointModel(JointType::kRevolute, l.axis),
            SpatialTransform::translation(l.origin_xyz),
            SpatialInertia::from_mass_com_inertia(l.mass, l.com, ic));
    }
    return builder.finalize();
}

std::string
robot_urdf(RobotId id)
{
    const RobotSpec spec = spec_for(id);
    std::ostringstream os;
    os.precision(12);
    os << "<?xml version=\"1.0\"?>\n";
    os << "<robot name=\"" << spec.name << "\">\n";
    os << "  <link name=\"" << spec.base_link << "\"/>\n";
    for (const LinkSpec &l : spec.links) {
        os << "  <link name=\"" << l.name << "\">\n"
           << "    <inertial>\n"
           << "      <origin xyz=\"" << l.com.x << " " << l.com.y << " "
           << l.com.z << "\" rpy=\"0 0 0\"/>\n"
           << "      <mass value=\"" << l.mass << "\"/>\n"
           << "      <inertia ixx=\"" << l.inertia_diag.x << "\" ixy=\"0\""
           << " ixz=\"0\" iyy=\"" << l.inertia_diag.y << "\" iyz=\"0\""
           << " izz=\"" << l.inertia_diag.z << "\"/>\n"
           << "    </inertial>\n"
           << "  </link>\n";
        const std::string parent =
            l.parent.empty() ? spec.base_link : l.parent;
        os << "  <joint name=\"" << l.name << "_joint\" type=\"revolute\">\n"
           << "    <parent link=\"" << parent << "\"/>\n"
           << "    <child link=\"" << l.name << "\"/>\n"
           << "    <origin xyz=\"" << l.origin_xyz.x << " " << l.origin_xyz.y
           << " " << l.origin_xyz.z << "\" rpy=\"0 0 0\"/>\n"
           << "    <axis xyz=\"" << l.axis.x << " " << l.axis.y << " "
           << l.axis.z << "\"/>\n"
           << "    <limit lower=\"-3.1\" upper=\"3.1\" effort=\"100\""
           << " velocity=\"3\"/>\n"
           << "  </joint>\n";
    }
    os << "</robot>\n";
    return os.str();
}

std::vector<NamedUrdf>
all_robot_urdfs()
{
    std::vector<NamedUrdf> out;
    std::vector<RobotId> everything = all_robots();
    everything.insert(everything.end(), extended_robots().begin(),
                      extended_robots().end());
    for (RobotId id : everything)
        out.push_back({spec_for(id).name, robot_urdf(id)});
    return out;
}

std::vector<std::string>
write_urdf_files(const std::string &directory)
{
    std::vector<std::string> paths;
    std::vector<RobotId> everything = all_robots();
    everything.insert(everything.end(), extended_robots().begin(),
                      extended_robots().end());
    for (RobotId id : everything) {
        const RobotSpec spec = spec_for(id);
        const std::string path = directory + "/" + spec.name + ".urdf";
        std::ofstream out(path);
        if (!out)
            throw std::runtime_error("cannot write " + path);
        out << robot_urdf(id);
        paths.push_back(path);
    }
    return paths;
}

} // namespace topology
} // namespace roboshape
