/**
 * @file
 * Implementation of the ingestion diagnostics subsystem.
 */

#include "topology/diagnostics.h"

#include <sstream>
#include <string>

#include "obs/registry.h"

namespace roboshape {
namespace topology {

const char *
to_string(ParseErrorCode code)
{
    switch (code) {
      case ParseErrorCode::kNone:
        return "none";
      case ParseErrorCode::kIoError:
        return "io-error";
      case ParseErrorCode::kXmlUnterminated:
        return "xml-unterminated";
      case ParseErrorCode::kXmlExpectedName:
        return "xml-expected-name";
      case ParseErrorCode::kXmlMalformedTag:
        return "xml-malformed-tag";
      case ParseErrorCode::kXmlMismatchedTag:
        return "xml-mismatched-tag";
      case ParseErrorCode::kXmlDuplicateAttribute:
        return "xml-duplicate-attribute";
      case ParseErrorCode::kXmlBadAttributeSyntax:
        return "xml-bad-attribute-syntax";
      case ParseErrorCode::kXmlBadEntity:
        return "xml-bad-entity";
      case ParseErrorCode::kXmlNoRootElement:
        return "xml-no-root-element";
      case ParseErrorCode::kXmlTrailingContent:
        return "xml-trailing-content";
      case ParseErrorCode::kXmlTooDeep:
        return "xml-too-deep";
      case ParseErrorCode::kUrdfBadRoot:
        return "urdf-bad-root";
      case ParseErrorCode::kUrdfMissingName:
        return "urdf-missing-name";
      case ParseErrorCode::kUrdfDuplicateName:
        return "urdf-duplicate-name";
      case ParseErrorCode::kUrdfMissingElement:
        return "urdf-missing-element";
      case ParseErrorCode::kUrdfBadNumber:
        return "urdf-bad-number";
      case ParseErrorCode::kUrdfBadVector:
        return "urdf-bad-vector";
      case ParseErrorCode::kUrdfBadJointType:
        return "urdf-bad-joint-type";
      case ParseErrorCode::kUrdfNegativeMass:
        return "urdf-negative-mass";
      case ParseErrorCode::kUrdfZeroAxis:
        return "urdf-zero-axis";
      case ParseErrorCode::kUrdfNoLinks:
        return "urdf-no-links";
      case ParseErrorCode::kUrdfUndefinedLink:
        return "urdf-undefined-link";
      case ParseErrorCode::kUrdfMultipleParents:
        return "urdf-multiple-parents";
      case ParseErrorCode::kUrdfNoRootLink:
        return "urdf-no-root-link";
      case ParseErrorCode::kUrdfMultipleRootLinks:
        return "urdf-multiple-root-links";
      case ParseErrorCode::kUrdfNotATree:
        return "urdf-not-a-tree";
      case ParseErrorCode::kUrdfGraphError:
        return "urdf-graph-error";
      case ParseErrorCode::kUrdfIgnoredElement:
        return "urdf-ignored-element";
      case ParseErrorCode::kUrdfZeroMassInertia:
        return "urdf-zero-mass-inertia";
      case ParseErrorCode::kUrdfNonPsdInertia:
        return "urdf-non-psd-inertia";
      case ParseErrorCode::kUrdfTriangleInequality:
        return "urdf-triangle-inequality";
      case ParseErrorCode::kUrdfNonUnitAxis:
        return "urdf-non-unit-axis";
      case ParseErrorCode::kUrdfMissingAttribute:
        return "urdf-missing-attribute";
    }
    return "unknown";
}

std::string
SourceLocation::to_string() const
{
    if (!known())
        return "offset " + std::to_string(offset);
    return std::to_string(line) + ":" + std::to_string(column);
}

SourceLocation
locate(const std::string &text, std::size_t offset)
{
    SourceLocation loc;
    loc.offset = offset > text.size() ? text.size() : offset;
    loc.line = 1;
    loc.column = 1;
    for (std::size_t i = 0; i < loc.offset; ++i) {
        if (text[i] == '\n') {
            ++loc.line;
            loc.column = 1;
        } else {
            ++loc.column;
        }
    }
    return loc;
}

std::string
source_snippet(const std::string &text, const SourceLocation &loc)
{
    if (!loc.known() || loc.offset > text.size())
        return {};
    std::size_t begin = loc.offset > 0 ? loc.offset : 0;
    if (begin > text.size())
        begin = text.size();
    const std::size_t line_start = text.rfind('\n', begin == 0 ? 0 : begin - 1);
    const std::size_t start =
        line_start == std::string::npos ? 0 : line_start + 1;
    std::size_t end = text.find('\n', begin);
    if (end == std::string::npos)
        end = text.size();
    // Clamp very long lines so adversarial one-line inputs stay readable.
    constexpr std::size_t kMaxSnippet = 120;
    std::string line = text.substr(start, end - start);
    std::size_t caret = loc.column > 0 ? loc.column - 1 : 0;
    if (line.size() > kMaxSnippet) {
        const std::size_t window_start =
            caret > kMaxSnippet / 2 ? caret - kMaxSnippet / 2 : 0;
        line = line.substr(window_start, kMaxSnippet);
        caret -= window_start;
    }
    if (caret > line.size())
        caret = line.size();
    // Render tabs as single spaces so the caret column stays aligned.
    for (char &ch : line)
        if (ch == '\t')
            ch = ' ';
    return line + "\n" + std::string(caret, ' ') + "^";
}

std::string
Diagnostic::to_string() const
{
    std::ostringstream os;
    // compiler-style "error[code]" prefix, not a JSON artifact.
    os << (severity == Severity::kError ? "error" : "warning")
       << "[" // NOLINT(json-writer-only)
       << topology::to_string(code) << "]";
    if (location.known())
        os << " " << location.to_string();
    os << ": " << message;
    return os.str();
}

void
ValidationReport::add(Diagnostic d)
{
    if (d.severity == Severity::kError)
        ++errors_;
    ROBOSHAPE_OBS_COUNT("urdf.diagnostics", 1);
    if (d.severity == Severity::kError)
        ROBOSHAPE_OBS_COUNT("urdf.errors", 1);
    else
        ROBOSHAPE_OBS_COUNT("urdf.warnings", 1);
#ifndef ROBOSHAPE_NO_OBS
    // Per-ParseErrorCode tallies.  The name is dynamic, so this goes
    // through the registry directly instead of the static-caching macro.
    if (obs::enabled())
        obs::registry()
            .counter(std::string("urdf.diag.") +
                     topology::to_string(d.code))
            .add(1);
#endif
    diagnostics_.push_back(std::move(d));
}

void
ValidationReport::add_error(ParseErrorCode code, std::string message,
                            SourceLocation location, std::string snippet)
{
    add({Severity::kError, code, std::move(message), location,
         std::move(snippet)});
}

void
ValidationReport::add_warning(ParseErrorCode code, std::string message,
                              SourceLocation location, std::string snippet)
{
    add({Severity::kWarning, code, std::move(message), location,
         std::move(snippet)});
}

bool
ValidationReport::has(ParseErrorCode code) const
{
    for (const Diagnostic &d : diagnostics_)
        if (d.code == code)
            return true;
    return false;
}

std::string
ValidationReport::to_string() const
{
    std::ostringstream os;
    for (const Diagnostic &d : diagnostics_)
        os << d.to_string() << "\n";
    return os.str();
}

} // namespace topology
} // namespace roboshape
