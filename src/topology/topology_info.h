/**
 * @file
 * Topology queries and shape metrics.
 *
 * Precomputes the structural facts RoboShape's scheduler, blocker, and
 * resource allocator consume: depths, subtree spans, ancestor relations,
 * branch points, independent-limb spans, and the Table 3 shape metrics
 * (total links, max/avg leaf depth, max descendants, leaf-depth stdev).
 */

#ifndef ROBOSHAPE_TOPOLOGY_TOPOLOGY_INFO_H
#define ROBOSHAPE_TOPOLOGY_TOPOLOGY_INFO_H

#include <cstddef>
#include <utility>
#include <vector>

#include "topology/robot_model.h"

namespace roboshape {
namespace topology {

/**
 * Shape metrics reported in paper Table 3.
 *
 * max_descendants follows the paper's convention of counting the subtree
 * root itself (so a 7-link serial chain has max_descendants 7);
 * leaf_depth_stdev is the population standard deviation of leaf depths.
 */
struct TopologyMetrics
{
    std::size_t total_links = 0;
    std::size_t max_leaf_depth = 0;
    double avg_leaf_depth = 0.0;
    std::size_t max_descendants = 0;
    double leaf_depth_stdev = 0.0;
};

/**
 * Immutable precomputed topology facts for one robot model.
 *
 * Link indices refer to the model's depth-first preorder, so every subtree
 * is the contiguous range [i, i + subtree_size(i)).
 */
class TopologyInfo
{
  public:
    explicit TopologyInfo(const RobotModel &model);

    /** The info keeps a pointer into @p model; temporaries are rejected. */
    explicit TopologyInfo(RobotModel &&) = delete;

    const RobotModel &model() const { return *model_; }

    std::size_t num_links() const { return depth_.size(); }

    /** Depth of link @p i; children of the base have depth 1. */
    std::size_t depth(std::size_t i) const { return depth_[i]; }

    /** Number of links in the subtree rooted at @p i, including @p i. */
    std::size_t subtree_size(std::size_t i) const { return subtree_size_[i]; }

    /** True when link @p i has no children. */
    bool is_leaf(std::size_t i) const;

    /** All leaf links in index order. */
    const std::vector<std::size_t> &leaves() const { return leaves_; }

    /** True when @p a == @p b or @p a is a (strict) ancestor of @p b. */
    bool is_ancestor_or_self(std::size_t a, std::size_t b) const;

    /** Chain of ancestors of @p i from its limb root down to @p i,
     *  inclusive. */
    std::vector<std::size_t> root_path(std::size_t i) const;

    /**
     * Links with more than one child — the branch points where the
     * accelerator's checkpoint registers save traversal state (paper
     * Sec. 4.4e).  The base itself is not a link and is excluded; use
     * model().base_children().size() > 1 to detect base branching.
     */
    const std::vector<std::size_t> &branch_links() const
    {
        return branch_links_;
    }

    /**
     * Contiguous [begin, end) index spans of the base-rooted independent
     * limbs.  Because no dynamic coupling crosses the fixed base, the mass
     * matrix is always block diagonal over these spans (paper Sec. 3.2).
     */
    const std::vector<std::pair<std::size_t, std::size_t>> &
    limb_spans() const
    {
        return limb_spans_;
    }

    /**
     * Structural N x N mass-matrix sparsity mask: entry (i, j) can be
     * nonzero iff i and j lie on a common root path (one is an ancestor of
     * the other or they are equal).
     */
    std::vector<std::vector<bool>> mass_matrix_mask() const;

    /** Structural sparsity (zero fraction) of the mass matrix. */
    double mass_matrix_sparsity() const;

    /** Table 3 metrics. */
    TopologyMetrics metrics() const;

  private:
    const RobotModel *model_;
    std::vector<std::size_t> depth_;
    std::vector<std::size_t> subtree_size_;
    std::vector<std::size_t> leaves_;
    std::vector<std::size_t> branch_links_;
    std::vector<std::pair<std::size_t, std::size_t>> limb_spans_;
};

} // namespace topology
} // namespace roboshape

#endif // ROBOSHAPE_TOPOLOGY_TOPOLOGY_INFO_H
