/**
 * @file
 * URDF robot-description parser (paper Sec. 4.1).
 *
 * Parses the standard XML robot description format that manufacturers ship
 * and simulators consume, producing a RobotModel kinematic tree.  The root
 * link (the one that never appears as a joint child) becomes the fixed base;
 * fixed joints are folded away by merging the rigidly attached link's
 * inertia into its moving ancestor and re-rooting its children, so N always
 * counts articulated links like the paper does.
 *
 * Two entry modes (see docs/INGESTION.md):
 *  - strict  (`parse_urdf`):        throws a typed UrdfError/XmlError on
 *                                    the first problem;
 *  - report  (`parse_urdf_checked`): never throws on bad input — collects
 *                                    *every* error and data-quality warning
 *                                    into a ValidationReport and produces a
 *                                    model only when the report is clean.
 */

#ifndef ROBOSHAPE_TOPOLOGY_URDF_PARSER_H
#define ROBOSHAPE_TOPOLOGY_URDF_PARSER_H

#include <optional>
#include <stdexcept>
#include <string>

#include "topology/diagnostics.h"
#include "topology/robot_model.h"

namespace roboshape {
namespace topology {

/** Error raised on structurally invalid URDF input. */
class UrdfError : public std::runtime_error
{
  public:
    explicit UrdfError(const std::string &msg)
        : UrdfError(ParseErrorCode::kNone, msg, SourceLocation{})
    {
    }

    UrdfError(ParseErrorCode code, const std::string &msg,
              SourceLocation location);

    /** Typed classification of the failure. */
    ParseErrorCode code() const { return code_; }

    /** Source position of the offending element (may be unknown). */
    const SourceLocation &location() const { return location_; }

  private:
    ParseErrorCode code_;
    SourceLocation location_;
};

/**
 * Result of a checked (report-mode) parse: the model is engaged iff the
 * report contains no errors.  Warnings never block model construction.
 */
struct UrdfParseResult
{
    std::optional<RobotModel> model;
    ValidationReport report;

    bool ok() const { return model.has_value(); }
};

/** Parses URDF text. @throws UrdfError / XmlError on invalid input. */
RobotModel parse_urdf(const std::string &urdf_text);

/**
 * Parses a URDF file.
 * @throws UrdfError with code kIoError when the file cannot be read, or
 *         UrdfError / XmlError on invalid content.
 */
RobotModel parse_urdf_file(const std::string &path);

/**
 * Report-mode parse: collects every diagnostic in one pass instead of
 * throwing on the first.  Never throws on malformed input — any input
 * yields either a model or a report explaining why not (an I/O or XML
 * failure yields a single-error report).  On success the model is
 * bit-identical to what `parse_urdf` produces.
 */
UrdfParseResult parse_urdf_checked(const std::string &urdf_text);

/** Report-mode parse of a file (I/O failures become kIoError reports). */
UrdfParseResult parse_urdf_file_checked(const std::string &path);

} // namespace topology
} // namespace roboshape

#endif // ROBOSHAPE_TOPOLOGY_URDF_PARSER_H
