/**
 * @file
 * URDF robot-description parser (paper Sec. 4.1).
 *
 * Parses the standard XML robot description format that manufacturers ship
 * and simulators consume, producing a RobotModel kinematic tree.  The root
 * link (the one that never appears as a joint child) becomes the fixed base;
 * fixed joints are folded away by merging the rigidly attached link's
 * inertia into its moving ancestor and re-rooting its children, so N always
 * counts articulated links like the paper does.
 */

#ifndef ROBOSHAPE_TOPOLOGY_URDF_PARSER_H
#define ROBOSHAPE_TOPOLOGY_URDF_PARSER_H

#include <stdexcept>
#include <string>

#include "topology/robot_model.h"

namespace roboshape {
namespace topology {

/** Error raised on structurally invalid URDF input. */
class UrdfError : public std::runtime_error
{
  public:
    explicit UrdfError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Parses URDF text. @throws UrdfError / XmlError on invalid input. */
RobotModel parse_urdf(const std::string &urdf_text);

/** Parses a URDF file. */
RobotModel parse_urdf_file(const std::string &path);

} // namespace topology
} // namespace roboshape

#endif // ROBOSHAPE_TOPOLOGY_URDF_PARSER_H
