/**
 * @file
 * Joint models.
 *
 * Each joint contributes a configuration-dependent transform X_J(q) and a
 * constant motion subspace S (the free mode of the joint, paper Sec. 2).
 * Robomorphic processing elements exploit the sparsity of S per joint type
 * [32]; the library supports the single-degree-of-freedom joints that the
 * paper's robots use (revolute and prismatic) plus fixed joints.
 */

#ifndef ROBOSHAPE_SPATIAL_JOINT_H
#define ROBOSHAPE_SPATIAL_JOINT_H

#include <string>

#include "spatial/spatial_transform.h"
#include "spatial/spatial_vector.h"

namespace roboshape {
namespace spatial {

enum class JointType
{
    kRevolute,
    kPrismatic,
    kFixed,
};

/** Parses "revolute" / "continuous" / "prismatic" / "fixed". */
JointType joint_type_from_string(const std::string &s);

/** Human-readable joint-type name. */
const char *to_string(JointType t);

/**
 * Single-degree-of-freedom joint model.
 */
class JointModel
{
  public:
    JointModel() : type_(JointType::kFixed) {}

    JointModel(JointType type, const Vec3 &axis)
        : type_(type), axis_(type == JointType::kFixed ? Vec3::zero()
                                                       : axis.normalized())
    {
    }

    JointType type() const { return type_; }
    const Vec3 &axis() const { return axis_; }

    /** Number of degrees of freedom (1, or 0 for fixed joints). */
    int dof() const { return type_ == JointType::kFixed ? 0 : 1; }

    /** Joint transform X_J(q): predecessor frame -> successor frame. */
    SpatialTransform transform(double q) const;

    /** Motion subspace S such that v_J = S * qdot. */
    SpatialVector motion_subspace() const;

  private:
    JointType type_;
    Vec3 axis_;
};

} // namespace spatial
} // namespace roboshape

#endif // ROBOSHAPE_SPATIAL_JOINT_H
