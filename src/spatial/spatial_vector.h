/**
 * @file
 * Spatial (6-D) motion/force vectors and cross-product operators.
 *
 * A spatial motion vector stacks [angular; linear] components; a spatial
 * force vector stacks [moment; linear force].  The motion cross product
 * (crm) and force cross product (crf) implement Featherstone's v x and
 * v x* operators, the workhorses of the RNEA recursion (paper Alg. 2).
 */

#ifndef ROBOSHAPE_SPATIAL_SPATIAL_VECTOR_H
#define ROBOSHAPE_SPATIAL_SPATIAL_VECTOR_H

#include "spatial/vec3.h"

namespace roboshape {
namespace spatial {

/** 6-D spatial vector: [angular (or moment); linear]. */
struct SpatialVector
{
    Vec3 ang;
    Vec3 lin;

    constexpr SpatialVector() = default;
    constexpr SpatialVector(const Vec3 &a, const Vec3 &l) : ang(a), lin(l) {}

    static constexpr SpatialVector zero() { return {}; }

    SpatialVector operator+(const SpatialVector &o) const
    {
        return {ang + o.ang, lin + o.lin};
    }
    SpatialVector operator-(const SpatialVector &o) const
    {
        return {ang - o.ang, lin - o.lin};
    }
    SpatialVector operator-() const { return {-ang, -lin}; }
    SpatialVector operator*(double s) const { return {ang * s, lin * s}; }
    SpatialVector &operator+=(const SpatialVector &o)
    {
        ang += o.ang;
        lin += o.lin;
        return *this;
    }
    SpatialVector &operator-=(const SpatialVector &o)
    {
        ang -= o.ang;
        lin -= o.lin;
        return *this;
    }

    /** Scalar (dual) product: motion . force or force . motion. */
    double dot(const SpatialVector &o) const
    {
        return ang.dot(o.ang) + lin.dot(o.lin);
    }

    /** Largest absolute component. */
    double
    max_abs() const
    {
        double m = 0.0;
        for (double c : {ang.x, ang.y, ang.z, lin.x, lin.y, lin.z})
            m = std::max(m, std::abs(c));
        return m;
    }

    double operator[](std::size_t i) const
    {
        return i < 3 ? ang[i] : lin[i - 3];
    }
};

inline SpatialVector operator*(double s, const SpatialVector &v)
{
    return v * s;
}

/**
 * Motion cross product v x m (crm): the rate of change of motion vector
 * @p m when carried along motion @p v.
 */
inline SpatialVector
cross_motion(const SpatialVector &v, const SpatialVector &m)
{
    return {v.ang.cross(m.ang), v.ang.cross(m.lin) + v.lin.cross(m.ang)};
}

/**
 * Force cross product v x* f (crf): the rate of change of force vector
 * @p f when carried along motion @p v.  crf(v) == -crm(v)^T.
 */
inline SpatialVector
cross_force(const SpatialVector &v, const SpatialVector &f)
{
    return {v.ang.cross(f.ang) + v.lin.cross(f.lin), v.ang.cross(f.lin)};
}

} // namespace spatial
} // namespace roboshape

#endif // ROBOSHAPE_SPATIAL_SPATIAL_VECTOR_H
