/**
 * @file
 * Dense 6x6 spatial matrices.
 *
 * Used for composite rigid-body inertias (CRBA), articulated-body inertias
 * (ABA), and as the validation form of spatial transforms.  The per-link
 * robomorphic processing elements of the accelerator operate on exactly
 * these 6x6 quantities (paper Sec. 3.3).
 */

#ifndef ROBOSHAPE_SPATIAL_SPATIAL_MATRIX_H
#define ROBOSHAPE_SPATIAL_SPATIAL_MATRIX_H

#include <array>
#include <cstddef>

#include "spatial/spatial_vector.h"
#include "spatial/vec3.h"

namespace roboshape {
namespace spatial {

/** Row-major 6x6 matrix acting on spatial vectors. */
class SpatialMatrix
{
  public:
    SpatialMatrix() { m_.fill(0.0); }

    static SpatialMatrix identity();

    /** Builds from 3x3 quadrants [[tl, tr], [bl, br]]. */
    static SpatialMatrix from_blocks(const Mat3 &tl, const Mat3 &tr,
                                     const Mat3 &bl, const Mat3 &br);

    double operator()(std::size_t r, std::size_t c) const
    {
        return m_[r * 6 + c];
    }
    double &operator()(std::size_t r, std::size_t c) { return m_[r * 6 + c]; }

    SpatialMatrix operator+(const SpatialMatrix &o) const;
    SpatialMatrix operator-(const SpatialMatrix &o) const;
    SpatialMatrix operator*(const SpatialMatrix &o) const;
    SpatialMatrix operator*(double s) const;
    SpatialMatrix &operator+=(const SpatialMatrix &o);
    SpatialMatrix &operator-=(const SpatialMatrix &o);

    SpatialVector operator*(const SpatialVector &v) const;

    SpatialMatrix transposed() const;

    /** Largest absolute element. */
    double max_abs() const;

    /** Extracts a 3x3 quadrant; @p br0 and @p bc0 are 0 or 1. */
    Mat3 quadrant(std::size_t br0, std::size_t bc0) const;

  private:
    std::array<double, 36> m_;
};

} // namespace spatial
} // namespace roboshape

#endif // ROBOSHAPE_SPATIAL_SPATIAL_MATRIX_H
