/**
 * @file
 * Implementation of Plücker coordinate transforms.
 */

#include "spatial/spatial_transform.h"

namespace roboshape {
namespace spatial {

SpatialTransform
SpatialTransform::rotation(const Vec3 &a, double q)
{
    return SpatialTransform(Mat3::coordinate_rotation(a, q), Vec3::zero());
}

SpatialTransform
SpatialTransform::translation(const Vec3 &r)
{
    return SpatialTransform(Mat3::identity(), r);
}

SpatialVector
SpatialTransform::apply(const SpatialVector &v) const
{
    // [E w; E (v - r x w)]
    return {e_ * v.ang, e_ * (v.lin - r_.cross(v.ang))};
}

SpatialVector
SpatialTransform::apply_inverse(const SpatialVector &v) const
{
    // [E^T w; E^T v + r x (E^T w)]
    const Vec3 w = e_.transpose_mul(v.ang);
    return {w, e_.transpose_mul(v.lin) + r_.cross(w)};
}

SpatialVector
SpatialTransform::apply_to_force(const SpatialVector &f) const
{
    // [E (n - r x f); E f]
    return {e_ * (f.ang - r_.cross(f.lin)), e_ * f.lin};
}

SpatialVector
SpatialTransform::apply_transpose_to_force(const SpatialVector &f) const
{
    // [E^T n + r x (E^T f); E^T f]
    const Vec3 fl = e_.transpose_mul(f.lin);
    return {e_.transpose_mul(f.ang) + r_.cross(fl), fl};
}

SpatialTransform
SpatialTransform::operator*(const SpatialTransform &other) const
{
    // this: B->C with (E2, r2 in B); other: A->B with (E1, r1 in A).
    // Composite A->C: E = E2 E1, r = r1 + E1^T r2.
    return SpatialTransform(e_ * other.e_,
                            other.r_ + other.e_.transpose_mul(r_));
}

SpatialTransform
SpatialTransform::inverse() const
{
    return SpatialTransform(e_.transposed(), -(e_ * r_));
}

SpatialMatrix
SpatialTransform::to_matrix() const
{
    const Mat3 erx = e_ * Mat3::skew(r_);
    return SpatialMatrix::from_blocks(e_, Mat3::zero(), erx * -1.0, e_);
}

SpatialMatrix
SpatialTransform::to_force_matrix() const
{
    const Mat3 erx = e_ * Mat3::skew(r_);
    return SpatialMatrix::from_blocks(e_, erx * -1.0, Mat3::zero(), e_);
}

} // namespace spatial
} // namespace roboshape
