/**
 * @file
 * Plücker coordinate transforms between link frames.
 *
 * A SpatialTransform X carries motion vectors from frame A into frame B,
 * where B is displaced by @c r (expressed in A) and rotated by @c E
 * (E maps A coordinates into B coordinates):
 *
 *     X = [  E        0 ]
 *         [ -E rx     E ]
 *
 * Force vectors transform by the dual X* = X^-T.  The compact (E, r) storage
 * avoids materializing 6x6 matrices on the hot dynamics paths; explicit
 * matrix conversions exist for validation.
 */

#ifndef ROBOSHAPE_SPATIAL_SPATIAL_TRANSFORM_H
#define ROBOSHAPE_SPATIAL_SPATIAL_TRANSFORM_H

#include "spatial/spatial_matrix.h"
#include "spatial/spatial_vector.h"
#include "spatial/vec3.h"

namespace roboshape {
namespace spatial {

class SpatialTransform
{
  public:
    /** Identity transform. */
    SpatialTransform() : e_(Mat3::identity()) {}

    /**
     * @param e rotation taking A coordinates to B coordinates.
     * @param r position of B's origin expressed in A coordinates.
     */
    SpatialTransform(const Mat3 &e, const Vec3 &r) : e_(e), r_(r) {}

    /** Pure rotation of angle @p q about unit axis @p a. */
    static SpatialTransform rotation(const Vec3 &a, double q);

    /** Pure translation by @p r. */
    static SpatialTransform translation(const Vec3 &r);

    const Mat3 &rotation_matrix() const { return e_; }
    const Vec3 &translation_vector() const { return r_; }

    /** Motion vector transform: v_B = X v_A. */
    SpatialVector apply(const SpatialVector &v) const;

    /** Inverse motion transform: v_A = X^-1 v_B. */
    SpatialVector apply_inverse(const SpatialVector &v) const;

    /** Force transform: f_B = X* f_A. */
    SpatialVector apply_to_force(const SpatialVector &f) const;

    /**
     * Transpose applied to a force: f_A = X^T f_B.  This is the backward
     * (child-to-parent) force propagation step of RNEA.
     */
    SpatialVector apply_transpose_to_force(const SpatialVector &f) const;

    /**
     * Composition: (this * other) first applies @p other, then this.
     * If other: A->B and this: B->C, the result maps A->C.
     */
    SpatialTransform operator*(const SpatialTransform &other) const;

    /** Inverse transform (B->A). */
    SpatialTransform inverse() const;

    /** Dense 6x6 motion-transform matrix (for tests and codegen). */
    SpatialMatrix to_matrix() const;

    /** Dense 6x6 force-transform matrix X* (for tests). */
    SpatialMatrix to_force_matrix() const;

  private:
    Mat3 e_; ///< Rotation: A coordinates -> B coordinates.
    Vec3 r_; ///< Origin of B expressed in A coordinates.
};

} // namespace spatial
} // namespace roboshape

#endif // ROBOSHAPE_SPATIAL_SPATIAL_TRANSFORM_H
