/**
 * @file
 * Implementation of dense 6x6 spatial matrices.
 */

#include "spatial/spatial_matrix.h"

#include <cmath>

namespace roboshape {
namespace spatial {

SpatialMatrix
SpatialMatrix::identity()
{
    SpatialMatrix e;
    for (std::size_t i = 0; i < 6; ++i)
        e(i, i) = 1.0;
    return e;
}

SpatialMatrix
SpatialMatrix::from_blocks(const Mat3 &tl, const Mat3 &tr, const Mat3 &bl,
                           const Mat3 &br)
{
    SpatialMatrix out;
    for (std::size_t r = 0; r < 3; ++r) {
        for (std::size_t c = 0; c < 3; ++c) {
            out(r, c) = tl(r, c);
            out(r, c + 3) = tr(r, c);
            out(r + 3, c) = bl(r, c);
            out(r + 3, c + 3) = br(r, c);
        }
    }
    return out;
}

SpatialMatrix
SpatialMatrix::operator+(const SpatialMatrix &o) const
{
    SpatialMatrix out;
    for (std::size_t i = 0; i < 36; ++i)
        out.m_[i] = m_[i] + o.m_[i];
    return out;
}

SpatialMatrix
SpatialMatrix::operator-(const SpatialMatrix &o) const
{
    SpatialMatrix out;
    for (std::size_t i = 0; i < 36; ++i)
        out.m_[i] = m_[i] - o.m_[i];
    return out;
}

SpatialMatrix
SpatialMatrix::operator*(const SpatialMatrix &o) const
{
    SpatialMatrix out;
    for (std::size_t r = 0; r < 6; ++r)
        for (std::size_t k = 0; k < 6; ++k) {
            const double a = (*this)(r, k);
            if (a == 0.0)
                continue;
            for (std::size_t c = 0; c < 6; ++c)
                out(r, c) += a * o(k, c);
        }
    return out;
}

SpatialMatrix
SpatialMatrix::operator*(double s) const
{
    SpatialMatrix out;
    for (std::size_t i = 0; i < 36; ++i)
        out.m_[i] = m_[i] * s;
    return out;
}

SpatialMatrix &
SpatialMatrix::operator+=(const SpatialMatrix &o)
{
    for (std::size_t i = 0; i < 36; ++i)
        m_[i] += o.m_[i];
    return *this;
}

SpatialMatrix &
SpatialMatrix::operator-=(const SpatialMatrix &o)
{
    for (std::size_t i = 0; i < 36; ++i)
        m_[i] -= o.m_[i];
    return *this;
}

SpatialVector
SpatialMatrix::operator*(const SpatialVector &v) const
{
    SpatialVector out;
    const std::array<double, 6> in{v.ang.x, v.ang.y, v.ang.z,
                                   v.lin.x, v.lin.y, v.lin.z};
    std::array<double, 6> res{};
    for (std::size_t r = 0; r < 6; ++r)
        for (std::size_t c = 0; c < 6; ++c)
            res[r] += (*this)(r, c) * in[c];
    out.ang = {res[0], res[1], res[2]};
    out.lin = {res[3], res[4], res[5]};
    return out;
}

SpatialMatrix
SpatialMatrix::transposed() const
{
    SpatialMatrix out;
    for (std::size_t r = 0; r < 6; ++r)
        for (std::size_t c = 0; c < 6; ++c)
            out(c, r) = (*this)(r, c);
    return out;
}

double
SpatialMatrix::max_abs() const
{
    double m = 0.0;
    for (double x : m_)
        m = std::max(m, std::abs(x));
    return m;
}

Mat3
SpatialMatrix::quadrant(std::size_t br0, std::size_t bc0) const
{
    Mat3 out;
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            out(r, c) = (*this)(br0 * 3 + r, bc0 * 3 + c);
    return out;
}

} // namespace spatial
} // namespace roboshape
