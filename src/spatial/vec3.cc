/**
 * @file
 * Implementation of 3-D primitives.
 */

#include "spatial/vec3.h"

namespace roboshape {
namespace spatial {

Mat3
Mat3::coordinate_rotation(const Vec3 &a, double q)
{
    // Rodrigues rotation of vectors: R = I + sin(q) ax + (1-cos(q)) ax^2,
    // then transpose to get the coordinate transform E = R^T.
    const Mat3 ax = skew(a);
    const Mat3 ax2 = ax * ax;
    Mat3 r = identity();
    r += ax * std::sin(q);
    r += ax2 * (1.0 - std::cos(q));
    return r.transposed();
}

Mat3
Mat3::operator+(const Mat3 &o) const
{
    Mat3 out;
    for (std::size_t i = 0; i < 9; ++i)
        out.m[i] = m[i] + o.m[i];
    return out;
}

Mat3
Mat3::operator-(const Mat3 &o) const
{
    Mat3 out;
    for (std::size_t i = 0; i < 9; ++i)
        out.m[i] = m[i] - o.m[i];
    return out;
}

Mat3
Mat3::operator*(double s) const
{
    Mat3 out;
    for (std::size_t i = 0; i < 9; ++i)
        out.m[i] = m[i] * s;
    return out;
}

Mat3
Mat3::operator*(const Mat3 &o) const
{
    Mat3 out;
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            out(r, c) = (*this)(r, 0) * o(0, c) + (*this)(r, 1) * o(1, c) +
                        (*this)(r, 2) * o(2, c);
    return out;
}

Vec3
Mat3::operator*(const Vec3 &v) const
{
    return {(*this)(0, 0) * v.x + (*this)(0, 1) * v.y + (*this)(0, 2) * v.z,
            (*this)(1, 0) * v.x + (*this)(1, 1) * v.y + (*this)(1, 2) * v.z,
            (*this)(2, 0) * v.x + (*this)(2, 1) * v.y + (*this)(2, 2) * v.z};
}

Mat3 &
Mat3::operator+=(const Mat3 &o)
{
    for (std::size_t i = 0; i < 9; ++i)
        m[i] += o.m[i];
    return *this;
}

Mat3
Mat3::transposed() const
{
    Mat3 out;
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            out(c, r) = (*this)(r, c);
    return out;
}

Vec3
Mat3::transpose_mul(const Vec3 &v) const
{
    return {(*this)(0, 0) * v.x + (*this)(1, 0) * v.y + (*this)(2, 0) * v.z,
            (*this)(0, 1) * v.x + (*this)(1, 1) * v.y + (*this)(2, 1) * v.z,
            (*this)(0, 2) * v.x + (*this)(1, 2) * v.y + (*this)(2, 2) * v.z};
}

} // namespace spatial
} // namespace roboshape
