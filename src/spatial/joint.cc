/**
 * @file
 * Implementation of joint models.
 */

#include "spatial/joint.h"

#include <stdexcept>

namespace roboshape {
namespace spatial {

JointType
joint_type_from_string(const std::string &s)
{
    if (s == "revolute" || s == "continuous")
        return JointType::kRevolute;
    if (s == "prismatic")
        return JointType::kPrismatic;
    if (s == "fixed")
        return JointType::kFixed;
    throw std::invalid_argument("unsupported joint type: " + s);
}

const char *
to_string(JointType t)
{
    switch (t) {
      case JointType::kRevolute:
        return "revolute";
      case JointType::kPrismatic:
        return "prismatic";
      case JointType::kFixed:
        return "fixed";
    }
    return "?";
}

SpatialTransform
JointModel::transform(double q) const
{
    switch (type_) {
      case JointType::kRevolute:
        return SpatialTransform::rotation(axis_, q);
      case JointType::kPrismatic:
        return SpatialTransform::translation(axis_ * q);
      case JointType::kFixed:
        return SpatialTransform();
    }
    return SpatialTransform();
}

SpatialVector
JointModel::motion_subspace() const
{
    switch (type_) {
      case JointType::kRevolute:
        return {axis_, Vec3::zero()};
      case JointType::kPrismatic:
        return {Vec3::zero(), axis_};
      case JointType::kFixed:
        return SpatialVector::zero();
    }
    return SpatialVector::zero();
}

} // namespace spatial
} // namespace roboshape
