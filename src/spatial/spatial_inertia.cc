/**
 * @file
 * Implementation of rigid-body spatial inertia.
 */

#include "spatial/spatial_inertia.h"

#include "spatial/spatial_transform.h"

namespace roboshape {
namespace spatial {

SpatialInertia
SpatialInertia::from_mass_com_inertia(double mass, const Vec3 &com,
                                      const Mat3 &inertia_at_com)
{
    const Mat3 cx = Mat3::skew(com);
    // Parallel-axis shift of the rotational inertia to the frame origin:
    // I_bar = I_c + m * cx * cx^T  (cx^T == -cx).
    const Mat3 ibar = inertia_at_com + (cx * cx.transposed()) * mass;
    return SpatialInertia(mass, com * mass, ibar);
}

SpatialVector
SpatialInertia::apply(const SpatialVector &v) const
{
    return {ibar_ * v.ang + h_.cross(v.lin), v.lin * mass_ - h_.cross(v.ang)};
}

SpatialMatrix
SpatialInertia::to_matrix() const
{
    const Mat3 hx = Mat3::skew(h_);
    return SpatialMatrix::from_blocks(ibar_, hx, hx.transposed(),
                                      Mat3::identity() * mass_);
}

SpatialInertia
SpatialInertia::from_matrix(const SpatialMatrix &m)
{
    const Mat3 hx = m.quadrant(0, 1);
    const Vec3 h{hx(2, 1), hx(0, 2), hx(1, 0)};
    return SpatialInertia(m(3, 3), h, m.quadrant(0, 0));
}

SpatialInertia
SpatialInertia::expressed_in_parent(const SpatialTransform &x_parent_to_child)
    const
{
    const SpatialMatrix x = x_parent_to_child.to_matrix();
    return from_matrix(x.transposed() * to_matrix() * x);
}

} // namespace spatial
} // namespace roboshape
