/**
 * @file
 * Fixed-size 3-D vector and 3x3 matrix primitives.
 *
 * These are the scalar building blocks of the spatial (6-D) algebra in
 * Featherstone's formulation (Rigid Body Dynamics Algorithms, 2008), which
 * underpins every dynamics kernel in the library.
 */

#ifndef ROBOSHAPE_SPATIAL_VEC3_H
#define ROBOSHAPE_SPATIAL_VEC3_H

#include <array>
#include <cmath>
#include <cstddef>

namespace roboshape {
namespace spatial {

/** 3-D vector. */
struct Vec3
{
    double x = 0.0, y = 0.0, z = 0.0;

    constexpr Vec3() = default;
    constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

    static constexpr Vec3 zero() { return {}; }
    static constexpr Vec3 unit_x() { return {1.0, 0.0, 0.0}; }
    static constexpr Vec3 unit_y() { return {0.0, 1.0, 0.0}; }
    static constexpr Vec3 unit_z() { return {0.0, 0.0, 1.0}; }

    constexpr Vec3 operator+(const Vec3 &o) const
    {
        return {x + o.x, y + o.y, z + o.z};
    }
    constexpr Vec3 operator-(const Vec3 &o) const
    {
        return {x - o.x, y - o.y, z - o.z};
    }
    constexpr Vec3 operator-() const { return {-x, -y, -z}; }
    constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
    Vec3 &operator+=(const Vec3 &o)
    {
        x += o.x;
        y += o.y;
        z += o.z;
        return *this;
    }
    Vec3 &operator-=(const Vec3 &o)
    {
        x -= o.x;
        y -= o.y;
        z -= o.z;
        return *this;
    }

    constexpr double dot(const Vec3 &o) const
    {
        return x * o.x + y * o.y + z * o.z;
    }

    /** Cross product this x o. */
    constexpr Vec3 cross(const Vec3 &o) const
    {
        return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
    }

    double norm() const { return std::sqrt(dot(*this)); }

    /** @return this / |this|; the caller guarantees a nonzero norm. */
    Vec3 normalized() const
    {
        const double n = norm();
        return {x / n, y / n, z / n};
    }

    double operator[](std::size_t i) const { return i == 0 ? x : (i == 1 ? y : z); }
};

inline constexpr Vec3 operator*(double s, const Vec3 &v) { return v * s; }

/** Row-major 3x3 matrix. */
struct Mat3
{
    std::array<double, 9> m{};

    constexpr double operator()(std::size_t r, std::size_t c) const
    {
        return m[r * 3 + c];
    }
    constexpr double &operator()(std::size_t r, std::size_t c)
    {
        return m[r * 3 + c];
    }

    static constexpr Mat3 zero() { return {}; }

    static constexpr Mat3
    identity()
    {
        Mat3 e;
        e(0, 0) = e(1, 1) = e(2, 2) = 1.0;
        return e;
    }

    /** Skew-symmetric cross-product matrix: skew(v) * u == v x u. */
    static constexpr Mat3
    skew(const Vec3 &v)
    {
        Mat3 s;
        s(0, 1) = -v.z;
        s(0, 2) = v.y;
        s(1, 0) = v.z;
        s(1, 2) = -v.x;
        s(2, 0) = -v.y;
        s(2, 1) = v.x;
        return s;
    }

    /**
     * Coordinate-transform rotation for a rotation of angle @p q about unit
     * axis @p a (Rodrigues, transposed to Featherstone's convention: the
     * returned E maps parent coordinates into the rotated child frame).
     */
    static Mat3 coordinate_rotation(const Vec3 &a, double q);

    Mat3 operator+(const Mat3 &o) const;
    Mat3 operator-(const Mat3 &o) const;
    Mat3 operator*(double s) const;
    Mat3 operator*(const Mat3 &o) const;
    Vec3 operator*(const Vec3 &v) const;
    Mat3 &operator+=(const Mat3 &o);

    Mat3 transposed() const;

    /** Applies the transpose without materializing it: E^T * v. */
    Vec3 transpose_mul(const Vec3 &v) const;
};

} // namespace spatial
} // namespace roboshape

#endif // ROBOSHAPE_SPATIAL_VEC3_H
