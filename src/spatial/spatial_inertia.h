/**
 * @file
 * Rigid-body spatial inertia.
 *
 * Stored in Featherstone's compact form (mass m, first moment h = m*c,
 * rotational inertia I about the link-frame origin); maps spatial motion to
 * spatial force: f = I_rb * v.
 */

#ifndef ROBOSHAPE_SPATIAL_SPATIAL_INERTIA_H
#define ROBOSHAPE_SPATIAL_SPATIAL_INERTIA_H

#include "spatial/spatial_matrix.h"
#include "spatial/spatial_vector.h"
#include "spatial/vec3.h"

namespace roboshape {
namespace spatial {

class SpatialInertia
{
  public:
    /** Zero inertia (massless body). */
    SpatialInertia() = default;

    /**
     * @param mass body mass.
     * @param h    first mass moment m * com, in link coordinates.
     * @param ibar rotational inertia about the link-frame origin.
     */
    SpatialInertia(double mass, const Vec3 &h, const Mat3 &ibar)
        : mass_(mass), h_(h), ibar_(ibar)
    {
    }

    /**
     * Builds from mass, center-of-mass offset, and rotational inertia
     * about the center of mass (the URDF convention).
     */
    static SpatialInertia from_mass_com_inertia(double mass, const Vec3 &com,
                                                const Mat3 &inertia_at_com);

    double mass() const { return mass_; }
    const Vec3 &h() const { return h_; }
    const Mat3 &ibar() const { return ibar_; }

    /** f = I_rb * v. */
    SpatialVector apply(const SpatialVector &v) const;

    SpatialInertia operator+(const SpatialInertia &o) const
    {
        return {mass_ + o.mass_, h_ + o.h_, ibar_ + o.ibar_};
    }

    /** Dense 6x6 form [[I, hx], [hx^T, m*1]]. */
    SpatialMatrix to_matrix() const;

    /**
     * Extracts the compact form from a dense rigid-body inertia matrix.
     * The input must have rigid-body structure (symmetric, scalar mass
     * block); only the structurally determined entries are read.
     */
    static SpatialInertia from_matrix(const SpatialMatrix &m);

    /**
     * Re-expresses this inertia (given in child coordinates) in the parent
     * frame: I_parent = X^T I_child X, where @p x_parent_to_child is the
     * motion transform from parent to child.  This is the composite-inertia
     * propagation step of CRBA and of fixed-joint folding.
     */
    SpatialInertia
    expressed_in_parent(const class SpatialTransform &x_parent_to_child)
        const;

  private:
    double mass_ = 0.0;
    Vec3 h_;
    Mat3 ibar_{};
};

} // namespace spatial
} // namespace roboshape

#endif // ROBOSHAPE_SPATIAL_SPATIAL_INERTIA_H
