/**
 * @file
 * Implementation of the interconnect model.
 */

#include "io/link_model.h"

namespace roboshape {
namespace io {

const LinkModel &
fpga_link_gen1()
{
    // Connectal request/indication pipes at PCIe Gen-1-level efficiency.
    static const LinkModel kLink{"Connectal PCIe (Gen1-level)", 6.0, 1.0};
    return kLink;
}

const LinkModel &
pcie_gen3()
{
    // Roughly 3x the effective rate of the Gen-1-level stack (paper
    // Sec. 5.2) with a leaner driver path.
    static const LinkModel kLink{"PCIe Gen3", 18.0, 0.5};
    return kLink;
}

double
roundtrip_us(const LinkModel &link, std::int64_t in_bits_per_step,
             std::int64_t out_bits_per_step, std::size_t steps,
             double compute_us)
{
    const auto n = static_cast<std::int64_t>(steps);
    // Batched steps share one transfer each way.
    return link.transfer_us(in_bits_per_step * n) + compute_us +
           link.transfer_us(out_bits_per_step * n);
}

} // namespace io
} // namespace roboshape
