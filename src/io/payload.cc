/**
 * @file
 * Implementation of I/O payload accounting.
 */

#include "io/payload.h"

namespace roboshape {
namespace io {

PayloadBits
dense_payload(std::size_t num_links)
{
    const std::int64_t n = static_cast<std::int64_t>(num_links);
    PayloadBits p;
    p.vector_bits = kBitsPerWord * kVectorsPerStep * n;
    p.matrix_bits = kBitsPerWord * kMatricesPerStep * n * n;
    return p;
}

PayloadBits
sparse_payload(const topology::TopologyInfo &topo)
{
    const auto mask = topo.mass_matrix_mask();
    std::int64_t nnz = 0;
    for (const auto &row : mask)
        for (bool b : row)
            nnz += b ? 1 : 0;

    const std::int64_t n = static_cast<std::int64_t>(topo.num_links());
    PayloadBits p;
    p.vector_bits = kBitsPerWord * kVectorsPerStep * n;
    p.matrix_bits = kBitsPerWord * kMatricesPerStep * nnz;
    return p;
}

namespace {

std::int64_t
pattern_nonzeros(const topology::TopologyInfo &topo)
{
    const auto mask = topo.mass_matrix_mask();
    std::int64_t nnz = 0;
    for (const auto &row : mask)
        for (bool b : row)
            nnz += b ? 1 : 0;
    return nnz;
}

} // namespace

DirectionalPayload
dense_directional(std::size_t num_links)
{
    const std::int64_t n = static_cast<std::int64_t>(num_links);
    DirectionalPayload p;
    p.in_bits = kBitsPerWord * (3 * n + n * n);
    p.out_bits = kBitsPerWord * (n + 2 * n * n);
    return p;
}

DirectionalPayload
sparse_directional(const topology::TopologyInfo &topo)
{
    const std::int64_t n = static_cast<std::int64_t>(topo.num_links());
    const std::int64_t nnz = pattern_nonzeros(topo);
    DirectionalPayload p;
    p.in_bits = kBitsPerWord * (3 * n + nnz);
    p.out_bits = kBitsPerWord * (n + 2 * nnz);
    return p;
}

double
compression_ratio(const topology::TopologyInfo &topo)
{
    return static_cast<double>(dense_payload(topo.num_links()).total()) /
           static_cast<double>(sparse_payload(topo).total());
}

} // namespace io
} // namespace roboshape
