/**
 * @file
 * Coprocessor I/O payload accounting (paper Sec. 5.2).
 *
 * Per dynamics-gradient time step the host exchanges four per-link vectors
 * (q, qd, qdd in; tau back) and three N x N matrices (the mass matrix in;
 * the two partial-derivative matrices out).  With 32-bit words this
 * reproduces the paper's matrix share of total I/O — 84% / 90% / 92% for
 * iiwa / HyQ / Baxter — and, with topology-aware zero skipping, the 3.1x
 * (HyQ) and 2.1x (Baxter) packet-size reductions.
 */

#ifndef ROBOSHAPE_IO_PAYLOAD_H
#define ROBOSHAPE_IO_PAYLOAD_H

#include <cstdint>

#include "topology/topology_info.h"

namespace roboshape {
namespace io {

/** Bits per transferred scalar (single-precision words). */
inline constexpr std::int64_t kBitsPerWord = 32;

/** Per-link vector quantities exchanged each step (q, qd, qdd, tau). */
inline constexpr std::int64_t kVectorsPerStep = 4;

/** N x N matrices exchanged each step (M in; dq and dqd partials out). */
inline constexpr std::int64_t kMatricesPerStep = 3;

/** Bit counts of one time step's I/O. */
struct PayloadBits
{
    std::int64_t vector_bits = 0; ///< Per-link quantities.
    std::int64_t matrix_bits = 0; ///< Topology-based N x N matrices.

    std::int64_t total() const { return vector_bits + matrix_bits; }

    /** Fraction of the step's bits occupied by the N^2 matrices. */
    double matrix_share() const
    {
        return static_cast<double>(matrix_bits) /
               static_cast<double>(total());
    }
};

/** Dense payload of one time step for an N-link robot. */
PayloadBits dense_payload(std::size_t num_links);

/**
 * Sparse payload: matrix transfers skip structurally-zero entries of the
 * mass matrix / partial-derivative sparsity pattern (paper Sec. 3.3,
 * "Sparse I/O Data").  No index metadata is needed because both endpoints
 * derive the same pattern from the robot topology.
 */
PayloadBits sparse_payload(const topology::TopologyInfo &topo);

/** Dense-over-sparse packet size ratio (3.1x for HyQ, 2.1x for Baxter). */
double compression_ratio(const topology::TopologyInfo &topo);

/** Per-direction bit counts of one time step. */
struct DirectionalPayload
{
    std::int64_t in_bits = 0;  ///< Host -> device: q, qd, qdd, M.
    std::int64_t out_bits = 0; ///< Device -> host: tau, two partials.
};

/** Direction split without zero skipping. */
DirectionalPayload dense_directional(std::size_t num_links);

/** Direction split with topology-aware zero skipping on the matrices. */
DirectionalPayload sparse_directional(const topology::TopologyInfo &topo);

} // namespace io
} // namespace roboshape

#endif // ROBOSHAPE_IO_PAYLOAD_H
