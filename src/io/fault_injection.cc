/**
 * @file
 * Implementation of the deterministic URDF fault-injection mutator.
 *
 * All mutations operate on the raw text through light lexical scans (never
 * a real XML parse) so they stay applicable to already-mutated documents:
 * the second or third mutation of a round regularly lands on top of a
 * previous one, which is exactly the compounding-corruption behaviour a
 * hostile fleet produces.
 */

#include "io/fault_injection.h"

#include <algorithm>
#include <cctype>

namespace roboshape {
namespace io {

namespace {

/** Hard cap on mutated-document size (anti pathological growth). */
constexpr std::size_t kMaxOutputBytes = 1u << 20;

/** A [begin, end) span of the document. */
struct Span
{
    std::size_t begin;
    std::size_t end;
};

bool
is_name_char(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':';
}

/** Spans of every tag name (open and close tags). */
std::vector<Span>
find_tag_names(const std::string &s)
{
    std::vector<Span> out;
    for (std::size_t i = 0; i + 1 < s.size(); ++i) {
        if (s[i] != '<')
            continue;
        std::size_t j = i + 1;
        if (j < s.size() && s[j] == '/')
            ++j;
        const std::size_t name_begin = j;
        while (j < s.size() && is_name_char(s[j]))
            ++j;
        if (j > name_begin)
            out.push_back({name_begin, j});
    }
    return out;
}

/** Spans of whole ` name="value"` attribute chunks (leading space incl.). */
std::vector<Span>
find_attributes(const std::string &s)
{
    std::vector<Span> out;
    for (std::size_t i = 0; i + 3 < s.size(); ++i) {
        if (!std::isspace(static_cast<unsigned char>(s[i])))
            continue;
        std::size_t j = i + 1;
        const std::size_t name_begin = j;
        while (j < s.size() && is_name_char(s[j]))
            ++j;
        if (j == name_begin || j >= s.size() || s[j] != '=')
            continue;
        ++j;
        if (j >= s.size() || (s[j] != '"' && s[j] != '\''))
            continue;
        const char quote = s[j];
        ++j;
        while (j < s.size() && s[j] != quote && s[j] != '<' && s[j] != '\n')
            ++j;
        if (j >= s.size() || s[j] != quote)
            continue;
        out.push_back({i, j + 1});
    }
    return out;
}

/** Spans of numeric tokens inside quoted attribute values. */
std::vector<Span>
find_numeric_tokens(const std::string &s)
{
    std::vector<Span> out;
    bool in_quote = false;
    char quote = '\0';
    for (std::size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        if (!in_quote) {
            if (c == '"' || c == '\'') {
                in_quote = true;
                quote = c;
            }
            continue;
        }
        if (c == quote) {
            in_quote = false;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
            c == '+' || c == '.') {
            const std::size_t begin = i;
            while (i < s.size() &&
                   (std::isdigit(static_cast<unsigned char>(s[i])) ||
                    s[i] == '-' || s[i] == '+' || s[i] == '.' ||
                    s[i] == 'e' || s[i] == 'E'))
                ++i;
            if (i > begin + 0)
                out.push_back({begin, i});
            --i; // loop increment
        }
    }
    return out;
}

void
mutate_truncate(std::string &s, FaultRng &rng)
{
    if (s.empty())
        return;
    s.resize(rng.below(s.size()));
}

void
mutate_tag_swap(std::string &s, FaultRng &rng)
{
    const auto tags = find_tag_names(s);
    if (tags.size() < 2)
        return;
    const Span a = tags[rng.below(tags.size())];
    const Span b = tags[rng.below(tags.size())];
    if (a.begin == b.begin)
        return;
    const Span first = a.begin < b.begin ? a : b;
    const Span second = a.begin < b.begin ? b : a;
    if (first.end > second.begin)
        return; // overlapping, skip
    const std::string first_name = s.substr(first.begin,
                                            first.end - first.begin);
    const std::string second_name = s.substr(second.begin,
                                             second.end - second.begin);
    // Replace back-to-front so earlier offsets stay valid.
    s.replace(second.begin, second_name.size(), first_name);
    s.replace(first.begin, first_name.size(), second_name);
}

void
mutate_attribute_delete(std::string &s, FaultRng &rng)
{
    const auto attrs = find_attributes(s);
    if (attrs.empty())
        return;
    const Span a = attrs[rng.below(attrs.size())];
    s.erase(a.begin, a.end - a.begin);
}

void
mutate_attribute_duplicate(std::string &s, FaultRng &rng)
{
    const auto attrs = find_attributes(s);
    if (attrs.empty())
        return;
    const Span a = attrs[rng.below(attrs.size())];
    s.insert(a.end, s.substr(a.begin, a.end - a.begin));
}

void
mutate_numeric_garbage(std::string &s, FaultRng &rng)
{
    static const char *kGarbage[] = {
        "nan",     "inf",       "-inf",  "1e999999", "-1e999999",
        "1.5abc",  "0x12",      "--3",   ".",        "1 2",
        "",        "1e",        "+-1",   "0,5",      "999999999999999999999",
        "3.d",     "\xF0\x9F\xA4\x96",   "1.0e+",    "NaN(2)",
    };
    const auto nums = find_numeric_tokens(s);
    if (nums.empty())
        return;
    const Span n = nums[rng.below(nums.size())];
    const char *g =
        kGarbage[rng.below(sizeof(kGarbage) / sizeof(kGarbage[0]))];
    s.replace(n.begin, n.end - n.begin, g);
}

void
mutate_byte_corruption(std::string &s, FaultRng &rng)
{
    if (s.empty())
        return;
    const std::size_t count = 1 + rng.below(8);
    for (std::size_t i = 0; i < count; ++i)
        s[rng.below(s.size())] = static_cast<char>(rng.below(256));
}

void
mutate_deep_nesting(std::string &s, FaultRng &rng)
{
    // 64..1063 nested open tags: straddles the parser's depth cap from
    // both sides.  Half the time they're left unclosed (truncation-like).
    const std::size_t depth = 64 + rng.below(1000);
    const bool closed = rng.below(2) == 0;
    std::string nest;
    nest.reserve(depth * (closed ? 7 : 3));
    for (std::size_t i = 0; i < depth; ++i)
        nest += "<d>";
    if (closed)
        for (std::size_t i = 0; i < depth; ++i)
            nest += "</d>";
    const std::size_t at = s.empty() ? 0 : rng.below(s.size());
    s.insert(at, nest);
}

void
mutate_entity_abuse(std::string &s, FaultRng &rng)
{
    static const char *kEntities[] = {
        "&bomb;",          "&amp",          "&;",
        "&#0;",            "&#xD800;",      "&#xFFFFFFFFF;",
        "&#;",             "&#x;",          "&lolololololololololol;",
        "&lt;&lt;&lt;&lt;&lt;&lt;&lt;&lt;", "&#x110000;",
    };
    const char *e =
        kEntities[rng.below(sizeof(kEntities) / sizeof(kEntities[0]))];
    const std::size_t at = s.empty() ? 0 : rng.below(s.size());
    s.insert(at, e);
}

void
mutate_element_duplication(std::string &s, FaultRng &rng)
{
    // Pick a '<' and duplicate a bounded chunk starting there; lexical
    // rather than structural, so it also produces duplicate links/joints.
    std::vector<std::size_t> opens;
    for (std::size_t i = 0; i < s.size(); ++i)
        if (s[i] == '<')
            opens.push_back(i);
    if (opens.empty())
        return;
    const std::size_t begin = opens[rng.below(opens.size())];
    // End at a '>' between 1 and 400 bytes later (or end of document).
    std::size_t end = begin;
    const std::size_t limit = std::min(s.size(), begin + 400);
    for (std::size_t i = begin; i < limit; ++i)
        if (s[i] == '>')
            end = i + 1;
    if (end <= begin)
        end = limit;
    s.insert(end, s.substr(begin, end - begin));
}

void
mutate_close_tag_corruption(std::string &s, FaultRng &rng)
{
    std::vector<std::size_t> closes;
    for (std::size_t i = 0; i + 2 < s.size(); ++i)
        if (s[i] == '<' && s[i + 1] == '/')
            closes.push_back(i);
    if (closes.empty())
        return;
    const std::size_t at = closes[rng.below(closes.size())] + 2;
    if (at < s.size() && is_name_char(s[at]))
        s[at] = static_cast<char>('a' + rng.below(26));
}

} // namespace

const char *
mutation_name(MutationKind kind)
{
    switch (kind) {
      case MutationKind::kTruncate:
        return "truncate";
      case MutationKind::kTagSwap:
        return "tag-swap";
      case MutationKind::kAttributeDelete:
        return "attribute-delete";
      case MutationKind::kAttributeDuplicate:
        return "attribute-duplicate";
      case MutationKind::kNumericGarbage:
        return "numeric-garbage";
      case MutationKind::kByteCorruption:
        return "byte-corruption";
      case MutationKind::kDeepNesting:
        return "deep-nesting";
      case MutationKind::kEntityAbuse:
        return "entity-abuse";
      case MutationKind::kElementDuplication:
        return "element-duplication";
      case MutationKind::kCloseTagCorruption:
        return "close-tag-corruption";
      case MutationKind::kCount:
        break;
    }
    return "?";
}

MutationResult
mutate_urdf(const std::string &seed_text, std::uint64_t seed)
{
    FaultRng rng(seed);
    MutationResult result;
    result.text = seed_text;
    const std::size_t rounds = 1 + rng.below(3);
    for (std::size_t r = 0; r < rounds; ++r) {
        const auto kind = static_cast<MutationKind>(
            rng.below(static_cast<std::size_t>(MutationKind::kCount)));
        switch (kind) {
          case MutationKind::kTruncate:
            mutate_truncate(result.text, rng);
            break;
          case MutationKind::kTagSwap:
            mutate_tag_swap(result.text, rng);
            break;
          case MutationKind::kAttributeDelete:
            mutate_attribute_delete(result.text, rng);
            break;
          case MutationKind::kAttributeDuplicate:
            mutate_attribute_duplicate(result.text, rng);
            break;
          case MutationKind::kNumericGarbage:
            mutate_numeric_garbage(result.text, rng);
            break;
          case MutationKind::kByteCorruption:
            mutate_byte_corruption(result.text, rng);
            break;
          case MutationKind::kDeepNesting:
            mutate_deep_nesting(result.text, rng);
            break;
          case MutationKind::kEntityAbuse:
            mutate_entity_abuse(result.text, rng);
            break;
          case MutationKind::kElementDuplication:
            mutate_element_duplication(result.text, rng);
            break;
          case MutationKind::kCloseTagCorruption:
            mutate_close_tag_corruption(result.text, rng);
            break;
          case MutationKind::kCount:
            break;
        }
        result.applied.push_back(kind);
        if (result.text.size() > kMaxOutputBytes)
            result.text.resize(kMaxOutputBytes);
    }
    return result;
}

} // namespace io
} // namespace roboshape
