/**
 * @file
 * Deterministic structure-aware fault injection for URDF/XML ingestion.
 *
 * The fuzz harness (tools/urdf_fuzz.cc) feeds well-formed robot-library
 * URDFs through this mutator and asserts the parser invariant: every input
 * yields either a RobotModel or a *typed* parse error — never a crash, a
 * hang, or a non-parser exception.  Mutations are structure-aware (they
 * find tags, attributes, and numeric tokens lexically) so they probe deep
 * parser states instead of failing at the first byte, and fully
 * deterministic: `mutate_urdf(text, seed)` is a pure function, so every
 * failure is reproducible from its seed.  See docs/INGESTION.md.
 */

#ifndef ROBOSHAPE_IO_FAULT_INJECTION_H
#define ROBOSHAPE_IO_FAULT_INJECTION_H

#include <cstdint>
#include <string>
#include <vector>

namespace roboshape {
namespace io {

/** Deterministic 64-bit PRNG (splitmix64; no global state). */
class FaultRng
{
  public:
    explicit FaultRng(std::uint64_t seed) : state_(seed) {}

    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, n); n must be > 0. */
    std::size_t
    below(std::size_t n)
    {
        return static_cast<std::size_t>(next() % n);
    }

  private:
    std::uint64_t state_;
};

/** The fault classes the mutator injects. */
enum class MutationKind
{
    kTruncate,            ///< Cut the document at a random byte.
    kTagSwap,             ///< Swap the names of two tags.
    kAttributeDelete,     ///< Remove one attribute.
    kAttributeDuplicate,  ///< Repeat an attribute on the same tag.
    kNumericGarbage,      ///< Replace a numeric token with garbage.
    kByteCorruption,      ///< Overwrite a few random bytes.
    kDeepNesting,         ///< Splice in hundreds of nested open tags.
    kEntityAbuse,         ///< Inject malformed/abusive entity references.
    kElementDuplication,  ///< Duplicate a whole element span.
    kCloseTagCorruption,  ///< Corrupt a closing-tag name.
    kCount,               ///< Number of kinds (not a mutation).
};

/** Human-readable name of @p kind. */
const char *mutation_name(MutationKind kind);

/** Outcome of one mutation round. */
struct MutationResult
{
    std::string text;                   ///< Mutated document.
    std::vector<MutationKind> applied;  ///< Kinds applied, in order.
};

/**
 * Applies 1-3 deterministic mutations to @p seed_text.  Pure function of
 * (seed_text, seed); the output is capped at ~1 MiB so adversarial growth
 * cannot stall the parser.
 */
MutationResult mutate_urdf(const std::string &seed_text, std::uint64_t seed);

} // namespace io
} // namespace roboshape

#endif // ROBOSHAPE_IO_FAULT_INJECTION_H
