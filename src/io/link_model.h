/**
 * @file
 * Host-coprocessor interconnect model (paper Sec. 5.2).
 *
 * The paper's FPGA rode a Connectal PCIe stack running at roughly PCIe
 * Gen-1 effective rates, about 3x slower than the Gen-3 link its GPU
 * baseline enjoyed.  Transfer time = payload / effective bandwidth plus a
 * fixed per-direction driver overhead.
 */

#ifndef ROBOSHAPE_IO_LINK_MODEL_H
#define ROBOSHAPE_IO_LINK_MODEL_H

#include <cstdint>
#include <string>

#include "io/payload.h"

namespace roboshape {
namespace io {

/** One direction-agnostic interconnect. */
struct LinkModel
{
    std::string name;
    double gbit_per_s = 1.0;       ///< Effective payload bandwidth.
    double per_transfer_us = 1.0;  ///< Fixed driver/DMA setup cost per
                                   ///< direction.

    /** Microseconds to move @p bits one way. */
    double
    transfer_us(std::int64_t bits) const
    {
        return per_transfer_us +
               static_cast<double>(bits) / (gbit_per_s * 1e3);
    }
};

/** Connectal over PCIe at Gen-1-level effective rates (the paper's FPGA
 *  deployment). */
const LinkModel &fpga_link_gen1();

/** The same stack at PCIe Gen-3 rates (the paper's proposed improvement
 *  and the GPU baseline's link). */
const LinkModel &pcie_gen3();

/**
 * Roundtrip latency of a batched coprocessor call.
 *
 * @param in_bits_per_step  host -> device payload of one time step.
 * @param out_bits_per_step device -> host payload of one time step.
 * @param steps             batch size (paper Sec. 5.2 demonstrates 4).
 * @param compute_us        total device compute latency for the batch.
 */
double roundtrip_us(const LinkModel &link, std::int64_t in_bits_per_step,
                    std::int64_t out_bits_per_step, std::size_t steps,
                    double compute_us);

} // namespace io
} // namespace roboshape

#endif // ROBOSHAPE_IO_LINK_MODEL_H
