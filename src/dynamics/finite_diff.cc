/**
 * @file
 * Implementation of finite-difference reference derivatives.
 */

#include "dynamics/finite_diff.h"

#include "dynamics/aba.h"

namespace roboshape {
namespace dynamics {

namespace {

/** Central difference of @p eval with respect to its perturbed argument. */
template <typename Eval>
linalg::Matrix
central_difference(std::size_t n, const linalg::Vector &x0, double eps,
                   Eval eval)
{
    linalg::Matrix jac(n, n);
    for (std::size_t j = 0; j < n; ++j) {
        linalg::Vector hi = x0, lo = x0;
        hi[j] += eps;
        lo[j] -= eps;
        const linalg::Vector fp = eval(hi);
        const linalg::Vector fm = eval(lo);
        for (std::size_t i = 0; i < n; ++i)
            jac(i, j) = (fp[i] - fm[i]) / (2.0 * eps);
    }
    return jac;
}

} // namespace

linalg::Matrix
fd_dtau_dq(const topology::RobotModel &model, const linalg::Vector &q,
           const linalg::Vector &qd, const linalg::Vector &qdd,
           const spatial::Vec3 &gravity, double eps)
{
    return central_difference(
        model.num_links(), q, eps,
        [&](const linalg::Vector &qx) {
            return rnea(model, qx, qd, qdd, gravity);
        });
}

linalg::Matrix
fd_dtau_dqd(const topology::RobotModel &model, const linalg::Vector &q,
            const linalg::Vector &qd, const linalg::Vector &qdd,
            const spatial::Vec3 &gravity, double eps)
{
    return central_difference(
        model.num_links(), qd, eps,
        [&](const linalg::Vector &qdx) {
            return rnea(model, q, qdx, qdd, gravity);
        });
}

linalg::Matrix
fd_dqdd_dq(const topology::RobotModel &model, const linalg::Vector &q,
           const linalg::Vector &qd, const linalg::Vector &tau,
           const spatial::Vec3 &gravity, double eps)
{
    return central_difference(
        model.num_links(), q, eps,
        [&](const linalg::Vector &qx) {
            return aba(model, qx, qd, tau, gravity);
        });
}

linalg::Matrix
fd_dqdd_dqd(const topology::RobotModel &model, const linalg::Vector &q,
            const linalg::Vector &qd, const linalg::Vector &tau,
            const spatial::Vec3 &gravity, double eps)
{
    return central_difference(
        model.num_links(), qd, eps,
        [&](const linalg::Vector &qdx) {
            return aba(model, q, qdx, tau, gravity);
        });
}

} // namespace dynamics
} // namespace roboshape
