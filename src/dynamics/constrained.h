/**
 * @file
 * Constrained forward dynamics for legged robots.
 *
 * The paper's motivating deployments are quadrupeds and humanoids whose
 * whole-body controllers solve *contact-constrained* dynamics [30, 34]:
 * stance feet are pinned, producing the KKT system
 *
 *     [ M  J^T ] [ qdd ]   [ tau - C ]
 *     [ J   0  ] [ -f  ] = [ -Jdot qd ]
 *
 * solved here by Schur complement on the (damped) contact-space operator
 * J M^-1 J^T.  Contacts pin the linear motion of a link's frame origin;
 * the Jacobian rows come from the kinematics module and the velocity-
 * product bias from a gravity-free, acceleration-free RNEA sweep.
 */

#ifndef ROBOSHAPE_DYNAMICS_CONSTRAINED_H
#define ROBOSHAPE_DYNAMICS_CONSTRAINED_H

#include <vector>

#include "dynamics/rnea.h"
#include "linalg/matrix.h"
#include "topology/robot_model.h"
#include "topology/topology_info.h"

namespace roboshape {
namespace dynamics {

/** One active point contact on a link. */
struct Contact
{
    std::size_t link = 0;
    /** Contact point in link coordinates (e.g. the foot tip). */
    spatial::Vec3 point;
};

/** Solution of the contact-constrained dynamics. */
struct ConstrainedDynamics
{
    linalg::Vector qdd;    ///< Joint accelerations.
    linalg::Vector forces; ///< Stacked 3-D contact forces, link-local
                           ///< coordinates, one triplet per contact.
    /** KKT residual ||M qdd + C - tau - J^T f||, a solution certificate. */
    double kkt_residual = 0.0;
    /** Constraint violation ||J qdd + Jdot qd||. */
    double constraint_residual = 0.0;
};

/**
 * Stacked 3 x N linear-velocity Jacobians of the contact links
 * (3 * contacts rows).
 */
linalg::Matrix contact_jacobian(const topology::RobotModel &model,
                                const linalg::Vector &q,
                                const std::vector<Contact> &contacts);

/**
 * Velocity-product bias Jdot * qd of the stacked contact constraint
 * (gravity-free spatial accelerations at qdd = 0).
 */
linalg::Vector contact_bias(const topology::RobotModel &model,
                            const linalg::Vector &q,
                            const linalg::Vector &qd,
                            const std::vector<Contact> &contacts);

/**
 * Solves contact-constrained forward dynamics.
 *
 * @param damping Tikhonov regularization of the contact-space operator,
 *        needed when contacts over-constrain the mechanism.
 */
ConstrainedDynamics constrained_forward_dynamics(
    const topology::RobotModel &model, const topology::TopologyInfo &topo,
    const linalg::Vector &q, const linalg::Vector &qd,
    const linalg::Vector &tau, const std::vector<Contact> &contacts,
    const spatial::Vec3 &gravity = kDefaultGravity,
    double damping = 1e-10);

} // namespace dynamics
} // namespace roboshape

#endif // ROBOSHAPE_DYNAMICS_CONSTRAINED_H
