/**
 * @file
 * Implementation of the Articulated Body Algorithm.
 */

#include "dynamics/aba.h"

#include <cassert>
#include <vector>

#include "spatial/spatial_matrix.h"
#include "spatial/spatial_transform.h"

namespace roboshape {
namespace dynamics {

using spatial::SpatialMatrix;
using spatial::SpatialTransform;
using spatial::SpatialVector;
using spatial::Vec3;
using spatial::cross_force;
using spatial::cross_motion;
using topology::kBaseParent;

namespace {

/** Outer product u * v^T of two spatial vectors. */
SpatialMatrix
outer(const SpatialVector &u, const SpatialVector &v)
{
    SpatialMatrix m;
    for (std::size_t r = 0; r < 6; ++r)
        for (std::size_t c = 0; c < 6; ++c)
            m(r, c) = u[r] * v[c];
    return m;
}

} // namespace

linalg::Vector
aba(const topology::RobotModel &model, const linalg::Vector &q,
    const linalg::Vector &qd, const linalg::Vector &tau,
    const Vec3 &gravity)
{
    const std::size_t n = model.num_links();
    assert(q.size() == n && qd.size() == n && tau.size() == n);

    std::vector<SpatialTransform> xup(n);
    std::vector<SpatialVector> s(n), v(n), c(n), pa(n), u_vec(n);
    std::vector<SpatialMatrix> ia(n);
    std::vector<double> d(n), u(n);

    // Pass 1: velocities and velocity-product terms.
    for (std::size_t i = 0; i < n; ++i) {
        const topology::Link &link = model.link(i);
        xup[i] = link.joint.transform(q[i]) * link.x_tree;
        s[i] = link.joint.motion_subspace();
        const SpatialVector vj = s[i] * qd[i];
        const int p = link.parent;
        v[i] = p == kBaseParent ? vj : xup[i].apply(v[p]) + vj;
        c[i] = p == kBaseParent ? SpatialVector::zero()
                                : cross_motion(v[i], vj);
        ia[i] = link.inertia.to_matrix();
        pa[i] = cross_force(v[i], link.inertia.apply(v[i]));
    }

    // Pass 2: articulated-body inertias, leaves to base.
    for (std::size_t ii = n; ii-- > 0;) {
        u_vec[ii] = ia[ii] * s[ii];
        d[ii] = s[ii].dot(u_vec[ii]);
        u[ii] = tau[ii] - s[ii].dot(pa[ii]);
        const int p = model.parent(ii);
        if (p == kBaseParent)
            continue;
        const SpatialMatrix ia_art =
            ia[ii] - outer(u_vec[ii], u_vec[ii]) * (1.0 / d[ii]);
        const SpatialVector pa_art =
            pa[ii] + ia_art * c[ii] + u_vec[ii] * (u[ii] / d[ii]);
        const SpatialMatrix x = xup[ii].to_matrix();
        ia[p] += x.transposed() * ia_art * x;
        pa[p] += xup[ii].apply_transpose_to_force(pa_art);
    }

    // Pass 3: accelerations, base to leaves.
    const SpatialVector a_base(Vec3::zero(), -gravity);
    std::vector<SpatialVector> a(n);
    linalg::Vector qdd(n);
    for (std::size_t i = 0; i < n; ++i) {
        const int p = model.parent(i);
        const SpatialVector a_in =
            (p == kBaseParent ? xup[i].apply(a_base)
                              : xup[i].apply(a[p])) +
            c[i];
        qdd[i] = (u[i] - u_vec[i].dot(a_in)) / d[i];
        a[i] = a_in + s[i] * qdd[i];
    }
    return qdd;
}

} // namespace dynamics
} // namespace roboshape
