/**
 * @file
 * Joint-space robot state.
 */

#ifndef ROBOSHAPE_DYNAMICS_ROBOT_STATE_H
#define ROBOSHAPE_DYNAMICS_ROBOT_STATE_H

#include <cstdint>

#include "linalg/matrix.h"
#include "topology/robot_model.h"

namespace roboshape {
namespace dynamics {

/** Joint positions, velocities, accelerations, and torques. */
struct RobotState
{
    linalg::Vector q;
    linalg::Vector qd;
    linalg::Vector qdd;
    linalg::Vector tau;

    explicit RobotState(std::size_t n) : q(n), qd(n), qdd(n), tau(n) {}
};

/**
 * Deterministic random state for @p model: q in [-pi, pi], qd and qdd in
 * [-2, 2], tau in [-20, 20].
 */
RobotState random_state(const topology::RobotModel &model,
                        std::uint32_t seed);

} // namespace dynamics
} // namespace roboshape

#endif // ROBOSHAPE_DYNAMICS_ROBOT_STATE_H
