/**
 * @file
 * Analytical gradients of forward dynamics (paper Alg. 1; the motivating
 * kernel of the whole accelerator).
 *
 * Following Carpentier & Mansard [7]:
 *
 *   qdd       = FD(q, qd, tau)
 *   dqdd/dq   = -M(q)^-1 * (dID/dq  evaluated at (q, qd, qdd))
 *   dqdd/dqd  = -M(q)^-1 * (dID/dqd evaluated at (q, qd, qdd))
 *   dqdd/dtau =  M(q)^-1
 *
 * This is the computation whose CPU/GPU cost blocks online nonlinear
 * optimal control for legged robots, taking 30-90% of total runtime in
 * state-of-the-art solvers (paper Sec. 1), and the kernel every generated
 * accelerator in this repository executes.
 */

#ifndef ROBOSHAPE_DYNAMICS_FD_DERIVATIVES_H
#define ROBOSHAPE_DYNAMICS_FD_DERIVATIVES_H

#include "dynamics/rnea.h"
#include "linalg/matrix.h"
#include "topology/robot_model.h"
#include "topology/topology_info.h"

namespace roboshape {
namespace dynamics {

/** Complete output of one dynamics-gradient evaluation. */
struct ForwardDynamicsGradients
{
    linalg::Vector qdd;      ///< Forward-dynamics solution.
    linalg::Matrix mass;     ///< Mass matrix M(q).
    linalg::Matrix mass_inv; ///< M(q)^-1 (block-diagonal-aware).
    linalg::Matrix dqdd_dq;  ///< dqdd/dq.
    linalg::Matrix dqdd_dqd; ///< dqdd/dqd.
};

/**
 * Computes the forward-dynamics gradients at (q, qd, tau).
 */
ForwardDynamicsGradients forward_dynamics_gradients(
    const topology::RobotModel &model, const topology::TopologyInfo &topo,
    const linalg::Vector &q, const linalg::Vector &qd,
    const linalg::Vector &tau,
    const spatial::Vec3 &gravity = kDefaultGravity);

} // namespace dynamics
} // namespace roboshape

#endif // ROBOSHAPE_DYNAMICS_FD_DERIVATIVES_H
