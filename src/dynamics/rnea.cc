/**
 * @file
 * Implementation of RNEA inverse dynamics.
 */

#include "dynamics/rnea.h"

#include <cassert>

namespace roboshape {
namespace dynamics {

using spatial::SpatialTransform;
using spatial::SpatialVector;
using spatial::Vec3;
using spatial::cross_force;
using spatial::cross_motion;
using topology::kBaseParent;

void
RneaCache::resize(std::size_t n)
{
    xup.assign(n, SpatialTransform());
    s.assign(n, SpatialVector::zero());
    v.assign(n, SpatialVector::zero());
    a.assign(n, SpatialVector::zero());
    f.assign(n, SpatialVector::zero());
}

linalg::Vector
rnea(const topology::RobotModel &model, const linalg::Vector &q,
     const linalg::Vector &qd, const linalg::Vector &qdd,
     const Vec3 &gravity, RneaCache *cache)
{
    const std::size_t n = model.num_links();
    assert(q.size() == n && qd.size() == n && qdd.size() == n);

    RneaCache local;
    RneaCache &c = cache ? *cache : local;
    c.resize(n);

    // Gravity trick: give the base a fictitious upward acceleration so all
    // gravitational torques emerge from the same recursion.
    const SpatialVector a_base(Vec3::zero(), -gravity);
    c.a_base = a_base;

    // Forward traversal: propagate velocity and acceleration outward.
    for (std::size_t i = 0; i < n; ++i) {
        const topology::Link &link = model.link(i);
        c.xup[i] = link.joint.transform(q[i]) * link.x_tree;
        c.s[i] = link.joint.motion_subspace();
        const SpatialVector vj = c.s[i] * qd[i];

        if (link.parent == kBaseParent) {
            c.v[i] = vj;
            c.a[i] = c.xup[i].apply(a_base) + c.s[i] * qdd[i];
        } else {
            c.v[i] = c.xup[i].apply(c.v[link.parent]) + vj;
            c.a[i] = c.xup[i].apply(c.a[link.parent]) + c.s[i] * qdd[i] +
                     cross_motion(c.v[i], vj);
        }
        c.f[i] = link.inertia.apply(c.a[i]) +
                 cross_force(c.v[i], link.inertia.apply(c.v[i]));
    }

    // Backward traversal: accumulate forces inward (children first; the
    // preorder numbering guarantees child indices exceed their parent's).
    linalg::Vector tau(n);
    for (std::size_t ii = n; ii-- > 0;) {
        tau[ii] = c.s[ii].dot(c.f[ii]);
        const int p = model.parent(ii);
        if (p != kBaseParent)
            c.f[p] += c.xup[ii].apply_transpose_to_force(c.f[ii]);
    }
    return tau;
}

linalg::Vector
bias_forces(const topology::RobotModel &model, const linalg::Vector &q,
            const linalg::Vector &qd, const Vec3 &gravity)
{
    return rnea(model, q, qd, linalg::Vector(model.num_links()), gravity);
}

} // namespace dynamics
} // namespace roboshape
