/**
 * @file
 * Implementation of random robot states.
 */

#include "dynamics/robot_state.h"

#include "linalg/random.h"

namespace roboshape {
namespace dynamics {

RobotState
random_state(const topology::RobotModel &model, std::uint32_t seed)
{
    const std::size_t n = model.num_links();
    RobotState s(n);
    s.q = linalg::random_vector(n, seed, -3.14159, 3.14159);
    s.qd = linalg::random_vector(n, seed + 1, -2.0, 2.0);
    s.qdd = linalg::random_vector(n, seed + 2, -2.0, 2.0);
    s.tau = linalg::random_vector(n, seed + 3, -20.0, 20.0);
    return s;
}

} // namespace dynamics
} // namespace roboshape
