/**
 * @file
 * Articulated Body Algorithm: O(N) forward dynamics.
 *
 * Computes qdd = FD(q, qd, tau).  The dynamics-gradient kernel (paper
 * Alg. 1) differentiates the *inverse* dynamics and maps through -M^-1, but
 * it first needs the forward-dynamics solution itself as the linearization
 * point; ABA provides it in O(N), and serves as an independent cross-check
 * of the CRBA + bias-force route in tests.
 */

#ifndef ROBOSHAPE_DYNAMICS_ABA_H
#define ROBOSHAPE_DYNAMICS_ABA_H

#include "dynamics/rnea.h"
#include "linalg/matrix.h"
#include "topology/robot_model.h"

namespace roboshape {
namespace dynamics {

/** Forward dynamics via ABA. */
linalg::Vector aba(const topology::RobotModel &model,
                   const linalg::Vector &q, const linalg::Vector &qd,
                   const linalg::Vector &tau,
                   const spatial::Vec3 &gravity = kDefaultGravity);

} // namespace dynamics
} // namespace roboshape

#endif // ROBOSHAPE_DYNAMICS_ABA_H
