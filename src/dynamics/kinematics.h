/**
 * @file
 * Forward kinematics and geometric Jacobians.
 *
 * Two more members of the paper's Table 1 family of topology-based
 * kernels: forward kinematics is a pure pattern-(1) forward traversal
 * (one transform task per link, chained parent -> child), and the
 * geometric Jacobian is a pattern-(2) topology matrix — column j of
 * link i's Jacobian is nonzero iff j is an ancestor of i, the same
 * ancestor-closure sparsity the mass matrix carries.
 */

#ifndef ROBOSHAPE_DYNAMICS_KINEMATICS_H
#define ROBOSHAPE_DYNAMICS_KINEMATICS_H

#include <vector>

#include "linalg/matrix.h"
#include "spatial/spatial_transform.h"
#include "topology/robot_model.h"
#include "topology/topology_info.h"

namespace roboshape {
namespace dynamics {

/** Pose of every link relative to the fixed base. */
struct ForwardKinematics
{
    /** X_base_to_link[i]: motion transform base frame -> link i frame. */
    std::vector<spatial::SpatialTransform> base_to_link;

    /** Position of link i's frame origin in base coordinates. */
    spatial::Vec3 origin_in_base(std::size_t i) const;
};

/** Computes base-relative transforms of all links. */
ForwardKinematics forward_kinematics(const topology::RobotModel &model,
                                     const linalg::Vector &q);

/**
 * Geometric Jacobian of link @p link: the 6 x N matrix J with
 * v_link = J(q) * qd, where v_link is the link's spatial velocity
 * expressed in its own frame.  Column j is zero unless j is an ancestor
 * of (or equals) @p link.
 */
linalg::Matrix link_jacobian(const topology::RobotModel &model,
                             const linalg::Vector &q, std::size_t link);

/**
 * Spatial velocity of every link from q, qd (the forward-traversal half of
 * RNEA), used to cross-check Jacobians: v_i == J_i qd.
 */
std::vector<spatial::SpatialVector>
link_velocities(const topology::RobotModel &model, const linalg::Vector &q,
                const linalg::Vector &qd);

/** Center of mass of the whole robot in base coordinates. */
spatial::Vec3 center_of_mass(const topology::RobotModel &model,
                             const linalg::Vector &q);

/** Total robot mass. */
double total_mass(const topology::RobotModel &model);

} // namespace dynamics
} // namespace roboshape

#endif // ROBOSHAPE_DYNAMICS_KINEMATICS_H
