/**
 * @file
 * Implementation of forward kinematics and Jacobians.
 */

#include "dynamics/kinematics.h"

#include <cassert>

namespace roboshape {
namespace dynamics {

using spatial::SpatialTransform;
using spatial::SpatialVector;
using spatial::Vec3;
using topology::kBaseParent;

Vec3
ForwardKinematics::origin_in_base(std::size_t i) const
{
    // The composed transform stores the link origin expressed in the base.
    return base_to_link[i].translation_vector();
}

ForwardKinematics
forward_kinematics(const topology::RobotModel &model,
                   const linalg::Vector &q)
{
    const std::size_t n = model.num_links();
    assert(q.size() == n);
    ForwardKinematics fk;
    fk.base_to_link.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const topology::Link &link = model.link(i);
        const SpatialTransform xup =
            link.joint.transform(q[i]) * link.x_tree;
        const int p = link.parent;
        fk.base_to_link[i] =
            p == kBaseParent ? xup : xup * fk.base_to_link[p];
    }
    return fk;
}

linalg::Matrix
link_jacobian(const topology::RobotModel &model, const linalg::Vector &q,
              std::size_t link)
{
    const std::size_t n = model.num_links();
    assert(link < n);
    const ForwardKinematics fk = forward_kinematics(model, q);

    linalg::Matrix jac(6, n);
    int j = static_cast<int>(link);
    while (j != kBaseParent) {
        // Carry S_j from frame j into the end link's frame.
        const SpatialTransform x_j_to_link =
            fk.base_to_link[link] * fk.base_to_link[j].inverse();
        const SpatialVector col = x_j_to_link.apply(
            model.link(j).joint.motion_subspace());
        for (std::size_t r = 0; r < 6; ++r)
            jac(r, static_cast<std::size_t>(j)) = col[r];
        j = model.parent(j);
    }
    return jac;
}

std::vector<SpatialVector>
link_velocities(const topology::RobotModel &model, const linalg::Vector &q,
                const linalg::Vector &qd)
{
    const std::size_t n = model.num_links();
    assert(q.size() == n && qd.size() == n);
    std::vector<SpatialVector> v(n);
    for (std::size_t i = 0; i < n; ++i) {
        const topology::Link &link = model.link(i);
        const SpatialTransform xup =
            link.joint.transform(q[i]) * link.x_tree;
        const SpatialVector vj = link.joint.motion_subspace() * qd[i];
        v[i] = link.parent == kBaseParent
                   ? vj
                   : xup.apply(v[link.parent]) + vj;
    }
    return v;
}

Vec3
center_of_mass(const topology::RobotModel &model, const linalg::Vector &q)
{
    const ForwardKinematics fk = forward_kinematics(model, q);
    Vec3 weighted;
    double mass = 0.0;
    for (std::size_t i = 0; i < model.num_links(); ++i) {
        const auto &inertia = model.link(i).inertia;
        if (inertia.mass() <= 0.0)
            continue;
        const Vec3 com_link = inertia.h() * (1.0 / inertia.mass());
        // Point map link -> base: p_base = E^T p_link + r.
        const auto &x = fk.base_to_link[i];
        const Vec3 com_base =
            x.rotation_matrix().transpose_mul(com_link) +
            x.translation_vector();
        weighted += com_base * inertia.mass();
        mass += inertia.mass();
    }
    assert(mass > 0.0);
    return weighted * (1.0 / mass);
}

double
total_mass(const topology::RobotModel &model)
{
    double mass = 0.0;
    for (std::size_t i = 0; i < model.num_links(); ++i)
        mass += model.link(i).inertia.mass();
    return mass;
}

} // namespace dynamics
} // namespace roboshape
