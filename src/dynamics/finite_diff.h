/**
 * @file
 * Finite-difference reference derivatives.
 *
 * Central differences over the analytical kernels, used only to validate
 * the exact derivatives (paper Alg. 3) in tests — never on any measured
 * path.
 */

#ifndef ROBOSHAPE_DYNAMICS_FINITE_DIFF_H
#define ROBOSHAPE_DYNAMICS_FINITE_DIFF_H

#include "dynamics/rnea.h"
#include "linalg/matrix.h"
#include "topology/robot_model.h"

namespace roboshape {
namespace dynamics {

/** Central-difference dtau/dq. */
linalg::Matrix fd_dtau_dq(const topology::RobotModel &model,
                          const linalg::Vector &q, const linalg::Vector &qd,
                          const linalg::Vector &qdd,
                          const spatial::Vec3 &gravity = kDefaultGravity,
                          double eps = 1e-6);

/** Central-difference dtau/dqd. */
linalg::Matrix fd_dtau_dqd(const topology::RobotModel &model,
                           const linalg::Vector &q, const linalg::Vector &qd,
                           const linalg::Vector &qdd,
                           const spatial::Vec3 &gravity = kDefaultGravity,
                           double eps = 1e-6);

/** Central-difference dqdd/dq of forward dynamics (via ABA). */
linalg::Matrix fd_dqdd_dq(const topology::RobotModel &model,
                          const linalg::Vector &q, const linalg::Vector &qd,
                          const linalg::Vector &tau,
                          const spatial::Vec3 &gravity = kDefaultGravity,
                          double eps = 1e-6);

/** Central-difference dqdd/dqd of forward dynamics (via ABA). */
linalg::Matrix fd_dqdd_dqd(const topology::RobotModel &model,
                           const linalg::Vector &q, const linalg::Vector &qd,
                           const linalg::Vector &tau,
                           const spatial::Vec3 &gravity = kDefaultGravity,
                           double eps = 1e-6);

} // namespace dynamics
} // namespace roboshape

#endif // ROBOSHAPE_DYNAMICS_FINITE_DIFF_H
