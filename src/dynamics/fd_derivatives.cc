/**
 * @file
 * Implementation of the forward-dynamics gradients.
 */

#include "dynamics/fd_derivatives.h"

#include "dynamics/crba.h"
#include "dynamics/rnea_derivatives.h"
#include "linalg/factorization.h"

namespace roboshape {
namespace dynamics {

ForwardDynamicsGradients
forward_dynamics_gradients(const topology::RobotModel &model,
                           const topology::TopologyInfo &topo,
                           const linalg::Vector &q, const linalg::Vector &qd,
                           const linalg::Vector &tau,
                           const spatial::Vec3 &gravity)
{
    ForwardDynamicsGradients out;

    // Linearization point: solve forward dynamics with the mass matrix
    // (M qdd = tau - C), sharing M with the gradient mapping below.
    out.mass = crba(model, q);
    out.mass_inv = mass_matrix_inverse(topo, out.mass);
    const linalg::Vector bias = bias_forces(model, q, qd, gravity);
    out.qdd = out.mass_inv * (tau - bias);

    // Differentiate the inverse dynamics at (q, qd, qdd) and map through
    // -M^-1 (paper Alg. 1, final blocked-multiply stage).
    RneaCache cache;
    rnea(model, q, qd, out.qdd, gravity, &cache);
    const RneaDerivatives did = rnea_derivatives(model, topo, qd, cache);
    out.dqdd_dq = out.mass_inv * did.dtau_dq * -1.0;
    out.dqdd_dqd = out.mass_inv * did.dtau_dqd * -1.0;
    return out;
}

} // namespace dynamics
} // namespace roboshape
