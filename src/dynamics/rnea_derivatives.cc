/**
 * @file
 * Implementation of the analytical RNEA derivatives.
 *
 * Uses the exact joint-transform derivative identities (for single-DoF
 * joints with motion subspace S and transform X(q)):
 *
 *     d(X u)/dq   = (X u) x S           (motion cross product)
 *     d(X^T f)/dq = X^T (S x* f)        (force cross product)
 */

#include "dynamics/rnea_derivatives.h"

#include <cassert>

#include "spatial/spatial_vector.h"

namespace roboshape {
namespace dynamics {

using spatial::SpatialVector;
using spatial::cross_force;
using spatial::cross_motion;
using topology::kBaseParent;

RneaDerivatives
rnea_derivatives(const topology::RobotModel &model,
                 const topology::TopologyInfo &topo,
                 const linalg::Vector &qd, const RneaCache &cache)
{
    const std::size_t n = model.num_links();
    assert(qd.size() == n && cache.v.size() == n);

    RneaDerivatives out;
    out.dtau_dq.resize(n, n);
    out.dtau_dqd.resize(n, n);

    std::vector<SpatialVector> dv(n), da(n), df(n);

    // One column per differentiated joint; the two derivative kinds share
    // the propagation skeleton and differ only in the seed and in the
    // transform-derivative term of the backward pass.
    for (std::size_t j = 0; j < n; ++j) {
        const std::size_t sub_end = j + topo.subtree_size(j);

        for (int kind = 0; kind < 2; ++kind) {
            const bool wrt_q = kind == 0;

            // Seed at joint j.
            if (wrt_q) {
                const int p = model.parent(j);
                const SpatialVector xap = cache.xup[j].apply(
                    p == kBaseParent ? cache.a_base : cache.a[p]);
                dv[j] = cross_motion(cache.v[j], cache.s[j]);
                da[j] = cross_motion(xap, cache.s[j]) +
                        cross_motion(dv[j], cache.s[j] * qd[j]);
            } else {
                dv[j] = cache.s[j];
                da[j] = cross_motion(cache.v[j], cache.s[j]);
            }

            // Forward sweep over the (contiguous) subtree of j.
            for (std::size_t i = j; i < sub_end; ++i) {
                if (i != j) {
                    const int p = model.parent(i);
                    dv[i] = cache.xup[i].apply(dv[p]);
                    da[i] = cache.xup[i].apply(da[p]) +
                            cross_motion(dv[i], cache.s[i] * qd[i]);
                }
                const auto &inertia = model.link(i).inertia;
                df[i] = inertia.apply(da[i]) +
                        cross_force(dv[i], inertia.apply(cache.v[i])) +
                        cross_force(cache.v[i], inertia.apply(dv[i]));
            }

            // Backward sweep: through the subtree, then up the root path.
            // Only subtree members and ancestors of j carry nonzero df.
            for (std::size_t ii = sub_end; ii-- > 0;) {
                const bool in_subtree = ii >= j;
                const bool on_root_path =
                    !in_subtree && topo.is_ancestor_or_self(ii, j);
                if (!in_subtree && !on_root_path)
                    continue;

                const double dtau = cache.s[ii].dot(df[ii]);
                if (wrt_q)
                    out.dtau_dq(ii, j) = dtau;
                else
                    out.dtau_dqd(ii, j) = dtau;

                const int p = model.parent(ii);
                if (p != kBaseParent) {
                    SpatialVector carried = df[ii];
                    if (wrt_q && ii == j)
                        carried += cross_force(cache.s[j], cache.f[j]);
                    df[p] += cache.xup[ii].apply_transpose_to_force(carried);
                }
                df[ii] = SpatialVector::zero(); // reset for the next column
            }
        }
    }
    return out;
}

} // namespace dynamics
} // namespace roboshape
