/**
 * @file
 * Implementation of CRBA.
 */

#include "dynamics/crba.h"

#include <cassert>
#include <vector>

#include "linalg/factorization.h"
#include "spatial/spatial_inertia.h"
#include "spatial/spatial_transform.h"

namespace roboshape {
namespace dynamics {

using spatial::SpatialInertia;
using spatial::SpatialTransform;
using spatial::SpatialVector;
using topology::kBaseParent;

linalg::Matrix
crba(const topology::RobotModel &model, const linalg::Vector &q)
{
    const std::size_t n = model.num_links();
    assert(q.size() == n);

    std::vector<SpatialTransform> xup(n);
    std::vector<SpatialVector> s(n);
    std::vector<SpatialInertia> ic(n);
    for (std::size_t i = 0; i < n; ++i) {
        const topology::Link &link = model.link(i);
        xup[i] = link.joint.transform(q[i]) * link.x_tree;
        s[i] = link.joint.motion_subspace();
        ic[i] = link.inertia;
    }

    linalg::Matrix h(n, n);
    // Backward traversal: accumulate composite inertias, then walk each
    // link's root path filling in its mass-matrix row/column.
    for (std::size_t ii = n; ii-- > 0;) {
        const int p = model.parent(ii);
        if (p != kBaseParent)
            ic[p] = ic[p] + ic[ii].expressed_in_parent(xup[ii]);

        SpatialVector f = ic[ii].apply(s[ii]);
        h(ii, ii) = s[ii].dot(f);
        std::size_t j = ii;
        while (model.parent(j) != kBaseParent) {
            f = xup[j].apply_transpose_to_force(f);
            j = static_cast<std::size_t>(model.parent(j));
            h(ii, j) = h(j, ii) = f.dot(s[j]);
        }
    }
    return h;
}

linalg::Matrix
mass_matrix_inverse(const topology::TopologyInfo &topo,
                    const linalg::Matrix &mass_matrix)
{
    return linalg::block_diagonal_inverse(mass_matrix, topo.limb_spans());
}

} // namespace dynamics
} // namespace roboshape
