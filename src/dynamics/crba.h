/**
 * @file
 * Composite Rigid Body Algorithm: the joint-space mass matrix.
 *
 * The mass matrix M(q) is the paper's archetypal topology-based N x N
 * matrix (pattern 2, Sec. 3.2): entry (i, j) is nonzero only when links i
 * and j lie on a common root path, so independent limbs induce the
 * block-diagonal sparsity the accelerator's blocked multiplier exploits.
 */

#ifndef ROBOSHAPE_DYNAMICS_CRBA_H
#define ROBOSHAPE_DYNAMICS_CRBA_H

#include "linalg/matrix.h"
#include "topology/robot_model.h"
#include "topology/topology_info.h"

namespace roboshape {
namespace dynamics {

/** Mass matrix M(q) via CRBA. */
linalg::Matrix crba(const topology::RobotModel &model,
                    const linalg::Vector &q);

/**
 * Inverse mass matrix exploiting limb-induced block-diagonal structure:
 * each base-rooted limb's diagonal block is inverted independently
 * (the inverse of a block-diagonal SPD matrix is block diagonal,
 * paper Sec. 3.2).  Identical to the dense inverse, cheaper for
 * multi-limb robots.
 */
linalg::Matrix mass_matrix_inverse(const topology::TopologyInfo &topo,
                                   const linalg::Matrix &mass_matrix);

} // namespace dynamics
} // namespace roboshape

#endif // ROBOSHAPE_DYNAMICS_CRBA_H
