/**
 * @file
 * Analytical first-order derivatives of RNEA (paper Alg. 3, after
 * Carpentier & Mansard, RSS 2018).
 *
 * For each joint j, the full RNEA recursion is differentiated exactly with
 * respect to q_j (and qd_j), producing one column of dtau/dq (dtau/dqd).
 * Each column makes a forward sweep over subtree(j) — seeded by the stored
 * RNEA intermediates, exactly the dependence the accelerator's RNEA-output
 * buffers serve (paper Fig. 8c) — and a backward sweep from the subtree up
 * the root path.  Total work is O(N * depth): the quadratic scaling with
 * robot size the paper attributes to pattern (1).
 */

#ifndef ROBOSHAPE_DYNAMICS_RNEA_DERIVATIVES_H
#define ROBOSHAPE_DYNAMICS_RNEA_DERIVATIVES_H

#include "dynamics/rnea.h"
#include "linalg/matrix.h"
#include "topology/robot_model.h"
#include "topology/topology_info.h"

namespace roboshape {
namespace dynamics {

/** Partial derivatives of inverse dynamics torques. */
struct RneaDerivatives
{
    linalg::Matrix dtau_dq;  ///< dtau/dq, N x N.
    linalg::Matrix dtau_dqd; ///< dtau/dqd, N x N.
};

/**
 * Computes dtau/dq and dtau/dqd at (q, qd, qdd) given the RNEA cache from
 * an evaluation at the same state.
 */
RneaDerivatives rnea_derivatives(const topology::RobotModel &model,
                                 const topology::TopologyInfo &topo,
                                 const linalg::Vector &qd,
                                 const RneaCache &cache);

} // namespace dynamics
} // namespace roboshape

#endif // ROBOSHAPE_DYNAMICS_RNEA_DERIVATIVES_H
