/**
 * @file
 * Implementation of contact-constrained forward dynamics.
 */

#include "dynamics/constrained.h"

#include <cassert>
#include <stdexcept>

#include "dynamics/crba.h"
#include "dynamics/kinematics.h"
#include "linalg/factorization.h"

namespace roboshape {
namespace dynamics {

using linalg::Matrix;
using linalg::Vector;

Matrix
contact_jacobian(const topology::RobotModel &model, const Vector &q,
                 const std::vector<Contact> &contacts)
{
    const std::size_t n = model.num_links();
    Matrix jac(3 * contacts.size(), n);
    for (std::size_t c = 0; c < contacts.size(); ++c) {
        assert(contacts[c].link < n);
        const Matrix link_jac = link_jacobian(model, q, contacts[c].link);
        // Point velocity (body coords): v_p = v_lin + w x p, so the point
        // Jacobian rows are J_lin - p x J_ang.
        const auto px = spatial::Mat3::skew(contacts[c].point);
        for (std::size_t r = 0; r < 3; ++r) {
            for (std::size_t j = 0; j < n; ++j) {
                double v = link_jac(3 + r, j);
                for (std::size_t k = 0; k < 3; ++k)
                    v -= px(r, k) * link_jac(k, j);
                jac(3 * c + r, j) = v;
            }
        }
    }
    return jac;
}

Vector
contact_bias(const topology::RobotModel &model, const Vector &q,
             const Vector &qd, const std::vector<Contact> &contacts)
{
    // With qdd = 0 and zero gravity, the RNEA forward sweep's link
    // accelerations are exactly Jdot * qd in link coordinates.
    RneaCache cache;
    rnea(model, q, qd, Vector(model.num_links()), spatial::Vec3::zero(),
         &cache);
    Vector bias(3 * contacts.size());
    for (std::size_t c = 0; c < contacts.size(); ++c) {
        const auto &a = cache.a[contacts[c].link];
        // d/dt (v_lin + w x p) = a_lin + a_ang x p in body coordinates.
        const spatial::Vec3 ap = a.lin + a.ang.cross(contacts[c].point);
        bias[3 * c + 0] = ap.x;
        bias[3 * c + 1] = ap.y;
        bias[3 * c + 2] = ap.z;
    }
    return bias;
}

ConstrainedDynamics
constrained_forward_dynamics(const topology::RobotModel &model,
                             const topology::TopologyInfo &topo,
                             const Vector &q, const Vector &qd,
                             const Vector &tau,
                             const std::vector<Contact> &contacts,
                             const spatial::Vec3 &gravity, double damping)
{
    [[maybe_unused]] const std::size_t n = model.num_links();
    assert(q.size() == n && qd.size() == n && tau.size() == n);

    const Matrix mass = crba(model, q);
    const Matrix minv = mass_matrix_inverse(topo, mass);
    const Vector bias_tau = bias_forces(model, q, qd, gravity);
    const Vector qdd_free = minv * (tau - bias_tau);

    ConstrainedDynamics out;
    if (contacts.empty()) {
        out.qdd = qdd_free;
        out.forces = Vector(0);
        return out;
    }

    const Matrix jac = contact_jacobian(model, q, contacts);
    const Vector jdot_qd = contact_bias(model, q, qd, contacts);

    // Contact-space operator with Tikhonov damping, escalated until the
    // factorization succeeds (contacts may over-constrain the mechanism,
    // leaving Lambda rank deficient).
    const Matrix lambda_base = jac * minv * jac.transposed();
    const Vector rhs = jac * qdd_free + jdot_qd;
    Vector f;
    double mu = damping;
    for (int attempt = 0;; ++attempt) {
        Matrix lambda_op = lambda_base;
        for (std::size_t i = 0; i < lambda_op.rows(); ++i)
            lambda_op(i, i) += mu;
        const linalg::Ldlt solver(lambda_op);
        if (solver.ok()) {
            // J qdd + Jdot qd = 0 => f = Lambda^-1 (J qdd_free + Jdot qd).
            f = solver.solve(rhs);
            break;
        }
        if (attempt > 20)
            throw std::runtime_error(
                "contact operator is numerically singular");
        mu = std::max(mu * 100.0, 1e-12);
    }
    out.forces = f;
    out.qdd = qdd_free - minv * (jac.transposed() * f);

    // Certificates (f enters the joint-space balance as -J^T f because it
    // is the force the robot exerts on the world).
    const Vector kkt =
        mass * out.qdd + bias_tau - tau + jac.transposed() * f;
    out.kkt_residual = kkt.max_abs();
    const Vector violation = jac * out.qdd + jdot_qd;
    out.constraint_residual = violation.max_abs();
    return out;
}

} // namespace dynamics
} // namespace roboshape
