/**
 * @file
 * Recursive Newton-Euler inverse dynamics (paper Alg. 2).
 *
 * RNEA makes one forward traversal of the link tree, propagating velocities
 * and accelerations from the base out to the leaves, and one backward
 * traversal accumulating forces from the leaves to the base — the archetype
 * of the paper's topology-traversal computational pattern (1).
 */

#ifndef ROBOSHAPE_DYNAMICS_RNEA_H
#define ROBOSHAPE_DYNAMICS_RNEA_H

#include <vector>

#include "linalg/matrix.h"
#include "spatial/spatial_transform.h"
#include "spatial/spatial_vector.h"
#include "topology/robot_model.h"

namespace roboshape {
namespace dynamics {

/** Default gravity: -9.81 m/s^2 along the base z axis. */
inline constexpr spatial::Vec3 kDefaultGravity{0.0, 0.0, -9.81};

/**
 * Per-link intermediate state of an RNEA evaluation.
 *
 * The derivative pass (Alg. 3) and the accelerator's dataflow both re-read
 * these quantities, mirroring the hardware's dedicated RNEA-output storage
 * (paper Fig. 8c).
 */
struct RneaCache
{
    /** Parent-to-link transforms X_up[i] = X_J(q_i) * X_tree[i]. */
    std::vector<spatial::SpatialTransform> xup;
    /** Joint motion subspaces S[i]. */
    std::vector<spatial::SpatialVector> s;
    /** Link spatial velocities. */
    std::vector<spatial::SpatialVector> v;
    /** Link spatial accelerations (gravity folded into the base). */
    std::vector<spatial::SpatialVector> a;
    /** Accumulated link forces after the backward pass. */
    std::vector<spatial::SpatialVector> f;
    /** Fictitious base acceleration encoding gravity. */
    spatial::SpatialVector a_base;

    void resize(std::size_t n);
};

/**
 * Inverse dynamics: tau = ID(q, qd, qdd).
 *
 * @param cache optional output of per-link intermediates for derivative
 *        passes; pass nullptr when only torques are needed.
 */
linalg::Vector rnea(const topology::RobotModel &model,
                    const linalg::Vector &q, const linalg::Vector &qd,
                    const linalg::Vector &qdd,
                    const spatial::Vec3 &gravity = kDefaultGravity,
                    RneaCache *cache = nullptr);

/**
 * Nonlinear bias forces C(q, qd) = ID(q, qd, 0): Coriolis, centrifugal, and
 * gravity torques.
 */
linalg::Vector bias_forces(const topology::RobotModel &model,
                           const linalg::Vector &q, const linalg::Vector &qd,
                           const spatial::Vec3 &gravity = kDefaultGravity);

} // namespace dynamics
} // namespace roboshape

#endif // ROBOSHAPE_DYNAMICS_RNEA_H
