/**
 * @file
 * GPU baseline latency model (the paper's GRiD [45] comparison point).
 *
 * GRiD dedicates one streaming multiprocessor to each dynamics-gradient
 * evaluation and parallelizes the per-link work across that SM's CUDA
 * threads, so single-computation latency is governed by the robot's
 * *sequential dependency chains* — the forward/backward traversal depth —
 * executed on pipelines optimized for throughput, not latency (paper
 * Sec. 5.1).  The model captures exactly those structural effects:
 *
 *   latency_us = launch + alpha * (2 * max_leaf_depth traversal chains)
 *                       + beta * N (per-link work serialized by SM issue)
 *
 * It reproduces the paper's qualitative findings: iiwa and HyQ land at
 * similar latency (iiwa is purely sequential; HyQ has parallel limbs with
 * short chains), and larger robots grow linearly.  Constants are
 * calibrated against the paper's reported CPU/GPU/FPGA ratios
 * (EXPERIMENTS.md).  Batched time steps spread across SMs, leaving
 * latency nearly flat while I/O grows.
 */

#ifndef ROBOSHAPE_BASELINES_GPU_MODEL_H
#define ROBOSHAPE_BASELINES_GPU_MODEL_H

#include <cstddef>

#include "topology/topology_info.h"

namespace roboshape {
namespace baselines {

/** Model constants (defaults calibrated to the RTX 3080 baseline). */
struct GpuModelParams
{
    double launch_us = 2.0;      ///< Kernel launch and scheduling overhead.
    double chain_op_us = 1.19;   ///< Per traversal-chain level.
    double per_link_us = 1.90;   ///< Per-link serialized issue cost.
    std::size_t sm_count = 68;   ///< RTX 3080 streaming multiprocessors.
};

/** Single dynamics-gradient latency on one SM. */
double gpu_gradient_latency_us(const topology::TopologyMetrics &metrics,
                               const GpuModelParams &params =
                                   GpuModelParams{});

/**
 * Compute latency of a batch of @p steps evaluations: one SM each, so the
 * batch is latency-flat until steps exceed the SM count.
 */
double gpu_batch_latency_us(const topology::TopologyMetrics &metrics,
                            std::size_t steps,
                            const GpuModelParams &params = GpuModelParams{});

} // namespace baselines
} // namespace roboshape

#endif // ROBOSHAPE_BASELINES_GPU_MODEL_H
