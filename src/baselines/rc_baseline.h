/**
 * @file
 * Robomorphic Computing baseline generator (prior work [32]).
 *
 * RC parallelizes statically with one processing element per robot link and
 * a fully-unrolled dataflow — no topology-aware scheduling, no branching
 * support, no blocked matrix reuse.  For a serial chain (iiwa) it produces
 * the same schedule RoboShape does at PEs = N, so latency is identical
 * (paper Fig. 9); for branching robots it is structurally unsupported, and
 * for any robot its per-link resource scaling exhausts the FPGA beyond
 * N = 7 (paper Sec. 5.1).
 */

#ifndef ROBOSHAPE_BASELINES_RC_BASELINE_H
#define ROBOSHAPE_BASELINES_RC_BASELINE_H

#include <optional>

#include "accel/design.h"
#include "accel/resource_model.h"
#include "topology/robot_model.h"

namespace roboshape {
namespace baselines {

/** Outcome of attempting an RC design for a robot. */
struct RcDesign
{
    /** True when RC can express the robot at all (no branch support). */
    bool supported = false;
    /** Why RC cannot be generated, when unsupported. */
    std::string limitation;
    /** Resource demand of the unrolled design (always computed). */
    accel::ResourceEstimate resources;
    /** Latency in microseconds; present only for supported robots that
     *  fit the platform. */
    std::optional<double> latency_us;
};

/**
 * Attempts to generate the RC accelerator for @p model against the
 * given platform envelope.
 */
RcDesign generate_rc_design(const topology::RobotModel &model,
                            const accel::FpgaPlatform &platform);

} // namespace baselines
} // namespace roboshape

#endif // ROBOSHAPE_BASELINES_RC_BASELINE_H
