/**
 * @file
 * Implementation of the RC baseline generator.
 */

#include "baselines/rc_baseline.h"

#include "topology/topology_info.h"

namespace roboshape {
namespace baselines {

RcDesign
generate_rc_design(const topology::RobotModel &model,
                   const accel::FpgaPlatform &platform)
{
    RcDesign rc;
    const std::size_t n = model.num_links();
    rc.resources = accel::estimate_rc_resources(n);

    const topology::TopologyInfo topo(model);
    const bool branching = !topo.branch_links().empty() ||
                           model.base_children().size() > 1;
    if (branching) {
        rc.supported = false;
        rc.limitation = "RC has no branching support (single-chain "
                        "parallelization only)";
        return rc;
    }
    rc.supported = true;
    if (!rc.resources.fits(platform)) {
        rc.limitation = "RC per-link unrolling exceeds " + platform.name +
                        " resources at N=" + std::to_string(n);
        return rc;
    }

    // For a chain, RC's fully-unrolled per-link parallelism is what
    // RoboShape produces at PEs_fwd = PEs_bwd = size_block = N.
    const accel::AcceleratorDesign equivalent(model, {n, n, n});
    rc.latency_us = equivalent.latency_us_no_pipelining();
    return rc;
}

} // namespace baselines
} // namespace roboshape
