/**
 * @file
 * Implementation of the CPU baseline timing harness.
 */

#include "baselines/cpu_baseline.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "dynamics/fd_derivatives.h"
#include "dynamics/rnea.h"
#include "dynamics/robot_state.h"
#include "topology/topology_info.h"

namespace roboshape {
namespace baselines {

namespace {

// The baseline's product IS a wall-time measurement; the clock is read
// for reporting only and never feeds back into computed dynamics.
using Clock = std::chrono::steady_clock; // NOLINT(no-nondeterminism)

double
us_between(Clock::time_point a, Clock::time_point b)
{
    return std::chrono::duration<double, std::micro>(b - a).count();
}

/**
 * Keeps results alive so the optimizer cannot delete the work.  Atomic
 * because the batch harness writes it from concurrent worker threads;
 * relaxed stores cost nothing on x86 and keep TSan quiet.
 */
std::atomic<double> g_sink{0.0};

} // namespace

CpuMeasurement
measure_fd_gradients(const topology::RobotModel &model, std::size_t trials)
{
    const topology::TopologyInfo topo(model);
    const dynamics::RobotState s = dynamics::random_state(model, 1234);

    // Warmup.
    for (int i = 0; i < 16; ++i) {
        const auto g = dynamics::forward_dynamics_gradients(model, topo, s.q,
                                                            s.qd, s.tau);
        g_sink.store(g.dqdd_dq(0, 0), std::memory_order_relaxed);
    }

    CpuMeasurement m;
    m.trials = trials;
    m.min_us = 1e30;
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < trials; ++i) {
        const auto a = Clock::now();
        const auto g = dynamics::forward_dynamics_gradients(model, topo, s.q,
                                                            s.qd, s.tau);
        g_sink.store(g.dqdd_dq(0, 0), std::memory_order_relaxed);
        const auto b = Clock::now();
        m.min_us = std::min(m.min_us, us_between(a, b));
    }
    m.mean_us = us_between(t0, Clock::now()) / static_cast<double>(trials);
    return m;
}

CpuMeasurement
measure_fd_gradients_batch(const topology::RobotModel &model,
                           std::size_t steps, std::size_t trials)
{
    const topology::TopologyInfo topo(model);
    std::vector<dynamics::RobotState> states;
    for (std::size_t k = 0; k < steps; ++k)
        states.push_back(dynamics::random_state(
            model, static_cast<std::uint32_t>(100 + k)));

    CpuMeasurement m;
    m.trials = trials;
    m.min_us = 1e30;
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < trials; ++i) {
        const auto a = Clock::now();
        std::vector<std::thread> workers;
        workers.reserve(steps);
        for (std::size_t k = 0; k < steps; ++k) {
            workers.emplace_back([&, k] {
                const auto g = dynamics::forward_dynamics_gradients(
                    model, topo, states[k].q, states[k].qd, states[k].tau);
                g_sink.store(g.dqdd_dq(0, 0), std::memory_order_relaxed);
            });
        }
        for (auto &w : workers)
            w.join();
        const auto b = Clock::now();
        m.min_us = std::min(m.min_us, us_between(a, b));
    }
    m.mean_us = us_between(t0, Clock::now()) / static_cast<double>(trials);
    return m;
}

CpuMeasurement
measure_rnea(const topology::RobotModel &model, std::size_t trials)
{
    const dynamics::RobotState s = dynamics::random_state(model, 77);

    for (int i = 0; i < 16; ++i)
        g_sink.store(dynamics::rnea(model, s.q, s.qd, s.qdd)[0],
                     std::memory_order_relaxed);

    CpuMeasurement m;
    m.trials = trials;
    m.min_us = 1e30;
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < trials; ++i) {
        const auto a = Clock::now();
        g_sink.store(dynamics::rnea(model, s.q, s.qd, s.qdd)[0],
                     std::memory_order_relaxed);
        const auto b = Clock::now();
        m.min_us = std::min(m.min_us, us_between(a, b));
    }
    m.mean_us = us_between(t0, Clock::now()) / static_cast<double>(trials);
    return m;
}

} // namespace baselines
} // namespace roboshape
