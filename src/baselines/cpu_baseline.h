/**
 * @file
 * CPU baseline: real measured latency of the host dynamics library.
 *
 * Stands in for the paper's Pinocchio [8] numbers: a from-scratch,
 * single-threaded, vectorizable C++ implementation of the same analytical-
 * derivative algorithms, timed with a monotonic clock and averaged over
 * many trials (paper methodology, Sec. 5).  Batched time-step evaluation
 * parallelizes across threads, one per time step, exactly like the paper
 * describes the CPU library doing.
 */

#ifndef ROBOSHAPE_BASELINES_CPU_BASELINE_H
#define ROBOSHAPE_BASELINES_CPU_BASELINE_H

#include <cstddef>

#include "topology/robot_model.h"

namespace roboshape {
namespace baselines {

/** Measured statistics of a timing run. */
struct CpuMeasurement
{
    double mean_us = 0.0;
    double min_us = 0.0;
    std::size_t trials = 0;
};

/**
 * Measures a single forward-dynamics-gradient evaluation.
 * @param trials averaging count (the paper used one million; benches
 *        default lower to keep runtimes friendly).
 */
CpuMeasurement measure_fd_gradients(const topology::RobotModel &model,
                                    std::size_t trials = 2000);

/**
 * Measures a batch of @p steps gradient evaluations run on one thread per
 * step (the CPU library's multi-computation parallelization).
 */
CpuMeasurement measure_fd_gradients_batch(const topology::RobotModel &model,
                                          std::size_t steps,
                                          std::size_t trials = 200);

/** Measures a single RNEA inverse-dynamics call (microbench support). */
CpuMeasurement measure_rnea(const topology::RobotModel &model,
                            std::size_t trials = 10000);

} // namespace baselines
} // namespace roboshape

#endif // ROBOSHAPE_BASELINES_CPU_BASELINE_H
