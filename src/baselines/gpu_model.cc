/**
 * @file
 * Implementation of the GPU latency model.
 */

#include "baselines/gpu_model.h"

#include <cmath>

namespace roboshape {
namespace baselines {

double
gpu_gradient_latency_us(const topology::TopologyMetrics &metrics,
                        const GpuModelParams &params)
{
    const double chains =
        2.0 * static_cast<double>(metrics.max_leaf_depth);
    return params.launch_us + params.chain_op_us * chains +
           params.per_link_us * static_cast<double>(metrics.total_links);
}

double
gpu_batch_latency_us(const topology::TopologyMetrics &metrics,
                     std::size_t steps, const GpuModelParams &params)
{
    const double waves = std::ceil(static_cast<double>(steps) /
                                   static_cast<double>(params.sm_count));
    return gpu_gradient_latency_us(metrics, params) * waves;
}

} // namespace baselines
} // namespace roboshape
