/**
 * @file
 * Compatibility shim over the persistent work-stealing executor.
 *
 * Historically this header WAS the parallel runtime: a fork-join pool
 * that spawned fresh std::threads per call and statically strided the
 * index space.  PR 7 replaced it with core::Executor (executor.h,
 * docs/PARALLELISM.md) — one process-lifetime pool of parked workers
 * with work-stealing deques.  The two entry points below keep the old
 * API for existing call sites; new code should use the executor
 * directly (it also offers lane-aware callbacks and job graphs).
 *
 * The determinism contract is unchanged: fn(i) is called exactly once
 * per index, may only write state owned by index i, and results are
 * bit-identical at any worker count.
 */

#ifndef ROBOSHAPE_CORE_PARALLEL_H
#define ROBOSHAPE_CORE_PARALLEL_H

#include <cstddef>
#include <utility>

#include "core/executor.h"

namespace roboshape {
namespace core {

/**
 * Worker count used for @p jobs: @p requested when nonzero, else the
 * validated ROBOSHAPE_THREADS environment override (or its deprecated
 * ROBOSHAPE_SWEEP_THREADS alias) when set, else the hardware
 * concurrency; always clamped to [1, jobs].
 */
inline std::size_t
sweep_worker_count(std::size_t jobs, std::size_t requested = 0)
{
    return Executor::instance().resolve_width(jobs, requested);
}

/**
 * Runs fn(i) for every i in [0, count) on the process-wide executor.
 * Runs inline when one worker suffices.  @p fn must not throw; it may
 * only write to state owned by the index it was handed.
 */
template <typename Fn>
void
parallel_for(std::size_t count, Fn &&fn, std::size_t requested_threads = 0)
{
    Executor::instance().parallel_for(count, std::forward<Fn>(fn),
                                      requested_threads);
}

} // namespace core
} // namespace roboshape

#endif // ROBOSHAPE_CORE_PARALLEL_H
