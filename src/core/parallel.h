/**
 * @file
 * Minimal fork-join thread pool for design-space sweeps.
 *
 * The sweep's unit of work is one memoized schedule or one composed design
 * point; both are independent across indices, so a statically-strided
 * fork-join pool is enough: worker t handles indices t, t + T, t + 2T, ...
 * The sharding is deterministic, every index is owned by exactly one
 * worker, and workers only write to the slots they own — no locks anywhere
 * on the hot path.
 */

#ifndef ROBOSHAPE_CORE_PARALLEL_H
#define ROBOSHAPE_CORE_PARALLEL_H

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <thread>
#include <vector>

namespace roboshape {
namespace core {

/**
 * Worker count used for @p jobs: @p requested when nonzero, else the
 * ROBOSHAPE_SWEEP_THREADS environment variable when set, else the
 * hardware concurrency; always clamped to [1, jobs].
 */
inline std::size_t
sweep_worker_count(std::size_t jobs, std::size_t requested = 0)
{
    std::size_t threads = requested;
    if (threads == 0) {
        if (const char *env = std::getenv("ROBOSHAPE_SWEEP_THREADS"))
            threads = static_cast<std::size_t>(
                std::strtoul(env, nullptr, 10));
    }
    if (threads == 0)
        threads = std::max<std::size_t>(
            1, std::thread::hardware_concurrency());
    return std::clamp<std::size_t>(threads, 1,
                                   std::max<std::size_t>(jobs, 1));
}

/**
 * Runs fn(i) for every i in [0, count), striding the index space over a
 * pool of worker threads (see the file comment).  Runs inline without
 * spawning when one worker suffices.  @p fn must not throw; it may only
 * write to state owned by the index it was handed.
 */
template <typename Fn>
void
parallel_for(std::size_t count, Fn &&fn, std::size_t requested_threads = 0)
{
    const std::size_t workers = sweep_worker_count(count, requested_threads);
    if (workers <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t) {
        pool.emplace_back([&fn, t, workers, count] {
            for (std::size_t i = t; i < count; i += workers)
                fn(i);
        });
    }
    for (std::thread &worker : pool)
        worker.join();
}

} // namespace core
} // namespace roboshape

#endif // ROBOSHAPE_CORE_PARALLEL_H
