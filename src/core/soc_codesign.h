/**
 * @file
 * SoC co-design: sharing one resource envelope among several accelerators.
 *
 * The paper's forward-looking claim (abstract, Sec. 3.3, Sec. 6) is that
 * topology-parameterized accelerators can be *co-generated*: because every
 * design's latency and resources are analytic in its knobs, multiple
 * accelerators — different kernels, or different robots — can be jointly
 * sized to share a robotics SoC's budget.  This module enumerates joint
 * design points for a pair of accelerators and extracts the latency/latency
 * Pareto frontier under a shared platform envelope.
 */

#ifndef ROBOSHAPE_CORE_SOC_CODESIGN_H
#define ROBOSHAPE_CORE_SOC_CODESIGN_H

#include <vector>

#include "accel/design.h"
#include "accel/platform.h"
#include "core/design_space.h"
#include "topology/robot_model.h"

namespace roboshape {
namespace core {

/** One accelerator slot in the SoC. */
struct SocComponent
{
    const topology::RobotModel *model = nullptr;
    sched::KernelKind kernel = sched::KernelKind::kDynamicsGradient;
};

/** A jointly feasible pair of design points. */
struct SocDesignPoint
{
    DesignPoint first;
    DesignPoint second;

    std::int64_t
    total_luts() const
    {
        return first.resources.luts + second.resources.luts;
    }
    std::int64_t
    total_dsps() const
    {
        return first.resources.dsps + second.resources.dsps;
    }
};

/**
 * Enumerates the (first x second) joint design space, keeps pairs that fit
 * @p platform at @p threshold, and returns the Pareto frontier of
 * (first.cycles, second.cycles) sorted by the first component.
 * Empty when no pair fits.
 */
std::vector<SocDesignPoint>
codesign_pareto(const SocComponent &first, const SocComponent &second,
                const accel::FpgaPlatform &platform,
                double threshold = accel::kUtilizationThreshold,
                const accel::TimingModel &timing = accel::default_timing());

} // namespace core
} // namespace roboshape

#endif // ROBOSHAPE_CORE_SOC_CODESIGN_H
