/**
 * @file
 * Implementation of the memoized sweep context.
 */

#include "core/sweep_context.h"

#include <cassert>
#include <limits>

#include "core/parallel.h"
#include "obs/registry.h"

namespace {

/** Mirrors a memo lookup into the process-wide registry. */
void
count_memo(bool hit)
{
    if (hit)
        ROBOSHAPE_OBS_COUNT("sweep.memo_hits", 1);
    else
        ROBOSHAPE_OBS_COUNT("sweep.memo_misses", 1);
}

} // namespace

namespace roboshape {
namespace core {

using sched::TaskType;

SweepContext::SweepContext(const topology::RobotModel &model,
                           const accel::TimingModel &timing,
                           sched::KernelKind kernel)
    : model_(std::make_shared<topology::RobotModel>(model)),
      timing_(timing), kernel_(kernel)
{
    topo_ = std::make_shared<topology::TopologyInfo>(*model_);
    graph_ = std::make_shared<sched::TaskGraph>(*topo_, kernel_);
    clock_period_ns_ = accel::clock_period_ns(topo_->metrics());

    const std::size_t n = num_links();
    fwd_.resize(n);
    bwd_.resize(n);
    pipelined_.resize(n * n);
    if (kernel_ == sched::KernelKind::kDynamicsGradient) {
        mask_a_ = sched::mass_inverse_mask(*topo_);
        mask_b_ = sched::derivative_mask(*topo_);
        mm_.resize(n);
    }
}

std::size_t
SweepContext::block_knob_max() const
{
    return kernel_ == sched::KernelKind::kDynamicsGradient ? num_links()
                                                           : 1;
}

const sched::Schedule &
SweepContext::forward(std::size_t pes_fwd)
{
    assert(pes_fwd >= 1 && pes_fwd <= fwd_.size());
    std::unique_ptr<sched::Schedule> &slot = fwd_[pes_fwd - 1];
    tally_fwd_.count(slot != nullptr);
    count_memo(slot != nullptr);
    if (!slot)
        slot = std::make_unique<sched::Schedule>(sched::schedule_stage(
            *graph_, {TaskType::kRneaForward, TaskType::kGradForward},
            pes_fwd, timing_.traversal));
    return *slot;
}

const sched::Schedule &
SweepContext::backward(std::size_t pes_bwd)
{
    assert(pes_bwd >= 1 && pes_bwd <= bwd_.size());
    std::unique_ptr<sched::Schedule> &slot = bwd_[pes_bwd - 1];
    tally_bwd_.count(slot != nullptr);
    count_memo(slot != nullptr);
    if (!slot)
        slot = std::make_unique<sched::Schedule>(sched::schedule_stage(
            *graph_, {TaskType::kRneaBackward, TaskType::kGradBackward},
            pes_bwd, timing_.traversal));
    return *slot;
}

const sched::Schedule &
SweepContext::pipelined(std::size_t pes_fwd, std::size_t pes_bwd)
{
    const std::size_t n = num_links();
    assert(pes_fwd >= 1 && pes_fwd <= n && pes_bwd >= 1 && pes_bwd <= n);
    std::unique_ptr<sched::Schedule> &slot =
        pipelined_[(pes_fwd - 1) * n + (pes_bwd - 1)];
    tally_pipelined_.count(slot != nullptr);
    count_memo(slot != nullptr);
    if (!slot)
        slot = std::make_unique<sched::Schedule>(sched::schedule_pipelined(
            *graph_, pes_fwd, pes_bwd, timing_.traversal));
    return *slot;
}

const sched::BlockSchedule &
SweepContext::block_multiply(std::size_t block_size)
{
    assert(kernel_ == sched::KernelKind::kDynamicsGradient &&
           "kernel has no blocked-multiply stage");
    assert(block_size >= 1 && block_size <= mm_.size());
    std::unique_ptr<sched::BlockSchedule> &slot = mm_[block_size - 1];
    tally_mm_.count(slot != nullptr);
    count_memo(slot != nullptr);
    if (!slot)
        slot = std::make_unique<sched::BlockSchedule>(
            sched::schedule_block_multiply(mask_a_, mask_b_, block_size,
                                           timing_.mm_units, timing_.tile,
                                           /*num_products=*/2));
    return *slot;
}

void
SweepContext::precompute_stage_schedules(std::size_t threads)
{
    const std::size_t n = num_links();
    const std::size_t mm_jobs = mm_.size();
    // Job layout: [0, n) forward, [n, 2n) backward, [2n, 2n + mm) blocked
    // multiply.  Each job owns exactly one cache slot, so no lock is needed
    // at any steal interleaving; already-filled slots are kept.
    // (DesignSpace::sweep no longer calls this — it folds the same jobs
    // into its composition job graph — but standalone contexts still use
    // it to make the lazy accessors concurrency-safe in one call.)
    parallel_for(
        2 * n + mm_jobs,
        [this, n](std::size_t job) {
            if (job < n)
                forward(job + 1);
            else if (job < 2 * n)
                backward(job - n + 1);
            else
                block_multiply(job - 2 * n + 1);
        },
        threads);
}

std::int64_t
SweepContext::cycles_no_pipelining(const accel::AcceleratorParams &p)
{
    std::int64_t cycles =
        forward(p.pes_fwd).makespan + backward(p.pes_bwd).makespan;
    if (kernel_ == sched::KernelKind::kDynamicsGradient)
        cycles += block_multiply(p.block_size).makespan;
    return cycles;
}

std::size_t
SweepContext::best_block_size()
{
    assert(kernel_ == sched::KernelKind::kDynamicsGradient);
    if (!best_block_) {
        std::size_t best = 1;
        std::int64_t best_ms = std::numeric_limits<std::int64_t>::max();
        for (std::size_t bs = 1; bs <= mm_.size(); ++bs) {
            const std::int64_t ms = block_multiply(bs).makespan;
            if (ms < best_ms) {
                best_ms = ms;
                best = bs;
            }
        }
        best_block_ = best;
    }
    return *best_block_;
}

SweepMemoStats
SweepContext::memo_stats() const
{
    const auto load = [](const std::atomic<std::uint64_t> &v) {
        return v.load(std::memory_order_relaxed);
    };
    SweepMemoStats s;
    s.forward_hits = load(tally_fwd_.hits);
    s.forward_misses = load(tally_fwd_.misses);
    s.backward_hits = load(tally_bwd_.hits);
    s.backward_misses = load(tally_bwd_.misses);
    s.pipelined_hits = load(tally_pipelined_.hits);
    s.pipelined_misses = load(tally_pipelined_.misses);
    s.block_hits = load(tally_mm_.hits);
    s.block_misses = load(tally_mm_.misses);
    return s;
}

accel::AcceleratorDesign
SweepContext::design(const accel::AcceleratorParams &p)
{
    return accel::AcceleratorDesign(
        model_, topo_, graph_, p, timing_, kernel_, forward(p.pes_fwd),
        backward(p.pes_bwd), pipelined(p.pes_fwd, p.pes_bwd),
        kernel_ == sched::KernelKind::kDynamicsGradient
            ? block_multiply(p.block_size)
            : sched::BlockSchedule{});
}

} // namespace core
} // namespace roboshape
