/**
 * @file
 * Implementation of JSON design export.
 */

#include "core/design_export.h"

#include "obs/json.h"

namespace roboshape {
namespace core {

namespace {

void
emit_roms(obs::JsonWriter &w, const sched::TaskGraph &graph,
          const std::vector<std::vector<sched::TaskId>> &roms,
          const char *name)
{
    w.key(name).begin_array();
    for (const std::vector<sched::TaskId> &rom : roms) {
        w.begin_array();
        for (const sched::TaskId id : rom)
            w.value(graph.task(id).label());
        w.end_array();
    }
    w.end_array();
}

} // namespace

std::string
design_to_json(const accel::AcceleratorDesign &design)
{
    const auto &topo = design.topology();
    const topology::TopologyMetrics m = topo.metrics();
    const auto &params = design.params();

    obs::JsonWriter w(2);
    w.begin_object();
    w.kv("robot", design.model().name());
    w.kv("kernel", to_string(design.kernel()));

    w.key("topology").begin_object();
    w.kv("total_links", static_cast<std::uint64_t>(m.total_links));
    w.kv("max_leaf_depth", static_cast<std::uint64_t>(m.max_leaf_depth));
    w.kv("avg_leaf_depth", m.avg_leaf_depth);
    w.kv("max_descendants", static_cast<std::uint64_t>(m.max_descendants));
    w.kv("leaf_depth_stdev", m.leaf_depth_stdev);
    w.kv("limbs",
         static_cast<std::uint64_t>(design.model().base_children().size()));
    w.kv("mass_matrix_sparsity", topo.mass_matrix_sparsity());
    w.end_object();

    w.key("knobs").begin_object();
    w.kv("pes_fwd", static_cast<std::uint64_t>(params.pes_fwd));
    w.kv("pes_bwd", static_cast<std::uint64_t>(params.pes_bwd));
    w.kv("size_block", static_cast<std::uint64_t>(params.block_size));
    w.end_object();

    w.key("timing").begin_object();
    w.kv("clock_period_ns", design.clock_period_ns());
    w.kv("cycles_no_pipelining",
         static_cast<std::uint64_t>(design.cycles_no_pipelining()));
    w.kv("cycles_pipelined",
         static_cast<std::uint64_t>(design.cycles_pipelined()));
    w.kv("forward_stage_cycles",
         static_cast<std::uint64_t>(design.forward_stage().makespan));
    w.kv("backward_stage_cycles",
         static_cast<std::uint64_t>(design.backward_stage().makespan));
    w.kv("block_multiply_cycles",
         static_cast<std::uint64_t>(design.block_multiply().makespan));
    w.end_object();

    w.key("resources").begin_object();
    w.kv("luts", static_cast<std::uint64_t>(design.resources().luts));
    w.kv("dsps", static_cast<std::uint64_t>(design.resources().dsps));
    w.end_object();

    w.key("schedules").begin_object();
    emit_roms(w, design.task_graph(), design.forward_stage().forward_rom,
              "forward");
    emit_roms(w, design.task_graph(), design.backward_stage().backward_rom,
              "backward");
    w.end_object();

    w.end_object();
    return w.str() + "\n";
}

} // namespace core
} // namespace roboshape
