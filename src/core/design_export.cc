/**
 * @file
 * Implementation of JSON design export.
 */

#include "core/design_export.h"

#include <sstream>

namespace roboshape {
namespace core {

namespace {

void
emit_roms(std::ostringstream &os, const sched::TaskGraph &graph,
          const std::vector<std::vector<sched::TaskId>> &roms,
          const char *name)
{
    os << "    \"" << name << "\": [";
    for (std::size_t pe = 0; pe < roms.size(); ++pe) {
        os << (pe ? ", " : "") << "[";
        for (std::size_t k = 0; k < roms[pe].size(); ++k)
            os << (k ? ", " : "") << "\""
               << graph.task(roms[pe][k]).label() << "\"";
        os << "]";
    }
    os << "]";
}

} // namespace

std::string
design_to_json(const accel::AcceleratorDesign &design)
{
    const auto &topo = design.topology();
    const topology::TopologyMetrics m = topo.metrics();
    const auto &params = design.params();

    std::ostringstream os;
    os << "{\n";
    os << "  \"robot\": \"" << design.model().name() << "\",\n";
    os << "  \"kernel\": \"" << to_string(design.kernel()) << "\",\n";
    os << "  \"topology\": {\n";
    os << "    \"total_links\": " << m.total_links << ",\n";
    os << "    \"max_leaf_depth\": " << m.max_leaf_depth << ",\n";
    os << "    \"avg_leaf_depth\": " << m.avg_leaf_depth << ",\n";
    os << "    \"max_descendants\": " << m.max_descendants << ",\n";
    os << "    \"leaf_depth_stdev\": " << m.leaf_depth_stdev << ",\n";
    os << "    \"limbs\": " << design.model().base_children().size()
       << ",\n";
    os << "    \"mass_matrix_sparsity\": " << topo.mass_matrix_sparsity()
       << "\n  },\n";
    os << "  \"knobs\": {\n";
    os << "    \"pes_fwd\": " << params.pes_fwd << ",\n";
    os << "    \"pes_bwd\": " << params.pes_bwd << ",\n";
    os << "    \"size_block\": " << params.block_size << "\n  },\n";
    os << "  \"timing\": {\n";
    os << "    \"clock_period_ns\": " << design.clock_period_ns() << ",\n";
    os << "    \"cycles_no_pipelining\": " << design.cycles_no_pipelining()
       << ",\n";
    os << "    \"cycles_pipelined\": " << design.cycles_pipelined()
       << ",\n";
    os << "    \"forward_stage_cycles\": "
       << design.forward_stage().makespan << ",\n";
    os << "    \"backward_stage_cycles\": "
       << design.backward_stage().makespan << ",\n";
    os << "    \"block_multiply_cycles\": "
       << design.block_multiply().makespan << "\n  },\n";
    os << "  \"resources\": {\n";
    os << "    \"luts\": " << design.resources().luts << ",\n";
    os << "    \"dsps\": " << design.resources().dsps << "\n  },\n";
    os << "  \"schedules\": {\n";
    emit_roms(os, design.task_graph(), design.forward_stage().forward_rom,
              "forward");
    os << ",\n";
    emit_roms(os, design.task_graph(),
              design.backward_stage().backward_rom, "backward");
    os << "\n  }\n";
    os << "}\n";
    return os.str();
}

} // namespace core
} // namespace roboshape
