/**
 * @file
 * Implementation of multi-core throughput planning.
 */

#include "core/throughput.h"

#include <algorithm>
#include <cmath>

namespace roboshape {
namespace core {

MulticoreDeployment
plan_multicore(const accel::AcceleratorDesign &design,
               const accel::FpgaPlatform &platform, double threshold)
{
    MulticoreDeployment plan;
    const auto &r = design.resources();
    if (r.luts <= 0 || r.dsps <= 0)
        return plan;

    const double lut_budget =
        static_cast<double>(platform.luts) * threshold;
    const double dsp_budget =
        static_cast<double>(platform.dsps) * threshold;
    const std::size_t by_luts = static_cast<std::size_t>(
        lut_budget / static_cast<double>(r.luts));
    const std::size_t by_dsps = static_cast<std::size_t>(
        dsp_budget / static_cast<double>(r.dsps));
    plan.cores = std::min(by_luts, by_dsps);
    if (plan.cores == 0)
        return plan;

    plan.per_core_interval_us = design.latency_us_pipelined();
    plan.throughput_per_s = static_cast<double>(plan.cores) * 1e6 /
                            plan.per_core_interval_us;
    plan.lut_utilization = static_cast<double>(plan.cores) *
                           static_cast<double>(r.luts) /
                           static_cast<double>(platform.luts);
    plan.dsp_utilization = static_cast<double>(plan.cores) *
                           static_cast<double>(r.dsps) /
                           static_cast<double>(platform.dsps);
    return plan;
}

} // namespace core
} // namespace roboshape
