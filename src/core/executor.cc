/**
 * @file
 * Implementation of the persistent work-stealing executor.
 *
 * Synchronization map (every shared access is an atomic or under a lock,
 * the tree builds TSan-clean):
 *
 *  - region_mutex_ serializes top-level regions; one Region descriptor
 *    (member storage, never a stack object) is reused for all of them.
 *
 *  - Workers park on {park_mutex_, park_cv_, epoch_}.  A leader installs
 *    the region, bumps the epoch under park_mutex_, and notifies; workers
 *    re-park when the region drains.
 *
 *  - Region install uses a seqlock (install_seq_ odd = writing) against
 *    joined_, the count of workers currently inside the region protocol.
 *    A worker joins with joined_++ (seq_cst) then reads install_seq_; a
 *    leader writes install_seq_ odd (seq_cst) then waits for joined_ == 0.
 *    By the seq_cst total order either the worker observes the odd mark
 *    and backs off, or the leader observes the join and waits — region
 *    fields are never read while being rewritten, and late-waking workers
 *    from a previous epoch at worst join the *current* region, which is
 *    legitimate (they hold a lane < width or leave immediately).
 *
 *  - Task queues are Chase-Lev deques: the owning lane pushes/takes at
 *    the bottom, thieves CAS the top.  Cells are atomics (no data races),
 *    the racy take/steal handoff uses seq_cst, and grown buffers are
 *    retired to a graveyard freed at destruction so a thief holding a
 *    stale buffer pointer never reads freed memory (indices [top, bottom)
 *    are immutable in a retired buffer).
 *
 *  - remaining_ is the region's task countdown.  Every task decrements it
 *    with release ordering after its writes (and its per-lane tallies);
 *    the leader's acquire load of 0 therefore publishes every output and
 *    every tally to the caller — this is the visibility half of the
 *    bit-identical-at-any-width guarantee (the other half is that index
 *    ownership of output slots never depends on the interleaving).
 */

#include "core/executor.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

#include "core/parse_uint.h"
#include "obs/registry.h"
#include "obs/wall_trace.h"

namespace roboshape {
namespace core {

namespace {

/**
 * Strictly parses a thread-count environment value: the full string must
 * be a positive decimal integer (core::parse_uint).  Returns 0 (no
 * override) and warns once per variable on garbage — the pre-PR-7
 * behavior of silently falling back to hardware concurrency hid typos
 * like ROBOSHAPE_THREADS=abc.
 */
std::size_t
parse_thread_env(const char *name, std::atomic<bool> &warned)
{
    const char *value = std::getenv(name);
    if (value == nullptr || *value == '\0')
        return 0;
    const std::optional<std::uint64_t> parsed = parse_uint(
        value, 1, std::numeric_limits<std::size_t>::max());
    if (!parsed) {
        if (!warned.exchange(true))
            std::fprintf(stderr,
                         "roboshape: ignoring invalid %s='%s' (expected a "
                         "positive integer); using the default worker "
                         "count\n",
                         name, value);
        return 0;
    }
    return static_cast<std::size_t>(*parsed);
}

/** Thread-count override from the environment, 0 when unset/invalid.
 *  ROBOSHAPE_THREADS wins; ROBOSHAPE_SWEEP_THREADS is a deprecated
 *  alias kept for pre-executor scripts. */
std::size_t
env_thread_override()
{
    static std::atomic<bool> warned_threads{false};
    static std::atomic<bool> warned_sweep{false};
    if (const std::size_t n =
            parse_thread_env("ROBOSHAPE_THREADS", warned_threads))
        return n;
    return parse_thread_env("ROBOSHAPE_SWEEP_THREADS", warned_sweep);
}

/** splitmix64 step; seeds the per-lane steal-victim shuffle. */
inline std::uint64_t
next_rng(std::uint64_t &state)
{
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

/**
 * Chase-Lev work-stealing deque of 64-bit payloads.  push()/take() are
 * owner-only (the lane the deque belongs to); steal() is safe from any
 * thread.  Grows geometrically; old buffers are retired, not freed, so
 * concurrent thieves never touch reclaimed memory.
 */
class TaskDeque
{
  public:
    TaskDeque() : buffer_(new Buffer(kInitialCapacity, nullptr)) {}

    ~TaskDeque()
    {
        Buffer *b = buffer_.load(std::memory_order_relaxed);
        while (b != nullptr) {
            Buffer *prev = b->prev;
            delete b;
            b = prev;
        }
    }

    TaskDeque(const TaskDeque &) = delete;
    TaskDeque &operator=(const TaskDeque &) = delete;

    /** Owner-only.  Returns the deque size after the push. */
    std::size_t push(std::uint64_t v)
    {
        const std::int64_t b = bottom_.load(std::memory_order_relaxed);
        const std::int64_t t = top_.load(std::memory_order_acquire);
        Buffer *buf = buffer_.load(std::memory_order_relaxed);
        if (b - t >= static_cast<std::int64_t>(buf->capacity)) {
            // Retire into the graveyard chain; thieves may still read
            // [t, b) from the old cells, which stay untouched.
            Buffer *grown = new Buffer(buf->capacity * 2, buf);
            for (std::int64_t i = t; i < b; ++i)
                grown->cell(i).store(
                    buf->cell(i).load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
            buffer_.store(grown, std::memory_order_release);
            buf = grown;
        }
        buf->cell(b).store(v, std::memory_order_release);
        bottom_.store(b + 1, std::memory_order_seq_cst);
        return static_cast<std::size_t>(b + 1 - t);
    }

    /** Owner-only LIFO pop. */
    bool take(std::uint64_t &v)
    {
        const std::int64_t b =
            bottom_.load(std::memory_order_relaxed) - 1;
        Buffer *buf = buffer_.load(std::memory_order_relaxed);
        bottom_.store(b, std::memory_order_seq_cst);
        std::int64_t t = top_.load(std::memory_order_seq_cst);
        if (t <= b) {
            v = buf->cell(b).load(std::memory_order_relaxed);
            if (t == b) {
                // Last element: race the thieves for it via top.
                const bool won = top_.compare_exchange_strong(
                    t, t + 1, std::memory_order_seq_cst,
                    std::memory_order_relaxed);
                bottom_.store(b + 1, std::memory_order_relaxed);
                return won;
            }
            return true;
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
        return false;
    }

    enum class Steal
    {
        kEmpty,
        kAbort, ///< Lost a race; retrying may succeed.
        kOk,
    };

    /** FIFO steal from any thread. */
    Steal steal(std::uint64_t &v)
    {
        std::int64_t t = top_.load(std::memory_order_seq_cst);
        const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
        if (t >= b)
            return Steal::kEmpty;
        Buffer *buf = buffer_.load(std::memory_order_acquire);
        const std::uint64_t cell =
            buf->cell(t).load(std::memory_order_relaxed);
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed))
            return Steal::kAbort;
        v = cell;
        return Steal::kOk;
    }

  private:
    static constexpr std::size_t kInitialCapacity = 256;

    struct Buffer
    {
        Buffer(std::size_t cap, Buffer *prev_buffer)
            : capacity(cap), mask(cap - 1),
              cells(new std::atomic<std::uint64_t>[cap]),
              prev(prev_buffer)
        {
        }

        std::atomic<std::uint64_t> &cell(std::int64_t i)
        {
            return cells[static_cast<std::size_t>(i) & mask];
        }

        std::size_t capacity;
        std::size_t mask;
        std::unique_ptr<std::atomic<std::uint64_t>[]> cells;
        Buffer *prev; ///< Graveyard chain of retired buffers.
    };

    alignas(64) std::atomic<std::int64_t> top_{0};
    alignas(64) std::atomic<std::int64_t> bottom_{0};
    alignas(64) std::atomic<Buffer *> buffer_;
};

/** True while this thread executes inside a region (leader or worker);
 *  nested parallel calls then run inline instead of deadlocking on the
 *  region mutex. */
thread_local bool t_inside_region = false;

} // namespace

JobGraph::NodeId
JobGraph::add(std::function<void(std::size_t)> fn)
{
    auto node = std::make_unique<Node>();
    node->fn = std::move(fn);
    nodes_.push_back(std::move(node));
    pending_.push_back(0);
    return nodes_.size() - 1;
}

void
JobGraph::add_edge(NodeId before, NodeId after)
{
    assert(before < nodes_.size() && after < nodes_.size());
    assert(before != after);
    nodes_[before]->successors.push_back(after);
    ++nodes_[after]->dependency_count;
}

struct Executor::Impl
{
    /** One region descriptor, reused for every region (see file comment:
     *  member storage means late-waking workers never dangle). */
    struct Region
    {
        // Chunked parallel-for (graph == nullptr): payloads are chunk ids.
        void *ctx = nullptr;
        ChunkInvoke invoke = nullptr;
        std::size_t count = 0;
        std::size_t grain = 1;
        // Graph region: payloads are node ids.
        JobGraph *graph = nullptr;

        std::size_t width = 1;
        std::atomic<std::size_t> remaining{0};

        /** Trace-request id of the leading thread: workers adopt it for
         *  the region so their exec.worker spans attribute to the request
         *  whose job graph they are draining (obs/wall_trace.h). */
        std::uint64_t trace_req = 0;

        /** Per-lane tallies, updated before the remaining_ decrement so
         *  the leader's acquire of remaining == 0 publishes them. */
        struct alignas(64) LaneTally
        {
            std::atomic<std::uint64_t> tasks{0};
            std::atomic<std::uint64_t> steals{0};
            std::atomic<std::uint64_t> queue_peak{0};
        };
        LaneTally tally[kMaxExecutorLanes];
    };

    std::mutex region_mutex_;

    std::mutex park_mutex_;
    std::condition_variable park_cv_;
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<bool> shutdown_{false};

    /** Seqlock guarding region_ rewrites (odd = leader writing). */
    std::atomic<std::uint64_t> install_seq_{0};
    /** Workers currently inside the region protocol. */
    std::atomic<std::uint32_t> joined_{0};

    Region region_;
    std::unique_ptr<TaskDeque[]> deques_{new TaskDeque[kMaxExecutorLanes]};

    std::mutex grow_mutex_;
    std::vector<std::thread> workers_; ///< Lanes 1..workers_.size().
    std::atomic<std::size_t> spawned_{0};

    // --- worker pool ---------------------------------------------------

    /** Grows the pool so lanes [1, lanes) exist.  Leader-only, under
     *  region_mutex_; racing instance() callers are excluded by it. */
    void ensure_workers(std::size_t lanes)
    {
        if (spawned_.load(std::memory_order_acquire) + 1 >= lanes)
            return;
        std::lock_guard<std::mutex> lock(grow_mutex_);
        while (workers_.size() + 1 < lanes) {
            const std::size_t lane = workers_.size() + 1;
            workers_.emplace_back([this, lane] { worker_loop(lane); });
        }
        spawned_.store(workers_.size(), std::memory_order_release);
    }

    // Steady-state worker protocol: park/join/execute/steal runs for the
    // process lifetime and must never allocate — growth (pool spawn, deque
    // buffers) happens in ensure_workers()/TaskDeque::push() outside this
    // region.  Enforced lexically by roboshape_lint (no-alloc-warm-path).
    // lint: warm-path begin
    void worker_loop(std::size_t lane)
    {
        t_inside_region = true; // nested submissions from tasks run inline
        std::uint64_t last_epoch = 0;
        for (;;) {
            {
                std::unique_lock<std::mutex> lock(park_mutex_);
                ROBOSHAPE_OBS_COUNT("exec.parks", 1);
                park_cv_.wait(lock, [&] {
                    return shutdown_.load(std::memory_order_relaxed) ||
                           epoch_.load(std::memory_order_relaxed) !=
                               last_epoch;
                });
            }
            if (shutdown_.load(std::memory_order_relaxed))
                return;
            last_epoch = epoch_.load(std::memory_order_acquire);
            join_region(lane);
        }
    }

    /** Worker half of the install seqlock (see file comment). */
    void join_region(std::size_t lane)
    {
        for (;;) {
            joined_.fetch_add(1, std::memory_order_seq_cst);
            if ((install_seq_.load(std::memory_order_seq_cst) & 1) == 0)
                break; // fields are stable while we hold joined_
            joined_.fetch_sub(1, std::memory_order_seq_cst);
            while (install_seq_.load(std::memory_order_seq_cst) & 1)
                std::this_thread::yield();
        }
        Region &r = region_;
        if (lane < r.width &&
            r.remaining.load(std::memory_order_acquire) != 0) {
            obs::set_trace_request_id(r.trace_req);
            work_loop(r, lane);
            obs::set_trace_request_id(0);
        }
        joined_.fetch_sub(1, std::memory_order_release);
    }

    // --- task execution ------------------------------------------------

    void execute(Region &r, std::uint64_t payload, std::size_t lane)
    {
        if (r.graph == nullptr) {
            const std::size_t begin = payload * r.grain;
            const std::size_t end =
                std::min(r.count, begin + r.grain);
            r.invoke(r.ctx, begin, end, lane);
        } else {
            JobGraph &g = *r.graph;
            JobGraph::Node &node = *g.nodes_[payload];
            node.fn(lane);
            for (const JobGraph::NodeId succ : node.successors) {
                if (dec_pending(g, succ) == 0) {
                    const std::size_t depth =
                        deques_[lane].push(succ);
                    bump_peak(r, lane, depth);
                }
            }
        }
        r.tally[lane].tasks.fetch_add(1, std::memory_order_relaxed);
        r.remaining.fetch_sub(1, std::memory_order_release);
    }

    /** Atomic decrement of a graph node's pending-dependency count.
     *  pending_ cells are plain integers armed by the leader inside the
     *  install window; concurrent decrements use an atomic view. */
    static std::uint32_t dec_pending(JobGraph &g, JobGraph::NodeId id)
    {
        return std::atomic_ref<std::uint32_t>(g.pending_[id])
                   .fetch_sub(1, std::memory_order_acq_rel) -
               1;
    }

    static void bump_peak(Region &r, std::size_t lane, std::size_t depth)
    {
        auto &peak = r.tally[lane].queue_peak;
        if (depth > peak.load(std::memory_order_relaxed))
            peak.store(depth, std::memory_order_relaxed);
    }

    bool try_steal(Region &r, std::size_t lane, std::uint64_t &payload,
                   std::uint64_t &rng)
    {
        const std::size_t width = r.width;
        const std::size_t start =
            static_cast<std::size_t>(next_rng(rng)) % width;
        for (std::size_t k = 0; k < width; ++k) {
            const std::size_t victim = (start + k) % width;
            if (victim == lane)
                continue;
            std::uint64_t v = 0;
            switch (deques_[victim].steal(v)) {
              case TaskDeque::Steal::kOk:
                payload = v;
                r.tally[lane].steals.fetch_add(
                    1, std::memory_order_relaxed);
                return true;
              case TaskDeque::Steal::kAbort:
                // Contended victim: retry it once before moving on.
                if (deques_[victim].steal(v) ==
                    TaskDeque::Steal::kOk) {
                    payload = v;
                    r.tally[lane].steals.fetch_add(
                        1, std::memory_order_relaxed);
                    return true;
                }
                break;
              case TaskDeque::Steal::kEmpty:
                break;
            }
        }
        return false;
    }

    /** Drains the region from @p lane: own deque first, then randomized
     *  stealing, yielding while starved, until every task completed. */
    void work_loop(Region &r, std::size_t lane)
    {
        const bool traced = obs::wall_trace_enabled();
        std::uint64_t t_first = 0, t_last = 0;
        std::uint64_t executed = 0;
        std::uint64_t rng = 0xE5C0 + lane;
        while (r.remaining.load(std::memory_order_acquire) != 0) {
            std::uint64_t payload = 0;
            bool got = deques_[lane].take(payload);
            if (!got)
                got = try_steal(r, lane, payload, rng);
            if (!got) {
                std::this_thread::yield();
                continue;
            }
            if (traced && t_first == 0)
                t_first = obs::wall_now_ns();
            execute(r, payload, lane);
            ++executed;
            if (traced)
                t_last = obs::wall_now_ns();
        }
        if (traced && t_first != 0)
            obs::record_wall_span("exec.worker", "exec", t_first, t_last,
                                  static_cast<std::int32_t>(lane),
                                  static_cast<std::int32_t>(executed));
    }
    // lint: warm-path end

    // --- region lifecycle (leader side) --------------------------------

    /**
     * Runs the installed-region protocol: @p seed pushes the initial
     * payloads to lane 0's deque and returns the task count.  Assumes
     * region fields other than width/remaining were already set by the
     * caller (which holds region_mutex_).
     */
    template <typename Seed>
    void lead_region(std::size_t width, std::size_t num_tasks,
                     Seed &&seed)
    {
        ensure_workers(width);

        // Install under the seqlock: no worker reads fields while odd.
        install_seq_.fetch_add(1, std::memory_order_seq_cst);
        while (joined_.load(std::memory_order_seq_cst) != 0)
            std::this_thread::yield();
        region_.width = width;
        region_.remaining.store(num_tasks, std::memory_order_relaxed);
        region_.trace_req = obs::trace_request_id();
        for (std::size_t lane = 0; lane < width; ++lane) {
            region_.tally[lane].tasks.store(0,
                                            std::memory_order_relaxed);
            region_.tally[lane].steals.store(0,
                                             std::memory_order_relaxed);
            region_.tally[lane].queue_peak.store(
                0, std::memory_order_relaxed);
        }
        seed();
        install_seq_.fetch_add(1, std::memory_order_seq_cst);

        {
            std::lock_guard<std::mutex> lock(park_mutex_);
            epoch_.fetch_add(1, std::memory_order_release);
        }
        park_cv_.notify_all();

        t_inside_region = true;
        work_loop(region_, 0);
        t_inside_region = false;

        flush_tallies(width, num_tasks);
    }

    void flush_tallies(std::size_t width, std::size_t num_tasks)
    {
        (void)width;
        (void)num_tasks;
#ifndef ROBOSHAPE_NO_OBS
        std::uint64_t steals = 0, peak = 0;
        for (std::size_t lane = 0; lane < width; ++lane) {
            steals += region_.tally[lane].steals.load(
                std::memory_order_relaxed);
            peak = std::max(peak, region_.tally[lane].queue_peak.load(
                                      std::memory_order_relaxed));
        }
        ROBOSHAPE_OBS_COUNT("exec.regions", 1);
        ROBOSHAPE_OBS_COUNT("exec.tasks", num_tasks);
        ROBOSHAPE_OBS_COUNT("exec.steals", steals);
        ROBOSHAPE_OBS_RECORD("exec.queue_depth_peak", peak);
#endif
    }

    /** Executed packets/tasks per lane of the last region, for callers
     *  (SimEngine) that report shard balance. */
    std::uint64_t lane_tasks(std::size_t lane) const
    {
        return region_.tally[lane].tasks.load(std::memory_order_relaxed);
    }
};

Executor::Executor() : impl_(std::make_unique<Impl>())
{
#ifndef ROBOSHAPE_NO_OBS
    // Pre-register every exec.* entry so first use inside a measured
    // region never allocates (the allocation-free warm-submission test
    // depends on this).
    obs::registry().counter("exec.regions");
    obs::registry().counter("exec.tasks");
    obs::registry().counter("exec.steals");
    obs::registry().counter("exec.parks");
    obs::registry().histogram("exec.queue_depth_peak");
#endif
}

Executor::~Executor()
{
    impl_->shutdown_.store(true, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(impl_->park_mutex_);
        impl_->epoch_.fetch_add(1, std::memory_order_release);
    }
    impl_->park_cv_.notify_all();
    for (std::thread &worker : impl_->workers_)
        worker.join();
}

Executor &
Executor::instance()
{
    static Executor executor;
    return executor;
}

std::size_t
Executor::worker_count() const
{
    std::size_t n = env_thread_override();
    if (n == 0)
        n = std::max<std::size_t>(1,
                                  std::thread::hardware_concurrency());
    return std::min(n, kMaxExecutorLanes);
}

std::size_t
Executor::resolve_width(std::size_t count, std::size_t requested) const
{
    std::size_t width = requested != 0 ? requested : worker_count();
    width = std::min(width, kMaxExecutorLanes);
    return std::clamp<std::size_t>(width, 1,
                                   std::max<std::size_t>(count, 1));
}

void
Executor::run_chunked(void *ctx, ChunkInvoke invoke, std::size_t count,
                      std::size_t requested)
{
    if (count == 0)
        return;
    const std::size_t width = resolve_width(count, requested);
    if (width <= 1 || t_inside_region) {
        invoke(ctx, 0, count, 0);
        return;
    }

    // Chunk granularity: several chunks per lane so stealing can
    // rebalance heterogeneous costs, without per-index queue traffic.
    // The chunk map depends only on (count, width) — and outputs depend
    // on neither, because fn(i) owns slot i regardless of who runs it.
    constexpr std::size_t kChunksPerLane = 8;
    const std::size_t max_chunks =
        std::min(count, width * kChunksPerLane);
    const std::size_t grain = (count + max_chunks - 1) / max_chunks;
    const std::size_t num_chunks = (count + grain - 1) / grain;

    Impl &impl = *impl_;
    std::lock_guard<std::mutex> region_lock(impl.region_mutex_);
    impl.region_.ctx = ctx;
    impl.region_.invoke = invoke;
    impl.region_.count = count;
    impl.region_.grain = grain;
    impl.region_.graph = nullptr;
    impl.lead_region(width, num_chunks, [&] {
        std::size_t depth = 0;
        for (std::size_t c = 0; c < num_chunks; ++c)
            depth = impl.deques_[0].push(c);
        Impl::bump_peak(impl.region_, 0, depth);
    });
}

void
Executor::run(JobGraph &graph, std::size_t requested)
{
    const std::size_t nodes = graph.size();
    if (nodes == 0)
        return;

    // Arm the per-run dependency countdowns and reject cyclic graphs up
    // front (a cycle would park the region forever).  Kahn's count over
    // a scratch copy costs O(V + E) — noise next to any real node.  The
    // scratch lives in the graph so warm runs allocate nothing.
    graph.pending_.assign(nodes, 0);
    std::vector<std::uint32_t> &scratch = graph.scratch_;
    std::vector<JobGraph::NodeId> &ready = graph.ready_;
    scratch.assign(nodes, 0);
    ready.clear();
    ready.reserve(nodes);
    for (JobGraph::NodeId id = 0; id < nodes; ++id) {
        graph.pending_[id] = graph.nodes_[id]->dependency_count;
        scratch[id] = graph.nodes_[id]->dependency_count;
        if (scratch[id] == 0)
            ready.push_back(id);
    }
    std::size_t ordered = 0;
    for (std::size_t head = 0; head < ready.size(); ++head) {
        ++ordered;
        for (const JobGraph::NodeId succ :
             graph.nodes_[ready[head]]->successors)
            if (--scratch[succ] == 0)
                ready.push_back(succ);
    }
    if (ordered != nodes)
        throw std::invalid_argument("JobGraph contains a cycle");

    const std::size_t width = resolve_width(nodes, requested);
    if (width <= 1 || t_inside_region) {
        // Inline topological execution (ready is a valid order).
        for (const JobGraph::NodeId id : ready)
            graph.nodes_[id]->fn(0);
        return;
    }

    Impl &impl = *impl_;
    std::lock_guard<std::mutex> region_lock(impl.region_mutex_);
    impl.region_.ctx = nullptr;
    impl.region_.invoke = nullptr;
    impl.region_.count = nodes;
    impl.region_.grain = 1;
    impl.region_.graph = &graph;
    impl.lead_region(width, nodes, [&] {
        std::size_t depth = 0;
        for (JobGraph::NodeId id = 0; id < nodes; ++id)
            if (graph.pending_[id] == 0)
                depth = impl.deques_[0].push(id);
        Impl::bump_peak(impl.region_, 0, depth);
    });
}

} // namespace core
} // namespace roboshape
