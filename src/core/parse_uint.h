/**
 * @file
 * Strict unsigned-integer string parsing shared by every front end.
 *
 * `std::stoul` / `std::strtoull` are the wrong tool for validating user
 * input: they skip leading whitespace, accept a sign (silently wrapping
 * "-1" to a huge value), and stop at the first non-digit, so "4abc"
 * parses as 4.  PR 7 fixed that bug class for ROBOSHAPE_THREADS inside
 * the executor; this header factors the strict parser out so the CLI
 * tools, the fuzz harness, and the service layer all reject malformed
 * numerics the same way instead of re-growing the bug.
 *
 * Contract: the WHOLE string must be plain decimal digits ("0".."9"+) —
 * no sign, no whitespace, no prefix, no trailing garbage — and the value
 * must fit in [min, max].  Anything else returns nullopt.
 */

#ifndef ROBOSHAPE_CORE_PARSE_UINT_H
#define ROBOSHAPE_CORE_PARSE_UINT_H

#include <cstdint>
#include <limits>
#include <optional>
#include <string_view>

namespace roboshape {
namespace core {

/**
 * Parses @p text as a strict decimal digit string in [@p min, @p max].
 *
 * Rejects (returns nullopt): empty strings, any non-digit character
 * (signs, whitespace, hex/octal prefixes, trailing garbage), values that
 * overflow std::uint64_t, and values outside the requested range.
 * Redundant leading zeros are accepted ("007" == 7).
 */
std::optional<std::uint64_t>
parse_uint(std::string_view text, std::uint64_t min = 0,
           std::uint64_t max = std::numeric_limits<std::uint64_t>::max());

} // namespace core
} // namespace roboshape

#endif // ROBOSHAPE_CORE_PARSE_UINT_H
