/**
 * @file
 * The RoboShape generator façade (paper Fig. 7).
 *
 * Takes a standard robot description plus compute-resource constraints and
 * produces a complete accelerator design: topology is parsed (Sec. 4.1),
 * traversal patterns are scheduled onto PE pools (Sec. 4.2), the matrix
 * block size is tuned against the topology sparsity (Sec. 4.3), and the
 * result is lowered onto the templated architecture (Sec. 4.4).  Pair with
 * codegen::emit_verilog to obtain the hardware description.
 */

#ifndef ROBOSHAPE_CORE_GENERATOR_H
#define ROBOSHAPE_CORE_GENERATOR_H

#include <optional>
#include <string>

#include "accel/design.h"
#include "accel/platform.h"
#include "topology/robot_model.h"

namespace roboshape {
namespace core {

/** Compute-resource constraints accepted by the generator. */
struct GeneratorConstraints
{
    /** Explicit knob caps; unset values are tuned automatically. */
    std::optional<std::size_t> max_pes_fwd;
    std::optional<std::size_t> max_pes_bwd;
    std::optional<std::size_t> max_block_size;

    /** Target platform; designs must fit within the threshold. */
    const accel::FpgaPlatform *platform = nullptr;
    double utilization_threshold = accel::kUtilizationThreshold;
};

/** Error raised when no feasible design satisfies the constraints. */
class GenerationError : public std::runtime_error
{
  public:
    explicit GenerationError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/** A generated accelerator plus its human-readable generation report. */
struct GeneratedAccelerator
{
    accel::AcceleratorDesign design;
    std::string report;
};

class Generator
{
  public:
    explicit Generator(const accel::TimingModel &timing =
                           accel::default_timing())
        : timing_(timing)
    {
    }

    /** Generates from URDF text (the paper's primary input path). */
    GeneratedAccelerator
    from_urdf(const std::string &urdf_text,
              const GeneratorConstraints &constraints = {}) const;

    /** Generates from an in-memory model. */
    GeneratedAccelerator
    from_model(const topology::RobotModel &model,
               const GeneratorConstraints &constraints = {}) const;

  private:
    accel::TimingModel timing_;
};

} // namespace core
} // namespace roboshape

#endif // ROBOSHAPE_CORE_GENERATOR_H
