#include "core/parse_uint.h"

namespace roboshape {
namespace core {

std::optional<std::uint64_t>
parse_uint(std::string_view text, std::uint64_t min, std::uint64_t max)
{
    if (text.empty())
        return std::nullopt;
    std::uint64_t value = 0;
    for (const char c : text) {
        if (c < '0' || c > '9')
            return std::nullopt;
        const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
        if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10)
            return std::nullopt; // would overflow
        value = value * 10 + digit;
    }
    if (value < min || value > max)
        return std::nullopt;
    return value;
}

} // namespace core
} // namespace roboshape
