/**
 * @file
 * Implementation of the generator façade.
 */

#include "core/generator.h"

#include <algorithm>
#include <sstream>

#include "core/design_space.h"
#include "core/sweep_context.h"
#include "sched/allocation.h"
#include "topology/urdf_parser.h"

namespace roboshape {
namespace core {

namespace {

/** Auto-tunes knobs: Hybrid allocation and best block size, clipped to the
 *  caller's caps, then shrunk until the design fits the platform.  The
 *  feasibility loop revisits schedules as the pools shrink, so it draws
 *  them from the caller's memoized @p ctx. */
accel::AcceleratorParams
choose_params(SweepContext &ctx, const GeneratorConstraints &constraints)
{
    const std::size_t n = ctx.num_links();

    const sched::Allocation hybrid = sched::allocate(
        sched::AllocationStrategy::kHybrid, ctx.topology().metrics());
    accel::AcceleratorParams params;
    params.pes_fwd = std::min({hybrid.pes_fwd, n,
                               constraints.max_pes_fwd.value_or(n)});
    params.pes_bwd = std::min({hybrid.pes_bwd, n,
                               constraints.max_pes_bwd.value_or(n)});

    // Block size: the multiply stage only needs to keep up with the
    // slowest traversal stage, so pick the *smallest* block achieving
    // that (larger blocks pay cubic accumulator area for no end-to-end
    // latency).  Fall back to the globally fastest block.
    const auto pick_block = [&](std::size_t pes_fwd, std::size_t pes_bwd) {
        const std::int64_t threshold =
            std::max(ctx.forward(pes_fwd).makespan,
                     ctx.backward(pes_bwd).makespan);
        const std::size_t cap = constraints.max_block_size.value_or(n);
        for (std::size_t bs = 1; bs <= cap; ++bs) {
            if (ctx.block_multiply(bs).makespan <= threshold)
                return bs;
        }
        return std::min(ctx.best_block_size(), cap);
    };
    params.block_size = pick_block(params.pes_fwd, params.pes_bwd);

    if (!constraints.platform)
        return params;

    // Feasibility loop: trim PE pools (re-picking the block to match the
    // slower schedules) until the estimate fits.
    for (;;) {
        const accel::ResourceEstimate est =
            accel::estimate_resources(params, n);
        if (est.fits(*constraints.platform,
                     constraints.utilization_threshold))
            return params;
        if (params.pes_fwd + params.pes_bwd > 2) {
            // Shrink the larger pool first (it buys the least latency at
            // the margin for most topologies).
            if (params.pes_fwd >= params.pes_bwd && params.pes_fwd > 1)
                --params.pes_fwd;
            else if (params.pes_bwd > 1)
                --params.pes_bwd;
            params.block_size =
                pick_block(params.pes_fwd, params.pes_bwd);
        } else if (params.block_size > 1) {
            --params.block_size;
        } else {
            throw GenerationError(
                "no feasible design for robot '" + ctx.model().name() +
                "' on " + constraints.platform->name + " within " +
                std::to_string(constraints.utilization_threshold * 100.0) +
                "% utilization");
        }
    }
}

std::string
make_report(const accel::AcceleratorDesign &design,
            const GeneratorConstraints &constraints)
{
    const auto &topo = design.topology();
    const topology::TopologyMetrics m = topo.metrics();
    std::ostringstream os;
    os << "RoboShape accelerator for '" << design.model().name() << "'\n";
    os << "  topology: N=" << m.total_links
       << " maxLeafDepth=" << m.max_leaf_depth
       << " maxDescendants=" << m.max_descendants
       << " limbs=" << design.model().base_children().size()
       << " massMatrixSparsity=" << topo.mass_matrix_sparsity() << "\n";
    os << "  knobs: " << design.params().to_string() << "\n";
    os << "  schedule: fwd=" << design.forward_stage().makespan
       << "cyc bwd=" << design.backward_stage().makespan
       << "cyc blockMM=" << design.block_multiply().makespan << "cyc\n";
    os << "  latency: " << design.cycles_no_pipelining()
       << " cycles (no pipelining), " << design.cycles_pipelined()
       << " cycles (avg w/ pipelining) @ " << design.clock_period_ns()
       << " ns\n";
    os << "  resources: " << design.resources().luts << " LUTs, "
       << design.resources().dsps << " DSPs";
    if (constraints.platform) {
        os << " (" << constraints.platform->name << ": "
           << design.resources().lut_utilization(*constraints.platform) *
                  100.0
           << "% LUTs, "
           << design.resources().dsp_utilization(*constraints.platform) *
                  100.0
           << "% DSPs)";
    }
    os << "\n";
    return os.str();
}

} // namespace

GeneratedAccelerator
Generator::from_urdf(const std::string &urdf_text,
                     const GeneratorConstraints &constraints) const
{
    return from_model(topology::parse_urdf(urdf_text), constraints);
}

GeneratedAccelerator
Generator::from_model(const topology::RobotModel &model,
                      const GeneratorConstraints &constraints) const
{
    SweepContext ctx(model, timing_);
    const accel::AcceleratorParams params =
        choose_params(ctx, constraints);
    accel::AcceleratorDesign design = ctx.design(params);
    std::string report = make_report(design, constraints);
    return GeneratedAccelerator{std::move(design), std::move(report)};
}

} // namespace core
} // namespace roboshape
