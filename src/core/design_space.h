/**
 * @file
 * Design-space enumeration, Pareto analysis, and optimal-point search
 * (paper Sec. 5.3-5.5).
 *
 * RoboShape's knobs are topology-bounded — PE pools range over [1, N] and
 * the block size over [1, N] — so each robot's space holds N^3 points
 * (343-6859 for the paper's robots: "1000s of design points", Fig. 12),
 * small enough for exhaustive search.
 */

#ifndef ROBOSHAPE_CORE_DESIGN_SPACE_H
#define ROBOSHAPE_CORE_DESIGN_SPACE_H

#include <memory>
#include <optional>
#include <vector>

#include "accel/design.h"
#include "sched/allocation.h"
#include "topology/robot_model.h"

namespace roboshape {
namespace core {

class SweepContext;

/** One evaluated knob combination. */
struct DesignPoint
{
    accel::AcceleratorParams params;
    std::int64_t cycles = 0; ///< No-pipelining latency in cycles.
    double latency_us = 0.0;
    accel::ResourceEstimate resources;
};

/** Exhaustively evaluated design space of one robot. */
class DesignSpace
{
  public:
    /**
     * Evaluates every knob combination in [1, N]^3.
     *
     * Schedules are memoized per knob (a SweepContext), so the N^3 points
     * cost O(N) scheduler passes.  Schedule precompute and point
     * composition run as ONE job graph on the work-stealing executor
     * (core/executor.h): a composition row becomes ready the moment its
     * forward schedule plus the backward/blocked-multiply caches are
     * done, instead of waiting at a global barrier between the phases.
     * Output is deterministic: points are ordered by (pes_fwd, pes_bwd,
     * block_size) regardless of worker count or steal interleaving; set
     * ROBOSHAPE_THREADS to pin the pool size.
     *
     * @param model   evaluated robot (copied into the space).
     * @param kernel  kernel family to generate (paper Table 1).
     * @param threads worker count for this sweep; 0 defers to the
     *        environment / hardware default.
     */
    static DesignSpace sweep(const topology::RobotModel &model,
                             const accel::TimingModel &timing =
                                 accel::default_timing(),
                             sched::KernelKind kernel =
                                 sched::KernelKind::kDynamicsGradient,
                             std::size_t threads = 0);

    /**
     * Three-objective (cycles, LUTs, DSPs) Pareto subset — the candidate
     * set for SoC co-design pairing.
     */
    std::vector<DesignPoint> pareto_frontier_3d() const;

    const std::vector<DesignPoint> &points() const { return points_; }

    /**
     * Latency/LUT Pareto frontier (paper Fig. 12's red crosses), sorted by
     * ascending LUTs.
     */
    std::vector<DesignPoint> pareto_frontier() const;

    /**
     * The paper's "Optimal Minimum Latency" point: minimum cycles,
     * tie-broken by fewest LUTs then fewest DSPs.
     */
    DesignPoint optimal_min_latency() const;

    /** Optimal point among designs fitting @p platform at @p threshold;
     *  empty when nothing fits (e.g. HyQ+arm on the VC707, Fig. 16). */
    std::optional<DesignPoint>
    constrained_min_latency(const accel::FpgaPlatform &platform,
                            double threshold =
                                accel::kUtilizationThreshold) const;

    /**
     * The maximally-allocated feasible point: largest PE pools, then
     * largest block, that still fits (paper Fig. 16's "Max Alloc" bars).
     */
    std::optional<DesignPoint>
    max_allocation(const accel::FpgaPlatform &platform,
                   double threshold = accel::kUtilizationThreshold) const;

    /** Minimum cycles over the whole space. */
    std::int64_t min_cycles() const;
    /** Maximum cycles over the whole space (paper Fig. 12 caption). */
    std::int64_t max_cycles() const;
    std::int64_t min_luts() const;
    std::int64_t max_luts() const;

    /** The memoized schedule caches this space was swept with; shared by
     *  evaluate_strategy so strategy evaluation re-runs no schedules.
     *  Lazy accessors on the context are not thread-safe (see
     *  SweepContext). */
    const std::shared_ptr<SweepContext> &context() const
    {
        return context_;
    }

  private:
    std::vector<DesignPoint> points_;
    std::shared_ptr<SweepContext> context_;
};

/**
 * Evaluation of one metric-based allocation strategy (paper Fig. 13): the
 * strategy fixes the PE pools; the block size is chosen as the best
 * unconstrained blocked-multiply setting for the robot.
 */
struct StrategyEvaluation
{
    sched::AllocationStrategy strategy;
    accel::AcceleratorParams params;
    std::int64_t cycles = 0;
    accel::ResourceEstimate resources;
    bool meets_minimum_latency = false; ///< Equals the space's min cycles.
};

/** Evaluates one strategy against @p model. */
StrategyEvaluation evaluate_strategy(const topology::RobotModel &model,
                                     sched::AllocationStrategy strategy,
                                     const DesignSpace &space,
                                     const accel::TimingModel &timing =
                                         accel::default_timing());

/** Block size in [1, N] minimizing the blocked-multiply makespan
 *  (smallest size wins ties). */
std::size_t best_block_size(const topology::TopologyInfo &topo,
                            const accel::TimingModel &timing =
                                accel::default_timing());

} // namespace core
} // namespace roboshape

#endif // ROBOSHAPE_CORE_DESIGN_SPACE_H
