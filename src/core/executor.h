/**
 * @file
 * Persistent work-stealing executor (docs/PARALLELISM.md).
 *
 * Every parallel region in the pipeline — sweep precompute, design-point
 * composition, `SimEngine::run_batch` shards, fuzz iterations — used to
 * spawn and join fresh `std::thread`s per call and statically stride the
 * index space.  The executor replaces that with one process-lifetime pool
 * of parked workers fed through per-worker Chase-Lev deques: submitting a
 * region wakes the workers, idle workers steal from busy ones (randomized
 * victim order), and the pool parks again when the region drains.  Two
 * consequences:
 *
 *  - Fork-join overhead is paid once per process, not once per call.
 *    Waking a parked worker is a futex, not a clone(2) — small batches
 *    stop paying thread-spawn latency (`bench/executor_throughput`).
 *
 *  - Irregular task costs (hyper-redundant robots, heterogeneous schedule
 *    jobs) no longer idle the workers whose static stride happened to get
 *    the cheap indices; stealing rebalances at chunk granularity.
 *
 * Determinism contract (the guarantee every caller relies on): stealing
 * may reorder *execution*, never *writes*.  `parallel_for` hands index i
 * to exactly one task, the callback may only write state owned by index i
 * (or by its lane, see below), and the caller observes all writes after
 * the region returns.  Outputs are therefore bit-identical at any worker
 * count, on any steal interleaving — the property the sweep and run_batch
 * equivalence suites assert.
 *
 * Lanes: a region runs on `width` lanes, lane 0 being the calling thread
 * and lanes 1..width-1 parked pool workers.  The lane index passed to
 * `parallel_for_lanes` callbacks is a dense id that is exclusive to one OS
 * thread for the whole region, so per-lane scratch (e.g. SimEngine
 * workspaces) needs no locking even though task->lane assignment is
 * nondeterministic.
 *
 * Job graphs: `JobGraph` expresses dependent phases (nodes + edges) as one
 * region with no barrier between phases — a node becomes stealable the
 * moment its last dependency finishes.  `DesignSpace::sweep` uses this to
 * overlap schedule precompute with design-point composition.
 *
 * Worker count: `ROBOSHAPE_THREADS` (validated; garbage values warn once
 * on stderr and fall back), else the deprecated `ROBOSHAPE_SWEEP_THREADS`
 * alias, else hardware concurrency.  A region may request more lanes than
 * cores (tests force {2, 7}); the pool grows up to `kMaxExecutorLanes`.
 *
 * Observability: counters `exec.regions`, `exec.tasks`, `exec.steals`,
 * `exec.parks`, histogram `exec.queue_depth_peak`, and per-worker wall
 * spans (`exec.worker`, category "exec") when wall tracing is on.
 */

#ifndef ROBOSHAPE_CORE_EXECUTOR_H
#define ROBOSHAPE_CORE_EXECUTOR_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <type_traits>
#include <vector>

namespace roboshape {
namespace core {

/** Hard cap on lanes (calling thread + pool workers) per region. */
inline constexpr std::size_t kMaxExecutorLanes = 64;

/**
 * A reusable dependency graph of tasks for Executor::run.  Build once
 * (add() / add_edge() allocate), run many times (running is allocation-
 * free once the executor is warm).  Node callbacks receive the executing
 * lane and must not throw; a node may only write state it owns.
 */
class JobGraph
{
  public:
    using NodeId = std::size_t;

    /** Appends a node; returns its id (ids are dense, in add order). */
    NodeId add(std::function<void(std::size_t lane)> fn);

    /** Declares that @p before must complete before @p after starts. */
    void add_edge(NodeId before, NodeId after);

    std::size_t size() const { return nodes_.size(); }

  private:
    friend class Executor;

    struct Node
    {
        std::function<void(std::size_t)> fn;
        std::vector<NodeId> successors;
        std::uint32_t dependency_count = 0;
    };

    std::vector<std::unique_ptr<Node>> nodes_;
    /** Per-run countdown of unfinished dependencies, re-armed by run(). */
    std::vector<std::uint32_t> pending_;
    /** Scratch for run()'s cycle check, reused so warm runs stay
     *  allocation-free. */
    std::vector<std::uint32_t> scratch_;
    std::vector<NodeId> ready_;
};

class Executor
{
  public:
    /** The process-wide executor.  Created on first use; workers park
     *  between regions and are joined at process exit. */
    static Executor &instance();

    /**
     * Lanes a default-width region uses: the validated ROBOSHAPE_THREADS /
     * ROBOSHAPE_SWEEP_THREADS override when set, else hardware
     * concurrency, capped at kMaxExecutorLanes.  Re-reads the environment
     * on each call (cheap; benches call it once for reporting).
     */
    std::size_t worker_count() const;

    /**
     * Width a region over @p count tasks runs at: @p requested when
     * nonzero, else worker_count(); always clamped to [1, count] and
     * kMaxExecutorLanes.  The exact successor of the old
     * `sweep_worker_count` contract.
     */
    std::size_t resolve_width(std::size_t count,
                              std::size_t requested = 0) const;

    /**
     * Runs fn(i) for every i in [0, count).  Index i is executed exactly
     * once, by whichever lane claims its chunk; fn may only write state
     * owned by i and must not throw.  Blocks until every index ran; all
     * writes are visible to the caller afterwards.  Runs inline when one
     * lane suffices.  Nested calls from inside a region run inline.
     */
    template <typename Fn>
    void parallel_for(std::size_t count, Fn &&fn,
                      std::size_t requested = 0)
    {
        auto wrapped = [&fn](std::size_t i, std::size_t) { fn(i); };
        parallel_for_lanes(count, wrapped, requested);
    }

    /**
     * parallel_for variant whose callback also receives the executing
     * lane in [0, width): fn(i, lane).  The lane id is exclusive to one
     * OS thread for the region, so fn may use per-lane scratch without
     * locking.  Task->lane assignment is NOT deterministic — only use the
     * lane for scratch, never for anything that reaches an output.
     */
    template <typename Fn>
    void parallel_for_lanes(std::size_t count, Fn &&fn,
                            std::size_t requested = 0)
    {
        using Decayed = std::remove_reference_t<Fn>;
        const auto invoke = [](void *ctx, std::size_t begin,
                               std::size_t end, std::size_t lane) {
            Decayed &f = *static_cast<Decayed *>(ctx);
            for (std::size_t i = begin; i < end; ++i)
                f(i, lane);
        };
        run_chunked(std::addressof(fn),
                    static_cast<ChunkInvoke>(invoke), count, requested);
    }

    /**
     * Executes @p graph: every node exactly once, no node before its
     * dependencies.  Ready nodes are pushed to the completing lane's
     * deque and stolen from there, so independent subgraphs overlap.
     *
     * @throws std::invalid_argument when the graph contains a cycle.
     */
    void run(JobGraph &graph, std::size_t requested = 0);

    ~Executor();

  private:
    using ChunkInvoke = void (*)(void *, std::size_t, std::size_t,
                                 std::size_t);

    Executor();
    Executor(const Executor &) = delete;
    Executor &operator=(const Executor &) = delete;

    /** Type-erased core of parallel_for_lanes. */
    void run_chunked(void *ctx, ChunkInvoke invoke, std::size_t count,
                     std::size_t requested);

    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace core
} // namespace roboshape

#endif // ROBOSHAPE_CORE_EXECUTOR_H
