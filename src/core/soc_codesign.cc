/**
 * @file
 * Implementation of SoC co-design pairing.
 */

#include "core/soc_codesign.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace roboshape {
namespace core {

std::vector<SocDesignPoint>
codesign_pareto(const SocComponent &first, const SocComponent &second,
                const accel::FpgaPlatform &platform, double threshold,
                const accel::TimingModel &timing)
{
    assert(first.model && second.model);
    // Only each component's own 3D-Pareto points can appear in a jointly
    // optimal pair, which keeps the pairing quadratic in tens, not
    // thousands.
    const auto frontier_a =
        DesignSpace::sweep(*first.model, timing, first.kernel)
            .pareto_frontier_3d();
    const auto frontier_b =
        DesignSpace::sweep(*second.model, timing, second.kernel)
            .pareto_frontier_3d();

    const double lut_budget =
        static_cast<double>(platform.luts) * threshold;
    const double dsp_budget =
        static_cast<double>(platform.dsps) * threshold;

    std::vector<SocDesignPoint> feasible;
    for (const DesignPoint &a : frontier_a) {
        for (const DesignPoint &b : frontier_b) {
            const double luts = static_cast<double>(a.resources.luts +
                                                    b.resources.luts);
            const double dsps = static_cast<double>(a.resources.dsps +
                                                    b.resources.dsps);
            if (luts <= lut_budget && dsps <= dsp_budget)
                feasible.push_back({a, b});
        }
    }

    // 2D Pareto on (first.cycles, second.cycles).
    std::sort(feasible.begin(), feasible.end(),
              [](const SocDesignPoint &x, const SocDesignPoint &y) {
                  if (x.first.cycles != y.first.cycles)
                      return x.first.cycles < y.first.cycles;
                  return x.second.cycles < y.second.cycles;
              });
    std::vector<SocDesignPoint> frontier;
    std::int64_t best_second = std::numeric_limits<std::int64_t>::max();
    for (const SocDesignPoint &p : feasible) {
        if (p.second.cycles < best_second) {
            frontier.push_back(p);
            best_second = p.second.cycles;
        }
    }
    return frontier;
}

} // namespace core
} // namespace roboshape
