/**
 * @file
 * Multi-core throughput analysis (paper Sec. 5.2, "Parallelism Tradeoffs
 * vs. GPU").
 *
 * RoboShape extracts maximal parallelism *within* one computation, while
 * GPUs win throughput *across* computations.  The paper's answer is to
 * instantiate multiple RoboShape cores; this module sizes how many cores a
 * platform budget admits and compares aggregate throughput against the
 * GPU's SM-parallel batching.
 */

#ifndef ROBOSHAPE_CORE_THROUGHPUT_H
#define ROBOSHAPE_CORE_THROUGHPUT_H

#include <cstddef>

#include "accel/design.h"
#include "accel/platform.h"

namespace roboshape {
namespace core {

/** Replicated-core deployment of one design on one platform. */
struct MulticoreDeployment
{
    std::size_t cores = 0;
    double per_core_interval_us = 0.0; ///< Pipelined initiation interval.
    double throughput_per_s = 0.0;     ///< Aggregate gradient evals/s.
    double lut_utilization = 0.0;
    double dsp_utilization = 0.0;
};

/**
 * Replicates @p design across @p platform under @p threshold utilization
 * and reports the aggregate steady-state throughput.
 */
MulticoreDeployment
plan_multicore(const accel::AcceleratorDesign &design,
               const accel::FpgaPlatform &platform,
               double threshold = accel::kUtilizationThreshold);

} // namespace core
} // namespace roboshape

#endif // ROBOSHAPE_CORE_THROUGHPUT_H
