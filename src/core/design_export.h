/**
 * @file
 * JSON export of generated designs.
 *
 * Serializes everything a downstream tool needs to consume a design —
 * knobs, topology metrics, stage latencies, clock, resources, and the
 * per-PE schedule ROMs — so the generator can feed visualization,
 * regression diffing, or an external RTL flow without linking the library.
 */

#ifndef ROBOSHAPE_CORE_DESIGN_EXPORT_H
#define ROBOSHAPE_CORE_DESIGN_EXPORT_H

#include <string>

#include "accel/design.h"

namespace roboshape {
namespace core {

/** Serializes @p design as a self-contained JSON document. */
std::string design_to_json(const accel::AcceleratorDesign &design);

} // namespace core
} // namespace roboshape

#endif // ROBOSHAPE_CORE_DESIGN_EXPORT_H
