/**
 * @file
 * Implementation of design-space enumeration and search.
 */

#include "core/design_space.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace roboshape {
namespace core {

DesignSpace
DesignSpace::sweep(const topology::RobotModel &model,
                   const accel::TimingModel &timing,
                   sched::KernelKind kernel)
{
    DesignSpace space;
    const std::size_t n = model.num_links();
    // Kernels without a blocked-multiply stage have no block knob.
    const std::size_t block_max =
        kernel == sched::KernelKind::kDynamicsGradient ? n : 1;
    space.points_.reserve(n * n * block_max);
    for (std::size_t pf = 1; pf <= n; ++pf) {
        for (std::size_t pb = 1; pb <= n; ++pb) {
            for (std::size_t b = 1; b <= block_max; ++b) {
                const accel::AcceleratorDesign design(model, {pf, pb, b},
                                                      timing, kernel);
                DesignPoint point;
                point.params = design.params();
                point.cycles = design.cycles_no_pipelining();
                point.latency_us = design.latency_us_no_pipelining();
                point.resources = design.resources();
                space.points_.push_back(point);
            }
        }
    }
    return space;
}

std::vector<DesignPoint>
DesignSpace::pareto_frontier_3d() const
{
    std::vector<DesignPoint> kept;
    for (const DesignPoint &p : points_) {
        bool dominated = false;
        for (const DesignPoint &q : points_) {
            if (q.cycles <= p.cycles && q.resources.luts <= p.resources.luts &&
                q.resources.dsps <= p.resources.dsps &&
                (q.cycles < p.cycles || q.resources.luts < p.resources.luts ||
                 q.resources.dsps < p.resources.dsps)) {
                dominated = true;
                break;
            }
        }
        if (!dominated)
            kept.push_back(p);
    }
    return kept;
}

std::vector<DesignPoint>
DesignSpace::pareto_frontier() const
{
    // A point is dominated when another point has <= LUTs and <= cycles
    // with at least one strict.  Sort by LUTs then cycles and sweep.
    std::vector<DesignPoint> sorted = points_;
    std::sort(sorted.begin(), sorted.end(),
              [](const DesignPoint &a, const DesignPoint &b) {
                  if (a.resources.luts != b.resources.luts)
                      return a.resources.luts < b.resources.luts;
                  return a.cycles < b.cycles;
              });
    std::vector<DesignPoint> frontier;
    std::int64_t best_cycles = std::numeric_limits<std::int64_t>::max();
    for (const DesignPoint &p : sorted) {
        if (p.cycles < best_cycles) {
            frontier.push_back(p);
            best_cycles = p.cycles;
        }
    }
    return frontier;
}

DesignPoint
DesignSpace::optimal_min_latency() const
{
    assert(!points_.empty());
    const DesignPoint *best = &points_.front();
    for (const DesignPoint &p : points_) {
        const auto key = [](const DesignPoint &d) {
            return std::make_tuple(d.cycles, d.resources.luts,
                                   d.resources.dsps);
        };
        if (key(p) < key(*best))
            best = &p;
    }
    return *best;
}

std::optional<DesignPoint>
DesignSpace::constrained_min_latency(const accel::FpgaPlatform &platform,
                                     double threshold) const
{
    std::optional<DesignPoint> best;
    for (const DesignPoint &p : points_) {
        if (!p.resources.fits(platform, threshold))
            continue;
        if (!best || p.cycles < best->cycles ||
            (p.cycles == best->cycles &&
             p.resources.luts < best->resources.luts)) {
            best = p;
        }
    }
    return best;
}

std::optional<DesignPoint>
DesignSpace::max_allocation(const accel::FpgaPlatform &platform,
                            double threshold) const
{
    std::optional<DesignPoint> best;
    const auto key = [](const DesignPoint &d) {
        // Most total PEs, then the largest block, preferring balanced
        // pools among ties.
        return std::make_tuple(d.params.pes_fwd + d.params.pes_bwd,
                               d.params.block_size,
                               std::min(d.params.pes_fwd,
                                        d.params.pes_bwd));
    };
    for (const DesignPoint &p : points_) {
        if (!p.resources.fits(platform, threshold))
            continue;
        if (!best || key(p) > key(*best))
            best = p;
    }
    return best;
}

std::int64_t
DesignSpace::min_cycles() const
{
    std::int64_t v = std::numeric_limits<std::int64_t>::max();
    for (const DesignPoint &p : points_)
        v = std::min(v, p.cycles);
    return v;
}

std::int64_t
DesignSpace::max_cycles() const
{
    std::int64_t v = 0;
    for (const DesignPoint &p : points_)
        v = std::max(v, p.cycles);
    return v;
}

std::int64_t
DesignSpace::min_luts() const
{
    std::int64_t v = std::numeric_limits<std::int64_t>::max();
    for (const DesignPoint &p : points_)
        v = std::min(v, p.resources.luts);
    return v;
}

std::int64_t
DesignSpace::max_luts() const
{
    std::int64_t v = 0;
    for (const DesignPoint &p : points_)
        v = std::max(v, p.resources.luts);
    return v;
}

std::size_t
best_block_size(const topology::TopologyInfo &topo,
                const accel::TimingModel &timing)
{
    const auto a = sched::mass_inverse_mask(topo);
    const auto b = sched::derivative_mask(topo);
    std::size_t best = 1;
    std::int64_t best_ms = std::numeric_limits<std::int64_t>::max();
    for (std::size_t bs = 1; bs <= topo.num_links(); ++bs) {
        const std::int64_t ms =
            sched::schedule_block_multiply(a, b, bs, timing.mm_units,
                                           timing.tile)
                .makespan;
        if (ms < best_ms) {
            best_ms = ms;
            best = bs;
        }
    }
    return best;
}

StrategyEvaluation
evaluate_strategy(const topology::RobotModel &model,
                  sched::AllocationStrategy strategy,
                  const DesignSpace &space,
                  const accel::TimingModel &timing)
{
    const topology::TopologyInfo topo(model);
    const sched::Allocation alloc =
        sched::allocate(strategy, topo.metrics());
    // PE pools are capped at N: allocating beyond the link count cannot
    // create more parallelism than tasks exist per schedule slot.
    const std::size_t n = model.num_links();
    accel::AcceleratorParams params{std::min(alloc.pes_fwd, n),
                                    std::min(alloc.pes_bwd, n),
                                    best_block_size(topo, timing)};

    const accel::AcceleratorDesign design(model, params, timing);
    StrategyEvaluation eval;
    eval.strategy = strategy;
    eval.params = params;
    eval.cycles = design.cycles_no_pipelining();
    eval.resources = design.resources();
    eval.meets_minimum_latency = eval.cycles == space.min_cycles();
    return eval;
}

} // namespace core
} // namespace roboshape
