/**
 * @file
 * Implementation of design-space enumeration and search.
 */

#include "core/design_space.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>
#include <tuple>

#include "core/executor.h"
#include "core/sweep_context.h"

namespace roboshape {
namespace core {

DesignSpace
DesignSpace::sweep(const topology::RobotModel &model,
                   const accel::TimingModel &timing,
                   sched::KernelKind kernel, std::size_t threads)
{
    DesignSpace space;
    space.context_ = std::make_shared<SweepContext>(model, timing, kernel);
    SweepContext &ctx = *space.context_;
    const std::size_t n = ctx.num_links();
    const std::size_t block_max = ctx.block_knob_max();
    const std::size_t mm_jobs =
        kernel == sched::KernelKind::kDynamicsGradient ? n : 0;
    const double period = ctx.clock_period_ns();
    space.points_.resize(n * n * block_max);

    // One job graph instead of two barriers: schedule precompute feeds
    // point composition directly.  Composition row pf reads forward(pf),
    // every backward cache, and (gradient kernels) every blocked-multiply
    // cache, so it depends on its own forward node plus one barrier node
    // per shared cache family — the row starts the moment those are done,
    // while other forward schedules are still being computed.  Each job
    // writes only its own cache slot or its own pre-sized points_ slice,
    // so the point order is identical to the serial triple loop at any
    // width.
    JobGraph graph;
    std::vector<JobGraph::NodeId> fwd(n);
    for (std::size_t k = 0; k < n; ++k)
        fwd[k] = graph.add([&ctx, k](std::size_t) { ctx.forward(k + 1); });
    const JobGraph::NodeId bwd_done = graph.add([](std::size_t) {});
    for (std::size_t k = 0; k < n; ++k) {
        const JobGraph::NodeId node =
            graph.add([&ctx, k](std::size_t) { ctx.backward(k + 1); });
        graph.add_edge(node, bwd_done);
    }
    const JobGraph::NodeId mm_done = graph.add([](std::size_t) {});
    for (std::size_t k = 0; k < mm_jobs; ++k) {
        const JobGraph::NodeId node = graph.add(
            [&ctx, k](std::size_t) { ctx.block_multiply(k + 1); });
        graph.add_edge(node, mm_done);
    }
    for (std::size_t row = 0; row < n; ++row) {
        const JobGraph::NodeId node =
            graph.add([&space, &ctx, row, n, block_max,
                       period](std::size_t) {
                const std::size_t pf = row + 1;
                std::size_t idx = row * n * block_max;
                for (std::size_t pb = 1; pb <= n; ++pb) {
                    for (std::size_t b = 1; b <= block_max; ++b, ++idx) {
                        DesignPoint &point = space.points_[idx];
                        point.params = {pf, pb, b};
                        point.cycles =
                            ctx.cycles_no_pipelining(point.params);
                        point.latency_us = static_cast<double>(
                                               point.cycles) *
                                           period * 1e-3;
                        point.resources =
                            accel::estimate_resources(point.params, n);
                    }
                }
            });
        graph.add_edge(fwd[row], node);
        graph.add_edge(bwd_done, node);
        graph.add_edge(mm_done, node);
    }
    Executor::instance().run(graph, threads);
    return space;
}

std::vector<DesignPoint>
DesignSpace::pareto_frontier_3d() const
{
    // Sort-then-sweep instead of the quadratic all-pairs dominance check.
    // Points ordered lexicographically by (LUTs, DSPs, cycles) can only be
    // dominated by points sorting no later, so one pass with a running
    // (DSPs -> min cycles) staircase of all strictly-cheaper-LUT points
    // decides dominance; equal-LUT groups are handled in-group, where
    // strictness must come from DSPs or cycles.  Output (set and order)
    // is identical to the quadratic check, duplicates included.
    const std::size_t count = points_.size();
    std::vector<std::size_t> order(count);
    std::iota(order.begin(), order.end(), std::size_t{0});
    const auto key = [this](std::size_t i) {
        const DesignPoint &p = points_[i];
        return std::make_tuple(p.resources.luts, p.resources.dsps,
                               p.cycles);
    };
    std::sort(order.begin(), order.end(),
              [&key](std::size_t x, std::size_t y) {
                  return key(x) < key(y) || (key(x) == key(y) && x < y);
              });

    // Staircase entries (dsps asc, min cycles strictly desc) over every
    // point of the already-processed (strictly smaller LUT) groups.
    std::vector<std::pair<std::int64_t, std::int64_t>> stair;
    const auto stair_min = [&stair](std::int64_t dsps) {
        const auto it = std::upper_bound(
            stair.begin(), stair.end(), dsps,
            [](std::int64_t d, const auto &e) { return d < e.first; });
        return it == stair.begin() ? std::numeric_limits<std::int64_t>::max()
                                   : std::prev(it)->second;
    };
    const auto stair_insert = [&stair, &stair_min](std::int64_t dsps,
                                                   std::int64_t cycles) {
        if (stair_min(dsps) <= cycles)
            return; // an existing entry already covers (dsps, cycles)
        auto it = std::lower_bound(
            stair.begin(), stair.end(), dsps,
            [](const auto &e, std::int64_t d) { return e.first < d; });
        if (it != stair.end() && it->first == dsps)
            it->second = cycles;
        else
            it = stair.insert(it, {dsps, cycles});
        const auto tail = std::next(it);
        auto last = tail;
        while (last != stair.end() && last->second >= cycles)
            ++last;
        stair.erase(tail, last);
    };

    std::vector<char> dominated(count, 0);
    for (std::size_t i = 0; i < count;) {
        std::size_t j = i;
        const std::int64_t luts = points_[order[i]].resources.luts;
        while (j < count && points_[order[j]].resources.luts == luts)
            ++j;
        // In-group running minima: cycles over strictly-smaller DSPs and
        // over equal DSPs (where domination needs strictly fewer cycles).
        constexpr std::int64_t kInf =
            std::numeric_limits<std::int64_t>::max();
        std::int64_t prev_dsps = 0;
        std::int64_t min_c_below = kInf, min_c_at = kInf;
        for (std::size_t k = i; k < j; ++k) {
            const DesignPoint &p = points_[order[k]];
            const std::int64_t dsps = p.resources.dsps;
            if (k == i || dsps != prev_dsps) {
                min_c_below = std::min(min_c_below, min_c_at);
                min_c_at = kInf;
                prev_dsps = dsps;
            }
            if (stair_min(dsps) <= p.cycles || min_c_below <= p.cycles ||
                min_c_at < p.cycles)
                dominated[order[k]] = 1;
            min_c_at = std::min(min_c_at, p.cycles);
        }
        for (std::size_t k = i; k < j; ++k)
            stair_insert(points_[order[k]].resources.dsps,
                         points_[order[k]].cycles);
        i = j;
    }

    std::vector<DesignPoint> kept;
    for (std::size_t i = 0; i < count; ++i)
        if (!dominated[i])
            kept.push_back(points_[i]);
    return kept;
}

std::vector<DesignPoint>
DesignSpace::pareto_frontier() const
{
    // A point is dominated when another point has <= LUTs and <= cycles
    // with at least one strict.  Sort by LUTs then cycles and sweep.
    std::vector<DesignPoint> sorted = points_;
    std::sort(sorted.begin(), sorted.end(),
              [](const DesignPoint &a, const DesignPoint &b) {
                  if (a.resources.luts != b.resources.luts)
                      return a.resources.luts < b.resources.luts;
                  return a.cycles < b.cycles;
              });
    std::vector<DesignPoint> frontier;
    std::int64_t best_cycles = std::numeric_limits<std::int64_t>::max();
    for (const DesignPoint &p : sorted) {
        if (p.cycles < best_cycles) {
            frontier.push_back(p);
            best_cycles = p.cycles;
        }
    }
    return frontier;
}

DesignPoint
DesignSpace::optimal_min_latency() const
{
    assert(!points_.empty());
    const DesignPoint *best = &points_.front();
    for (const DesignPoint &p : points_) {
        const auto key = [](const DesignPoint &d) {
            return std::make_tuple(d.cycles, d.resources.luts,
                                   d.resources.dsps);
        };
        if (key(p) < key(*best))
            best = &p;
    }
    return *best;
}

std::optional<DesignPoint>
DesignSpace::constrained_min_latency(const accel::FpgaPlatform &platform,
                                     double threshold) const
{
    std::optional<DesignPoint> best;
    for (const DesignPoint &p : points_) {
        if (!p.resources.fits(platform, threshold))
            continue;
        if (!best || p.cycles < best->cycles ||
            (p.cycles == best->cycles &&
             p.resources.luts < best->resources.luts)) {
            best = p;
        }
    }
    return best;
}

std::optional<DesignPoint>
DesignSpace::max_allocation(const accel::FpgaPlatform &platform,
                            double threshold) const
{
    std::optional<DesignPoint> best;
    const auto key = [](const DesignPoint &d) {
        // Most total PEs, then the largest block, preferring balanced
        // pools among ties.
        return std::make_tuple(d.params.pes_fwd + d.params.pes_bwd,
                               d.params.block_size,
                               std::min(d.params.pes_fwd,
                                        d.params.pes_bwd));
    };
    for (const DesignPoint &p : points_) {
        if (!p.resources.fits(platform, threshold))
            continue;
        if (!best || key(p) > key(*best))
            best = p;
    }
    return best;
}

std::int64_t
DesignSpace::min_cycles() const
{
    std::int64_t v = std::numeric_limits<std::int64_t>::max();
    for (const DesignPoint &p : points_)
        v = std::min(v, p.cycles);
    return v;
}

std::int64_t
DesignSpace::max_cycles() const
{
    std::int64_t v = 0;
    for (const DesignPoint &p : points_)
        v = std::max(v, p.cycles);
    return v;
}

std::int64_t
DesignSpace::min_luts() const
{
    std::int64_t v = std::numeric_limits<std::int64_t>::max();
    for (const DesignPoint &p : points_)
        v = std::min(v, p.resources.luts);
    return v;
}

std::int64_t
DesignSpace::max_luts() const
{
    std::int64_t v = 0;
    for (const DesignPoint &p : points_)
        v = std::max(v, p.resources.luts);
    return v;
}

std::size_t
best_block_size(const topology::TopologyInfo &topo,
                const accel::TimingModel &timing)
{
    const auto a = sched::mass_inverse_mask(topo);
    const auto b = sched::derivative_mask(topo);
    std::size_t best = 1;
    std::int64_t best_ms = std::numeric_limits<std::int64_t>::max();
    for (std::size_t bs = 1; bs <= topo.num_links(); ++bs) {
        const std::int64_t ms =
            sched::schedule_block_multiply(a, b, bs, timing.mm_units,
                                           timing.tile)
                .makespan;
        if (ms < best_ms) {
            best_ms = ms;
            best = bs;
        }
    }
    return best;
}

StrategyEvaluation
evaluate_strategy(const topology::RobotModel &model,
                  sched::AllocationStrategy strategy,
                  const DesignSpace &space,
                  const accel::TimingModel &timing)
{
    const std::size_t n = model.num_links();
    StrategyEvaluation eval;
    eval.strategy = strategy;

    // Reuse the space's memoized schedules when it was swept with the same
    // timing model and kernel; each strategy then costs at most two stage
    // schedules (likely cache hits) instead of a full design build plus an
    // N-point block-size scan.
    SweepContext *ctx = space.context().get();
    if (ctx && ctx->timing() == timing &&
        ctx->kernel() == sched::KernelKind::kDynamicsGradient &&
        ctx->num_links() == n) {
        const sched::Allocation alloc =
            sched::allocate(strategy, ctx->topology().metrics());
        // PE pools are capped at N: allocating beyond the link count
        // cannot create more parallelism than tasks exist per slot.
        eval.params = accel::AcceleratorParams{std::min(alloc.pes_fwd, n),
                                               std::min(alloc.pes_bwd, n),
                                               ctx->best_block_size()};
        eval.cycles = ctx->cycles_no_pipelining(eval.params);
        eval.resources = accel::estimate_resources(eval.params, n);
    } else {
        const topology::TopologyInfo topo(model);
        const sched::Allocation alloc =
            sched::allocate(strategy, topo.metrics());
        eval.params =
            accel::AcceleratorParams{std::min(alloc.pes_fwd, n),
                                     std::min(alloc.pes_bwd, n),
                                     best_block_size(topo, timing)};
        const accel::AcceleratorDesign design(model, eval.params, timing);
        eval.cycles = design.cycles_no_pipelining();
        eval.resources = design.resources();
    }
    eval.meets_minimum_latency = eval.cycles == space.min_cycles();
    return eval;
}

} // namespace core
} // namespace roboshape
