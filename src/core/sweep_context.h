/**
 * @file
 * Memoized schedule state shared across one robot's design-space sweep.
 *
 * Every knob triple (PEs_fwd, PEs_bwd, size_block) used to construct a
 * full AcceleratorDesign from scratch, rebuilding the TopologyInfo and
 * TaskGraph and re-running four scheduler passes — even though the
 * topology and task graph are invariant across the sweep and each
 * schedule depends on only one knob (forward on PEs_fwd, backward on
 * PEs_bwd, blocked multiply on size_block) or two (pipelined on the PE
 * pair).  A SweepContext builds the invariants once and memoizes the n
 * forward, n backward, n blocked-multiply, and up to n^2 pipelined
 * schedules, so an n^3-point sweep performs O(n) scheduler passes instead
 * of O(n^3) (the pipelined schedule is not needed for sweep points at
 * all; it is computed lazily for full designs only).
 *
 * Thread-safety: precompute_stage_schedules() fills the single-knob caches
 * across the work-stealing executor (each cache slot is written by exactly
 * one job, no locks).  The lazy accessors mutate the caches and must not
 * race each other; call them from one thread, or precompute first, after
 * which reads are safe from any number of threads.
 */

#ifndef ROBOSHAPE_CORE_SWEEP_CONTEXT_H
#define ROBOSHAPE_CORE_SWEEP_CONTEXT_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "accel/design.h"
#include "accel/params.h"
#include "sched/block_schedule.h"
#include "sched/list_scheduler.h"
#include "sched/task_graph.h"
#include "topology/robot_model.h"
#include "topology/topology_info.h"

namespace roboshape {
namespace core {

/**
 * Memoization effectiveness of one SweepContext, split by cache.  A "hit"
 * is an accessor call that found its slot already filled; a "miss" ran the
 * scheduler.  For an n^3-point sweep the expected shape is O(n) misses and
 * O(n^3) hits — the whole point of the context (see memo_stats()).
 */
struct SweepMemoStats
{
    std::uint64_t forward_hits = 0, forward_misses = 0;
    std::uint64_t backward_hits = 0, backward_misses = 0;
    std::uint64_t pipelined_hits = 0, pipelined_misses = 0;
    std::uint64_t block_hits = 0, block_misses = 0;

    std::uint64_t hits() const
    {
        return forward_hits + backward_hits + pipelined_hits + block_hits;
    }

    std::uint64_t misses() const
    {
        return forward_misses + backward_misses + pipelined_misses +
               block_misses;
    }
};

class SweepContext
{
  public:
    /** Builds the sweep invariants (topology, task graph, sparsity masks)
     *  for @p model; schedules are computed on demand or in bulk via
     *  precompute_stage_schedules(). */
    explicit SweepContext(const topology::RobotModel &model,
                          const accel::TimingModel &timing =
                              accel::default_timing(),
                          sched::KernelKind kernel =
                              sched::KernelKind::kDynamicsGradient);

    const topology::RobotModel &model() const { return *model_; }
    const topology::TopologyInfo &topology() const { return *topo_; }
    const sched::TaskGraph &task_graph() const { return *graph_; }
    const accel::TimingModel &timing() const { return timing_; }
    sched::KernelKind kernel() const { return kernel_; }

    std::size_t num_links() const { return model_->num_links(); }

    /** Upper bound of the size_block knob: N for kernels ending in the
     *  blocked multiply, 1 otherwise (the knob is unused). */
    std::size_t block_knob_max() const;

    /** Memoized forward-stage schedule for @p pes_fwd in [1, N]. */
    const sched::Schedule &forward(std::size_t pes_fwd);
    /** Memoized backward-stage schedule for @p pes_bwd in [1, N]. */
    const sched::Schedule &backward(std::size_t pes_bwd);
    /** Memoized joint pipelined schedule for one PE-pool pair. */
    const sched::Schedule &pipelined(std::size_t pes_fwd,
                                     std::size_t pes_bwd);
    /** Memoized blocked-multiply schedule for @p block_size in [1, N];
     *  only valid for kernels with a blocked-multiply stage. */
    const sched::BlockSchedule &block_multiply(std::size_t block_size);

    /**
     * Fills the forward, backward, and blocked-multiply caches (the
     * single-knob schedules every sweep point needs) across the executor
     * with @p threads workers (0 = ROBOSHAPE_THREADS — or the deprecated
     * ROBOSHAPE_SWEEP_THREADS alias — or hardware concurrency).
     * Afterwards the corresponding accessors are read-only and safe to
     * call concurrently.
     */
    void precompute_stage_schedules(std::size_t threads = 0);

    /** No-pipelining latency of one knob triple, composed from caches. */
    std::int64_t cycles_no_pipelining(const accel::AcceleratorParams &p);

    /** Synthesized clock period (invariant across the sweep). */
    double clock_period_ns() const { return clock_period_ns_; }

    /** Block size in [1, N] minimizing the blocked-multiply makespan
     *  (smallest size wins ties), memoized. */
    std::size_t best_block_size();

    /** Full AcceleratorDesign composed from cached schedules — the cheap
     *  construction path (no scheduler re-runs beyond cache misses). */
    accel::AcceleratorDesign design(const accel::AcceleratorParams &p);

    /**
     * Snapshot of the memoization hit/miss counters since construction.
     * Counters are atomic (precompute_stage_schedules fills caches from
     * multiple workers) and also mirrored into the obs registry as
     * sweep.memo_hits / sweep.memo_misses.
     */
    SweepMemoStats memo_stats() const;

  private:
    std::shared_ptr<const topology::RobotModel> model_;
    std::shared_ptr<const topology::TopologyInfo> topo_;
    std::shared_ptr<const sched::TaskGraph> graph_;
    accel::TimingModel timing_;
    sched::KernelKind kernel_;
    double clock_period_ns_ = 0.0;

    sched::SparsityMask mask_a_, mask_b_; // blocked-multiply operands

    // Caches indexed by knob - 1; null = not yet computed.  The pipelined
    // cache is a flattened (pes_fwd - 1) * N + (pes_bwd - 1) grid.
    std::vector<std::unique_ptr<sched::Schedule>> fwd_;
    std::vector<std::unique_ptr<sched::Schedule>> bwd_;
    std::vector<std::unique_ptr<sched::Schedule>> pipelined_;
    std::vector<std::unique_ptr<sched::BlockSchedule>> mm_;
    std::optional<std::size_t> best_block_;

    /** Per-cache hit/miss tallies behind memo_stats().  Atomic because
     *  precompute_stage_schedules() drives the accessors from a pool. */
    struct MemoTally
    {
        std::atomic<std::uint64_t> hits{0};
        std::atomic<std::uint64_t> misses{0};

        void count(bool hit) noexcept
        {
            (hit ? hits : misses).fetch_add(1, std::memory_order_relaxed);
        }
    };
    mutable MemoTally tally_fwd_, tally_bwd_, tally_pipelined_, tally_mm_;
};

} // namespace core
} // namespace roboshape

#endif // ROBOSHAPE_CORE_SWEEP_CONTEXT_H
