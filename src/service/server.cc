#include "service/server.h"

#include <string>
#include <utility>
#include <vector>

#include "net/http.h"
#include "obs/registry.h"
#include "obs/trace_export.h"
#include "obs/wall_trace.h"
#include "service/flight_recorder.h"
#include "service/trace_vault.h"

namespace roboshape {
namespace service {

namespace {

/** Accept-poll granularity: how often loops re-check stopping_. */
constexpr int kPollMs = 50;

void
count_response_class(int status)
{
    if (status < 300) {
        ROBOSHAPE_OBS_COUNT("svc.responses_2xx", 1);
    } else if (status < 500) {
        ROBOSHAPE_OBS_COUNT("svc.responses_4xx", 1);
    } else {
        ROBOSHAPE_OBS_COUNT("svc.responses_5xx", 1);
    }
}

/**
 * Per-endpoint latency split.  One literal macro site per endpoint so
 * the counter catalog (docs/OBSERVABILITY.md) and roboshape_lint's
 * counter-name-sync rule keep seeing every histogram name in the tree.
 */
void
record_endpoint_latency(Endpoint endpoint, std::int64_t us)
{
    switch (endpoint) {
      case Endpoint::kHealthz:
        ROBOSHAPE_OBS_RECORD("svc.request_us.healthz", us);
        break;
      case Endpoint::kRobots:
        ROBOSHAPE_OBS_RECORD("svc.request_us.robots", us);
        break;
      case Endpoint::kValidate:
        ROBOSHAPE_OBS_RECORD("svc.request_us.validate", us);
        break;
      case Endpoint::kSweep:
        ROBOSHAPE_OBS_RECORD("svc.request_us.sweep", us);
        break;
      case Endpoint::kDesign:
        ROBOSHAPE_OBS_RECORD("svc.request_us.design", us);
        break;
      case Endpoint::kReport:
        ROBOSHAPE_OBS_RECORD("svc.request_us.report", us);
        break;
      case Endpoint::kMetrics:
        ROBOSHAPE_OBS_RECORD("svc.request_us.metrics", us);
        break;
      case Endpoint::kStatz:
        ROBOSHAPE_OBS_RECORD("svc.request_us.statz", us);
        break;
      case Endpoint::kDebug:
        ROBOSHAPE_OBS_RECORD("svc.request_us.debug", us);
        break;
      case Endpoint::kOther:
        ROBOSHAPE_OBS_RECORD("svc.request_us.other", us);
        break;
    }
}

const char *
method_label(const std::string &method)
{
    if (method == "GET")
        return "GET";
    if (method == "POST")
        return "POST";
    return "OTHER";
}

const char *
cache_label(const net::HttpResponse &response)
{
    const auto verdict = response.header("X-Roboshape-Cache");
    if (!verdict)
        return "none";
    if (*verdict == "hit")
        return "hit";
    if (*verdict == "miss")
        return "miss";
    return "none";
}

} // namespace

Server::Server(Service &service, ServerOptions options)
    : service_(service), options_(std::move(options))
{
    if (options_.workers == 0)
        options_.workers = 1;
    if (options_.queue_capacity == 0)
        options_.queue_capacity = 1;
}

Server::~Server()
{
    stop();
}

bool
Server::start()
{
    if (running_)
        return true;
    if (!options_.access_log_path.empty() &&
        !access_log_.open(options_.access_log_path)) {
        error_ = access_log_.error();
        return false;
    }
    if (!listener_.listen(options_.port)) {
        error_ = listener_.error();
        return false;
    }
    port_ = listener_.bound_port();
    stopping_ = false;
    running_ = true;
    accept_thread_ = std::thread([this] { accept_loop(); });
    workers_.reserve(options_.workers);
    for (std::size_t i = 0; i < options_.workers; ++i)
        workers_.emplace_back([this] { worker_loop(); });
    return true;
}

void
Server::stop()
{
    if (!running_)
        return;
    stopping_ = true;
    queue_cv_.notify_all();
    if (accept_thread_.joinable())
        accept_thread_.join();
    // Workers drain whatever the accept thread already admitted, then
    // exit; join order guarantees no new admissions race the drain.
    queue_cv_.notify_all();
    for (std::thread &w : workers_)
        if (w.joinable())
            w.join();
    workers_.clear();
    listener_.close();
    // Every in-flight request is answered and logged by now: flush so a
    // SIGTERM'd daemon never loses its last access-log lines.
    access_log_.flush();
    running_ = false;
}

void
Server::accept_loop()
{
    while (!stopping_) {
        net::TcpConn conn = listener_.accept(kPollMs);
        if (!conn.valid())
            continue; // timeout: re-check stopping_
        ROBOSHAPE_OBS_COUNT("svc.connections", 1);
        std::size_t depth;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (queue_.size() >= options_.queue_capacity) {
                // Overload: shed at admission, before any parsing.
                ROBOSHAPE_OBS_COUNT("svc.rejected_overload", 1);
                const net::HttpResponse rejection = error_response(
                    429, "server overloaded: admission queue full");
                conn.write_all(rejection.serialize(false), kPollMs);
                continue; // conn closes on scope exit
            }
            queue_.push_back({std::move(conn), obs::wall_now_ns()});
            depth = queue_.size();
        }
        ROBOSHAPE_OBS_RECORD("svc.queue_depth",
                             static_cast<std::int64_t>(depth));
        queue_cv_.notify_one();
    }
}

void
Server::worker_loop()
{
    for (;;) {
        Admission admitted;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            queue_cv_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping and fully drained
            admitted = std::move(queue_.front());
            queue_.pop_front();
        }
        const std::int64_t wait_us = static_cast<std::int64_t>(
            (obs::wall_now_ns() - admitted.enqueue_ns) / 1000);
        ROBOSHAPE_OBS_RECORD("svc.queue_wait_us", wait_us);
        serve_connection(std::move(admitted.conn), wait_us);
    }
}

void
Server::serve_connection(net::TcpConn conn, std::int64_t queue_wait_us)
{
    std::string leftover;
    for (;;) {
        net::HttpRequest request;
        const net::ReadResult read = net::read_request(
            conn, request, leftover, options_.request_timeout_ms);
        if (read != net::ReadResult::kOk) {
            // Transport-level failures that deserve a reply get one;
            // silence (kClosed) and idle timeouts just close.
            int status = 0;
            switch (read) {
              case net::ReadResult::kTooLarge: status = 413; break;
              case net::ReadResult::kMalformed: status = 400; break;
              case net::ReadResult::kUnsupported: status = 501; break;
              default: break;
            }
            if (status != 0) {
                const net::HttpResponse failure = error_response(
                    status, "request rejected by the HTTP layer");
                conn.write_all(failure.serialize(false),
                               options_.request_timeout_ms);
                count_response_class(status);
            }
            return;
        }

        ROBOSHAPE_OBS_COUNT("svc.requests", 1);
        const std::uint64_t id =
            next_request_id_.fetch_add(1, std::memory_order_relaxed);
        const Endpoint endpoint = classify_endpoint(request.target);
        const auto trace_header = request.header("X-Roboshape-Trace");
        const bool traced = trace_header && *trace_header == "1";

        // Per-request trace context: every span recorded on this thread
        // (and on executor workers draining this request's job graphs)
        // carries the request id.  A traced request also forces wall
        // tracing on for its duration.
        obs::set_trace_request_id(id);
        if (traced)
            obs::begin_forced_wall_trace();

        // Request-latency telemetry (the svc.request_us histograms):
        // measured around the handler, never visible to it.
        const std::uint64_t t0 = obs::wall_now_ns();
        net::HttpResponse response = service_.handle(request);
        const auto us = static_cast<std::int64_t>(
            (obs::wall_now_ns() - t0) / 1000);

        if (traced) {
            const std::vector<obs::WallSpan> spans =
                obs::take_wall_trace_spans(id);
            obs::end_forced_wall_trace();
            trace_vault().store(id, obs::wall_spans_trace_json(spans));
        }
        obs::set_trace_request_id(0);

        ROBOSHAPE_OBS_RECORD("svc.request_us", us);
        record_endpoint_latency(endpoint, us);
        count_response_class(response.status);
        response.set_header("X-Roboshape-Request-Id", std::to_string(id));

        RequestRecord record;
        record.id = id;
        record.endpoint = endpoint_name(endpoint);
        record.method = method_label(request.method);
        record.status = response.status;
        record.cache = cache_label(response);
        record.queue_wait_us = queue_wait_us;
        record.handle_us = us;
        record.bytes = response.body.size();
        record.slow =
            us >= static_cast<std::int64_t>(options_.slow_ms) * 1000;
        flight_recorder().record(record);
        if (access_log_.is_open())
            access_log_.write(record);

        // Only the first request of a session waited in the admission
        // queue; keep-alive successors were already on a worker.
        queue_wait_us = 0;

        // Stop extending sessions once shutdown begins: answer the
        // in-flight request, then hang up.
        const bool keep = request.keep_alive() && !stopping_;
        if (!conn.write_all(response.serialize(keep),
                            options_.request_timeout_ms))
            return;
        if (!keep)
            return;
    }
}

} // namespace service
} // namespace roboshape
