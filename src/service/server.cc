#include "service/server.h"

#include <chrono>
#include <utility>

#include "net/http.h"
#include "obs/registry.h"

namespace roboshape {
namespace service {

namespace {

/** Accept-poll granularity: how often loops re-check stopping_. */
constexpr int kPollMs = 50;

void
count_response_class(int status)
{
    if (status < 300) {
        ROBOSHAPE_OBS_COUNT("svc.responses_2xx", 1);
    } else if (status < 500) {
        ROBOSHAPE_OBS_COUNT("svc.responses_4xx", 1);
    } else {
        ROBOSHAPE_OBS_COUNT("svc.responses_5xx", 1);
    }
}

} // namespace

Server::Server(Service &service, ServerOptions options)
    : service_(service), options_(options)
{
    if (options_.workers == 0)
        options_.workers = 1;
    if (options_.queue_capacity == 0)
        options_.queue_capacity = 1;
}

Server::~Server()
{
    stop();
}

bool
Server::start()
{
    if (running_)
        return true;
    if (!listener_.listen(options_.port)) {
        error_ = listener_.error();
        return false;
    }
    port_ = listener_.bound_port();
    stopping_ = false;
    running_ = true;
    accept_thread_ = std::thread([this] { accept_loop(); });
    workers_.reserve(options_.workers);
    for (std::size_t i = 0; i < options_.workers; ++i)
        workers_.emplace_back([this] { worker_loop(); });
    return true;
}

void
Server::stop()
{
    if (!running_)
        return;
    stopping_ = true;
    queue_cv_.notify_all();
    if (accept_thread_.joinable())
        accept_thread_.join();
    // Workers drain whatever the accept thread already admitted, then
    // exit; join order guarantees no new admissions race the drain.
    queue_cv_.notify_all();
    for (std::thread &w : workers_)
        if (w.joinable())
            w.join();
    workers_.clear();
    listener_.close();
    running_ = false;
}

void
Server::accept_loop()
{
    while (!stopping_) {
        net::TcpConn conn = listener_.accept(kPollMs);
        if (!conn.valid())
            continue; // timeout: re-check stopping_
        ROBOSHAPE_OBS_COUNT("svc.connections", 1);
        std::size_t depth;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (queue_.size() >= options_.queue_capacity) {
                // Overload: shed at admission, before any parsing.
                ROBOSHAPE_OBS_COUNT("svc.rejected_overload", 1);
                const net::HttpResponse rejection = error_response(
                    429, "server overloaded: admission queue full");
                conn.write_all(rejection.serialize(false), kPollMs);
                continue; // conn closes on scope exit
            }
            queue_.push_back(std::move(conn));
            depth = queue_.size();
        }
        ROBOSHAPE_OBS_RECORD("svc.queue_depth",
                             static_cast<std::int64_t>(depth));
        queue_cv_.notify_one();
    }
}

void
Server::worker_loop()
{
    for (;;) {
        net::TcpConn conn;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            queue_cv_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping and fully drained
            conn = std::move(queue_.front());
            queue_.pop_front();
        }
        serve_connection(std::move(conn));
    }
}

void
Server::serve_connection(net::TcpConn conn)
{
    std::string leftover;
    for (;;) {
        net::HttpRequest request;
        const net::ReadResult read = net::read_request(
            conn, request, leftover, options_.request_timeout_ms);
        if (read != net::ReadResult::kOk) {
            // Transport-level failures that deserve a reply get one;
            // silence (kClosed) and idle timeouts just close.
            int status = 0;
            switch (read) {
              case net::ReadResult::kTooLarge: status = 413; break;
              case net::ReadResult::kMalformed: status = 400; break;
              case net::ReadResult::kUnsupported: status = 501; break;
              default: break;
            }
            if (status != 0) {
                const net::HttpResponse failure = error_response(
                    status, "request rejected by the HTTP layer");
                conn.write_all(failure.serialize(false),
                               options_.request_timeout_ms);
                count_response_class(status);
            }
            return;
        }

        ROBOSHAPE_OBS_COUNT("svc.requests", 1);
        // Request-latency telemetry (the svc.request_us histogram):
        // measured around the handler, never visible to it.
        const auto start =
            std::chrono::steady_clock::now(); // NOLINT(no-nondeterminism)
        const net::HttpResponse response = service_.handle(request);
        const auto us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() // NOLINT(no-nondeterminism)
                - start)
                .count();
        ROBOSHAPE_OBS_RECORD("svc.request_us",
                             static_cast<std::int64_t>(us));
        count_response_class(response.status);

        // Stop extending sessions once shutdown begins: answer the
        // in-flight request, then hang up.
        const bool keep = request.keep_alive() && !stopping_;
        if (!conn.write_all(response.serialize(keep),
                            options_.request_timeout_ms))
            return;
        if (!keep)
            return;
    }
}

} // namespace service
} // namespace roboshape
