/**
 * @file
 * Cross-request design cache of the roboshaped daemon (docs/SERVICE.md).
 *
 * Every request names a robot (library id or URDF body) and a kernel.
 * Sweeping and compiling that pair is pure: the response depends only on
 * the model, the kernel, and the knobs — so the daemon memoizes at two
 * levels, keyed by a structural hash of the parsed RobotModel:
 *
 *  1. the `core::SweepContext` (memoized schedules, PR 1) survives across
 *     requests, so a /v1/design after a /v1/sweep of the same topology
 *     re-runs zero scheduler passes; and
 *  2. the rendered response *bodies* are cached verbatim, which is what
 *     makes a cache hit byte-identical to the cold response — the
 *     property the `bench/daemon_throughput` gate asserts.
 *
 * Concurrency: the entry map is guarded by one mutex (lookups are cheap);
 * each entry has its own mutex serializing the lazy SweepContext
 * accessors (which are not thread-safe, see core/sweep_context.h) and
 * body rendering.  Different topologies therefore compute fully in
 * parallel, while concurrent identical requests compute once and share.
 *
 * Counters: svc.cache_hits / svc.cache_misses count body-level lookups.
 * Eviction: FIFO beyond kMaxEntries distinct (model, kernel) pairs — the
 * daemon bounds memory against adversarial many-topology traffic.
 */

#ifndef ROBOSHAPE_SERVICE_CACHE_H
#define ROBOSHAPE_SERVICE_CACHE_H

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/sweep_context.h"
#include "sched/task_graph.h"
#include "topology/robot_model.h"

namespace roboshape {
namespace service {

/** Distinct (model, kernel) entries kept before FIFO eviction. */
inline constexpr std::size_t kMaxCacheEntries = 64;

/**
 * Structural hash of a robot model: name, link names, parentage, joint
 * types/axes, frames, and inertias (splitmix64-mixed FNV over the exact
 * bytes).  Two models hash equal iff a request for either renders the
 * same responses, so the hash is a safe cache key and is also echoed to
 * clients as "topology_hash" for cache-correlation.
 */
std::uint64_t model_hash(const topology::RobotModel &model);

/** One cached topology: shared schedules + rendered response bodies. */
class CacheEntry
{
  public:
    CacheEntry(std::shared_ptr<const topology::RobotModel> model,
               sched::KernelKind kernel)
        : model_(std::move(model)), kernel_(kernel)
    {
    }

    /** Serializes all lazy work on this entry (see file comment). */
    std::mutex &mutex() { return mutex_; }

    const topology::RobotModel &model() const { return *model_; }
    sched::KernelKind kernel() const { return kernel_; }

    /**
     * The entry's SweepContext, created on first use.  Caller must hold
     * mutex(); the context's lazy accessors stay guarded by it too.
     */
    core::SweepContext &context();

    /**
     * Cached response body for @p key (an endpoint-specific string like
     * "sweep" or "design/4/4/2"); nullptr when not rendered yet.  Caller
     * must hold mutex().
     */
    const std::string *find_body(const std::string &key) const;
    /** Stores @p body under @p key.  Caller must hold mutex(). */
    const std::string &store_body(const std::string &key, std::string body);

  private:
    std::mutex mutex_;
    std::shared_ptr<const topology::RobotModel> model_;
    sched::KernelKind kernel_;
    std::unique_ptr<core::SweepContext> context_;
    std::map<std::string, std::string> bodies_;
};

class DesignCache
{
  public:
    /**
     * Entry for (@p hash, @p kernel), created from @p model when absent.
     * The returned shared_ptr stays valid across eviction (an evicted
     * entry finishes its in-flight requests and then dies).
     */
    std::shared_ptr<CacheEntry>
    entry(std::uint64_t hash, sched::KernelKind kernel,
          const topology::RobotModel &model);

    /** Number of resident (model, kernel) entries. */
    std::size_t size() const;

  private:
    using Key = std::pair<std::uint64_t, sched::KernelKind>;

    mutable std::mutex mutex_;
    std::map<Key, std::shared_ptr<CacheEntry>> entries_;
    std::deque<Key> order_; // FIFO eviction order
};

} // namespace service
} // namespace roboshape

#endif // ROBOSHAPE_SERVICE_CACHE_H
