#include "service/handlers.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <exception>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "accel/params.h"
#include "accel/platform.h"
#include "accel/resource_model.h"
#include "core/parse_uint.h"
#include "obs/json.h"
#include "obs/prometheus.h"
#include "obs/registry.h"
#include "obs/run_report.h"
#include "obs/wall_trace.h"
#include "service/flight_recorder.h"
#include "service/json_value.h"
#include "service/trace_vault.h"
#include "topology/robot_library.h"
#include "topology/urdf_parser.h"

namespace roboshape {
namespace service {

namespace {

using net::HttpRequest;
using net::HttpResponse;

std::string
hash_hex(std::uint64_t h)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return std::string(buf);
}

/** Case-insensitive library lookup ("iiwa", "HyQ", ...). */
std::optional<topology::RobotId>
resolve_robot(const std::string &name)
{
    const auto lower = [](std::string s) {
        std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
            return static_cast<char>(std::tolower(c));
        });
        return s;
    };
    const std::string want = lower(name);
    for (const auto &ids :
         {topology::all_robots(), topology::extended_robots()})
        for (topology::RobotId id : ids)
            if (lower(topology::robot_name(id)) == want)
                return id;
    return std::nullopt;
}

std::optional<sched::KernelKind>
resolve_kernel(const std::string &name)
{
    if (name == "gradient" || name == "dynamics-gradient")
        return sched::KernelKind::kDynamicsGradient;
    if (name == "crba" || name == "mass-matrix")
        return sched::KernelKind::kMassMatrix;
    if (name == "kinematics" || name == "forward-kinematics")
        return sched::KernelKind::kForwardKinematics;
    return std::nullopt;
}

/** Stable kernel tag used in responses and cache keys. */
const char *
kernel_tag(sched::KernelKind k)
{
    switch (k) {
      case sched::KernelKind::kDynamicsGradient: return "gradient";
      case sched::KernelKind::kMassMatrix: return "crba";
      case sched::KernelKind::kForwardKinematics: return "kinematics";
    }
    return "?";
}

void
write_diagnostics(obs::JsonWriter &w,
                  const topology::ValidationReport &report)
{
    w.kv("errors", static_cast<std::uint64_t>(report.error_count()));
    w.kv("warnings", static_cast<std::uint64_t>(report.warning_count()));
    w.key("diagnostics").begin_array();
    for (const topology::Diagnostic &d : report.diagnostics()) {
        w.begin_object();
        w.kv("severity", d.severity == topology::Severity::kError
                             ? "error"
                             : "warning");
        w.kv("code", topology::to_string(d.code));
        w.kv("line", static_cast<std::uint64_t>(d.location.line));
        w.kv("column", static_cast<std::uint64_t>(d.location.column));
        w.kv("message", d.message);
        w.end_object();
    }
    w.end_array();
}

/** 422 whose body is the full validation report. */
HttpResponse
invalid_urdf_response(const topology::ValidationReport &report)
{
    obs::JsonWriter w;
    w.begin_object();
    w.kv("schema", "roboshape.validate/1");
    w.kv("ok", false);
    w.kv("error", "URDF failed validation");
    write_diagnostics(w, report);
    w.end_object();
    return net::json_response(422, w.str());
}

/** Parsed, validated request context shared by the model endpoints. */
struct ResolvedRequest
{
    topology::RobotModel model;
    sched::KernelKind kernel = sched::KernelKind::kDynamicsGradient;
    std::optional<std::size_t> max_pes_fwd;
    std::optional<std::size_t> max_pes_bwd;
    std::optional<std::size_t> max_block_size;
};

/**
 * Parses + validates one POST body.  Returns the failure response in
 * @p error when resolution fails.  @p allow_knobs gates the max_* keys
 * (they mean nothing for /v1/validate and /v1/sweep).
 */
std::optional<ResolvedRequest>
resolve_request(const HttpRequest &request, bool allow_knobs,
                HttpResponse &error)
{
    if (request.body.empty()) {
        error = error_response(
            400, "request body required: {\"robot\": name} or "
                 "{\"urdf\": text}");
        return std::nullopt;
    }
    std::string parse_error;
    const std::optional<JsonValue> body =
        parse_json(request.body, &parse_error);
    if (!body || !body->is_object()) {
        error = error_response(
            400, body ? "request body must be a JSON object"
                      : "invalid JSON: " + parse_error);
        return std::nullopt;
    }

    for (const auto &[key, value] : body->members()) {
        (void)value;
        const bool known =
            key == "robot" || key == "urdf" || key == "kernel" ||
            (allow_knobs &&
             (key == "max_pes_fwd" || key == "max_pes_bwd" ||
              key == "max_block_size"));
        if (!known) {
            error = error_response(400, "unknown request key '" + key +
                                            "'");
            return std::nullopt;
        }
    }

    ResolvedRequest out;
    if (const auto kernel_name = body->get_string("kernel")) {
        const auto kernel = resolve_kernel(*kernel_name);
        if (!kernel) {
            error = error_response(
                400, "unknown kernel '" + *kernel_name +
                         "' (expected gradient|crba|kinematics)");
            return std::nullopt;
        }
        out.kernel = *kernel;
    } else if (body->find("kernel")) {
        error = error_response(400, "'kernel' must be a string");
        return std::nullopt;
    }

    if (allow_knobs) {
        bool ok = true;
        const auto knob = [&](const char *key) {
            return body->get_uint(key, 1, 4096, ok);
        };
        const auto fwd = knob("max_pes_fwd");
        const auto bwd = knob("max_pes_bwd");
        const auto block = knob("max_block_size");
        if (!ok) {
            error = error_response(
                400, "knob caps must be integers in [1, 4096]");
            return std::nullopt;
        }
        if (fwd)
            out.max_pes_fwd = static_cast<std::size_t>(*fwd);
        if (bwd)
            out.max_pes_bwd = static_cast<std::size_t>(*bwd);
        if (block)
            out.max_block_size = static_cast<std::size_t>(*block);
    }

    const auto robot = body->get_string("robot");
    const auto urdf = body->get_string("urdf");
    if ((robot && urdf) || (!robot && !urdf)) {
        error = error_response(
            400, "exactly one of 'robot' or 'urdf' is required");
        return std::nullopt;
    }
    if (robot) {
        const auto id = resolve_robot(*robot);
        if (!id) {
            error = error_response(404, "unknown library robot '" +
                                            *robot + "'");
            return std::nullopt;
        }
        out.model = topology::build_robot(*id);
        return out;
    }
    // Untrusted URDF body: the PR 3 checked front end collects every
    // diagnostic; failures surface as a 422 validation report.
    topology::UrdfParseResult parsed =
        topology::parse_urdf_checked(*urdf);
    if (!parsed.ok()) {
        error = invalid_urdf_response(parsed.report);
        return std::nullopt;
    }
    out.model = std::move(*parsed.model);
    return out;
}

HttpResponse
handle_healthz()
{
    obs::JsonWriter w;
    w.begin_object();
    w.kv("status", "ok");
    w.kv("service", "roboshaped");
    w.end_object();
    return net::json_response(200, w.str());
}

HttpResponse
handle_robots()
{
    obs::JsonWriter w;
    w.begin_object();
    w.kv("schema", "roboshape.robots/1");
    w.key("robots").begin_array();
    for (const auto &ids :
         {topology::all_robots(), topology::extended_robots()})
        for (topology::RobotId id : ids) {
            const topology::RobotModel model = topology::build_robot(id);
            w.begin_object();
            w.kv("name", topology::robot_name(id));
            w.kv("links", static_cast<std::uint64_t>(model.num_links()));
            w.kv("topology_hash", hash_hex(model_hash(model)));
            w.end_object();
        }
    w.end_array();
    w.end_object();
    return net::json_response(200, w.str());
}

HttpResponse
handle_validate(const HttpRequest &request)
{
    // /v1/validate reports rather than rejects: malformed URDF is a
    // *successful* validation request, so parse the body here instead of
    // going through resolve_request's 422 path.
    if (request.body.empty())
        return error_response(400, "request body required");
    std::string parse_error;
    const std::optional<JsonValue> body =
        parse_json(request.body, &parse_error);
    if (!body || !body->is_object())
        return error_response(400, body
                                       ? "request body must be a JSON "
                                         "object"
                                       : "invalid JSON: " + parse_error);
    const auto robot = body->get_string("robot");
    const auto urdf = body->get_string("urdf");
    if ((robot && urdf) || (!robot && !urdf))
        return error_response(
            400, "exactly one of 'robot' or 'urdf' is required");

    std::string urdf_text;
    std::optional<topology::RobotId> library_id;
    if (robot) {
        library_id = resolve_robot(*robot);
        if (!library_id)
            return error_response(404,
                                  "unknown library robot '" + *robot + "'");
        urdf_text = topology::robot_urdf(*library_id);
    } else {
        urdf_text = *urdf;
    }

    const topology::UrdfParseResult parsed =
        topology::parse_urdf_checked(urdf_text);
    obs::JsonWriter w;
    w.begin_object();
    w.kv("schema", "roboshape.validate/1");
    w.kv("ok", parsed.ok());
    if (parsed.ok()) {
        // Library robots hash their canonical in-memory model (what the
        // compute endpoints key on), not the URDF-rendered round trip —
        // the text render loses low double bits, and clients correlate
        // topology_hash across endpoints.
        const std::uint64_t hash =
            library_id ? model_hash(topology::build_robot(*library_id))
                       : model_hash(*parsed.model);
        w.kv("robot", parsed.model->name());
        w.kv("links",
             static_cast<std::uint64_t>(parsed.model->num_links()));
        w.kv("topology_hash", hash_hex(hash));
    }
    write_diagnostics(w, parsed.report);
    w.end_object();
    return net::json_response(200, w.str());
}

/** Renders the sweep body from a warmed context.  Entry mutex held. */
std::string
render_sweep_body(core::SweepContext &ctx, std::uint64_t hash)
{
    const std::size_t n = ctx.num_links();
    const std::size_t block_max = ctx.block_knob_max();
    const double period = ctx.clock_period_ns();

    // Schedule precompute fans out as a job graph on the shared
    // executor; composition below is cache lookups only.
    ctx.precompute_stage_schedules();

    struct Point
    {
        accel::AcceleratorParams params;
        std::int64_t cycles;
        accel::ResourceEstimate resources;
    };
    std::vector<Point> points;
    points.reserve(n * n * block_max);
    std::int64_t min_cycles = std::numeric_limits<std::int64_t>::max();
    std::int64_t max_cycles = 0;
    for (std::size_t pf = 1; pf <= n; ++pf)
        for (std::size_t pb = 1; pb <= n; ++pb)
            for (std::size_t b = 1; b <= block_max; ++b) {
                Point p;
                p.params = {pf, pb, b};
                p.cycles = ctx.cycles_no_pipelining(p.params);
                p.resources = accel::estimate_resources(p.params, n);
                min_cycles = std::min(min_cycles, p.cycles);
                max_cycles = std::max(max_cycles, p.cycles);
                points.push_back(p);
            }

    // Latency/LUT Pareto frontier, identical to
    // DesignSpace::pareto_frontier(): sort by (LUTs, cycles), keep
    // strict cycle improvements.
    std::vector<const Point *> sorted;
    sorted.reserve(points.size());
    for (const Point &p : points)
        sorted.push_back(&p);
    std::sort(sorted.begin(), sorted.end(),
              [](const Point *a, const Point *b) {
                  if (a->resources.luts != b->resources.luts)
                      return a->resources.luts < b->resources.luts;
                  return a->cycles < b->cycles;
              });
    std::vector<const Point *> frontier;
    std::int64_t best_cycles = std::numeric_limits<std::int64_t>::max();
    for (const Point *p : sorted)
        if (p->cycles < best_cycles) {
            frontier.push_back(p);
            best_cycles = p->cycles;
        }

    obs::JsonWriter w;
    w.begin_object();
    w.kv("schema", "roboshape.sweep/1");
    w.kv("robot", ctx.model().name());
    w.kv("kernel", kernel_tag(ctx.kernel()));
    w.kv("links", static_cast<std::uint64_t>(n));
    w.kv("topology_hash", hash_hex(hash));
    w.kv("clock_period_ns", period);
    w.kv("total_points", static_cast<std::uint64_t>(points.size()));
    w.kv("min_cycles", min_cycles);
    w.kv("max_cycles", max_cycles);
    w.key("pareto").begin_array();
    for (const Point *p : frontier) {
        w.begin_object();
        w.kv("pes_fwd", static_cast<std::uint64_t>(p->params.pes_fwd));
        w.kv("pes_bwd", static_cast<std::uint64_t>(p->params.pes_bwd));
        w.kv("block_size",
             static_cast<std::uint64_t>(p->params.block_size));
        w.kv("cycles", p->cycles);
        w.kv("latency_us",
             static_cast<double>(p->cycles) * period * 1e-3);
        w.kv("luts", p->resources.luts);
        w.kv("dsps", p->resources.dsps);
        w.kv("fits_vcu118", p->resources.fits(accel::vcu118()));
        w.kv("fits_vc707", p->resources.fits(accel::vc707()));
        w.end_object();
    }
    w.end_array();
    w.end_object();
    return w.str();
}

/** Knob resolution shared by design/report: caps clamped to [1, N]. */
accel::AcceleratorParams
resolve_params(core::SweepContext &ctx, const ResolvedRequest &req)
{
    const std::size_t n = ctx.num_links();
    const auto clamp_knob = [n](std::size_t v) {
        return std::clamp<std::size_t>(v, 1, n);
    };
    accel::AcceleratorParams p;
    p.pes_fwd = clamp_knob(req.max_pes_fwd.value_or(n));
    p.pes_bwd = clamp_knob(req.max_pes_bwd.value_or(n));
    if (ctx.kernel() == sched::KernelKind::kDynamicsGradient)
        p.block_size = req.max_block_size
                           ? clamp_knob(*req.max_block_size)
                           : ctx.best_block_size();
    else
        p.block_size = 1;
    return p;
}

/** Renders the design body for resolved params.  Entry mutex held. */
std::string
render_design_body(core::SweepContext &ctx,
                   const accel::AcceleratorParams &params,
                   std::uint64_t hash)
{
    const accel::AcceleratorDesign design = ctx.design(params);
    obs::JsonWriter w;
    w.begin_object();
    w.kv("schema", "roboshape.design/1");
    w.kv("robot", ctx.model().name());
    w.kv("kernel", kernel_tag(ctx.kernel()));
    w.kv("links", static_cast<std::uint64_t>(ctx.num_links()));
    w.kv("topology_hash", hash_hex(hash));
    w.key("params").begin_object();
    w.kv("pes_fwd", static_cast<std::uint64_t>(params.pes_fwd));
    w.kv("pes_bwd", static_cast<std::uint64_t>(params.pes_bwd));
    w.kv("block_size", static_cast<std::uint64_t>(params.block_size));
    w.end_object();
    w.key("cycles").begin_object();
    w.kv("no_pipelining", design.cycles_no_pipelining());
    w.kv("pipelined", design.cycles_pipelined());
    w.kv("overlapped", design.cycles_overlapped());
    w.end_object();
    w.kv("clock_period_ns", design.clock_period_ns());
    w.key("latency_us").begin_object();
    w.kv("no_pipelining", design.latency_us_no_pipelining());
    w.kv("pipelined", design.latency_us_pipelined());
    w.end_object();
    const accel::ResourceEstimate &r = design.resources();
    w.key("resources").begin_object();
    w.kv("luts", r.luts);
    w.kv("dsps", r.dsps);
    for (const accel::FpgaPlatform *platform :
         {&accel::vcu118(), &accel::vc707()}) {
        w.key(platform->name).begin_object();
        w.kv("fits", r.fits(*platform));
        w.kv("lut_utilization", r.lut_utilization(*platform));
        w.kv("dsp_utilization", r.dsp_utilization(*platform));
        w.end_object();
    }
    w.end_object();
    w.end_object();
    return w.str();
}

/** Response carrying non-JSON text (the Prometheus exposition). */
HttpResponse
text_response(int status, std::string body)
{
    HttpResponse r;
    r.status = status;
    r.reason = net::reason_phrase(status);
    r.set_header("Content-Type",
                 "text/plain; version=0.0.4; charset=utf-8");
    r.body = std::move(body);
    return r;
}

/** GET /metrics: the shared exposition encoder over the registry. */
HttpResponse
handle_metrics()
{
    return text_response(200, obs::prometheus_exposition());
}

/** GET /v1/statz: full registry snapshot with quantiles + provenance. */
HttpResponse
handle_statz(const DesignCache &cache)
{
    obs::JsonWriter w(2);
    w.begin_object();
    w.kv("schema", kMetricsDumpSchema);
    w.key("build").begin_object();
    w.kv("git_sha", obs::git_sha());
    w.kv("service", "roboshaped");
    w.end_object();
    w.kv("cache_entries", static_cast<std::uint64_t>(cache.size()));
    w.kv("wall_trace_enabled", obs::wall_trace_enabled());
    w.key("counters").begin_array();
    for (const obs::CounterSample &c : obs::registry().counters()) {
        w.begin_object();
        w.kv("name", c.name);
        w.kv("value", c.value);
        w.end_object();
    }
    w.end_array();
    w.key("histograms").begin_array();
    for (const obs::HistogramSample &h : obs::registry().histograms()) {
        w.begin_object();
        w.kv("name", h.name);
        w.kv("count", h.stats.count);
        w.kv("sum", h.stats.sum);
        w.kv("min", h.stats.min);
        w.kv("max", h.stats.max);
        w.kv("mean", h.stats.mean());
        w.kv("p50", h.stats.p50());
        w.kv("p90", h.stats.p90());
        w.kv("p99", h.stats.p99());
        w.end_object();
    }
    w.end_array();
    w.end_object();
    return net::json_response(200, w.str());
}

/** {"enabled": bool} body of the trace-toggle endpoints. */
HttpResponse
trace_state_response()
{
    obs::JsonWriter w;
    w.begin_object();
    w.kv("enabled", obs::wall_trace_enabled());
    w.end_object();
    return net::json_response(200, w.str());
}

/** POST /v1/debug/trace: runtime wall-trace toggle. */
HttpResponse
handle_debug_trace_toggle(const HttpRequest &request)
{
    if (request.body.empty())
        return error_response(
            400, "request body required: {\"enabled\": true|false}");
    std::string parse_error;
    const std::optional<JsonValue> body =
        parse_json(request.body, &parse_error);
    if (!body || !body->is_object())
        return error_response(400, body
                                       ? "request body must be a JSON "
                                         "object"
                                       : "invalid JSON: " + parse_error);
    const JsonValue *enabled = nullptr;
    for (const auto &[key, value] : body->members()) {
        if (key != "enabled")
            return error_response(400, "unknown request key '" + key +
                                           "'");
        enabled = &value;
    }
    if (enabled == nullptr || !enabled->is_bool())
        return error_response(400, "'enabled' must be a boolean");
    obs::set_wall_trace_enabled(enabled->as_bool());
    if (!enabled->as_bool())
        obs::clear_wall_trace();
    return trace_state_response();
}

/** GET /v1/debug/trace/last and /v1/debug/trace/<id>. */
HttpResponse
handle_debug_trace_dump(std::string_view suffix)
{
    std::shared_ptr<const std::string> dump;
    if (suffix == "last") {
        dump = trace_vault().last();
        if (!dump)
            return error_response(404, "no traced request yet (send one "
                                       "with X-Roboshape-Trace: 1)");
    } else {
        const std::optional<std::uint64_t> id = core::parse_uint(suffix);
        if (!id)
            return error_response(
                400, "trace id must be a decimal request id or 'last'");
        dump = trace_vault().find(*id);
        if (!dump)
            return error_response(404, "no trace recorded for request " +
                                           std::string(suffix));
    }
    return net::json_response(200, *dump);
}

/** GET /v1/debug/requests: the flight-recorder ring. */
HttpResponse
handle_debug_requests()
{
    return net::json_response(200, flight_recorder().dump_json());
}

/** Dispatch of everything under /v1/debug/. */
HttpResponse
handle_debug(const HttpRequest &request)
{
    const std::string &target = request.target;
    if (target == "/v1/debug/trace") {
        if (request.method == "POST")
            return handle_debug_trace_toggle(request);
        if (request.method == "GET")
            return trace_state_response();
        return error_response(405, "use GET or POST /v1/debug/trace");
    }
    const std::string_view prefix = "/v1/debug/trace/";
    if (target.size() > prefix.size() &&
        std::string_view(target).substr(0, prefix.size()) == prefix) {
        if (request.method != "GET")
            return error_response(405, "use GET " + target);
        return handle_debug_trace_dump(
            std::string_view(target).substr(prefix.size()));
    }
    if (target == "/v1/debug/requests") {
        if (request.method != "GET")
            return error_response(405, "use GET /v1/debug/requests");
        return handle_debug_requests();
    }
    return error_response(404, "no such endpoint: " + target);
}

} // namespace

Endpoint
classify_endpoint(std::string_view target) noexcept
{
    if (target == "/healthz")
        return Endpoint::kHealthz;
    if (target == "/v1/robots")
        return Endpoint::kRobots;
    if (target == "/v1/validate")
        return Endpoint::kValidate;
    if (target == "/v1/sweep")
        return Endpoint::kSweep;
    if (target == "/v1/design")
        return Endpoint::kDesign;
    if (target == "/v1/report")
        return Endpoint::kReport;
    if (target == "/metrics")
        return Endpoint::kMetrics;
    if (target == "/v1/statz")
        return Endpoint::kStatz;
    if (target.size() >= 9 && target.substr(0, 9) == "/v1/debug")
        return Endpoint::kDebug;
    return Endpoint::kOther;
}

const char *
endpoint_name(Endpoint e) noexcept
{
    switch (e) {
      case Endpoint::kHealthz: return "healthz";
      case Endpoint::kRobots: return "robots";
      case Endpoint::kValidate: return "validate";
      case Endpoint::kSweep: return "sweep";
      case Endpoint::kDesign: return "design";
      case Endpoint::kReport: return "report";
      case Endpoint::kMetrics: return "metrics";
      case Endpoint::kStatz: return "statz";
      case Endpoint::kDebug: return "debug";
      case Endpoint::kOther: break;
    }
    return "other";
}

HttpResponse
error_response(int status, const std::string &message)
{
    obs::JsonWriter w;
    w.begin_object();
    w.kv("error", message);
    w.end_object();
    return net::json_response(status, w.str());
}

HttpResponse
Service::handle(const net::HttpRequest &request)
{
    try {
        ROBOSHAPE_OBS_SPAN(handle_span, "svc.handle");
        const std::string &target = request.target;
        const bool is_post = request.method == "POST";
        const bool is_get = request.method == "GET";

        if (target == "/healthz")
            return is_get ? handle_healthz()
                          : error_response(405, "use GET /healthz");
        if (target == "/v1/robots")
            return is_get ? handle_robots()
                          : error_response(405, "use GET /v1/robots");
        if (target == "/metrics")
            return is_get ? handle_metrics()
                          : error_response(405, "use GET /metrics");
        if (target == "/v1/statz")
            return is_get ? handle_statz(cache_)
                          : error_response(405, "use GET /v1/statz");
        if (classify_endpoint(target) == Endpoint::kDebug)
            return handle_debug(request);
        if (target == "/v1/validate")
            return is_post ? handle_validate(request)
                           : error_response(405, "use POST /v1/validate");

        if (target == "/v1/sweep" || target == "/v1/design" ||
            target == "/v1/report") {
            if (!is_post)
                return error_response(405,
                                      "use POST " + target);
            const bool knobs = target != "/v1/sweep";
            HttpResponse failure;
            const std::optional<ResolvedRequest> req =
                resolve_request(request, knobs, failure);
            if (!req)
                return failure;

            const std::uint64_t hash = model_hash(req->model);
            const std::shared_ptr<CacheEntry> entry =
                cache_.entry(hash, req->kernel, req->model);
            std::lock_guard<std::mutex> lock(entry->mutex());
            ROBOSHAPE_OBS_SPAN(cache_span, "svc.cache_entry");

            if (target == "/v1/sweep") {
                const std::string *body = entry->find_body("sweep");
                const bool hit = body != nullptr;
                if (!body)
                    body = &entry->store_body(
                        "sweep",
                        render_sweep_body(entry->context(), hash));
                HttpResponse response = net::json_response(200, *body);
                response.set_header("X-Roboshape-Cache",
                                    hit ? "hit" : "miss");
                return response;
            }

            const accel::AcceleratorParams params =
                resolve_params(entry->context(), *req);
            if (target == "/v1/design") {
                const std::string key =
                    "design/" + params.to_string();
                const std::string *body = entry->find_body(key);
                const bool hit = body != nullptr;
                if (!body)
                    body = &entry->store_body(
                        key, render_design_body(entry->context(), params,
                                                hash));
                HttpResponse response = net::json_response(200, *body);
                response.set_header("X-Roboshape-Cache",
                                    hit ? "hit" : "miss");
                return response;
            }

            // /v1/report: a RunReport document over the compiled design
            // plus the live counter registry.  Counters change between
            // calls, so reports are never body-cached.
            core::SweepContext &ctx = entry->context();
            const accel::AcceleratorDesign design = ctx.design(params);
            obs::RunReport report("roboshaped", "design service report");
            report.set_robot(ctx.model().name());
            report.set_kernel(kernel_tag(ctx.kernel()));
            report.set_params(params.pes_fwd, params.pes_bwd,
                              params.block_size);
            report.metric("topology_hash", hash_hex(hash));
            report.metric("pipelined_makespan_cycles",
                          static_cast<std::int64_t>(
                              design.pipelined().makespan));
            report.metric("staged_cycles",
                          static_cast<std::int64_t>(
                              ctx.cycles_no_pipelining(params)));
            report.metric("clock_period_ns", design.clock_period_ns());
            report.metric("cache_entries",
                          static_cast<std::uint64_t>(cache_.size()));
            report.capture_counters();
            return net::json_response(200, report.to_json(2));
        }

        return error_response(404, "no such endpoint: " + target);
    } catch (const std::exception &e) {
        return error_response(500, std::string("internal error: ") +
                                       e.what());
    } catch (...) {
        return error_response(500, "internal error");
    }
}

} // namespace service
} // namespace roboshape
