/**
 * @file
 * Per-request trace vault of the roboshaped daemon (docs/SERVICE.md).
 *
 * A request carrying `X-Roboshape-Trace: 1` is traced end to end — the
 * server forces wall tracing on for its duration, collects the spans
 * stamped with its request id (handler, cache, executor workers,
 * SimEngine phases), renders them as a Chrome trace-event document, and
 * parks the result here.  `GET /v1/debug/trace/last` (or
 * `/v1/debug/trace/<id>`) retrieves it afterwards, so tracing one
 * production request is: send it with the header, fetch the dump, open
 * it in Perfetto.
 *
 * Bounded: only the most recent kTraceVaultCapacity traces are kept.
 */

#ifndef ROBOSHAPE_SERVICE_TRACE_VAULT_H
#define ROBOSHAPE_SERVICE_TRACE_VAULT_H

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>

namespace roboshape {
namespace service {

/** Traced requests remembered before the oldest dump is dropped. */
inline constexpr std::size_t kTraceVaultCapacity = 8;

class TraceVault
{
  public:
    /** Parks @p trace_json as the newest dump for request @p id. */
    void store(std::uint64_t id, std::string trace_json);

    /** Dump for request @p id, nullptr when evicted or never traced. */
    std::shared_ptr<const std::string> find(std::uint64_t id) const;

    /** Most recently stored dump, nullptr when none yet. */
    std::shared_ptr<const std::string> last() const;

    /** Id of the most recently stored dump, 0 when none yet. */
    std::uint64_t last_id() const;

  private:
    mutable std::mutex mu_;
    std::deque<std::pair<std::uint64_t,
                         std::shared_ptr<const std::string>>>
        entries_; // newest at the back
};

/** The process-wide vault the daemon's request loop stores into. */
TraceVault &trace_vault();

} // namespace service
} // namespace roboshape

#endif // ROBOSHAPE_SERVICE_TRACE_VAULT_H
