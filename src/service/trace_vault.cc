/**
 * @file
 * Implementation of the per-request trace vault.
 */

#include "service/trace_vault.h"

namespace roboshape {
namespace service {

void
TraceVault::store(std::uint64_t id, std::string trace_json)
{
    auto dump = std::make_shared<const std::string>(std::move(trace_json));
    std::lock_guard<std::mutex> lock(mu_);
    entries_.emplace_back(id, std::move(dump));
    while (entries_.size() > kTraceVaultCapacity)
        entries_.pop_front();
}

std::shared_ptr<const std::string>
TraceVault::find(std::uint64_t id) const
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it)
        if (it->first == id)
            return it->second;
    return nullptr;
}

std::shared_ptr<const std::string>
TraceVault::last() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.empty() ? nullptr : entries_.back().second;
}

std::uint64_t
TraceVault::last_id() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.empty() ? 0 : entries_.back().first;
}

TraceVault &
trace_vault()
{
    static TraceVault instance;
    return instance;
}

} // namespace service
} // namespace roboshape
