#include "service/json_value.h"

#include <cmath>
#include <cstdlib>

namespace roboshape {
namespace service {

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (kind_ != Kind::kObject)
        return nullptr;
    for (const auto &[k, v] : object_)
        if (k == key)
            return &v;
    return nullptr;
}

std::optional<std::string>
JsonValue::get_string(std::string_view key) const
{
    const JsonValue *v = find(key);
    if (!v || !v->is_string())
        return std::nullopt;
    return v->as_string();
}

std::optional<std::uint64_t>
JsonValue::get_uint(std::string_view key, std::uint64_t min,
                    std::uint64_t max, bool &ok) const
{
    const JsonValue *v = find(key);
    if (!v)
        return std::nullopt;
    if (!v->is_number()) {
        ok = false;
        return std::nullopt;
    }
    const double d = v->as_number();
    if (!(d >= 0.0) || std::floor(d) != d || d > 1e18) {
        ok = false;
        return std::nullopt;
    }
    const std::uint64_t u = static_cast<std::uint64_t>(d);
    if (u < min || u > max) {
        ok = false;
        return std::nullopt;
    }
    return u;
}

/** Recursive-descent parser over one contiguous buffer. */
class JsonParser
{
  public:
    JsonParser(std::string_view text, std::string *error)
        : text_(text), error_(error)
    {
    }

    std::optional<JsonValue>
    run()
    {
        JsonValue value;
        if (!parse_value(value, 0))
            return std::nullopt;
        skip_ws();
        if (pos_ != text_.size()) {
            fail("trailing content after the document");
            return std::nullopt;
        }
        return value;
    }

  private:
    void
    fail(const char *why)
    {
        if (error_ && error_->empty())
            *error_ = std::string(why) + " at byte " + std::to_string(pos_);
    }

    void
    skip_ws()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    bool
    parse_value(JsonValue &out, int depth)
    {
        if (depth > kMaxJsonDepth) {
            fail("nesting too deep");
            return false;
        }
        skip_ws();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return false;
        }
        switch (text_[pos_]) {
          case '{':
            return parse_object(out, depth);
          case '[':
            return parse_array(out, depth);
          case '"':
            out.kind_ = JsonValue::Kind::kString;
            return parse_string(out.string_);
          case 't':
            if (!literal("true")) {
                fail("invalid literal");
                return false;
            }
            out.kind_ = JsonValue::Kind::kBool;
            out.bool_ = true;
            return true;
          case 'f':
            if (!literal("false")) {
                fail("invalid literal");
                return false;
            }
            out.kind_ = JsonValue::Kind::kBool;
            out.bool_ = false;
            return true;
          case 'n':
            if (!literal("null")) {
                fail("invalid literal");
                return false;
            }
            out.kind_ = JsonValue::Kind::kNull;
            return true;
          default:
            return parse_number(out);
        }
    }

    bool
    parse_object(JsonValue &out, int depth)
    {
        out.kind_ = JsonValue::Kind::kObject;
        ++pos_; // '{'
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skip_ws();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                fail("expected object key");
                return false;
            }
            std::string key;
            if (!parse_string(key))
                return false;
            skip_ws();
            if (pos_ >= text_.size() || text_[pos_] != ':') {
                fail("expected ':'");
                return false;
            }
            ++pos_;
            JsonValue value;
            if (!parse_value(value, depth + 1))
                return false;
            out.object_.emplace_back(std::move(key), std::move(value));
            skip_ws();
            if (pos_ >= text_.size()) {
                fail("unterminated object");
                return false;
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            fail("expected ',' or '}'");
            return false;
        }
    }

    bool
    parse_array(JsonValue &out, int depth)
    {
        out.kind_ = JsonValue::Kind::kArray;
        ++pos_; // '['
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            JsonValue value;
            if (!parse_value(value, depth + 1))
                return false;
            out.array_.push_back(std::move(value));
            skip_ws();
            if (pos_ >= text_.size()) {
                fail("unterminated array");
                return false;
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            fail("expected ',' or ']'");
            return false;
        }
    }

    /** Appends one code point to @p out as UTF-8. */
    static void
    append_utf8(std::string &out, std::uint32_t cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    bool
    parse_hex4(std::uint32_t &out)
    {
        if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return false;
        }
        out = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_ + static_cast<std::size_t>(i)];
            std::uint32_t digit;
            if (c >= '0' && c <= '9')
                digit = static_cast<std::uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                digit = static_cast<std::uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                digit = static_cast<std::uint32_t>(c - 'A' + 10);
            else {
                fail("invalid \\u escape");
                return false;
            }
            out = out * 16 + digit;
        }
        pos_ += 4;
        return true;
    }

    bool
    parse_string(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20) {
                fail("raw control character in string");
                return false;
            }
            if (c != '\\') {
                out += c;
                ++pos_;
                continue;
            }
            if (++pos_ >= text_.size())
                break;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                  std::uint32_t cp;
                  if (!parse_hex4(cp))
                      return false;
                  if (cp >= 0xD800 && cp <= 0xDBFF) {
                      // High surrogate: require a low-surrogate pair.
                      if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                          text_[pos_ + 1] != 'u') {
                          fail("unpaired surrogate");
                          return false;
                      }
                      pos_ += 2;
                      std::uint32_t low;
                      if (!parse_hex4(low))
                          return false;
                      if (low < 0xDC00 || low > 0xDFFF) {
                          fail("unpaired surrogate");
                          return false;
                      }
                      cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                  } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                      fail("unpaired surrogate");
                      return false;
                  }
                  append_utf8(out, cp);
                  break;
              }
              default:
                fail("invalid escape");
                return false;
            }
        }
        fail("unterminated string");
        return false;
    }

    bool
    parse_number(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        const std::size_t digits_start = pos_;
        while (pos_ < text_.size() && text_[pos_] >= '0' &&
               text_[pos_] <= '9')
            ++pos_;
        if (pos_ == digits_start) {
            pos_ = start;
            fail("invalid value");
            return false;
        }
        // No leading zeros: "0" alone or "0.x" is fine, "01" is not.
        if (text_[digits_start] == '0' && pos_ - digits_start > 1) {
            pos_ = start;
            fail("leading zero");
            return false;
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            const std::size_t frac = pos_;
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9')
                ++pos_;
            if (pos_ == frac) {
                fail("digits required after '.'");
                return false;
            }
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            const std::size_t exp = pos_;
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9')
                ++pos_;
            if (pos_ == exp) {
                fail("digits required in exponent");
                return false;
            }
        }
        const std::string token(text_.substr(start, pos_ - start));
        out.kind_ = JsonValue::Kind::kNumber;
        // The grammar loop above already validated every byte of the
        // token (RFC 8259 number syntax); strtod only converts it.
        out.number_ =
            std::strtod(token.c_str(), nullptr); // NOLINT(banned-raw-parse)
        if (!std::isfinite(out.number_)) {
            fail("number out of range");
            return false;
        }
        return true;
    }

    std::string_view text_;
    std::string *error_ = nullptr;
    std::size_t pos_ = 0;
};

std::optional<JsonValue>
parse_json(std::string_view text, std::string *error)
{
    if (error)
        error->clear();
    return JsonParser(text, error).run();
}

} // namespace service
} // namespace roboshape
