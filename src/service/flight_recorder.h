/**
 * @file
 * Flight recorder of the roboshaped daemon (docs/OBSERVABILITY.md).
 *
 * A fixed-size lock-free ring holding summaries of the last
 * kFlightRecorderCapacity requests — id, endpoint, status, cache
 * hit/miss, queue wait, handle time, response bytes — so a live daemon
 * can answer "what just happened" without any logging enabled.  Readers
 * never block writers: each slot is a miniature seqlock (ticket-stamped
 * sequence word around relaxed-atomic fields), and a snapshot simply
 * skips slots that are mid-overwrite.
 *
 * Dumped via `GET /v1/debug/requests` and to stderr on SIGUSR1
 * (tools/roboshape_cli.cpp), and reused as the record type of the
 * JSON-lines access log (service/access_log.h).
 */

#ifndef ROBOSHAPE_SERVICE_FLIGHT_RECORDER_H
#define ROBOSHAPE_SERVICE_FLIGHT_RECORDER_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace roboshape {
namespace service {

/** Requests remembered by the ring (the "last N" of SIGUSR1 dumps). */
inline constexpr std::size_t kFlightRecorderCapacity = 32;

/** Schema tag of the /v1/debug/requests and SIGUSR1 dump documents. */
inline constexpr const char *kRequestsDumpSchema =
    "roboshape.requests_dump/1";

/**
 * One request summary.  String fields point at static storage (endpoint
 * labels, method names, cache verdicts) so records are POD and the ring
 * never allocates.
 */
struct RequestRecord
{
    std::uint64_t id = 0;
    const char *endpoint = "other"; ///< endpoint_name() label.
    const char *method = "OTHER";   ///< "GET", "POST", or "OTHER".
    int status = 0;
    const char *cache = "none";     ///< "hit", "miss", or "none".
    std::int64_t queue_wait_us = 0; ///< Admission-queue wait (first
                                    ///< request of the connection).
    std::int64_t handle_us = 0;     ///< Service::handle wall time.
    std::uint64_t bytes = 0;        ///< Response body size.
    bool slow = false;              ///< handle_us >= slow-ms threshold.
};

class FlightRecorder
{
  public:
    /** Publishes @p r as the newest record.  Lock-free, any thread. */
    void record(const RequestRecord &r) noexcept;

    /** Last records, oldest first; torn (mid-write) slots skipped. */
    std::vector<RequestRecord> snapshot() const;

    /** Full dump as a roboshape.requests_dump/1 JSON document. */
    std::string dump_json() const;

    /** Total records ever published. */
    std::uint64_t total() const noexcept
    {
        return next_.load(std::memory_order_acquire);
    }

  private:
    /** Seqlocked slot: seq == 2*ticket+2 publishes ticket's record. */
    struct Slot
    {
        std::atomic<std::uint64_t> seq{0};
        std::atomic<std::uint64_t> id{0};
        std::atomic<const char *> endpoint{"other"};
        std::atomic<const char *> method{"OTHER"};
        std::atomic<int> status{0};
        std::atomic<const char *> cache{"none"};
        std::atomic<std::int64_t> queue_wait_us{0};
        std::atomic<std::int64_t> handle_us{0};
        std::atomic<std::uint64_t> bytes{0};
        std::atomic<bool> slow{false};
    };

    std::atomic<std::uint64_t> next_{0};
    Slot slots_[kFlightRecorderCapacity];
};

/** The process-wide recorder the daemon's request loop writes to. */
FlightRecorder &flight_recorder();

} // namespace service
} // namespace roboshape

#endif // ROBOSHAPE_SERVICE_FLIGHT_RECORDER_H
