/**
 * @file
 * Threaded HTTP server of the roboshaped daemon (docs/SERVICE.md).
 *
 * One accept thread multiplexes accepted connections onto a fixed pool of
 * worker threads through a bounded admission queue:
 *
 *   accept --> [queue, capacity Q] --> worker x N --> Service::handle
 *
 * When the queue is full the accept thread answers 429 immediately and
 * closes — the daemon sheds load at the front door instead of stacking
 * unbounded work behind slow sweeps ("heavy traffic" discipline, see
 * ROADMAP.md).  Workers run a keep-alive loop per connection, so one
 * queue slot admits a whole client session, not a single request.
 *
 * Shutdown is graceful: stop() wakes everything, the accept thread quits
 * admitting, workers finish the requests already in flight (and drain
 * connections already admitted to the queue, answering with
 * "Connection: close") and then exit.  stop() returns only when all
 * threads are joined, so callers can assert on counters afterwards.
 *
 * Observability (all svc.*, docs/OBSERVABILITY.md): connections accepted,
 * requests served, response classes, overload rejections, queue depth,
 * admission-queue wait, and per-request service time split per endpoint
 * (svc.request_us.<endpoint>).  Every request is minted a process-unique
 * id (echoed as X-Roboshape-Request-Id), summarized into the flight
 * recorder (service/flight_recorder.h), optionally appended to the
 * JSON-lines access log, and — when it carries X-Roboshape-Trace: 1 —
 * wall-traced end to end into the trace vault (service/trace_vault.h).
 */

#ifndef ROBOSHAPE_SERVICE_SERVER_H
#define ROBOSHAPE_SERVICE_SERVER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.h"
#include "service/access_log.h"
#include "service/handlers.h"

namespace roboshape {
namespace service {

struct ServerOptions
{
    /** Listen port; 0 = kernel-assigned (see Server::port()). */
    std::uint16_t port = 8080;
    /** Worker threads serving admitted connections. */
    std::size_t workers = 4;
    /** Admission-queue capacity; beyond it new connections get 429. */
    std::size_t queue_capacity = 64;
    /** Per-request socket read/write deadline. */
    int request_timeout_ms = 10000;
    /** JSON-lines access log path; empty = disabled (access_log.h). */
    std::string access_log_path;
    /** Handle time (ms) at which a request is flagged slow. */
    std::size_t slow_ms = 1000;
};

class Server
{
  public:
    /** @p service must outlive the server. */
    explicit Server(Service &service, ServerOptions options = {});
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Binds and spawns threads.  False on bind failure (see error()). */
    bool start();

    /** Drains and joins; idempotent.  Safe to call while requests run. */
    void stop();

    /** Port actually bound (resolves options.port == 0). */
    std::uint16_t port() const { return port_; }

    bool running() const { return running_; }
    const std::string &error() const { return error_; }

  private:
    /** Admitted connection plus its admission timestamp: the dequeuing
     *  worker turns the difference into svc.queue_wait_us. */
    struct Admission
    {
        net::TcpConn conn;
        std::uint64_t enqueue_ns = 0;
    };

    void accept_loop();
    void worker_loop();
    void serve_connection(net::TcpConn conn, std::int64_t queue_wait_us);

    Service &service_;
    ServerOptions options_;
    net::TcpListener listener_;
    std::uint16_t port_ = 0;
    std::string error_;

    std::mutex mutex_;
    std::condition_variable queue_cv_;
    std::deque<Admission> queue_;

    std::atomic<bool> stopping_{false};
    bool running_ = false;
    std::thread accept_thread_;
    std::vector<std::thread> workers_;

    /** Request ids are minted here: dense, process-wide, starting at 1. */
    std::atomic<std::uint64_t> next_request_id_{1};
    AccessLog access_log_;
};

} // namespace service
} // namespace roboshape

#endif // ROBOSHAPE_SERVICE_SERVER_H
