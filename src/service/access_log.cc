/**
 * @file
 * Implementation of the JSON-lines access log.
 */

#include "service/access_log.h"

#include "obs/json.h"

namespace roboshape {
namespace service {

bool
AccessLog::open(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mu_);
    out_.open(path, std::ios::out | std::ios::app);
    if (!out_.is_open()) {
        error_ = "cannot open access log '" + path + "'";
        return false;
    }
    return true;
}

bool
AccessLog::is_open() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return out_.is_open();
}

void
AccessLog::write(const RequestRecord &r)
{
    obs::JsonWriter w;
    w.begin_object();
    w.kv("id", r.id);
    w.kv("endpoint", r.endpoint);
    w.kv("method", r.method);
    w.kv("status", static_cast<std::int64_t>(r.status));
    w.kv("cache", r.cache);
    w.kv("queue_wait_us", r.queue_wait_us);
    w.kv("handle_us", r.handle_us);
    w.kv("bytes", r.bytes);
    w.kv("slow", r.slow);
    w.end_object();
    std::lock_guard<std::mutex> lock(mu_);
    if (!out_.is_open())
        return;
    out_ << w.str() << '\n';
    out_.flush();
}

void
AccessLog::flush()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (out_.is_open())
        out_.flush();
}

void
AccessLog::close()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (out_.is_open()) {
        out_.flush();
        out_.close();
    }
}

} // namespace service
} // namespace roboshape
