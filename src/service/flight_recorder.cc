/**
 * @file
 * Implementation of the request flight recorder.
 */

#include "service/flight_recorder.h"

#include "obs/json.h"

namespace roboshape {
namespace service {

void
FlightRecorder::record(const RequestRecord &r) noexcept
{
    const std::uint64_t ticket =
        next_.fetch_add(1, std::memory_order_acq_rel);
    Slot &slot = slots_[ticket % kFlightRecorderCapacity];
    // Seqlock write: odd marks the slot torn while fields change; the
    // final even store publishes.  Fields are relaxed atomics, so a
    // racing reader sees a mix at worst — and then rejects the slot
    // because seq does not match its ticket on both sides of the read.
    slot.seq.store(2 * ticket + 1, std::memory_order_release);
    slot.id.store(r.id, std::memory_order_relaxed);
    slot.endpoint.store(r.endpoint, std::memory_order_relaxed);
    slot.method.store(r.method, std::memory_order_relaxed);
    slot.status.store(r.status, std::memory_order_relaxed);
    slot.cache.store(r.cache, std::memory_order_relaxed);
    slot.queue_wait_us.store(r.queue_wait_us, std::memory_order_relaxed);
    slot.handle_us.store(r.handle_us, std::memory_order_relaxed);
    slot.bytes.store(r.bytes, std::memory_order_relaxed);
    slot.slow.store(r.slow, std::memory_order_relaxed);
    slot.seq.store(2 * ticket + 2, std::memory_order_release);
}

std::vector<RequestRecord>
FlightRecorder::snapshot() const
{
    const std::uint64_t end = next_.load(std::memory_order_acquire);
    const std::uint64_t begin =
        end > kFlightRecorderCapacity ? end - kFlightRecorderCapacity : 0;
    std::vector<RequestRecord> out;
    out.reserve(static_cast<std::size_t>(end - begin));
    for (std::uint64_t ticket = begin; ticket < end; ++ticket) {
        const Slot &slot = slots_[ticket % kFlightRecorderCapacity];
        const std::uint64_t want = 2 * ticket + 2;
        if (slot.seq.load(std::memory_order_acquire) != want)
            continue; // being overwritten by a newer ticket
        RequestRecord r;
        r.id = slot.id.load(std::memory_order_relaxed);
        r.endpoint = slot.endpoint.load(std::memory_order_relaxed);
        r.method = slot.method.load(std::memory_order_relaxed);
        r.status = slot.status.load(std::memory_order_relaxed);
        r.cache = slot.cache.load(std::memory_order_relaxed);
        r.queue_wait_us =
            slot.queue_wait_us.load(std::memory_order_relaxed);
        r.handle_us = slot.handle_us.load(std::memory_order_relaxed);
        r.bytes = slot.bytes.load(std::memory_order_relaxed);
        r.slow = slot.slow.load(std::memory_order_relaxed);
        if (slot.seq.load(std::memory_order_acquire) != want)
            continue; // torn mid-read
        out.push_back(r);
    }
    return out;
}

std::string
FlightRecorder::dump_json() const
{
    const std::vector<RequestRecord> records = snapshot();
    obs::JsonWriter w;
    w.begin_object();
    w.kv("schema", kRequestsDumpSchema);
    w.kv("capacity", static_cast<std::uint64_t>(kFlightRecorderCapacity));
    w.kv("total", total());
    w.key("requests").begin_array();
    for (const RequestRecord &r : records) {
        w.begin_object();
        w.kv("id", r.id);
        w.kv("endpoint", r.endpoint);
        w.kv("method", r.method);
        w.kv("status", static_cast<std::int64_t>(r.status));
        w.kv("cache", r.cache);
        w.kv("queue_wait_us", r.queue_wait_us);
        w.kv("handle_us", r.handle_us);
        w.kv("bytes", r.bytes);
        w.kv("slow", r.slow);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    return w.str();
}

FlightRecorder &
flight_recorder()
{
    static FlightRecorder instance;
    return instance;
}

} // namespace service
} // namespace roboshape
