/**
 * @file
 * JSON request handlers of the roboshaped daemon (docs/SERVICE.md).
 *
 * The Service maps HTTP requests onto the pipeline:
 *
 *   GET  /healthz      liveness probe
 *   GET  /v1/robots    bundled robot library listing
 *   POST /v1/validate  checked URDF parse -> ValidationReport JSON
 *   POST /v1/sweep     full design-space sweep -> Pareto frontier JSON
 *   POST /v1/design    compiled-design metrics for one knob setting
 *   POST /v1/report    roboshape.run_report/1 snapshot (design + counters)
 *
 * Request bodies name a robot either by library id ({"robot": "iiwa"}) or
 * as inline URDF text ({"urdf": "<robot ...>"}); URDF ingestion reuses
 * the hardened `parse_urdf_checked` front end, so malformed bodies come
 * back as a 422 carrying the full diagnostic report rather than a bare
 * error string.  Unknown body keys are rejected (400) — silent tolerance
 * of typos is the bug class this PR is stamping out.
 *
 * Handlers are pure with respect to the connection: they see one
 * HttpRequest and return one HttpResponse, so the whole surface is unit-
 * testable without sockets.  Compute-heavy endpoints share the process-
 * wide DesignCache; sweep schedule precompute runs as job graphs on the
 * core::Executor, so concurrent requests multiplex onto the one
 * work-stealing pool.
 */

#ifndef ROBOSHAPE_SERVICE_HANDLERS_H
#define ROBOSHAPE_SERVICE_HANDLERS_H

#include <string>

#include "net/http.h"
#include "service/cache.h"

namespace roboshape {
namespace service {

class Service
{
  public:
    Service() = default;

    /** Dispatches one request; never throws (failures become 4xx/5xx). */
    net::HttpResponse handle(const net::HttpRequest &request);

    DesignCache &cache() { return cache_; }

  private:
    DesignCache cache_;
};

/** {"error": message} body with the given status. */
net::HttpResponse error_response(int status, const std::string &message);

} // namespace service
} // namespace roboshape

#endif // ROBOSHAPE_SERVICE_HANDLERS_H
