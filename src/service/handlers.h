/**
 * @file
 * JSON request handlers of the roboshaped daemon (docs/SERVICE.md).
 *
 * The Service maps HTTP requests onto the pipeline:
 *
 *   GET  /healthz      liveness probe
 *   GET  /v1/robots    bundled robot library listing
 *   POST /v1/validate  checked URDF parse -> ValidationReport JSON
 *   POST /v1/sweep     full design-space sweep -> Pareto frontier JSON
 *   POST /v1/design    compiled-design metrics for one knob setting
 *   POST /v1/report    roboshape.run_report/1 snapshot (design + counters)
 *   GET  /metrics      Prometheus text exposition (obs/prometheus.h)
 *   GET  /v1/statz     roboshape.metrics_dump/1 registry snapshot
 *   POST /v1/debug/trace           toggle wall tracing {"enabled": bool}
 *   GET  /v1/debug/trace           current toggle state
 *   GET  /v1/debug/trace/last      Chrome trace of the last traced request
 *   GET  /v1/debug/trace/<id>      ... of request <id> (X-Roboshape-Trace)
 *   GET  /v1/debug/requests        flight-recorder dump (last N requests)
 *
 * Request bodies name a robot either by library id ({"robot": "iiwa"}) or
 * as inline URDF text ({"urdf": "<robot ...>"}); URDF ingestion reuses
 * the hardened `parse_urdf_checked` front end, so malformed bodies come
 * back as a 422 carrying the full diagnostic report rather than a bare
 * error string.  Unknown body keys are rejected (400) — silent tolerance
 * of typos is the bug class this PR is stamping out.
 *
 * Handlers are pure with respect to the connection: they see one
 * HttpRequest and return one HttpResponse, so the whole surface is unit-
 * testable without sockets.  Compute-heavy endpoints share the process-
 * wide DesignCache; sweep schedule precompute runs as job graphs on the
 * core::Executor, so concurrent requests multiplex onto the one
 * work-stealing pool.
 */

#ifndef ROBOSHAPE_SERVICE_HANDLERS_H
#define ROBOSHAPE_SERVICE_HANDLERS_H

#include <string>
#include <string_view>

#include "net/http.h"
#include "service/cache.h"

namespace roboshape {
namespace service {

/** Schema tag of the GET /v1/statz registry dump. */
inline constexpr const char *kMetricsDumpSchema =
    "roboshape.metrics_dump/1";

/**
 * Telemetry label of a request target: the per-endpoint latency split
 * (`svc.request_us.<endpoint>`, docs/OBSERVABILITY.md) and the flight
 * recorder key on these, so the set is fixed and each label is a static
 * string a lock-free record can point at.
 */
enum class Endpoint
{
    kHealthz,
    kRobots,
    kValidate,
    kSweep,
    kDesign,
    kReport,
    kMetrics,
    kStatz,
    kDebug,
    kOther,
};

Endpoint classify_endpoint(std::string_view target) noexcept;

/** Static label of @p e ("design", "sweep", ..., "other"). */
const char *endpoint_name(Endpoint e) noexcept;

class Service
{
  public:
    Service() = default;

    /** Dispatches one request; never throws (failures become 4xx/5xx). */
    net::HttpResponse handle(const net::HttpRequest &request);

    DesignCache &cache() { return cache_; }

  private:
    DesignCache cache_;
};

/** {"error": message} body with the given status. */
net::HttpResponse error_response(int status, const std::string &message);

} // namespace service
} // namespace roboshape

#endif // ROBOSHAPE_SERVICE_HANDLERS_H
