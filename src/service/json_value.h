/**
 * @file
 * Minimal JSON DOM for reading service request bodies (docs/SERVICE.md).
 *
 * obs/json.h owns the *writing* side (deterministic streaming writer plus
 * a strict RFC 8259 validator); the daemon additionally needs to *read*
 * small request documents — {"robot": "iiwa", "max_pes_fwd": 4, ...} —
 * so this header adds the matching strict reader.  It is a DOM for
 * kilobyte-scale bodies, not a streaming parser: requests are tiny, and
 * URDF payloads arrive as one JSON string field.
 *
 * Strictness matches the validator: no comments, no trailing commas, no
 * NaN/Infinity, \uXXXX escapes decoded to UTF-8 (surrogate pairs
 * included), nesting capped.  Duplicate object keys keep the first
 * occurrence (lookup order), mirroring common practice.
 */

#ifndef ROBOSHAPE_SERVICE_JSON_VALUE_H
#define ROBOSHAPE_SERVICE_JSON_VALUE_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace roboshape {
namespace service {

/** Nesting depth cap for parsed documents. */
inline constexpr int kMaxJsonDepth = 64;

class JsonValue
{
  public:
    enum class Kind
    {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject,
    };

    Kind kind() const { return kind_; }
    bool is_null() const { return kind_ == Kind::kNull; }
    bool is_bool() const { return kind_ == Kind::kBool; }
    bool is_number() const { return kind_ == Kind::kNumber; }
    bool is_string() const { return kind_ == Kind::kString; }
    bool is_array() const { return kind_ == Kind::kArray; }
    bool is_object() const { return kind_ == Kind::kObject; }

    bool as_bool() const { return bool_; }
    double as_number() const { return number_; }
    const std::string &as_string() const { return string_; }
    const std::vector<JsonValue> &as_array() const { return array_; }
    const std::vector<std::pair<std::string, JsonValue>> &members() const
    {
        return object_;
    }

    /** Object member by key (first occurrence); null when absent. */
    const JsonValue *find(std::string_view key) const;

    /** Member @p key as a string; nullopt when absent or not a string. */
    std::optional<std::string> get_string(std::string_view key) const;

    /**
     * Member @p key as an unsigned integer in [@p min, @p max]; nullopt
     * when absent.  @p ok is cleared when the member exists but is not an
     * integral number in range — callers distinguish "absent" (fine for
     * optional knobs) from "present but malformed" (a 400).
     */
    std::optional<std::uint64_t> get_uint(std::string_view key,
                                          std::uint64_t min,
                                          std::uint64_t max,
                                          bool &ok) const;

  private:
    friend class JsonParser;

    Kind kind_ = Kind::kNull;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::vector<std::pair<std::string, JsonValue>> object_;
};

/**
 * Parses @p text as exactly one JSON document.  Nullopt on any syntax
 * error; @p error (when non-null) receives a short description with a
 * byte offset.
 */
std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string *error = nullptr);

} // namespace service
} // namespace roboshape

#endif // ROBOSHAPE_SERVICE_JSON_VALUE_H
