#include "service/cache.h"

#include <cstring>

#include "obs/registry.h"

namespace roboshape {
namespace service {

namespace {

/** FNV-1a over a byte range, seeded with the running hash. */
std::uint64_t
hash_bytes(std::uint64_t h, const void *data, std::size_t size)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i) {
        h ^= p[i];
        h *= 0x100000001B3ull;
    }
    return h;
}

std::uint64_t
hash_string(std::uint64_t h, const std::string &s)
{
    const std::uint64_t size = s.size();
    h = hash_bytes(h, &size, sizeof(size)); // length-prefix: no gluing
    return hash_bytes(h, s.data(), s.size());
}

/** splitmix64 finalizer: spreads FNV's weak high bits. */
std::uint64_t
mix(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

} // namespace

std::uint64_t
model_hash(const topology::RobotModel &model)
{
    // The same byte-exact link fields the fuzz harness memcmps when it
    // checks strict/checked parse equivalence: every double that feeds
    // schedules or numerics, plus the names that appear in responses.
    std::uint64_t h = 0xCBF29CE484222325ull; // FNV offset basis
    h = hash_string(h, model.name());
    const std::uint64_t n = model.num_links();
    h = hash_bytes(h, &n, sizeof(n));
    for (std::size_t i = 0; i < model.num_links(); ++i) {
        const topology::Link &l = model.link(i);
        h = hash_string(h, l.name);
        h = hash_bytes(h, &l.parent, sizeof(l.parent));
        const auto type = l.joint.type();
        h = hash_bytes(h, &type, sizeof(type));
        h = hash_bytes(h, &l.joint.axis(), sizeof(l.joint.axis()));
        h = hash_bytes(h, &l.x_tree, sizeof(l.x_tree));
        h = hash_bytes(h, &l.inertia, sizeof(l.inertia));
    }
    return mix(h);
}

core::SweepContext &
CacheEntry::context()
{
    if (!context_)
        context_ = std::make_unique<core::SweepContext>(
            *model_, accel::default_timing(), kernel_);
    return *context_;
}

const std::string *
CacheEntry::find_body(const std::string &key) const
{
    const auto it = bodies_.find(key);
    if (it == bodies_.end()) {
        ROBOSHAPE_OBS_COUNT("svc.cache_misses", 1);
        return nullptr;
    }
    ROBOSHAPE_OBS_COUNT("svc.cache_hits", 1);
    return &it->second;
}

const std::string &
CacheEntry::store_body(const std::string &key, std::string body)
{
    return bodies_[key] = std::move(body);
}

std::shared_ptr<CacheEntry>
DesignCache::entry(std::uint64_t hash, sched::KernelKind kernel,
                   const topology::RobotModel &model)
{
    const Key key{hash, kernel};
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end())
        return it->second;
    while (entries_.size() >= kMaxCacheEntries && !order_.empty()) {
        entries_.erase(order_.front());
        order_.pop_front();
        ROBOSHAPE_OBS_COUNT("svc.cache_evictions", 1);
    }
    auto entry = std::make_shared<CacheEntry>(
        std::make_shared<topology::RobotModel>(model), kernel);
    entries_.emplace(key, entry);
    order_.push_back(key);
    ROBOSHAPE_OBS_COUNT("svc.cache_entries_created", 1);
    return entry;
}

std::size_t
DesignCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

} // namespace service
} // namespace roboshape
