/**
 * @file
 * JSON-lines structured access log of the roboshaped daemon
 * (docs/OBSERVABILITY.md).
 *
 * Enabled with `roboshape serve --access-log <path>`: every handled
 * request appends exactly one line, a compact JSON object with a fixed
 * deterministic field order:
 *
 *   {"id":..,"endpoint":..,"method":..,"status":..,"cache":..,
 *    "queue_wait_us":..,"handle_us":..,"bytes":..,"slow":..}
 *
 * `slow` is true when handle time reaches the `--slow-ms` threshold, so
 * `grep '"slow":true'` is the tail-latency forensics query.  Lines are
 * flushed as written and the file is flushed again on graceful drain —
 * a SIGTERM'd daemon never truncates its last request.
 */

#ifndef ROBOSHAPE_SERVICE_ACCESS_LOG_H
#define ROBOSHAPE_SERVICE_ACCESS_LOG_H

#include <fstream>
#include <mutex>
#include <string>

#include "service/flight_recorder.h"

namespace roboshape {
namespace service {

class AccessLog
{
  public:
    /** Opens @p path for appending.  False (with error set) on failure. */
    bool open(const std::string &path);

    bool is_open() const;
    const std::string &error() const { return error_; }

    /** Appends one JSON line for @p r and flushes it. */
    void write(const RequestRecord &r);

    void flush();
    void close();

  private:
    mutable std::mutex mu_;
    std::ofstream out_;
    std::string error_;
};

} // namespace service
} // namespace roboshape

#endif // ROBOSHAPE_SERVICE_ACCESS_LOG_H
