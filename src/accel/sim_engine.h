/**
 * @file
 * Compiled, allocation-free, batched functional simulation engine.
 *
 * The one-shot simulators (accel/functional_sim.h, accel/kernel_sim.h)
 * re-derive the execution order, re-allocate every workspace vector, and
 * re-check hazards on every call — fine for verifying one schedule, hostile
 * to the paper's real deployment pattern of streaming thousands of input
 * packets through one fixed design (iLQR linearizes horizon x iterations
 * states per solve; the multi-core deployment of Sec. 5.2 feeds replicas
 * from a request stream).
 *
 * SimEngine splits that work the way the hardware does:
 *
 *  - compile() (the constructor) resolves the chosen SimOrder into a flat
 *    trace of fully-resolved ops — task kind, link, parent, derivative
 *    column, root-path spans, CRBA walk predecessors — and runs the
 *    read-before-write hazard analysis ONCE over that trace (the checks
 *    are purely structural, so an order that passes them passes for every
 *    input).  Invalid orders throw DataHazardError at compile time.
 *
 *  - run() executes the trace against a persistent Workspace and a
 *    reusable EngineResult.  After one warm-up call, run() performs zero
 *    heap allocations.  Outputs are exactly equal to the legacy one-shot
 *    simulators (which stay in-tree as the golden reference) — the final
 *    -M^-1 multiply uses linalg::blocked_multiply_into with fused
 *    negation, an exact sign flip.
 *
 *  - run_batch() shards independent packets across the persistent
 *    work-stealing executor (core/executor.h) with one Workspace per
 *    lane.  Packets never share mutable state, so results are
 *    bit-identical at any thread count and steal interleaving.
 *
 * All three Table 1 kernels are covered: the dynamics-gradient pipeline
 * (RNEA + dRNEA + blocked -M^-1 multiply), the CRBA mass matrix, and
 * forward kinematics with Jacobians.
 */

#ifndef ROBOSHAPE_ACCEL_SIM_ENGINE_H
#define ROBOSHAPE_ACCEL_SIM_ENGINE_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "accel/design.h"
#include "accel/functional_sim.h"
#include "accel/simd_lanes.h"
#include "linalg/blocked.h"
#include "linalg/matrix.h"
#include "spatial/spatial_inertia.h"
#include "spatial/spatial_transform.h"
#include "spatial/spatial_vector.h"

namespace roboshape {
namespace accel {

/**
 * One input set for the engine.  Pointers must stay valid for the duration
 * of the run; which fields are required depends on the design's kernel:
 * gradient needs all four, mass-matrix only q, kinematics q and qd.
 */
struct InputPacket
{
    const linalg::Vector *q = nullptr;
    const linalg::Vector *qd = nullptr;
    const linalg::Vector *qdd = nullptr;   ///< Linearization point (gradient).
    const linalg::Matrix *minv = nullptr;  ///< Host-computed M^-1 (gradient).
    spatial::Vec3 gravity = dynamics::kDefaultGravity;
};

/**
 * Reusable output block.  The engine sizes every field on first use and
 * only overwrites afterwards; keep the object alive across runs for the
 * allocation-free steady state.  Only the fields of the design's kernel
 * are meaningful after a run.
 */
struct EngineResult
{
    // kDynamicsGradient
    linalg::Vector tau;
    linalg::Matrix dtau_dq, dtau_dqd;
    linalg::Matrix dqdd_dq, dqdd_dqd;
    linalg::BlockMultiplyStats mm_stats;
    // kMassMatrix
    linalg::Matrix mass;
    // kForwardKinematics
    std::vector<spatial::SpatialTransform> base_to_link;
    std::vector<spatial::SpatialVector> velocities;
    std::vector<linalg::Matrix> jacobians;

    std::size_t tasks_executed = 0;
};

/**
 * One fully-resolved trace step.  Namespace-scope (rather than nested in
 * SimEngine) so the SIMD lane kernels can interpret the same trace; the
 * fields are engine implementation detail and may change between releases.
 */
struct EngineOp
{
    enum class Kind : std::uint8_t
    {
        kRneaForward,
        kRneaBackward,
        kGradForward,
        kGradBackward,
        kCrbaSetup,
        kCrbaComposite,
        kCrbaWalk,
        kFkPose,
        kFkJacobian,
    };
    Kind kind = Kind::kRneaForward;
    bool seed = false;        ///< Gradient/CRBA: link == column.
    bool in_subtree = false;  ///< Gradient backward: i in subtree(j).
    std::int32_t link = 0;
    std::int32_t parent = topology::kBaseParent;
    std::int32_t column = -1;
    std::int32_t prev = -1;   ///< CRBA walk predecessor link.
    std::uint32_t path_begin = 0, path_end = 0; ///< Into root_paths_.
};

class SimEngine
{
  public:
    /**
     * Per-run mutable state, allocated once by make_workspace() and reused
     * forever after.  A Workspace may be used by one thread at a time.
     */
    class Workspace
    {
      public:
        Workspace() = default;

      private:
        friend class SimEngine;
        std::vector<spatial::SpatialTransform> xup;
        // Gradient kernel.
        std::vector<spatial::SpatialVector> v, a, f;
        std::vector<spatial::SpatialVector> dv, da, df;
        // Mass-matrix kernel.
        std::vector<spatial::SpatialInertia> ic_children, ic_total;
        std::vector<spatial::SpatialVector> f_walk;
        // Kinematics kernel.
        std::vector<spatial::SpatialVector> carry;
        // Blocked-multiply scratch.
        linalg::BlockPattern pa, pb;
    };

    /**
     * Per-worker workspaces for run_batch; grown lazily, then reused.
     * `per_thread` serves the scalar shard path (and the lane path's tail
     * packets); `lanes` holds one SoA lane workspace per worker for the
     * SIMD group path (left empty when dispatch picks the scalar backend).
     */
    struct BatchWorkspace
    {
        std::vector<Workspace> per_thread;
        std::vector<simd::LaneWorkspace> lanes;
    };

    /**
     * Compiles @p design's @p order into the flat execution trace and
     * hazard-checks it.  The engine keeps a reference to @p design, which
     * must outlive it.
     *
     * @throws DataHazardError when the order violates a data dependency
     *         (e.g. SimOrder::kAdversarialReversed).
     */
    explicit SimEngine(const AcceleratorDesign &design,
                       SimOrder order = SimOrder::kStaged);

    const AcceleratorDesign &design() const { return *design_; }
    SimOrder order() const { return order_; }

    /** Ops executed per run (velocity re-pass included for gradients). */
    std::size_t trace_length() const
    {
        return trace_.size() + velocity_trace_.size();
    }

    /** Allocates a workspace sized for this engine. */
    Workspace make_workspace() const;

    /**
     * Executes one packet.  Zero heap allocations once @p ws and @p out
     * are warm (one prior run() with them).  Output fields are exactly
     * equal to the legacy simulate() / simulate_mass_matrix() /
     * simulate_forward_kinematics() results for the same design and order.
     */
    void run(Workspace &ws, const InputPacket &in, EngineResult &out) const;

    /**
     * Executes @p in[i] into @p out[i] for every i, sharding packets over
     * the persistent work-stealing executor.  Results are bit-identical
     * to serial run() calls at any thread count: stealing reassigns which
     * lane runs a packet, never where its output lands.
     *
     * Dynamics-gradient engines additionally route full groups of W
     * consecutive packets through the W-wide SIMD lane backend chosen by
     * simd::lane_backend() (the trailing < W packets run scalar).  Under
     * the exactness policy of accel/simd_lanes.h this changes no output
     * bit; set ROBOSHAPE_SIMD=off (or build with -DROBOSHAPE_SIMD=OFF) to
     * force the scalar path.
     *
     * @param threads worker count; 0 defers to ROBOSHAPE_THREADS (or the
     *        deprecated ROBOSHAPE_SWEEP_THREADS alias) / hardware
     *        concurrency (see core::Executor::resolve_width).
     */
    void run_batch(std::span<const InputPacket> in,
                   std::span<EngineResult> out, BatchWorkspace &ws,
                   std::size_t threads = 0) const;

    /**
     * Convenience run_batch backed by a lazily-grown engine-owned
     * BatchWorkspace (serialized by a mutex — concurrent callers queue;
     * pass your own workspace to overlap batches).  Warm calls perform
     * zero heap allocations, same as the explicit-workspace form.
     */
    void run_batch(std::span<const InputPacket> in,
                   std::span<EngineResult> out,
                   std::size_t threads = 0) const;

  private:
    using Op = EngineOp;

    /** Chrome-trace span name for a per-op wall span (static storage). */
    static const char *op_name(Op::Kind k) noexcept;

    void compile_gradient(const std::vector<const sched::Placement *> &ops);
    void compile_mass_matrix(
        const std::vector<const sched::Placement *> &ops);
    void compile_kinematics(
        const std::vector<const sched::Placement *> &ops);
    std::uint32_t intern_root_path(std::size_t link);

    void prepare(EngineResult &out) const;
    /** SIMD group path of run_batch (gradient engines, backend width W). */
    void run_batch_lanes(std::span<const InputPacket> in,
                         std::span<EngineResult> out, BatchWorkspace &ws,
                         const simd::LaneBackend &backend,
                         std::size_t threads) const;
    void run_gradient(Workspace &ws, const InputPacket &in,
                      EngineResult &out) const;
    void run_mass_matrix(Workspace &ws, const InputPacket &in,
                         EngineResult &out) const;
    void run_kinematics(Workspace &ws, const InputPacket &in,
                        EngineResult &out) const;

    const AcceleratorDesign *design_;
    SimOrder order_;
    std::size_t n_ = 0;

    /** Position-pass ops in final execution order. */
    std::vector<Op> trace_;
    /** Gradient kernels re-run their gradient ops with velocity seeds. */
    std::vector<Op> velocity_trace_;
    /** Flattened root paths referenced by Op::path_begin/path_end. */
    std::vector<std::int32_t> root_paths_;
    /** Constant per-link motion subspaces S_i. */
    std::vector<spatial::SpatialVector> s_;

    /** Backing store of the convenience run_batch overload.  Held through
     *  unique_ptr so the mutex does not pin the engine in place (SimEngine
     *  stays movable). */
    struct ConvenienceWorkspace
    {
        std::mutex mutex;
        BatchWorkspace ws;
    };
    std::unique_ptr<ConvenienceWorkspace> convenience_ws_ =
        std::make_unique<ConvenienceWorkspace>();
};

} // namespace accel
} // namespace roboshape

#endif // ROBOSHAPE_ACCEL_SIM_ENGINE_H
