/**
 * @file
 * Power and energy model with PE power gating.
 *
 * The paper (Sec. 3.3) singles out per-PE power gating as the dynamic-
 * tuning knob the topology-based schedules unlock: schedules are static,
 * so every PE's busy intervals are known at design time and idle PEs can
 * be gated without any runtime decision logic.  This model turns schedule
 * occupancy into energy per computation and average power, with and
 * without gating — the quantitative side of the paper's Dark Silicon
 * discussion.
 */

#ifndef ROBOSHAPE_ACCEL_POWER_MODEL_H
#define ROBOSHAPE_ACCEL_POWER_MODEL_H

#include <vector>

#include "accel/design.h"

namespace roboshape {
namespace accel {

/** Power model constants (milliwatts), defaults sized for a ~50 MHz
 *  FPGA robomorphic datapath. */
struct PowerParams
{
    double pe_active_mw = 320.0; ///< Traversal PE while computing.
    double pe_idle_mw = 96.0;    ///< Traversal PE clocked but idle.
    double pe_gated_mw = 8.0;    ///< Traversal PE power-gated (leakage).
    double mm_unit_mw = 180.0;   ///< Block-MV unit while the stage runs.
    double base_mw = 250.0;      ///< Control, marshalling, and storage.
};

/** Occupancy and power of one generated design. */
struct PowerReport
{
    /** Busy fraction of each forward/backward PE over the computation. */
    std::vector<double> forward_utilization;
    std::vector<double> backward_utilization;
    /** Mean busy fraction across both pools. */
    double mean_pe_utilization = 0.0;

    double avg_power_mw = 0.0;       ///< Clock-gating-free baseline.
    double avg_power_gated_mw = 0.0; ///< With per-PE power gating.
    double energy_uj = 0.0;          ///< Energy per computation, no gating.
    double energy_gated_uj = 0.0;    ///< Energy per computation, gated.

    /** Fraction of energy saved by schedule-driven power gating. */
    double
    gating_savings() const
    {
        return energy_uj > 0.0 ? 1.0 - energy_gated_uj / energy_uj : 0.0;
    }
};

/**
 * Computes schedule occupancy and power for one computation through
 * @p design (no-pipelining composition).
 */
PowerReport estimate_power(const AcceleratorDesign &design,
                           const PowerParams &params = PowerParams{});

} // namespace accel
} // namespace roboshape

#endif // ROBOSHAPE_ACCEL_POWER_MODEL_H
