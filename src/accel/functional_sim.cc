/**
 * @file
 * Implementation of the functional accelerator simulator.
 */

#include "accel/functional_sim.h"

#include <algorithm>
#include <vector>

#include "sched/trace.h"
#include "spatial/spatial_vector.h"

namespace roboshape {
namespace accel {

using sched::Placement;
using sched::TaskType;
using spatial::SpatialVector;
using spatial::cross_force;
using spatial::cross_motion;
using topology::kBaseParent;

namespace {

/** Execution-ordered placements of the chosen schedule composition. */
std::vector<const Placement *>
execution_order(const AcceleratorDesign &design, SimOrder order)
{
    std::vector<const Placement *> out;
    if (order == SimOrder::kPipelined) {
        out.reserve(sched::live_placement_count(design.pipelined()));
        sched::append_in_execution_order(design.pipelined(), out);
    } else {
        // Backward-stage placements restart at cycle 0, so the stages are
        // appended (and sorted) separately: backward executes strictly
        // after forward.
        out.reserve(sched::live_placement_count(design.forward_stage()) +
                    sched::live_placement_count(design.backward_stage()));
        sched::append_in_execution_order(design.forward_stage(), out);
        sched::append_in_execution_order(design.backward_stage(), out);
    }
    if (order == SimOrder::kAdversarialReversed)
        std::reverse(out.begin(), out.end());
    return out;
}

/** All mutable per-run accelerator state, with write tracking. */
class SimState
{
  public:
    SimState(const AcceleratorDesign &design, const linalg::Vector &q,
             const linalg::Vector &qd, const linalg::Vector &qdd,
             const spatial::Vec3 &gravity)
        : model_(design.model()), topo_(design.topology()), qd_(qd),
          qdd_(qdd), n_(model_.num_links())
    {
        // Input marshalling: joint transforms and subspaces are computed by
        // the control front-end from the incoming q packet.
        xup_.resize(n_);
        s_.resize(n_);
        for (std::size_t i = 0; i < n_; ++i) {
            const auto &link = model_.link(i);
            xup_[i] = link.joint.transform(q[i]) * link.x_tree;
            s_[i] = link.joint.motion_subspace();
        }
        a_base_ = SpatialVector(spatial::Vec3::zero(), -gravity);

        v_.assign(n_, SpatialVector::zero());
        a_.assign(n_, SpatialVector::zero());
        f_.assign(n_, SpatialVector::zero());
        fwd_done_.assign(n_, false);
        bwd_done_.assign(n_, false);
        dv_.assign(n_ * n_, SpatialVector::zero());
        da_.assign(n_ * n_, SpatialVector::zero());
        df_.assign(n_ * n_, SpatialVector::zero());
        gf_done_.assign(n_, false);
        gb_done_.assign(n_ * n_, false);

        tau_ = linalg::Vector(n_);
        dtau_dq_.resize(n_, n_);
        dtau_dqd_.resize(n_, n_);
    }

    void
    execute(const sched::Task &task)
    {
        switch (task.type) {
          case TaskType::kRneaForward:
            rnea_forward(task.link);
            break;
          case TaskType::kRneaBackward:
            rnea_backward(task.link);
            break;
          case TaskType::kGradForward:
            grad_forward(task.link);
            break;
          case TaskType::kGradBackward:
            grad_backward(task.column, task.link);
            break;
        }
    }

    const linalg::Vector &tau() const { return tau_; }
    const linalg::Matrix &dtau_dq() const { return dtau_dq_; }
    const linalg::Matrix &dtau_dqd() const { return dtau_dqd_; }

  private:
    [[noreturn]] void
    hazard(const std::string &what) const
    {
        throw DataHazardError("data hazard: " + what);
    }

    void
    rnea_forward(std::size_t i)
    {
        const int p = model_.parent(i);
        if (p != kBaseParent && !fwd_done_[p])
            hazard("rneaFwd reads unwritten parent state of link " +
                   std::to_string(i));
        const SpatialVector vj = s_[i] * qd_[i];
        if (p == kBaseParent) {
            v_[i] = vj;
            a_[i] = xup_[i].apply(a_base_) + s_[i] * qdd_[i];
        } else {
            v_[i] = xup_[i].apply(v_[p]) + vj;
            a_[i] = xup_[i].apply(a_[p]) + s_[i] * qdd_[i] +
                    cross_motion(v_[i], vj);
        }
        const auto &inertia = model_.link(i).inertia;
        f_[i] = inertia.apply(a_[i]) +
                cross_force(v_[i], inertia.apply(v_[i]));
        fwd_done_[i] = true;
    }

    void
    rnea_backward(std::size_t i)
    {
        if (!fwd_done_[i])
            hazard("rneaBwd before rneaFwd on link " + std::to_string(i));
        for (int c : model_.children(i))
            if (!bwd_done_[c])
                hazard("rneaBwd before child accumulation on link " +
                       std::to_string(i));
        tau_[i] = s_[i].dot(f_[i]);
        const int p = model_.parent(i);
        if (p != kBaseParent)
            f_[p] += xup_[i].apply_transpose_to_force(f_[i]);
        bwd_done_[i] = true;
    }

    void
    grad_forward(std::size_t i)
    {
        // Per-link task: advances every ancestor column j through link i.
        if (!fwd_done_[i])
            hazard("gradFwd before rneaFwd on link " + std::to_string(i));
        const int p = model_.parent(i);
        if (p != kBaseParent && !gf_done_[p])
            hazard("gradFwd before parent gradFwd on link " +
                   std::to_string(i));
        const auto &inertia = model_.link(i).inertia;
        for (std::size_t j : topo_.root_path(i)) {
            SpatialVector dv, da;
            if (j == i && qd_column_) {
                dv = s_[i];
                da = cross_motion(v_[i], s_[i]);
            } else if (j == i) {
                const SpatialVector xap = xup_[i].apply(
                    p == kBaseParent ? a_base_ : a_[p]);
                dv = cross_motion(v_[i], s_[i]);
                da = cross_motion(xap, s_[i]) +
                     cross_motion(dv, s_[i] * qd_[i]);
            } else {
                dv = xup_[i].apply(dv_[j * n_ + p]);
                da = xup_[i].apply(da_[j * n_ + p]) +
                     cross_motion(dv, s_[i] * qd_[i]);
            }
            dv_[j * n_ + i] = dv;
            da_[j * n_ + i] = da;
            // Local derivative force; backward tasks accumulate into it.
            df_[j * n_ + i] = inertia.apply(da) +
                              cross_force(dv, inertia.apply(v_[i])) +
                              cross_force(v_[i], inertia.apply(dv));
        }
        gf_done_[i] = true;
    }

    void
    grad_backward(std::size_t j, std::size_t i)
    {
        const bool in_subtree = topo_.is_ancestor_or_self(j, i);
        if (in_subtree && !gf_done_[i])
            hazard("gradBwd before gradFwd on link " + std::to_string(i));
        if (i == j && !bwd_done_[j])
            hazard("gradBwd needs accumulated RNEA force of link " +
                   std::to_string(j));
        if (in_subtree) {
            for (int c : model_.children(i))
                if (!gb_done_[j * n_ + c])
                    hazard("gradBwd before child column accumulation");
        }
        const SpatialVector &df = df_[j * n_ + i];
        const double dtau = s_[i].dot(df);
        (qd_column_ ? dtau_dqd_ : dtau_dq_)(i, j) = dtau;

        const int p = model_.parent(i);
        if (p != kBaseParent) {
            SpatialVector carried = df;
            if (i == j && !qd_column_)
                carried += cross_force(s_[j], f_[j]);
            df_[j * n_ + p] += xup_[i].apply_transpose_to_force(carried);
        }
        gb_done_[j * n_ + i] = true;
    }

  public:
    /**
     * Selects which derivative kind the traversal computes.  The hardware
     * runs the same schedule twice — once for position columns, once for
     * velocity columns; the simulator mirrors that by re-running the
     * gradient tasks with the alternate seeds.
     */
    void
    begin_velocity_pass()
    {
        qd_column_ = true;
        std::fill(gf_done_.begin(), gf_done_.end(), false);
        std::fill(gb_done_.begin(), gb_done_.end(), false);
        std::fill(dv_.begin(), dv_.end(), SpatialVector::zero());
        std::fill(da_.begin(), da_.end(), SpatialVector::zero());
        std::fill(df_.begin(), df_.end(), SpatialVector::zero());
    }

    bool
    velocity_pass() const
    {
        return qd_column_;
    }

  private:
    const topology::RobotModel &model_;
    const topology::TopologyInfo &topo_;
    const linalg::Vector &qd_, &qdd_;
    std::size_t n_;

    std::vector<spatial::SpatialTransform> xup_;
    std::vector<SpatialVector> s_, v_, a_, f_;
    SpatialVector a_base_;
    std::vector<bool> fwd_done_, bwd_done_, gf_done_;
    std::vector<bool> gb_done_;
    std::vector<SpatialVector> dv_, da_, df_;
    bool qd_column_ = false;

    linalg::Vector tau_;
    linalg::Matrix dtau_dq_, dtau_dqd_;
};

} // namespace

SimResult
simulate(const AcceleratorDesign &design, const linalg::Vector &q,
         const linalg::Vector &qd, const linalg::Vector &qdd,
         const linalg::Matrix &minv, const spatial::Vec3 &gravity,
         SimOrder order)
{
    SimState state(design, q, qd, qdd, gravity);
    const auto ordered = execution_order(design, order);

    SimResult result;
    // Position pass: all four traversal stages.
    for (const Placement *p : ordered) {
        state.execute(design.task_graph().task(p->task));
        ++result.tasks_executed;
    }
    // Velocity pass: gradient stages re-run with velocity seeds.
    state.begin_velocity_pass();
    for (const Placement *p : ordered) {
        const sched::Task &t = design.task_graph().task(p->task);
        if (t.type == TaskType::kGradForward ||
            t.type == TaskType::kGradBackward) {
            state.execute(t);
            ++result.tasks_executed;
        }
    }

    result.tau = state.tau();
    result.dtau_dq = state.dtau_dq();
    result.dtau_dqd = state.dtau_dqd();

    // Final stage: blocked -M^-1 multiplies with NOP skipping.
    linalg::BlockMultiplyStats stats_q, stats_qd;
    result.dqdd_dq = linalg::blocked_multiply(minv, result.dtau_dq,
                                              design.params().block_size,
                                              &stats_q) *
                     -1.0;
    result.dqdd_dqd = linalg::blocked_multiply(minv, result.dtau_dqd,
                                               design.params().block_size,
                                               &stats_qd) *
                      -1.0;
    result.mm_stats.block_macs = stats_q.block_macs + stats_qd.block_macs;
    result.mm_stats.block_nops = stats_q.block_nops + stats_qd.block_nops;
    result.mm_stats.scalar_macs = stats_q.scalar_macs + stats_qd.scalar_macs;
    return result;
}

} // namespace accel
} // namespace roboshape
