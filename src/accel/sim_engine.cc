/**
 * @file
 * Implementation of the compiled functional simulation engine.
 *
 * The arithmetic here is a line-for-line port of the legacy one-shot
 * simulators (functional_sim.cc, kernel_sim.cc), which remain in-tree as
 * the golden reference: the engine must stay exactly equal to them (see
 * tests/test_sim_engine.cc).  What changes is *when* work happens — order
 * resolution, task lookup, root-path expansion, and hazard checking all
 * move into the constructor, leaving run() as a straight-line sweep over
 * precomputed ops.
 */

#include "accel/sim_engine.h"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <string>

#include "core/executor.h"
#include "obs/registry.h"
#include "obs/wall_trace.h"
#include "sched/trace.h"

namespace roboshape {
namespace accel {

using sched::Placement;
using sched::TaskType;
using spatial::SpatialInertia;
using spatial::SpatialTransform;
using spatial::SpatialVector;
using spatial::cross_force;
using spatial::cross_motion;
using topology::kBaseParent;

namespace {

/** Placements of the chosen composition, in execution order. */
std::vector<const Placement *>
ordered_placements(const AcceleratorDesign &design, SimOrder order)
{
    std::vector<const Placement *> out;
    if (order == SimOrder::kPipelined) {
        out.reserve(sched::live_placement_count(design.pipelined()));
        sched::append_in_execution_order(design.pipelined(), out);
    } else {
        out.reserve(sched::live_placement_count(design.forward_stage()) +
                    sched::live_placement_count(design.backward_stage()));
        sched::append_in_execution_order(design.forward_stage(), out);
        sched::append_in_execution_order(design.backward_stage(), out);
    }
    if (order == SimOrder::kAdversarialReversed)
        std::reverse(out.begin(), out.end());
    return out;
}

[[noreturn]] void
hazard(const std::string &what)
{
    throw DataHazardError("data hazard: " + what);
}

} // namespace

SimEngine::SimEngine(const AcceleratorDesign &design, SimOrder order)
    : design_(&design), order_(order), n_(design.model().num_links())
{
    s_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i)
        s_[i] = design.model().link(i).joint.motion_subspace();

    const auto ops = ordered_placements(design, order);
    trace_.reserve(ops.size());
    switch (design.kernel()) {
      case sched::KernelKind::kDynamicsGradient:
        compile_gradient(ops);
        break;
      case sched::KernelKind::kMassMatrix:
        compile_mass_matrix(ops);
        break;
      case sched::KernelKind::kForwardKinematics:
        compile_kinematics(ops);
        break;
    }
    // Every compiled op passed its structural read-before-write validation
    // above; the count stands in for hazard checks performed.
    ROBOSHAPE_OBS_COUNT("sim.engines_compiled", 1);
    ROBOSHAPE_OBS_COUNT("sim.hazard_checks", trace_.size());
}

const char *
SimEngine::op_name(Op::Kind k) noexcept
{
    switch (k) {
      case Op::Kind::kRneaForward:   return "rneaFwd";
      case Op::Kind::kRneaBackward:  return "rneaBwd";
      case Op::Kind::kGradForward:   return "gradFwd";
      case Op::Kind::kGradBackward:  return "gradBwd";
      case Op::Kind::kCrbaSetup:     return "crbaSetup";
      case Op::Kind::kCrbaComposite: return "crbaComposite";
      case Op::Kind::kCrbaWalk:      return "crbaWalk";
      case Op::Kind::kFkPose:        return "fkPose";
      case Op::Kind::kFkJacobian:    return "fkJacobian";
    }
    return "op";
}

std::uint32_t
SimEngine::intern_root_path(std::size_t link)
{
    const auto begin = static_cast<std::uint32_t>(root_paths_.size());
    for (std::size_t j : design_->topology().root_path(link))
        root_paths_.push_back(static_cast<std::int32_t>(j));
    return begin;
}

void
SimEngine::compile_gradient(const std::vector<const Placement *> &ops)
{
    const auto &model = design_->model();
    const auto &topo = design_->topology();
    // Hazard state mirrors the legacy SimState flags.  The checks are
    // structural (they depend only on the order, never on input values),
    // so validating the trace once here validates every future run().
    std::vector<bool> fwd(n_, false), bwd(n_, false), gf(n_, false);
    std::vector<bool> gb(n_ * n_, false);

    for (const Placement *p : ops) {
        const sched::Task &t = design_->task_graph().task(p->task);
        const auto i = static_cast<std::size_t>(t.link);
        Op op;
        op.link = t.link;
        op.parent = static_cast<std::int32_t>(model.parent(i));
        switch (t.type) {
          case TaskType::kRneaForward:
            if (op.parent != kBaseParent && !fwd[op.parent])
                hazard("rneaFwd reads unwritten parent state of link " +
                       std::to_string(i));
            op.kind = Op::Kind::kRneaForward;
            fwd[i] = true;
            break;
          case TaskType::kRneaBackward:
            if (!fwd[i])
                hazard("rneaBwd before rneaFwd on link " +
                       std::to_string(i));
            for (int c : model.children(i))
                if (!bwd[c])
                    hazard("rneaBwd before child accumulation on link " +
                           std::to_string(i));
            op.kind = Op::Kind::kRneaBackward;
            bwd[i] = true;
            break;
          case TaskType::kGradForward:
            if (!fwd[i])
                hazard("gradFwd before rneaFwd on link " +
                       std::to_string(i));
            if (op.parent != kBaseParent && !gf[op.parent])
                hazard("gradFwd before parent gradFwd on link " +
                       std::to_string(i));
            op.kind = Op::Kind::kGradForward;
            op.path_begin = intern_root_path(i);
            op.path_end = static_cast<std::uint32_t>(root_paths_.size());
            gf[i] = true;
            break;
          case TaskType::kGradBackward: {
            const auto j = static_cast<std::size_t>(t.column);
            op.column = t.column;
            op.seed = i == j;
            op.in_subtree = topo.is_ancestor_or_self(j, i);
            if (op.in_subtree && !gf[i])
                hazard("gradBwd before gradFwd on link " +
                       std::to_string(i));
            if (op.seed && !bwd[j])
                hazard("gradBwd needs accumulated RNEA force of link " +
                       std::to_string(j));
            if (op.in_subtree)
                for (int c : model.children(i))
                    if (!gb[j * n_ + c])
                        hazard("gradBwd before child column accumulation");
            op.kind = Op::Kind::kGradBackward;
            gb[j * n_ + i] = true;
            break;
          }
        }
        trace_.push_back(op);
    }
    // The velocity pass re-runs the gradient ops with velocity seeds; its
    // hazard flags reset to the same starting state, so the position-pass
    // validation above covers it.
    for (const Op &op : trace_)
        if (op.kind == Op::Kind::kGradForward ||
            op.kind == Op::Kind::kGradBackward)
            velocity_trace_.push_back(op);
}

void
SimEngine::compile_mass_matrix(const std::vector<const Placement *> &ops)
{
    const auto &model = design_->model();
    std::vector<bool> fwd(n_, false), bwd(n_, false);
    std::vector<int> walk_link(n_, -1);

    for (const Placement *p : ops) {
        const sched::Task &t = design_->task_graph().task(p->task);
        const auto link = static_cast<std::size_t>(t.link);
        Op op;
        op.link = t.link;
        op.parent = static_cast<std::int32_t>(model.parent(link));
        switch (t.type) {
          case TaskType::kRneaForward:
            op.kind = Op::Kind::kCrbaSetup;
            fwd[link] = true;
            break;
          case TaskType::kRneaBackward:
            if (!fwd[link])
                hazard("composite inertia before setup of link " +
                       std::to_string(link));
            for (int c : model.children(link))
                if (!bwd[c])
                    hazard("composite inertia before child of link " +
                           std::to_string(link));
            op.kind = Op::Kind::kCrbaComposite;
            bwd[link] = true;
            break;
          case TaskType::kGradBackward: {
            const auto col = static_cast<std::size_t>(t.column);
            op.column = t.column;
            if (link == col) {
                if (!bwd[col])
                    hazard("force walk before composite inertia of link " +
                           std::to_string(col));
                op.seed = true;
            } else {
                const int prev = walk_link[col];
                if (prev < 0 ||
                    model.parent(prev) != static_cast<int>(link))
                    hazard("force walk out of order for column " +
                           std::to_string(col));
                if (!fwd[link])
                    hazard("force walk before setup of link " +
                           std::to_string(link));
                op.prev = prev;
            }
            op.kind = Op::Kind::kCrbaWalk;
            walk_link[col] = static_cast<int>(link);
            break;
          }
          case TaskType::kGradForward:
            hazard("unexpected task type in a CRBA schedule");
        }
        trace_.push_back(op);
    }
}

void
SimEngine::compile_kinematics(const std::vector<const Placement *> &ops)
{
    const auto &model = design_->model();
    std::vector<bool> fwd(n_, false), jc(n_, false);

    for (const Placement *p : ops) {
        const sched::Task &t = design_->task_graph().task(p->task);
        const auto link = static_cast<std::size_t>(t.link);
        Op op;
        op.link = t.link;
        op.parent = static_cast<std::int32_t>(model.parent(link));
        switch (t.type) {
          case TaskType::kRneaForward:
            if (op.parent != kBaseParent && !fwd[op.parent])
                hazard("pose before parent pose of link " +
                       std::to_string(link));
            op.kind = Op::Kind::kFkPose;
            fwd[link] = true;
            break;
          case TaskType::kGradForward:
            if (!fwd[link])
                hazard("jacobian before pose of link " +
                       std::to_string(link));
            if (op.parent != kBaseParent && !jc[op.parent])
                hazard("jacobian before parent jacobian of link " +
                       std::to_string(link));
            op.kind = Op::Kind::kFkJacobian;
            op.path_begin = intern_root_path(link);
            op.path_end = static_cast<std::uint32_t>(root_paths_.size());
            jc[link] = true;
            break;
          default:
            hazard("unexpected task type in a kinematics schedule");
        }
        trace_.push_back(op);
    }
}

SimEngine::Workspace
SimEngine::make_workspace() const
{
    Workspace ws;
    ws.xup.resize(n_);
    switch (design_->kernel()) {
      case sched::KernelKind::kDynamicsGradient:
        ws.v.resize(n_);
        ws.a.resize(n_);
        ws.f.resize(n_);
        ws.dv.resize(n_ * n_);
        ws.da.resize(n_ * n_);
        ws.df.resize(n_ * n_);
        break;
      case sched::KernelKind::kMassMatrix:
        ws.ic_children.resize(n_);
        ws.ic_total.resize(n_);
        ws.f_walk.resize(n_);
        break;
      case sched::KernelKind::kForwardKinematics:
        ws.carry.resize(n_ * n_);
        break;
    }
    return ws;
}

void
SimEngine::prepare(EngineResult &out) const
{
    switch (design_->kernel()) {
      case sched::KernelKind::kDynamicsGradient:
        out.tau.resize(n_);
        if (out.dtau_dq.rows() == n_ && out.dtau_dq.cols() == n_)
            out.dtau_dq.set_zero();
        else
            out.dtau_dq.resize(n_, n_);
        if (out.dtau_dqd.rows() == n_ && out.dtau_dqd.cols() == n_)
            out.dtau_dqd.set_zero();
        else
            out.dtau_dqd.resize(n_, n_);
        // dqdd_dq / dqdd_dqd are prepared by blocked_multiply_into.
        break;
      case sched::KernelKind::kMassMatrix:
        if (out.mass.rows() == n_ && out.mass.cols() == n_)
            out.mass.set_zero();
        else
            out.mass.resize(n_, n_);
        break;
      case sched::KernelKind::kForwardKinematics:
        if (out.base_to_link.size() == n_) {
            std::fill(out.base_to_link.begin(), out.base_to_link.end(),
                      SpatialTransform());
            std::fill(out.velocities.begin(), out.velocities.end(),
                      SpatialVector::zero());
            for (linalg::Matrix &jac : out.jacobians)
                jac.set_zero();
        } else {
            out.base_to_link.assign(n_, SpatialTransform());
            out.velocities.assign(n_, SpatialVector::zero());
            out.jacobians.assign(n_, linalg::Matrix(6, n_));
        }
        break;
    }
}

// The interpreter below is the zero-allocation warm path (PR 2 contract,
// asserted by the counting-operator-new tests); roboshape_lint enforces it
// lexically on top (docs/STATIC_ANALYSIS.md).  Growth belongs in compile()/
// prepare()/the batch wrappers, all outside this region.
// lint: warm-path begin
void
SimEngine::run(Workspace &ws, const InputPacket &in, EngineResult &out) const
{
    assert(ws.xup.size() == n_ && "workspace was not made by this engine");
    switch (design_->kernel()) {
      case sched::KernelKind::kDynamicsGradient:
        if (!in.q || !in.qd || !in.qdd || !in.minv)
            throw std::invalid_argument(
                "gradient packet requires q, qd, qdd, and minv");
        run_gradient(ws, in, out);
        break;
      case sched::KernelKind::kMassMatrix:
        if (!in.q)
            throw std::invalid_argument("mass-matrix packet requires q");
        run_mass_matrix(ws, in, out);
        break;
      case sched::KernelKind::kForwardKinematics:
        if (!in.q || !in.qd)
            throw std::invalid_argument(
                "kinematics packet requires q and qd");
        run_kinematics(ws, in, out);
        break;
    }
    ROBOSHAPE_OBS_COUNT("sim.runs", 1);
    ROBOSHAPE_OBS_COUNT("sim.ops_executed", out.tasks_executed);
}

void
SimEngine::run_gradient(Workspace &ws, const InputPacket &in,
                        EngineResult &out) const
{
    const auto &model = design_->model();
    const linalg::Vector &q = *in.q;
    const linalg::Vector &qd = *in.qd;
    const linalg::Vector &qdd = *in.qdd;
    const bool traced = obs::wall_trace_enabled();
    prepare(out);

    // Input marshalling, as in the legacy SimState constructor.
    const std::uint64_t t_marshal = traced ? obs::wall_now_ns() : 0;
    for (std::size_t i = 0; i < n_; ++i) {
        const auto &link = model.link(i);
        ws.xup[i] = link.joint.transform(q[i]) * link.x_tree;
    }
    const SpatialVector a_base(spatial::Vec3::zero(), -in.gravity);
    std::fill(ws.v.begin(), ws.v.end(), SpatialVector::zero());
    std::fill(ws.a.begin(), ws.a.end(), SpatialVector::zero());
    std::fill(ws.f.begin(), ws.f.end(), SpatialVector::zero());
    if (traced)
        obs::record_wall_span("sim.marshal", "phase", t_marshal,
                              obs::wall_now_ns());

    const auto rnea_forward = [&](const Op &op) {
        const auto i = static_cast<std::size_t>(op.link);
        const std::int32_t p = op.parent;
        const SpatialVector vj = s_[i] * qd[i];
        if (p == kBaseParent) {
            ws.v[i] = vj;
            ws.a[i] = ws.xup[i].apply(a_base) + s_[i] * qdd[i];
        } else {
            ws.v[i] = ws.xup[i].apply(ws.v[p]) + vj;
            ws.a[i] = ws.xup[i].apply(ws.a[p]) + s_[i] * qdd[i] +
                      cross_motion(ws.v[i], vj);
        }
        const auto &inertia = model.link(i).inertia;
        ws.f[i] = inertia.apply(ws.a[i]) +
                  cross_force(ws.v[i], inertia.apply(ws.v[i]));
    };
    const auto rnea_backward = [&](const Op &op) {
        const auto i = static_cast<std::size_t>(op.link);
        out.tau[i] = s_[i].dot(ws.f[i]);
        if (op.parent != kBaseParent)
            ws.f[op.parent] += ws.xup[i].apply_transpose_to_force(ws.f[i]);
    };
    const auto grad_forward = [&](const Op &op, bool velocity) {
        const auto i = static_cast<std::size_t>(op.link);
        const std::int32_t p = op.parent;
        const auto &inertia = model.link(i).inertia;
        for (std::uint32_t k = op.path_begin; k < op.path_end; ++k) {
            const auto j = static_cast<std::size_t>(root_paths_[k]);
            SpatialVector dv, da;
            if (j == i && velocity) {
                dv = s_[i];
                da = cross_motion(ws.v[i], s_[i]);
            } else if (j == i) {
                const SpatialVector xap =
                    ws.xup[i].apply(p == kBaseParent ? a_base : ws.a[p]);
                dv = cross_motion(ws.v[i], s_[i]);
                da = cross_motion(xap, s_[i]) +
                     cross_motion(dv, s_[i] * qd[i]);
            } else {
                dv = ws.xup[i].apply(ws.dv[j * n_ + p]);
                da = ws.xup[i].apply(ws.da[j * n_ + p]) +
                     cross_motion(dv, s_[i] * qd[i]);
            }
            ws.dv[j * n_ + i] = dv;
            ws.da[j * n_ + i] = da;
            ws.df[j * n_ + i] = inertia.apply(da) +
                                cross_force(dv, inertia.apply(ws.v[i])) +
                                cross_force(ws.v[i], inertia.apply(dv));
        }
    };
    const auto grad_backward = [&](const Op &op, bool velocity) {
        const auto i = static_cast<std::size_t>(op.link);
        const auto j = static_cast<std::size_t>(op.column);
        const SpatialVector &df = ws.df[j * n_ + i];
        const double dtau = s_[i].dot(df);
        (velocity ? out.dtau_dqd : out.dtau_dq)(i, j) = dtau;
        if (op.parent != kBaseParent) {
            SpatialVector carried = df;
            if (op.seed && !velocity)
                carried += cross_force(s_[j], ws.f[j]);
            ws.df[j * n_ + op.parent] +=
                ws.xup[i].apply_transpose_to_force(carried);
        }
    };
    const auto clear_derivatives = [&] {
        std::fill(ws.dv.begin(), ws.dv.end(), SpatialVector::zero());
        std::fill(ws.da.begin(), ws.da.end(), SpatialVector::zero());
        std::fill(ws.df.begin(), ws.df.end(), SpatialVector::zero());
    };

    // Position pass: all four traversal stages.
    const std::uint64_t t_pos = traced ? obs::wall_now_ns() : 0;
    clear_derivatives();
    for (const Op &op : trace_) {
        const std::uint64_t t_op = traced ? obs::wall_now_ns() : 0;
        switch (op.kind) {
          case Op::Kind::kRneaForward:
            rnea_forward(op);
            break;
          case Op::Kind::kRneaBackward:
            rnea_backward(op);
            break;
          case Op::Kind::kGradForward:
            grad_forward(op, false);
            break;
          default:
            grad_backward(op, false);
            break;
        }
        if (traced)
            obs::record_wall_span(op_name(op.kind), "op", t_op,
                                  obs::wall_now_ns(), op.link, op.column);
    }
    if (traced)
        obs::record_wall_span("sim.position_pass", "phase", t_pos,
                              obs::wall_now_ns());
    // Velocity pass: gradient stages re-run with velocity seeds.
    const std::uint64_t t_vel = traced ? obs::wall_now_ns() : 0;
    clear_derivatives();
    for (const Op &op : velocity_trace_) {
        const std::uint64_t t_op = traced ? obs::wall_now_ns() : 0;
        if (op.kind == Op::Kind::kGradForward)
            grad_forward(op, true);
        else
            grad_backward(op, true);
        if (traced)
            obs::record_wall_span(op_name(op.kind), "op", t_op,
                                  obs::wall_now_ns(), op.link, op.column);
    }
    if (traced)
        obs::record_wall_span("sim.velocity_pass", "phase", t_vel,
                              obs::wall_now_ns());

    // Final stage: blocked -M^-1 multiplies with NOP skipping.  The fused
    // negation is an exact sign flip of the legacy `blocked_multiply(...)
    // * -1.0` result (up to the sign of exact zeros).
    const std::uint64_t t_mm = traced ? obs::wall_now_ns() : 0;
    linalg::BlockMultiplyStats stats_q, stats_qd;
    const std::size_t bs = design_->params().block_size;
    linalg::blocked_multiply_into(*in.minv, out.dtau_dq, bs, out.dqdd_dq,
                                  ws.pa, ws.pb, /*negate=*/true, &stats_q);
    linalg::blocked_multiply_into(*in.minv, out.dtau_dqd, bs, out.dqdd_dqd,
                                  ws.pa, ws.pb, /*negate=*/true, &stats_qd);
    if (traced)
        obs::record_wall_span("sim.mm_solve", "phase", t_mm,
                              obs::wall_now_ns());
    out.mm_stats.block_macs = stats_q.block_macs + stats_qd.block_macs;
    out.mm_stats.block_nops = stats_q.block_nops + stats_qd.block_nops;
    out.mm_stats.scalar_macs = stats_q.scalar_macs + stats_qd.scalar_macs;
    out.tasks_executed = trace_.size() + velocity_trace_.size();
}

void
SimEngine::run_mass_matrix(Workspace &ws, const InputPacket &in,
                           EngineResult &out) const
{
    const auto &model = design_->model();
    const linalg::Vector &q = *in.q;
    const bool traced = obs::wall_trace_enabled();
    prepare(out);

    const std::uint64_t t_phase = traced ? obs::wall_now_ns() : 0;
    std::fill(ws.ic_children.begin(), ws.ic_children.end(),
              SpatialInertia());
    for (const Op &op : trace_) {
        const std::uint64_t t_op = traced ? obs::wall_now_ns() : 0;
        const auto link = static_cast<std::size_t>(op.link);
        switch (op.kind) {
          case Op::Kind::kCrbaSetup: {
            const auto &l = model.link(link);
            ws.xup[link] = l.joint.transform(q[link]) * l.x_tree;
            break;
          }
          case Op::Kind::kCrbaComposite:
            ws.ic_total[link] = model.link(link).inertia +
                                ws.ic_children[link];
            if (op.parent != kBaseParent)
                ws.ic_children[op.parent] =
                    ws.ic_children[op.parent] +
                    ws.ic_total[link].expressed_in_parent(ws.xup[link]);
            break;
          default: {
            const auto col = static_cast<std::size_t>(op.column);
            if (op.seed)
                ws.f_walk[col] = ws.ic_total[col].apply(s_[col]);
            else
                ws.f_walk[col] =
                    ws.xup[static_cast<std::size_t>(op.prev)]
                        .apply_transpose_to_force(ws.f_walk[col]);
            out.mass(col, link) = out.mass(link, col) =
                ws.f_walk[col].dot(s_[link]);
            break;
          }
        }
        if (traced)
            obs::record_wall_span(op_name(op.kind), "op", t_op,
                                  obs::wall_now_ns(), op.link, op.column);
    }
    if (traced)
        obs::record_wall_span("sim.mass_matrix", "phase", t_phase,
                              obs::wall_now_ns());
    out.tasks_executed = trace_.size();
}

void
SimEngine::run_kinematics(Workspace &ws, const InputPacket &in,
                          EngineResult &out) const
{
    const auto &model = design_->model();
    const linalg::Vector &q = *in.q;
    const linalg::Vector &qd = *in.qd;
    const bool traced = obs::wall_trace_enabled();
    prepare(out);

    const std::uint64_t t_phase = traced ? obs::wall_now_ns() : 0;
    for (const Op &op : trace_) {
        const std::uint64_t t_op = traced ? obs::wall_now_ns() : 0;
        const auto link = static_cast<std::size_t>(op.link);
        const std::int32_t parent = op.parent;
        if (op.kind == Op::Kind::kFkPose) {
            const auto &l = model.link(link);
            ws.xup[link] = l.joint.transform(q[link]) * l.x_tree;
            const SpatialVector vj = s_[link] * qd[link];
            if (parent == kBaseParent) {
                out.base_to_link[link] = ws.xup[link];
                out.velocities[link] = vj;
            } else {
                out.base_to_link[link] =
                    ws.xup[link] * out.base_to_link[parent];
                out.velocities[link] =
                    ws.xup[link].apply(out.velocities[parent]) + vj;
            }
        } else {
            for (std::uint32_t k = op.path_begin; k < op.path_end; ++k) {
                const auto j = static_cast<std::size_t>(root_paths_[k]);
                ws.carry[j * n_ + link] =
                    j == link
                        ? s_[link]
                        : ws.xup[link].apply(
                              ws.carry[j * n_ +
                                       static_cast<std::size_t>(parent)]);
                for (std::size_t r = 0; r < 6; ++r)
                    out.jacobians[link](r, j) = ws.carry[j * n_ + link][r];
            }
        }
        if (traced)
            obs::record_wall_span(op_name(op.kind), "op", t_op,
                                  obs::wall_now_ns(), op.link, op.column);
    }
    if (traced)
        obs::record_wall_span("sim.kinematics", "phase", t_phase,
                              obs::wall_now_ns());
    out.tasks_executed = trace_.size();
}
// lint: warm-path end

void
SimEngine::run_batch(std::span<const InputPacket> in,
                     std::span<EngineResult> out, BatchWorkspace &ws,
                     std::size_t threads) const
{
    assert(in.size() == out.size());
    ROBOSHAPE_OBS_COUNT("sim.batch_calls", 1);
    ROBOSHAPE_OBS_COUNT("sim.batch_packets", in.size());

    // SIMD group path: gradient engines with a vector backend and at least
    // one full lane group.  Bit-identical to the scalar path below (see
    // accel/simd_lanes.h), so dispatch is a pure throughput decision.
    const simd::LaneBackend &backend = simd::lane_backend();
    if (backend.gradient != nullptr &&
        design_->kernel() == sched::KernelKind::kDynamicsGradient &&
        in.size() >= backend.width) {
        run_batch_lanes(in, out, ws, backend, threads);
        return;
    }

    ROBOSHAPE_OBS_RECORD("sim.lane_width", 1);
    core::Executor &exec = core::Executor::instance();
    const std::size_t workers = exec.resolve_width(in.size(), threads);
    while (ws.per_thread.size() < workers)
        ws.per_thread.push_back(make_workspace());
    // The executor hands each packet to exactly one lane; a lane index is
    // exclusive to one OS thread for the whole region, so workspace[lane]
    // is single-threaded even though stealing moves packets between
    // lanes.  Results stay bit-identical at any width because a packet's
    // output slot is fixed and a warm workspace never leaks state between
    // runs (PR 2's zero-allocation contract).
    std::array<std::uint64_t, core::kMaxExecutorLanes> shard{};
    exec.parallel_for_lanes(
        in.size(),
        [&](std::size_t i, std::size_t lane) {
            run(ws.per_thread[lane], in[i], out[i]);
            ++shard[lane];
        },
        workers);
    // Shard balance: packets each lane actually executed (dynamic, not
    // the static ceil/floor split the fork-join pool used to report).
    for (std::size_t t = 0; t < workers; ++t)
        ROBOSHAPE_OBS_RECORD("sim.batch_shard_packets", shard[t]);
}

void
SimEngine::run_batch_lanes(std::span<const InputPacket> in,
                           std::span<EngineResult> out, BatchWorkspace &ws,
                           const simd::LaneBackend &backend,
                           std::size_t threads) const
{
    // Validate every packet before entering the parallel region; the lane
    // kernels cannot raise per-packet errors mid-group.
    for (const InputPacket &p : in)
        if (!p.q || !p.qd || !p.qdd || !p.minv)
            throw std::invalid_argument(
                "gradient packet requires q, qd, qdd, and minv");

    const std::size_t width = backend.width;
    const std::size_t groups = in.size() / width;
    const std::size_t tail = in.size() - groups * width;
    core::Executor &exec = core::Executor::instance();
    const std::size_t workers = exec.resolve_width(groups, threads);
    while (ws.lanes.size() < workers)
        ws.lanes.emplace_back();
    if (ws.per_thread.empty())
        ws.per_thread.push_back(make_workspace());

    ROBOSHAPE_OBS_RECORD("sim.lane_width", width);
    ROBOSHAPE_OBS_COUNT("sim.batch_tail_packets", tail);

    simd::GradientTraceView tv;
    tv.trace = trace_.data();
    tv.trace_size = trace_.size();
    tv.velocity_trace = velocity_trace_.data();
    tv.velocity_size = velocity_trace_.size();
    tv.root_paths = root_paths_.data();
    tv.s = s_.data();
    tv.model = &design_->model();
    tv.n = n_;
    tv.block_size = design_->params().block_size;

    const std::size_t tasks = trace_.size() + velocity_trace_.size();
    // Executor lane indices are exclusive to one OS thread per region, so
    // each SoA lane workspace stays single-threaded under stealing —
    // mirroring the scalar shard path above.
    std::array<std::uint64_t, core::kMaxExecutorLanes> shard{};
    exec.parallel_for_lanes(
        groups,
        [&](std::size_t g, std::size_t lane) {
            simd::LaneWorkspace &lw = ws.lanes[lane];
            simd::marshal_gradient_group(design_->model(), n_, width,
                                         in.data() + g * width, lw);
            backend.gradient(tv, lw);
            simd::demarshal_gradient_group(n_, width, tasks, lw,
                                           out.data() + g * width);
            shard[lane] += width;
        },
        workers);
    // Shard balance in packets actually executed per lane (the tail runs
    // on the calling thread below and is not a shard).
    for (std::size_t t = 0; t < workers; ++t)
        ROBOSHAPE_OBS_RECORD("sim.batch_shard_packets", shard[t]);
    ROBOSHAPE_OBS_COUNT("sim.runs", groups * width);
    ROBOSHAPE_OBS_COUNT("sim.ops_executed", groups * width * tasks);

    // Tail: fewer than one lane group left; the scalar reference path
    // produces the same bits, so running it here keeps results invariant
    // across batch size, lane width, and thread count.
    for (std::size_t i = groups * width; i < in.size(); ++i)
        run(ws.per_thread[0], in[i], out[i]);
}

void
SimEngine::run_batch(std::span<const InputPacket> in,
                     std::span<EngineResult> out, std::size_t threads) const
{
    // Engine-owned workspace so warm convenience calls stay allocation-free
    // (a fresh BatchWorkspace here used to reallocate every workspace
    // vector per call).  Serialized: concurrent convenience callers queue.
    std::lock_guard<std::mutex> lock(convenience_ws_->mutex);
    run_batch(in, out, convenience_ws_->ws, threads);
}

} // namespace accel
} // namespace roboshape
