/**
 * @file
 * Generator knobs and timing parameters of the templated accelerator.
 *
 * The paper's architecture (Fig. 8) exposes three topology-derived knobs:
 * forward-traversal PEs, backward-traversal PEs, and the matrix-multiply
 * block size.  The per-task cycle costs below parameterize the cycle-level
 * model; they abstract the pipelined 6x6 robomorphic datapaths of the
 * original RTL and were calibrated so the shipped designs land in the
 * paper's reported cycle ranges (see EXPERIMENTS.md).
 */

#ifndef ROBOSHAPE_ACCEL_PARAMS_H
#define ROBOSHAPE_ACCEL_PARAMS_H

#include <cstddef>
#include <string>

#include "sched/block_schedule.h"
#include "sched/list_scheduler.h"

namespace roboshape {
namespace accel {

/** The three generator knobs (paper Sec. 4.4). */
struct AcceleratorParams
{
    std::size_t pes_fwd = 1;    ///< Forward-traversal processing elements.
    std::size_t pes_bwd = 1;    ///< Backward-traversal processing elements.
    std::size_t block_size = 1; ///< Matrix-multiply tile edge, size_block.

    std::string to_string() const;

    bool operator==(const AcceleratorParams &o) const = default;
};

/** Cycle-cost model for all schedule components. */
struct TimingModel
{
    /** Per-task costs of the traversal stages. */
    sched::TaskTiming traversal{
        /*rnea_forward=*/6,
        /*rnea_backward=*/4,
        /*grad_forward=*/9,
        /*grad_backward=*/5,
    };
    /** Tile cost model of the blocked multiplier. */
    sched::TileTiming tile{/*cycles_per_row=*/1, /*overhead=*/3};
    /** Block matrix-vector multiply units (fixed in the Fig. 8 template). */
    std::size_t mm_units = 3;

    /** Equality lets sweep caches detect a timing-model mismatch. */
    bool operator==(const TimingModel &) const = default;
};

/** Default timing model shared by all benches. */
const TimingModel &default_timing();

} // namespace accel
} // namespace roboshape

#endif // ROBOSHAPE_ACCEL_PARAMS_H
