/**
 * @file
 * Functional simulator of a generated accelerator.
 *
 * Executes the design's schedules task by task, in scheduled order, on real
 * floating-point data — the reproduction's substitute for RTL simulation of
 * the paper's Verilog.  Every operand read is guarded by a written-flag, so
 * a schedule that violated a data dependency fails loudly instead of
 * producing silently wrong numbers; tests then assert bit-level agreement
 * with the host-side dynamics library.
 *
 * Matching the paper's coprocessor dataflow, the host supplies q, qd, the
 * linearization qdd, and the (inverse) mass matrix via I/O; the accelerator
 * returns the two partial-derivative matrices.
 */

#ifndef ROBOSHAPE_ACCEL_FUNCTIONAL_SIM_H
#define ROBOSHAPE_ACCEL_FUNCTIONAL_SIM_H

#include <stdexcept>

#include "accel/design.h"
#include "dynamics/rnea.h"
#include "linalg/blocked.h"
#include "linalg/matrix.h"

namespace roboshape {
namespace accel {

/** Raised when a scheduled task reads an operand that was never written. */
class DataHazardError : public std::logic_error
{
  public:
    explicit DataHazardError(const std::string &msg)
        : std::logic_error(msg)
    {
    }
};

/** Outputs of one simulated accelerator run. */
struct SimResult
{
    linalg::Vector tau;       ///< Inverse-dynamics torques (RNEA stage).
    linalg::Matrix dtau_dq;   ///< Traversal-stage output.
    linalg::Matrix dtau_dqd;  ///< Traversal-stage output.
    linalg::Matrix dqdd_dq;   ///< After the blocked -M^-1 multiply.
    linalg::Matrix dqdd_dqd;  ///< After the blocked -M^-1 multiply.
    linalg::BlockMultiplyStats mm_stats; ///< Tile ops of the final stage.
    std::size_t tasks_executed = 0;
};

/** Which schedule ordering drives execution. */
enum class SimOrder
{
    kStaged,    ///< Forward stage, then backward stage (no pipelining).
    kPipelined, ///< Joint cross-stage order.
    /** Deliberately invalid (stages reversed): exists so tests can prove
     *  the hazard checker rejects dependency-violating orders. */
    kAdversarialReversed,
};

/**
 * Runs the accelerator on one input set.
 *
 * @param minv the host-computed inverse mass matrix (an accelerator input,
 *        as in the paper's coprocessor I/O).
 * @throws DataHazardError when the driving schedule violates a dependency.
 */
SimResult simulate(const AcceleratorDesign &design, const linalg::Vector &q,
                   const linalg::Vector &qd, const linalg::Vector &qdd,
                   const linalg::Matrix &minv,
                   const spatial::Vec3 &gravity = dynamics::kDefaultGravity,
                   SimOrder order = SimOrder::kStaged);

} // namespace accel
} // namespace roboshape

#endif // ROBOSHAPE_ACCEL_FUNCTIONAL_SIM_H
