/**
 * @file
 * Analytical LUT/DSP resource model.
 *
 * The paper reports synthesis results for three shipped designs (Table 2);
 * this model is anchored exactly at those points and extrapolates across
 * the knob space:
 *
 *   DSPs = 285.71 * (PEs_fwd + PEs_bwd) + 11.871 * size_block^2 + 866.4
 *   LUTs = 1034.13 * (PEs_fwd + PEs_bwd) * N^1.7085
 *          + 300 * size_block^3 + 9379
 *
 * The DSP terms are per-PE 6x6 multiply datapaths plus the blocked-multiply
 * array.  The LUT cost is dominated by each PE's schedule-driven operand
 * marshalling network, which grows superlinearly with the number of links
 * it must route among (N^1.71); the block multiplier contributes B^2 MACs,
 * each with a B-deep accumulator (B^3).  Besides reproducing Table 2, the
 * model reproduces the paper's platform-feasibility claims: every robot
 * except HyQ+arm has VC707-feasible design points (Fig. 16), and RC cannot
 * scale past iiwa on the XCVU9P.  See DESIGN.md for the fit derivation.
 */

#ifndef ROBOSHAPE_ACCEL_RESOURCE_MODEL_H
#define ROBOSHAPE_ACCEL_RESOURCE_MODEL_H

#include <cstdint>

#include "accel/params.h"
#include "accel/platform.h"

namespace roboshape {
namespace accel {

/** Estimated FPGA resource usage of a generated design. */
struct ResourceEstimate
{
    std::int64_t luts = 0;
    std::int64_t dsps = 0;

    /** True when both resources fit within @p threshold of the platform. */
    bool fits(const FpgaPlatform &platform,
              double threshold = kUtilizationThreshold) const;

    double lut_utilization(const FpgaPlatform &platform) const;
    double dsp_utilization(const FpgaPlatform &platform) const;
};

/**
 * Resource estimate of a RoboShape design.
 *
 * @param params    generator knobs.
 * @param num_links robot size N.
 */
ResourceEstimate estimate_resources(const AcceleratorParams &params,
                                    std::size_t num_links);

/**
 * Resource estimate of the prior-work Robomorphic Computing design [32]:
 * static per-link parallelization with no topology-aware reuse.  Anchored
 * at the published iiwa numbers (49.0% LUTs / 77.5% DSPs of the XCVU9P).
 */
ResourceEstimate estimate_rc_resources(std::size_t num_links);

} // namespace accel
} // namespace roboshape

#endif // ROBOSHAPE_ACCEL_RESOURCE_MODEL_H
