/**
 * @file
 * Width-parameterized lane interpreter for the gradient op trace.
 *
 * Included exactly once per ISA translation unit with
 *
 *     #define ROBOSHAPE_LANE_IMPL_WIDTH 4            // lanes per group
 *     #define ROBOSHAPE_LANE_IMPL_FN    run_gradient_lanes_avx2
 *     #include "accel/simd_lanes_impl.inl"
 *
 * Everything except the exported entry point lives in an anonymous
 * namespace ON PURPOSE: each TU is compiled with different target flags
 * (-mavx2, -mavx512f, none), and internal linkage guarantees the linker
 * can never comdat-fold a kernel compiled for one ISA into a TU dispatched
 * on another — that would execute AVX instructions on CPUs without them.
 *
 * Exactness contract (docs/SIM_ENGINE.md): every arithmetic expression
 * below mirrors the scalar interpreter in sim_engine.cc / spatial/
 * operation for operation with the same association order, evaluated
 * per lane by IEEE-754 vector instructions.  The TU is compiled with
 * -ffp-contract=off, so no a*b+c is fused into an FMA.  Lane results are
 * therefore bit-identical to scalar run() — asserted by
 * tests/test_simd_lanes.cc and the bench/sim_throughput 0-ulp lane gate.
 * Do not "simplify" an expression here without updating that policy.
 */

#if !defined(ROBOSHAPE_LANE_IMPL_WIDTH) || !defined(ROBOSHAPE_LANE_IMPL_FN)
#error "define ROBOSHAPE_LANE_IMPL_WIDTH and ROBOSHAPE_LANE_IMPL_FN first"
#endif

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "accel/sim_engine.h"
#include "accel/simd_lanes.h"
#include "spatial/spatial_inertia.h"
#include "spatial/spatial_vector.h"
#include "spatial/vec3.h"
#include "topology/robot_model.h"

namespace roboshape {
namespace accel {
namespace simd {

// The whole lane interpreter is warm: workspaces arrive pre-sized from
// marshal_gradient_group and every loop below runs per batch group.
// lint: warm-path begin

namespace {

constexpr int W = ROBOSHAPE_LANE_IMPL_WIDTH;
static_assert(W == 4 || W == 8, "lane kernels support widths 4 and 8");

typedef double V __attribute__((vector_size(W * sizeof(double))));
typedef std::int64_t VM __attribute__((vector_size(W * sizeof(std::int64_t))));

inline V
load(const double *p)
{
    V v;
    __builtin_memcpy(&v, p, sizeof(V));
    return v;
}

inline void
store(double *p, const V &v)
{
    __builtin_memcpy(p, &v, sizeof(V));
}

inline void
zero_fill(double *p, std::size_t count)
{
    std::memset(p, 0, count * sizeof(double));
}

/** Bitwise per-lane blend: lane l of the result is a[l] where bit l of
 *  @p m is set, else b[l] — the masked-off accumulator is preserved
 *  exactly (including the sign of zeros). */
inline V
blend(const VM &m, const V &a, const V &b)
{
    // C-style casts between same-size vector types reinterpret the bits
    // (the documented GCC/Clang idiom; reinterpret_cast would run afoul of
    // strict aliasing).
    return (V)(((VM)a & m) | ((VM)b & ~m));
}

// ----------------------------------------------------------- lane math --
// Mirrors of spatial/vec3.h and spatial/spatial_*.cc, one vector op per
// scalar op, identical association order.

struct LV3
{
    V x, y, z;
};

struct LSV
{
    LV3 ang, lin;
};

/** Per-lane Plücker transform (E row-major, r), as stored in xup_e/xup_r. */
struct LXf
{
    V e[9];
    LV3 r;
};

inline LV3
add(const LV3 &a, const LV3 &b)
{
    return {a.x + b.x, a.y + b.y, a.z + b.z};
}

inline LV3
sub(const LV3 &a, const LV3 &b)
{
    return {a.x - b.x, a.y - b.y, a.z - b.z};
}

/** Mirror of Vec3::cross: {y*oz - z*oy, z*ox - x*oz, x*oy - y*ox}. */
inline LV3
cross(const LV3 &a, const LV3 &b)
{
    return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
            a.x * b.y - a.y * b.x};
}

/** Broadcast Vec3 x lane vector (constant first operand). */
inline LV3
cross(const spatial::Vec3 &a, const LV3 &b)
{
    return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
            a.x * b.y - a.y * b.x};
}

/** Mirror of Vec3::dot: (x*ox + y*oy) + z*oz. */
inline V
dot(const LV3 &a, const LV3 &b)
{
    return a.x * b.x + a.y * b.y + a.z * b.z;
}

/** Broadcast Mat3 * lane vector (mirror of Mat3::operator*(Vec3)). */
inline LV3
mat_mul(const spatial::Mat3 &m, const LV3 &v)
{
    return {m(0, 0) * v.x + m(0, 1) * v.y + m(0, 2) * v.z,
            m(1, 0) * v.x + m(1, 1) * v.y + m(1, 2) * v.z,
            m(2, 0) * v.x + m(2, 1) * v.y + m(2, 2) * v.z};
}

/** Per-lane E * v (mirror of Mat3::operator*(Vec3)). */
inline LV3
emul(const LXf &x, const LV3 &v)
{
    return {x.e[0] * v.x + x.e[1] * v.y + x.e[2] * v.z,
            x.e[3] * v.x + x.e[4] * v.y + x.e[5] * v.z,
            x.e[6] * v.x + x.e[7] * v.y + x.e[8] * v.z};
}

/** Per-lane E^T * v (mirror of Mat3::transpose_mul). */
inline LV3
etmul(const LXf &x, const LV3 &v)
{
    return {x.e[0] * v.x + x.e[3] * v.y + x.e[6] * v.z,
            x.e[1] * v.x + x.e[4] * v.y + x.e[7] * v.z,
            x.e[2] * v.x + x.e[5] * v.y + x.e[8] * v.z};
}

inline LSV
add(const LSV &a, const LSV &b)
{
    return {add(a.ang, b.ang), add(a.lin, b.lin)};
}

/** Broadcast SpatialVector * per-lane scalar (mirror of s * qd[i]). */
inline LSV
scale(const spatial::SpatialVector &s, const V &q)
{
    return {{s.ang.x * q, s.ang.y * q, s.ang.z * q},
            {s.lin.x * q, s.lin.y * q, s.lin.z * q}};
}

/** Broadcast of a constant SpatialVector into all lanes. */
inline LSV
splat(const spatial::SpatialVector &s)
{
    const V one = V{} + 1.0;
    return {{s.ang.x * one, s.ang.y * one, s.ang.z * one},
            {s.lin.x * one, s.lin.y * one, s.lin.z * one}};
}

/** Mirror of SpatialVector::dot: ang.dot + lin.dot. */
inline V
dot(const LSV &a, const LSV &b)
{
    return dot(a.ang, b.ang) + dot(a.lin, b.lin);
}

/** Mirror of spatial::cross_motion. */
inline LSV
cross_motion(const LSV &v, const LSV &m)
{
    return {cross(v.ang, m.ang),
            add(cross(v.ang, m.lin), cross(v.lin, m.ang))};
}

/** Mirror of spatial::cross_force. */
inline LSV
cross_force(const LSV &v, const LSV &f)
{
    return {add(cross(v.ang, f.ang), cross(v.lin, f.lin)),
            cross(v.ang, f.lin)};
}

/** Mirror of SpatialTransform::apply: {E w, E (v - r x w)}. */
inline LSV
xf_apply(const LXf &x, const LSV &v)
{
    return {emul(x, v.ang), emul(x, sub(v.lin, cross(x.r, v.ang)))};
}

/** Mirror of SpatialTransform::apply_transpose_to_force. */
inline LSV
xf_apply_transpose_to_force(const LXf &x, const LSV &f)
{
    const LV3 fl = etmul(x, f.lin);
    return {add(etmul(x, f.ang), cross(x.r, fl)), fl};
}

/** Mirror of SpatialInertia::apply (broadcast inertia constants). */
inline LSV
inertia_apply(const spatial::SpatialInertia &in, const LSV &v)
{
    const spatial::Vec3 &h = in.h();
    LV3 ang = add(mat_mul(in.ibar(), v.ang), cross(h, v.lin));
    const V mass = V{} + in.mass();
    LV3 lin = sub({v.lin.x * mass, v.lin.y * mass, v.lin.z * mass},
                  cross(h, v.ang));
    return {ang, lin};
}

// Lane-major loads/stores of whole spatial quantities.  Flat base index k
// addresses data[k * W].

inline LSV
load_sv(const double *p)
{
    return {{load(p + 0 * W), load(p + 1 * W), load(p + 2 * W)},
            {load(p + 3 * W), load(p + 4 * W), load(p + 5 * W)}};
}

inline void
store_sv(double *p, const LSV &v)
{
    store(p + 0 * W, v.ang.x);
    store(p + 1 * W, v.ang.y);
    store(p + 2 * W, v.ang.z);
    store(p + 3 * W, v.lin.x);
    store(p + 4 * W, v.lin.y);
    store(p + 5 * W, v.lin.z);
}

inline LXf
load_xf(const double *e, const double *r)
{
    LXf x;
    for (int k = 0; k < 9; ++k)
        x.e[k] = load(e + k * W);
    x.r = {load(r + 0 * W), load(r + 1 * W), load(r + 2 * W)};
    return x;
}

// ------------------------------------------------- lane blocked multiply --
// Mirror of linalg::blocked_multiply_into over lane-major matrices, with
// per-lane tile masks in place of BlockPattern and the fused negation
// hard-wired (the engine only solves -M^-1 * dtau).

/** Mirror of BlockPattern::analyze at tol == 0: bit l of the tile entry is
 *  set when lane l has an in-bounds element with |x| > 0 (NaN counts as
 *  nonzero, exactly like std::abs(x) <= tol evaluating false). */
void
analyze_mask(const double *m, std::size_t rows, std::size_t cols,
             std::size_t bs, std::vector<std::uint8_t> &mask)
{
    const std::size_t brs = (rows + bs - 1) / bs;
    const std::size_t bcs = (cols + bs - 1) / bs;
    mask.assign(brs * bcs, 0);
    for (std::size_t br = 0; br < brs; ++br) {
        for (std::size_t bc = 0; bc < bcs; ++bc) {
            const std::size_t r1 = std::min(br * bs + bs, rows);
            const std::size_t c1 = std::min(bc * bs + bs, cols);
            // Accumulate lane-wise "saw a nonzero" flags with vector
            // compares: x != 0 is false for both signed zeros (matching
            // std::abs(x) <= 0 being true), and x != x flags NaN, which
            // the scalar predicate also counts as nonzero.
            VM acc{};
            for (std::size_t r = br * bs; r < r1; ++r) {
                for (std::size_t c = bc * bs; c < c1; ++c) {
                    const V x = load(m + (r * cols + c) * W);
                    acc |= (VM)((x != V{}) | (x != x));
                }
            }
            std::uint8_t bits = 0;
            for (int l = 0; l < W; ++l)
                if (acc[l])
                    bits |= static_cast<std::uint8_t>(1u << l);
            mask[br * bcs + bc] = bits;
        }
    }
}

/** Blend-mask lookup: entry b expands bit l of byte b into all-ones in
 *  lane l.  Built once per process (per ISA TU); indexing it per partial
 *  tile replaces a W-iteration mask-build loop, which dominates at small
 *  block sizes where tiles are tiny and numerous. */
const VM *
mask_table()
{
    static const std::array<VM, 256> table = [] {
        std::array<VM, 256> t{};
        for (int b = 0; b < 256; ++b)
            for (int l = 0; l < W; ++l)
                t[static_cast<std::size_t>(b)][l] = (b >> l & 1) ? -1 : 0;
        return t;
    }();
    return table.data();
}

/** out = -(A * B) per lane, skipping tile products lane-wise exactly where
 *  the scalar path would NOP them; accumulation order matches
 *  blocked_multiply_into (bk ascending, then i, k, j within the tile). */
void
lane_blocked_multiply_neg(const double *a, const double *b, double *out,
                          std::size_t n, std::size_t bs,
                          const std::vector<std::uint8_t> &ma,
                          const std::vector<std::uint8_t> &mb,
                          LaneStats &stats)
{
    zero_fill(out, n * n * W);
    stats.block_macs.fill(0);
    stats.block_nops.fill(0);
    stats.scalar_macs.fill(0);

    const std::size_t bn = (n + bs - 1) / bs;
    constexpr std::uint8_t kFull =
        static_cast<std::uint8_t>((1u << W) - 1u);

    // Per-lane counters are derived after the fact from a histogram of
    // exec bytes (weighted by tile size for scalar_macs): two scalar adds
    // per tile instead of a W-iteration loop, which at block size 1 costs
    // more than the arithmetic it is counting.
    std::array<std::uint64_t, 256> hist{};
    std::array<std::uint64_t, 256> hist_macs{};

    for (std::size_t bi = 0; bi < bn; ++bi) {
        for (std::size_t bj = 0; bj < bn; ++bj) {
            for (std::size_t bk = 0; bk < bn; ++bk) {
                const std::uint8_t exec =
                    ma[bi * bn + bk] & mb[bk * bn + bj];
                const std::size_t r0 = bi * bs, c0 = bj * bs, k0 = bk * bs;
                const std::size_t r1 = std::min(r0 + bs, n);
                const std::size_t c1 = std::min(c0 + bs, n);
                const std::size_t k1 = std::min(k0 + bs, n);
                const std::uint64_t tile_macs =
                    static_cast<std::uint64_t>(r1 - r0) * (k1 - k0) *
                    (c1 - c0);
                ++hist[exec];
                hist_macs[exec] += tile_macs;
                if (!exec)
                    continue;
                if (exec == kFull) {
                    for (std::size_t i = r0; i < r1; ++i) {
                        for (std::size_t k = k0; k < k1; ++k) {
                            const V av = -load(a + (i * n + k) * W);
                            for (std::size_t j = c0; j < c1; ++j) {
                                double *op = out + (i * n + j) * W;
                                store(op,
                                      load(op) +
                                          av * load(b + (k * n + j) * W));
                            }
                        }
                    }
                } else {
                    const VM m = mask_table()[exec];
                    for (std::size_t i = r0; i < r1; ++i) {
                        for (std::size_t k = k0; k < k1; ++k) {
                            const V av = -load(a + (i * n + k) * W);
                            for (std::size_t j = c0; j < c1; ++j) {
                                double *op = out + (i * n + j) * W;
                                const V cur = load(op);
                                store(op,
                                      blend(m,
                                            cur + av *
                                                load(b + (k * n + j) * W),
                                            cur));
                            }
                        }
                    }
                }
            }
        }
    }

    for (int bbyte = 0; bbyte < 256; ++bbyte) {
        const auto bidx = static_cast<std::size_t>(bbyte);
        if (hist[bidx] == 0)
            continue;
        for (int l = 0; l < W; ++l) {
            if (bbyte >> l & 1) {
                stats.block_macs[l] += hist[bidx];
                stats.scalar_macs[l] += hist_macs[bidx];
            } else {
                stats.block_nops[l] += hist[bidx];
            }
        }
    }
}

// --------------------------------------------------- trace interpreter --

void
run_gradient_lanes(const GradientTraceView &t, LaneWorkspace &ws)
{
    const std::size_t n = t.n;
    const topology::RobotModel &model = *t.model;
    const double *q = ws.q.data();
    const double *qd = ws.qd.data();
    const double *qdd = ws.qdd.data();
    double *xe = ws.xup_e.data();
    double *xr = ws.xup_r.data();
    double *v = ws.v.data();
    double *a = ws.a.data();
    double *f = ws.f.data();
    double *dv = ws.dv.data();
    double *da = ws.da.data();
    double *df = ws.df.data();
    double *tau = ws.tau.data();

    const LSV a_base = load_sv(ws.abase.data());

    // Lane xup construction: mirror of link.joint.transform(q[i]) *
    // link.x_tree — i.e. JointModel::transform, Mat3::coordinate_rotation
    // and SpatialTransform::operator* evaluated per lane.  Only sin/cos
    // stay scalar: they hit the exact same libm entry points as the
    // scalar path, and every expression after them is the literal vector
    // mirror (same association order, broadcast constants), so the
    // resulting transforms are bit-identical.  Building xup here instead
    // of in marshal_gradient_group vectorizes the 3x3 compositions,
    // which otherwise run W times scalar and dominate marshalling.
    for (std::size_t i = 0; i < n; ++i) {
        const topology::Link &link = model.link(i);
        const spatial::Mat3 &e1 = link.x_tree.rotation_matrix();
        const spatial::Vec3 &r1 = link.x_tree.translation_vector();
        V ej[9];
        LV3 rj{V{}, V{}, V{}};
        if (link.joint.type() == spatial::JointType::kRevolute) {
            V s, c;
            for (int l = 0; l < W; ++l) {
                const double qv = q[i * W + l];
                s[l] = std::sin(qv);
                c[l] = std::cos(qv);
            }
            // Mirror of Mat3::coordinate_rotation: the constant parts
            // (skew, skew^2) run through the scalar Mat3 code itself.
            const spatial::Mat3 ax = spatial::Mat3::skew(link.joint.axis());
            const spatial::Mat3 ax2 = ax * ax;
            const V one = V{} + 1.0;
            V rm[9];
            for (int k = 0; k < 9; ++k) {
                const double id = (k % 4 == 0) ? 1.0 : 0.0;
                rm[k] = (id + ax.m[k] * s) + ax2.m[k] * (one - c);
            }
            for (int rr = 0; rr < 3; ++rr)
                for (int cc = 0; cc < 3; ++cc)
                    ej[rr * 3 + cc] = rm[cc * 3 + rr]; // transposed()
        } else {
            // Prismatic: X_J = translation(axis * q); fixed: identity.
            // Both have an identity E_J, mirrored literally (the scalar
            // composition multiplies through the 1s and 0s too).
            if (link.joint.type() == spatial::JointType::kPrismatic) {
                const V qv = load(q + i * W);
                const spatial::Vec3 &a_ = link.joint.axis();
                rj = {a_.x * qv, a_.y * qv, a_.z * qv};
            }
            const V one = V{} + 1.0;
            for (int k = 0; k < 9; ++k)
                ej[k] = (k % 4 == 0) ? one : V{};
        }
        // Mirror of SpatialTransform::operator*: E = E_J * E1 via
        // Mat3::operator*, r = r1 + E1^T r_J via Mat3::transpose_mul and
        // Vec3::operator+.
        for (int rr = 0; rr < 3; ++rr)
            for (int cc = 0; cc < 3; ++cc)
                store(xe + (i * 9 + rr * 3 + cc) * W,
                      ej[rr * 3 + 0] * e1(0, cc) +
                          ej[rr * 3 + 1] * e1(1, cc) +
                          ej[rr * 3 + 2] * e1(2, cc));
        const LV3 tmul = {
            e1(0, 0) * rj.x + e1(1, 0) * rj.y + e1(2, 0) * rj.z,
            e1(0, 1) * rj.x + e1(1, 1) * rj.y + e1(2, 1) * rj.z,
            e1(0, 2) * rj.x + e1(1, 2) * rj.y + e1(2, 2) * rj.z};
        store(xr + (i * 3 + 0) * W, r1.x + tmul.x);
        store(xr + (i * 3 + 1) * W, r1.y + tmul.y);
        store(xr + (i * 3 + 2) * W, r1.z + tmul.z);
    }

    zero_fill(v, n * 6 * W);
    zero_fill(a, n * 6 * W);
    zero_fill(f, n * 6 * W);
    // Mirror of prepare(): tau is fully overwritten by the backward pass,
    // but the dtau matrices are only written where ops land (set_zero in
    // the scalar path); zero all three so unwritten entries match.
    zero_fill(tau, n * W);
    zero_fill(ws.dtau_dq.data(), n * n * W);
    zero_fill(ws.dtau_dqd.data(), n * n * W);

    const auto rnea_forward = [&](const EngineOp &op) {
        const auto i = static_cast<std::size_t>(op.link);
        const std::int32_t p = op.parent;
        const LXf x = load_xf(xe + i * 9 * W, xr + i * 3 * W);
        const spatial::SpatialVector &si = t.s[i];
        const LSV vj = scale(si, load(qd + i * W));
        LSV vi, ai;
        if (p == topology::kBaseParent) {
            vi = vj;
            ai = add(xf_apply(x, a_base), scale(si, load(qdd + i * W)));
        } else {
            const std::size_t pp = static_cast<std::size_t>(p);
            vi = add(xf_apply(x, load_sv(v + pp * 6 * W)), vj);
            ai = add(add(xf_apply(x, load_sv(a + pp * 6 * W)),
                         scale(si, load(qdd + i * W))),
                     cross_motion(vi, vj));
        }
        store_sv(v + i * 6 * W, vi);
        store_sv(a + i * 6 * W, ai);
        const spatial::SpatialInertia &inertia = model.link(i).inertia;
        store_sv(f + i * 6 * W,
                 add(inertia_apply(inertia, ai),
                     cross_force(vi, inertia_apply(inertia, vi))));
    };

    const auto rnea_backward = [&](const EngineOp &op) {
        const auto i = static_cast<std::size_t>(op.link);
        const LSV fi = load_sv(f + i * 6 * W);
        store(tau + i * W, dot(splat(t.s[i]), fi));
        if (op.parent != topology::kBaseParent) {
            const std::size_t p = static_cast<std::size_t>(op.parent);
            const LXf x = load_xf(xe + i * 9 * W, xr + i * 3 * W);
            store_sv(f + p * 6 * W,
                     add(load_sv(f + p * 6 * W),
                         xf_apply_transpose_to_force(x, fi)));
        }
    };

    const auto grad_forward = [&](const EngineOp &op, bool velocity) {
        const auto i = static_cast<std::size_t>(op.link);
        const std::int32_t p = op.parent;
        const LXf x = load_xf(xe + i * 9 * W, xr + i * 3 * W);
        const spatial::SpatialVector &si = t.s[i];
        const spatial::SpatialInertia &inertia = model.link(i).inertia;
        const LSV vi = load_sv(v + i * 6 * W);
        // Invariant across the path loop; scalar recomputes it per column
        // with bit-identical value, so hoisting is exact.
        const LSV ivi = inertia_apply(inertia, vi);
        const LSV sqd = scale(si, load(qd + i * W));
        for (std::uint32_t k = op.path_begin; k < op.path_end; ++k) {
            const auto j = static_cast<std::size_t>(t.root_paths[k]);
            LSV dvv, daa;
            if (j == i && velocity) {
                dvv = splat(si);
                daa = cross_motion(vi, splat(si));
            } else if (j == i) {
                const LSV xap = xf_apply(
                    x, p == topology::kBaseParent
                           ? a_base
                           : load_sv(a +
                                     static_cast<std::size_t>(p) * 6 * W));
                dvv = cross_motion(vi, splat(si));
                daa = add(cross_motion(xap, splat(si)),
                          cross_motion(dvv, sqd));
            } else {
                const std::size_t pp = static_cast<std::size_t>(p);
                dvv = xf_apply(x, load_sv(dv + (j * n + pp) * 6 * W));
                daa = add(xf_apply(x, load_sv(da + (j * n + pp) * 6 * W)),
                          cross_motion(dvv, sqd));
            }
            store_sv(dv + (j * n + i) * 6 * W, dvv);
            store_sv(da + (j * n + i) * 6 * W, daa);
            store_sv(df + (j * n + i) * 6 * W,
                     add(add(inertia_apply(inertia, daa),
                             cross_force(dvv, ivi)),
                         cross_force(vi, inertia_apply(inertia, dvv))));
        }
    };

    const auto grad_backward = [&](const EngineOp &op, bool velocity) {
        const auto i = static_cast<std::size_t>(op.link);
        const auto j = static_cast<std::size_t>(op.column);
        const LSV dff = load_sv(df + (j * n + i) * 6 * W);
        const V dtau = dot(splat(t.s[i]), dff);
        double *out = velocity ? ws.dtau_dqd.data() : ws.dtau_dq.data();
        store(out + (i * n + j) * W, dtau);
        if (op.parent != topology::kBaseParent) {
            const std::size_t p = static_cast<std::size_t>(op.parent);
            LSV carried = dff;
            if (op.seed && !velocity)
                carried = add(carried,
                              cross_force(splat(t.s[j]),
                                          load_sv(f + j * 6 * W)));
            const LXf x = load_xf(xe + i * 9 * W, xr + i * 3 * W);
            store_sv(df + (j * n + p) * 6 * W,
                     add(load_sv(df + (j * n + p) * 6 * W),
                         xf_apply_transpose_to_force(x, carried)));
        }
    };

    // Derivative-scratch clearing.  The scalar path zeroes all of
    // dv/da/df before each pass, but only a sliver of that state is ever
    // read before it is written: dv and da entries are stored by
    // grad_forward before any (dependency-ordered) op loads them, and
    // the same holds for df entries inside column j's subtree.  The one
    // exception is the backward recursion's += into df[(j, parent(i))],
    // which for ancestors of j accumulates into entries no forward store
    // ever touched — those must start at zero.  Zeroing exactly those
    // targets (idempotent, so doing it upfront per pass is safe for
    // shared parents) replaces two O(n^2) memsets per group with O(ops)
    // work; on branched robots, whose root paths are short, the full
    // clear would otherwise dominate the lane kernel.  Outputs are
    // unaffected — never-read scratch is not part of the exactness
    // contract — and the bit-exactness tests cover every topology class.
    const auto clear_df_accumulation_targets = [&](const EngineOp *ops,
                                                   std::size_t count) {
        for (std::size_t k = 0; k < count; ++k) {
            const EngineOp &op = ops[k];
            if (op.kind == EngineOp::Kind::kGradBackward &&
                op.parent != topology::kBaseParent)
                zero_fill(df + (static_cast<std::size_t>(op.column) * n +
                                static_cast<std::size_t>(op.parent)) *
                                   6 * W,
                          6 * W);
        }
    };

    // Position pass: all four traversal stages, in trace order.
    clear_df_accumulation_targets(t.trace, t.trace_size);
    for (std::size_t k = 0; k < t.trace_size; ++k) {
        const EngineOp &op = t.trace[k];
        switch (op.kind) {
          case EngineOp::Kind::kRneaForward:
            rnea_forward(op);
            break;
          case EngineOp::Kind::kRneaBackward:
            rnea_backward(op);
            break;
          case EngineOp::Kind::kGradForward:
            grad_forward(op, false);
            break;
          default:
            grad_backward(op, false);
            break;
        }
    }
    // Velocity pass: gradient stages re-run with velocity seeds.
    clear_df_accumulation_targets(t.velocity_trace, t.velocity_size);
    for (std::size_t k = 0; k < t.velocity_size; ++k) {
        const EngineOp &op = t.velocity_trace[k];
        if (op.kind == EngineOp::Kind::kGradForward)
            grad_forward(op, true);
        else
            grad_backward(op, true);
    }

    // Final stage: lane-parallel blocked -M^-1 multiplies.  The minv mask
    // is analyzed once and shared by both multiplies (the scalar path
    // analyzes the same matrix twice with identical results).
    analyze_mask(ws.minv.data(), n, n, t.block_size, ws.minv_mask);
    analyze_mask(ws.dtau_dq.data(), n, n, t.block_size, ws.dq_mask);
    analyze_mask(ws.dtau_dqd.data(), n, n, t.block_size, ws.dqd_mask);
    lane_blocked_multiply_neg(ws.minv.data(), ws.dtau_dq.data(),
                              ws.dqdd_dq.data(), n, t.block_size,
                              ws.minv_mask, ws.dq_mask, ws.stats_q);
    lane_blocked_multiply_neg(ws.minv.data(), ws.dtau_dqd.data(),
                              ws.dqdd_dqd.data(), n, t.block_size,
                              ws.minv_mask, ws.dqd_mask, ws.stats_qd);
}

} // namespace

void
ROBOSHAPE_LANE_IMPL_FN(const GradientTraceView &t, LaneWorkspace &ws)
{
    run_gradient_lanes(t, ws);
}

// lint: warm-path end

} // namespace simd
} // namespace accel
} // namespace roboshape
