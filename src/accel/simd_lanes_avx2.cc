/**
 * @file
 * 4-wide lane kernel compiled with -mavx2 (see src/accel/CMakeLists.txt;
 * -ffp-contract=off keeps it bit-exact).  Only ever called after
 * __builtin_cpu_supports("avx2") verified the host.
 */

#define ROBOSHAPE_LANE_IMPL_WIDTH 4
#define ROBOSHAPE_LANE_IMPL_FN run_gradient_lanes_avx2
#include "accel/simd_lanes_impl.inl"
