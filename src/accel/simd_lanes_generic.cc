/**
 * @file
 * 4-wide lane kernel with no ISA flags: GCC/Clang lower the vector ops to
 * whatever the baseline target provides (SSE2 pairs on x86-64, NEON on
 * aarch64, scalar elsewhere).  Used by tests to exercise the lane code on
 * any host and as the explicit `ROBOSHAPE_SIMD=generic` selection.
 */

#define ROBOSHAPE_LANE_IMPL_WIDTH 4
#define ROBOSHAPE_LANE_IMPL_FN run_gradient_lanes_generic
#include "accel/simd_lanes_impl.inl"
