/**
 * @file
 * Implementation of accelerator design generation.
 */

#include "accel/design.h"

#include <algorithm>
#include <set>
#include <cmath>

namespace roboshape {
namespace accel {

using sched::TaskType;

AcceleratorDesign::AcceleratorDesign(topology::RobotModel model,
                                     const AcceleratorParams &params,
                                     const TimingModel &timing,
                                     sched::KernelKind kernel)
    : model_(std::make_unique<topology::RobotModel>(std::move(model))),
      kernel_(kernel), params_(params), timing_(timing)
{
    topo_ = std::make_unique<topology::TopologyInfo>(*model_);
    graph_ = std::make_unique<sched::TaskGraph>(*topo_, kernel_);

    fwd_ = sched::schedule_stage(
        *graph_, {TaskType::kRneaForward, TaskType::kGradForward},
        params_.pes_fwd, timing_.traversal);
    bwd_ = sched::schedule_stage(
        *graph_, {TaskType::kRneaBackward, TaskType::kGradBackward},
        params_.pes_bwd, timing_.traversal);
    pipelined_ = sched::schedule_pipelined(*graph_, params_.pes_fwd,
                                           params_.pes_bwd,
                                           timing_.traversal);

    // Only the dynamics-gradient kernel ends in a blocked -M^-1 multiply;
    // CRBA and forward kinematics finish with their traversal stages.
    if (kernel_ == sched::KernelKind::kDynamicsGradient) {
        mm_ = sched::schedule_block_multiply(
            sched::mass_inverse_mask(*topo_),
            sched::derivative_mask(*topo_), params_.block_size,
            timing_.mm_units, timing_.tile,
            /*num_products=*/2);
    }

    resources_ = estimate_resources(params_, model_->num_links());
}

std::int64_t
AcceleratorDesign::cycles_no_pipelining() const
{
    return fwd_.makespan + bwd_.makespan + mm_.makespan;
}

std::int64_t
AcceleratorDesign::cycles_pipelined() const
{
    return std::max({fwd_.makespan, bwd_.makespan, mm_.makespan});
}

std::int64_t
AcceleratorDesign::cycles_overlapped() const
{
    return pipelined_.makespan + mm_.makespan;
}

std::int64_t
AcceleratorDesign::cycles_batched(std::size_t batch) const
{
    if (batch == 0)
        return 0;
    return cycles_no_pipelining() +
           cycles_pipelined() * static_cast<std::int64_t>(batch - 1);
}

double
AcceleratorDesign::latency_us_batched(std::size_t batch) const
{
    return static_cast<double>(cycles_batched(batch)) * clock_period_ns() *
           1e-3;
}

double
AcceleratorDesign::clock_period_ns() const
{
    // The marshalling critical path has two contributors: the longest
    // forward thread a PE sequences through (bounded by the deepest leaf)
    // and the per-link operand mux fan-in (grows with N).  Coefficients are
    // calibrated to the paper's synthesized periods — exactly 18/18/22 ns
    // for the shipped iiwa/HyQ/Baxter designs.
    const topology::TopologyMetrics m = topo_->metrics();
    return 10.125 + 0.625 * static_cast<double>(m.max_leaf_depth) +
           0.5 * static_cast<double>(m.total_links);
}

double
AcceleratorDesign::latency_us_no_pipelining() const
{
    return static_cast<double>(cycles_no_pipelining()) * clock_period_ns() *
           1e-3;
}

double
AcceleratorDesign::latency_us_pipelined() const
{
    return static_cast<double>(cycles_pipelined()) * clock_period_ns() *
           1e-3;
}

} // namespace accel
} // namespace roboshape
