/**
 * @file
 * Implementation of accelerator design generation.
 */

#include "accel/design.h"

#include <algorithm>
#include <set>
#include <cmath>

namespace roboshape {
namespace accel {

using sched::TaskType;

AcceleratorDesign::AcceleratorDesign(topology::RobotModel model,
                                     const AcceleratorParams &params,
                                     const TimingModel &timing,
                                     sched::KernelKind kernel)
    : model_(std::make_shared<topology::RobotModel>(std::move(model))),
      kernel_(kernel), params_(params), timing_(timing)
{
    topo_ = std::make_shared<topology::TopologyInfo>(*model_);
    graph_ = std::make_shared<sched::TaskGraph>(*topo_, kernel_);

    fwd_ = sched::schedule_stage(
        *graph_, {TaskType::kRneaForward, TaskType::kGradForward},
        params_.pes_fwd, timing_.traversal);
    bwd_ = sched::schedule_stage(
        *graph_, {TaskType::kRneaBackward, TaskType::kGradBackward},
        params_.pes_bwd, timing_.traversal);
    pipelined_ = sched::schedule_pipelined(*graph_, params_.pes_fwd,
                                           params_.pes_bwd,
                                           timing_.traversal);

    // Only the dynamics-gradient kernel ends in a blocked -M^-1 multiply;
    // CRBA and forward kinematics finish with their traversal stages.
    if (kernel_ == sched::KernelKind::kDynamicsGradient) {
        mm_ = sched::schedule_block_multiply(
            sched::mass_inverse_mask(*topo_),
            sched::derivative_mask(*topo_), params_.block_size,
            timing_.mm_units, timing_.tile,
            /*num_products=*/2);
    }

    resources_ = estimate_resources(params_, model_->num_links());
}

AcceleratorDesign::AcceleratorDesign(
    std::shared_ptr<const topology::RobotModel> model,
    std::shared_ptr<const topology::TopologyInfo> topo,
    std::shared_ptr<const sched::TaskGraph> graph,
    const AcceleratorParams &params, const TimingModel &timing,
    sched::KernelKind kernel, sched::Schedule fwd, sched::Schedule bwd,
    sched::Schedule pipelined, sched::BlockSchedule mm)
    : model_(std::move(model)), topo_(std::move(topo)), kernel_(kernel),
      params_(params), timing_(timing), graph_(std::move(graph)),
      fwd_(std::move(fwd)), bwd_(std::move(bwd)),
      pipelined_(std::move(pipelined)), mm_(std::move(mm))
{
    resources_ = estimate_resources(params_, model_->num_links());
}

std::int64_t
AcceleratorDesign::cycles_no_pipelining() const
{
    return fwd_.makespan + bwd_.makespan + mm_.makespan;
}

std::int64_t
AcceleratorDesign::cycles_pipelined() const
{
    return std::max({fwd_.makespan, bwd_.makespan, mm_.makespan});
}

std::int64_t
AcceleratorDesign::cycles_overlapped() const
{
    return pipelined_.makespan + mm_.makespan;
}

std::int64_t
AcceleratorDesign::cycles_batched(std::size_t batch) const
{
    if (batch == 0)
        return 0;
    return cycles_no_pipelining() +
           cycles_pipelined() * static_cast<std::int64_t>(batch - 1);
}

double
AcceleratorDesign::latency_us_batched(std::size_t batch) const
{
    return static_cast<double>(cycles_batched(batch)) * clock_period_ns() *
           1e-3;
}

double
clock_period_ns(const topology::TopologyMetrics &m)
{
    return 10.125 + 0.625 * static_cast<double>(m.max_leaf_depth) +
           0.5 * static_cast<double>(m.total_links);
}

double
AcceleratorDesign::clock_period_ns() const
{
    return accel::clock_period_ns(topo_->metrics());
}

double
AcceleratorDesign::latency_us_no_pipelining() const
{
    return static_cast<double>(cycles_no_pipelining()) * clock_period_ns() *
           1e-3;
}

double
AcceleratorDesign::latency_us_pipelined() const
{
    return static_cast<double>(cycles_pipelined()) * clock_period_ns() *
           1e-3;
}

} // namespace accel
} // namespace roboshape
