/**
 * @file
 * Implementation of the CRBA and forward-kinematics kernel simulators.
 */

#include "accel/kernel_sim.h"

#include <algorithm>

#include "sched/trace.h"
#include "spatial/spatial_inertia.h"

namespace roboshape {
namespace accel {

using sched::Placement;
using sched::TaskType;
using spatial::SpatialInertia;
using spatial::SpatialTransform;
using spatial::SpatialVector;
using topology::kBaseParent;

namespace {

/** Placements of the chosen composition, in execution order. */
std::vector<const Placement *>
ordered_placements(const AcceleratorDesign &design, SimOrder order)
{
    std::vector<const Placement *> out;
    if (order == SimOrder::kPipelined) {
        out.reserve(sched::live_placement_count(design.pipelined()));
        sched::append_in_execution_order(design.pipelined(), out);
    } else {
        out.reserve(sched::live_placement_count(design.forward_stage()) +
                    sched::live_placement_count(design.backward_stage()));
        sched::append_in_execution_order(design.forward_stage(), out);
        sched::append_in_execution_order(design.backward_stage(), out);
    }
    // The adversarial order runs the staged composition backwards so tests
    // can prove the hazard checker rejects dependency-violating orders.
    if (order == SimOrder::kAdversarialReversed)
        std::reverse(out.begin(), out.end());
    return out;
}

[[noreturn]] void
hazard(const std::string &what)
{
    throw DataHazardError("data hazard: " + what);
}

} // namespace

MassMatrixSimResult
simulate_mass_matrix(const AcceleratorDesign &design,
                     const linalg::Vector &q, SimOrder order)
{
    if (design.kernel() != sched::KernelKind::kMassMatrix)
        throw std::logic_error("design kernel is not kMassMatrix");
    const auto &model = design.model();
    const std::size_t n = model.num_links();

    std::vector<SpatialTransform> xup(n);
    std::vector<SpatialVector> s(n);
    // Child contributions accumulate separately from the link's own
    // inertia so a child's backward push can land before the parent's
    // setup task runs (legal under the pipelined composition).
    std::vector<SpatialInertia> ic_children(n);
    std::vector<SpatialInertia> ic_total(n);
    std::vector<SpatialVector> f_walk(n);
    std::vector<int> walk_link(n, -1);
    std::vector<bool> fwd_done(n, false), bwd_done(n, false);
    std::vector<bool> walk_done(n * n, false);

    MassMatrixSimResult result;
    result.mass.resize(n, n);

    for (const Placement *p : ordered_placements(design, order)) {
        const sched::Task &t = design.task_graph().task(p->task);
        const auto link = static_cast<std::size_t>(t.link);
        switch (t.type) {
          case TaskType::kRneaForward: {
            const auto &l = model.link(link);
            xup[link] = l.joint.transform(q[link]) * l.x_tree;
            s[link] = l.joint.motion_subspace();
            fwd_done[link] = true;
            break;
          }
          case TaskType::kRneaBackward: {
            if (!fwd_done[link])
                hazard("composite inertia before setup of link " +
                       std::to_string(link));
            for (int c : model.children(link))
                if (!bwd_done[c])
                    hazard("composite inertia before child of link " +
                           std::to_string(link));
            ic_total[link] = model.link(link).inertia + ic_children[link];
            const int parent = model.parent(link);
            if (parent != kBaseParent)
                ic_children[parent] =
                    ic_children[parent] +
                    ic_total[link].expressed_in_parent(xup[link]);
            bwd_done[link] = true;
            break;
          }
          case TaskType::kGradBackward: {
            const auto col = static_cast<std::size_t>(t.column);
            if (link == col) {
                if (!bwd_done[col])
                    hazard("force walk before composite inertia of link " +
                           std::to_string(col));
                f_walk[col] = ic_total[col].apply(s[col]);
            } else {
                const int prev = walk_link[col];
                if (prev < 0 ||
                    model.parent(prev) != static_cast<int>(link))
                    hazard("force walk out of order for column " +
                           std::to_string(col));
                if (!fwd_done[link])
                    hazard("force walk before setup of link " +
                           std::to_string(link));
                f_walk[col] = xup[static_cast<std::size_t>(prev)]
                                  .apply_transpose_to_force(f_walk[col]);
            }
            result.mass(col, link) = result.mass(link, col) =
                f_walk[col].dot(s[link]);
            walk_link[col] = static_cast<int>(link);
            walk_done[col * n + link] = true;
            break;
          }
          case TaskType::kGradForward:
            hazard("unexpected task type in a CRBA schedule");
        }
        ++result.tasks_executed;
    }
    return result;
}

KinematicsSimResult
simulate_forward_kinematics(const AcceleratorDesign &design,
                            const linalg::Vector &q,
                            const linalg::Vector &qd, SimOrder order)
{
    if (design.kernel() != sched::KernelKind::kForwardKinematics)
        throw std::logic_error("design kernel is not kForwardKinematics");
    const auto &model = design.model();
    const auto &topo = design.topology();
    const std::size_t n = model.num_links();

    KinematicsSimResult result;
    result.base_to_link.assign(n, SpatialTransform());
    result.velocities.assign(n, SpatialVector::zero());
    result.jacobians.assign(n, linalg::Matrix(6, n));

    std::vector<SpatialTransform> xup(n);
    std::vector<SpatialVector> s(n);
    std::vector<bool> fwd_done(n, false), jc_done(n, false);
    // carry[j * n + i]: column j's subspace expressed in link i's frame.
    std::vector<SpatialVector> carry(n * n);

    for (const Placement *p : ordered_placements(design, order)) {
        const sched::Task &t = design.task_graph().task(p->task);
        const auto link = static_cast<std::size_t>(t.link);
        const int parent = model.parent(link);
        switch (t.type) {
          case TaskType::kRneaForward: {
            if (parent != kBaseParent && !fwd_done[parent])
                hazard("pose before parent pose of link " +
                       std::to_string(link));
            const auto &l = model.link(link);
            xup[link] = l.joint.transform(q[link]) * l.x_tree;
            s[link] = l.joint.motion_subspace();
            const SpatialVector vj = s[link] * qd[link];
            if (parent == kBaseParent) {
                result.base_to_link[link] = xup[link];
                result.velocities[link] = vj;
            } else {
                result.base_to_link[link] =
                    xup[link] * result.base_to_link[parent];
                result.velocities[link] =
                    xup[link].apply(result.velocities[parent]) + vj;
            }
            fwd_done[link] = true;
            break;
          }
          case TaskType::kGradForward: {
            if (!fwd_done[link])
                hazard("jacobian before pose of link " +
                       std::to_string(link));
            if (parent != kBaseParent && !jc_done[parent])
                hazard("jacobian before parent jacobian of link " +
                       std::to_string(link));
            for (std::size_t j : topo.root_path(link)) {
                carry[j * n + link] =
                    j == link
                        ? s[link]
                        : xup[link].apply(
                              carry[j * n +
                                    static_cast<std::size_t>(parent)]);
                for (std::size_t r = 0; r < 6; ++r)
                    result.jacobians[link](r, j) = carry[j * n + link][r];
            }
            jc_done[link] = true;
            break;
          }
          default:
            hazard("unexpected task type in a kinematics schedule");
        }
        ++result.tasks_executed;
    }
    return result;
}

} // namespace accel
} // namespace roboshape
