/**
 * @file
 * Lane backend dispatch and the SoA marshal/demarshal layer.
 *
 * This TU is compiled into every build (including -DROBOSHAPE_SIMD=OFF):
 * the scalar fallback backend always exists, and the ISA kernels are only
 * referenced when their ROBOSHAPE_SIMD_HAVE_* macro says the matching
 * translation unit was compiled in.
 */

#include "accel/simd_lanes.h"

#include <atomic>
#include <cstdlib>

#include "accel/sim_engine.h"
#include "spatial/spatial_transform.h"
#include "spatial/spatial_vector.h"
#include "spatial/vec3.h"
#include "topology/robot_model.h"

namespace roboshape {
namespace accel {
namespace simd {

namespace {

// CPU feature probes (x86 only; false elsewhere).  One function per
// feature because __builtin_cpu_supports requires a literal argument.
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
// [[maybe_unused]]: with ROBOSHAPE_SIMD=OFF no ISA backend references
// the probes, and -Werror build configs must stay warning-free.
[[maybe_unused]] bool cpu_has_avx2()
{
    return __builtin_cpu_supports("avx2");
}
[[maybe_unused]] bool cpu_has_avx512f()
{
    return __builtin_cpu_supports("avx512f");
}
#else
[[maybe_unused]] bool cpu_has_avx2() { return false; }
[[maybe_unused]] bool cpu_has_avx512f() { return false; }
#endif

const LaneBackend kScalar{"scalar", 1, nullptr};
#ifdef ROBOSHAPE_SIMD_HAVE_GENERIC
const LaneBackend kGeneric{"generic", 4, &run_gradient_lanes_generic};
#endif
#ifdef ROBOSHAPE_SIMD_HAVE_AVX2
const LaneBackend kAvx2{"avx2", 4, &run_gradient_lanes_avx2};
#endif
#ifdef ROBOSHAPE_SIMD_HAVE_AVX512
const LaneBackend kAvx512{"avx512", 8, &run_gradient_lanes_avx512};
#endif

/** Widest backend this build + CPU supports (the "auto" policy). */
const LaneBackend *
detect()
{
#ifdef ROBOSHAPE_SIMD_HAVE_AVX512
    if (cpu_has_avx512f())
        return &kAvx512;
#endif
#ifdef ROBOSHAPE_SIMD_HAVE_AVX2
    if (cpu_has_avx2())
        return &kAvx2;
#endif
    return &kScalar;
}

/** Backend by name, nullptr when not compiled in / not supported here. */
const LaneBackend *
by_name(std::string_view name)
{
    if (name == "off" || name == "scalar")
        return &kScalar;
#ifdef ROBOSHAPE_SIMD_HAVE_GENERIC
    if (name == "generic")
        return &kGeneric;
#endif
#ifdef ROBOSHAPE_SIMD_HAVE_AVX2
    if (name == "avx2" && cpu_has_avx2())
        return &kAvx2;
#endif
#ifdef ROBOSHAPE_SIMD_HAVE_AVX512
    if (name == "avx512" && cpu_has_avx512f())
        return &kAvx512;
#endif
    if (name == "auto")
        return detect();
    return nullptr;
}

std::atomic<const LaneBackend *> g_active{nullptr};

} // namespace

const LaneBackend &
lane_backend()
{
    const LaneBackend *b = g_active.load(std::memory_order_acquire);
    if (!b) {
        const char *env = std::getenv("ROBOSHAPE_SIMD");
        const LaneBackend *resolved = env ? by_name(env) : nullptr;
        if (!resolved)
            resolved = detect(); // unset or unrecognized value: auto
        // First resolver wins; a concurrent set_lane_backend still takes
        // effect for later loads.
        const LaneBackend *expected = nullptr;
        g_active.compare_exchange_strong(expected, resolved,
                                         std::memory_order_acq_rel);
        b = g_active.load(std::memory_order_acquire);
    }
    return *b;
}

bool
set_lane_backend(std::string_view name)
{
    const LaneBackend *b = name == "auto" ? detect() : by_name(name);
    if (!b)
        return false;
    g_active.store(b, std::memory_order_release);
    return true;
}

std::vector<const LaneBackend *>
available_lane_backends()
{
    // Reserve + push_back rather than list-init: GCC 12 under
    // -fsanitize=undefined emits a spurious -Warray-bounds for the
    // one-element initializer_list backing array here.
    std::vector<const LaneBackend *> out;
    out.reserve(4);
    out.push_back(&kScalar);
#ifdef ROBOSHAPE_SIMD_HAVE_GENERIC
    out.push_back(&kGeneric);
#endif
#ifdef ROBOSHAPE_SIMD_HAVE_AVX2
    if (cpu_has_avx2())
        out.push_back(&kAvx2);
#endif
#ifdef ROBOSHAPE_SIMD_HAVE_AVX512
    if (cpu_has_avx512f())
        out.push_back(&kAvx512);
#endif
    return out;
}

void
marshal_gradient_group([[maybe_unused]] const topology::RobotModel &model,
                       std::size_t n, std::size_t width,
                       const InputPacket *packets, LaneWorkspace &ws)
{
    const std::size_t W = width;
    ws.q.resize(n * W);
    ws.qd.resize(n * W);
    ws.qdd.resize(n * W);
    ws.abase.resize(6 * W);
    ws.minv.resize(n * n * W);
    ws.xup_e.resize(n * 9 * W);
    ws.xup_r.resize(n * 3 * W);
    ws.v.resize(n * 6 * W);
    ws.a.resize(n * 6 * W);
    ws.f.resize(n * 6 * W);
    ws.dv.resize(n * n * 6 * W);
    ws.da.resize(n * n * 6 * W);
    ws.df.resize(n * n * 6 * W);
    ws.tau.resize(n * W);
    ws.dtau_dq.resize(n * n * W);
    ws.dtau_dqd.resize(n * n * W);
    ws.dqdd_dq.resize(n * n * W);
    ws.dqdd_dqd.resize(n * n * W);

    // Transposition runs element-major: the inner loops walk the lanes,
    // so every store fills one contiguous W-wide lane row (one cache
    // line at W == 8) while the reads advance sequentially inside each
    // packet.  A lane-major loop order would instead land every store
    // W*8 bytes from the previous one — a different cache line each
    // time — and the scatter cost then rivals the kernel itself on
    // robots whose compute is cheap.  (The resize preamble above is the
    // grow-only cold setup — AlignedBuffer::resize reallocates only on
    // capacity growth; the loops below are the warm transposition.)
    // lint: warm-path begin
    for (std::size_t i = 0; i < n; ++i) {
        double *qi = ws.q.data() + i * W;
        double *qdi = ws.qd.data() + i * W;
        double *qddi = ws.qdd.data() + i * W;
        for (std::size_t l = 0; l < W; ++l) {
            qi[l] = (*packets[l].q)[i];
            qdi[l] = (*packets[l].qd)[i];
            qddi[l] = (*packets[l].qdd)[i];
        }
    }
    // xup_e / xup_r are sized here but filled by the lane kernel itself:
    // the X_J(q) * X_tree compositions vectorize across lanes (only the
    // sin/cos calls stay scalar), so they belong in the per-ISA TU.
    for (std::size_t l = 0; l < W; ++l) {
        const spatial::SpatialVector a_base(spatial::Vec3::zero(),
                                            -packets[l].gravity);
        for (std::size_t k = 0; k < 6; ++k)
            ws.abase.data()[k * W + l] = a_base[k];
    }
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) {
            double *dst = ws.minv.data() + (r * n + c) * W;
            for (std::size_t l = 0; l < W; ++l)
                dst[l] = (*packets[l].minv)(r, c);
        }
    }
    // lint: warm-path end
}

void
demarshal_gradient_group(std::size_t n, std::size_t width, std::size_t tasks,
                         const LaneWorkspace &ws, EngineResult *out)
{
    const std::size_t W = width;
    // lint: warm-path begin
    for (std::size_t l = 0; l < W; ++l) {
        EngineResult &o = out[l];
        // Cold on first touch only: a warm EngineResult is already n-sized.
        o.tau.resize(n); // NOLINT(no-alloc-warm-path)
        o.mm_stats.block_macs =
            ws.stats_q.block_macs[l] + ws.stats_qd.block_macs[l];
        o.mm_stats.block_nops =
            ws.stats_q.block_nops[l] + ws.stats_qd.block_nops[l];
        o.mm_stats.scalar_macs =
            ws.stats_q.scalar_macs[l] + ws.stats_qd.scalar_macs[l];
        o.tasks_executed = tasks;
    }
    for (std::size_t i = 0; i < n; ++i) {
        const double *src = ws.tau.data() + i * W;
        for (std::size_t l = 0; l < W; ++l)
            out[l].tau[i] = src[l];
    }
    // Element-major untransposition, mirror-image of the marshal: each
    // inner lane loop reads one contiguous W-wide lane row and scatters
    // it across the per-packet result matrices, whose row-major storage
    // is advanced sequentially by the outer element loop.
    const auto scatter = [&](const AlignedBuffer &src,
                             linalg::Matrix EngineResult::*field) {
        double *dst[kMaxLaneWidth];
        for (std::size_t l = 0; l < W; ++l) {
            linalg::Matrix &m = out[l].*field;
            if (m.rows() != n || m.cols() != n)
                m.resize(n, n); // NOLINT(no-alloc-warm-path) cold first touch
            dst[l] = m.data().data();
        }
        for (std::size_t k = 0; k < n * n; ++k) {
            const double *row = src.data() + k * W;
            for (std::size_t l = 0; l < W; ++l)
                dst[l][k] = row[l];
        }
    };
    scatter(ws.dtau_dq, &EngineResult::dtau_dq);
    scatter(ws.dtau_dqd, &EngineResult::dtau_dqd);
    scatter(ws.dqdd_dq, &EngineResult::dqdd_dq);
    scatter(ws.dqdd_dqd, &EngineResult::dqdd_dqd);
    // lint: warm-path end
}

} // namespace simd
} // namespace accel
} // namespace roboshape
