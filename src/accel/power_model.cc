/**
 * @file
 * Implementation of the power model.
 */

#include "accel/power_model.h"

#include <algorithm>

namespace roboshape {
namespace accel {

namespace {

/** Busy cycles per PE of one pool in a stage schedule. */
std::vector<std::int64_t>
busy_cycles(const sched::Schedule &schedule, sched::PeClass cls,
            std::size_t pool_size)
{
    std::vector<std::int64_t> busy(pool_size, 0);
    for (const sched::Placement &p : schedule.placements) {
        if (p.task == sched::kNoTask || p.pe_class != cls)
            continue;
        busy[static_cast<std::size_t>(p.pe)] += p.finish - p.start;
    }
    return busy;
}

} // namespace

PowerReport
estimate_power(const AcceleratorDesign &design, const PowerParams &params)
{
    PowerReport report;
    const double total_cycles =
        static_cast<double>(design.cycles_no_pipelining());
    if (total_cycles <= 0.0)
        return report;

    const auto fwd_busy = busy_cycles(design.forward_stage(),
                                      sched::PeClass::kForward,
                                      design.params().pes_fwd);
    const auto bwd_busy = busy_cycles(design.backward_stage(),
                                      sched::PeClass::kBackward,
                                      design.params().pes_bwd);

    // Utilization is measured against the whole computation: a forward PE
    // sits idle through the backward and multiply stages (that idleness is
    // exactly what gating reclaims).
    double busy_sum = 0.0;
    for (std::int64_t b : fwd_busy) {
        report.forward_utilization.push_back(
            static_cast<double>(b) / total_cycles);
        busy_sum += static_cast<double>(b);
    }
    for (std::int64_t b : bwd_busy) {
        report.backward_utilization.push_back(
            static_cast<double>(b) / total_cycles);
        busy_sum += static_cast<double>(b);
    }
    const double pes =
        static_cast<double>(design.params().pes_fwd +
                            design.params().pes_bwd);
    report.mean_pe_utilization = busy_sum / (total_cycles * pes);

    // Energy in mW * cycles, converted with the synthesized clock.
    const double idle_sum = total_cycles * pes - busy_sum;
    const double mm_cycles =
        static_cast<double>(design.block_multiply().makespan);
    const double mm_units = static_cast<double>(design.timing().mm_units);

    const double mwc_active = busy_sum * params.pe_active_mw +
                              mm_cycles * mm_units * params.mm_unit_mw +
                              total_cycles * params.base_mw;
    const double mwc_plain = mwc_active + idle_sum * params.pe_idle_mw;
    const double mwc_gated = mwc_active + idle_sum * params.pe_gated_mw;

    const double cycle_s = design.clock_period_ns() * 1e-9;
    // mW * cycles * s/cycle = mW*s = uJ * 1e3 -> divide by 1e3 for uJ.
    report.energy_uj = mwc_plain * cycle_s * 1e3;
    report.energy_gated_uj = mwc_gated * cycle_s * 1e3;
    report.avg_power_mw = mwc_plain / total_cycles;
    report.avg_power_gated_mw = mwc_gated / total_cycles;
    return report;
}

} // namespace accel
} // namespace roboshape
