/**
 * @file
 * FPGA platform resource envelopes (paper Sec. 5.5).
 */

#ifndef ROBOSHAPE_ACCEL_PLATFORM_H
#define ROBOSHAPE_ACCEL_PLATFORM_H

#include <cstdint>
#include <string>

namespace roboshape {
namespace accel {

/** Resource envelope of a deployment platform. */
struct FpgaPlatform
{
    std::string name;
    std::int64_t luts = 0;
    std::int64_t dsps = 0;
};

/** Xilinx VCU118 board (XCVU9P part) — the paper's primary target. */
const FpgaPlatform &vcu118();

/** Xilinx VC707 board — the paper's constrained second target. */
const FpgaPlatform &vc707();

/** Utilization threshold used for feasibility (paper Sec. 5.5: 80%). */
inline constexpr double kUtilizationThreshold = 0.8;

} // namespace accel
} // namespace roboshape

#endif // ROBOSHAPE_ACCEL_PLATFORM_H
