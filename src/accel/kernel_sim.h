/**
 * @file
 * Functional simulators for the non-gradient kernels (paper Table 1).
 *
 * Same philosophy as functional_sim.h: execute the generated schedules
 * task-by-task on real data with read-before-write hazard checks, so the
 * schedules are proven correct by producing numerically identical results
 * to the host library (CRBA / forward kinematics).
 */

#ifndef ROBOSHAPE_ACCEL_KERNEL_SIM_H
#define ROBOSHAPE_ACCEL_KERNEL_SIM_H

#include <vector>

#include "accel/design.h"
#include "accel/functional_sim.h"
#include "linalg/matrix.h"
#include "spatial/spatial_transform.h"

namespace roboshape {
namespace accel {

/** Output of a simulated mass-matrix (CRBA) accelerator run. */
struct MassMatrixSimResult
{
    linalg::Matrix mass; ///< The N x N joint-space mass matrix.
    std::size_t tasks_executed = 0;
};

/**
 * Runs a kMassMatrix design on @p q.
 * @throws DataHazardError on schedule dependency violations;
 * @throws std::logic_error when the design's kernel is not kMassMatrix.
 */
MassMatrixSimResult simulate_mass_matrix(const AcceleratorDesign &design,
                                         const linalg::Vector &q,
                                         SimOrder order = SimOrder::kStaged);

/** Output of a simulated forward-kinematics accelerator run. */
struct KinematicsSimResult
{
    /** Base-to-link transforms per link. */
    std::vector<spatial::SpatialTransform> base_to_link;
    /** Link spatial velocities. */
    std::vector<spatial::SpatialVector> velocities;
    /** Geometric Jacobian (6 x N) of every link, in link coordinates. */
    std::vector<linalg::Matrix> jacobians;
    std::size_t tasks_executed = 0;
};

/**
 * Runs a kForwardKinematics design on (q, qd).
 * @throws DataHazardError / std::logic_error as above.
 */
KinematicsSimResult
simulate_forward_kinematics(const AcceleratorDesign &design,
                            const linalg::Vector &q,
                            const linalg::Vector &qd,
                            SimOrder order = SimOrder::kStaged);

} // namespace accel
} // namespace roboshape

#endif // ROBOSHAPE_ACCEL_KERNEL_SIM_H
