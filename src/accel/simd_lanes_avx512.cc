/**
 * @file
 * 8-wide lane kernel compiled with -mavx512f/vl/dq (see
 * src/accel/CMakeLists.txt; -ffp-contract=off keeps it bit-exact).  Only
 * ever called after __builtin_cpu_supports("avx512f") verified the host.
 */

#define ROBOSHAPE_LANE_IMPL_WIDTH 8
#define ROBOSHAPE_LANE_IMPL_FN run_gradient_lanes_avx512
#include "accel/simd_lanes_impl.inl"
