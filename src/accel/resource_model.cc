/**
 * @file
 * Implementation of the resource model and platform constants.
 */

#include "accel/resource_model.h"

#include <cmath>

namespace roboshape {
namespace accel {

const FpgaPlatform &
vcu118()
{
    static const FpgaPlatform kPlatform{"VCU118 (XCVU9P)", 1182000, 6840};
    return kPlatform;
}

const FpgaPlatform &
vc707()
{
    static const FpgaPlatform kPlatform{"VC707", 303600, 2800};
    return kPlatform;
}

std::string
AcceleratorParams::to_string() const
{
    return "PEs_fwd=" + std::to_string(pes_fwd) +
           " PEs_bwd=" + std::to_string(pes_bwd) +
           " size_block=" + std::to_string(block_size);
}

const TimingModel &
default_timing()
{
    static const TimingModel kDefault{};
    return kDefault;
}

bool
ResourceEstimate::fits(const FpgaPlatform &platform, double threshold) const
{
    return luts <= platform.luts * threshold &&
           dsps <= platform.dsps * threshold;
}

double
ResourceEstimate::lut_utilization(const FpgaPlatform &platform) const
{
    return static_cast<double>(luts) / static_cast<double>(platform.luts);
}

double
ResourceEstimate::dsp_utilization(const FpgaPlatform &platform) const
{
    return static_cast<double>(dsps) / static_cast<double>(platform.dsps);
}

ResourceEstimate
estimate_resources(const AcceleratorParams &params, std::size_t num_links)
{
    const double pes = static_cast<double>(params.pes_fwd + params.pes_bwd);
    const double b = static_cast<double>(params.block_size);
    const double n = static_cast<double>(num_links);

    ResourceEstimate r;
    r.dsps = std::llround(285.70968 * pes + 11.870968 * b * b + 866.38710);
    r.luts = std::llround(1034.1255843047122 * pes *
                              std::pow(n, 1.7084640091346546) +
                          300.0 * b * b * b + 9378.981806026946);
    return r;
}

ResourceEstimate
estimate_rc_resources(std::size_t num_links)
{
    // RC instantiates one forward and one backward per-link datapath per
    // link with fully unrolled schedules: resources scale linearly with N,
    // anchored at the published iiwa (N=7) utilization.
    ResourceEstimate r;
    r.dsps = std::llround(757.3 * static_cast<double>(num_links));
    r.luts = std::llround(82740.0 * static_cast<double>(num_links));
    return r;
}

} // namespace accel
} // namespace roboshape
