/**
 * @file
 * SIMD batch lanes for the compiled simulation engine (docs/SIM_ENGINE.md
 * § "SIMD batch lanes").
 *
 * SimEngine::run_batch streams many independent InputPackets through one
 * compiled op trace.  The trace is *uniform* across packets — which ops
 * run, in which order, reading which links — only the floating-point data
 * differs.  That is textbook data-level parallelism: this layer re-lays a
 * group of W packets out as structure-of-arrays ("lane-major": the W
 * copies of each scalar quantity sit contiguously, 64-byte aligned) and
 * executes every compiled op once for all W packets with W-wide vector
 * arithmetic.
 *
 * Exactness policy (the part that makes this safe to deploy):
 *
 *  - The lane kernels mirror the scalar interpreter's expression trees
 *    operation for operation — same multiplies, same adds, same
 *    association order, evaluated per lane by IEEE-754 vector instructions
 *    that round exactly like their scalar counterparts.  The lane TUs are
 *    compiled with -ffp-contract=off so the compiler cannot fuse a*b+c
 *    into an FMA (which would change rounding).  Under this policy lane
 *    results are BIT-IDENTICAL to the scalar path, packet for packet, and
 *    the tests/gates assert exactly that (0 ulp).
 *
 *  - Any future relaxation (e.g. enabling FMA in the lane kernels) must
 *    raise the documented ulp bound in bench/sim_throughput's lane gate
 *    and docs/SIM_ENGINE.md in the same change.  The scalar path is and
 *    stays the byte-exact reference against the legacy simulators.
 *
 * Backend selection is a one-time runtime dispatch: AVX-512 (8 lanes) when
 * the CPU has it, else AVX2 (4 lanes), else the plain scalar path.  A
 * "generic" 4-lane backend compiled without any ISA flags exists for tests
 * and non-x86 hosts.  The ROBOSHAPE_SIMD environment variable
 * (off|scalar|generic|avx2|avx512|auto) overrides detection; building with
 * -DROBOSHAPE_SIMD=OFF (CMake) compiles the lane kernels out entirely and
 * run_batch always takes the scalar path.
 */

#ifndef ROBOSHAPE_ACCEL_SIMD_LANES_H
#define ROBOSHAPE_ACCEL_SIMD_LANES_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <string_view>
#include <vector>

namespace roboshape {

namespace spatial {
struct SpatialVector;
}
namespace topology {
class RobotModel;
}

namespace accel {

struct EngineOp;
struct InputPacket;
struct EngineResult;

namespace simd {

/** Widest lane group any backend uses (AVX-512: 8 doubles per zmm). */
inline constexpr std::size_t kMaxLaneWidth = 8;

/** Alignment of every lane-major buffer (one full AVX-512 cache line). */
inline constexpr std::size_t kLaneAlign = 64;

/**
 * Grow-only 64-byte-aligned double buffer.  resize() only reallocates
 * when capacity is insufficient, so a warm lane workspace performs zero
 * heap allocations — the same steady-state guarantee as the scalar
 * Workspace.  Contents after resize() are unspecified; the kernels
 * overwrite or zero-fill what they read.
 */
class AlignedBuffer
{
  public:
    AlignedBuffer() = default;

    double *data() noexcept { return ptr_.get(); }
    const double *data() const noexcept { return ptr_.get(); }
    std::size_t size() const noexcept { return size_; }

    void resize(std::size_t n)
    {
        if (n > capacity_) {
            ptr_.reset(static_cast<double *>(::operator new[](
                n * sizeof(double), std::align_val_t(kLaneAlign))));
            capacity_ = n;
        }
        size_ = n;
    }

  private:
    struct Deleter
    {
        void operator()(double *p) const noexcept
        {
            ::operator delete[](p, std::align_val_t(kLaneAlign));
        }
    };
    std::unique_ptr<double[], Deleter> ptr_;
    std::size_t size_ = 0;
    std::size_t capacity_ = 0;
};

/** Per-lane blocked-multiply operation counts (mirrors BlockMultiplyStats). */
struct LaneStats
{
    std::array<std::uint64_t, kMaxLaneWidth> block_macs{};
    std::array<std::uint64_t, kMaxLaneWidth> block_nops{};
    std::array<std::uint64_t, kMaxLaneWidth> scalar_macs{};
};

/**
 * Structure-of-arrays state for one lane group of W packets.  Every buffer
 * is lane-major: the scalar quantity with flat index k for lane l lives at
 * data()[k * W + l], so one W-wide vector load reads quantity k for every
 * packet of the group at once.  Flat indices follow the scalar Workspace:
 * per-link spatial vectors use k = link*6 + component, per-column
 * derivative states k = (column*n + link)*6 + component, matrices
 * k = row*cols + col.
 *
 * Buffers are grown by marshal_gradient_group() and reused forever after
 * (allocation-free once warm).  One LaneWorkspace may be used by one
 * thread at a time.
 */
struct LaneWorkspace
{
    // Marshaled inputs.
    AlignedBuffer q, qd, qdd; ///< n x W each.
    AlignedBuffer abase;      ///< Base acceleration (-gravity), 6 x W.
    AlignedBuffer minv;       ///< Host M^-1, n*n x W.
    AlignedBuffer xup_e;      ///< Joint transform rotations, n*9 x W.
    AlignedBuffer xup_r;      ///< Joint transform translations, n*3 x W.
    // Interpreter state (mirrors SimEngine::Workspace).
    AlignedBuffer v, a, f;    ///< n*6 x W each.
    AlignedBuffer dv, da, df; ///< n*n*6 x W each.
    // Outputs, demarshaled into EngineResults after the kernel runs.
    AlignedBuffer tau;                  ///< n x W.
    AlignedBuffer dtau_dq, dtau_dqd;    ///< n*n x W each.
    AlignedBuffer dqdd_dq, dqdd_dqd;    ///< n*n x W each.
    // Blocked-multiply tile masks: bit l of entry (br*bcols + bc) is set
    // when lane l's tile (br, bc) holds a nonzero element.
    std::vector<std::uint8_t> minv_mask, dq_mask, dqd_mask;
    LaneStats stats_q, stats_qd;
};

/**
 * Read-only view of one engine's compiled gradient trace, handed to the
 * lane kernels.  All pointers borrow from the engine and stay valid for
 * its lifetime; the trace is uniform across lanes by construction.
 */
struct GradientTraceView
{
    const EngineOp *trace = nullptr;
    std::size_t trace_size = 0;
    const EngineOp *velocity_trace = nullptr;
    std::size_t velocity_size = 0;
    const std::int32_t *root_paths = nullptr;
    const spatial::SpatialVector *s = nullptr; ///< Motion subspaces, n.
    const topology::RobotModel *model = nullptr;
    std::size_t n = 0;
    std::size_t block_size = 0; ///< -M^-1 multiply tile edge.
};

/** Executes the gradient trace for one marshaled lane group. */
using GradientLaneFn = void (*)(const GradientTraceView &, LaneWorkspace &);

/**
 * One selectable lane backend.  width == 1 (gradient == nullptr) is the
 * scalar fallback: run_batch executes packets one at a time through the
 * reference interpreter.
 */
struct LaneBackend
{
    const char *name = "scalar";
    std::size_t width = 1;
    GradientLaneFn gradient = nullptr;
};

/**
 * The active backend.  Resolved once on first use: the ROBOSHAPE_SIMD
 * environment variable when set (off|scalar|generic|avx2|avx512|auto),
 * else the widest ISA this CPU supports among the compiled-in kernels,
 * else scalar.  Thread-safe; the result is cached.
 */
const LaneBackend &lane_backend();

/**
 * Overrides the active backend by name ("auto" re-runs detection without
 * consulting the environment).  Returns false — leaving the selection
 * unchanged — when the named backend was not compiled in or the CPU lacks
 * its ISA.  Intended for tests and benches; do not call concurrently with
 * run_batch.
 */
bool set_lane_backend(std::string_view name);

/** Backends usable on this build + CPU, scalar first, widest last. */
std::vector<const LaneBackend *> available_lane_backends();

/**
 * Transposes W gradient packets into @p ws (lane-major SoA), growing its
 * buffers on first use.  The xup buffers are sized but not filled: the
 * per-link joint transforms X_up = X_joint(q) * X_tree are built inside
 * the lane kernel, where the 3x3 compositions vectorize across lanes
 * (only sin/cos stay scalar).  @p packets must hold @p width validated
 * gradient packets.
 */
void marshal_gradient_group(const topology::RobotModel &model,
                            std::size_t n, std::size_t width,
                            const InputPacket *packets, LaneWorkspace &ws);

/**
 * Scatters one executed lane group back into per-packet EngineResults,
 * sizing result fields exactly like the scalar path.  @p tasks is the
 * engine's trace length (position + velocity passes).
 */
void demarshal_gradient_group(std::size_t n, std::size_t width,
                              std::size_t tasks, const LaneWorkspace &ws,
                              EngineResult *out);

// Per-ISA kernel entry points (defined in simd_lanes_<isa>.cc; only the
// ones compiled into this build are referenced by the dispatcher).
void run_gradient_lanes_generic(const GradientTraceView &, LaneWorkspace &);
void run_gradient_lanes_avx2(const GradientTraceView &, LaneWorkspace &);
void run_gradient_lanes_avx512(const GradientTraceView &, LaneWorkspace &);

} // namespace simd
} // namespace accel
} // namespace roboshape

#endif // ROBOSHAPE_ACCEL_SIMD_LANES_H
