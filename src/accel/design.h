/**
 * @file
 * A generated RoboShape accelerator design.
 *
 * Ties together everything the generator produces for one (robot, knobs)
 * pair: the topology-derived task graph, the per-stage and pipelined
 * schedules, the blocked-multiply schedule, the clock-period model, and the
 * resource estimate.  This is the object the framework's code generator
 * lowers to Verilog and the functional simulator executes.
 */

#ifndef ROBOSHAPE_ACCEL_DESIGN_H
#define ROBOSHAPE_ACCEL_DESIGN_H

#include <cstdint>
#include <memory>

#include "accel/params.h"
#include "accel/resource_model.h"
#include "sched/block_schedule.h"
#include "sched/list_scheduler.h"
#include "sched/task_graph.h"
#include "topology/robot_model.h"
#include "topology/topology_info.h"

namespace roboshape {
namespace accel {

/**
 * Synthesized clock period of a design for a robot with shape metrics
 * @p m.  The input-marshalling critical path has two contributors: the
 * longest forward thread a PE sequences through (bounded by the deepest
 * leaf) and the per-link operand mux fan-in (grows with N).  Coefficients
 * are calibrated to the paper's synthesized periods — exactly 18/18/22 ns
 * for the shipped iiwa/HyQ/Baxter designs (paper Sec. 5.1).
 */
double clock_period_ns(const topology::TopologyMetrics &m);

class AcceleratorDesign
{
  public:
    /**
     * Generates a design for @p model with knobs @p params.
     * The model is copied (to stable storage, so designs stay valid when
     * moved) and the design is fully self-contained.
     */
    AcceleratorDesign(topology::RobotModel model,
                      const AcceleratorParams &params,
                      const TimingModel &timing = default_timing(),
                      sched::KernelKind kernel =
                          sched::KernelKind::kDynamicsGradient);

    /**
     * Composes a design from schedules somebody else already computed —
     * the cheap construction path behind core::SweepContext, where one
     * (robot, timing) pair shares the topology, the task graph, and the
     * memoized per-knob schedules across thousands of designs.
     *
     * Contract: @p topo must be built from @p model, @p graph from
     * (@p topo, @p kernel), and the schedules must equal what the
     * generating constructor would compute for (@p graph, @p params,
     * @p timing); @p mm is the default (empty) schedule for kernels
     * without a blocked-multiply stage.
     */
    AcceleratorDesign(std::shared_ptr<const topology::RobotModel> model,
                      std::shared_ptr<const topology::TopologyInfo> topo,
                      std::shared_ptr<const sched::TaskGraph> graph,
                      const AcceleratorParams &params,
                      const TimingModel &timing, sched::KernelKind kernel,
                      sched::Schedule fwd, sched::Schedule bwd,
                      sched::Schedule pipelined, sched::BlockSchedule mm);

    const topology::RobotModel &model() const { return *model_; }

    /** Kernel family this accelerator computes (paper Table 1). */
    sched::KernelKind kernel() const { return kernel_; }
    const topology::TopologyInfo &topology() const { return *topo_; }
    const AcceleratorParams &params() const { return params_; }
    const TimingModel &timing() const { return timing_; }
    const sched::TaskGraph &task_graph() const { return *graph_; }

    /** Stage schedules (No-Pipelining composition). */
    const sched::Schedule &forward_stage() const { return fwd_; }
    const sched::Schedule &backward_stage() const { return bwd_; }
    /** Joint schedule with cross-stage overlap. */
    const sched::Schedule &pipelined() const { return pipelined_; }
    /** Blocked mass-matrix multiply schedule. */
    const sched::BlockSchedule &block_multiply() const { return mm_; }

    /** Latency with stage latencies added (paper Fig. 9, No Pipelining). */
    std::int64_t cycles_no_pipelining() const;

    /**
     * Average per-computation latency in steady state with pipelining
     * between stages: the initiation interval, i.e. the slowest stage.
     */
    std::int64_t cycles_pipelined() const;

    /** Single-computation latency with cross-stage overlap. */
    std::int64_t cycles_overlapped() const;

    /**
     * Latency of @p batch computations streamed back to back through the
     * pipelined stages: the first at full latency, each further one at the
     * initiation interval (the paper's multi-time-step coprocessor
     * pattern, Sec. 5.2).
     */
    std::int64_t cycles_batched(std::size_t batch) const;

    /** Microseconds for a batch of @p batch computations. */
    double latency_us_batched(std::size_t batch) const;

    /**
     * Synthesized clock period.  The critical path runs through the input
     * data marshalling logic controlled by the forward-pass schedule, so
     * the period grows with that schedule's length (paper Sec. 5.1).
     */
    double clock_period_ns() const;

    double latency_us_no_pipelining() const;
    double latency_us_pipelined() const;

    const ResourceEstimate &resources() const { return resources_; }

  private:
    // Shared (not unique) so sweep-built designs can alias one
    // topology/task-graph instance; each is immutable after construction.
    std::shared_ptr<const topology::RobotModel> model_;
    std::shared_ptr<const topology::TopologyInfo> topo_;
    sched::KernelKind kernel_ = sched::KernelKind::kDynamicsGradient;
    AcceleratorParams params_;
    TimingModel timing_;
    std::shared_ptr<const sched::TaskGraph> graph_;
    sched::Schedule fwd_;
    sched::Schedule bwd_;
    sched::Schedule pipelined_;
    sched::BlockSchedule mm_;
    ResourceEstimate resources_;
};

} // namespace accel
} // namespace roboshape

#endif // ROBOSHAPE_ACCEL_DESIGN_H
