/**
 * @file
 * Hardware generation: emit Verilog for every bundled robot.
 *
 * Produces the artifact the paper's open-source flow ships — one top
 * module plus testbench per robot, with the topology-derived schedules
 * baked into per-PE ROMs.  Files land in ./generated_rtl (or argv[1]).
 *
 * Usage: ./build/examples/emit_verilog [output_dir]
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "codegen/verilog_emitter.h"
#include "core/generator.h"
#include "topology/robot_library.h"

int
main(int argc, char **argv)
{
    using namespace roboshape;

    const std::string out_dir = argc > 1 ? argv[1] : "generated_rtl";
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    if (ec) {
        std::cerr << "cannot create " << out_dir << ": " << ec.message()
                  << "\n";
        return 1;
    }

    core::GeneratorConstraints constraints;
    constraints.platform = &accel::vcu118();
    const core::Generator generator;

    // Shared datapath cell library, once per bundle.
    {
        std::ofstream cells(out_dir + "/roboshape_cells.v");
        cells << codegen::emit_cell_library();
        std::printf("cell library -> %s/roboshape_cells.v\n",
                    out_dir.c_str());
    }

    for (topology::RobotId id : topology::all_robots()) {
        const auto generated = generator.from_model(
            topology::build_robot(id), constraints);
        const std::string base =
            out_dir + "/" + codegen::module_name(generated.design);

        std::ofstream top(base + ".v");
        top << codegen::emit_verilog(generated.design);
        std::ofstream tb(base + "_tb.v");
        tb << codegen::emit_testbench(generated.design);

        std::printf("%-10s -> %s.v (+_tb.v)  [%s, %lld cycles @ %.0f ns]\n",
                    topology::robot_name(id), base.c_str(),
                    generated.design.params().to_string().c_str(),
                    static_cast<long long>(
                        generated.design.cycles_no_pipelining()),
                    generated.design.clock_period_ns());
    }
    return 0;
}
