/**
 * @file
 * Trajectory optimization end to end — the workload the accelerator is
 * for.
 *
 * Solves a joint-space reaching task with the repository's iLQR solver on
 * a chosen robot, prints the convergence history, breaks down where the
 * solver's time goes (the paper's 30-90% gradient-bottleneck claim), and
 * projects the wall-clock the RoboShape accelerator would recover.
 *
 * Usage: ./build/examples/trajectory_optimization [iiwa|hyq|baxter]
 *        [horizon]
 */

#include <cmath>
#include <cstdio>
#include <string>

#include "core/parse_uint.h"

#include "accel/design.h"
#include "baselines/cpu_baseline.h"
#include "control/accel_linearizer.h"
#include "control/ilqr.h"
#include "io/link_model.h"
#include "io/payload.h"
#include "topology/robot_library.h"
#include "topology/topology_info.h"

int
main(int argc, char **argv)
{
    using namespace roboshape;

    topology::RobotId id = topology::RobotId::kIiwa;
    accel::AcceleratorParams knobs{7, 7, 7};
    if (argc > 1 && std::string(argv[1]) == "hyq") {
        id = topology::RobotId::kHyq;
        knobs = {3, 3, 6};
    } else if (argc > 1 && std::string(argv[1]) == "baxter") {
        id = topology::RobotId::kBaxter;
        knobs = {4, 4, 4};
    }
    std::size_t horizon = 24;
    if (argc > 2) {
        const auto parsed = core::parse_uint(argv[2], 1, 4096);
        if (!parsed) {
            std::fprintf(stderr,
                         "horizon must be a plain decimal in [1, 4096], "
                         "got '%s'\n",
                         argv[2]);
            return 1;
        }
        horizon = static_cast<std::size_t>(*parsed);
    }

    const topology::RobotModel model = topology::build_robot(id);
    const topology::TopologyInfo topo(model);
    const std::size_t n = model.num_links();
    std::printf("=== iLQR reach on %s (N=%zu, horizon %zu) ===\n",
                topology::robot_name(id), n, horizon);

    control::IlqrProblem problem;
    problem.q0 = linalg::Vector(n);
    problem.qd0 = linalg::Vector(n);
    problem.q_goal = linalg::Vector(n);
    for (std::size_t i = 0; i < n; ++i)
        problem.q_goal[i] = 0.4 - 0.02 * static_cast<double>(i);
    problem.horizon = horizon;
    problem.dt = 0.02;

    control::IlqrOptions options;
    options.max_iterations = 30;
    const control::IlqrResult r =
        control::solve_ilqr(model, topo, problem, options);

    std::printf("converged=%s after %zu iterations\n",
                r.converged ? "yes" : "no", r.iterations);
    std::printf("cost history:");
    for (std::size_t k = 0; k < r.cost_history.size(); ++k)
        std::printf(" %.3g", r.cost_history[k]);
    std::printf("\nfinal joint error:");
    for (std::size_t i = 0; i < n; ++i)
        std::printf(" %+.3f", r.states.back()[i] - problem.q_goal[i]);
    std::printf("\n\nwhere the time went:\n");
    std::printf("  total            %10.2f ms\n", r.timing.total_us / 1e3);
    std::printf("  dynamics grads   %10.2f ms  (%.0f%% — paper: 30-90%%)\n",
                r.timing.linearization_us / 1e3,
                r.timing.gradient_fraction() * 100.0);
    std::printf("  Riccati passes   %10.2f ms\n",
                r.timing.backward_pass_us / 1e3);
    std::printf("  rollouts         %10.2f ms\n",
                r.timing.rollout_us / 1e3);

    // Same problem, linearized on the compiled accelerator simulation
    // engine instead of the host gradient library.  The engine is the
    // functional model of the generated design, so this is the solve the
    // deployed coprocessor would produce.
    const accel::AcceleratorDesign design(model, knobs);
    control::AcceleratorLinearizer linearizer(design);
    control::IlqrOptions accel_options = options;
    accel_options.linearizer = &linearizer;
    const control::IlqrResult ra =
        control::solve_ilqr(model, topo, problem, accel_options);
    std::printf("\nsame solve, gradients on the compiled engine (%s):\n",
                design.params().to_string().c_str());
    std::printf("  converged=%s after %zu iterations, |cost diff| = %.3g\n",
                ra.converged ? "yes" : "no", ra.iterations,
                std::abs(ra.cost_history.back() - r.cost_history.back()));
    std::printf("  %zu engine linearizations, %10.2f ms in linearization "
                "(CPU solve: %.2f ms)\n",
                linearizer.calls(), ra.timing.linearization_us / 1e3,
                r.timing.linearization_us / 1e3);

    // Accelerator projection for the gradient share.
    const double cpu_grad_us =
        baselines::measure_fd_gradients(model, 300).min_us;
    const double grad_calls = static_cast<double>(horizon) *
                              static_cast<double>(r.iterations);
    const io::DirectionalPayload sparse = io::sparse_directional(topo);
    const double accel_grads_ms =
        io::roundtrip_us(io::fpga_link_gen1(), sparse.in_bits,
                         sparse.out_bits, horizon,
                         design.latency_us_pipelined() *
                             static_cast<double>(horizon)) *
        static_cast<double>(r.iterations) / 1e3;
    std::printf("\nwith the RoboShape coprocessor (%s):\n",
                design.params().to_string().c_str());
    std::printf("  %0.0f gradient calls: CPU %.2f ms -> accelerator "
                "%.2f ms (sparse packets)\n",
                grad_calls, cpu_grad_us * grad_calls / 1e3,
                accel_grads_ms);
    std::printf("  projected solve time: %.2f ms -> %.2f ms\n",
                r.timing.total_us / 1e3,
                (r.timing.total_us - r.timing.linearization_us) / 1e3 +
                    accel_grads_ms);
    return 0;
}
