/**
 * @file
 * Quickstart: URDF in, accelerator out.
 *
 * Mirrors the paper's Fig. 7 flow end to end:
 *   1. parse a robot description (Baxter, or a .urdf path given as argv[1]);
 *   2. generate an accelerator for the XCVU9P under an 80% budget;
 *   3. run the generated design's functional simulation on a random state
 *      and check it against the host dynamics library;
 *   4. print the generation report.
 *
 * Build and run:  ./build/examples/quickstart [robot.urdf] [--json report.json]
 */

#include <cstdio>
#include <cstring>
#include <optional>
#include <fstream>
#include <iostream>
#include <sstream>

#include "accel/functional_sim.h"
#include "core/generator.h"
#include "dynamics/fd_derivatives.h"
#include "dynamics/robot_state.h"
#include "obs/run_report.h"
#include "topology/robot_library.h"
#include "topology/urdf_parser.h"

int
main(int argc, char **argv)
{
    using namespace roboshape;

    // 1. Robot description: a file if given, bundled Baxter otherwise.
    std::string urdf_text;
    std::string json_path;
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], "--json") == 0)
            json_path = argv[i + 1];
    if (argc > 1 && std::strcmp(argv[1], "--json") != 0) {
        std::ifstream in(argv[1]);
        if (!in) {
            std::cerr << "cannot open " << argv[1] << "\n";
            return 1;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        urdf_text = ss.str();
    } else {
        urdf_text = topology::robot_urdf(topology::RobotId::kBaxter);
    }

    // 2. Generate for the paper's primary platform.
    core::GeneratorConstraints constraints;
    constraints.platform = &accel::vcu118();
    const core::Generator generator;
    std::optional<core::GeneratedAccelerator> out;
    try {
        out = generator.from_urdf(urdf_text, constraints);
    } catch (const std::exception &e) {
        std::cerr << "generation failed: " << e.what() << "\n";
        return 1;
    }

    // 3. Functionally validate the generated design against the host
    //    dynamics library on a random state.
    const auto &model = out->design.model();
    const topology::TopologyInfo topo(model);
    const dynamics::RobotState s = dynamics::random_state(model, 42);
    const auto ref = dynamics::forward_dynamics_gradients(model, topo, s.q,
                                                          s.qd, s.tau);
    const accel::SimResult sim =
        accel::simulate(out->design, s.q, s.qd, ref.qdd, ref.mass_inv);
    const double err = std::max(
        linalg::max_abs_diff(sim.dqdd_dq, ref.dqdd_dq),
        linalg::max_abs_diff(sim.dqdd_dqd, ref.dqdd_dqd));

    // 4. Report.
    std::cout << out->report;
    std::printf("  functional check: accelerator vs host max |diff| = %.3g "
                "(%s)\n",
                err, err < 1e-9 ? "PASS" : "FAIL");
    std::printf("  simulated %zu traversal tasks, %zu block MACs (%zu "
                "skipped as NOPs)\n",
                sim.tasks_executed, sim.mm_stats.block_macs,
                sim.mm_stats.block_nops);
    if (!json_path.empty()) {
        obs::RunReport report("quickstart", "Quickstart: URDF in, "
                                            "accelerator out");
        report.set_robot(model.name());
        report.set_kernel("dynamics_gradient");
        const auto &p = out->design.params();
        report.set_params(p.pes_fwd, p.pes_bwd, p.block_size);
        report.metric("cycles_no_pipelining",
                      static_cast<std::int64_t>(
                          out->design.cycles_no_pipelining()));
        report.metric("max_abs_diff", err);
        report.metric("tasks_executed",
                      static_cast<std::uint64_t>(sim.tasks_executed));
        report.metric("verified", err < 1e-9);
        report.capture_counters();
        if (!report.write(json_path)) {
            std::cerr << "cannot write " << json_path << "\n";
            return 1;
        }
        std::printf("  report: %s\n", json_path.c_str());
    }
    return err < 1e-9 ? 0 : 1;
}
