/**
 * @file
 * Design-space exploration across robots and platforms.
 *
 * Reproduces the workflow behind paper Sec. 5.3-5.5 interactively: sweeps
 * the full knob cube of a robot, prints the latency/LUT Pareto frontier,
 * compares the metric-based allocation strategies, and shows how the
 * optimal point shifts between the VCU118 and the smaller VC707.
 *
 * Usage: ./build/examples/design_space_explorer [iiwa|hyq|baxter|jaco2|
 *        jaco3|hyq_arm]   (default: hyq)
 */

#include <cstdio>
#include <cstring>
#include <iostream>

#include "core/design_space.h"
#include "topology/robot_library.h"

int
main(int argc, char **argv)
{
    using namespace roboshape;
    using topology::RobotId;

    RobotId id = RobotId::kHyq;
    if (argc > 1) {
        const std::string want = argv[1];
        bool found = false;
        for (RobotId candidate : topology::all_robots()) {
            std::string name = topology::robot_name(candidate);
            for (char &c : name)
                c = static_cast<char>(std::tolower(
                    static_cast<unsigned char>(c == '+' || c == '-' ? '_'
                                                                    : c)));
            if (name == want) {
                id = candidate;
                found = true;
            }
        }
        if (!found) {
            std::cerr << "unknown robot '" << want << "'\n";
            return 1;
        }
    }

    const topology::RobotModel model = topology::build_robot(id);
    std::printf("=== design space for %s (N=%zu) ===\n",
                topology::robot_name(id), model.num_links());

    const core::DesignSpace space = core::DesignSpace::sweep(model);
    std::printf("%zu design points; cycles in [%lld, %lld]; LUTs in "
                "[%lld, %lld]\n\n",
                space.points().size(),
                static_cast<long long>(space.min_cycles()),
                static_cast<long long>(space.max_cycles()),
                static_cast<long long>(space.min_luts()),
                static_cast<long long>(space.max_luts()));

    std::printf("Pareto frontier (latency vs LUTs):\n");
    std::printf("  %-28s %10s %12s %8s\n", "knobs", "cycles", "LUTs",
                "DSPs");
    for (const core::DesignPoint &p : space.pareto_frontier()) {
        std::printf("  %-28s %10lld %12lld %8lld\n",
                    p.params.to_string().c_str(),
                    static_cast<long long>(p.cycles),
                    static_cast<long long>(p.resources.luts),
                    static_cast<long long>(p.resources.dsps));
    }

    std::printf("\nAllocation strategies (paper Fig. 13):\n");
    std::printf("  %-16s %-28s %10s %12s %s\n", "strategy", "knobs",
                "cycles", "LUTs", "min-lat?");
    for (sched::AllocationStrategy strategy : sched::all_strategies()) {
        const auto eval = core::evaluate_strategy(model, strategy, space);
        std::printf("  %-16s %-28s %10lld %12lld %s\n",
                    sched::to_string(strategy),
                    eval.params.to_string().c_str(),
                    static_cast<long long>(eval.cycles),
                    static_cast<long long>(eval.resources.luts),
                    eval.meets_minimum_latency ? "yes" : "no");
    }
    const auto opt = space.optimal_min_latency();
    std::printf("  %-16s %-28s %10lld %12lld yes\n", "Optimal",
                opt.params.to_string().c_str(),
                static_cast<long long>(opt.cycles),
                static_cast<long long>(opt.resources.luts));

    std::printf("\nPlatform-constrained optima (80%% utilization):\n");
    for (const accel::FpgaPlatform *platform :
         {&accel::vcu118(), &accel::vc707()}) {
        const auto best = space.constrained_min_latency(*platform);
        const auto maxalloc = space.max_allocation(*platform);
        if (!best) {
            std::printf("  %-16s no feasible design point\n",
                        platform->name.c_str());
            continue;
        }
        std::printf("  %-16s best: %s -> %lld cycles, %.1f%% LUTs\n",
                    platform->name.c_str(),
                    best->params.to_string().c_str(),
                    static_cast<long long>(best->cycles),
                    best->resources.lut_utilization(*platform) * 100.0);
        if (maxalloc) {
            std::printf("  %-16s max-alloc: %s -> %lld cycles, %.1f%% "
                        "LUTs\n",
                        "", maxalloc->params.to_string().c_str(),
                        static_cast<long long>(maxalloc->cycles),
                        maxalloc->resources.lut_utilization(*platform) *
                            100.0);
        }
    }
    return 0;
}
