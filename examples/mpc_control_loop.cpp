/**
 * @file
 * Nonlinear-control inner loop: the paper's motivating workload.
 *
 * Runs a whole-body computed-torque controller on the iiwa arm tracking a
 * sinusoidal joint trajectory, while an MPC-style linearization pass
 * evaluates forward-dynamics gradients at a 4-step horizon every control
 * period (the batched pattern of paper Sec. 5.2).  For each control period
 * it accounts:
 *
 *   - the measured CPU cost of the 4 gradient evaluations (our Pinocchio-
 *     equivalent library, threaded per time step), and
 *   - the modeled accelerator cost (compute + PCIe roundtrip, dense and
 *     sparse packets),
 *
 * then reports the control rates each platform could sustain.  The
 * simulated robot physically integrates via ABA, so the plots of tracking
 * error are real dynamics, not canned numbers.
 *
 * Usage: ./build/examples/mpc_control_loop [robot] (default iiwa)
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "accel/design.h"
#include "accel/sim_engine.h"
#include "baselines/cpu_baseline.h"
#include "dynamics/aba.h"
#include "dynamics/crba.h"
#include "dynamics/fd_derivatives.h"
#include "dynamics/rnea.h"
#include "io/link_model.h"
#include "io/payload.h"
#include "topology/robot_library.h"

int
main(int argc, char **argv)
{
    using namespace roboshape;
    using linalg::Vector;

    topology::RobotId id = topology::RobotId::kIiwa;
    if (argc > 1 && std::string(argv[1]) == "hyq")
        id = topology::RobotId::kHyq;
    if (argc > 1 && std::string(argv[1]) == "baxter")
        id = topology::RobotId::kBaxter;

    const topology::RobotModel model = topology::build_robot(id);
    const topology::TopologyInfo topo(model);
    const std::size_t n = model.num_links();
    std::printf("=== MPC inner loop on %s (N=%zu) ===\n",
                topology::robot_name(id), n);

    // --- closed-loop tracking with computed-torque control ---------------
    const double dt = 1e-3;       // 1 kHz control
    const int steps = 400;
    Vector q(n), qd(n);
    double worst_err = 0.0, final_err = 0.0;
    for (int k = 0; k < steps; ++k) {
        const double t = k * dt;
        // Sinusoidal reference per joint.
        Vector q_ref(n), qd_ref(n), qdd_ref(n);
        for (std::size_t j = 0; j < n; ++j) {
            const double w = 1.0 + 0.2 * static_cast<double>(j);
            q_ref[j] = 0.4 * std::sin(w * t);
            qd_ref[j] = 0.4 * w * std::cos(w * t);
            qdd_ref[j] = -0.4 * w * w * std::sin(w * t);
        }
        // Computed torque: tau = M(q) (qdd_ref + PD) + C(q, qd).
        const double kp = 400.0, kd = 40.0;
        Vector v(n);
        for (std::size_t j = 0; j < n; ++j)
            v[j] = qdd_ref[j] + kp * (q_ref[j] - q[j]) +
                   kd * (qd_ref[j] - qd[j]);
        const linalg::Matrix m_q = dynamics::crba(model, q);
        const Vector tau = m_q * v + dynamics::bias_forces(model, q, qd);

        // Plant: integrate true dynamics with ABA.
        const Vector qdd = dynamics::aba(model, q, qd, tau);
        for (std::size_t j = 0; j < n; ++j) {
            q[j] += qd[j] * dt + 0.5 * qdd[j] * dt * dt;
            qd[j] += qdd[j] * dt;
        }
        double err = 0.0;
        for (std::size_t j = 0; j < n; ++j)
            err = std::max(err, std::abs(q_ref[j] - q[j]));
        worst_err = std::max(worst_err, err);
        final_err = err;
    }
    std::printf("tracking: %d steps @ %.0f Hz, worst |err| = %.4f rad, "
                "final |err| = %.4f rad\n",
                steps, 1.0 / dt, worst_err, final_err);

    // --- linearization budget: CPU vs accelerator ------------------------
    const std::size_t horizon = 4; // paper Sec. 5.2 batch size
    const auto cpu =
        baselines::measure_fd_gradients_batch(model, horizon, 50);
    std::printf("\nlinearization of a %zu-step horizon:\n", horizon);
    std::printf("  CPU (measured, %zu threads):       %8.2f us -> %6.0f "
                "solves/s\n",
                horizon, cpu.min_us, 1e6 / cpu.min_us);

    // Accelerator: paper knob settings where defined, Hybrid otherwise.
    accel::AcceleratorParams params{4, 4, 4};
    if (id == topology::RobotId::kIiwa)
        params = {7, 7, 7};
    if (id == topology::RobotId::kHyq)
        params = {3, 3, 6};
    const accel::AcceleratorDesign design(model, params);
    const double compute_us = design.latency_us_batched(horizon);

    const io::DirectionalPayload dense = io::dense_directional(n);
    const io::DirectionalPayload sparse = io::sparse_directional(topo);
    const double rt_dense = io::roundtrip_us(
        io::fpga_link_gen1(), dense.in_bits, dense.out_bits, horizon,
        compute_us);
    const double rt_sparse = io::roundtrip_us(
        io::fpga_link_gen1(), sparse.in_bits, sparse.out_bits, horizon,
        compute_us);
    std::printf("  FPGA compute only (modeled):       %8.2f us -> %6.0f "
                "solves/s\n",
                compute_us, 1e6 / compute_us);
    std::printf("  FPGA roundtrip, dense packets:     %8.2f us -> %6.0f "
                "solves/s\n",
                rt_dense, 1e6 / rt_dense);
    std::printf("  FPGA roundtrip, sparse packets:    %8.2f us -> %6.0f "
                "solves/s (%.1fx smaller I/O)\n",
                rt_sparse, 1e6 / rt_sparse, io::compression_ratio(topo));

    // Functional engine, *measured*: the same 4-step horizon, sampled off
    // the sinusoidal reference, batched through the compiled simulation
    // engine (accel::SimEngine::run_batch).  This is the bit-exact
    // functional model of the generated design executing the actual
    // numbers, next to the modeled hardware rows above.
    std::vector<Vector> hq, hqd;
    std::vector<dynamics::ForwardDynamicsGradients> href;
    for (std::size_t k = 0; k < horizon; ++k) {
        const double t = 0.1 * static_cast<double>(k + 1);
        Vector q_k(n), qd_k(n), qdd_k(n);
        for (std::size_t j = 0; j < n; ++j) {
            const double w = 1.0 + 0.2 * static_cast<double>(j);
            q_k[j] = 0.4 * std::sin(w * t);
            qd_k[j] = 0.4 * w * std::cos(w * t);
            qdd_k[j] = -0.4 * w * w * std::sin(w * t);
        }
        const Vector tau_k = dynamics::crba(model, q_k) * qdd_k +
                             dynamics::bias_forces(model, q_k, qd_k);
        hq.push_back(q_k);
        hqd.push_back(qd_k);
        href.push_back(dynamics::forward_dynamics_gradients(
            model, topo, q_k, qd_k, tau_k));
    }
    const accel::SimEngine engine(design);
    std::vector<accel::InputPacket> packets;
    for (std::size_t k = 0; k < horizon; ++k)
        packets.push_back({&hq[k], &hqd[k], &href[k].qdd,
                           &href[k].mass_inv});
    std::vector<accel::EngineResult> sims(horizon);
    accel::SimEngine::BatchWorkspace batch;
    engine.run_batch(packets, sims, batch); // warm-up: sizes workspaces
    // Demo-only throughput measurement: the MPC math above is already
    // done; the clock drives nothing but the printed packets/sec figure.
    const auto t0 =
        std::chrono::steady_clock::now(); // NOLINT(no-nondeterminism)
    std::size_t reps = 0;
    while (std::chrono::duration<double>(
               std::chrono::steady_clock::now() // NOLINT(no-nondeterminism)
               - t0)
               .count() < 0.05) {
        for (int i = 0; i < 16; ++i)
            engine.run_batch(packets, sims, batch);
        reps += 16;
    }
    const double batch_us =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() // NOLINT(no-nondeterminism)
            - t0)
            .count() *
        1e6 / static_cast<double>(reps);
    double engine_div = 0.0;
    for (std::size_t k = 0; k < horizon; ++k) {
        engine_div = std::max(engine_div,
                              linalg::max_abs_diff(sims[k].dqdd_dq,
                                                   href[k].dqdd_dq));
        engine_div = std::max(engine_div,
                              linalg::max_abs_diff(sims[k].dqdd_dqd,
                                                   href[k].dqdd_dqd));
    }
    std::printf("  FPGA functional engine (measured): %8.2f us -> %6.0f "
                "solves/s (|diff vs host| %.1e)\n",
                batch_us, 1e6 / batch_us, engine_div);
    std::printf("\nA 1 kHz whole-body MPC needs the horizon linearized in "
                "<1000 us;\nheadroom lets the solver iterate more per "
                "period.\n");
    return 0;
}
