/**
 * @file
 * Legged stance: contact-constrained whole-body dynamics on HyQ.
 *
 * The paper's headline deployment is online nonlinear control for legged
 * robots.  This example closes the loop on the legged half: HyQ stands
 * with all four feet pinned, a joint-space PD + gravity-compensation
 * controller holds a crouch posture, and the simulation integrates the
 * contact-constrained dynamics (KKT solve with per-foot forces).  It then
 * reports the per-control-period compute budget with the gradient kernel
 * mapped onto the HyQ accelerator.
 *
 * Usage: ./build/examples/legged_stance
 */

#include <cmath>
#include <cstdio>

#include "accel/design.h"
#include "baselines/cpu_baseline.h"
#include "dynamics/constrained.h"
#include "dynamics/kinematics.h"
#include "dynamics/rnea.h"
#include "topology/robot_library.h"
#include "topology/topology_info.h"

int
main()
{
    using namespace roboshape;
    using linalg::Vector;

    const topology::RobotModel hyq =
        topology::build_robot(topology::RobotId::kHyq);
    const topology::TopologyInfo topo(hyq);
    const std::size_t n = hyq.num_links();
    std::printf("=== HyQ stance under contact-constrained dynamics ===\n");

    // Feet: tips of the four shank links.
    std::vector<dynamics::Contact> feet;
    for (const char *name : {"lf_kfe", "rf_kfe", "lh_kfe", "rh_kfe"})
        feet.push_back(
            {static_cast<std::size_t>(hyq.find_link(name)),
             {0.0, 0.0, 0.33}});

    // Crouch posture: hips level, knees bent.
    Vector q_ref(n);
    for (std::size_t i = 0; i < n; ++i)
        q_ref[i] = (i % 3 == 2) ? 0.6 : ((i % 3 == 1) ? -0.3 : 0.0);

    Vector q = q_ref, qd(n);
    const double dt = 1e-3;
    const double kp = 300.0, kd = 30.0;
    double worst_err = 0.0, max_force = 0.0;
    for (int k = 0; k < 500; ++k) {
        // Pure joint PD about the crouch: gravity is carried by the
        // stance feet through the contact forces, not by feedforward.
        Vector tau(n);
        for (std::size_t i = 0; i < n; ++i)
            tau[i] = kp * (q_ref[i] - q[i]) - kd * qd[i];

        const auto sol = dynamics::constrained_forward_dynamics(
            hyq, topo, q, qd, tau, feet);
        for (std::size_t i = 0; i < n; ++i) {
            q[i] += qd[i] * dt + 0.5 * sol.qdd[i] * dt * dt;
            qd[i] += sol.qdd[i] * dt;
        }
        for (std::size_t i = 0; i < n; ++i)
            worst_err = std::max(worst_err, std::abs(q[i] - q_ref[i]));
        max_force = std::max(max_force, sol.forces.max_abs());
        if (k == 499) {
            std::printf("after %.1f s: posture error %.4f rad, KKT "
                        "residual %.2e, constraint residual %.2e\n",
                        (k + 1) * dt, worst_err, sol.kkt_residual,
                        sol.constraint_residual);
            std::printf("stance foot forces (link coords, N):\n");
            for (std::size_t c = 0; c < feet.size(); ++c)
                std::printf("  foot %zu: [%7.2f %7.2f %7.2f]\n", c,
                            sol.forces[3 * c], sol.forces[3 * c + 1],
                            sol.forces[3 * c + 2]);
        }
    }
    std::printf("peak |contact force| over the run: %.1f N\n", max_force);

    // Compute budget of the controller's linearization on CPU vs the
    // shipped HyQ accelerator.
    const double cpu_us =
        baselines::measure_fd_gradients(hyq, 500).min_us;
    const accel::AcceleratorDesign design(hyq, {3, 3, 6});
    std::printf("\ngradient kernel per control period: CPU %.2f us vs "
                "accelerator %.2f us\n(compute-only; the whole-body "
                "controller linearizes about the stance every period)\n",
                cpu_us, design.latency_us_no_pipelining());
    return worst_err < 0.2 ? 0 : 1;
}
