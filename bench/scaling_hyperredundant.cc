/**
 * @file
 * Scaling study for hyper-redundant and soft-robot approximations (paper
 * Sec. 3.3, future work): how schedules, checkpoint traffic, resources,
 * and sparse-I/O compression scale when robots grow to 100s of links.
 */

#include <chrono>

#include "accel/design.h"
#include "bench/bench_util.h"
#include "io/payload.h"
#include "topology/parametric_robots.h"
#include "topology/topology_info.h"

namespace {

using namespace roboshape;

void
report(const topology::RobotModel &model)
{
    const auto t0 = std::chrono::steady_clock::now();
    const accel::AcceleratorDesign design(model, {8, 8, 4});
    const double gen_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();

    const topology::TopologyInfo topo(model);
    std::printf("%-10s %5zu %9lld %9lld %9zu %9.1fM %8.2fx %9.1f\n",
                model.name().c_str(), model.num_links(),
                static_cast<long long>(design.forward_stage().makespan),
                static_cast<long long>(design.backward_stage().makespan),
                design.forward_stage().checkpoint_restores +
                    design.backward_stage().checkpoint_restores,
                static_cast<double>(design.resources().luts) / 1e6,
                io::compression_ratio(topo), gen_ms);
}

} // namespace

int
main()
{
    using namespace roboshape;
    bench::print_header(
        "Scaling: hyper-redundant chains, walkers, and tentacle trees",
        "paper Sec. 3.3 (100s-1000s of links; branch checkpoint locality)");

    std::printf("%-10s %5s %9s %9s %9s %10s %8s %9s\n", "robot", "N",
                "fwd(cyc)", "bwd(cyc)", "restores", "LUTs", "sparseIO",
                "gen(ms)");
    for (std::size_t n : {16u, 32u, 64u, 128u, 256u})
        report(topology::make_serial_chain(n));
    report(topology::make_star(8, 16));
    report(topology::make_star(16, 16));
    report(topology::make_branching_tree(5, 2));
    report(topology::make_branching_tree(3, 4));

    std::printf("\nObservations: backward work grows ~N^2 on chains "
                "(columns x depth) while star\nrobots keep it ~limbs x "
                "depth^2; checkpoint restores track limb count when PEs\n"
                "< limbs; sparse-I/O compression approaches the limb count "
                "for wide robots.\nAt 8 PEs per pool, 256-link designs "
                "still generate in well under a second —\nthe paper's "
                "'straightforward to implement accelerators for new "
                "deployment\nscenarios' claim at soft-robot scale.\n");
    return 0;
}
