/**
 * @file
 * Reproduces paper Fig. 13: latency (a) and resource utilization (b) of
 * topology-metric allocation strategies against the exhaustive optimum.
 */

#include "bench/bench_util.h"
#include "core/design_space.h"

int
main(int argc, char **argv)
{
    using namespace roboshape;
    const std::string json = bench::json_out_path(argc, argv);
    obs::RunReport report("fig13_allocation_strategies",
                          "Fig. 13: Allocation strategies vs latency and "
                          "resources");
    bench::print_header(
        "Fig. 13: Allocation strategies vs latency and resources",
        "paper Fig. 13 / Insight #1");

    for (topology::RobotId id : topology::all_robots()) {
        const topology::RobotModel model = topology::build_robot(id);
        const core::DesignSpace space = core::DesignSpace::sweep(model);
        const core::DesignPoint opt = space.optimal_min_latency();

        std::printf("\n%s (min latency %lld cycles):\n",
                    topology::robot_name(id),
                    static_cast<long long>(space.min_cycles()));
        std::printf("  %-16s %-30s %8s %8s %10s %8s %s\n", "strategy",
                    "knobs", "cycles", "vs-min", "LUTs", "DSPs",
                    "min-lat?");
        for (sched::AllocationStrategy s : sched::all_strategies()) {
            const auto e = core::evaluate_strategy(model, s, space);
            std::printf("  %-16s %-30s %8lld %7.2fx %10lld %8lld %s\n",
                        sched::to_string(s), e.params.to_string().c_str(),
                        static_cast<long long>(e.cycles),
                        static_cast<double>(e.cycles) /
                            static_cast<double>(space.min_cycles()),
                        static_cast<long long>(e.resources.luts),
                        static_cast<long long>(e.resources.dsps),
                        e.meets_minimum_latency ? "yes" : "NO  (x)");
            report.metric(std::string(topology::robot_name(id)) + "." +
                              sched::to_string(s) + ".cycles",
                          static_cast<std::int64_t>(e.cycles));
        }
        report.metric(std::string(topology::robot_name(id)) +
                          ".optimal.cycles",
                      static_cast<std::int64_t>(opt.cycles));
        std::printf("  %-16s %-30s %8lld %7.2fx %10lld %8lld yes (*)\n",
                    "Optimal", opt.params.to_string().c_str(),
                    static_cast<long long>(opt.cycles), 1.0,
                    static_cast<long long>(opt.resources.luts),
                    static_cast<long long>(opt.resources.dsps));
    }
    std::printf("\npaper: most strategies reach minimum latency at very "
                "different resource cost;\nAvg Leaf Depth underprovisions "
                "asymmetric robots; Max Leaf Depth underprovisions\nthe "
                "backward pass of Jaco-2/3; Hybrid improves on both. "
                "(Deviation: in this\nwork-conserving scheduler, "
                "limb-dominated robots still gain from extra PEs —\nsee "
                "EXPERIMENTS.md.)\n");
    return bench::write_report(report, json) ? 0 : 1;
}
