/**
 * @file
 * google-benchmark microbenchmarks of the CPU dynamics substrate — the
 * measured baseline feeding Figs. 9 and 10 (RNEA, CRBA, analytical
 * derivatives, full gradient kernel) across all six robots.
 */

#include <benchmark/benchmark.h>

#include "dynamics/constrained.h"
#include "dynamics/crba.h"
#include "dynamics/fd_derivatives.h"
#include "dynamics/rnea.h"
#include "dynamics/rnea_derivatives.h"
#include "dynamics/robot_state.h"
#include "topology/robot_library.h"
#include "topology/topology_info.h"

namespace {

using namespace roboshape;
using topology::RobotId;

const topology::RobotModel &
model_for(int index)
{
    static const std::vector<topology::RobotModel> kModels = [] {
        std::vector<topology::RobotModel> models;
        for (RobotId id : topology::all_robots())
            models.push_back(topology::build_robot(id));
        return models;
    }();
    return kModels[static_cast<std::size_t>(index)];
}

void
set_label(benchmark::State &state)
{
    state.SetLabel(topology::robot_name(
        topology::all_robots()[static_cast<std::size_t>(state.range(0))]));
}

void
BM_Rnea(benchmark::State &state)
{
    const auto &model = model_for(static_cast<int>(state.range(0)));
    const auto s = dynamics::random_state(model, 1);
    for (auto _ : state) {
        auto tau = dynamics::rnea(model, s.q, s.qd, s.qdd);
        benchmark::DoNotOptimize(tau);
    }
    set_label(state);
}
BENCHMARK(BM_Rnea)->DenseRange(0, 5);

void
BM_Crba(benchmark::State &state)
{
    const auto &model = model_for(static_cast<int>(state.range(0)));
    const auto s = dynamics::random_state(model, 2);
    for (auto _ : state) {
        auto m = dynamics::crba(model, s.q);
        benchmark::DoNotOptimize(m);
    }
    set_label(state);
}
BENCHMARK(BM_Crba)->DenseRange(0, 5);

void
BM_RneaDerivatives(benchmark::State &state)
{
    const auto &model = model_for(static_cast<int>(state.range(0)));
    const topology::TopologyInfo topo(model);
    const auto s = dynamics::random_state(model, 3);
    dynamics::RneaCache cache;
    dynamics::rnea(model, s.q, s.qd, s.qdd, dynamics::kDefaultGravity,
                   &cache);
    for (auto _ : state) {
        auto d = dynamics::rnea_derivatives(model, topo, s.qd, cache);
        benchmark::DoNotOptimize(d);
    }
    set_label(state);
}
BENCHMARK(BM_RneaDerivatives)->DenseRange(0, 5);

void
BM_ForwardDynamicsGradients(benchmark::State &state)
{
    const auto &model = model_for(static_cast<int>(state.range(0)));
    const topology::TopologyInfo topo(model);
    const auto s = dynamics::random_state(model, 4);
    for (auto _ : state) {
        auto g = dynamics::forward_dynamics_gradients(model, topo, s.q,
                                                      s.qd, s.tau);
        benchmark::DoNotOptimize(g);
    }
    set_label(state);
}
BENCHMARK(BM_ForwardDynamicsGradients)->DenseRange(0, 5);

void
BM_ConstrainedDynamicsHyq(benchmark::State &state)
{
    // Whole-body stance dynamics: the legged controller's inner solve.
    const auto &model = model_for(1); // HyQ
    const topology::TopologyInfo topo(model);
    const auto s = dynamics::random_state(model, 5);
    std::vector<dynamics::Contact> feet;
    for (const char *name : {"lf_kfe", "rf_kfe", "lh_kfe", "rh_kfe"})
        feet.push_back({static_cast<std::size_t>(model.find_link(name)),
                        {0.0, 0.0, 0.33}});
    for (auto _ : state) {
        auto sol = dynamics::constrained_forward_dynamics(model, topo, s.q,
                                                          s.qd, s.tau,
                                                          feet);
        benchmark::DoNotOptimize(sol);
    }
    state.SetLabel("HyQ, 4 stance feet");
}
BENCHMARK(BM_ConstrainedDynamicsHyq);

} // namespace

BENCHMARK_MAIN();
