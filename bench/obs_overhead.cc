/**
 * @file
 * Observability overhead gate (ctest label "obs", configuration "obs").
 *
 * The counter registry promises a hot path of one relaxed atomic add
 * behind a relaxed flag load (see src/obs/registry.h).  This bench holds
 * that promise to a number: SimEngine::run throughput with the registry
 * enabled must stay within 2% of throughput with it disabled, and the
 * engine outputs must be bit-identical in both modes (instrumentation
 * observes, it never participates in arithmetic).
 *
 * Each mode is measured several times interleaved (enabled, disabled,
 * enabled, ...) and the best rate per mode is compared, which keeps the
 * gate stable on noisy shared CI machines.  Under -DROBOSHAPE_NO_OBS the
 * comparison degenerates to identical binaries and the gate passes
 * trivially — that configuration's claim ("compiled out") is checked by
 * the build, not by timing.
 *
 * Flags:
 *   --json <path>   also write the JSON document to a file
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "accel/sim_engine.h"
#include "bench/bench_util.h"
#include "dynamics/fd_derivatives.h"
#include "dynamics/robot_state.h"
#include "obs/json.h"
#include "obs/registry.h"
#include "topology/robot_library.h"
#include "topology/topology_info.h"

namespace {

using namespace roboshape;
using Clock = std::chrono::steady_clock;

constexpr double kMaxOverhead = 0.02; ///< 2% gate.
constexpr int kRounds = 5;            ///< Interleaved rounds per mode.

/** Runs fn repeatedly for ~@p budget_s seconds; returns calls/sec. */
template <typename Fn>
double
calls_per_sec(Fn &&fn, double budget_s = 0.05)
{
    fn(); // warm-up
    std::size_t calls = 0;
    const auto t0 = Clock::now();
    double elapsed = 0.0;
    do {
        for (int i = 0; i < 16; ++i)
            fn();
        calls += 16;
        elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
    } while (elapsed < budget_s);
    return static_cast<double>(calls) / elapsed;
}

double
result_diff(const accel::EngineResult &a, const accel::EngineResult &b)
{
    double d = linalg::max_abs_diff(a.tau, b.tau);
    d = std::max(d, linalg::max_abs_diff(a.dtau_dq, b.dtau_dq));
    d = std::max(d, linalg::max_abs_diff(a.dtau_dqd, b.dtau_dqd));
    d = std::max(d, linalg::max_abs_diff(a.dqdd_dq, b.dqdd_dq));
    d = std::max(d, linalg::max_abs_diff(a.dqdd_dqd, b.dqdd_dqd));
    if (a.tasks_executed != b.tasks_executed)
        d = std::max(d, 1.0);
    return d;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path = bench::json_out_path(argc, argv);
    bench::print_header("Observability overhead gate",
                        "registry-enabled SimEngine within 2% of disabled, "
                        "bit-identical outputs");

    const topology::RobotModel model =
        topology::build_robot(topology::RobotId::kIiwa);
    const topology::TopologyInfo topo(model);
    const accel::AcceleratorDesign design(
        model, bench::shipped_params(topology::RobotId::kIiwa));
    const accel::SimEngine engine(design);
    auto ws = engine.make_workspace();

    const auto state = dynamics::random_state(model, 4242);
    const auto ref = dynamics::forward_dynamics_gradients(
        model, topo, state.q, state.qd, state.tau);
    const accel::InputPacket packet{&state.q, &state.qd, &ref.qdd,
                                    &ref.mass_inv};

    // Numerics first: one run per mode, compared bit-for-bit.
    accel::EngineResult out_on, out_off;
    obs::set_enabled(true);
    engine.run(ws, packet, out_on);
    obs::set_enabled(false);
    engine.run(ws, packet, out_off);
    const double divergence = result_diff(out_on, out_off);

    // Throughput: interleave modes, keep the best rate of each.
    double best_on = 0.0, best_off = 0.0;
    accel::EngineResult out;
    for (int round = 0; round < kRounds; ++round) {
        obs::set_enabled(true);
        best_on = std::max(
            best_on, calls_per_sec([&] { engine.run(ws, packet, out); }));
        obs::set_enabled(false);
        best_off = std::max(
            best_off, calls_per_sec([&] { engine.run(ws, packet, out); }));
    }
    obs::set_enabled(true);

    const double overhead = 1.0 - best_on / best_off;
    const bool overhead_ok = overhead <= kMaxOverhead;
    const bool identical = divergence == 0.0;

    std::printf("enabled:  %12.0f calls/sec\n", best_on);
    std::printf("disabled: %12.0f calls/sec\n", best_off);
    std::printf("overhead: %+.2f%% (gate: <= %.0f%%)  numerics: %s\n",
                overhead * 100.0, kMaxOverhead * 100.0,
                identical ? "bit-identical" : "DIVERGED");

    obs::JsonWriter w(2);
    w.begin_object();
    w.kv("bench", "obs_overhead");
    w.kv("robot", "iiwa");
    w.kv("enabled_calls_per_sec", best_on);
    w.kv("disabled_calls_per_sec", best_off);
    w.kv("overhead", overhead);
    w.kv("max_overhead", kMaxOverhead);
    w.kv("bit_identical", identical);
    w.kv("pass", overhead_ok && identical);
    w.end_object();
    std::printf("%s\n", w.str().c_str());
    if (!json_path.empty()) {
        std::ofstream f(json_path);
        f << w.str() << '\n';
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
            return 1;
        }
    }
    return overhead_ok && identical ? 0 : 1;
}
