/**
 * @file
 * Reproduces paper Fig. 16: latency and utilization of the maximally-
 * allocated design versus the minimum-latency design under the VCU118 and
 * VC707 resource envelopes (80% utilization threshold).
 */

#include "bench/bench_util.h"
#include "core/design_space.h"

int
main(int argc, char **argv)
{
    using namespace roboshape;
    const std::string json = bench::json_out_path(argc, argv);
    obs::RunReport report("fig16_resource_constraints",
                          "Fig. 16: Resource-constrained design points "
                          "(80% threshold)");
    bench::print_header(
        "Fig. 16: Resource-constrained design points (80% threshold)",
        "paper Fig. 16 / Insight #3 (no VC707 point exists for HyQ+arm)");

    for (const accel::FpgaPlatform *platform :
         {&accel::vcu118(), &accel::vc707()}) {
        std::printf("\n--- %s (%lld LUTs, %lld DSPs) ---\n",
                    platform->name.c_str(),
                    static_cast<long long>(platform->luts),
                    static_cast<long long>(platform->dsps));
        std::printf("%-8s %-34s %8s %7s | %-34s %8s %7s\n", "robot",
                    "max-allocation knobs", "cycles", "LUT%",
                    "min-latency knobs", "cycles", "LUT%");
        for (topology::RobotId id : topology::all_robots()) {
            const topology::RobotModel model = topology::build_robot(id);
            const core::DesignSpace space = core::DesignSpace::sweep(model);
            const auto maxalloc = space.max_allocation(*platform);
            const auto best = space.constrained_min_latency(*platform);
            const std::string key = platform->name + "." +
                                    topology::robot_name(id);
            if (!maxalloc || !best) {
                std::printf("%-8s no feasible design point exists\n",
                            topology::robot_name(id));
                report.metric(key + ".feasible", false);
                continue;
            }
            report.metric(key + ".max_allocation_cycles",
                          static_cast<std::int64_t>(maxalloc->cycles));
            report.metric(key + ".min_latency_cycles",
                          static_cast<std::int64_t>(best->cycles));
            std::printf("%-8s %-34s %8lld %6.1f%% | %-34s %8lld %6.1f%%\n",
                        topology::robot_name(id),
                        maxalloc->params.to_string().c_str(),
                        static_cast<long long>(maxalloc->cycles),
                        maxalloc->resources.lut_utilization(*platform) *
                            100.0,
                        best->params.to_string().c_str(),
                        static_cast<long long>(best->cycles),
                        best->resources.lut_utilization(*platform) *
                            100.0);
        }
    }
    std::printf("\npaper: maximally-allocated designs often miss the "
                "minimum achievable latency\nwhile using more resources — "
                "dominated by the nonlinear blocked-multiply term\n"
                "(Fig. 15); topology-based tuning beats maximum "
                "allocation.\n");
    return bench::write_report(report, json) ? 0 : 1;
}
