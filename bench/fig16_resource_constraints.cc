/**
 * @file
 * Reproduces paper Fig. 16: latency and utilization of the maximally-
 * allocated design versus the minimum-latency design under the VCU118 and
 * VC707 resource envelopes (80% utilization threshold).
 */

#include "bench/bench_util.h"
#include "core/design_space.h"

int
main()
{
    using namespace roboshape;
    bench::print_header(
        "Fig. 16: Resource-constrained design points (80% threshold)",
        "paper Fig. 16 / Insight #3 (no VC707 point exists for HyQ+arm)");

    for (const accel::FpgaPlatform *platform :
         {&accel::vcu118(), &accel::vc707()}) {
        std::printf("\n--- %s (%lld LUTs, %lld DSPs) ---\n",
                    platform->name.c_str(),
                    static_cast<long long>(platform->luts),
                    static_cast<long long>(platform->dsps));
        std::printf("%-8s %-34s %8s %7s | %-34s %8s %7s\n", "robot",
                    "max-allocation knobs", "cycles", "LUT%",
                    "min-latency knobs", "cycles", "LUT%");
        for (topology::RobotId id : topology::all_robots()) {
            const topology::RobotModel model = topology::build_robot(id);
            const core::DesignSpace space = core::DesignSpace::sweep(model);
            const auto maxalloc = space.max_allocation(*platform);
            const auto best = space.constrained_min_latency(*platform);
            if (!maxalloc || !best) {
                std::printf("%-8s no feasible design point exists\n",
                            topology::robot_name(id));
                continue;
            }
            std::printf("%-8s %-34s %8lld %6.1f%% | %-34s %8lld %6.1f%%\n",
                        topology::robot_name(id),
                        maxalloc->params.to_string().c_str(),
                        static_cast<long long>(maxalloc->cycles),
                        maxalloc->resources.lut_utilization(*platform) *
                            100.0,
                        best->params.to_string().c_str(),
                        static_cast<long long>(best->cycles),
                        best->resources.lut_utilization(*platform) *
                            100.0);
        }
    }
    std::printf("\npaper: maximally-allocated designs often miss the "
                "minimum achievable latency\nwhile using more resources — "
                "dominated by the nonlinear blocked-multiply term\n"
                "(Fig. 15); topology-based tuning beats maximum "
                "allocation.\n");
    return 0;
}
