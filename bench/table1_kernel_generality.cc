/**
 * @file
 * Reproduces the paper's Table 1 claim: the same two topology patterns
 * generate accelerators for a family of robotics kernels.  For every
 * robot x kernel pair, builds the design, compiles it into the simulation
 * engine (accel::SimEngine), runs a packet through it, and reports task
 * counts, stage makespans, and numerical verification against both the
 * host library and the legacy one-shot simulators (which must agree with
 * the engine exactly).
 */

#include "accel/functional_sim.h"
#include "accel/kernel_sim.h"
#include "accel/sim_engine.h"
#include "bench/bench_util.h"
#include "dynamics/crba.h"
#include "dynamics/fd_derivatives.h"
#include "dynamics/kinematics.h"
#include "dynamics/robot_state.h"
#include "topology/topology_info.h"

int
main(int argc, char **argv)
{
    using namespace roboshape;
    using sched::KernelKind;
    const std::string json = bench::json_out_path(argc, argv);
    obs::RunReport report("table1_kernel_generality",
                          "Table 1: One framework, a family of "
                          "topology-based kernels");
    bool all_ok = true;
    bench::print_header(
        "Table 1: One framework, a family of topology-based kernels",
        "paper Table 1 / Sec. 3 (patterns shared across kernels)");

    std::printf("%-8s %-20s %6s %9s %9s %8s %s\n", "robot", "kernel",
                "tasks", "fwd(cyc)", "bwd(cyc)", "mm(cyc)", "verified");
    for (topology::RobotId id : topology::all_robots()) {
        const topology::RobotModel model = topology::build_robot(id);
        const topology::TopologyInfo topo(model);
        const auto state = dynamics::random_state(model, 99);

        for (KernelKind kernel : sched::all_kernels()) {
            const accel::AcceleratorParams params =
                kernel == KernelKind::kDynamicsGradient
                    ? bench::shipped_params(id)
                    : accel::AcceleratorParams{3, 3, 1};
            const accel::AcceleratorDesign design(
                model, params, accel::default_timing(), kernel);

            const accel::SimEngine engine(design);
            auto ws = engine.make_workspace();
            accel::EngineResult sim;

            bool ok = false;
            switch (kernel) {
              case KernelKind::kDynamicsGradient: {
                const auto ref = dynamics::forward_dynamics_gradients(
                    model, topo, state.q, state.qd, state.tau);
                const accel::InputPacket packet{&state.q, &state.qd,
                                                &ref.qdd, &ref.mass_inv};
                engine.run(ws, packet, sim);
                const auto legacy = accel::simulate(
                    design, state.q, state.qd, ref.qdd, ref.mass_inv);
                ok = linalg::max_abs_diff(sim.dqdd_dq, ref.dqdd_dq) <
                         1e-9 &&
                     linalg::max_abs_diff(sim.dqdd_dqd, ref.dqdd_dqd) <
                         1e-9 &&
                     linalg::max_abs_diff(sim.dqdd_dq, legacy.dqdd_dq) ==
                         0.0 &&
                     linalg::max_abs_diff(sim.dqdd_dqd,
                                          legacy.dqdd_dqd) == 0.0;
                break;
              }
              case KernelKind::kMassMatrix: {
                const accel::InputPacket packet{&state.q};
                engine.run(ws, packet, sim);
                const auto legacy =
                    accel::simulate_mass_matrix(design, state.q);
                ok = linalg::max_abs_diff(
                         sim.mass, dynamics::crba(model, state.q)) <
                         1e-9 &&
                     linalg::max_abs_diff(sim.mass, legacy.mass) == 0.0;
                break;
              }
              case KernelKind::kForwardKinematics: {
                const accel::InputPacket packet{&state.q, &state.qd};
                engine.run(ws, packet, sim);
                const auto legacy = accel::simulate_forward_kinematics(
                    design, state.q, state.qd);
                const auto vel =
                    dynamics::link_velocities(model, state.q, state.qd);
                ok = true;
                for (std::size_t i = 0; i < model.num_links(); ++i)
                    ok = ok &&
                         (sim.velocities[i] - vel[i]).max_abs() < 1e-9 &&
                         (sim.velocities[i] - legacy.velocities[i])
                                 .max_abs() == 0.0;
                break;
              }
            }
            std::printf("%-8s %-20s %6zu %9lld %9lld %8lld %s\n",
                        topology::robot_name(id), to_string(kernel),
                        design.task_graph().size(),
                        static_cast<long long>(
                            design.forward_stage().makespan),
                        static_cast<long long>(
                            design.backward_stage().makespan),
                        static_cast<long long>(
                            design.block_multiply().makespan),
                        ok ? "PASS" : "FAIL");
            all_ok = all_ok && ok;
            report.metric(std::string(topology::robot_name(id)) + "." +
                              to_string(kernel) + ".verified",
                          ok);
        }
    }
    report.metric("all_verified", all_ok);
    std::printf("\npaper Table 1 lists kinematics, dynamics, their "
                "gradients, and related state-\npropagation kernels as one "
                "family over patterns (1) and (2); the framework\n"
                "generates verified accelerators for each from the same "
                "schedules and PE pools.\n");
    return bench::write_report(report, json) ? 0 : 1;
}
