/**
 * @file
 * The headline demonstration: flexibly deploying accelerators across a
 * fleet of topologically diverse robots (paper title / Fig. 1).  Runs the
 * generator end to end — URDF text in, feasible design out — for every
 * bundled robot plus parametric extras, on both platforms.
 */

#include "accel/sim_engine.h"
#include "bench/bench_util.h"
#include "core/generator.h"
#include "dynamics/fd_derivatives.h"
#include "dynamics/robot_state.h"
#include "topology/parametric_robots.h"
#include "topology/topology_info.h"
#include "topology/urdf_parser.h"

namespace {

using namespace roboshape;

/**
 * Every deployed design is also *executed*: one gradient packet through
 * the compiled simulation engine, checked against the host library.  A
 * fleet row is only as good as the numbers its accelerator computes.
 */
bool
verify_on_engine(const topology::RobotModel &model,
                 const accel::AcceleratorDesign &design)
{
    const topology::TopologyInfo topo(model);
    const auto state = dynamics::random_state(model, 11);
    const auto ref = dynamics::forward_dynamics_gradients(
        model, topo, state.q, state.qd, state.tau);
    const accel::SimEngine engine(design);
    auto ws = engine.make_workspace();
    accel::EngineResult sim;
    const accel::InputPacket packet{&state.q, &state.qd, &ref.qdd,
                                    &ref.mass_inv};
    engine.run(ws, packet, sim);
    return linalg::max_abs_diff(sim.dqdd_dq, ref.dqdd_dq) < 1e-9 &&
           linalg::max_abs_diff(sim.dqdd_dqd, ref.dqdd_dqd) < 1e-9;
}

void
deploy(const topology::RobotModel &model,
       const accel::FpgaPlatform &platform)
{
    core::GeneratorConstraints constraints;
    constraints.platform = &platform;
    const core::Generator generator;
    try {
        const auto out = generator.from_model(model, constraints);
        std::printf("%-11s %4zu  %-30s %7lld cyc @%4.0f ns  %5.1f%% LUT "
                    "%5.1f%% DSP  sim:%s\n",
                    model.name().c_str(), model.num_links(),
                    out.design.params().to_string().c_str(),
                    static_cast<long long>(
                        out.design.cycles_no_pipelining()),
                    out.design.clock_period_ns(),
                    out.design.resources().lut_utilization(platform) *
                        100.0,
                    out.design.resources().dsp_utilization(platform) *
                        100.0,
                    verify_on_engine(model, out.design) ? "ok" : "FAIL");
    } catch (const core::GenerationError &) {
        std::printf("%-11s %4zu  no feasible design on this platform\n",
                    model.name().c_str(), model.num_links());
    }
}

} // namespace

int
main()
{
    using namespace roboshape;
    bench::print_header(
        "Fleet deployment: one generator, every robot, two platforms",
        "paper title / Fig. 1 (scalable, flexible deployment)");

    for (const accel::FpgaPlatform *platform :
         {&accel::vcu118(), &accel::vc707()}) {
        std::printf("\n--- %s ---\n", platform->name.c_str());
        for (topology::RobotId id : topology::all_robots())
            deploy(topology::build_robot(id), *platform);
        for (topology::RobotId id : topology::extended_robots())
            deploy(topology::build_robot(id), *platform);
        deploy(topology::make_gantry(3), *platform);
        deploy(topology::make_serial_chain(24), *platform);
        deploy(topology::make_star(6, 4), *platform);
    }
    std::printf("\nEvery feasible deployment was auto-tuned (Hybrid PE "
                "allocation + alignment-aware\nblock choice + shrink-to-"
                "fit); infeasible rows show the generator refusing\n"
                "rather than overfitting the part — the paper's scalability "
                "and flexibility\nclaims exercised end to end.\n");
    return 0;
}
