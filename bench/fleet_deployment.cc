/**
 * @file
 * The headline demonstration: flexibly deploying accelerators across a
 * fleet of topologically diverse robots (paper title / Fig. 1).  Runs the
 * generator end to end — URDF text in, feasible design out — for every
 * bundled robot plus parametric extras, on both platforms.
 */

#include "bench/bench_util.h"
#include "core/generator.h"
#include "topology/parametric_robots.h"
#include "topology/topology_info.h"
#include "topology/urdf_parser.h"

namespace {

using namespace roboshape;

void
deploy(const topology::RobotModel &model,
       const accel::FpgaPlatform &platform)
{
    core::GeneratorConstraints constraints;
    constraints.platform = &platform;
    const core::Generator generator;
    try {
        const auto out = generator.from_model(model, constraints);
        std::printf("%-11s %4zu  %-30s %7lld cyc @%4.0f ns  %5.1f%% LUT "
                    "%5.1f%% DSP\n",
                    model.name().c_str(), model.num_links(),
                    out.design.params().to_string().c_str(),
                    static_cast<long long>(
                        out.design.cycles_no_pipelining()),
                    out.design.clock_period_ns(),
                    out.design.resources().lut_utilization(platform) *
                        100.0,
                    out.design.resources().dsp_utilization(platform) *
                        100.0);
    } catch (const core::GenerationError &) {
        std::printf("%-11s %4zu  no feasible design on this platform\n",
                    model.name().c_str(), model.num_links());
    }
}

} // namespace

int
main()
{
    using namespace roboshape;
    bench::print_header(
        "Fleet deployment: one generator, every robot, two platforms",
        "paper title / Fig. 1 (scalable, flexible deployment)");

    for (const accel::FpgaPlatform *platform :
         {&accel::vcu118(), &accel::vc707()}) {
        std::printf("\n--- %s ---\n", platform->name.c_str());
        for (topology::RobotId id : topology::all_robots())
            deploy(topology::build_robot(id), *platform);
        for (topology::RobotId id : topology::extended_robots())
            deploy(topology::build_robot(id), *platform);
        deploy(topology::make_gantry(3), *platform);
        deploy(topology::make_serial_chain(24), *platform);
        deploy(topology::make_star(6, 4), *platform);
    }
    std::printf("\nEvery feasible deployment was auto-tuned (Hybrid PE "
                "allocation + alignment-aware\nblock choice + shrink-to-"
                "fit); infeasible rows show the generator refusing\n"
                "rather than overfitting the part — the paper's scalability "
                "and flexibility\nclaims exercised end to end.\n");
    return 0;
}
