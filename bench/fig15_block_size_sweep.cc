/**
 * @file
 * Reproduces paper Fig. 15: the nonlinear design space of the sparse
 * blocked matrix multiply — block sizes 1 through 10 on HyQ's mass-matrix
 * pattern with 3 block matrix-vector multiply units.
 */

#include <climits>

#include "bench/bench_util.h"
#include "sched/block_schedule.h"
#include "topology/topology_info.h"

int
main(int argc, char **argv)
{
    using namespace roboshape;
    const std::string json = bench::json_out_path(argc, argv);
    obs::RunReport report("fig15_block_size_sweep",
                          "Fig. 15: Blocked multiply latency vs block "
                          "size (HyQ, 3 units)");
    bench::print_header(
        "Fig. 15: Blocked multiply latency vs block size (HyQ, 3 units)",
        "paper Fig. 15 / Insight #2 (minima at aligned sizes 3, 6, 9)");

    const topology::RobotModel model =
        topology::build_robot(topology::RobotId::kHyq);
    const topology::TopologyInfo topo(model);
    const auto a = sched::mass_inverse_mask(topo);
    const auto b = sched::derivative_mask(topo);
    const sched::TileTiming timing{1, 3};

    std::printf("%-6s %10s %10s %8s %10s %s\n", "block", "cycles",
                "tiles-run", "NOPs", "pad-zeros", "");
    std::int64_t best = LLONG_MAX;
    for (std::size_t bs = 1; bs <= 10; ++bs) {
        const sched::BlockSchedule s =
            sched::schedule_block_multiply(a, b, bs, 3, timing);
        best = std::min(best, s.makespan);
        std::printf("%-6zu %10lld %10zu %8zu %10zu %s\n", bs,
                    static_cast<long long>(s.makespan), s.executed_tiles,
                    s.nop_tiles, s.padded_zero_elements,
                    (bs % 3 == 0) ? "<- aligned with 3-link legs" : "");
        report.metric("block" + std::to_string(bs) + ".cycles",
                      static_cast<std::int64_t>(s.makespan));
    }
    report.metric("best_cycles", static_cast<std::int64_t>(best));
    std::printf("\npaper: block sizes 3, 6, 9 cover the nonzero pattern "
                "without padding; other\nsizes drag zero padding into "
                "nonzero tiles and waste cycles — an increase in\nblock "
                "size can decrease performance.\n");
    return bench::write_report(report, json) ? 0 : 1;
}
