/**
 * @file
 * Throughput study: multiple RoboShape cores vs the GPU's SM-parallel
 * batching (paper Sec. 5.2, "Parallelism Tradeoffs vs. GPU" — the
 * limitation "can be addressed ... by instantiating multiple RoboShape
 * cores in an ASIC").
 */

#include "baselines/cpu_baseline.h"
#include "baselines/gpu_model.h"
#include "bench/bench_util.h"
#include "core/throughput.h"
#include "topology/topology_info.h"

int
main()
{
    using namespace roboshape;
    bench::print_header(
        "Throughput: replicated RoboShape cores vs GPU SM batching",
        "paper Sec. 5.2 parallelism tradeoffs");

    const baselines::GpuModelParams gpu;
    std::printf("%-8s %6s %12s %14s %14s %14s\n", "robot", "cores",
                "II/core(us)", "FPGA (ev/s)", "GPU (ev/s)", "CPU (ev/s)");
    for (topology::RobotId id : topology::shipped_robots()) {
        const topology::RobotModel model = topology::build_robot(id);
        const topology::TopologyInfo topo(model);

        // Latency-optimized core (the shipped design) and a compact
        // throughput-optimized core that replicates further.
        const accel::AcceleratorDesign shipped(model,
                                               bench::shipped_params(id));
        const accel::AcceleratorDesign compact(model, {2, 2, 3});
        const auto plan_big = core::plan_multicore(shipped, accel::vcu118());
        const auto plan_small =
            core::plan_multicore(compact, accel::vcu118());
        const auto &best = plan_small.throughput_per_s >
                                   plan_big.throughput_per_s
                               ? plan_small
                               : plan_big;

        // GPU: one evaluation per SM, throughput = SMs / latency.
        const double gpu_lat =
            baselines::gpu_gradient_latency_us(topo.metrics(), gpu);
        const double gpu_tput =
            static_cast<double>(gpu.sm_count) * 1e6 / gpu_lat;

        // CPU: the paper's 8-core host, one evaluation per core.
        const double cpu_lat =
            baselines::measure_fd_gradients(model, 1000).min_us;
        const double cpu_tput = 8.0 * 1e6 / cpu_lat;

        std::printf("%-8s %6zu %12.2f %14.0f %14.0f %14.0f  (best core: "
                    "%s)\n",
                    topology::robot_name(id), best.cores,
                    best.per_core_interval_us, best.throughput_per_s,
                    gpu_tput, cpu_tput,
                    &best == &plan_small ? "compact 2,2,3" : "shipped");
    }
    std::printf("\nSingle-computation latency favors the FPGA (Fig. 9); "
                "raw throughput favors the\nGPU's 68 SMs until multiple "
                "RoboShape cores are instantiated — on the XCVU9P\nbudget, "
                "replication closes part of the gap, and an ASIC would "
                "close the rest\n(paper Sec. 5.2).\n");
    return 0;
}
