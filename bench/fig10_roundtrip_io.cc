/**
 * @file
 * Reproduces paper Fig. 10 and the Sec. 5.2 I/O analysis: coprocessor
 * roundtrip latency for a batch of 4 gradient evaluations, compute-only vs
 * roundtrip-including-I/O, plus the matrix share of I/O bits and the
 * sparse-packet compression ratios.
 */

#include "accel/design.h"
#include "baselines/cpu_baseline.h"
#include "baselines/gpu_model.h"
#include "bench/bench_util.h"
#include "io/link_model.h"
#include "io/payload.h"
#include "topology/topology_info.h"

int
main(int argc, char **argv)
{
    using namespace roboshape;
    constexpr std::size_t kSteps = 4; // paper Sec. 5.2 batch size
    const std::string json = bench::json_out_path(argc, argv);
    obs::RunReport report(
        "fig10_roundtrip_io",
        "Fig. 10: Coprocessor roundtrip latency with I/O (batch of 4)");
    bench::print_header(
        "Fig. 10: Coprocessor roundtrip latency with I/O (batch of 4)",
        "paper Fig. 10 + Sec. 5.2 I/O analysis");

    std::printf("%-8s %10s %10s %12s %12s %12s %8s %8s\n", "robot",
                "CPU(us)", "GPU(us)", "FPGA comp", "FPGA dense",
                "FPGA sparse", "mat I/O", "sparse");
    for (topology::RobotId id : topology::shipped_robots()) {
        const topology::RobotModel model = topology::build_robot(id);
        const topology::TopologyInfo topo(model);
        const std::size_t n = model.num_links();

        // CPU: one thread per time step (the library's batching).  On a
        // multicore host the batch costs about one evaluation; this
        // container may have fewer cores, so the idealized batch (the
        // single-evaluation latency, as on the paper's 8-core i7) is the
        // comparison basis and the host-measured batch is also reported.
        const double cpu_us =
            baselines::measure_fd_gradients(model, 2000).min_us;
        const double cpu_host_us =
            baselines::measure_fd_gradients_batch(model, kSteps, 50)
                .min_us;
        // GPU: SM-parallel batch + its own Gen3 transfers.
        const io::DirectionalPayload dense = io::dense_directional(n);
        const double gpu_us = io::roundtrip_us(
            io::pcie_gen3(), dense.in_bits, dense.out_bits, kSteps,
            baselines::gpu_batch_latency_us(topo.metrics(), kSteps));

        // FPGA: first computation at full latency, the rest pipelined.
        const accel::AcceleratorDesign design(model,
                                              bench::shipped_params(id));
        const double compute_us = design.latency_us_batched(kSteps);
        const io::DirectionalPayload sparse = io::sparse_directional(topo);
        const double rt_dense = io::roundtrip_us(
            io::fpga_link_gen1(), dense.in_bits, dense.out_bits, kSteps,
            compute_us);
        const double rt_sparse = io::roundtrip_us(
            io::fpga_link_gen1(), sparse.in_bits, sparse.out_bits, kSteps,
            compute_us);

        std::printf("%-8s %10.2f %10.2f %12.2f %12.2f %12.2f %7.0f%% "
                    "%7.2fx\n",
                    topology::robot_name(id), cpu_us, gpu_us, compute_us,
                    rt_dense, rt_sparse,
                    io::dense_payload(n).matrix_share() * 100.0,
                    io::compression_ratio(topo));
        std::printf("%-8s   speedups: compute-only %.1fx CPU / %.1fx GPU; "
                    "roundtrip dense %.2fx CPU,\n",
                    "", cpu_us / compute_us, gpu_us / compute_us,
                    cpu_us / rt_dense);
        std::printf("%-8s   sparse %.2fx CPU / %.2fx GPU   "
                    "(host-measured threaded CPU batch: %.1f us)\n",
                    "", cpu_us / rt_sparse, gpu_us / rt_sparse,
                    cpu_host_us);

        const std::string key = topology::robot_name(id);
        report.metric(key + ".cpu_us", cpu_us);
        report.metric(key + ".gpu_us", gpu_us);
        report.metric(key + ".fpga_compute_us", compute_us);
        report.metric(key + ".roundtrip_dense_us", rt_dense);
        report.metric(key + ".roundtrip_sparse_us", rt_sparse);
        report.metric(key + ".compression_ratio",
                      io::compression_ratio(topo));
    }
    std::printf("\npaper: compute-only 2.2-5.6x CPU / 4.1-11.4x GPU; "
                "roundtrip 2.0x/1.4x CPU (iiwa/HyQ),\n18%% slowdown for "
                "Baxter; matrices are 84/90/92%% of I/O bits; sparse "
                "packets shrink\nI/O 3.1x (HyQ) and 2.1x (Baxter).\n");
    return bench::write_report(report, json) ? 0 : 1;
}
