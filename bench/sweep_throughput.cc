/**
 * @file
 * Design-space sweep throughput: the memoized + threaded sweep against the
 * reference serial per-design construction (what DesignSpace::sweep did
 * before the SweepContext existed).
 *
 * Covers every library robot (paper Table 3 six plus the extended fleet)
 * and a parametric hyper-redundant arm, verifies the two sweeps produce
 * point-for-point identical DesignPoints, and emits machine-readable JSON
 * on stdout so successive PRs can track the throughput trajectory.
 * EXPERIMENTS.md ("Design-space sweep performance") explains the fields.
 *
 * Flags:
 *   --serial-all    run the serial reference on every robot (by default it
 *                   is skipped above N=19, where it takes minutes)
 *   --json <path>   also write the JSON document to a file
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/design_space.h"
#include "core/executor.h"
#include "obs/json.h"
#include "sched/block_schedule.h"
#include "sched/list_scheduler.h"
#include "topology/parametric_robots.h"
#include "topology/robot_library.h"

namespace {

using roboshape::core::DesignPoint;
using roboshape::core::DesignSpace;

/** The pre-SweepContext sweep: one full AcceleratorDesign per triple. */
std::vector<DesignPoint>
serial_reference_sweep(const roboshape::topology::RobotModel &model)
{
    std::vector<DesignPoint> points;
    const std::size_t n = model.num_links();
    points.reserve(n * n * n);
    for (std::size_t pf = 1; pf <= n; ++pf) {
        for (std::size_t pb = 1; pb <= n; ++pb) {
            for (std::size_t b = 1; b <= n; ++b) {
                const roboshape::accel::AcceleratorDesign design(
                    model, {pf, pb, b});
                DesignPoint point;
                point.params = design.params();
                point.cycles = design.cycles_no_pipelining();
                point.latency_us = design.latency_us_no_pipelining();
                point.resources = design.resources();
                points.push_back(point);
            }
        }
    }
    return points;
}

bool
identical(const std::vector<DesignPoint> &a,
          const std::vector<DesignPoint> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (!(a[i].params == b[i].params) || a[i].cycles != b[i].cycles ||
            a[i].latency_us != b[i].latency_us ||
            a[i].resources.luts != b[i].resources.luts ||
            a[i].resources.dsps != b[i].resources.dsps)
            return false;
    }
    return true;
}

double
elapsed_ms(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

struct Row
{
    std::string name;
    std::size_t links = 0;
    std::size_t points = 0;
    double memoized_ms = 0.0;
    std::uint64_t memoized_list_calls = 0;
    std::uint64_t memoized_block_calls = 0;
    double serial_ms = -1.0; ///< < 0: reference not run.
    std::uint64_t serial_list_calls = 0;
    double speedup = 0.0;
    bool compared = false;
    bool identical_points = false;
};

Row
measure(const roboshape::topology::RobotModel &model, bool run_serial)
{
    using roboshape::sched::block_schedule_invocations;
    using roboshape::sched::list_scheduler_invocations;

    Row row;
    row.name = model.name();
    row.links = model.num_links();

    const std::uint64_t list0 = list_scheduler_invocations();
    const std::uint64_t block0 = block_schedule_invocations();
    const auto t0 = std::chrono::steady_clock::now();
    const DesignSpace space = DesignSpace::sweep(model);
    row.memoized_ms = elapsed_ms(t0);
    row.memoized_list_calls = list_scheduler_invocations() - list0;
    row.memoized_block_calls = block_schedule_invocations() - block0;
    row.points = space.points().size();

    if (run_serial) {
        const std::uint64_t list1 = list_scheduler_invocations();
        const auto t1 = std::chrono::steady_clock::now();
        const std::vector<DesignPoint> reference =
            serial_reference_sweep(model);
        row.serial_ms = elapsed_ms(t1);
        row.serial_list_calls = list_scheduler_invocations() - list1;
        row.speedup = row.serial_ms / std::max(row.memoized_ms, 1e-6);
        row.compared = true;
        row.identical_points = identical(space.points(), reference);
    }
    return row;
}

void
write_row_json(roboshape::obs::JsonWriter &w, const Row &row)
{
    w.begin_object();
    w.kv("name", std::string_view(row.name));
    w.kv("links", static_cast<std::uint64_t>(row.links));
    w.kv("points", static_cast<std::uint64_t>(row.points));
    w.kv("memoized_ms", row.memoized_ms);
    w.kv("memoized_list_scheduler_calls", row.memoized_list_calls);
    w.kv("memoized_block_schedule_calls", row.memoized_block_calls);
    if (row.compared) {
        w.kv("serial_ms", row.serial_ms);
        w.kv("serial_list_scheduler_calls", row.serial_list_calls);
        w.kv("speedup", row.speedup);
        w.kv("identical_points", row.identical_points);
    } else {
        w.key("serial_ms").null();
        w.key("serial_list_scheduler_calls").null();
        w.key("speedup").null();
        w.key("identical_points").null();
    }
    w.end_object();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace roboshape;

    bool serial_all = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--serial-all") == 0)
            serial_all = true;
    const std::string json_path = bench::json_out_path(argc, argv);

    // The serial reference costs N^3 full design builds; above the paper's
    // largest robot (Baxter-class N=19) it takes minutes, so gate it.
    constexpr std::size_t kSerialLimit = 19;

    std::vector<topology::RobotModel> models;
    for (topology::RobotId id : topology::all_robots())
        models.push_back(topology::build_robot(id));
    for (topology::RobotId id : topology::extended_robots())
        models.push_back(topology::build_robot(id));
    // The scaling frontier (paper Sec. 3.3): a 30-segment rigid-body
    // discretization of a continuum/hyper-redundant arm.
    models.push_back(topology::make_serial_chain(30, "hyper30"));

    obs::JsonWriter w(2);
    w.begin_object();
    w.kv("bench", "sweep_throughput");
    w.kv("sweep_workers",
         static_cast<std::uint64_t>(
             core::Executor::instance().worker_count()));
    w.key("robots").begin_array();
    bool all_identical = true;
    for (std::size_t i = 0; i < models.size(); ++i) {
        const bool run_serial =
            serial_all || models[i].num_links() <= kSerialLimit;
        const Row row = measure(models[i], run_serial);
        if (row.compared && !row.identical_points)
            all_identical = false;
        write_row_json(w, row);
    }
    w.end_array();
    w.kv("all_compared_identical", all_identical);
    w.end_object();

    std::printf("%s\n", w.str().c_str());
    if (!json_path.empty()) {
        std::ofstream out(json_path);
        out << w.str() << '\n';
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
            return 1;
        }
    }
    return all_identical ? 0 : 1;
}
