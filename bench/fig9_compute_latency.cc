/**
 * @file
 * Reproduces paper Fig. 9: computation-only latency of one dynamics-
 * gradient evaluation — measured CPU (our Pinocchio-equivalent library),
 * modeled GPU (GRiD-style), and the RoboShape FPGA designs in both
 * compositions, plus the Robomorphic Computing prior-work point on iiwa.
 */

#include "accel/design.h"
#include "accel/sim_engine.h"
#include "baselines/cpu_baseline.h"
#include "baselines/gpu_model.h"
#include "baselines/rc_baseline.h"
#include "bench/bench_util.h"
#include "dynamics/fd_derivatives.h"
#include "dynamics/robot_state.h"
#include "topology/topology_info.h"

int
main(int argc, char **argv)
{
    using namespace roboshape;
    const std::string json = bench::json_out_path(argc, argv);
    obs::RunReport report(
        "fig9_compute_latency",
        "Fig. 9: Computation-only latency, one gradient evaluation");
    bench::print_header(
        "Fig. 9: Computation-only latency, one gradient evaluation",
        "paper Fig. 9 (speedups 4.0-4.4x over CPU, 8.0-15.1x over GPU)");

    bool all_verified = true;
    std::printf("%-8s %12s %12s %14s %16s %9s %9s %5s\n", "robot",
                "CPU(us)", "GPU(us)", "FPGA nopipe", "FPGA avg-pipe",
                "vs CPU", "vs GPU", "sim");
    for (topology::RobotId id : topology::shipped_robots()) {
        const topology::RobotModel model = topology::build_robot(id);
        const topology::TopologyInfo topo(model);

        const double cpu_us =
            baselines::measure_fd_gradients(model, 3000).min_us;
        const double gpu_us =
            baselines::gpu_gradient_latency_us(topo.metrics());

        const accel::AcceleratorDesign design(model,
                                              bench::shipped_params(id));
        const double fpga_nopipe = design.latency_us_no_pipelining();
        const double fpga_pipe = design.latency_us_pipelined();

        // Functional check: the design actually computes the gradients it
        // is being credited for, on the compiled simulation engine.
        const auto state = dynamics::random_state(model, 7);
        const auto ref = dynamics::forward_dynamics_gradients(
            model, topo, state.q, state.qd, state.tau);
        const accel::SimEngine engine(design);
        auto ws = engine.make_workspace();
        accel::EngineResult sim;
        const accel::InputPacket packet{&state.q, &state.qd, &ref.qdd,
                                        &ref.mass_inv};
        engine.run(ws, packet, sim);
        const bool verified =
            linalg::max_abs_diff(sim.dqdd_dq, ref.dqdd_dq) < 1e-9 &&
            linalg::max_abs_diff(sim.dqdd_dqd, ref.dqdd_dqd) < 1e-9;

        std::printf("%-8s %12.2f %12.2f %8.2f@%4.0fns %10.2f@%4.0fns "
                    "%8.1fx %8.1fx %5s\n",
                    topology::robot_name(id), cpu_us, gpu_us, fpga_nopipe,
                    design.clock_period_ns(), fpga_pipe,
                    design.clock_period_ns(), cpu_us / fpga_nopipe,
                    gpu_us / fpga_nopipe, verified ? "PASS" : "FAIL");
        all_verified = all_verified && verified;

        const std::string key = topology::robot_name(id);
        report.metric(key + ".cpu_us", cpu_us);
        report.metric(key + ".gpu_us", gpu_us);
        report.metric(key + ".fpga_nopipe_us", fpga_nopipe);
        report.metric(key + ".fpga_pipelined_us", fpga_pipe);
        report.metric(key + ".verified", verified);
    }
    report.metric("all_verified", all_verified);

    // Robomorphic Computing prior work: iiwa only (paper Fig. 9 note).
    std::printf("\nPrior work (Robomorphic Computing [32]):\n");
    for (topology::RobotId id : topology::shipped_robots()) {
        const topology::RobotModel model = topology::build_robot(id);
        const baselines::RcDesign rc =
            baselines::generate_rc_design(model, accel::vcu118());
        if (rc.latency_us) {
            const accel::AcceleratorDesign rs(model,
                                              bench::shipped_params(id));
            std::printf("  %-8s RC latency %.2f us (RoboShape %.2f us — "
                        "identical for the serial chain)\n",
                        topology::robot_name(id), *rc.latency_us,
                        rs.latency_us_no_pipelining());
        } else {
            std::printf("  %-8s RC: not implementable — %s\n",
                        topology::robot_name(id), rc.limitation.c_str());
        }
    }
    std::printf("\npaper: CPU latency scales ~N; GPU similar for iiwa/HyQ; "
                "RoboShape wins 4.0-4.4x\nover CPU and 8.0-15.1x over GPU; "
                "RC matches RoboShape on iiwa but cannot scale.\n");
    return bench::write_report(report, json) ? 0 : 1;
}
