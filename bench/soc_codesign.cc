/**
 * @file
 * SoC co-design study (paper abstract / Sec. 3.3 / Sec. 6): jointly sizing
 * two topology-parameterized accelerators that share one resource
 * envelope — the analysis "critical to managing resources across
 * accelerators in future full robotics domain-specific SoCs".
 *
 * Two scenarios:
 *  1. one robot, two kernels — a dynamics-gradient engine and a mass-
 *     matrix (CRBA) engine for HyQ sharing the XCVU9P;
 *  2. two robots, one kernel — gradient engines for iiwa and HyQ sharing
 *     the small VC707.
 */

#include "bench/bench_util.h"
#include "core/soc_codesign.h"

namespace {

using namespace roboshape;

void
print_frontier(const char *title,
               const std::vector<core::SocDesignPoint> &frontier,
               const accel::FpgaPlatform &platform)
{
    std::printf("\n%s (%s @80%%): %zu Pareto pairs\n", title,
                platform.name.c_str(), frontier.size());
    std::printf("  %-30s %8s | %-30s %8s | %7s %7s\n", "component A",
                "cycles", "component B", "cycles", "LUT%", "DSP%");
    for (const core::SocDesignPoint &p : frontier) {
        std::printf("  %-30s %8lld | %-30s %8lld | %6.1f%% %6.1f%%\n",
                    p.first.params.to_string().c_str(),
                    static_cast<long long>(p.first.cycles),
                    p.second.params.to_string().c_str(),
                    static_cast<long long>(p.second.cycles),
                    100.0 * static_cast<double>(p.total_luts()) /
                        static_cast<double>(platform.luts),
                    100.0 * static_cast<double>(p.total_dsps()) /
                        static_cast<double>(platform.dsps));
    }
}

} // namespace

int
main()
{
    using namespace roboshape;
    bench::print_header(
        "SoC co-design: two accelerators, one resource envelope",
        "paper Sec. 3.3 / Sec. 6 (co-optimizing accelerator sizes)");

    const topology::RobotModel hyq =
        topology::build_robot(topology::RobotId::kHyq);
    const topology::RobotModel iiwa =
        topology::build_robot(topology::RobotId::kIiwa);

    // Scenario 1: gradient + CRBA engines for HyQ on the VCU118.
    print_frontier(
        "HyQ dynamics-gradient + HyQ mass-matrix",
        core::codesign_pareto(
            {&hyq, sched::KernelKind::kDynamicsGradient},
            {&hyq, sched::KernelKind::kMassMatrix}, accel::vcu118()),
        accel::vcu118());

    // Scenario 2: gradient engines for two robots sharing the VCU118 —
    // e.g. a mobile manipulator pairing an arm controller with a
    // locomotion controller.
    print_frontier(
        "iiwa gradient + HyQ gradient",
        core::codesign_pareto(
            {&iiwa, sched::KernelKind::kDynamicsGradient},
            {&hyq, sched::KernelKind::kDynamicsGradient}, accel::vcu118()),
        accel::vcu118());

    // Scenario 3: the same pairing on the small VC707 is infeasible —
    // the SoC budget cannot host both engines at any sizing.
    const auto tight = core::codesign_pareto(
        {&iiwa, sched::KernelKind::kDynamicsGradient},
        {&hyq, sched::KernelKind::kDynamicsGradient}, accel::vc707());
    std::printf("\niiwa + HyQ gradients on the VC707: %zu feasible pairs "
                "(the envelope is too\nsmall to host both engines — "
                "co-design also tells you when to split across\nparts).\n",
                tight.size());

    std::printf("\nEach row trades one accelerator's latency against the "
                "other under the shared\nbudget; the analytic knob-to-"
                "resource mapping is what makes this joint space\n"
                "enumerable at all — the paper's SoC co-generation "
                "argument.\n");
    return 0;
}
