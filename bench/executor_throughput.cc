/**
 * @file
 * Executor throughput gates: the persistent work-stealing pool
 * (core::Executor) against the pre-executor spawn-join baseline.
 *
 * Two measured claims, both gated (ctest label "bench"):
 *
 *  1. Fork-join amortization.  Small `run_batch` calls used to pay thread
 *     spawn/join on every invocation; the executor pays a futex wake.
 *     The bench reimplements the old statically-strided spawn-join
 *     parallel_for, runs both on SimEngine batches of {1, 2, 4, 8}
 *     gradient packets at 4 requested workers, and gates the geometric
 *     mean latency speedup over the batches that actually spawned
 *     (width > 1) at >= kForkJoinGate.  Outputs must stay bit-identical
 *     between the two paths — the speedup is not allowed to change a bit.
 *     The SIMD lane path is forced off so both paths run the identical
 *     scalar trace.
 *
 *  2. Shard balance on an irregular topology.  A hyper-redundant serial
 *     chain's sweep-precompute jobs (forward/backward/blocked-multiply
 *     schedules, cost growing with the knob) are timed individually; the
 *     bench then models the old static stride (worker t takes jobs t,
 *     t + W, ...) against the executor's chunked dynamic assignment
 *     (greedy list schedule of the same chunks stealing produces) and
 *     gates that the dynamic makespan is no worse.  The real executor
 *     run's exec.steals / exec.tasks counters are reported alongside the
 *     model so the JSON shows stealing actually happened.
 *
 * Emits machine-readable JSON on stdout (and to `--json <path>`);
 * EXPERIMENTS.md ("Executor throughput") tracks the numbers.  Exit
 * status is nonzero when outputs diverge or a gate fails.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "accel/sim_engine.h"
#include "bench/bench_util.h"
#include "core/executor.h"
#include "core/sweep_context.h"
#include "dynamics/fd_derivatives.h"
#include "dynamics/robot_state.h"
#include "linalg/matrix.h"
#include "obs/json.h"
#include "obs/registry.h"
#include "topology/parametric_robots.h"
#include "topology/robot_library.h"
#include "topology/topology_info.h"

namespace {

using namespace roboshape;
using Clock = std::chrono::steady_clock;

/// Requested workers for both paths; more than this host's core count is
/// fine — the cost being measured is spawn/join vs futex wake, which the
/// baseline pays per call regardless of how the OS schedules the threads.
constexpr std::size_t kWorkers = 4;
constexpr std::size_t kSmallBatches[] = {1, 2, 4, 8};
/// Required geomean latency speedup over the spawning batch sizes.
constexpr double kForkJoinGate = 1.5;
/// Links of the hyper-redundant chain for the balance section (the
/// paper's scalability robots, Fig. 17 territory).
constexpr std::size_t kChainLinks = 30;
/// The modeled dynamic makespan must not exceed static by more than this.
// The makespan comparison is a model over *measured* per-job costs, and
// on a sorted cost ramp the static stride is accidentally near-balanced
// while the greedy model assigns whole 3-job chunks — so the ratio sits
// near 1.0 and measurement noise (a few percent at the microsecond
// scale) can swing it either way.  Tolerate 5% and retry the measurement
// before declaring the dynamic assignment worse.
constexpr double kBalanceTolerance = 1.05;
constexpr int kBalanceAttempts = 3;

double
seconds_since(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Minimum latency (seconds) of fn() over ~budget_s of repetitions —
 *  min, not mean, because spawn-cost is the floor being measured and
 *  scheduler noise only adds. */
template <typename Fn>
double
min_latency_s(Fn &&fn, double budget_s = 0.25, std::size_t max_reps = 4000)
{
    double best = -1.0;
    const Clock::time_point start = Clock::now();
    for (std::size_t rep = 0; rep < max_reps; ++rep) {
        const Clock::time_point t0 = Clock::now();
        fn();
        const double dt = seconds_since(t0);
        if (best < 0.0 || dt < best)
            best = dt;
        if (seconds_since(start) > budget_s)
            break;
    }
    return best;
}

/** The pre-executor run_batch: spawn @p threads std::threads per call,
 *  worker t statically striding packets t, t + T, ... (the exact sharding
 *  of the old core::parallel_for). */
void
baseline_run_batch(const accel::SimEngine &engine,
                   std::span<const accel::InputPacket> in,
                   std::span<accel::EngineResult> out,
                   std::vector<accel::SimEngine::Workspace> &ws,
                   std::size_t threads)
{
    const std::size_t workers =
        std::clamp<std::size_t>(threads, 1, in.size());
    while (ws.size() < workers)
        ws.push_back(engine.make_workspace());
    if (workers <= 1) {
        for (std::size_t i = 0; i < in.size(); ++i)
            engine.run(ws[0], in[i], out[i]);
        return;
    }
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t)
        pool.emplace_back([&, t] {
            for (std::size_t i = t; i < in.size(); i += workers)
                engine.run(ws[t], in[i], out[i]);
        });
    for (std::thread &worker : pool)
        worker.join();
}

struct GradientInputs
{
    std::vector<dynamics::RobotState> states;
    std::vector<dynamics::ForwardDynamicsGradients> refs;
    std::vector<accel::InputPacket> packets;
};

GradientInputs
make_gradient_inputs(const topology::RobotModel &model,
                     const topology::TopologyInfo &topo, std::size_t count)
{
    GradientInputs in;
    for (std::size_t i = 0; i < count; ++i) {
        in.states.push_back(
            dynamics::random_state(model, 40 + static_cast<int>(i)));
        const dynamics::RobotState &s = in.states.back();
        in.refs.push_back(dynamics::forward_dynamics_gradients(
            model, topo, s.q, s.qd, s.tau));
    }
    for (std::size_t i = 0; i < count; ++i)
        in.packets.push_back({&in.states[i].q, &in.states[i].qd,
                              &in.refs[i].qdd, &in.refs[i].mass_inv});
    return in;
}

double
max_result_diff(const accel::EngineResult &a, const accel::EngineResult &b)
{
    return std::max({linalg::max_abs_diff(a.tau, b.tau),
                     linalg::max_abs_diff(a.dqdd_dq, b.dqdd_dq),
                     linalg::max_abs_diff(a.dqdd_dqd, b.dqdd_dqd)});
}

/** Times every sweep-precompute job of a fresh hyper-chain context, min
 *  over @p reps fresh contexts (each context runs each job exactly once,
 *  cold). */
std::vector<double>
measure_precompute_job_costs(const topology::RobotModel &model, int reps)
{
    std::vector<double> costs;
    for (int rep = 0; rep < reps; ++rep) {
        core::SweepContext ctx(model);
        const std::size_t n = ctx.num_links();
        const std::size_t jobs = 2 * n + n; // fwd, bwd, blocked-multiply
        if (costs.empty())
            costs.assign(jobs, -1.0);
        for (std::size_t j = 0; j < jobs; ++j) {
            const Clock::time_point t0 = Clock::now();
            if (j < n)
                ctx.forward(j + 1);
            else if (j < 2 * n)
                ctx.backward(j - n + 1);
            else
                ctx.block_multiply(j - 2 * n + 1);
            const double dt = seconds_since(t0);
            if (costs[j] < 0.0 || dt < costs[j])
                costs[j] = dt;
        }
    }
    return costs;
}

/** Makespan of the old static stride: worker t sums jobs t, t + W, ... */
double
static_stride_makespan(const std::vector<double> &costs, std::size_t w)
{
    std::vector<double> lane(w, 0.0);
    for (std::size_t j = 0; j < costs.size(); ++j)
        lane[j % w] += costs[j];
    return *std::max_element(lane.begin(), lane.end());
}

/**
 * Makespan of the executor's chunked dynamic assignment: jobs are chunked
 * exactly as run_chunked chunks them (several chunks per lane), then list-
 * scheduled greedily — each chunk goes to the lane that frees up first,
 * which is what randomized stealing converges to.
 */
double
dynamic_chunked_makespan(const std::vector<double> &costs, std::size_t w)
{
    constexpr std::size_t kChunksPerLane = 8; // matches run_chunked
    const std::size_t count = costs.size();
    const std::size_t max_chunks = std::min(count, w * kChunksPerLane);
    const std::size_t grain = (count + max_chunks - 1) / max_chunks;
    std::vector<double> lane(w, 0.0);
    for (std::size_t begin = 0; begin < count; begin += grain) {
        const std::size_t end = std::min(count, begin + grain);
        double chunk = 0.0;
        for (std::size_t j = begin; j < end; ++j)
            chunk += costs[j];
        *std::min_element(lane.begin(), lane.end()) += chunk;
    }
    return *std::max_element(lane.begin(), lane.end());
}

} // namespace

int
main(int argc, char **argv)
{
    // Force the scalar shard path before anything queries the lane
    // backend: the baseline is per-packet scalar, and the comparison must
    // isolate fork-join cost, not SIMD width.
    setenv("ROBOSHAPE_SIMD", "off", 1);

    const std::string json_path = bench::json_out_path(argc, argv);
    bench::print_header(
        "executor_throughput: persistent pool vs spawn-join baseline",
        "RoboShape deployment substrate (PR 7 executor)");

    obs::JsonWriter w(2);
    w.begin_object();
    w.key("bench").value("executor_throughput");
    w.key("workers").value(static_cast<std::uint64_t>(kWorkers));
    w.key("effective_worker_default")
        .value(static_cast<std::uint64_t>(
            core::Executor::instance().worker_count()));

    // ---- Section 1: fork-join amortization -----------------------------
    const topology::RobotModel model =
        topology::build_robot(topology::RobotId::kIiwa);
    const topology::TopologyInfo topo(model);
    const accel::AcceleratorDesign design(
        model, bench::shipped_params(topology::RobotId::kIiwa));
    const accel::SimEngine engine(design);

    const std::size_t max_batch =
        *std::max_element(std::begin(kSmallBatches),
                          std::end(kSmallBatches));
    const GradientInputs inputs =
        make_gradient_inputs(model, topo, max_batch);

    bool identical = true;
    double log_sum = 0.0;
    std::size_t gated = 0;
    w.key("fork_join").begin_array();
    for (const std::size_t batch : kSmallBatches) {
        const std::span<const accel::InputPacket> packets(
            inputs.packets.data(), batch);
        std::vector<accel::EngineResult> out_base(batch);
        std::vector<accel::EngineResult> out_exec(batch);
        std::vector<accel::SimEngine::Workspace> base_ws;
        accel::SimEngine::BatchWorkspace exec_ws;
        const std::size_t width =
            core::Executor::instance().resolve_width(batch, kWorkers);

        // Warm both paths: workspaces sized, pool spawned, results sized.
        baseline_run_batch(engine, packets, out_base, base_ws, kWorkers);
        engine.run_batch(packets, out_exec, exec_ws, kWorkers);
        for (std::size_t i = 0; i < batch; ++i)
            if (max_result_diff(out_base[i], out_exec[i]) != 0.0)
                identical = false;

        const double base_s = min_latency_s([&] {
            baseline_run_batch(engine, packets, out_base, base_ws,
                               kWorkers);
        });
        const double exec_s = min_latency_s([&] {
            engine.run_batch(packets, out_exec, exec_ws, kWorkers);
        });
        const double speedup = base_s / exec_s;
        // Only widths that actually spawned threads gate: at width 1 both
        // paths are the same serial loop.
        if (width > 1) {
            log_sum += std::log(speedup);
            ++gated;
        }
        w.begin_object();
        w.key("batch").value(static_cast<std::uint64_t>(batch));
        w.key("width").value(static_cast<std::uint64_t>(width));
        w.key("baseline_us").value(base_s * 1e6);
        w.key("executor_us").value(exec_s * 1e6);
        w.key("speedup").value(speedup);
        w.key("gated").value(width > 1);
        w.end_object();
        std::printf("batch %2zu (width %zu): spawn-join %8.1f us, "
                    "executor %8.1f us, %.2fx\n",
                    batch, width, base_s * 1e6, exec_s * 1e6, speedup);
    }
    w.end_array();
    const double geomean =
        gated > 0 ? std::exp(log_sum / static_cast<double>(gated)) : 1.0;
    const bool fork_join_ok = geomean >= kForkJoinGate;
    w.key("fork_join_geomean_speedup").value(geomean);
    w.key("fork_join_gate").value(kForkJoinGate);
    w.key("fork_join_ok").value(fork_join_ok);
    w.key("outputs_identical").value(identical);
    std::printf("fork-join geomean speedup %.2fx (gate %.1fx), outputs "
                "%s\n",
                geomean, kForkJoinGate,
                identical ? "bit-identical" : "DIVERGED");

    // ---- Section 2: shard balance on an irregular topology -------------
    const topology::RobotModel chain =
        topology::make_serial_chain(kChainLinks);
    std::vector<double> costs;
    double static_ms = 0.0;
    double dynamic_ms = 0.0;
    bool balance_ok = false;
    for (int attempt = 0; attempt < kBalanceAttempts && !balance_ok;
         ++attempt) {
        costs = measure_precompute_job_costs(chain, /*reps=*/5);
        static_ms = static_stride_makespan(costs, kWorkers);
        dynamic_ms = dynamic_chunked_makespan(costs, kWorkers);
        balance_ok = dynamic_ms <= static_ms * kBalanceTolerance;
    }
    const double improvement = static_ms / dynamic_ms;

    // Real executor run of the same jobs: report the steal/task counters
    // so the JSON shows dynamic rebalancing actually engaged.
    const std::uint64_t steals0 =
        obs::registry().counter("exec.steals").value();
    const std::uint64_t tasks0 =
        obs::registry().counter("exec.tasks").value();
    {
        core::SweepContext ctx(chain);
        ctx.precompute_stage_schedules(kWorkers);
    }
    const std::uint64_t steals =
        obs::registry().counter("exec.steals").value() - steals0;
    const std::uint64_t tasks =
        obs::registry().counter("exec.tasks").value() - tasks0;

    w.key("shard_balance").begin_object();
    w.key("robot").value("serial_chain");
    w.key("links").value(static_cast<std::uint64_t>(kChainLinks));
    w.key("jobs").value(static_cast<std::uint64_t>(costs.size()));
    w.key("static_stride_makespan_us").value(static_ms * 1e6);
    w.key("dynamic_chunked_makespan_us").value(dynamic_ms * 1e6);
    w.key("improvement").value(improvement);
    w.key("tolerance").value(kBalanceTolerance);
    w.key("balance_ok").value(balance_ok);
    w.key("measured_exec_tasks").value(tasks);
    w.key("measured_exec_steals").value(steals);
    w.end_object();
    w.end_object();
    std::printf("shard balance (%zu-link chain, %zu jobs): static stride "
                "%.1f us, dynamic %.1f us, %.2fx; executor ran %llu "
                "stealable chunks, %llu steals\n",
                kChainLinks, costs.size(), static_ms * 1e6,
                dynamic_ms * 1e6, improvement,
                static_cast<unsigned long long>(tasks),
                static_cast<unsigned long long>(steals));

    std::printf("%s\n", w.str().c_str());
    if (!json_path.empty()) {
        std::ofstream out(json_path);
        out << w.str() << '\n';
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
            return 1;
        }
        std::printf("report: %s\n", json_path.c_str());
    }

    int rc = 0;
    if (!identical) {
        std::fprintf(stderr, "FAIL: executor run_batch diverged from the "
                             "spawn-join baseline\n");
        rc = 1;
    }
    if (!fork_join_ok) {
        std::fprintf(stderr,
                     "FAIL: fork-join geomean speedup %.2fx below %.1fx "
                     "gate\n",
                     geomean, kForkJoinGate);
        rc = 1;
    }
    if (!balance_ok) {
        std::fprintf(stderr,
                     "FAIL: dynamic makespan %.1f us exceeds static "
                     "%.1f us beyond tolerance\n",
                     dynamic_ms * 1e6, static_ms * 1e6);
        rc = 1;
    }
    return rc;
}
