/**
 * @file
 * Ablation: schedule-driven PE power gating (paper Sec. 3.3's dynamic
 * tuning knob for the Dark Silicon power wall).  Static schedules expose
 * every PE's idle intervals at design time; this bench quantifies the
 * energy reclaimed per computation, per robot, at the shipped operating
 * points and at a deliberately over-provisioned one.
 */

#include "accel/power_model.h"
#include "bench/bench_util.h"

namespace {

using namespace roboshape;

void
row(const topology::RobotModel &model, const accel::AcceleratorParams &p,
    const char *tag)
{
    const accel::AcceleratorDesign design(model, p);
    const accel::PowerReport r = accel::estimate_power(design);
    std::printf("%-8s %-24s %7.1f%% %10.1f %10.1f %9.1f %9.1f %7.1f%%\n",
                model.name().c_str(), tag,
                r.mean_pe_utilization * 100.0, r.avg_power_mw,
                r.avg_power_gated_mw, r.energy_uj, r.energy_gated_uj,
                r.gating_savings() * 100.0);
}

} // namespace

int
main()
{
    using namespace roboshape;
    bench::print_header("Ablation: per-PE power gating from static schedules",
                        "paper Sec. 3.3 (power gating / Dark Silicon)");

    std::printf("%-8s %-24s %8s %10s %10s %9s %9s %8s\n", "robot",
                "operating point", "PE-util", "mW", "mW-gated", "uJ",
                "uJ-gated", "saved");
    for (topology::RobotId id : topology::shipped_robots()) {
        const topology::RobotModel model = topology::build_robot(id);
        row(model, bench::shipped_params(id), "shipped knobs");
        const std::size_t n = model.num_links();
        row(model, {n, n, 4}, "max PEs (overprovision)");
        row(model, {1, 1, 4}, "min PEs");
    }
    std::printf("\nGating savings grow with over-provisioning: idle PEs in "
                "a maximally allocated\ndesign burn idle power for the "
                "whole computation unless gated, while a minimal\ndesign "
                "keeps its PEs busy — the same utilization tradeoff Figs. "
                "13/16 expose in\nLUTs shows up in energy.\n");
    return 0;
}
