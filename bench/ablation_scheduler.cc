/**
 * @file
 * Ablation: the scheduler design choices DESIGN.md calls out — the
 * longest-ready-thread priority rule and PE/thread affinity (paper
 * Sec. 4.2's modified depth-first strategy) — plus NOP skipping in the
 * blocked multiply (paper Fig. 6).
 */

#include "bench/bench_util.h"
#include "sched/block_schedule.h"
#include "sched/list_scheduler.h"
#include "sched/task_graph.h"
#include "topology/topology_info.h"

int
main()
{
    using namespace roboshape;
    bench::print_header(
        "Ablation: scheduler policies and blocked-multiply NOP skipping",
        "paper Sec. 4.2 scheduling strategy / Fig. 6 zero-block skipping");

    const sched::TaskTiming timing{6, 4, 9, 5};
    std::printf("%-8s | %18s | %18s | %18s\n", "", "paper policy",
                "FIFO priority", "no affinity");
    std::printf("%-8s | %8s %9s | %8s %9s | %8s %9s\n", "robot", "cycles",
                "restores", "cycles", "restores", "cycles", "restores");
    for (topology::RobotId id : topology::all_robots()) {
        const topology::RobotModel model = topology::build_robot(id);
        const topology::TopologyInfo topo(model);
        const sched::TaskGraph graph(topo);

        const auto run = [&](const sched::SchedulerOptions &options) {
            return sched::schedule_pipelined(graph, 3, 3, timing, options);
        };
        const auto paper = run({true, true});
        const auto fifo = run({false, true});
        const auto no_affinity = run({true, false});
        std::printf("%-8s | %8lld %9zu | %8lld %9zu | %8lld %9zu\n",
                    topology::robot_name(id),
                    static_cast<long long>(paper.makespan),
                    paper.checkpoint_restores,
                    static_cast<long long>(fifo.makespan),
                    fifo.checkpoint_restores,
                    static_cast<long long>(no_affinity.makespan),
                    no_affinity.checkpoint_restores);
    }

    std::printf("\nBlocked multiply with and without zero-tile skipping "
                "(block = 3, 3 units):\n");
    std::printf("%-8s %10s %10s %9s\n", "robot", "skip(cyc)", "dense(cyc)",
                "speedup");
    for (topology::RobotId id : topology::all_robots()) {
        const topology::RobotModel model = topology::build_robot(id);
        const topology::TopologyInfo topo(model);
        const auto a = sched::mass_inverse_mask(topo);
        const auto b = sched::derivative_mask(topo);
        const sched::TileTiming tile{1, 3};
        const auto sparse =
            sched::schedule_block_multiply(a, b, 3, 3, tile, 2, true);
        const auto dense =
            sched::schedule_block_multiply(a, b, 3, 3, tile, 2, false);
        std::printf("%-8s %10lld %10lld %8.2fx\n", topology::robot_name(id),
                    static_cast<long long>(sparse.makespan),
                    static_cast<long long>(dense.makespan),
                    static_cast<double>(dense.makespan) /
                        static_cast<double>(sparse.makespan));
    }
    std::printf("\nThe longest-thread rule and affinity together keep "
                "latency at the paper's\nstrategy while minimizing branch "
                "checkpoint traffic; NOP skipping buys up to\nthe robot's "
                "structural sparsity factor in the multiply stage.\n");
    return 0;
}
