/**
 * @file
 * Reproduces the paper's Sec. 1 motivating claim: forward-dynamics
 * gradients consume 30-90% of total runtime in nonlinear optimal control.
 * Runs the repository's own iLQR solver across robots and horizons and
 * measures where the time goes, then projects the end-to-end solver
 * speedup the accelerator's gradient latency would deliver (Amdahl).
 */

#include "accel/design.h"
#include "baselines/cpu_baseline.h"
#include "bench/bench_util.h"
#include "control/ilqr.h"
#include "topology/topology_info.h"

int
main()
{
    using namespace roboshape;
    bench::print_header(
        "Motivation: dynamics gradients inside nonlinear optimal control",
        "paper Sec. 1 (gradients take 30-90% of solver runtime)");

    std::printf("%-8s %8s %6s %11s %11s %11s %9s %13s\n", "robot",
                "horizon", "iters", "solve(ms)", "grads(ms)", "grad-frac",
                "accel-x", "Amdahl-solve");
    for (topology::RobotId id : topology::shipped_robots()) {
        const topology::RobotModel model = topology::build_robot(id);
        const topology::TopologyInfo topo(model);
        const std::size_t n = model.num_links();

        for (std::size_t horizon : {8u, 32u}) {
            control::IlqrProblem problem;
            problem.q0 = linalg::Vector(n);
            problem.qd0 = linalg::Vector(n);
            problem.q_goal = linalg::Vector(n);
            for (std::size_t i = 0; i < n; ++i)
                problem.q_goal[i] = 0.3;
            problem.horizon = horizon;
            control::IlqrOptions options;
            options.max_iterations = 12;

            const control::IlqrResult r =
                control::solve_ilqr(model, topo, problem, options);

            // Accelerator projection: replace each CPU gradient call with
            // the shipped design's pipelined latency.
            const accel::AcceleratorDesign design(
                model, bench::shipped_params(id));
            const double cpu_grad_us =
                baselines::measure_fd_gradients(model, 500).min_us;
            const double accel_speedup =
                cpu_grad_us / design.latency_us_pipelined();
            const double frac = r.timing.gradient_fraction();
            const double amdahl =
                1.0 / ((1.0 - frac) + frac / accel_speedup);

            std::printf("%-8s %8zu %6zu %11.2f %11.2f %10.0f%% %8.1fx "
                        "%12.2fx\n",
                        topology::robot_name(id), horizon, r.iterations,
                        r.timing.total_us / 1e3,
                        r.timing.linearization_us / 1e3, frac * 100.0,
                        accel_speedup, amdahl);
        }
    }
    std::printf("\npaper: dynamics gradients take 30-90%% of runtime in "
                "DDP-family solvers [7, 32,\n33, 39, 43]; accelerating "
                "them is what unlocks online nonlinear MPC.  The\nAmdahl "
                "column is the end-to-end solver speedup implied by the "
                "accelerator's\ngradient latency.\n");
    return 0;
}
