/**
 * @file
 * Shared helpers for the per-table/figure benchmark harnesses.
 *
 * Every fig* and table* bench accepts `--json <path>` uniformly: pass
 * argc/argv
 * to json_out_path() and hand the resulting path plus a filled
 * obs::RunReport to write_report().  The report schema, string escaping,
 * and registry snapshotting live in obs/run_report.h — benches only choose
 * which headline metrics to record (docs/OBSERVABILITY.md).
 */

#ifndef ROBOSHAPE_BENCH_BENCH_UTIL_H
#define ROBOSHAPE_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstring>
#include <string>

#include "accel/params.h"
#include "obs/run_report.h"
#include "topology/robot_library.h"

namespace roboshape {
namespace bench {

/** Knob settings of the paper's three shipped designs (Sec. 5.1). */
inline accel::AcceleratorParams
shipped_params(topology::RobotId id)
{
    switch (id) {
      case topology::RobotId::kIiwa:
        return {7, 7, 7};
      case topology::RobotId::kHyq:
        return {3, 3, 6};
      case topology::RobotId::kBaxter:
        return {4, 4, 4};
      default:
        return {1, 1, 1};
    }
}

inline void
print_header(const char *title, const char *paper_ref)
{
    std::printf("================================================"
                "======================\n");
    std::printf("%s\n", title);
    std::printf("reproduces: %s\n", paper_ref);
    std::printf("================================================"
                "======================\n");
}

/** Path of the uniform `--json <path>` flag, or "" when not given. */
inline std::string
json_out_path(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], "--json") == 0)
            return argv[i + 1];
    return "";
}

/**
 * Snapshots the obs registry into @p report and writes it to @p path.
 * No-op (returning true) when @p path is empty — benches call this
 * unconditionally at exit.  Prints the artifact path on success.
 */
inline bool
write_report(obs::RunReport &report, const std::string &path)
{
    if (path.empty())
        return true;
    report.capture_counters();
    if (!report.write(path)) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    std::printf("report: %s\n", path.c_str());
    return true;
}

} // namespace bench
} // namespace roboshape

#endif // ROBOSHAPE_BENCH_BENCH_UTIL_H
