/**
 * @file
 * Shared helpers for the per-table/figure benchmark harnesses.
 */

#ifndef ROBOSHAPE_BENCH_BENCH_UTIL_H
#define ROBOSHAPE_BENCH_BENCH_UTIL_H

#include <cstdio>

#include "accel/params.h"
#include "topology/robot_library.h"

namespace roboshape {
namespace bench {

/** Knob settings of the paper's three shipped designs (Sec. 5.1). */
inline accel::AcceleratorParams
shipped_params(topology::RobotId id)
{
    switch (id) {
      case topology::RobotId::kIiwa:
        return {7, 7, 7};
      case topology::RobotId::kHyq:
        return {3, 3, 6};
      case topology::RobotId::kBaxter:
        return {4, 4, 4};
      default:
        return {1, 1, 1};
    }
}

inline void
print_header(const char *title, const char *paper_ref)
{
    std::printf("================================================"
                "======================\n");
    std::printf("%s\n", title);
    std::printf("reproduces: %s\n", paper_ref);
    std::printf("================================================"
                "======================\n");
}

} // namespace bench
} // namespace roboshape

#endif // ROBOSHAPE_BENCH_BENCH_UTIL_H
