/**
 * @file
 * Reproduces paper Table 2: resource utilization of the three shipped
 * RoboShape designs on the Xilinx XCVU9P.
 */

#include "accel/design.h"
#include "bench/bench_util.h"

int
main(int argc, char **argv)
{
    using namespace roboshape;
    const std::string json = bench::json_out_path(argc, argv);
    obs::RunReport report("table2_resources",
                          "Table 2: Resource Utilization of RoboShape "
                          "Designs");
    bench::print_header("Table 2: Resource Utilization of RoboShape Designs",
                        "paper Table 2 (LUTs/DSPs on the XCVU9P)");

    std::printf("%-26s %14s %14s %14s\n", "FPGA Resources (XCVU9P)",
                "iiwa", "HyQ", "Baxter");
    long long luts[3], dsps[3];
    double lutp[3], dspp[3];
    int col = 0;
    for (topology::RobotId id : topology::shipped_robots()) {
        const accel::AcceleratorDesign d(topology::build_robot(id),
                                         bench::shipped_params(id));
        luts[col] = d.resources().luts;
        dsps[col] = d.resources().dsps;
        lutp[col] = d.resources().lut_utilization(accel::vcu118()) * 100.0;
        dspp[col] = d.resources().dsp_utilization(accel::vcu118()) * 100.0;
        const std::string key = topology::robot_name(id);
        report.metric(key + ".luts", static_cast<std::int64_t>(luts[col]));
        report.metric(key + ".dsps", static_cast<std::int64_t>(dsps[col]));
        ++col;
    }
    std::printf("%-26s", "LUTs (1182k Total)");
    for (int c = 0; c < 3; ++c)
        std::printf(" %7lld (%4.1f%%)", luts[c], lutp[c]);
    std::printf("\n%-26s", "DSPs (6840 Total)");
    for (int c = 0; c < 3; ++c)
        std::printf(" %7lld (%4.1f%%)", dsps[c], dspp[c]);
    std::printf("\n\npaper:  LUTs 514552 (43.5%%) | 507158 (42.9%%) | "
                "873805 (73.9%%)\n");
    std::printf("paper:  DSPs   5448 (79.6%%) |   3008 (44.0%%) |   "
                "3342 (48.9%%)\n");
    return bench::write_report(report, json) ? 0 : 1;
}
