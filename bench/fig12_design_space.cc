/**
 * @file
 * Reproduces paper Fig. 12: the full design space of every robot — point
 * counts, latency and LUT ranges, and the latency/LUT Pareto frontier
 * (the figure's red crosses), printed as normalized series.
 */

#include <climits>

#include "bench/bench_util.h"
#include "core/design_space.h"

int
main(int argc, char **argv)
{
    using namespace roboshape;
    const std::string json = bench::json_out_path(argc, argv);
    obs::RunReport report("fig12_design_space",
                          "Fig. 12: Design spaces and Pareto frontiers");
    bench::print_header(
        "Fig. 12: Design spaces and Pareto frontiers per robot",
        "paper Fig. 12 (1000s of points; max latencies 829-7230 cycles; "
        "max LUTs 507k-2600k)");

    long long min_of_max_lat = LLONG_MAX, max_of_max_lat = 0;
    long long min_of_max_lut = LLONG_MAX, max_of_max_lut = 0;
    for (topology::RobotId id : topology::all_robots()) {
        const topology::RobotModel model = topology::build_robot(id);
        const core::DesignSpace space = core::DesignSpace::sweep(model);
        const auto frontier = space.pareto_frontier();

        std::printf("\n%-8s: %4zu points, cycles [%lld..%lld], LUTs "
                    "[%lldk..%lldk], frontier %zu pts\n",
                    topology::robot_name(id), space.points().size(),
                    static_cast<long long>(space.min_cycles()),
                    static_cast<long long>(space.max_cycles()),
                    static_cast<long long>(space.min_luts() / 1000),
                    static_cast<long long>(space.max_luts() / 1000),
                    frontier.size());
        std::printf("  frontier (normLUTs, normLat):");
        for (const core::DesignPoint &p : frontier) {
            std::printf(" (%.2f,%.2f)",
                        static_cast<double>(p.resources.luts) /
                            static_cast<double>(space.max_luts()),
                        static_cast<double>(p.cycles) /
                            static_cast<double>(space.max_cycles()));
        }
        std::printf("\n");
        const std::string key = topology::robot_name(id);
        report.metric(key + ".points", space.points().size());
        report.metric(key + ".min_cycles",
                      static_cast<std::int64_t>(space.min_cycles()));
        report.metric(key + ".max_cycles",
                      static_cast<std::int64_t>(space.max_cycles()));
        report.metric(key + ".max_luts",
                      static_cast<std::int64_t>(space.max_luts()));
        report.metric(key + ".frontier_points", frontier.size());
        min_of_max_lat = std::min(
            min_of_max_lat, static_cast<long long>(space.max_cycles()));
        max_of_max_lat = std::max(
            max_of_max_lat, static_cast<long long>(space.max_cycles()));
        min_of_max_lut = std::min(
            min_of_max_lut, static_cast<long long>(space.max_luts()));
        max_of_max_lut = std::max(
            max_of_max_lut, static_cast<long long>(space.max_luts()));
    }
    std::printf("\nmaximum latencies across robots: %lld-%lld cycles "
                "(paper: 829-7230)\n",
                min_of_max_lat, max_of_max_lat);
    std::printf("maximum LUTs across robots: %lldk-%lldk (paper: "
                "507k-2600k)\n",
                min_of_max_lut / 1000, max_of_max_lut / 1000);
    return bench::write_report(report, json) ? 0 : 1;
}
