/**
 * @file
 * Functional simulation throughput: the compiled engine (accel::SimEngine)
 * against the legacy one-shot simulators, across every library robot and
 * all three Table 1 kernels.
 *
 * For each robot x kernel pair the bench measures single-stream calls/sec
 * of the legacy simulator and of a warm engine, checks the engine output
 * is EXACTLY equal to the legacy result (max |diff| == 0, the compiled
 * trace must not change a single bit of arithmetic), and — for the
 * gradient kernel — sweeps run_batch() over 1/2/4 worker threads to show
 * the batch path is deterministic at any thread count.  Emits
 * machine-readable JSON on stdout (and to a file with `--json <path>`) so
 * successive PRs can track the throughput trajectory; EXPERIMENTS.md
 * ("Functional simulation throughput") explains the fields.
 *
 * Exit status is nonzero when any engine output diverges from the legacy
 * simulators (exactness is the gate; timing is informational).
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "accel/functional_sim.h"
#include "accel/kernel_sim.h"
#include "accel/sim_engine.h"
#include "bench/bench_util.h"
#include "core/parallel.h"
#include "dynamics/fd_derivatives.h"
#include "obs/json.h"
#include "dynamics/robot_state.h"
#include "topology/robot_library.h"
#include "topology/topology_info.h"

namespace {

using namespace roboshape;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kBatchSize = 64;

double
seconds_since(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Runs fn repeatedly for ~@p budget_s seconds; returns calls/sec. */
template <typename Fn>
double
calls_per_sec(Fn &&fn, double budget_s = 0.05)
{
    fn(); // warm-up (first call may allocate)
    std::size_t calls = 0;
    const auto t0 = Clock::now();
    double elapsed = 0.0;
    do {
        for (int i = 0; i < 16; ++i)
            fn();
        calls += 16;
        elapsed = seconds_since(t0);
    } while (elapsed < budget_s);
    return static_cast<double>(calls) / elapsed;
}

double
transform_diff(const spatial::SpatialTransform &a,
               const spatial::SpatialTransform &b)
{
    double d = 0.0;
    for (std::size_t k = 0; k < 9; ++k)
        d = std::max(d, std::abs(a.rotation_matrix().m[k] -
                                 b.rotation_matrix().m[k]));
    d = std::max(d, std::abs(a.translation_vector().x -
                             b.translation_vector().x));
    d = std::max(d, std::abs(a.translation_vector().y -
                             b.translation_vector().y));
    d = std::max(d, std::abs(a.translation_vector().z -
                             b.translation_vector().z));
    return d;
}

double
gradient_diff(const accel::EngineResult &e, const accel::SimResult &l)
{
    double d = linalg::max_abs_diff(e.tau, l.tau);
    d = std::max(d, linalg::max_abs_diff(e.dtau_dq, l.dtau_dq));
    d = std::max(d, linalg::max_abs_diff(e.dtau_dqd, l.dtau_dqd));
    d = std::max(d, linalg::max_abs_diff(e.dqdd_dq, l.dqdd_dq));
    d = std::max(d, linalg::max_abs_diff(e.dqdd_dqd, l.dqdd_dqd));
    if (e.tasks_executed != l.tasks_executed ||
        e.mm_stats.block_macs != l.mm_stats.block_macs ||
        e.mm_stats.block_nops != l.mm_stats.block_nops ||
        e.mm_stats.scalar_macs != l.mm_stats.scalar_macs)
        d = std::max(d, 1.0);
    return d;
}

double
gradient_diff(const accel::EngineResult &a, const accel::EngineResult &b)
{
    double d = linalg::max_abs_diff(a.tau, b.tau);
    d = std::max(d, linalg::max_abs_diff(a.dtau_dq, b.dtau_dq));
    d = std::max(d, linalg::max_abs_diff(a.dtau_dqd, b.dtau_dqd));
    d = std::max(d, linalg::max_abs_diff(a.dqdd_dq, b.dqdd_dq));
    d = std::max(d, linalg::max_abs_diff(a.dqdd_dqd, b.dqdd_dqd));
    if (a.tasks_executed != b.tasks_executed)
        d = std::max(d, 1.0);
    return d;
}

double
kinematics_diff(const accel::EngineResult &e,
                const accel::KinematicsSimResult &l)
{
    double d = 0.0;
    for (std::size_t i = 0; i < e.velocities.size(); ++i) {
        d = std::max(d, (e.velocities[i] - l.velocities[i]).max_abs());
        d = std::max(d, transform_diff(e.base_to_link[i],
                                       l.base_to_link[i]));
        d = std::max(d, linalg::max_abs_diff(e.jacobians[i],
                                             l.jacobians[i]));
    }
    if (e.tasks_executed != l.tasks_executed)
        d = std::max(d, 1.0);
    return d;
}

struct BatchPoint
{
    std::size_t threads = 0;
    double calls_per_sec = 0.0;
    bool identical = false;
};

struct KernelRow
{
    const char *kernel = "";
    std::size_t trace_ops = 0;
    double legacy_cps = 0.0;
    double engine_cps = 0.0;
    double divergence = 0.0;       ///< vs legacy, staged order.
    double divergence_pipelined = 0.0;
    std::vector<BatchPoint> batch; ///< Gradient kernel only.
};

/** Per-packet gradient inputs with stable addresses for InputPacket. */
struct GradientInputs
{
    std::vector<linalg::Vector> q, qd, qdd;
    std::vector<linalg::Matrix> minv;
};

GradientInputs
make_gradient_inputs(const topology::RobotModel &model,
                     const topology::TopologyInfo &topo, std::size_t count)
{
    GradientInputs in;
    for (std::size_t p = 0; p < count; ++p) {
        const auto state =
            dynamics::random_state(model, 1234 + static_cast<int>(p));
        const auto ref = dynamics::forward_dynamics_gradients(
            model, topo, state.q, state.qd, state.tau);
        in.q.push_back(state.q);
        in.qd.push_back(state.qd);
        in.qdd.push_back(ref.qdd);
        in.minv.push_back(ref.mass_inv);
    }
    return in;
}

KernelRow
measure_gradient(const accel::AcceleratorDesign &design,
                 const GradientInputs &in)
{
    KernelRow row;
    row.kernel = "dynamics_gradient";

    const accel::SimEngine engine(design);
    row.trace_ops = engine.trace_length();
    auto ws = engine.make_workspace();
    accel::EngineResult out;
    const accel::InputPacket packet{&in.q[0], &in.qd[0], &in.qdd[0],
                                    &in.minv[0]};
    engine.run(ws, packet, out);
    const auto legacy = accel::simulate(design, in.q[0], in.qd[0],
                                        in.qdd[0], in.minv[0]);
    row.divergence = gradient_diff(out, legacy);
    {
        const accel::SimEngine pipelined(design,
                                         accel::SimOrder::kPipelined);
        auto pws = pipelined.make_workspace();
        accel::EngineResult pout;
        pipelined.run(pws, packet, pout);
        const auto plegacy =
            accel::simulate(design, in.q[0], in.qd[0], in.qdd[0],
                            in.minv[0], dynamics::kDefaultGravity,
                            accel::SimOrder::kPipelined);
        row.divergence_pipelined = gradient_diff(pout, plegacy);
    }

    row.legacy_cps = calls_per_sec([&] {
        accel::simulate(design, in.q[0], in.qd[0], in.qdd[0], in.minv[0]);
    });
    row.engine_cps =
        calls_per_sec([&] { engine.run(ws, packet, out); });

    // Batch path: serial reference, then 1/2/4 worker threads.
    std::vector<accel::InputPacket> packets(kBatchSize);
    for (std::size_t p = 0; p < kBatchSize; ++p) {
        const std::size_t s = p % in.q.size();
        packets[p] = accel::InputPacket{&in.q[s], &in.qd[s], &in.qdd[s],
                                        &in.minv[s]};
    }
    std::vector<accel::EngineResult> reference(kBatchSize);
    for (std::size_t p = 0; p < kBatchSize; ++p)
        engine.run(ws, packets[p], reference[p]);

    for (std::size_t threads : {1u, 2u, 4u}) {
        BatchPoint point;
        point.threads = threads;
        accel::SimEngine::BatchWorkspace bws;
        std::vector<accel::EngineResult> outs(kBatchSize);
        const double batches_per_sec = calls_per_sec([&] {
            engine.run_batch(packets, outs, bws, threads);
        });
        point.calls_per_sec =
            batches_per_sec * static_cast<double>(kBatchSize);
        point.identical = true;
        for (std::size_t p = 0; p < kBatchSize; ++p)
            point.identical =
                point.identical &&
                gradient_diff(outs[p], reference[p]) == 0.0;
        row.batch.push_back(point);
    }
    return row;
}

KernelRow
measure_mass_matrix(const topology::RobotModel &model,
                    const linalg::Vector &q)
{
    KernelRow row;
    row.kernel = "mass_matrix";
    const accel::AcceleratorDesign design(model,
                                          accel::AcceleratorParams{3, 3, 1},
                                          accel::default_timing(),
                                          sched::KernelKind::kMassMatrix);
    const accel::SimEngine engine(design);
    row.trace_ops = engine.trace_length();
    auto ws = engine.make_workspace();
    accel::EngineResult out;
    const accel::InputPacket packet{&q};
    engine.run(ws, packet, out);
    const auto legacy = accel::simulate_mass_matrix(design, q);
    row.divergence = linalg::max_abs_diff(out.mass, legacy.mass);
    if (out.tasks_executed != legacy.tasks_executed)
        row.divergence = std::max(row.divergence, 1.0);
    {
        const accel::SimEngine pipelined(design,
                                         accel::SimOrder::kPipelined);
        auto pws = pipelined.make_workspace();
        accel::EngineResult pout;
        pipelined.run(pws, packet, pout);
        const auto plegacy = accel::simulate_mass_matrix(
            design, q, accel::SimOrder::kPipelined);
        row.divergence_pipelined =
            linalg::max_abs_diff(pout.mass, plegacy.mass);
    }
    row.legacy_cps =
        calls_per_sec([&] { accel::simulate_mass_matrix(design, q); });
    row.engine_cps =
        calls_per_sec([&] { engine.run(ws, packet, out); });
    return row;
}

KernelRow
measure_kinematics(const topology::RobotModel &model,
                   const linalg::Vector &q, const linalg::Vector &qd)
{
    KernelRow row;
    row.kernel = "forward_kinematics";
    const accel::AcceleratorDesign design(
        model, accel::AcceleratorParams{3, 3, 1}, accel::default_timing(),
        sched::KernelKind::kForwardKinematics);
    const accel::SimEngine engine(design);
    row.trace_ops = engine.trace_length();
    auto ws = engine.make_workspace();
    accel::EngineResult out;
    const accel::InputPacket packet{&q, &qd};
    engine.run(ws, packet, out);
    const auto legacy =
        accel::simulate_forward_kinematics(design, q, qd);
    row.divergence = kinematics_diff(out, legacy);
    {
        const accel::SimEngine pipelined(design,
                                         accel::SimOrder::kPipelined);
        auto pws = pipelined.make_workspace();
        accel::EngineResult pout;
        pipelined.run(pws, packet, pout);
        const auto plegacy = accel::simulate_forward_kinematics(
            design, q, qd, accel::SimOrder::kPipelined);
        row.divergence_pipelined = kinematics_diff(pout, plegacy);
    }
    row.legacy_cps = calls_per_sec(
        [&] { accel::simulate_forward_kinematics(design, q, qd); });
    row.engine_cps =
        calls_per_sec([&] { engine.run(ws, packet, out); });
    return row;
}

void
write_kernel_json(obs::JsonWriter &w, const KernelRow &row)
{
    w.begin_object();
    w.kv("kernel", row.kernel);
    w.kv("trace_ops", static_cast<std::uint64_t>(row.trace_ops));
    w.kv("legacy_calls_per_sec", row.legacy_cps);
    w.kv("engine_calls_per_sec", row.engine_cps);
    w.kv("speedup", row.engine_cps / row.legacy_cps);
    w.kv("max_divergence", row.divergence);
    w.kv("max_divergence_pipelined", row.divergence_pipelined);
    if (!row.batch.empty()) {
        w.key("batch").begin_array();
        for (const BatchPoint &point : row.batch) {
            w.begin_object();
            w.kv("threads", static_cast<std::uint64_t>(point.threads));
            w.kv("calls_per_sec", point.calls_per_sec);
            w.kv("identical", point.identical);
            w.end_object();
        }
        w.end_array();
    }
    w.end_object();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path = bench::json_out_path(argc, argv);
    std::vector<topology::RobotId> robots;
    for (topology::RobotId id : topology::all_robots())
        robots.push_back(id);

    bool all_exact = true;
    double min_gradient_speedup = -1.0;

    obs::JsonWriter w(2);
    w.begin_object();
    w.kv("bench", "sim_throughput");
    w.kv("batch_size", static_cast<std::uint64_t>(kBatchSize));
    w.kv("sweep_workers",
         static_cast<std::uint64_t>(
             core::sweep_worker_count(static_cast<std::size_t>(-1))));
    w.key("robots").begin_array();
    for (std::size_t r = 0; r < robots.size(); ++r) {
        const topology::RobotModel model =
            topology::build_robot(robots[r]);
        const topology::TopologyInfo topo(model);
        const accel::AcceleratorDesign design(
            model, bench::shipped_params(robots[r]));
        const GradientInputs inputs =
            make_gradient_inputs(model, topo, 8);

        std::vector<KernelRow> rows;
        rows.push_back(measure_gradient(design, inputs));
        rows.push_back(measure_mass_matrix(model, inputs.q[0]));
        rows.push_back(
            measure_kinematics(model, inputs.q[0], inputs.qd[0]));

        w.begin_object();
        w.kv("name", topology::robot_name(robots[r]));
        w.kv("links", static_cast<std::uint64_t>(model.num_links()));
        w.key("kernels").begin_array();
        for (const KernelRow &row : rows) {
            if (row.divergence != 0.0 || row.divergence_pipelined != 0.0)
                all_exact = false;
            for (const BatchPoint &point : row.batch)
                if (!point.identical)
                    all_exact = false;
            if (std::string(row.kernel) == "dynamics_gradient") {
                const double speedup = row.engine_cps / row.legacy_cps;
                if (min_gradient_speedup < 0.0 ||
                    speedup < min_gradient_speedup)
                    min_gradient_speedup = speedup;
            }
            write_kernel_json(w, row);
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.kv("min_gradient_speedup", min_gradient_speedup);
    w.kv("all_exact", all_exact);
    w.end_object();

    std::printf("%s\n", w.str().c_str());
    if (!json_path.empty()) {
        std::ofstream out(json_path);
        out << w.str() << '\n';
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
            return 1;
        }
    }
    return all_exact ? 0 : 1;
}
