/**
 * @file
 * Functional simulation throughput: the compiled engine (accel::SimEngine)
 * against the legacy one-shot simulators, across every library robot and
 * all three Table 1 kernels.
 *
 * For each robot x kernel pair the bench measures single-stream calls/sec
 * of the legacy simulator and of a warm engine, checks the engine output
 * is EXACTLY equal to the legacy result (max |diff| == 0, the compiled
 * trace must not change a single bit of arithmetic), and — for the
 * gradient kernel — sweeps run_batch() over 1/2/4 worker threads to show
 * the batch path is deterministic at any thread count.  Emits
 * machine-readable JSON on stdout (and to a file with `--json <path>`) so
 * successive PRs can track the throughput trajectory; EXPERIMENTS.md
 * ("Functional simulation throughput") explains the fields.
 *
 * The gradient kernel additionally gets a SIMD batch-lane section
 * (accel/simd_lanes.h): a wide batch (kWideBatchSize packets) is run once
 * with the lane backend forced off (scalar shard path) and once with the
 * detected lane backend, both at one worker thread so the comparison
 * isolates the SIMD effect.  The lane outputs are compared to the scalar
 * ones in ulps — the documented exactness policy is 0 ulp — and on hosts
 * with a vector backend the fleet geometric-mean wide-batch speedup must
 * meet min(kLaneSpeedupGateCap, width/2).  Both are gates, not just
 * report fields.
 *
 * Exit status is nonzero when any engine output diverges from the legacy
 * simulators, when the lane path is off by even one ulp, or when a
 * vector backend misses the speedup gate (single-stream timing stays
 * informational).
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "accel/functional_sim.h"
#include "accel/kernel_sim.h"
#include "accel/sim_engine.h"
#include "accel/simd_lanes.h"
#include "bench/bench_util.h"
#include "core/executor.h"
#include "dynamics/fd_derivatives.h"
#include "obs/json.h"
#include "dynamics/robot_state.h"
#include "topology/robot_library.h"
#include "topology/topology_info.h"

namespace {

using namespace roboshape;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kBatchSize = 64;
/// Batch size for the scalar-vs-lane comparison: wide enough that the
/// lane groups dominate and the tail is noise.
constexpr std::size_t kWideBatchSize = 256;
/// Required wide-batch lane speedup over the forced-scalar path when a
/// vector backend is active, gated on the geometric mean across the
/// robot fleet (per-robot values and the fleet minimum are reported as
/// well).  The requirement is width-aware: an 8-wide backend must clear
/// the full 4x, while a 4-wide backend — whose ideal speedup is its own
/// width before any marshalling overhead — must clear width/2.  The
/// geomean is the gated statistic because a single-robot minimum on a
/// busy CI host flaps across any threshold the fleet genuinely meets.
constexpr double kLaneSpeedupGateCap = 4.0;

double
seconds_since(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Runs fn repeatedly for ~@p budget_s seconds; returns calls/sec. */
template <typename Fn>
double
calls_per_sec(Fn &&fn, double budget_s = 0.05)
{
    fn(); // warm-up (first call may allocate)
    std::size_t calls = 0;
    const auto t0 = Clock::now();
    double elapsed = 0.0;
    do {
        for (int i = 0; i < 16; ++i)
            fn();
        calls += 16;
        elapsed = seconds_since(t0);
    } while (elapsed < budget_s);
    return static_cast<double>(calls) / elapsed;
}

/**
 * Best of three timed runs.  Used for the gated scalar-vs-lane ratio:
 * taking the max of repeated measurements filters scheduler and
 * frequency-scaling interference (which only ever makes a run slower),
 * where a single sample on a busy host can skew the ratio either way.
 */
template <typename Fn>
double
best_calls_per_sec(Fn &&fn)
{
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep)
        best = std::max(best, calls_per_sec(fn, 0.08));
    return best;
}

double
transform_diff(const spatial::SpatialTransform &a,
               const spatial::SpatialTransform &b)
{
    double d = 0.0;
    for (std::size_t k = 0; k < 9; ++k)
        d = std::max(d, std::abs(a.rotation_matrix().m[k] -
                                 b.rotation_matrix().m[k]));
    d = std::max(d, std::abs(a.translation_vector().x -
                             b.translation_vector().x));
    d = std::max(d, std::abs(a.translation_vector().y -
                             b.translation_vector().y));
    d = std::max(d, std::abs(a.translation_vector().z -
                             b.translation_vector().z));
    return d;
}

double
gradient_diff(const accel::EngineResult &e, const accel::SimResult &l)
{
    double d = linalg::max_abs_diff(e.tau, l.tau);
    d = std::max(d, linalg::max_abs_diff(e.dtau_dq, l.dtau_dq));
    d = std::max(d, linalg::max_abs_diff(e.dtau_dqd, l.dtau_dqd));
    d = std::max(d, linalg::max_abs_diff(e.dqdd_dq, l.dqdd_dq));
    d = std::max(d, linalg::max_abs_diff(e.dqdd_dqd, l.dqdd_dqd));
    if (e.tasks_executed != l.tasks_executed ||
        e.mm_stats.block_macs != l.mm_stats.block_macs ||
        e.mm_stats.block_nops != l.mm_stats.block_nops ||
        e.mm_stats.scalar_macs != l.mm_stats.scalar_macs)
        d = std::max(d, 1.0);
    return d;
}

double
gradient_diff(const accel::EngineResult &a, const accel::EngineResult &b)
{
    double d = linalg::max_abs_diff(a.tau, b.tau);
    d = std::max(d, linalg::max_abs_diff(a.dtau_dq, b.dtau_dq));
    d = std::max(d, linalg::max_abs_diff(a.dtau_dqd, b.dtau_dqd));
    d = std::max(d, linalg::max_abs_diff(a.dqdd_dq, b.dqdd_dq));
    d = std::max(d, linalg::max_abs_diff(a.dqdd_dqd, b.dqdd_dqd));
    if (a.tasks_executed != b.tasks_executed)
        d = std::max(d, 1.0);
    return d;
}

/**
 * Distance between two doubles in units of last place, via the usual
 * monotone mapping of the IEEE-754 bit pattern onto ordered integers
 * (negative values map below positives, so +0.0 and -0.0 are 1 apart —
 * the lane exactness policy really is "same bits").  NaN anywhere is
 * maximally distant.
 */
std::uint64_t
ulp_distance(double a, double b)
{
    if (std::isnan(a) || std::isnan(b))
        return std::numeric_limits<std::uint64_t>::max();
    const auto key = [](double v) {
        std::uint64_t u = 0;
        std::memcpy(&u, &v, sizeof u);
        constexpr std::uint64_t sign = 1ull << 63;
        return (u & sign) ? ~u : (u | sign);
    };
    const std::uint64_t ka = key(a), kb = key(b);
    return ka > kb ? ka - kb : kb - ka;
}

std::uint64_t
ulp_diff(const linalg::Vector &a, const linalg::Vector &b)
{
    std::uint64_t d = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        d = std::max(d, ulp_distance(a[i], b[i]));
    return d;
}

std::uint64_t
ulp_diff(const linalg::Matrix &a, const linalg::Matrix &b)
{
    std::uint64_t d = 0;
    for (std::size_t r = 0; r < a.rows(); ++r)
        for (std::size_t c = 0; c < a.cols(); ++c)
            d = std::max(d, ulp_distance(a(r, c), b(r, c)));
    return d;
}

std::uint64_t
gradient_ulp(const accel::EngineResult &a, const accel::EngineResult &b)
{
    std::uint64_t d = ulp_diff(a.tau, b.tau);
    d = std::max(d, ulp_diff(a.dtau_dq, b.dtau_dq));
    d = std::max(d, ulp_diff(a.dtau_dqd, b.dtau_dqd));
    d = std::max(d, ulp_diff(a.dqdd_dq, b.dqdd_dq));
    d = std::max(d, ulp_diff(a.dqdd_dqd, b.dqdd_dqd));
    return d;
}

double
kinematics_diff(const accel::EngineResult &e,
                const accel::KinematicsSimResult &l)
{
    double d = 0.0;
    for (std::size_t i = 0; i < e.velocities.size(); ++i) {
        d = std::max(d, (e.velocities[i] - l.velocities[i]).max_abs());
        d = std::max(d, transform_diff(e.base_to_link[i],
                                       l.base_to_link[i]));
        d = std::max(d, linalg::max_abs_diff(e.jacobians[i],
                                             l.jacobians[i]));
    }
    if (e.tasks_executed != l.tasks_executed)
        d = std::max(d, 1.0);
    return d;
}

struct BatchPoint
{
    std::size_t threads = 0;
    double calls_per_sec = 0.0;
    bool identical = false;
};

/** Scalar-vs-lane comparison on one wide batch (gradient kernel only). */
struct LaneSection
{
    bool measured = false;       ///< False when no vector backend exists.
    const char *backend = "scalar";
    std::size_t width = 1;
    double scalar_cps = 0.0;     ///< Forced-scalar shard path, 1 thread.
    double lane_cps = 0.0;       ///< Lane path, same batch, 1 thread.
    double speedup = 1.0;
    std::uint64_t max_ulp = 0;   ///< Lane vs scalar outputs (gate: 0).
    bool stats_match = true;     ///< tasks_executed + mm_stats identical.
};

struct KernelRow
{
    const char *kernel = "";
    std::size_t trace_ops = 0;
    double legacy_cps = 0.0;
    double engine_cps = 0.0;
    double divergence = 0.0;       ///< vs legacy, staged order.
    double divergence_pipelined = 0.0;
    std::vector<BatchPoint> batch; ///< Gradient kernel only.
    LaneSection lane;              ///< Gradient kernel only.
};

/** Per-packet gradient inputs with stable addresses for InputPacket. */
struct GradientInputs
{
    std::vector<linalg::Vector> q, qd, qdd;
    std::vector<linalg::Matrix> minv;
};

GradientInputs
make_gradient_inputs(const topology::RobotModel &model,
                     const topology::TopologyInfo &topo, std::size_t count)
{
    GradientInputs in;
    for (std::size_t p = 0; p < count; ++p) {
        const auto state =
            dynamics::random_state(model, 1234 + static_cast<int>(p));
        const auto ref = dynamics::forward_dynamics_gradients(
            model, topo, state.q, state.qd, state.tau);
        in.q.push_back(state.q);
        in.qd.push_back(state.qd);
        in.qdd.push_back(ref.qdd);
        in.minv.push_back(ref.mass_inv);
    }
    return in;
}

KernelRow
measure_gradient(const accel::AcceleratorDesign &design,
                 const GradientInputs &in)
{
    KernelRow row;
    row.kernel = "dynamics_gradient";

    const accel::SimEngine engine(design);
    row.trace_ops = engine.trace_length();
    auto ws = engine.make_workspace();
    accel::EngineResult out;
    const accel::InputPacket packet{&in.q[0], &in.qd[0], &in.qdd[0],
                                    &in.minv[0]};
    engine.run(ws, packet, out);
    const auto legacy = accel::simulate(design, in.q[0], in.qd[0],
                                        in.qdd[0], in.minv[0]);
    row.divergence = gradient_diff(out, legacy);
    {
        const accel::SimEngine pipelined(design,
                                         accel::SimOrder::kPipelined);
        auto pws = pipelined.make_workspace();
        accel::EngineResult pout;
        pipelined.run(pws, packet, pout);
        const auto plegacy =
            accel::simulate(design, in.q[0], in.qd[0], in.qdd[0],
                            in.minv[0], dynamics::kDefaultGravity,
                            accel::SimOrder::kPipelined);
        row.divergence_pipelined = gradient_diff(pout, plegacy);
    }

    row.legacy_cps = calls_per_sec([&] {
        accel::simulate(design, in.q[0], in.qd[0], in.qdd[0], in.minv[0]);
    });
    row.engine_cps =
        calls_per_sec([&] { engine.run(ws, packet, out); });

    // Batch path: serial reference, then 1/2/4 worker threads.
    std::vector<accel::InputPacket> packets(kBatchSize);
    for (std::size_t p = 0; p < kBatchSize; ++p) {
        const std::size_t s = p % in.q.size();
        packets[p] = accel::InputPacket{&in.q[s], &in.qd[s], &in.qdd[s],
                                        &in.minv[s]};
    }
    std::vector<accel::EngineResult> reference(kBatchSize);
    for (std::size_t p = 0; p < kBatchSize; ++p)
        engine.run(ws, packets[p], reference[p]);

    for (std::size_t threads : {1u, 2u, 4u}) {
        BatchPoint point;
        point.threads = threads;
        accel::SimEngine::BatchWorkspace bws;
        std::vector<accel::EngineResult> outs(kBatchSize);
        const double batches_per_sec = calls_per_sec([&] {
            engine.run_batch(packets, outs, bws, threads);
        });
        point.calls_per_sec =
            batches_per_sec * static_cast<double>(kBatchSize);
        point.identical = true;
        for (std::size_t p = 0; p < kBatchSize; ++p)
            point.identical =
                point.identical &&
                gradient_diff(outs[p], reference[p]) == 0.0;
        row.batch.push_back(point);
    }

    // SIMD batch-lane section: forced-scalar vs lane backend on one wide
    // batch, single worker thread so the ratio isolates the lane effect.
    const accel::simd::LaneBackend &active = accel::simd::lane_backend();
    row.lane.backend = active.name;
    row.lane.width = active.width;
    row.lane.measured = active.gradient != nullptr;
    {
        std::vector<accel::InputPacket> wide(kWideBatchSize);
        for (std::size_t p = 0; p < kWideBatchSize; ++p) {
            const std::size_t s = p % in.q.size();
            wide[p] = accel::InputPacket{&in.q[s], &in.qd[s], &in.qdd[s],
                                         &in.minv[s]};
        }
        accel::SimEngine::BatchWorkspace bws;
        std::vector<accel::EngineResult> scalar_out(kWideBatchSize);
        std::vector<accel::EngineResult> lane_out(kWideBatchSize);

        accel::simd::set_lane_backend("off");
        const double scalar_bps = best_calls_per_sec([&] {
            engine.run_batch(wide, scalar_out, bws, 1);
        });
        row.lane.scalar_cps =
            scalar_bps * static_cast<double>(kWideBatchSize);

        // Restore the backend that was active before the forced-scalar
        // pass (set_lane_backend by name always succeeds for a name that
        // lane_backend() itself returned).
        accel::simd::set_lane_backend(active.name);
        if (row.lane.measured) {
            const double lane_bps = best_calls_per_sec([&] {
                engine.run_batch(wide, lane_out, bws, 1);
            });
            row.lane.lane_cps =
                lane_bps * static_cast<double>(kWideBatchSize);
            row.lane.speedup = row.lane.lane_cps / row.lane.scalar_cps;
            for (std::size_t p = 0; p < kWideBatchSize; ++p) {
                row.lane.max_ulp =
                    std::max(row.lane.max_ulp,
                             gradient_ulp(lane_out[p], scalar_out[p]));
                row.lane.stats_match =
                    row.lane.stats_match &&
                    lane_out[p].tasks_executed ==
                        scalar_out[p].tasks_executed &&
                    lane_out[p].mm_stats.block_macs ==
                        scalar_out[p].mm_stats.block_macs &&
                    lane_out[p].mm_stats.block_nops ==
                        scalar_out[p].mm_stats.block_nops &&
                    lane_out[p].mm_stats.scalar_macs ==
                        scalar_out[p].mm_stats.scalar_macs;
            }
        } else {
            row.lane.lane_cps = row.lane.scalar_cps;
        }
    }
    return row;
}

KernelRow
measure_mass_matrix(const topology::RobotModel &model,
                    const linalg::Vector &q)
{
    KernelRow row;
    row.kernel = "mass_matrix";
    const accel::AcceleratorDesign design(model,
                                          accel::AcceleratorParams{3, 3, 1},
                                          accel::default_timing(),
                                          sched::KernelKind::kMassMatrix);
    const accel::SimEngine engine(design);
    row.trace_ops = engine.trace_length();
    auto ws = engine.make_workspace();
    accel::EngineResult out;
    const accel::InputPacket packet{&q};
    engine.run(ws, packet, out);
    const auto legacy = accel::simulate_mass_matrix(design, q);
    row.divergence = linalg::max_abs_diff(out.mass, legacy.mass);
    if (out.tasks_executed != legacy.tasks_executed)
        row.divergence = std::max(row.divergence, 1.0);
    {
        const accel::SimEngine pipelined(design,
                                         accel::SimOrder::kPipelined);
        auto pws = pipelined.make_workspace();
        accel::EngineResult pout;
        pipelined.run(pws, packet, pout);
        const auto plegacy = accel::simulate_mass_matrix(
            design, q, accel::SimOrder::kPipelined);
        row.divergence_pipelined =
            linalg::max_abs_diff(pout.mass, plegacy.mass);
    }
    row.legacy_cps =
        calls_per_sec([&] { accel::simulate_mass_matrix(design, q); });
    row.engine_cps =
        calls_per_sec([&] { engine.run(ws, packet, out); });
    return row;
}

KernelRow
measure_kinematics(const topology::RobotModel &model,
                   const linalg::Vector &q, const linalg::Vector &qd)
{
    KernelRow row;
    row.kernel = "forward_kinematics";
    const accel::AcceleratorDesign design(
        model, accel::AcceleratorParams{3, 3, 1}, accel::default_timing(),
        sched::KernelKind::kForwardKinematics);
    const accel::SimEngine engine(design);
    row.trace_ops = engine.trace_length();
    auto ws = engine.make_workspace();
    accel::EngineResult out;
    const accel::InputPacket packet{&q, &qd};
    engine.run(ws, packet, out);
    const auto legacy =
        accel::simulate_forward_kinematics(design, q, qd);
    row.divergence = kinematics_diff(out, legacy);
    {
        const accel::SimEngine pipelined(design,
                                         accel::SimOrder::kPipelined);
        auto pws = pipelined.make_workspace();
        accel::EngineResult pout;
        pipelined.run(pws, packet, pout);
        const auto plegacy = accel::simulate_forward_kinematics(
            design, q, qd, accel::SimOrder::kPipelined);
        row.divergence_pipelined = kinematics_diff(pout, plegacy);
    }
    row.legacy_cps = calls_per_sec(
        [&] { accel::simulate_forward_kinematics(design, q, qd); });
    row.engine_cps =
        calls_per_sec([&] { engine.run(ws, packet, out); });
    return row;
}

void
write_kernel_json(obs::JsonWriter &w, const KernelRow &row)
{
    w.begin_object();
    w.kv("kernel", row.kernel);
    w.kv("trace_ops", static_cast<std::uint64_t>(row.trace_ops));
    w.kv("legacy_calls_per_sec", row.legacy_cps);
    w.kv("engine_calls_per_sec", row.engine_cps);
    w.kv("speedup", row.engine_cps / row.legacy_cps);
    w.kv("max_divergence", row.divergence);
    w.kv("max_divergence_pipelined", row.divergence_pipelined);
    if (!row.batch.empty()) {
        w.key("batch").begin_array();
        for (const BatchPoint &point : row.batch) {
            w.begin_object();
            w.kv("threads", static_cast<std::uint64_t>(point.threads));
            w.kv("calls_per_sec", point.calls_per_sec);
            w.kv("identical", point.identical);
            w.end_object();
        }
        w.end_array();
        w.key("lane").begin_object();
        w.kv("backend", row.lane.backend);
        w.kv("width", static_cast<std::uint64_t>(row.lane.width));
        w.kv("measured", row.lane.measured);
        w.kv("wide_batch", static_cast<std::uint64_t>(kWideBatchSize));
        w.kv("scalar_calls_per_sec", row.lane.scalar_cps);
        w.kv("lane_calls_per_sec", row.lane.lane_cps);
        w.kv("speedup", row.lane.speedup);
        w.kv("max_ulp", row.lane.max_ulp);
        w.kv("stats_match", row.lane.stats_match);
        w.end_object();
    }
    w.end_object();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path = bench::json_out_path(argc, argv);
    std::vector<topology::RobotId> robots;
    for (topology::RobotId id : topology::all_robots())
        robots.push_back(id);

    bool all_exact = true;
    double min_gradient_speedup = -1.0;
    // Lane gates: ulp distance must be 0 everywhere; when a vector
    // backend is active the fleet geomean wide-batch speedup must clear
    // the width-aware gate (see kLaneSpeedupGateCap).
    bool lane_active = false;
    bool lane_exact = true;
    double min_lane_speedup = -1.0;
    double lane_log_sum = 0.0;
    std::size_t lane_count = 0;
    std::uint64_t max_lane_ulp = 0;

    obs::JsonWriter w(2);
    w.begin_object();
    w.kv("bench", "sim_throughput");
    w.kv("lane_backend", accel::simd::lane_backend().name);
    w.kv("lane_width", static_cast<std::uint64_t>(
                           accel::simd::lane_backend().width));
    w.kv("batch_size", static_cast<std::uint64_t>(kBatchSize));
    w.kv("wide_batch_size", static_cast<std::uint64_t>(kWideBatchSize));
    w.kv("sweep_workers",
         static_cast<std::uint64_t>(
             core::Executor::instance().worker_count()));
    w.key("robots").begin_array();
    for (std::size_t r = 0; r < robots.size(); ++r) {
        const topology::RobotModel model =
            topology::build_robot(robots[r]);
        const topology::TopologyInfo topo(model);
        const accel::AcceleratorDesign design(
            model, bench::shipped_params(robots[r]));
        const GradientInputs inputs =
            make_gradient_inputs(model, topo, 8);

        std::vector<KernelRow> rows;
        rows.push_back(measure_gradient(design, inputs));
        rows.push_back(measure_mass_matrix(model, inputs.q[0]));
        rows.push_back(
            measure_kinematics(model, inputs.q[0], inputs.qd[0]));

        w.begin_object();
        w.kv("name", topology::robot_name(robots[r]));
        w.kv("links", static_cast<std::uint64_t>(model.num_links()));
        w.key("kernels").begin_array();
        for (const KernelRow &row : rows) {
            if (row.divergence != 0.0 || row.divergence_pipelined != 0.0)
                all_exact = false;
            for (const BatchPoint &point : row.batch)
                if (!point.identical)
                    all_exact = false;
            if (std::string(row.kernel) == "dynamics_gradient") {
                const double speedup = row.engine_cps / row.legacy_cps;
                if (min_gradient_speedup < 0.0 ||
                    speedup < min_gradient_speedup)
                    min_gradient_speedup = speedup;
                if (row.lane.measured) {
                    lane_active = true;
                    if (min_lane_speedup < 0.0 ||
                        row.lane.speedup < min_lane_speedup)
                        min_lane_speedup = row.lane.speedup;
                    lane_log_sum += std::log(row.lane.speedup);
                    ++lane_count;
                    max_lane_ulp =
                        std::max(max_lane_ulp, row.lane.max_ulp);
                    if (row.lane.max_ulp != 0 || !row.lane.stats_match)
                        lane_exact = false;
                }
            }
            write_kernel_json(w, row);
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.kv("min_gradient_speedup", min_gradient_speedup);
    w.kv("all_exact", all_exact);
    // Lane gates (docs/SIM_ENGINE.md "Exactness policy"): speedup only
    // gates builds/hosts that actually have a vector backend; a
    // -DROBOSHAPE_SIMD=OFF build reports lane_speedup_ok=true vacuously.
    const std::size_t lane_width = accel::simd::lane_backend().width;
    const double lane_gate = std::min(
        kLaneSpeedupGateCap, 0.5 * static_cast<double>(lane_width));
    const double geomean_lane_speedup =
        lane_count > 0
            ? std::exp(lane_log_sum / static_cast<double>(lane_count))
            : 1.0;
    const bool lane_speedup_ok =
        !lane_active || geomean_lane_speedup >= lane_gate;
    const bool lane_ulp_ok = lane_exact && max_lane_ulp == 0;
    w.key("lane_gates").begin_object();
    w.kv("active", lane_active);
    w.kv("speedup_gate", lane_gate);
    w.kv("geomean_lane_speedup", geomean_lane_speedup);
    w.kv("min_lane_speedup", lane_active ? min_lane_speedup : 1.0);
    w.kv("speedup_ok", lane_speedup_ok);
    w.kv("max_ulp", max_lane_ulp);
    w.kv("ulp_gate", static_cast<std::uint64_t>(0));
    w.kv("ulp_ok", lane_ulp_ok);
    w.end_object();
    w.end_object();

    std::printf("%s\n", w.str().c_str());
    if (!json_path.empty()) {
        std::ofstream out(json_path);
        out << w.str() << '\n';
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
            return 1;
        }
    }
    if (!lane_speedup_ok)
        std::fprintf(stderr,
                     "FAIL: geomean lane speedup %.2fx below %.1fx gate "
                     "(fleet min %.2fx)\n",
                     geomean_lane_speedup, lane_gate, min_lane_speedup);
    if (!lane_ulp_ok)
        std::fprintf(stderr, "FAIL: lane outputs differ from scalar "
                             "(max %llu ulp, gate 0)\n",
                     static_cast<unsigned long long>(max_lane_ulp));
    return (all_exact && lane_speedup_ok && lane_ulp_ok) ? 0 : 1;
}
