/**
 * @file
 * Reproduces paper Fig. 14: the degree of parallelism of forward and
 * backward traversal patterns per robot — forward threads launch per
 * independent limb; backward threads scale with subtree breadth — and the
 * thread-length bounds that justify the Max-Leaf-Depth / Max-Descendants
 * allocation heuristics.
 */

#include "bench/bench_util.h"
#include "sched/list_scheduler.h"
#include "sched/task_graph.h"
#include "topology/topology_info.h"

int
main(int argc, char **argv)
{
    using namespace roboshape;
    const std::string json = bench::json_out_path(argc, argv);
    obs::RunReport report("fig14_traversal_parallelism",
                          "Fig. 14: Traversal parallelism from topology");
    bench::print_header(
        "Fig. 14: Traversal parallelism from robot topology",
        "paper Fig. 14");

    std::printf("%-8s %10s %10s %12s %12s %14s\n", "robot", "fwd-par",
                "bwd-par", "fwd-thread", "bwd-thread", "saturation-PEs");
    for (topology::RobotId id : topology::all_robots()) {
        const topology::RobotModel model = topology::build_robot(id);
        const topology::TopologyInfo topo(model);
        const sched::TaskGraph graph(topo);
        const auto metrics = topo.metrics();

        // Smallest forward PE count achieving the stage's best makespan.
        const auto saturation = [&](const std::vector<sched::TaskType> &ts) {
            const sched::TaskTiming unit{1, 1, 1, 1};
            const std::int64_t best =
                sched::schedule_stage(graph, ts, model.num_links(), unit)
                    .makespan;
            for (std::size_t p = 1; p <= model.num_links(); ++p)
                if (sched::schedule_stage(graph, ts, p, unit).makespan ==
                    best)
                    return p;
            return model.num_links();
        };
        const std::size_t sat_fwd =
            saturation({sched::TaskType::kRneaForward,
                        sched::TaskType::kGradForward});
        const std::size_t sat_bwd =
            saturation({sched::TaskType::kRneaBackward,
                        sched::TaskType::kGradBackward});

        std::printf("%-8s %10zu %10zu %12zu %12zu %8zu/%zu\n",
                    topology::robot_name(id),
                    graph.forward_initial_parallelism(),
                    graph.backward_initial_parallelism(),
                    metrics.max_leaf_depth, metrics.max_descendants,
                    sat_fwd, sat_bwd);
        const std::string key = topology::robot_name(id);
        report.metric(key + ".forward_parallelism",
                      graph.forward_initial_parallelism());
        report.metric(key + ".backward_parallelism",
                      graph.backward_initial_parallelism());
        report.metric(key + ".saturation_pes_fwd", sat_fwd);
        report.metric(key + ".saturation_pes_bwd", sat_bwd);
    }
    std::printf("\nfwd-par: threads launchable at forward-stage start (= "
                "independent limbs);\nbwd-par: backward threads launchable "
                "at stage start; fwd/bwd-thread: longest\nsequential thread "
                "(= max leaf depth / max descendants); saturation-PEs: "
                "fewest\nfwd/bwd PEs reaching the stage's best achievable "
                "makespan.\n");
    return bench::write_report(report, json) ? 0 : 1;
}
