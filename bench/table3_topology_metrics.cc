/**
 * @file
 * Reproduces paper Table 3: topology metrics for the six robots of
 * Fig. 11.
 */

#include "bench/bench_util.h"
#include "topology/topology_info.h"

int
main(int argc, char **argv)
{
    using namespace roboshape;
    const std::string json = bench::json_out_path(argc, argv);
    obs::RunReport report("table3_topology_metrics",
                          "Table 3: Topology Metrics for Robots in "
                          "Fig. 11");
    bench::print_header("Table 3: Topology Metrics for Robots in Fig. 11",
                        "paper Table 3");

    std::printf("%-18s", "Topology Metric");
    for (topology::RobotId id : topology::all_robots())
        std::printf(" %9s", topology::robot_name(id));
    std::printf("\n");

    topology::TopologyMetrics metrics[6];
    int col = 0;
    std::vector<topology::RobotModel> models;
    for (topology::RobotId id : topology::all_robots())
        models.push_back(topology::build_robot(id));
    for (const auto &m : models)
        metrics[col++] = topology::TopologyInfo(m).metrics();
    col = 0;
    for (topology::RobotId id : topology::all_robots()) {
        const std::string key = topology::robot_name(id);
        report.metric(key + ".total_links", metrics[col].total_links);
        report.metric(key + ".max_leaf_depth",
                      metrics[col].max_leaf_depth);
        report.metric(key + ".avg_leaf_depth",
                      metrics[col].avg_leaf_depth);
        report.metric(key + ".max_descendants",
                      metrics[col].max_descendants);
        report.metric(key + ".leaf_depth_stdev",
                      metrics[col].leaf_depth_stdev);
        ++col;
    }

    std::printf("%-18s", "Total Links");
    for (int c = 0; c < 6; ++c)
        std::printf(" %9zu", metrics[c].total_links);
    std::printf("\n%-18s", "Max Leaf Depth");
    for (int c = 0; c < 6; ++c)
        std::printf(" %9zu", metrics[c].max_leaf_depth);
    std::printf("\n%-18s", "Avg. Leaf Depth");
    for (int c = 0; c < 6; ++c)
        std::printf(" %9.1f", metrics[c].avg_leaf_depth);
    std::printf("\n%-18s", "Max Descendants");
    for (int c = 0; c < 6; ++c)
        std::printf(" %9zu", metrics[c].max_descendants);
    std::printf("\n%-18s", "Leaf Depth StDev");
    for (int c = 0; c < 6; ++c)
        std::printf(" %9.2f", metrics[c].leaf_depth_stdev);
    std::printf("\n\npaper: Total Links 7/12/15/12/15/19; Max Leaf Depth "
                "7/3/7/9/9/7;\n       Avg Leaf Depth 7/3/5/9/9/3.8; Max "
                "Descendants 7/3/7/12/15/7;\n       Leaf Depth StDev "
                "0/0/2.8/0/0/1.6 (Baxter printed as 2.3 in the paper;\n"
                "       population stdev of {1,7,7} is 2.83 — see "
                "DESIGN.md)\n");
    return bench::write_report(report, json) ? 0 : 1;
}
