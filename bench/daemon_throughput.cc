/**
 * @file
 * roboshaped load generator + "heavy traffic" regression gate
 * (docs/SERVICE.md).
 *
 * Starts an in-process server on an ephemeral port, records one cold
 * /v1/sweep (the request that actually runs the schedulers), then hammers
 * the same topology from concurrent keep-alive clients — the steady state
 * of a design service fronting a robot fleet, where topologies repeat and
 * almost every request should be a cache hit.
 *
 * The load runs in two modes, interleaved over kRounds rounds with
 * best-of scoring per mode (same discipline as the obs_overhead gate):
 * plain, and with a background Prometheus scraper hitting GET /metrics at
 * 10 Hz — the deployment posture docs/OBSERVABILITY.md promises is free.
 *
 * Gates (exit 1 on violation):
 *   - every hot response is byte-identical to the cold response body
 *     (the two-level cache must never serve a divergent rendering);
 *   - every request answers 200 with an X-Roboshape-Cache: hit header
 *     after the cold one;
 *   - aggregate throughput >= 500 req/s across 8 concurrent clients;
 *   - the 10 Hz scraper costs < 2% of best-case plain throughput.
 *
 * Reports p50/p99 per-request latency and requests/s per mode; `--json
 * <path>` writes the machine-readable document (committed baseline:
 * BENCH_daemon_throughput.json, fields explained in EXPERIMENTS.md).
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "net/http.h"
#include "net/socket.h"
#include "obs/json.h"
#include "obs/registry.h"
#include "service/handlers.h"
#include "service/server.h"

namespace {

using namespace roboshape;

constexpr std::size_t kClients = 8;
constexpr std::size_t kRequestsPerClient = 200;
constexpr std::size_t kRounds = 3;
constexpr double kGateRps = 500.0;
constexpr double kGateScrapeCost = 0.02;
constexpr int kScrapePeriodMs = 100; // 10 Hz
constexpr int kTimeoutMs = 10000;

net::HttpRequest
sweep_request()
{
    net::HttpRequest request;
    request.method = "POST";
    request.target = "/v1/sweep";
    request.version = "HTTP/1.1";
    request.body = "{\"robot\": \"iiwa\"}";
    return request;
}

net::HttpRequest
metrics_request()
{
    net::HttpRequest request;
    request.method = "GET";
    request.target = "/metrics";
    request.version = "HTTP/1.1";
    return request;
}

double
percentile(std::vector<double> sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const std::size_t idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

struct ClientResult
{
    std::vector<double> latencies_us;
    std::size_t mismatches = 0; ///< Non-200, missing hit, or body diff.
};

ClientResult
run_client(std::uint16_t port, const std::string &expected_body)
{
    ClientResult result;
    result.latencies_us.reserve(kRequestsPerClient);
    net::TcpConn conn = net::dial(port, kTimeoutMs);
    if (!conn.valid()) {
        result.mismatches = kRequestsPerClient;
        return result;
    }
    std::string leftover;
    const net::HttpRequest request = sweep_request();
    for (std::size_t i = 0; i < kRequestsPerClient; ++i) {
        const auto start = std::chrono::steady_clock::now();
        const auto response =
            net::roundtrip(conn, request, leftover, kTimeoutMs);
        const double us =
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (!response || response->status != 200 ||
            response->body != expected_body ||
            response->header("X-Roboshape-Cache") != "hit") {
            ++result.mismatches;
            continue;
        }
        result.latencies_us.push_back(us);
    }
    return result;
}

/** One full multi-client round; aggregate stats for gating. */
struct LoadResult
{
    std::vector<double> latencies_us; ///< Sorted.
    std::size_t mismatches = 0;
    double rps = 0.0;
};

LoadResult
run_load(std::uint16_t port, const std::string &expected_body)
{
    const auto wall_start = std::chrono::steady_clock::now();
    std::vector<ClientResult> results(kClients);
    {
        std::vector<std::thread> clients;
        clients.reserve(kClients);
        for (std::size_t c = 0; c < kClients; ++c)
            clients.emplace_back([&, c, port] {
                results[c] = run_client(port, expected_body);
            });
        for (std::thread &t : clients)
            t.join();
    }
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();

    LoadResult load;
    for (const ClientResult &r : results) {
        load.latencies_us.insert(load.latencies_us.end(),
                                 r.latencies_us.begin(),
                                 r.latencies_us.end());
        load.mismatches += r.mismatches;
    }
    std::sort(load.latencies_us.begin(), load.latencies_us.end());
    load.rps = wall_s > 0.0
                   ? static_cast<double>(load.latencies_us.size()) / wall_s
                   : 0.0;
    return load;
}

/**
 * Background 10 Hz Prometheus scraper: one keep-alive connection hitting
 * GET /metrics until stopped, counting successful scrapes.
 */
class Scraper
{
  public:
    explicit Scraper(std::uint16_t port)
        : thread_([this, port] { loop(port); })
    {
    }

    /** Stops and joins; returns (scrapes, failures). */
    std::pair<std::size_t, std::size_t> finish()
    {
        stop_ = true;
        thread_.join();
        return {scrapes_, failures_};
    }

  private:
    void loop(std::uint16_t port)
    {
        net::TcpConn conn = net::dial(port, kTimeoutMs);
        std::string leftover;
        const net::HttpRequest request = metrics_request();
        while (!stop_) {
            if (!conn.valid()) {
                ++failures_;
                return;
            }
            const auto response =
                net::roundtrip(conn, request, leftover, kTimeoutMs);
            if (response && response->status == 200 &&
                !response->body.empty())
                ++scrapes_;
            else
                ++failures_;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(kScrapePeriodMs));
        }
    }

    std::atomic<bool> stop_{false};
    std::size_t scrapes_ = 0;
    std::size_t failures_ = 0;
    std::thread thread_;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::print_header(
        "roboshaped daemon throughput: cached-topology sweep requests",
        "design-as-a-service layer (docs/SERVICE.md), heavy-traffic gate");

    service::Service svc;
    service::ServerOptions options;
    options.port = 0; // ephemeral
    options.workers = kClients;
    options.queue_capacity = 256;
    service::Server server(svc, options);
    if (!server.start()) {
        std::fprintf(stderr, "FAIL: cannot start server: %s\n",
                     server.error().c_str());
        return 1;
    }

    // Cold request: runs the schedulers and renders + caches the body.
    std::string cold_body;
    double cold_us = 0.0;
    {
        net::TcpConn conn = net::dial(server.port(), kTimeoutMs);
        std::string leftover;
        const auto start = std::chrono::steady_clock::now();
        const auto response =
            net::roundtrip(conn, sweep_request(), leftover, kTimeoutMs);
        cold_us = std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - start)
                      .count();
        if (!response || response->status != 200 ||
            response->header("X-Roboshape-Cache") != "miss") {
            std::fprintf(stderr, "FAIL: cold sweep request failed\n");
            return 1;
        }
        cold_body = response->body;
    }

    // Interleaved rounds, best-of per mode: alternating plain and scraped
    // rounds cancels thermal/scheduler drift the same way the
    // obs_overhead gate does.
    LoadResult best_plain, best_scraped;
    std::size_t mismatches = 0;
    std::size_t completed_total = 0;
    std::size_t scrapes = 0;
    std::size_t scrape_failures = 0;
    for (std::size_t round = 0; round < kRounds; ++round) {
        LoadResult plain = run_load(server.port(), cold_body);
        Scraper scraper(server.port());
        LoadResult scraped = run_load(server.port(), cold_body);
        const auto counts = scraper.finish();
        scrapes += counts.first;
        scrape_failures += counts.second;
        mismatches += plain.mismatches + scraped.mismatches;
        completed_total +=
            plain.latencies_us.size() + scraped.latencies_us.size();
        if (plain.rps > best_plain.rps)
            best_plain = std::move(plain);
        if (scraped.rps > best_scraped.rps)
            best_scraped = std::move(scraped);
    }
    server.stop();

    const std::size_t total = 2 * kRounds * kClients * kRequestsPerClient;
    const double p50 = percentile(best_plain.latencies_us, 0.50);
    const double p99 = percentile(best_plain.latencies_us, 0.99);
    const double scrape_cost =
        best_plain.rps > 0.0
            ? std::max(0.0, (best_plain.rps - best_scraped.rps) /
                                best_plain.rps)
            : 1.0;

    std::printf("clients               %zu\n", kClients);
    std::printf("requests per client   %zu (x%zu rounds x2 modes)\n",
                kRequestsPerClient, kRounds);
    std::printf("cold sweep latency    %.1f us\n", cold_us);
    std::printf("hot p50 latency       %.1f us\n", p50);
    std::printf("hot p99 latency       %.1f us\n", p99);
    std::printf("throughput            %.0f req/s (gate >= %.0f)\n",
                best_plain.rps, kGateRps);
    std::printf("with 10 Hz scraper    %.0f req/s (%zu scrapes)\n",
                best_scraped.rps, scrapes);
    std::printf("scrape cost           %.2f%% (gate < %.0f%%)\n",
                scrape_cost * 100.0, kGateScrapeCost * 100.0);
    std::printf("byte-identical        %s (%zu mismatches)\n",
                mismatches == 0 ? "yes" : "NO", mismatches);

    const bool complete = completed_total == total && mismatches == 0 &&
                          scrapes > 0 && scrape_failures == 0;
    const bool fast_enough = best_plain.rps >= kGateRps;
    const bool scrape_cheap = scrape_cost < kGateScrapeCost;

    obs::RunReport report("daemon_throughput",
                          "roboshaped cached-sweep load test");
    report.set_robot("iiwa");
    report.set_kernel("dynamics-gradient");
    report.metric("clients", static_cast<std::uint64_t>(kClients));
    report.metric("rounds", static_cast<std::uint64_t>(kRounds));
    report.metric("requests",
                  static_cast<std::uint64_t>(completed_total));
    report.metric("cold_latency_us", cold_us);
    report.metric("p50_us", p50);
    report.metric("p99_us", p99);
    report.metric("throughput_rps", best_plain.rps);
    report.metric("scraped_throughput_rps", best_scraped.rps);
    report.metric("scrapes", static_cast<std::uint64_t>(scrapes));
    report.metric("scrape_cost_fraction", scrape_cost);
    report.metric("gate_scrape_cost", kGateScrapeCost);
    report.metric("gate_rps", kGateRps);
    report.metric("byte_identical", mismatches == 0);
    report.metric("ok", complete && fast_enough && scrape_cheap);
    if (!bench::write_report(report,
                             bench::json_out_path(argc, argv)))
        return 1;

    if (!complete) {
        std::fprintf(stderr,
                     "FAIL: %zu/%zu requests failed or diverged from the "
                     "cold response (%zu scrape failures)\n",
                     total - completed_total + mismatches, total,
                     scrape_failures);
        return 1;
    }
    if (!fast_enough) {
        std::fprintf(stderr, "FAIL: %.0f req/s below the %.0f req/s gate\n",
                     best_plain.rps, kGateRps);
        return 1;
    }
    if (!scrape_cheap) {
        std::fprintf(stderr,
                     "FAIL: 10 Hz /metrics scraper cost %.2f%% of "
                     "throughput (gate < %.0f%%)\n",
                     scrape_cost * 100.0, kGateScrapeCost * 100.0);
        return 1;
    }
    std::printf("OK\n");
    return 0;
}
