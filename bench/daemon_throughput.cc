/**
 * @file
 * roboshaped load generator + "heavy traffic" regression gate
 * (docs/SERVICE.md).
 *
 * Starts an in-process server on an ephemeral port, records one cold
 * /v1/sweep (the request that actually runs the schedulers), then hammers
 * the same topology from concurrent keep-alive clients — the steady state
 * of a design service fronting a robot fleet, where topologies repeat and
 * almost every request should be a cache hit.
 *
 * Gates (exit 1 on violation):
 *   - every hot response is byte-identical to the cold response body
 *     (the two-level cache must never serve a divergent rendering);
 *   - every request answers 200 with an X-Roboshape-Cache: hit header
 *     after the cold one;
 *   - aggregate throughput >= 500 req/s across 8 concurrent clients.
 *
 * Reports p50/p99 per-request latency and requests/s; `--json <path>`
 * writes the machine-readable document (committed baseline:
 * BENCH_daemon_throughput.json, fields explained in EXPERIMENTS.md).
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "net/http.h"
#include "net/socket.h"
#include "obs/json.h"
#include "obs/registry.h"
#include "service/handlers.h"
#include "service/server.h"

namespace {

using namespace roboshape;

constexpr std::size_t kClients = 8;
constexpr std::size_t kRequestsPerClient = 200;
constexpr double kGateRps = 500.0;
constexpr int kTimeoutMs = 10000;

net::HttpRequest
sweep_request()
{
    net::HttpRequest request;
    request.method = "POST";
    request.target = "/v1/sweep";
    request.version = "HTTP/1.1";
    request.body = "{\"robot\": \"iiwa\"}";
    return request;
}

double
percentile(std::vector<double> sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const std::size_t idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

struct ClientResult
{
    std::vector<double> latencies_us;
    std::size_t mismatches = 0; ///< Non-200, missing hit, or body diff.
};

ClientResult
run_client(std::uint16_t port, const std::string &expected_body)
{
    ClientResult result;
    result.latencies_us.reserve(kRequestsPerClient);
    net::TcpConn conn = net::dial(port, kTimeoutMs);
    if (!conn.valid()) {
        result.mismatches = kRequestsPerClient;
        return result;
    }
    std::string leftover;
    const net::HttpRequest request = sweep_request();
    for (std::size_t i = 0; i < kRequestsPerClient; ++i) {
        const auto start = std::chrono::steady_clock::now();
        const auto response =
            net::roundtrip(conn, request, leftover, kTimeoutMs);
        const double us =
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (!response || response->status != 200 ||
            response->body != expected_body ||
            response->header("X-Roboshape-Cache") != "hit") {
            ++result.mismatches;
            continue;
        }
        result.latencies_us.push_back(us);
    }
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::print_header(
        "roboshaped daemon throughput: cached-topology sweep requests",
        "design-as-a-service layer (docs/SERVICE.md), heavy-traffic gate");

    service::Service svc;
    service::ServerOptions options;
    options.port = 0; // ephemeral
    options.workers = kClients;
    options.queue_capacity = 256;
    service::Server server(svc, options);
    if (!server.start()) {
        std::fprintf(stderr, "FAIL: cannot start server: %s\n",
                     server.error().c_str());
        return 1;
    }

    // Cold request: runs the schedulers and renders + caches the body.
    std::string cold_body;
    double cold_us = 0.0;
    {
        net::TcpConn conn = net::dial(server.port(), kTimeoutMs);
        std::string leftover;
        const auto start = std::chrono::steady_clock::now();
        const auto response =
            net::roundtrip(conn, sweep_request(), leftover, kTimeoutMs);
        cold_us = std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - start)
                      .count();
        if (!response || response->status != 200 ||
            response->header("X-Roboshape-Cache") != "miss") {
            std::fprintf(stderr, "FAIL: cold sweep request failed\n");
            return 1;
        }
        cold_body = response->body;
    }

    const auto wall_start = std::chrono::steady_clock::now();
    std::vector<ClientResult> results(kClients);
    {
        std::vector<std::thread> clients;
        clients.reserve(kClients);
        for (std::size_t c = 0; c < kClients; ++c)
            clients.emplace_back([&, c] {
                results[c] = run_client(server.port(), cold_body);
            });
        for (std::thread &t : clients)
            t.join();
    }
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    server.stop();

    std::vector<double> latencies;
    std::size_t mismatches = 0;
    for (const ClientResult &r : results) {
        latencies.insert(latencies.end(), r.latencies_us.begin(),
                         r.latencies_us.end());
        mismatches += r.mismatches;
    }
    std::sort(latencies.begin(), latencies.end());
    const std::size_t total = kClients * kRequestsPerClient;
    const double p50 = percentile(latencies, 0.50);
    const double p99 = percentile(latencies, 0.99);
    const double rps = wall_s > 0.0
                           ? static_cast<double>(latencies.size()) / wall_s
                           : 0.0;

    std::printf("clients               %zu\n", kClients);
    std::printf("requests per client   %zu\n", kRequestsPerClient);
    std::printf("cold sweep latency    %.1f us\n", cold_us);
    std::printf("hot p50 latency       %.1f us\n", p50);
    std::printf("hot p99 latency       %.1f us\n", p99);
    std::printf("throughput            %.0f req/s (gate >= %.0f)\n", rps,
                kGateRps);
    std::printf("byte-identical        %s (%zu mismatches)\n",
                mismatches == 0 ? "yes" : "NO", mismatches);

    const bool complete = latencies.size() == total && mismatches == 0;
    const bool fast_enough = rps >= kGateRps;

    obs::RunReport report("daemon_throughput",
                          "roboshaped cached-sweep load test");
    report.set_robot("iiwa");
    report.set_kernel("dynamics-gradient");
    report.metric("clients", static_cast<std::uint64_t>(kClients));
    report.metric("requests",
                  static_cast<std::uint64_t>(latencies.size()));
    report.metric("cold_latency_us", cold_us);
    report.metric("p50_us", p50);
    report.metric("p99_us", p99);
    report.metric("throughput_rps", rps);
    report.metric("gate_rps", kGateRps);
    report.metric("byte_identical", mismatches == 0);
    report.metric("ok", complete && fast_enough);
    if (!bench::write_report(report,
                             bench::json_out_path(argc, argv)))
        return 1;

    if (!complete) {
        std::fprintf(stderr,
                     "FAIL: %zu/%zu requests failed or diverged from the "
                     "cold response\n",
                     total - latencies.size() + mismatches, total);
        return 1;
    }
    if (!fast_enough) {
        std::fprintf(stderr, "FAIL: %.0f req/s below the %.0f req/s gate\n",
                     rps, kGateRps);
        return 1;
    }
    std::printf("OK\n");
    return 0;
}
