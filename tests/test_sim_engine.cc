/**
 * @file
 * Golden-equivalence suite for the compiled simulation engine
 * (accel::SimEngine): across the whole robot library and both functional
 * orders, the engine must be *bit-identical* to the legacy one-shot
 * simulators it replaces, reject the adversarial order with the exact
 * legacy diagnostics (at compile time rather than mid-run), shard batches
 * deterministically at any thread count, and perform zero heap
 * allocations once warm — checked through a counting operator new hook.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "accel/functional_sim.h"
#include "accel/kernel_sim.h"
#include "accel/sim_engine.h"
#include "dynamics/fd_derivatives.h"
#include "dynamics/robot_state.h"
#include "topology/robot_library.h"
#include "topology/topology_info.h"

// ----------------------------------------------- allocation counting ----
// Global new/delete are replaced for this binary; the counter only ticks
// between alloc_counter_arm() and alloc_counter_read(), so gtest's own
// allocations stay out of the way.  Sanitizer builds keep their own
// allocator interceptors — replacing operator new under them trips
// alloc-dealloc-mismatch, so the hook (and the test that needs it) is
// compiled out there.

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define ROBOSHAPE_COUNT_ALLOCS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define ROBOSHAPE_COUNT_ALLOCS 0
#else
#define ROBOSHAPE_COUNT_ALLOCS 1
#endif
#else
#define ROBOSHAPE_COUNT_ALLOCS 1
#endif

namespace {
std::atomic<bool> g_alloc_count_armed{false};
std::atomic<std::size_t> g_alloc_count{0};

void
alloc_counter_arm()
{
    g_alloc_count.store(0, std::memory_order_relaxed);
    g_alloc_count_armed.store(true, std::memory_order_relaxed);
}

std::size_t
alloc_counter_read()
{
    g_alloc_count_armed.store(false, std::memory_order_relaxed);
    return g_alloc_count.load(std::memory_order_relaxed);
}

#if ROBOSHAPE_COUNT_ALLOCS
void *
counted_alloc(std::size_t size)
{
    if (g_alloc_count_armed.load(std::memory_order_relaxed))
        g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    void *p = std::malloc(size ? size : 1);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
counted_aligned_alloc(std::size_t size, std::size_t align)
{
    if (g_alloc_count_armed.load(std::memory_order_relaxed))
        g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (align < sizeof(void *))
        align = sizeof(void *);
    void *p = nullptr;
    if (posix_memalign(&p, align, size ? size : 1) != 0)
        throw std::bad_alloc();
    return p;
}
#endif
} // namespace

#if ROBOSHAPE_COUNT_ALLOCS
void *
operator new(std::size_t size)
{
    return counted_alloc(size);
}

void *
operator new[](std::size_t size)
{
    return counted_alloc(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

// Aligned forms: the SIMD lane workspaces allocate 64-byte-aligned
// buffers through these, so they must count too (and must pair with an
// allocator whose pointers plain free() can release).

void *
operator new(std::size_t size, std::align_val_t al)
{
    return counted_aligned_alloc(size, static_cast<std::size_t>(al));
}

void *
operator new[](std::size_t size, std::align_val_t al)
{
    return counted_aligned_alloc(size, static_cast<std::size_t>(al));
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
#endif

namespace roboshape {
namespace accel {
namespace {

using dynamics::RobotState;
using dynamics::random_state;
using sched::KernelKind;
using topology::RobotId;
using topology::RobotModel;
using topology::TopologyInfo;
using topology::build_robot;
using topology::robot_name;

/** all_robots() plus extended_robots(): the whole shipped library. */
const std::vector<RobotId> &
library_robots()
{
    static const std::vector<RobotId> robots = [] {
        std::vector<RobotId> out = topology::all_robots();
        for (RobotId id : topology::extended_robots())
            out.push_back(id);
        return out;
    }();
    return robots;
}

std::string
robot_param_name(const ::testing::TestParamInfo<RobotId> &info)
{
    std::string name = robot_name(info.param);
    for (char &c : name)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return name;
}

/** Exact (bit-level up to zero signs) gradient comparison. */
void
expect_gradient_exact(const EngineResult &sim, const SimResult &legacy)
{
    EXPECT_EQ(linalg::max_abs_diff(sim.tau, legacy.tau), 0.0);
    EXPECT_EQ(linalg::max_abs_diff(sim.dtau_dq, legacy.dtau_dq), 0.0);
    EXPECT_EQ(linalg::max_abs_diff(sim.dtau_dqd, legacy.dtau_dqd), 0.0);
    EXPECT_EQ(linalg::max_abs_diff(sim.dqdd_dq, legacy.dqdd_dq), 0.0);
    EXPECT_EQ(linalg::max_abs_diff(sim.dqdd_dqd, legacy.dqdd_dqd), 0.0);
    EXPECT_EQ(sim.tasks_executed, legacy.tasks_executed);
    EXPECT_EQ(sim.mm_stats.block_macs, legacy.mm_stats.block_macs);
    EXPECT_EQ(sim.mm_stats.block_nops, legacy.mm_stats.block_nops);
    EXPECT_EQ(sim.mm_stats.scalar_macs, legacy.mm_stats.scalar_macs);
}

class SimEngineGolden : public ::testing::TestWithParam<RobotId>
{
};

// Engine output == legacy simulate() to the last bit, both orders.
TEST_P(SimEngineGolden, GradientMatchesLegacyExactly)
{
    const RobotModel m = build_robot(GetParam());
    const TopologyInfo topo(m);
    const RobotState s = random_state(m, 17);
    const auto ref = dynamics::forward_dynamics_gradients(m, topo, s.q,
                                                          s.qd, s.tau);
    const AcceleratorDesign design(m, {3, 3, 3});
    for (SimOrder order : {SimOrder::kStaged, SimOrder::kPipelined}) {
        const SimEngine engine(design, order);
        auto ws = engine.make_workspace();
        EngineResult sim;
        const InputPacket packet{&s.q, &s.qd, &ref.qdd, &ref.mass_inv};
        engine.run(ws, packet, sim);
        const SimResult legacy =
            simulate(design, s.q, s.qd, ref.qdd, ref.mass_inv,
                     dynamics::kDefaultGravity, order);
        expect_gradient_exact(sim, legacy);
        EXPECT_EQ(engine.trace_length(), legacy.tasks_executed);
    }
}

TEST_P(SimEngineGolden, MassMatrixMatchesLegacyExactly)
{
    const RobotModel m = build_robot(GetParam());
    const RobotState s = random_state(m, 19);
    const AcceleratorDesign design(m, {3, 3, 1}, default_timing(),
                                   KernelKind::kMassMatrix);
    for (SimOrder order : {SimOrder::kStaged, SimOrder::kPipelined}) {
        const SimEngine engine(design, order);
        auto ws = engine.make_workspace();
        EngineResult sim;
        const InputPacket packet{&s.q};
        engine.run(ws, packet, sim);
        const MassMatrixSimResult legacy =
            simulate_mass_matrix(design, s.q, order);
        EXPECT_EQ(linalg::max_abs_diff(sim.mass, legacy.mass), 0.0);
        EXPECT_EQ(sim.tasks_executed, legacy.tasks_executed);
    }
}

TEST_P(SimEngineGolden, KinematicsMatchesLegacyExactly)
{
    const RobotModel m = build_robot(GetParam());
    const RobotState s = random_state(m, 23);
    const AcceleratorDesign design(m, {4, 1, 1}, default_timing(),
                                   KernelKind::kForwardKinematics);
    for (SimOrder order : {SimOrder::kStaged, SimOrder::kPipelined}) {
        const SimEngine engine(design, order);
        auto ws = engine.make_workspace();
        EngineResult sim;
        const InputPacket packet{&s.q, &s.qd};
        engine.run(ws, packet, sim);
        const KinematicsSimResult legacy =
            simulate_forward_kinematics(design, s.q, s.qd, order);
        ASSERT_EQ(sim.base_to_link.size(), legacy.base_to_link.size());
        for (std::size_t i = 0; i < m.num_links(); ++i) {
            EXPECT_EQ((sim.base_to_link[i].to_matrix() -
                       legacy.base_to_link[i].to_matrix())
                          .max_abs(),
                      0.0);
            EXPECT_EQ((sim.velocities[i] - legacy.velocities[i]).max_abs(),
                      0.0);
            EXPECT_EQ(linalg::max_abs_diff(sim.jacobians[i],
                                           legacy.jacobians[i]),
                      0.0);
        }
        EXPECT_EQ(sim.tasks_executed, legacy.tasks_executed);
    }
}

INSTANTIATE_TEST_SUITE_P(Robots, SimEngineGolden,
                         ::testing::ValuesIn(library_robots()),
                         robot_param_name);

// ------------------------------------------------- hazard rejection ----

// The engine front-loads the legacy simulators' hazard checks into
// compilation: the adversarial order must throw from the constructor,
// with the exact message the legacy simulator raises mid-run.
TEST(SimEngineHazards, AdversarialOrderThrowsAtCompileTime)
{
    const RobotModel m = build_robot(RobotId::kHyq);
    const TopologyInfo topo(m);
    const RobotState s = random_state(m, 3);
    const auto ref = dynamics::forward_dynamics_gradients(m, topo, s.q,
                                                          s.qd, s.tau);

    const AcceleratorDesign gradient(m, {3, 3, 3});
    const AcceleratorDesign mass(m, {3, 3, 1}, default_timing(),
                                 KernelKind::kMassMatrix);
    const AcceleratorDesign kinematics(m, {4, 1, 1}, default_timing(),
                                       KernelKind::kForwardKinematics);

    // What does the legacy simulator say?
    auto legacy_message = [&](const AcceleratorDesign &design) {
        try {
            switch (design.kernel()) {
              case KernelKind::kDynamicsGradient:
                simulate(design, s.q, s.qd, ref.qdd, ref.mass_inv,
                         dynamics::kDefaultGravity,
                         SimOrder::kAdversarialReversed);
                break;
              case KernelKind::kMassMatrix:
                simulate_mass_matrix(design, s.q,
                                     SimOrder::kAdversarialReversed);
                break;
              case KernelKind::kForwardKinematics:
                simulate_forward_kinematics(
                    design, s.q, s.qd, SimOrder::kAdversarialReversed);
                break;
            }
        } catch (const DataHazardError &e) {
            return std::string(e.what());
        }
        return std::string();
    };

    for (const AcceleratorDesign *design :
         {&gradient, &mass, &kinematics}) {
        const std::string expected = legacy_message(*design);
        ASSERT_FALSE(expected.empty());
        try {
            const SimEngine engine(*design,
                                   SimOrder::kAdversarialReversed);
            FAIL() << "adversarial order compiled without a hazard";
        } catch (const DataHazardError &e) {
            EXPECT_EQ(std::string(e.what()), expected);
        }
    }
}

// ------------------------------------------------- batch determinism ----

TEST(SimEngineBatch, BitIdenticalToSerialAtAnyThreadCount)
{
    const RobotModel m = build_robot(RobotId::kBaxter);
    const TopologyInfo topo(m);
    const AcceleratorDesign design(m, {4, 4, 4});
    const SimEngine engine(design);

    constexpr std::size_t kPackets = 10;
    std::vector<RobotState> states;
    std::vector<dynamics::ForwardDynamicsGradients> refs;
    std::vector<InputPacket> packets;
    for (std::size_t i = 0; i < kPackets; ++i) {
        states.push_back(random_state(m, 100 + static_cast<int>(i)));
        const RobotState &s = states.back();
        refs.push_back(dynamics::forward_dynamics_gradients(m, topo, s.q,
                                                            s.qd, s.tau));
    }
    for (std::size_t i = 0; i < kPackets; ++i)
        packets.push_back({&states[i].q, &states[i].qd, &refs[i].qdd,
                           &refs[i].mass_inv});

    // Serial reference.
    std::vector<EngineResult> serial(kPackets);
    auto ws = engine.make_workspace();
    for (std::size_t i = 0; i < kPackets; ++i)
        engine.run(ws, packets[i], serial[i]);

    for (std::size_t threads : {1u, 2u, 4u}) {
        std::vector<EngineResult> batched(kPackets);
        SimEngine::BatchWorkspace batch;
        engine.run_batch(packets, batched, batch, threads);
        for (std::size_t i = 0; i < kPackets; ++i) {
            EXPECT_EQ(linalg::max_abs_diff(batched[i].dqdd_dq,
                                           serial[i].dqdd_dq),
                      0.0)
                << "packet " << i << " at " << threads << " threads";
            EXPECT_EQ(linalg::max_abs_diff(batched[i].dqdd_dqd,
                                           serial[i].dqdd_dqd),
                      0.0);
            EXPECT_EQ(linalg::max_abs_diff(batched[i].tau, serial[i].tau),
                      0.0);
        }
        // Reusing the batch workspace must stay deterministic too.
        engine.run_batch(packets, batched, batch, threads);
        for (std::size_t i = 0; i < kPackets; ++i)
            EXPECT_EQ(linalg::max_abs_diff(batched[i].dqdd_dq,
                                           serial[i].dqdd_dq),
                      0.0);
    }
}

// ---------------------------------------------------- allocation-free ----

// After one warm-up run() with a given workspace/result pair, further
// runs must not touch the heap at all — the property that makes the
// engine usable inside a real-time control loop.
TEST(SimEngineAllocations, WarmRunsAreAllocationFree)
{
#if !ROBOSHAPE_COUNT_ALLOCS
    GTEST_SKIP() << "allocation counting disabled under sanitizers";
#endif
    const RobotModel m = build_robot(RobotId::kIiwa);
    const TopologyInfo topo(m);
    const RobotState s = random_state(m, 31);
    const auto ref = dynamics::forward_dynamics_gradients(m, topo, s.q,
                                                          s.qd, s.tau);

    struct Case
    {
        const AcceleratorDesign *design;
        InputPacket packet;
    };
    const AcceleratorDesign gradient(m, {7, 7, 7});
    const AcceleratorDesign mass(m, {3, 3, 1}, default_timing(),
                                 KernelKind::kMassMatrix);
    const AcceleratorDesign kinematics(m, {4, 1, 1}, default_timing(),
                                       KernelKind::kForwardKinematics);
    const Case cases[] = {
        {&gradient, InputPacket{&s.q, &s.qd, &ref.qdd, &ref.mass_inv}},
        {&mass, InputPacket{&s.q}},
        {&kinematics, InputPacket{&s.q, &s.qd}},
    };

    for (const Case &c : cases) {
        const SimEngine engine(*c.design);
        auto ws = engine.make_workspace();
        EngineResult out;
        engine.run(ws, c.packet, out); // warm-up sizes everything
        alloc_counter_arm();
        engine.run(ws, c.packet, out);
        engine.run(ws, c.packet, out);
        const std::size_t allocs = alloc_counter_read();
        EXPECT_EQ(allocs, 0u)
            << to_string(c.design->kernel()) << " allocated on a warm run";
    }
}

// Batch fixtures shared by the two warm-batch tests: 13 gradient packets
// (on a lane build that is full lane group(s) plus a scalar tail, so both
// paths and the lane workspaces get warmed and checked).
struct BatchFixture
{
    RobotModel m = build_robot(RobotId::kIiwa);
    TopologyInfo topo{m};
    AcceleratorDesign design{m, {7, 7, 7}};
    std::vector<RobotState> states;
    std::vector<dynamics::ForwardDynamicsGradients> refs;
    std::vector<InputPacket> packets;

    explicit BatchFixture(std::size_t count)
    {
        for (std::size_t i = 0; i < count; ++i) {
            states.push_back(random_state(m, 700 + static_cast<int>(i)));
            const RobotState &s = states.back();
            refs.push_back(dynamics::forward_dynamics_gradients(
                m, topo, s.q, s.qd, s.tau));
        }
        for (std::size_t i = 0; i < count; ++i)
            packets.push_back({&states[i].q, &states[i].qd, &refs[i].qdd,
                               &refs[i].mass_inv});
    }
};

// run_batch with a caller workspace must be heap-free once warm — SIMD
// lane groups included (their SoA buffers grow on the first call only;
// the aligned operator new hook above counts them).  threads=1 keeps the
// fork-join pool from spawning (thread creation allocates by design).
TEST(SimEngineAllocations, WarmBatchesAreAllocationFree)
{
#if !ROBOSHAPE_COUNT_ALLOCS
    GTEST_SKIP() << "allocation counting disabled under sanitizers";
#endif
    const BatchFixture fx(13);
    const SimEngine engine(fx.design);
    std::vector<EngineResult> out(fx.packets.size());
    SimEngine::BatchWorkspace ws;
    engine.run_batch(fx.packets, out, ws, 1); // warm-up sizes everything
    alloc_counter_arm();
    engine.run_batch(fx.packets, out, ws, 1);
    engine.run_batch(fx.packets, out, ws, 1);
    EXPECT_EQ(alloc_counter_read(), 0u);
}

// The convenience overload used to construct a throwaway BatchWorkspace
// per call (reallocating every per-worker workspace each time); it now
// reuses a lazily-grown engine-owned workspace, so it must meet the same
// warm zero-allocation bar as the explicit-workspace form.
TEST(SimEngineAllocations, WarmConvenienceBatchIsAllocationFree)
{
#if !ROBOSHAPE_COUNT_ALLOCS
    GTEST_SKIP() << "allocation counting disabled under sanitizers";
#endif
    const BatchFixture fx(13);
    const SimEngine engine(fx.design);
    std::vector<EngineResult> out(fx.packets.size());
    engine.run_batch(fx.packets, out, 1); // warm-up sizes everything
    alloc_counter_arm();
    engine.run_batch(fx.packets, out, 1);
    engine.run_batch(fx.packets, out, 1);
    EXPECT_EQ(alloc_counter_read(), 0u);
}

} // namespace
} // namespace accel
} // namespace roboshape
