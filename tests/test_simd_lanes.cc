/**
 * @file
 * SIMD batch-lane suite (accel/simd_lanes.h): backend dispatch behaves as
 * documented, and — the exactness policy — every compiled-in lane backend
 * produces results bit-identical to the scalar reference path, packet for
 * packet, at every batch size (especially tails that are not a multiple
 * of the lane width) and every thread count.
 *
 * On a -DROBOSHAPE_SIMD=OFF build (or a non-x86 host without the AVX
 * TUs) the backend list shrinks accordingly and the exactness loops run
 * over whatever is available; the dispatch tests still run.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "accel/sim_engine.h"
#include "accel/simd_lanes.h"
#include "dynamics/fd_derivatives.h"
#include "dynamics/robot_state.h"
#include "topology/robot_library.h"
#include "topology/topology_info.h"

namespace roboshape {
namespace accel {
namespace {

using dynamics::RobotState;
using dynamics::random_state;
using topology::RobotId;
using topology::RobotModel;
using topology::TopologyInfo;
using topology::build_robot;

/** Restores automatic backend detection when a test scope ends. */
struct BackendGuard
{
    ~BackendGuard() { simd::set_lane_backend("auto"); }
};

/** Gradient batch inputs for @p count packets of robot @p id. */
struct GradientBatch
{
    RobotModel m;
    TopologyInfo topo;
    AcceleratorDesign design;
    std::vector<RobotState> states;
    std::vector<dynamics::ForwardDynamicsGradients> refs;
    std::vector<InputPacket> packets;

    GradientBatch(RobotId id, std::size_t count, int seed)
        : m(build_robot(id)), topo(m), design(m, {4, 4, 4})
    {
        states.reserve(count);
        refs.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
            states.push_back(random_state(m, seed + static_cast<int>(i)));
            const RobotState &s = states.back();
            refs.push_back(dynamics::forward_dynamics_gradients(
                m, topo, s.q, s.qd, s.tau));
        }
        for (std::size_t i = 0; i < count; ++i)
            packets.push_back({&states[i].q, &states[i].qd, &refs[i].qdd,
                               &refs[i].mass_inv});
    }
};

void
expect_packet_exact(const EngineResult &got, const EngineResult &want,
                    const std::string &what)
{
    EXPECT_EQ(linalg::max_abs_diff(got.tau, want.tau), 0.0) << what;
    EXPECT_EQ(linalg::max_abs_diff(got.dtau_dq, want.dtau_dq), 0.0) << what;
    EXPECT_EQ(linalg::max_abs_diff(got.dtau_dqd, want.dtau_dqd), 0.0)
        << what;
    EXPECT_EQ(linalg::max_abs_diff(got.dqdd_dq, want.dqdd_dq), 0.0) << what;
    EXPECT_EQ(linalg::max_abs_diff(got.dqdd_dqd, want.dqdd_dqd), 0.0)
        << what;
    EXPECT_EQ(got.tasks_executed, want.tasks_executed) << what;
    EXPECT_EQ(got.mm_stats.block_macs, want.mm_stats.block_macs) << what;
    EXPECT_EQ(got.mm_stats.block_nops, want.mm_stats.block_nops) << what;
    EXPECT_EQ(got.mm_stats.scalar_macs, want.mm_stats.scalar_macs) << what;
}

// ----------------------------------------------------------- dispatch ----

TEST(SimdLaneDispatch, ScalarBackendAlwaysAvailable)
{
    const auto backends = simd::available_lane_backends();
    ASSERT_FALSE(backends.empty());
    EXPECT_STREQ(backends.front()->name, "scalar");
    EXPECT_EQ(backends.front()->width, 1u);
    EXPECT_EQ(backends.front()->gradient, nullptr);
    for (const simd::LaneBackend *b : backends) {
        if (b->gradient != nullptr) {
            EXPECT_GE(b->width, 4u) << b->name;
        }
    }
}

TEST(SimdLaneDispatch, SetBackendByNameAndRejectUnknown)
{
    BackendGuard guard;
    // Every listed backend is selectable by its own name.
    for (const simd::LaneBackend *b : simd::available_lane_backends()) {
        EXPECT_TRUE(simd::set_lane_backend(b->name)) << b->name;
        EXPECT_STREQ(simd::lane_backend().name, b->name);
    }
    // An unknown name fails and leaves the selection unchanged.
    ASSERT_TRUE(simd::set_lane_backend("scalar"));
    EXPECT_FALSE(simd::set_lane_backend("not-a-backend"));
    EXPECT_STREQ(simd::lane_backend().name, "scalar");
    // "off" is an alias for scalar; "auto" re-runs detection.
    EXPECT_TRUE(simd::set_lane_backend("off"));
    EXPECT_STREQ(simd::lane_backend().name, "scalar");
    EXPECT_TRUE(simd::set_lane_backend("auto"));
}

// --------------------------------------- lane-vs-scalar bit exactness ----

// The core tail-handling matrix: for every vector backend available on
// this build + CPU, batch sizes around the lane width W (1, W-1, W, W+1,
// a prime spanning multiple groups) must produce results identical to the
// scalar path packet-for-packet, at every thread count.  "Identical"
// is exact equality — the documented lane exactness policy is 0 ulp.
TEST(SimdLaneExactness, TailSizesMatchScalarAtEveryThreadCount)
{
    BackendGuard guard;
    for (const RobotId robot : {RobotId::kIiwa, RobotId::kHyq}) {
        const GradientBatch fx(robot, 19, 400);
        const SimEngine engine(fx.design);

        // Scalar reference, serial single-packet runs.
        ASSERT_TRUE(simd::set_lane_backend("scalar"));
        std::vector<EngineResult> want(fx.packets.size());
        auto ws = engine.make_workspace();
        for (std::size_t i = 0; i < fx.packets.size(); ++i)
            engine.run(ws, fx.packets[i], want[i]);

        for (const simd::LaneBackend *b : simd::available_lane_backends()) {
            if (b->gradient == nullptr)
                continue;
            ASSERT_TRUE(simd::set_lane_backend(b->name));
            const std::size_t w = b->width;
            const std::size_t sizes[] = {1, w - 1, w, w + 1, 13, 19};
            for (const std::size_t count : sizes) {
                ASSERT_LE(count, fx.packets.size());
                for (const std::size_t threads : {1u, 2u, 4u}) {
                    std::vector<EngineResult> got(count);
                    SimEngine::BatchWorkspace batch;
                    engine.run_batch(
                        std::span(fx.packets).first(count), got, batch,
                        threads);
                    for (std::size_t i = 0; i < count; ++i)
                        expect_packet_exact(
                            got[i], want[i],
                            std::string(b->name) + " packet " +
                                std::to_string(i) + "/" +
                                std::to_string(count) + " threads " +
                                std::to_string(threads));
                }
            }
        }
    }
}

// Reusing one BatchWorkspace across different batch sizes and backends
// must not leak state between runs (buffers are grow-only and fully
// rewritten per group).
TEST(SimdLaneExactness, WorkspaceReuseAcrossSizesStaysExact)
{
    BackendGuard guard;
    const GradientBatch fx(RobotId::kBaxter, 17, 900);
    const SimEngine engine(fx.design);

    ASSERT_TRUE(simd::set_lane_backend("scalar"));
    std::vector<EngineResult> want(fx.packets.size());
    auto ws = engine.make_workspace();
    for (std::size_t i = 0; i < fx.packets.size(); ++i)
        engine.run(ws, fx.packets[i], want[i]);

    for (const simd::LaneBackend *b : simd::available_lane_backends()) {
        if (b->gradient == nullptr)
            continue;
        ASSERT_TRUE(simd::set_lane_backend(b->name));
        SimEngine::BatchWorkspace batch;
        std::vector<EngineResult> got(fx.packets.size());
        // Descending then ascending sizes over the same workspace/results.
        for (const std::size_t count :
             {fx.packets.size(), std::size_t{5}, fx.packets.size()}) {
            engine.run_batch(std::span(fx.packets).first(count),
                             std::span(got).first(count), batch, 1);
            for (std::size_t i = 0; i < count; ++i)
                expect_packet_exact(got[i], want[i],
                                    std::string(b->name) + " size " +
                                        std::to_string(count) + " packet " +
                                        std::to_string(i));
        }
    }
}

// Forcing the scalar backend must take the legacy shard path even for
// wide batches (this is what ROBOSHAPE_SIMD=off guarantees at runtime).
TEST(SimdLaneExactness, ForcedScalarWideBatchMatches)
{
    BackendGuard guard;
    const GradientBatch fx(RobotId::kIiwa, 16, 1300);
    const SimEngine engine(fx.design);

    std::vector<EngineResult> want(fx.packets.size());
    auto ws = engine.make_workspace();
    for (std::size_t i = 0; i < fx.packets.size(); ++i)
        engine.run(ws, fx.packets[i], want[i]);

    ASSERT_TRUE(simd::set_lane_backend("off"));
    std::vector<EngineResult> got(fx.packets.size());
    SimEngine::BatchWorkspace batch;
    engine.run_batch(fx.packets, got, batch, 2);
    for (std::size_t i = 0; i < fx.packets.size(); ++i)
        expect_packet_exact(got[i], want[i],
                            "forced-scalar packet " + std::to_string(i));
}

// Lane-path input validation: a gradient packet missing a field must
// throw before any work happens, exactly like the scalar path.
TEST(SimdLaneExactness, InvalidPacketThrowsOnLanePath)
{
    BackendGuard guard;
    const GradientBatch fx(RobotId::kIiwa, 9, 1700);
    const SimEngine engine(fx.design);
    for (const simd::LaneBackend *b : simd::available_lane_backends()) {
        if (b->gradient == nullptr)
            continue;
        ASSERT_TRUE(simd::set_lane_backend(b->name));
        std::vector<InputPacket> packets = fx.packets;
        packets[packets.size() - 1].minv = nullptr; // tail packet
        packets[0].qdd = nullptr;                   // lane-group packet
        std::vector<EngineResult> out(packets.size());
        SimEngine::BatchWorkspace batch;
        EXPECT_THROW(engine.run_batch(packets, out, batch, 1),
                     std::invalid_argument)
            << b->name;
    }
}

} // namespace
} // namespace accel
} // namespace roboshape
