/**
 * @file
 * Tests for the observability subsystem (docs/OBSERVABILITY.md): the JSON
 * writer/validator, the counter/histogram registry, run reports, wall-span
 * tracing, and the Chrome trace exporter — including the golden-file check
 * and the busy+stall+idle == makespan tiling invariant.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "accel/design.h"
#include "accel/sim_engine.h"
#include "core/sweep_context.h"
#include "dynamics/fd_derivatives.h"
#include "dynamics/robot_state.h"
#include "obs/json.h"
#include "obs/prometheus.h"
#include "obs/registry.h"
#include "obs/run_report.h"
#include "obs/trace_export.h"
#include "obs/wall_trace.h"
#include "sched/timeline.h"
#include "topology/robot_library.h"
#include "topology/topology_info.h"

namespace roboshape {
namespace obs {
namespace {

using topology::RobotId;
using topology::RobotModel;
using topology::build_robot;
using topology::robot_name;

// ---------------------------------------------------------- JSON writer ----

TEST(JsonWriter, CompactEscapedOutput)
{
    JsonWriter w;
    w.begin_object();
    w.key("s").value("a\"b\\c\n\t\x01");
    w.key("arr").begin_array();
    w.value(1);
    w.value(true);
    w.null();
    w.end_array();
    w.end_object();
    EXPECT_EQ(w.str(),
              "{\"s\":\"a\\\"b\\\\c\\n\\t\\u0001\",\"arr\":[1,true,null]}");
    EXPECT_TRUE(validate_json(w.str()));
}

TEST(JsonWriter, DoublesRoundTripAndNonFiniteBecomesNull)
{
    JsonWriter w;
    w.begin_array();
    w.value(0.1);
    w.value(1.0 / 3.0);
    w.value(std::nan(""));
    w.end_array();
    EXPECT_TRUE(validate_json(w.str()));
    EXPECT_NE(w.str().find("null"), std::string::npos);

    double back = 0.0;
    // Reads back the writer's own output; not parsing external input.
    std::sscanf(w.str().c_str() + 1, "%lf", &back); // NOLINT(banned-raw-parse)
    EXPECT_EQ(back, 0.1);
}

TEST(JsonWriter, IndentedOutputIsValidAndDeterministic)
{
    const auto render = [] {
        JsonWriter w(2);
        w.begin_object();
        w.kv("a", 1);
        w.key("b").begin_object();
        w.kv("c", "x");
        w.end_object();
        w.end_object();
        return w.str();
    };
    EXPECT_EQ(render(), render());
    EXPECT_TRUE(validate_json(render()));
}

TEST(ValidateJson, AcceptsAndRejects)
{
    EXPECT_TRUE(validate_json("{}"));
    EXPECT_TRUE(validate_json(" [1, 2.5e-3, \"x\", null, true] "));
    EXPECT_TRUE(validate_json("\"\\u00e9\""));

    std::string error;
    EXPECT_FALSE(validate_json("{", &error));
    EXPECT_FALSE(validate_json("[1,]", &error));
    EXPECT_FALSE(validate_json("{\"a\":1} trailing", &error));
    EXPECT_FALSE(validate_json("01", &error));
    EXPECT_FALSE(validate_json("\"\x01\"", &error));
    EXPECT_NE(error.find("at byte"), std::string::npos);
}

// ------------------------------------------------------------- registry ----

TEST(Registry, CountersAndHistogramsSnapshot)
{
    obs::set_enabled(true);
    Counter &c = registry().counter("test.obs.counter");
    const std::uint64_t before = c.value();
    ROBOSHAPE_OBS_COUNT("test.obs.counter", 3);
    ROBOSHAPE_OBS_COUNT("test.obs.counter", 2);
#ifndef ROBOSHAPE_NO_OBS
    EXPECT_EQ(c.value(), before + 5);
#else
    EXPECT_EQ(c.value(), before);
#endif

    Histogram &h = registry().histogram("test.obs.hist");
    h.reset();
    ROBOSHAPE_OBS_RECORD("test.obs.hist", 4);
    ROBOSHAPE_OBS_RECORD("test.obs.hist", -2);
    const Histogram::Snapshot s = h.snapshot();
#ifndef ROBOSHAPE_NO_OBS
    EXPECT_EQ(s.count, 2u);
    EXPECT_EQ(s.sum, 2);
    EXPECT_EQ(s.min, -2);
    EXPECT_EQ(s.max, 4);
    EXPECT_DOUBLE_EQ(s.mean(), 1.0);
#else
    EXPECT_EQ(s.count, 0u);
#endif

    // Snapshots are sorted by name (deterministic report order).
    const auto counters = registry().counters();
    for (std::size_t i = 1; i < counters.size(); ++i)
        EXPECT_LT(counters[i - 1].name, counters[i].name);
}

TEST(Registry, DisableFreezesMacroUpdates)
{
    obs::set_enabled(true);
    Counter &c = registry().counter("test.obs.freeze");
    const std::uint64_t before = c.value();
    obs::set_enabled(false);
    ROBOSHAPE_OBS_COUNT("test.obs.freeze", 7);
    EXPECT_EQ(c.value(), before);
    obs::set_enabled(true);
}

// ------------------------------------------------- histogram quantiles ----

TEST(HistogramBuckets, IndexAndUpperRoundTrip)
{
    // Every probed value lands in a bucket whose upper bound is >= the
    // value and still maps back to the same bucket; indices are monotone.
    std::vector<std::int64_t> probes = {-5, 0, 1, 2, 7, 8, 9, 15, 16, 17,
                                        100, 1000, 123456, 1 << 20};
    for (int shift = 3; shift < 62; ++shift) {
        probes.push_back((std::int64_t{1} << shift) - 1);
        probes.push_back(std::int64_t{1} << shift);
        probes.push_back((std::int64_t{1} << shift) + 1);
    }
    probes.push_back(std::numeric_limits<std::int64_t>::max());

    std::size_t prev_index = 0;
    std::int64_t prev = std::numeric_limits<std::int64_t>::min();
    std::sort(probes.begin(), probes.end());
    for (const std::int64_t v : probes) {
        const std::size_t index = histogram_bucket_index(v);
        ASSERT_LT(index, kHistogramBuckets) << v;
        const std::int64_t upper = histogram_bucket_upper(index);
        EXPECT_GE(upper, v) << v;
        EXPECT_EQ(histogram_bucket_index(upper), index) << v;
        if (v > 0) {
            // <= 12.5% relative error at kSubBits = 3.
            EXPECT_LE(static_cast<double>(upper - v),
                      0.125 * static_cast<double>(v) + 1.0)
                << v;
        }
        EXPECT_GE(index, prev_index) << "not monotone at " << v
                                     << " (prev " << prev << ")";
        prev_index = index;
        prev = v;
    }
}

TEST(HistogramQuantiles, SmallValuesAreExact)
{
    Histogram h;
    for (std::int64_t v = 1; v <= 7; ++v)
        h.record(v);
    const Histogram::Snapshot s = h.snapshot();
    ASSERT_EQ(s.count, 7u);
    // Values below 2^kSubBits get a bucket each, so quantiles are exact:
    // rank ceil(0.5 * 7) = 4 -> value 4.
    EXPECT_EQ(s.quantile(0.50), 4);
    EXPECT_EQ(s.quantile(0.90), 7);
    EXPECT_EQ(s.quantile(0.99), 7);
    EXPECT_EQ(s.quantile(0.0), 1);
    EXPECT_EQ(s.quantile(1.0), 7);
}

TEST(HistogramQuantiles, EmptyAndMonotone)
{
    Histogram h;
    EXPECT_EQ(h.snapshot().quantile(0.5), 0);

    for (std::int64_t v = 1; v <= 10000; v += 7)
        h.record(v * 13 % 9973);
    const Histogram::Snapshot s = h.snapshot();
    EXPECT_LE(s.p50(), s.p90());
    EXPECT_LE(s.p90(), s.p99());
    EXPECT_GE(s.p99(), s.max * 7 / 8); // p99 near the top of the range
}

TEST(HistogramQuantiles, BitIdenticalAcrossThreadCounts)
{
    // The same multiset of values must yield byte-identical bucket arrays
    // (and therefore quantiles) no matter how recording interleaves.
    const auto value_at = [](std::size_t i) {
        return static_cast<std::int64_t>((i * 2654435761u) % 2000003);
    };
    constexpr std::size_t kValues = 64 * 1024;

    Histogram serial;
    for (std::size_t i = 0; i < kValues; ++i)
        serial.record(value_at(i));

    Histogram threaded;
    {
        constexpr std::size_t kThreads = 8;
        std::vector<std::thread> threads;
        threads.reserve(kThreads);
        for (std::size_t t = 0; t < kThreads; ++t)
            threads.emplace_back([&, t] {
                for (std::size_t i = t; i < kValues; i += kThreads)
                    threaded.record(value_at(i));
            });
        for (std::thread &th : threads)
            th.join();
    }

    const Histogram::Snapshot a = serial.snapshot();
    const Histogram::Snapshot b = threaded.snapshot();
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(a.sum, b.sum);
    EXPECT_EQ(a.min, b.min);
    EXPECT_EQ(a.max, b.max);
    ASSERT_EQ(a.buckets.size(), b.buckets.size());
    EXPECT_EQ(a.buckets, b.buckets);
    for (const double q : {0.5, 0.9, 0.99, 0.999})
        EXPECT_EQ(a.quantile(q), b.quantile(q)) << q;
}

// ----------------------------------------------------------- prometheus ----

TEST(Prometheus, NamesAreSanitized)
{
    EXPECT_EQ(prometheus_metric_name("svc.request_us.design"),
              "roboshape_svc_request_us_design");
    EXPECT_EQ(prometheus_metric_name("sim.phase-2"),
              "roboshape_sim_phase_2");
}

TEST(Prometheus, ExpositionIsDeterministicAndShaped)
{
    obs::set_enabled(true);
    registry().counter("test.prom.counter").add(5);
    Histogram &h = registry().histogram("test.prom.hist");
    h.reset();
    for (std::int64_t v = 1; v <= 100; ++v)
        h.record(v);

    const std::string a = prometheus_exposition();
    const std::string b = prometheus_exposition();
    EXPECT_EQ(a, b);

    EXPECT_NE(a.find("# TYPE roboshape_test_prom_counter counter"),
              std::string::npos);
    EXPECT_NE(a.find("roboshape_test_prom_counter 5"), std::string::npos);
    EXPECT_NE(a.find("# TYPE roboshape_test_prom_hist summary"),
              std::string::npos);
    EXPECT_NE(a.find("roboshape_test_prom_hist{quantile=\"0.5\"}"),
              std::string::npos);
    EXPECT_NE(a.find("roboshape_test_prom_hist{quantile=\"0.99\"}"),
              std::string::npos);
    EXPECT_NE(a.find("roboshape_test_prom_hist_count 100"),
              std::string::npos);
    EXPECT_NE(a.find("roboshape_test_prom_hist_sum 5050"),
              std::string::npos);
    EXPECT_NE(a.find("# TYPE roboshape_test_prom_hist_min gauge"),
              std::string::npos);
    EXPECT_NE(a.find("roboshape_test_prom_hist_max 100"),
              std::string::npos);
}

// ----------------------------------------------------------- run report ----

TEST(RunReport, SchemaFieldsInFixedOrder)
{
    RunReport report("test_tool", "Test Report");
    report.set_robot("iiwa");
    report.set_kernel("dynamics_gradient");
    report.set_params(7, 7, 7);
    report.metric("cycles", std::int64_t{893});
    report.metric("ok", true);
    const std::string json = report.to_json();

    std::string error;
    EXPECT_TRUE(validate_json(json, &error)) << error;

    // Field order is part of the schema contract.
    const char *order[] = {"\"schema\"",  "\"tool\"",     "\"name\"",
                           "\"git_sha\"", "\"robot\"",    "\"kernel\"",
                           "\"params\"",  "\"metrics\"",  "\"counters\"",
                           "\"histograms\""};
    std::size_t last = 0;
    for (const char *field : order) {
        const std::size_t at = json.find(field, last);
        ASSERT_NE(at, std::string::npos) << field;
        last = at;
    }
    EXPECT_NE(json.find(kRunReportSchema), std::string::npos);
    EXPECT_NE(json.find("\"pes_fwd\": 7"), std::string::npos);
}

TEST(RunReport, EmptySectionsArePresent)
{
    RunReport report("t", "n");
    const std::string json = report.to_json();
    EXPECT_TRUE(validate_json(json));
    EXPECT_NE(json.find("\"metrics\""), std::string::npos);
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

// ------------------------------------------------------- trace exporter ----

/** Tiling invariant: every PE's busy+stall+idle equals the makespan. */
void
expect_accounts_tile(const sched::TaskGraph &graph,
                     const sched::Schedule &schedule, const char *what)
{
    const auto accounts = account_schedule(graph, schedule);
    ASSERT_FALSE(accounts.empty()) << what;
    std::int64_t busy_total = 0;
    for (const PeAccount &a : accounts) {
        EXPECT_EQ(a.total(), schedule.makespan)
            << what << " pe " << a.pe << " busy " << a.busy << " stall "
            << a.stall << " idle " << a.idle;
        EXPECT_GE(a.busy, 0);
        EXPECT_GE(a.stall, 0);
        EXPECT_GE(a.idle, 0);
        busy_total += a.busy;
    }
    // Busy cycles are exactly the placed task durations.
    std::int64_t task_total = 0;
    for (const sched::Placement &p : schedule.placements)
        task_total += p.finish - p.start;
    EXPECT_EQ(busy_total, task_total) << what;
}

TEST(TraceExport, AccountsTileMakespanAcrossRobotsAndPools)
{
    // Two library robots x both PE pools (forward/backward stages and the
    // joint pipelined schedule, which carries both pools in one Schedule).
    for (RobotId id : {RobotId::kIiwa, RobotId::kHyq}) {
        const RobotModel model = build_robot(id);
        const accel::AcceleratorDesign design(model, {3, 2, 2});
        const sched::TaskGraph &graph = design.task_graph();
        expect_accounts_tile(graph, design.forward_stage(), robot_name(id));
        expect_accounts_tile(graph, design.backward_stage(), robot_name(id));
        expect_accounts_tile(graph, design.pipelined(), robot_name(id));

        // The pipelined accounts must cover both pools.
        const auto accounts = account_schedule(graph, design.pipelined());
        std::size_t fwd = 0, bwd = 0;
        for (const PeAccount &a : accounts)
            (a.pe_class == sched::PeClass::kForward ? fwd : bwd)++;
        EXPECT_EQ(fwd, 3u) << robot_name(id);
        EXPECT_EQ(bwd, 2u) << robot_name(id);
    }
}

TEST(TraceExport, TraceJsonIsValidDeterministicAndTagged)
{
    const RobotModel model = build_robot(RobotId::kHyq);
    const accel::AcceleratorDesign design(model, {3, 3, 6});
    ScheduleTraceOptions options;
    options.robot = "hyq";
    options.kernel = "dynamics_gradient";
    const std::string a =
        schedule_trace_json(design.task_graph(), design.pipelined(), options);
    const std::string b =
        schedule_trace_json(design.task_graph(), design.pipelined(), options);
    EXPECT_EQ(a, b);

    std::string error;
    EXPECT_TRUE(validate_json(a, &error)) << error;
    EXPECT_NE(a.find(kTraceSchema), std::string::npos);
    EXPECT_NE(a.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(a.find("\"robot\": \"hyq\""), std::string::npos);
}

/**
 * Golden-file check: the exporter's byte-exact output is part of its
 * contract (tools parse these artifacts).  Regenerate intentionally with
 *   ROBOSHAPE_UPDATE_GOLDEN=1 ctest -R TraceExport.GoldenFile
 */
TEST(TraceExport, GoldenFileByteExact)
{
    const RobotModel model = build_robot(RobotId::kBittle);
    const accel::AcceleratorDesign design(model, {2, 2, 1});
    ScheduleTraceOptions options;
    options.robot = "bittle";
    options.kernel = "dynamics_gradient";
    const std::string json =
        schedule_trace_json(design.task_graph(), design.pipelined(), options);

    const std::string path = std::string(ROBOSHAPE_SOURCE_DIR) +
                             "/tests/golden/trace_bittle_fwd2_bwd2.json";
    // Presence-only regeneration switch, not a parsed knob like
    // ROBOSHAPE_THREADS — no validated helper applies.
    if (std::getenv("ROBOSHAPE_UPDATE_GOLDEN") // NOLINT(banned-env-raw)
        != nullptr) {
        std::ofstream out(path);
        out << json;
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        return;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "missing golden file " << path;
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(json, buf.str())
        << "trace exporter output changed; if intentional, regenerate with "
           "ROBOSHAPE_UPDATE_GOLDEN=1";
}

TEST(TraceExport, WallSpansRenderAsValidTrace)
{
    std::vector<WallSpan> spans;
    spans.push_back(WallSpan{"sim.marshal", "phase", 1000, 2500, 0, -1, -1});
    spans.push_back(WallSpan{"rneaFwd", "op", 1100, 1300, 0, 4, -1});
    spans.push_back(WallSpan{"gradBwd", "op", 1300, 1900, 1, 2, 5});
    const std::string json = wall_spans_trace_json(spans);
    std::string error;
    EXPECT_TRUE(validate_json(json, &error)) << error;
    EXPECT_NE(json.find("sim.marshal"), std::string::npos);
    EXPECT_NE(json.find("\"tid\""), std::string::npos);
}

TEST(WallTrace, RecordsOnlyWhenEnabled)
{
    set_wall_trace_enabled(false);
    clear_wall_trace();
    record_wall_span("off", "phase", 10, 20);
    EXPECT_TRUE(wall_trace_spans().empty());

    set_wall_trace_enabled(true);
    record_wall_span("on", "phase", 10, 20);
#ifndef ROBOSHAPE_NO_OBS
    ASSERT_EQ(wall_trace_spans().size(), 1u);
    EXPECT_STREQ(wall_trace_spans()[0].name, "on");
#endif
    set_wall_trace_enabled(false);
    clear_wall_trace();
}

// ------------------------------------------------------ engine wall spans ----

TEST(WallTrace, SimEngineEmitsPhaseSpans)
{
    const RobotModel model = build_robot(RobotId::kIiwa);
    const topology::TopologyInfo topo(model);
    const accel::AcceleratorDesign design(model, {7, 7, 7});
    const accel::SimEngine engine(design);
    auto ws = engine.make_workspace();

    const auto state = dynamics::random_state(model, 7);
    const auto ref = dynamics::forward_dynamics_gradients(
        model, topo, state.q, state.qd, state.tau);
    const accel::InputPacket packet{&state.q, &state.qd, &ref.qdd,
                                    &ref.mass_inv};
    accel::EngineResult out;

    set_wall_trace_enabled(true);
    clear_wall_trace();
    engine.run(ws, packet, out);
    const auto spans = wall_trace_spans();
    set_wall_trace_enabled(false);
    clear_wall_trace();

#ifndef ROBOSHAPE_NO_OBS
    bool marshal = false, position = false, velocity = false, mm = false;
    std::size_t ops = 0;
    for (const WallSpan &s : spans) {
        const std::string name = s.name;
        marshal = marshal || name == "sim.marshal";
        position = position || name == "sim.position_pass";
        velocity = velocity || name == "sim.velocity_pass";
        mm = mm || name == "sim.mm_solve";
        if (std::string(s.category) == "op")
            ++ops;
        EXPECT_LE(s.t0_ns, s.t1_ns);
    }
    EXPECT_TRUE(marshal && position && velocity && mm);
    EXPECT_EQ(ops, out.tasks_executed);
#else
    EXPECT_TRUE(spans.empty());
#endif
}

// ------------------------------------------------------ sweep memo stats ----

TEST(SweepMemoStats, CountsHitsAndMisses)
{
    const RobotModel model = build_robot(RobotId::kBittle);
    core::SweepContext ctx(model);
    EXPECT_EQ(ctx.memo_stats().hits() + ctx.memo_stats().misses(), 0u);

    ctx.forward(2);
    ctx.forward(2);
    ctx.forward(3);
    const core::SweepMemoStats s = ctx.memo_stats();
    EXPECT_EQ(s.forward_misses, 2u);
    EXPECT_EQ(s.forward_hits, 1u);

    ctx.block_multiply(1);
    ctx.block_multiply(1);
    EXPECT_EQ(ctx.memo_stats().block_misses, 1u);
    EXPECT_EQ(ctx.memo_stats().block_hits, 1u);

    ctx.pipelined(2, 2);
    ctx.pipelined(2, 2);
    EXPECT_EQ(ctx.memo_stats().pipelined_misses, 1u);
    EXPECT_EQ(ctx.memo_stats().pipelined_hits, 1u);
}

// ------------------------------------------------------ timeline glyphs ----

TEST(Timeline, Base36GlyphsAndLegend)
{
    // The humanoid has 27 links — beyond the old 10-digit glyph set, within
    // base 36.  Link 10 must render as 'a', not alias back to '0'.
    const RobotModel model = build_robot(RobotId::kHumanoid);
    const topology::TopologyInfo topo(model);
    const sched::TaskGraph graph(topo);
    const sched::Schedule schedule = sched::schedule_pipelined(
        graph, 4, 4, sched::TaskTiming{1, 1, 1, 1});
    const std::string text =
        sched::render_timeline(graph, schedule, 4096, true);

    EXPECT_NE(text.find('a'), std::string::npos);
    EXPECT_NE(text.find("glyphs:"), std::string::npos);
    EXPECT_NE(text.find("a=link10"), std::string::npos);
    EXPECT_NE(text.find("starts:"), std::string::npos);
}

} // namespace
} // namespace obs
} // namespace roboshape
